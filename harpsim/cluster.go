package harpsim

// Fleet chaos harness: drives an internal/cluster fleet — N machine-local
// managers under a coordinator — with seeded open-loop churn on one virtual
// clock, injecting faultsim machine-kill and coordinator-kill faults from a
// plan cursor. The event stream is a pure function of the seed, so two
// same-seed runs produce byte-identical cluster and per-machine journals;
// check.CheckFleet grades the placement invariants every tick, including
// mid-migration. RunCluster also integrates a deterministic fleet energy
// model (per-machine idle/sleep floors from the platform plus standing
// predicted power), which the Fig-style cluster experiment compares across
// dynamic bin-packing and static partitioning.

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/cluster"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// clientRetryAfter is how many consecutive unowned ticks a simulated
// client waits before re-registering with the fleet — the address-provider
// reconnect story at harness scale.
const clientRetryAfter = 2

// settleTicks is the quiet tail after the measured window: no churn and no
// new faults, just enough ticks for in-flight migrations and queued
// re-homes to land before the final ownership accounting. Energy and
// active-machine accounting stop at the measured window.
const settleTicks = 10

// ClusterTick converts a tick index into the virtual-clock instant at
// which the fleet harness delivers faults scheduled for that tick — the
// unit fault plans against RunCluster are written in.
func ClusterTick(n int) time.Duration { return time.Duration(n) * core.AdaptationTick }

// ClusterOptions configures one seeded fleet run.
type ClusterOptions struct {
	// Machines is the fleet size (0 selects 4).
	Machines int
	// Sessions is the target concurrent population (>= 1).
	Sessions int
	// Ticks is the measured run length in 50 ms virtual ticks.
	Ticks int
	// EventsPerTick is the Poisson mean of churn events per tick (0
	// selects 1).
	EventsPerTick float64
	// Seed drives every random choice.
	Seed int64
	// FleetBudgetW is the fleet power budget (0 disables enforcement).
	FleetBudgetW float64
	// Static selects the static-partitioning baseline (no bin-packing, no
	// migration) — the experiment's comparison arm.
	Static bool
	// Plan schedules machine-kill / coordinator-kill faults (nil = none).
	// Only cluster fault kinds are meaningful here.
	Plan *faultsim.Plan
	// Journal receives the cluster transition journal (nil disables).
	Journal io.Writer
	// MachineJournal supplies per-machine decision-journal writers (nil
	// disables).
	MachineJournal func(id string) io.Writer
	// Verify runs check.CheckFleet every tick (fleet-internal and from the
	// harness side) and fails the run on any violation.
	Verify bool
}

// ClusterResult reports one fleet run.
type ClusterResult struct {
	// Stats are the fleet's transition counters.
	Stats cluster.Stats
	// Health is the fleet's final graded health.
	Health cluster.Health
	// FinalSessions is the live client population at the end.
	FinalSessions int
	// FinalUnowned is how many live clients ended the run unowned (0 on a
	// healthy fleet with capacity).
	FinalUnowned int
	// MaxUnownedTicks is the longest any live client went without a
	// machine — the re-homing bound the chaos suites assert on.
	MaxUnownedTicks int
	// MaxFleetPowerW is the highest standing fleet power observed at any
	// tick (must never exceed the budget).
	MaxFleetPowerW float64
	// EnergyJ integrates the fleet energy model over the run.
	EnergyJ float64
	// ActiveMachineTicks counts (machine, tick) pairs with at least one
	// session — the consolidation signal.
	ActiveMachineTicks int
	// Ticks echoes the measured tick count.
	Ticks int
}

// RunCluster executes one seeded fleet run. See ClusterOptions.
func RunCluster(opts ClusterOptions) (*ClusterResult, error) {
	if opts.Machines <= 0 {
		opts.Machines = 4
	}
	if opts.Sessions < 1 {
		return nil, fmt.Errorf("harpsim: cluster with %d sessions", opts.Sessions)
	}
	if opts.Ticks < 1 {
		return nil, fmt.Errorf("harpsim: cluster with %d ticks", opts.Ticks)
	}
	if opts.EventsPerTick <= 0 {
		opts.EventsPerTick = 1
	}
	if opts.Plan != nil {
		if err := opts.Plan.Validate(); err != nil {
			return nil, err
		}
		for _, f := range opts.Plan.Faults {
			if !f.Kind.ClusterKind() {
				return nil, fmt.Errorf("harpsim: cluster plan contains non-cluster fault %s", f.Kind)
			}
		}
	}

	plat := ChurnPlatform(2, 8)
	var now time.Duration
	tracer := telemetry.NewTracer(16)
	tracer.SetClock(func() time.Duration { return now })

	fleet, err := cluster.New(cluster.Config{
		Machines:       opts.Machines,
		Platform:       plat,
		FleetBudgetW:   opts.FleetBudgetW,
		Static:         opts.Static,
		Verify:         opts.Verify,
		Coalesce:       core.CoalescePolicy{Enabled: true},
		Tracer:         tracer,
		Journal:        opts.Journal,
		MachineJournal: opts.MachineJournal,
	})
	if err != nil {
		return nil, err
	}

	// Per-machine energy floors from the platform model: an active machine
	// pays its idle floor, a parked (empty) machine its sleep floor, a
	// dead machine nothing.
	idleW, sleepW := 0.0, 0.0
	for _, k := range plat.Kinds {
		idleW += k.IdleWatts * float64(k.Count)
		sleepW += k.SleepWatts * float64(k.Count)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	cursor := opts.Plan.Cursor()
	res := &ClusterResult{Ticks: opts.Ticks}
	live := make(map[string]cluster.SessionSpec)
	unowned := make(map[string]int)
	placed := make(map[string]bool)
	var liveOrder []string
	nextID := 0

	newSpec := func() cluster.SessionSpec {
		id := fmt.Sprintf("c%06d", nextID)
		app := fmt.Sprintf("cl-app-%d", nextID%(2*len(plat.Kinds)))
		nextID++
		return cluster.SessionSpec{
			Instance:   id,
			App:        app,
			Adaptivity: workload.Scalable,
			Table:      churnTable(plat, app),
		}
	}
	submit := func(spec cluster.SessionSpec) error {
		err := fleet.Submit(spec)
		switch err {
		case nil:
			live[spec.Instance] = spec
			liveOrder = append(liveOrder, spec.Instance)
		case cluster.ErrNoCoordinator:
			// Control plane briefly headless: the client retries later.
		default:
			return err
		}
		return nil
	}

	// Ramp to the target population before the measured phase.
	for len(live) < opts.Sessions {
		if err := submit(newSpec()); err != nil {
			return nil, err
		}
	}

	for tick := 0; tick < opts.Ticks+settleTicks; tick++ {
		measured := tick < opts.Ticks

		// Deliver due faults at the tick boundary.
		if measured {
			for _, f := range cursor.Due(now) {
				switch f.Kind {
				case faultsim.KindMachineKill:
					if err := fleet.KillMachine(f.Target); err != nil {
						return nil, err
					}
				case faultsim.KindCoordKill:
					fleet.KillCoordinator()
				}
			}
		}

		// Churn: Poisson event burst with a balanced arrival / departure /
		// phase mix. Arrivals gate at twice the target population so the
		// walk stays inside a capacity band the tests can size for.
		n := 0
		if measured {
			n = poisson(rng, opts.EventsPerTick)
		}
		for e := 0; e < n; e++ {
			r := rng.Float64()
			switch {
			case len(liveOrder) == 0 || (r < 0.35 && len(liveOrder) < 2*opts.Sessions):
				if err := submit(newSpec()); err != nil {
					return nil, err
				}
			case r < 0.70 && len(liveOrder) > opts.Sessions/2:
				i := rng.Intn(len(liveOrder))
				id := liveOrder[i]
				switch err := fleet.Deregister(id); err {
				case nil, cluster.ErrUnknownSession:
					// Unknown means the placement was lost with the dead
					// coordinator before it was ever shipped; the client
					// just goes away.
					liveOrder[i] = liveOrder[len(liveOrder)-1]
					liveOrder = liveOrder[:len(liveOrder)-1]
					delete(live, id)
					delete(unowned, id)
				case cluster.ErrNoCoordinator:
					// Exit blocked by the headless window; retried via churn.
				default:
					return nil, err
				}
			default:
				id := liveOrder[rng.Intn(len(liveOrder))]
				spec := live[id]
				spec.Phase = fmt.Sprintf("ph%d", tick%4)
				switch err := fleet.PhaseChange(id, spec.Phase); err {
				case nil:
					live[id] = spec
				case cluster.ErrUnknownSession, cluster.ErrNoCoordinator:
					// Lost or headless: the re-registration path below
					// carries the newest phase the client knows.
					live[id] = spec
				default:
					return nil, err
				}
			}
		}

		if err := fleet.Tick(); err != nil {
			return nil, fmt.Errorf("harpsim: cluster tick %d: %w", tick, err)
		}
		now += core.AdaptationTick

		// Clients that stayed unowned past the retry deadline re-register
		// (the address-provider reconnect story); the coordinator dedups
		// sessions it still knows. MaxUnownedTicks measures the re-home
		// bound, so it only counts sessions that were placed at least once
		// — initial queue wait under a full fleet is capacity, not failure.
		for _, id := range sortedKeys(live) {
			if fleet.Owner(id) != "" {
				placed[id] = true
				unowned[id] = 0
				continue
			}
			unowned[id]++
			if placed[id] && unowned[id] > res.MaxUnownedTicks {
				res.MaxUnownedTicks = unowned[id]
			}
			if unowned[id] >= clientRetryAfter {
				switch err := fleet.Submit(live[id]); err {
				case nil, cluster.ErrDuplicateSession, cluster.ErrNoCoordinator:
				default:
					return nil, err
				}
			}
		}

		// Grade invariants and integrate the energy model on the post-tick
		// view.
		view := fleet.View()
		if opts.Verify {
			if err := check.CheckFleet(view); err != nil {
				return nil, fmt.Errorf("harpsim: cluster tick %d: %w", tick, err)
			}
		}
		fleetPower := 0.0
		for i := range view.Machines {
			m := &view.Machines[i]
			fleetPower += m.StandingPowerW
			if !measured {
				continue
			}
			switch {
			case !m.Alive:
			case len(m.Sessions) > 0:
				res.EnergyJ += (idleW + m.StandingPowerW) * core.AdaptationTick.Seconds()
				res.ActiveMachineTicks++
			default:
				res.EnergyJ += sleepW * core.AdaptationTick.Seconds()
			}
		}
		if fleetPower > res.MaxFleetPowerW {
			res.MaxFleetPowerW = fleetPower
		}
	}

	if err := fleet.JournalErr(); err != nil {
		return nil, err
	}
	res.Stats = fleet.Stats()
	res.Health = fleet.Health()
	res.FinalSessions = len(live)
	for _, id := range sortedKeys(live) {
		if fleet.Owner(id) == "" {
			res.FinalUnowned++
		}
	}
	return res, nil
}

func sortedKeys(m map[string]cluster.SessionSpec) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
