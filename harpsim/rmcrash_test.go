package harpsim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
)

// rmCrashPlan schedules one RM kill at the given virtual time, alongside a
// client dropout to exercise the mixed-fault path.
func rmCrashPlan(at time.Duration) *faultsim.Plan {
	return &faultsim.Plan{Faults: []faultsim.Fault{
		{At: at - time.Second, Target: "mg.C", Kind: faultsim.KindDropout, Duration: 2 * time.Second},
		{At: at, Target: faultsim.RMTarget, Kind: faultsim.KindRMCrash},
	}}
}

// chaosRunDurable is chaosRun with a state directory: the simulated RM
// persists its learned state and rm-crash faults restart it warm.
func chaosRunDurable(t *testing.T, sc Scenario, plan *faultsim.Plan, seed int64, stateDir string) (*Result, []byte, *telemetry.Metrics) {
	t.Helper()
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	var journal bytes.Buffer
	res := mustRun(t, sc, Options{
		Policy:         PolicyHARPOffline,
		OfflineTables:  tables,
		Seed:           seed,
		Liveness:       chaosLiveness(),
		Faults:         plan,
		StateDir:       stateDir,
		Tracer:         telemetry.NewTracer(1),
		Journal:        telemetry.NewJournal(&journal),
		Metrics:        mt,
		RecordTimeline: true,
	})
	return res, journal.Bytes(), mt
}

// Acceptance: an rm-crash mid-run restarts the RM warm from the state
// directory — the journal shows the recovery, the sessions resume as
// reconnects, and no core is ever double-granted across the restart.
func TestRMCrashWarmRestartMidRun(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	stateDir := filepath.Join(t.TempDir(), "state")
	res, journal, mt := chaosRunDurable(t, sc, rmCrashPlan(3*time.Second), 11, stateDir)

	if res.RMRestarts != 1 {
		t.Fatalf("RMRestarts = %d, want 1", res.RMRestarts)
	}
	out := string(journal)
	// Two recover epochs: the initial (cold) open and the post-crash warm
	// restart.
	if got := strings.Count(out, `"trigger":"recover"`); got != 2 {
		t.Fatalf("recover epochs = %d, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, `"trigger":"snapshot"`) {
		t.Fatal("clean run end did not journal the final snapshot")
	}
	// cg.C was live and unmuted at the crash: its session resumes as a
	// reconnect of a prior instance.
	if got := mt.Reconnects.Value(); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
	assertNoDoubleGrant(t, res.Timeline)

	// The graceful end-of-run snapshot must hold the learned tables.
	st, err := store.Open(stateDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Generation() != 3 { // run open, crash reopen, this open
		t.Fatalf("generation = %d, want 3", st.Generation())
	}
	rec := st.Recovery()
	if rec.ColdStart || !rec.SnapshotLoaded {
		t.Fatalf("post-run recovery = %+v, want warm snapshot", rec)
	}
	if st.RecoveredState().MeasuredPoints() == 0 {
		t.Fatal("final snapshot lost the learned operating points")
	}
}

// Acceptance (determinism): the same seed and the same crash epoch produce
// byte-identical journals, including the resumed part after the RM restart —
// the whole crash-recovery path runs on the virtual clock.
func TestRMCrashSameSeedIdenticalResumedJournals(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	run := func(dir string) []byte {
		_, journal, _ := chaosRunDurable(t, sc, rmCrashPlan(4*time.Second), 7, dir)
		return journal
	}
	a := run(filepath.Join(t.TempDir(), "a"))
	b := run(filepath.Join(t.TempDir(), "b"))
	if len(a) == 0 {
		t.Fatal("rm-crash run produced an empty journal")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and crash epoch produced different resumed journals")
	}
}

// Acceptance: rm-crash without a state directory restarts the RM cold — the
// run still completes, sessions re-register, but nothing is recovered.
func TestRMCrashColdWithoutStateDir(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	res, journal, _ := chaosRun(t, sc, rmCrashPlan(3*time.Second), 11)
	if res.RMRestarts != 1 {
		t.Fatalf("RMRestarts = %d, want 1", res.RMRestarts)
	}
	if res.MakespanSec <= 0 {
		t.Fatal("run did not complete")
	}
	if strings.Contains(string(journal), `"trigger":"recover"`) {
		t.Fatal("cold restart without a store journalled a recovery")
	}
	assertNoDoubleGrant(t, res.Timeline)
}

// A generated plan may not schedule rm-crash (application targets only), but
// a hand-written one must validate its target.
func TestRMCrashPlanValidation(t *testing.T) {
	bad := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: time.Second, Target: "cg.C", Kind: faultsim.KindRMCrash},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("rm-crash with an application target validated")
	}
	good := rmCrashPlan(3 * time.Second)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
