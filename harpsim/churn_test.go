package harpsim

import (
	"bytes"
	"testing"

	"github.com/harp-rm/harp/internal/core"
)

// TestChurnSameSeedByteIdenticalJournals pins the determinism contract at the
// system level: two runs with the same seed — coalescing, incremental solves
// and sharded solving all enabled — must emit byte-identical decision
// journals, because every random choice flows from the seed and all
// timestamps come from the virtual clock.
func TestChurnSameSeedByteIdenticalJournals(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		res, err := RunChurn(ChurnOptions{
			Sessions:      40,
			Ticks:         20,
			EventsPerTick: 3,
			Seed:          42,
			Coalesce:      core.CoalescePolicy{Enabled: true},
			Sharded:       true,
			Incremental:   true,
			Journal:       &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Epochs == 0 {
			t.Fatal("churn run solved no epochs")
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("empty journal")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed journals differ: %d vs %d bytes", len(first), len(second))
	}
}

// TestChurnDifferentSeedsDiverge is the determinism test's control: a
// different seed must produce a different event stream and journal.
func TestChurnDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) []byte {
		var buf bytes.Buffer
		if _, err := RunChurn(ChurnOptions{
			Sessions:      20,
			Ticks:         10,
			EventsPerTick: 3,
			Seed:          seed,
			Coalesce:      core.CoalescePolicy{Enabled: true},
			Journal:       &buf,
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if bytes.Equal(run(1), run(2)) {
		t.Fatal("different seeds produced identical journals")
	}
}

// TestChurnCoalescingCollapsesEpochs pins the tentpole claim: with coalescing
// on, solve count tracks ticks, not events — the registration ramp plus every
// per-tick burst each collapse into one epoch.
func TestChurnCoalescingCollapsesEpochs(t *testing.T) {
	res, err := RunChurn(ChurnOptions{
		Sessions:      60,
		Ticks:         25,
		EventsPerTick: 4,
		Seed:          7,
		Coalesce:      core.CoalescePolicy{Enabled: true},
		Incremental:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One epoch per tick with pending events, plus ramp flush and final
	// Flush; never more than ticks+2, and far fewer than events.
	if res.Epochs > res.Events/2 {
		t.Fatalf("coalescing ineffective: %d epochs for %d events", res.Epochs, res.Events)
	}
	if res.Epochs > 25+2 {
		t.Fatalf("%d epochs for 25 ticks: more than one solve per tick", res.Epochs)
	}
	if res.FinalSessions == 0 || res.PeakSessions < 60 {
		t.Fatalf("population collapsed: peak %d final %d", res.PeakSessions, res.FinalSessions)
	}
}

// TestChurnSolvePerEventBaseline pins the "before" behaviour the benchmark
// compares against: with the zero CoalescePolicy every mutating event solves
// inline, so epochs track events one-for-one.
func TestChurnSolvePerEventBaseline(t *testing.T) {
	res, err := RunChurn(ChurnOptions{
		Sessions:      15,
		Ticks:         5,
		EventsPerTick: 2,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < res.Events {
		t.Fatalf("solve-per-event baseline: %d epochs < %d events", res.Epochs, res.Events)
	}
}

// TestChurnOracleVerification pins the differential-verification hook: with
// VerifyEvery set, sampled epochs run through check.CheckAllocations and the
// run fails on any violation.
func TestChurnOracleVerification(t *testing.T) {
	res, err := RunChurn(ChurnOptions{
		Sessions:      40,
		Ticks:         15,
		EventsPerTick: 3,
		Seed:          11,
		Coalesce:      core.CoalescePolicy{Enabled: true},
		Sharded:       true,
		Incremental:   true,
		VerifyEvery:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified == 0 {
		t.Fatal("no epochs were oracle-verified")
	}
	if res.SolveSources["sharded"] == 0 {
		t.Fatalf("no sharded epochs recorded: %v", res.SolveSources)
	}
}
