package harpsim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/harp-rm/harp/internal/telemetry"
)

// TestCacheTransparentInSimulation is the end-to-end half of the cache's
// decision-transparency contract: the same seeded scenario run with the
// solution cache disabled and enabled (the default) must produce identical
// simulation results and journals that agree on every field except the solve
// bookkeeping (lambda_iters, solve_source) — and the default run must
// actually serve some epochs from the cache.
func TestCacheTransparentInSimulation(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	run := func(cacheSize int) (*Result, []telemetry.EpochRecord) {
		var jbuf bytes.Buffer
		res := mustRun(t, sc, Options{
			Policy:         PolicyHARPOffline,
			OfflineTables:  tables,
			Seed:           5,
			AllocCacheSize: cacheSize,
			Journal:        telemetry.NewJournal(&jbuf),
		})
		recs, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return res, recs
	}
	off, offRecs := run(-1)
	on, onRecs := run(0)

	if off.MakespanSec != on.MakespanSec || off.EnergyJ != on.EnergyJ {
		t.Errorf("cache changed the simulation: makespan %.4f vs %.4f, energy %.1f vs %.1f",
			off.MakespanSec, on.MakespanSec, off.EnergyJ, on.EnergyJ)
	}
	if len(offRecs) != len(onRecs) {
		t.Fatalf("journal length diverges: %d epochs without cache, %d with", len(offRecs), len(onRecs))
	}
	var cachedEpochs int
	for i := range onRecs {
		a, b := offRecs[i], onRecs[i]
		if b.SolveSource == "cached" {
			cachedEpochs++
		}
		if a.SolveSource == "cached" {
			t.Fatalf("epoch %d: cache-disabled run reports a cached solve", a.Epoch)
		}
		a.LambdaIters, b.LambdaIters = 0, 0
		a.SolveSource, b.SolveSource = "", ""
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d diverges beyond solve bookkeeping:\nno cache: %+v\ncached:   %+v", a.Epoch, a, b)
		}
	}
	if cachedEpochs == 0 {
		t.Error("no epoch was served from the cache — the default path is not exercising it")
	}
}
