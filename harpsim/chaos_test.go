package harpsim

import (
	"bytes"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/telemetry"
)

// chaosLiveness scales the default deadlines down to the simulator's pace so
// escalation fits inside short test horizons.
func chaosLiveness() core.LivenessPolicy {
	return core.LivenessPolicy{
		SuspectAfter:    200 * time.Millisecond,
		QuarantineAfter: 500 * time.Millisecond,
		ReapAfter:       time.Second,
	}
}

// chaosRun executes one fault-injected scenario, capturing the journal, the
// metrics and the full decision timeline.
func chaosRun(t *testing.T, sc Scenario, plan *faultsim.Plan, seed int64) (*Result, []byte, *telemetry.Metrics) {
	t.Helper()
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	var journal bytes.Buffer
	res := mustRun(t, sc, Options{
		Policy:        PolicyHARPOffline,
		OfflineTables: tables,
		Seed:          seed,
		Liveness:      chaosLiveness(),
		Faults:        plan,
		// The tracer's clock stamps journal epochs with virtual time; the
		// event buffer itself is irrelevant here.
		Tracer:         telemetry.NewTracer(1),
		Journal:        telemetry.NewJournal(&journal),
		Metrics:        mt,
		RecordTimeline: true,
	})
	return res, journal.Bytes(), mt
}

// assertNoDoubleGrant replays the timeline, maintaining each instance's
// standing allocation, and fails if any core is ever granted to two
// non-co-allocated instances at once. Events with no cores (parked
// decisions, reaps, deregistrations) end the instance's standing grant.
// Decisions of one reallocation epoch share a timestamp and are checked as a
// batch: within an epoch the push order of "grow the survivor" and "park the
// victim" is unspecified, but the post-epoch standing allocation must be
// disjoint.
func assertNoDoubleGrant(t *testing.T, timeline []TimelineEvent) {
	t.Helper()
	standing := make(map[string]map[int]bool)
	coAlloc := make(map[string]bool)
	check := func(atSec float64) {
		used := make(map[int]string)
		for inst, cores := range standing {
			if coAlloc[inst] {
				continue
			}
			for c := range cores {
				if other, ok := used[c]; ok {
					t.Fatalf("core %d granted to both %s and %s at t=%.2fs",
						c, other, inst, atSec)
				}
				used[c] = inst
			}
		}
	}
	for i, ev := range timeline {
		if len(ev.Cores) == 0 {
			delete(standing, ev.Instance)
			delete(coAlloc, ev.Instance)
		} else {
			set := make(map[int]bool, len(ev.Cores))
			for _, c := range ev.Cores {
				set[c] = true
			}
			standing[ev.Instance] = set
			coAlloc[ev.Instance] = ev.CoAllocated
		}
		if i+1 == len(timeline) || timeline[i+1].AtSec != ev.AtSec {
			check(ev.AtSec)
		}
	}
}

// Acceptance: replaying the same seeded fault plan yields byte-identical
// decision journals — the whole injection path runs on the virtual clock.
func TestChaosSameSeedIdenticalJournals(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	targets := []string{"cg.C", "mg.C", "is.C"}
	run := func() []byte {
		plan := faultsim.Generate(99, targets, 10*time.Second, 5)
		_, journal, _ := chaosRun(t, sc, plan, 7)
		return journal
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("chaos run produced an empty journal")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same fault plan produced different journals")
	}
}

// Acceptance: a crashed session's cores are reclaimed within a bounded
// number of epochs, the allocator reconverges on the survivors, and no core
// is ever double-granted along the way.
func TestChaosCrashReclaimedWithinBound(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	crashAt := 3 * time.Second
	plan := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: crashAt, Target: "cg.C", Kind: faultsim.KindCrash},
	}}
	res, journal, mt := chaosRun(t, sc, plan, 11)

	if got := mt.SessionsReaped.Value(); got != 1 {
		t.Errorf("sessions reaped = %d, want 1", got)
	}
	if got := mt.SessionsQuarantined.Value(); got < 1 {
		t.Errorf("crashed session never quarantined (counter = %d)", got)
	}

	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	reapAt, quarantineAt := -1.0, -1.0
	for _, rec := range epochs {
		if rec.Trigger == "quarantine" && quarantineAt < 0 {
			quarantineAt = rec.AtSec
		}
		if rec.Trigger == "reap" && reapAt < 0 {
			reapAt = rec.AtSec
		}
	}
	if reapAt < 0 || quarantineAt < 0 {
		t.Fatalf("journal lacks the escalation (quarantine=%.2f reap=%.2f)", quarantineAt, reapAt)
	}
	// Bounded reclamation: crash time + ReapAfter + a few 50 ms sweep ticks.
	deadline := (crashAt + chaosLiveness().ReapAfter + 250*time.Millisecond).Seconds()
	if reapAt > deadline {
		t.Errorf("reap epoch at %.2fs, deadline %.2fs", reapAt, deadline)
	}
	// Reconvergence: the cores free up at quarantine time (the reap epoch
	// then just confirms the standing survivor allocation), and the reaped
	// session never reappears as an allocator input.
	survivorDecided := false
	for _, rec := range epochs {
		if rec.AtSec >= reapAt {
			for _, in := range rec.Inputs {
				if in.Instance == "cg.C" {
					t.Fatalf("reaped session still an allocator input at %.2fs", rec.AtSec)
				}
			}
		}
		if rec.AtSec >= quarantineAt {
			for _, out := range rec.Outputs {
				if out.Instance == "mg.C" && out.Cores > 0 {
					survivorDecided = true
				}
			}
		}
	}
	if !survivorDecided {
		t.Error("allocator never re-decided for the survivor after the quarantine")
	}
	assertNoDoubleGrant(t, res.Timeline)
}

// Acceptance: a dropout longer than the reap deadline loses its session and
// resumes via the simulated auto-reconnect — the RM counts a reconnect and
// the instance reappears in the journal with a fresh registration.
func TestChaosDropoutReconnects(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	plan := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: 3 * time.Second, Target: "mg.C", Kind: faultsim.KindDropout, Duration: 2 * time.Second},
	}}
	res, journal, mt := chaosRun(t, sc, plan, 13)

	if got := mt.SessionsReaped.Value(); got < 1 {
		t.Errorf("dropout never reaped (counter = %d)", got)
	}
	if got := mt.Reconnects.Value(); got < 1 {
		t.Errorf("dropout never reconnected (counter = %d)", got)
	}
	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	var sawReap, sawReregister bool
	for _, rec := range epochs {
		switch rec.Trigger {
		case "reap":
			sawReap = true
		case "register":
			if sawReap {
				sawReregister = true
			}
		}
	}
	if !sawReap || !sawReregister {
		t.Errorf("journal lacks the reap/re-register sequence (reap=%v reregister=%v)",
			sawReap, sawReregister)
	}
	assertNoDoubleGrant(t, res.Timeline)
}

// A hang shorter than the reap deadline is absorbed: the session is
// suspected (and possibly quarantined) but readmitted once measurements
// resume — never reaped, never reconnected.
func TestChaosShortHangReadmitted(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	plan := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: 3 * time.Second, Target: "cg.C", Kind: faultsim.KindHang, Duration: 700 * time.Millisecond},
	}}
	res, _, mt := chaosRun(t, sc, plan, 17)

	if got := mt.SessionsReaped.Value(); got != 0 {
		t.Errorf("short hang reaped the session (counter = %d)", got)
	}
	if got := mt.SessionsQuarantined.Value(); got < 1 {
		t.Errorf("short hang never quarantined (counter = %d)", got)
	}
	if got := mt.SessionsReadmitted.Value(); got < 1 {
		t.Errorf("resumed session never readmitted (counter = %d)", got)
	}
	assertNoDoubleGrant(t, res.Timeline)
}
