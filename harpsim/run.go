package harpsim

import (
	"fmt"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/monitor"
	"github.com/harp-rm/harp/internal/sched"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// Run executes one scenario under the selected policy and returns its
// measurements.
func Run(sc Scenario, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Liveness.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}

	machine, err := newMachine(sc, opts)
	if err != nil {
		return nil, err
	}
	var harness *harpHarness
	if opts.Policy.IsHARP() {
		harness, err = attachHARP(machine, sc, opts)
		if err != nil {
			return nil, err
		}
	}

	result := &Result{
		Scenario:       sc.Name,
		Policy:         opts.Policy,
		Apps:           make(map[string]AppResult, len(sc.Apps)),
		StableAfterSec: -1,
	}
	machine.OnProcExit(func(p *sim.Proc) {
		c := p.Counters()
		ar := AppResult{
			TimeSec:    (p.FinishedAt() - p.StartedAt()).Seconds(),
			DynEnergyJ: c.DynEnergyJ,
		}
		if harness != nil {
			ar.AttributedEnergyJ = harness.attributedEnergy(p)
		}
		result.Apps[p.Name()] = ar
		if p.FinishedAt().Seconds() > result.MakespanSec {
			result.MakespanSec = p.FinishedAt().Seconds()
		}
	})

	if err := startApps(machine, sc.Apps); err != nil {
		if harness != nil {
			harness.abandonStore()
		}
		return nil, err
	}
	if err := machine.RunUntilIdle(opts.Horizon); err != nil {
		if harness != nil {
			harness.abandonStore()
		}
		return nil, fmt.Errorf("harpsim: scenario %s under %s: %w", sc.Name, opts.Policy, err)
	}

	result.EnergyJ = machine.Energy().PackageJ
	if harness != nil {
		result.StableAfterSec = harness.stableAtSec
		result.Timeline = harness.timeline
		result.RMRestarts = harness.rmRestarts
		if err := harness.shutdownStore(); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// newMachine builds the simulator with the policy's OS-level scheduler.
func newMachine(sc Scenario, opts Options) (*sim.Machine, error) {
	var scheduler sim.Scheduler
	switch opts.Policy {
	case PolicyCFS:
		scheduler = sched.CFS{}
	case PolicyEAS:
		scheduler = sched.EAS{}
	case PolicyITD:
		scheduler = sched.ITD{Platform: sc.Platform}
	case PolicyHARP, PolicyHARPOffline, PolicyHARPNoScaling, PolicyHARPOverhead:
		// HARP works alongside the regular OS scheduler, restricting
		// applications via affinity masks (§4.3).
		scheduler = sched.CFS{}
	default:
		return nil, fmt.Errorf("harpsim: unknown policy %d", int(opts.Policy))
	}
	return sim.New(sc.Platform, scheduler, sim.WithGovernor(opts.Governor))
}

// startApps launches every profile with a unique instance name.
func startApps(machine *sim.Machine, apps []*workload.Profile) error {
	seen := make(map[string]int, len(apps))
	for _, prof := range apps {
		seen[prof.Name]++
		instance := prof.Name
		if seen[prof.Name] > 1 {
			instance = fmt.Sprintf("%s#%d", prof.Name, seen[prof.Name])
		}
		if _, err := machine.Start(prof, instance); err != nil {
			return err
		}
	}
	return nil
}

// harpHarness wires the HARP resource manager and monitor into a machine:
// it plays the role of libharp (registration, decision application, utility
// reporting) for every simulated application.
type harpHarness struct {
	machine *sim.Machine
	mgr     *core.Manager
	mon     *monitor.Monitor
	opts    Options

	coreToHW [][]sim.HWThread
	managed  map[string]*sim.Proc // instance → proc
	energyAt map[string]float64   // attributed energy of exited procs

	// instOrder caches the sorted instance names measureTick iterates every
	// 50 ms tick; instDirty is set whenever the managed set changes.
	instOrder []string
	instDirty bool

	stableAtSec float64
	timeline    []TimelineEvent

	// Resilience state, all on the machine's virtual clock. sessionUp mirrors
	// whether the instance currently holds an RM session (false between a
	// reap and a reconnect); lastSeen is the virtual time of the last
	// measurement fed to the RM; muted holds the active fault per victim.
	liveness  core.LivenessPolicy
	faults    *faultsim.Cursor
	sessionUp map[string]bool
	lastSeen  map[string]time.Duration
	muted     map[string]*muteState
	// trackSessions adds session-clearing events (reap, deregister, exit) to
	// the timeline so chaos tests can replay standing allocations. Only set
	// for resilience runs, keeping legacy timelines decision-only.
	trackSessions bool

	// repeat-mode state (LearnTables)
	repeat       bool
	repeatUntil  time.Duration
	restartCount map[string]int

	// Durable-RM state: coreCfg is the manager configuration template an
	// rm-crash restart rebuilds from; st is the open store (nil without
	// Options.StateDir); rmRestarts counts injected RM crashes.
	coreCfg    core.Config
	st         *store.Store
	rmRestarts int
}

// muteState is one in-flight session fault: the victim's measurements stop
// flowing until the deadline passes (until < 0 = forever, a crash).
type muteState struct {
	until     time.Duration
	reconnect bool // re-register once the mute lifts (dropout/disconnect)
}

// attachHARP connects the RM to a machine.
func attachHARP(machine *sim.Machine, sc Scenario, opts Options) (*harpHarness, error) {
	// Rebind the tracer and energy ledger to virtual time before anything
	// emits or integrates: identical scenarios then produce bit-identical
	// event streams and joule totals.
	opts.Tracer.SetClock(machine.Now)
	opts.Energy.SetClock(machine.Now)
	if mt := opts.Metrics; mt != nil {
		opts.Tracer.CountDrops(mt.TracerDropped)
		opts.Journal.CountErrors(mt.JournalErrors)
	}
	disableExplore := opts.Policy == PolicyHARPOffline || !sc.Platform.SimultaneousPMU
	coreCfg := core.Config{
		Platform:           sc.Platform,
		Explore:            opts.Explore,
		OfflineTables:      opts.OfflineTables,
		DisableExploration: disableExplore,
		ReallocEvery:       opts.ReallocEvery,
		Tracer:             opts.Tracer,
		Journal:            opts.Journal,
		Metrics:            opts.Metrics,
		Energy:             opts.Energy,
		AllocCacheSize:     opts.AllocCacheSize,
		AllocWarmStart:     opts.AllocWarmStart,
	}
	// coreCfg stays Store-free as the restart template; cfg is the working
	// copy with the live store attached (only when non-nil — a typed-nil
	// interface would defeat the Manager's nil check).
	var st *store.Store
	cfg := coreCfg
	if opts.StateDir != "" {
		var err error
		st, err = store.Open(opts.StateDir, store.Options{Metrics: opts.Metrics, Tracer: opts.Tracer})
		if err != nil {
			return nil, fmt.Errorf("harpsim: open state dir: %w", err)
		}
		cfg.Store = st
	}
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	if st != nil {
		if err := mgr.ImportState(st.RecoveredState(), st.Recovery()); err != nil {
			_ = st.Close()
			return nil, err
		}
	}
	mon, err := monitor.New(machine, monitor.WithSeed(opts.Seed), monitor.WithTracer(opts.Tracer), monitor.WithMetrics(opts.Metrics))
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}

	h := &harpHarness{
		machine:      machine,
		mgr:          mgr,
		mon:          mon,
		opts:         opts,
		managed:      make(map[string]*sim.Proc),
		energyAt:     make(map[string]float64),
		stableAtSec:  -1,
		restartCount: make(map[string]int),
		liveness:     opts.Liveness,
		faults:       opts.Faults.Cursor(),
		sessionUp:     make(map[string]bool),
		lastSeen:      make(map[string]time.Duration),
		muted:         make(map[string]*muteState),
		trackSessions: opts.Liveness.Enabled() || opts.Faults != nil,
		coreCfg:       coreCfg,
		st:            st,
	}
	h.buildTopology()

	mgr.OnDecision(h.applyDecision)
	machine.OnProcStart(h.scheduleRegistration)
	machine.OnProcExit(h.onExit)
	machine.Every(opts.MeasureEvery, h.measureTick)
	return h, nil
}

func (h *harpHarness) buildTopology() {
	topo := h.machine.Topology()
	nCores := 0
	for _, info := range topo {
		if info.Core+1 > nCores {
			nCores = info.Core + 1
		}
	}
	h.coreToHW = make([][]sim.HWThread, nCores)
	for _, info := range topo {
		h.coreToHW[info.Core] = append(h.coreToHW[info.Core], info.ID)
	}
}

// scheduleRegistration registers the process with the RM after the libharp
// startup delay — until then the app runs unmanaged, exactly like a process
// whose library is still initialising.
func (h *harpHarness) scheduleRegistration(p *sim.Proc) {
	var cancel func()
	cancel = h.machine.Every(h.opts.RegistrationDelay, func(time.Duration) {
		cancel()
		h.register(p)
	})
}

func (h *harpHarness) register(p *sim.Proc) {
	if p.Done() {
		return
	}
	prof := p.Profile()
	if err := h.mon.Track(p.ID()); err != nil {
		return
	}
	// Record the instance before registering: the RM pushes the first
	// decision synchronously from within Register.
	h.managed[p.Name()] = p
	h.instDirty = true
	if err := h.mgr.Register(p.Name(), prof.Name, prof.Adaptivity, prof.OwnUtility); err != nil {
		delete(h.managed, p.Name())
		h.instDirty = true
		h.mon.Untrack(p.ID())
		return
	}
	h.sessionUp[p.Name()] = true
	h.lastSeen[p.Name()] = h.machine.Now()
	h.retax()
}

// retax applies the management overhead model to every managed process.
func (h *harpHarness) retax() {
	n := len(h.managed)
	tax := 0.0
	if n > 0 {
		tax = h.opts.TaxBase + h.opts.TaxPerApp*float64(n-1)
	}
	for _, p := range h.managed {
		_ = h.machine.SetRateTax(p.ID(), tax)
	}
}

// applyDecision is the libharp side of the activation push (§4.1.1 step 3).
func (h *harpHarness) applyDecision(d core.Decision) {
	if h.opts.Policy == PolicyHARPOverhead {
		// §6.6: messages flow but libharp ignores them.
		return
	}
	p, ok := h.managed[d.Instance]
	if !ok || p.Done() {
		return
	}
	var cores []int
	var hws []sim.HWThread
	for _, g := range d.Grants {
		if g.Core < 0 || g.Core >= len(h.coreToHW) {
			continue
		}
		cores = append(cores, g.Core)
		siblings := h.coreToHW[g.Core]
		n := g.Threads
		if n > len(siblings) {
			n = len(siblings)
		}
		hws = append(hws, siblings[:n]...)
	}
	if len(hws) == 0 {
		// A parked decision (quarantine): the RM reclaimed every core. The
		// simulated process keeps its last affinity — a real unmanaged app
		// keeps running too — but the standing grant is gone, which the
		// timeline records as an empty allocation.
		h.recordTimeline(d.Instance, d.Vector.Key(), d.Threads, nil, d.Exploring, d.CoAllocated)
		return
	}
	if err := h.machine.SetAffinity(p.ID(), hws); err != nil {
		return
	}
	h.mon.ResetSmoothing(p.ID())
	if d.Threads > 0 && h.opts.Policy != PolicyHARPNoScaling {
		_ = h.machine.SetThreads(p.ID(), d.Threads)
	}
	h.recordTimeline(d.Instance, d.Vector.Key(), d.Threads, cores, d.Exploring, d.CoAllocated)
}

// recordTimeline appends one applied decision when timeline capture is on.
func (h *harpHarness) recordTimeline(instance, vectorKey string, threads int, cores []int, exploring, coAlloc bool) {
	if !h.opts.RecordTimeline {
		return
	}
	h.timeline = append(h.timeline, TimelineEvent{
		AtSec:       h.machine.Now().Seconds(),
		Instance:    instance,
		VectorKey:   vectorKey,
		Threads:     threads,
		Cores:       cores,
		Exploring:   exploring,
		CoAllocated: coAlloc,
	})
}

// instances returns the managed instance names in sorted order, rebuilding
// the cached slice only when the managed set changed since the last tick.
func (h *harpHarness) instances() []string {
	if h.instDirty {
		h.instOrder = h.instOrder[:0]
		for instance := range h.managed {
			h.instOrder = append(h.instOrder, instance)
		}
		sort.Strings(h.instOrder)
		h.instDirty = false
	}
	return h.instOrder
}

// measureTick is the 50 ms monitoring cadence: inject due faults, sample
// every managed app and feed the RM (in deterministic instance order), then
// run the liveness sweep.
func (h *harpHarness) measureTick(now time.Duration) {
	h.injectFaults(now)
	samples := h.mon.Sample()
	for _, instance := range h.instances() {
		if h.mutedAt(instance, now) {
			continue // the fault severed this instance's libharp channel
		}
		if !h.sessionUp[instance] {
			continue // reaped and not (yet) reconnected
		}
		p := h.managed[instance]
		meas, ok := samples[p.ID()]
		if !ok {
			continue
		}
		prof := p.Profile()
		utility := meas.SmoothedIPS
		if prof.OwnUtility {
			utility = meas.UsefulRate * prof.UtilityScale
		}
		if h.opts.Tracer.Enabled() {
			h.opts.Tracer.Emit(telemetry.Event{
				Kind:     telemetry.EvAppSample,
				Instance: instance,
				App:      prof.Name,
				Utility:  meas.IPS,
				Power:    meas.PowerW,
				Vals:     [4]float64{meas.SmoothedIPS, meas.SmoothedPower},
			})
		}
		_ = h.mgr.Measure(instance, utility, meas.SmoothedPower)
		h.lastSeen[instance] = now
	}
	h.livenessSweep(now)
	if h.stableAtSec < 0 && len(h.managed) > 0 && h.mgr.AllStable() {
		h.stableAtSec = now.Seconds()
	}
}

// injectFaults delivers every fault that has come due on the virtual clock.
// Connection-level kinds that have no session analogue in the simulator
// (slow readers, delayed writes) are ignored; a disconnect is a dropout of
// one measure interval.
func (h *harpHarness) injectFaults(now time.Duration) {
	for _, f := range h.faults.Due(now) {
		switch f.Kind {
		case faultsim.KindRMCrash:
			h.restartRM(now)
			continue
		case faultsim.KindSolverStall:
			// The stall duration maps onto a count of skipped primary
			// solves — one per measure tick — so the injection is
			// deterministic on the virtual clock (no wall time involved).
			h.mgr.ForceDegradedSolves(h.faultTicks(f.Duration))
			continue
		case faultsim.KindStoreIO:
			if h.st != nil {
				h.st.InjectIOFaults(h.faultTicks(f.Duration))
			}
			continue
		}
		p, ok := h.managed[f.Target]
		if !ok || p.Done() {
			continue
		}
		switch f.Kind {
		case faultsim.KindCrash:
			h.muted[f.Target] = &muteState{until: -1}
		case faultsim.KindHang:
			h.muted[f.Target] = &muteState{until: now + f.Duration}
		case faultsim.KindDropout:
			h.muted[f.Target] = &muteState{until: now + f.Duration, reconnect: true}
		case faultsim.KindDisconnect:
			h.muted[f.Target] = &muteState{until: now + h.opts.MeasureEvery, reconnect: true}
		}
	}
}

// faultTicks converts an RM-fault duration into a count of measure ticks
// (minimum one): how many solves or writes the fault covers.
func (h *harpHarness) faultTicks(d time.Duration) int {
	n := int(d / h.opts.MeasureEvery)
	if n < 1 {
		n = 1
	}
	return n
}

// restartRM simulates kill -9 of the resource manager followed by an
// immediate restart: the store is closed without a final snapshot (WAL only,
// exactly the crash the durable layer exists for), reopened, and a fresh
// Manager replays the recovered state. Every session died with the old RM;
// live unmuted clients re-register immediately (libharp auto-reconnect),
// muted ones when their own fault lifts.
func (h *harpHarness) restartRM(now time.Duration) {
	cfg := h.coreCfg
	if h.st != nil {
		_ = h.st.Close() // crash: no snapshot
		st, err := store.Open(h.opts.StateDir, store.Options{Metrics: h.opts.Metrics, Tracer: h.opts.Tracer})
		if err != nil {
			return // state dir unusable: keep the old RM running
		}
		h.st = st
		cfg.Store = st
	}
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return
	}
	if h.st != nil {
		if err := mgr.ImportState(h.st.RecoveredState(), h.st.Recovery()); err != nil {
			return
		}
	}
	h.mgr = mgr
	mgr.OnDecision(h.applyDecision)
	h.rmRestarts++
	for _, instance := range h.instances() {
		h.sessionUp[instance] = false
	}
	// The restart severed every connection, so even clients muted by a
	// timed fault come back through the reconnect path once they recover.
	for _, ms := range h.muted {
		if ms.until >= 0 {
			ms.reconnect = true
		}
	}
	for _, instance := range h.instances() {
		if _, isMuted := h.muted[instance]; isMuted {
			continue
		}
		h.reconnectSession(instance, now)
	}
}

// shutdownStore ends a clean run: final snapshot, then release the store.
func (h *harpHarness) shutdownStore() error {
	if h.st == nil {
		return nil
	}
	err := h.mgr.SnapshotTo(h.st)
	if cerr := h.st.Close(); err == nil {
		err = cerr
	}
	h.st = nil
	return err
}

// abandonStore releases the store without a snapshot (failed runs).
func (h *harpHarness) abandonStore() {
	if h.st != nil {
		_ = h.st.Close()
		h.st = nil
	}
}

// mutedAt reports whether the instance's libharp channel is severed at now,
// lifting expired mutes and re-registering dropout victims whose session the
// reaper collected in the meantime (the simulated auto-reconnect).
func (h *harpHarness) mutedAt(instance string, now time.Duration) bool {
	ms, ok := h.muted[instance]
	if !ok {
		return false
	}
	if ms.until < 0 || now < ms.until {
		return true
	}
	delete(h.muted, instance)
	if ms.reconnect && !h.sessionUp[instance] {
		h.reconnectSession(instance, now)
	}
	return false
}

// reconnectSession re-registers a dropout victim, the harness-side analogue
// of libharp's auto-reconnect after a server- or network-induced session
// loss.
func (h *harpHarness) reconnectSession(instance string, now time.Duration) {
	p := h.managed[instance]
	if p == nil || p.Done() {
		return
	}
	prof := p.Profile()
	if err := h.mgr.Register(instance, prof.Name, prof.Adaptivity, prof.OwnUtility); err != nil {
		return
	}
	h.sessionUp[instance] = true
	h.lastSeen[instance] = now
}

// livenessSweep escalates silent sessions on the virtual clock: suspect →
// quarantined (cores reclaimed, learning frozen) → reaped. Runs once per
// measure tick, so reclamation is bounded by ReapAfter plus one tick.
func (h *harpHarness) livenessSweep(now time.Duration) {
	if !h.liveness.Enabled() {
		return
	}
	for _, instance := range h.instances() {
		if !h.sessionUp[instance] {
			continue
		}
		age := now - h.lastSeen[instance]
		if h.liveness.ShouldReap(age) {
			h.sessionUp[instance] = false
			_ = h.mgr.Reap(instance)
			h.recordTimeline(instance, "", 0, nil, false, false)
			continue
		}
		state := h.liveness.StateFor(age)
		reason := "silent"
		if state == core.LivenessLive {
			reason = "resumed"
		}
		_ = h.mgr.SetLiveness(instance, state, reason)
	}
}

func (h *harpHarness) onExit(p *sim.Proc) {
	if _, ok := h.managed[p.Name()]; ok {
		h.energyAt[p.Name()] = h.mon.Untrack(p.ID())
		if h.sessionUp[p.Name()] {
			_ = h.mgr.Deregister(p.Name())
			if h.trackSessions {
				h.recordTimeline(p.Name(), "", 0, nil, false, false)
			}
		}
		delete(h.managed, p.Name())
		delete(h.sessionUp, p.Name())
		delete(h.lastSeen, p.Name())
		delete(h.muted, p.Name())
		h.instDirty = true
		h.retax()
	}
	if h.repeat && h.machine.Now() < h.repeatUntil {
		prof := p.Profile()
		h.restartCount[prof.Name]++
		instance := fmt.Sprintf("%s~r%d", prof.Name, h.restartCount[prof.Name])
		_, _ = h.machine.Start(prof, instance)
	}
}

func (h *harpHarness) attributedEnergy(p *sim.Proc) float64 {
	return h.energyAt[p.Name()]
}
