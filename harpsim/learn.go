package harpsim

import (
	"fmt"
	"time"

	"github.com/harp-rm/harp/internal/opoint"
)

// LearnResult is what a learning (warm-up) run produces.
type LearnResult struct {
	// Tables are the final learned operating-point tables per application.
	Tables map[string]*opoint.Table
	// Snapshots are periodic captures of the learning state (Fig. 8 uses
	// 5 s intervals).
	Snapshots []Snapshot
	// StableAfterSec is when every application first reached the stable
	// stage (−1 if never within the horizon).
	StableAfterSec float64
}

// LearnTables runs the scenario under PolicyHARP in repeat mode: finished
// applications restart immediately, so runtime exploration can mature the
// way the paper's warm-up phase does (§6.5). It returns the learned tables
// and, if snapshotEvery > 0, periodic snapshots of the tables and stage
// status.
func LearnTables(sc Scenario, learnFor, snapshotEvery time.Duration, opts Options) (*LearnResult, error) {
	opts = opts.withDefaults()
	opts.Policy = PolicyHARP
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if learnFor <= 0 {
		return nil, fmt.Errorf("harpsim: learn duration %v", learnFor)
	}
	if !sc.Platform.SimultaneousPMU {
		return nil, fmt.Errorf(
			"harpsim: platform %s cannot learn online (no simultaneous PMU access)", sc.Platform.Name)
	}

	machine, err := newMachine(sc, opts)
	if err != nil {
		return nil, err
	}
	harness, err := attachHARP(machine, sc, opts)
	if err != nil {
		return nil, err
	}
	harness.repeat = true
	harness.repeatUntil = learnFor

	result := &LearnResult{StableAfterSec: -1}
	if snapshotEvery > 0 {
		machine.Every(snapshotEvery, func(now time.Duration) {
			result.Snapshots = append(result.Snapshots, Snapshot{
				AtSec:     now.Seconds(),
				AllStable: harness.mgr.AllStable() && len(harness.managed) > 0,
				Tables:    harness.mgr.LearnedTables(),
			})
		})
	}

	if err := startApps(machine, sc.Apps); err != nil {
		return nil, err
	}
	if err := machine.Run(learnFor); err != nil {
		return nil, fmt.Errorf("harpsim: learning %s: %w", sc.Name, err)
	}

	result.Tables = harness.mgr.LearnedTables()
	result.StableAfterSec = harness.stableAtSec
	return result, nil
}
