// Package harpsim composes the HARP middleware with the simulated
// heterogeneous machine into runnable scenarios: pick a platform, a set of
// applications and a management policy, and obtain makespan and energy — the
// measurements behind every figure of the paper's evaluation. It is the
// public entry point for experiments, benchmarks and examples.
package harpsim

import (
	"errors"
	"fmt"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// Policy selects how the machine is managed.
type Policy int

// Policies evaluated in the paper (§6.3, §6.4).
const (
	// PolicyCFS is the Linux baseline on Intel.
	PolicyCFS Policy = iota + 1
	// PolicyEAS is the Linux Energy-Aware Scheduler baseline on the Odroid.
	PolicyEAS
	// PolicyITD is the Intel-Thread-Director-guided allocator baseline.
	PolicyITD
	// PolicyHARP is HARP with online exploration.
	PolicyHARP
	// PolicyHARPOffline is HARP driven purely by pre-generated operating
	// points (no online exploration) — the only HARP mode on the Odroid.
	PolicyHARPOffline
	// PolicyHARPNoScaling is the ablation: HARP restricts applications to
	// their allocations but never adapts their parallelisation degree.
	PolicyHARPNoScaling
	// PolicyHARPOverhead is the §6.6 overhead configuration: full
	// monitoring, exploration and communication, but libharp drops the
	// activation messages, leaving applications scheduled like CFS.
	PolicyHARPOverhead
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyCFS:
		return "cfs"
	case PolicyEAS:
		return "eas"
	case PolicyITD:
		return "itd"
	case PolicyHARP:
		return "harp"
	case PolicyHARPOffline:
		return "harp-offline"
	case PolicyHARPNoScaling:
		return "harp-noscaling"
	case PolicyHARPOverhead:
		return "harp-overhead"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// IsHARP reports whether the policy runs the HARP resource manager.
func (p Policy) IsHARP() bool {
	switch p {
	case PolicyHARP, PolicyHARPOffline, PolicyHARPNoScaling, PolicyHARPOverhead:
		return true
	default:
		return false
	}
}

// Scenario is one evaluation workload: a set of applications started
// together on a platform (the paper's single- and multi-application
// scenarios).
type Scenario struct {
	// Name labels the scenario, e.g. "ep" or "is+lu".
	Name string
	// Platform is the machine to simulate.
	Platform *platform.Platform
	// Apps are the application profiles, all started at t = 0.
	Apps []*workload.Profile
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if s.Platform == nil {
		return errors.New("harpsim: scenario without platform")
	}
	if err := s.Platform.Validate(); err != nil {
		return err
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("harpsim: scenario %q without applications", s.Name)
	}
	for _, p := range s.Apps {
		if p == nil {
			return fmt.Errorf("harpsim: scenario %q contains a nil profile", s.Name)
		}
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes a run. The zero value selects the paper's defaults.
type Options struct {
	// Policy selects the management policy (required).
	Policy Policy
	// OfflineTables supplies pre-generated operating points per application
	// name (used by the HARP policies; mandatory for PolicyHARPOffline).
	OfflineTables map[string]*opoint.Table
	// Governor is the DVFS governor model; zero selects powersave.
	Governor sim.Governor
	// Horizon bounds the simulation; zero selects 30 virtual minutes.
	Horizon time.Duration
	// Seed drives measurement noise.
	Seed int64
	// RegistrationDelay models the libharp startup/registration cost before
	// an application is managed; zero selects 150 ms.
	RegistrationDelay time.Duration
	// MeasureEvery is the monitoring cadence; zero selects 50 ms (§5.3).
	MeasureEvery time.Duration
	// Explore tunes runtime exploration.
	Explore explore.Config
	// ReallocEvery is the stable-stage reallocation cadence in
	// measurements; zero selects the paper's 100.
	ReallocEvery int
	// TaxBase and TaxPerApp model HARP's management overhead as a fraction
	// of useful progress per managed application: overall tax =
	// TaxBase + TaxPerApp·(managed−1). Zeros select 0.4 % and 0.5 %,
	// reproducing §6.6's < 1 % single-app / ≈ 2.5 % multi-app overhead.
	TaxBase, TaxPerApp float64
	// RecordTimeline captures every applied allocation decision in
	// Result.Timeline — the raw material for allocation Gantt charts and
	// for debugging management behaviour.
	RecordTimeline bool
	// Tracer receives the run's structured adaptation-loop events (HARP
	// policies only; nil disables). Its clock is rebound to the machine's
	// virtual time, so event streams are deterministic and replayable;
	// Tracer.WriteChromeTrace renders the run for Perfetto.
	Tracer *telemetry.Tracer
	// Journal records one JSONL epoch per decision batch (nil disables).
	Journal *telemetry.Journal
	// Metrics receives the adaptation-loop instruments (nil disables). The
	// allocation-latency histogram stays empty: wall time would measure the
	// host, not the simulated system.
	Metrics *telemetry.Metrics
	// Energy attaches an energy ledger to the simulated RM (HARP policies
	// only; nil disables). Its clock is rebound to the machine's virtual
	// time, so joule integrals are deterministic; the caller reads totals
	// from the ledger after Run returns. An rm-crash restart reuses the
	// same ledger, re-seeded from the recovered state like harpd would.
	Energy *telemetry.EnergyLedger
	// Liveness sets the RM's silence deadlines on the simulator's virtual
	// clock: a session whose measurements stop flowing is suspected,
	// quarantined (cores reclaimed, learning frozen) and finally reaped.
	// The zero value disables liveness tracking.
	Liveness core.LivenessPolicy
	// Faults schedules deterministic client failures (crashes, hangs,
	// dropouts) against the managed instances — and, with target
	// faultsim.RMTarget, crashes of the resource manager itself. Same plan,
	// same seed, same scenario → byte-identical decision journals. Nil
	// disables injection.
	Faults *faultsim.Plan
	// StateDir makes the simulated RM durable (HARP policies only): learned
	// state is recovered from the directory at start, mutations are
	// WAL-logged, a clean run ends with a snapshot — and an injected
	// rm-crash fault restarts the RM warm from disk mid-run, exactly like
	// harpd after kill -9. Empty disables persistence; rm-crash then
	// restarts the RM cold.
	StateDir string
	// AllocCacheSize sizes the RM's fingerprinted solution cache (0 =
	// default, negative = off). The cache is decision-transparent: the same
	// scenario and seed produce byte-identical journals with it on or off
	// except for the lambda_iters/solve_source bookkeeping fields.
	AllocCacheSize int
	// AllocWarmStart seeds each solve from the previous epoch's λ vector.
	AllocWarmStart bool
}

// TimelineEvent is one applied allocation decision.
type TimelineEvent struct {
	// AtSec is the virtual time the decision was applied.
	AtSec float64
	// Instance is the application instance affected.
	Instance string
	// VectorKey is the activated extended resource vector.
	VectorKey string
	// Threads is the applied parallelisation degree (0 = unchanged).
	Threads int
	// Cores lists the granted core IDs (empty for parked decisions and for
	// the session-clearing events recorded on reap, deregistration and
	// exit — an empty grant ends the instance's standing allocation).
	Cores []int
	// Exploring marks exploration configurations.
	Exploring bool
	// CoAllocated marks time-shared allocations.
	CoAllocated bool
}

func (o Options) withDefaults() Options {
	if o.Horizon == 0 {
		o.Horizon = 30 * time.Minute
	}
	if o.RegistrationDelay == 0 {
		o.RegistrationDelay = 150 * time.Millisecond
	}
	if o.MeasureEvery == 0 {
		o.MeasureEvery = 50 * time.Millisecond
	}
	if o.Governor == 0 {
		o.Governor = sim.GovernorPowersave
	}
	if o.TaxBase == 0 {
		o.TaxBase = 0.004
	}
	if o.TaxPerApp == 0 {
		o.TaxPerApp = 0.005
	}
	return o
}

// AppResult is one application's outcome.
type AppResult struct {
	// TimeSec is the application's own execution time.
	TimeSec float64
	// DynEnergyJ is the application's ground-truth dynamic energy.
	DynEnergyJ float64
	// AttributedEnergyJ is the energy HARP's monitor attributed to the
	// application (0 for baseline policies).
	AttributedEnergyJ float64
}

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario and Policy echo the inputs.
	Scenario string
	Policy   Policy
	// MakespanSec is the completion time of the last application.
	MakespanSec float64
	// EnergyJ is the total package energy over the run.
	EnergyJ float64
	// Apps holds per-application results keyed by instance name.
	Apps map[string]AppResult
	// StableAfterSec is when every application reached the stable stage
	// (−1 if not applicable or never reached).
	StableAfterSec float64
	// Timeline holds the applied decisions when Options.RecordTimeline is
	// set (HARP policies only).
	Timeline []TimelineEvent
	// RMRestarts counts injected rm-crash faults the RM recovered from.
	RMRestarts int
}

// Snapshot captures the learning state at one instant (Fig. 8 snapshots the
// operating-point tables every 5 s).
type Snapshot struct {
	// AtSec is the virtual time of the snapshot.
	AtSec float64
	// AllStable reports whether every application had reached the stable
	// stage.
	AllStable bool
	// Tables are deep copies of the per-application operating-point tables.
	Tables map[string]*opoint.Table
}

// OfflineDSETables runs the closed-form design-space exploration for each
// profile: the exhaustive sweep a vendor would ship as application
// description files (§3.2.1). The allocator Pareto-filters, so full tables
// are fine.
func OfflineDSETables(plat *platform.Platform, profiles []*workload.Profile) map[string]*opoint.Table {
	return OfflineDSETablesParallel(plat, profiles, 0)
}

// OfflineDSETablesParallel is OfflineDSETables with an explicit parallelism
// bound (0 = one worker per CPU, 1 = sequential). Each profile's design-space
// exploration is an independent deterministic unit, so the tables are
// identical at any parallelism level.
func OfflineDSETablesParallel(plat *platform.Platform, profiles []*workload.Profile, parallelism int) map[string]*opoint.Table {
	tables, err := parallel.Map(parallelism, len(profiles), func(i int) (*opoint.Table, error) {
		prof := profiles[i]
		tbl := &opoint.Table{App: prof.Name, Platform: plat.Name}
		for _, rv := range platform.EnumerateVectors(plat, 0) {
			ev := workload.EvaluateVector(plat, prof, rv)
			tbl.Upsert(opoint.OperatingPoint{
				Vector:   rv,
				Utility:  ev.Utility,
				Power:    ev.PowerWatts,
				Measured: true,
			})
		}
		return tbl, nil
	})
	if err != nil {
		// The unit function never returns an error; only a worker panic can
		// land here, and that would have crashed the sequential loop too.
		panic(err)
	}
	out := make(map[string]*opoint.Table, len(profiles))
	for i, prof := range profiles {
		out[prof.Name] = tables[i]
	}
	return out
}
