package harpsim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/harp-rm/harp/internal/telemetry"
)

// tracedRun executes one scenario with the full telemetry stack attached and
// returns the serialized journal and Chrome trace plus the raw event stream.
func tracedRun(t *testing.T, sc Scenario, opts Options) (journal, trace []byte, events []telemetry.Event, res *Result) {
	t.Helper()
	var jbuf, cbuf bytes.Buffer
	tr := telemetry.NewTracer(1 << 18)
	opts.Tracer = tr
	opts.Journal = telemetry.NewJournal(&jbuf)
	opts.Metrics = telemetry.NewMetrics(telemetry.NewRegistry())
	opts.Energy = telemetry.NewEnergyLedger()
	opts.RecordTimeline = true
	res = mustRun(t, sc, opts)
	if err := opts.Journal.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer evicted %d events; grow the test capacity", tr.Dropped())
	}
	if err := tr.WriteChromeTrace(&cbuf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return jbuf.Bytes(), cbuf.Bytes(), tr.Events(), res
}

// TestSimJournalMatchesDecisions is the telemetry acceptance check: a traced
// run must produce a JSONL journal whose epochs, concatenated, are exactly
// the decisions the RM pushed (the EvDecisionPushed stream), in order.
func TestSimJournalMatchesDecisions(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	journal, _, events, res := tracedRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3,
	})

	var pushed []telemetry.Event
	for _, ev := range events {
		if ev.Kind == telemetry.EvDecisionPushed {
			pushed = append(pushed, ev)
		}
	}
	if len(pushed) == 0 {
		t.Fatal("run pushed no decisions")
	}
	if len(res.Timeline) == 0 || len(res.Timeline) > len(pushed) {
		t.Errorf("timeline has %d events, pushed %d decisions", len(res.Timeline), len(pushed))
	}

	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(epochs) == 0 {
		t.Fatal("journal is empty")
	}
	var outs []telemetry.EpochOutput
	for i, rec := range epochs {
		if rec.Epoch != i+1 {
			t.Errorf("epoch %d numbered %d", i, rec.Epoch)
		}
		if rec.Trigger == "" {
			t.Errorf("epoch %d without trigger", i)
		}
		if len(rec.Inputs) == 0 && len(rec.Outputs) == 0 {
			t.Errorf("epoch %d (%s) is empty", i, rec.Trigger)
		}
		outs = append(outs, rec.Outputs...)
	}
	if len(outs) != len(pushed) {
		t.Fatalf("journal records %d decisions, run pushed %d", len(outs), len(pushed))
	}
	for i, out := range outs {
		ev := pushed[i]
		if out.Instance != ev.Instance || out.Seq != ev.Seq || out.Vector != ev.Vector ||
			out.Threads != int(ev.Vals[0]) || out.Cores != int(ev.Vals[1]) ||
			out.Exploring != ev.Exploring || out.CoAllocated != ev.CoAllocated ||
			out.PredPowerW != ev.Power {
			t.Fatalf("decision %d: journal %+v ≠ pushed %+v", i, out, ev)
		}
	}
}

// TestSimChromeTraceIsValid checks the Perfetto export of a traced run: a
// parseable trace_event array with counter tracks for every app, instant
// decision events, and per-track name metadata.
func TestSimChromeTraceIsValid(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	_, trace, _, _ := tracedRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3,
	})

	var evs []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(trace, &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byPh := map[string]int{}
	tracks := map[string]bool{}
	lastTs := 0.0
	for _, ev := range evs {
		byPh[ev.Ph]++
		if ev.Ph == "M" {
			tracks[ev.Args["name"].(string)] = true
			continue
		}
		if ev.Ts < 0 {
			t.Fatalf("negative timestamp in %+v", ev)
		}
		if ev.Ts < lastTs {
			t.Fatalf("timestamps not monotonic: %.1f after %.1f", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
	}
	if byPh["C"] == 0 || byPh["i"] == 0 || byPh["M"] == 0 {
		t.Errorf("trace event mix %v, want counters, instants and metadata", byPh)
	}
	if !tracks["cg.C"] || !tracks["is.C"] || !tracks["rm"] {
		t.Errorf("trace tracks %v, want both apps and the RM", tracks)
	}
}

// TestSimTelemetryDeterministic pins the replay contract: two runs of the
// same scenario and seed serialize to byte-identical journals and traces,
// because the tracer is driven by virtual time.
func TestSimTelemetryDeterministic(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	opts := Options{Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3}
	j1, c1, _, _ := tracedRun(t, sc, opts)
	j2, c2, _, _ := tracedRun(t, sc, opts)
	if !bytes.Equal(j1, j2) {
		t.Error("journals differ between identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("Chrome traces differ between identical runs")
	}
}

// TestSimPhaseSpansTraced: with the flight recorder on, the epoch phases
// show up as balanced begin/end span pairs covering the adaptation loop.
func TestSimPhaseSpansTraced(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	_, _, events, _ := tracedRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3,
	})

	begins, ends := map[string]int{}, map[string]int{}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvSpanBegin:
			begins[ev.Stage]++
		case telemetry.EvSpanEnd:
			ends[ev.Stage]++
		}
	}
	for _, phase := range []string{
		telemetry.PhaseEpoch, telemetry.PhaseSnapshot, telemetry.PhaseFingerprint,
		telemetry.PhaseSolve, telemetry.PhasePush, telemetry.PhaseJournal,
		telemetry.PhaseMeasure,
	} {
		if begins[phase] == 0 {
			t.Errorf("no %s spans in a traced run", phase)
		}
		if begins[phase] != ends[phase] {
			t.Errorf("%s spans unbalanced: %d begins, %d ends", phase, begins[phase], ends[phase])
		}
	}
}

// TestSimEnergyAccounting is the energy acceptance check: a seeded run
// attributes a positive joule total, the per-session rows plus the retired
// accumulator conserve it exactly, and the journalled energy_j field is
// monotone non-decreasing across epochs.
func TestSimEnergyAccounting(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	led := telemetry.NewEnergyLedger()
	var jbuf bytes.Buffer
	mustRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3,
		Journal: telemetry.NewJournal(&jbuf), Energy: led,
	})

	tot := led.Totals()
	if tot.Joules <= 0 {
		t.Fatalf("fleet joules = %.6f, want > 0 from a managed run", tot.Joules)
	}
	if tot.UtilityS <= 0 {
		t.Errorf("fleet utility-seconds = %.6f, want > 0", tot.UtilityS)
	}
	var sum float64
	for _, se := range led.Sessions() {
		sum += se.Joules
	}
	if diff := sum + tot.RetiredJoules - tot.Joules; math.Abs(diff) > 1e-9 {
		t.Errorf("energy conservation violated: sessions %.12f + retired %.12f != fleet %.12f",
			sum, tot.RetiredJoules, tot.Joules)
	}

	epochs, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	last := 0.0
	budgeted := false
	for i, rec := range epochs {
		if rec.EnergyJ < last {
			t.Errorf("epoch %d energy_j regressed: %.6f after %.6f", i, rec.EnergyJ, last)
		}
		last = rec.EnergyJ
		if rec.PowerBudgetW > 0 {
			budgeted = true
		}
	}
	if last <= 0 {
		t.Error("journal never recorded a positive energy_j")
	}
	if !budgeted {
		t.Error("journal never recorded a power budget")
	}
}

// TestSimOnlineExplorationTraced runs online HARP and checks the learning
// path shows up in the event stream and journal triggers.
func TestSimOnlineExplorationTraced(t *testing.T) {
	// Two apps so the first exit triggers a "deregister" reallocation epoch
	// (the last session's exit leaves nothing to decide about, so it only
	// emits the session-exited event).
	sc := intelScenario(t, "cg.C", "ep.C")
	journal, _, events, _ := tracedRun(t, sc, Options{Policy: PolicyHARP, Seed: 5})

	kinds := map[telemetry.EventKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvSessionRegistered, telemetry.EvSessionExited,
		telemetry.EvMeasureSample, telemetry.EvAppSample, telemetry.EvMonitorSample,
		telemetry.EvExplorationStep, telemetry.EvTableUpdated,
		telemetry.EvAllocationComputed, telemetry.EvDecisionPushed,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in an online run", k)
		}
	}

	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	triggers := map[string]bool{}
	for _, rec := range epochs {
		triggers[rec.Trigger] = true
	}
	if !triggers["register"] || !triggers["deregister"] {
		t.Errorf("journal triggers %v, want session lifecycle", triggers)
	}
	if !triggers["exploration"] && !triggers["graduation"] && !triggers["cadence"] {
		t.Errorf("journal triggers %v, want learning-driven epochs", triggers)
	}
}

// Telemetry is HARP-only: baseline policies must leave the instruments
// untouched even when handed in.
func TestSimBaselineEmitsNothing(t *testing.T) {
	sc := intelScenario(t, "ep.C")
	tr := telemetry.NewTracer(64)
	var jbuf bytes.Buffer
	mustRun(t, sc, Options{
		Policy:  PolicyCFS,
		Tracer:  tr,
		Journal: telemetry.NewJournal(&jbuf),
	})
	if tr.Total() != 0 {
		t.Errorf("CFS run emitted %d events", tr.Total())
	}
	if jbuf.Len() != 0 {
		t.Errorf("CFS run wrote %d journal bytes", jbuf.Len())
	}
}
