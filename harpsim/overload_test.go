package harpsim

import (
	"bytes"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
)

// degradedRung reports whether the solve source is a degradation-ladder
// rung (as opposed to a healthy cold/warm/cached solve).
func degradedRung(source string) bool {
	switch source {
	case alloc.SourceDegradedGreedy, alloc.SourceDegradedStale, alloc.SourceFrozen:
		return true
	}
	return false
}

// Acceptance: an injected solver stall degrades epochs onto the greedy
// fallback rung — journalled, counted, pushing decisions throughout — and
// the loop returns to healthy solves once the stall lifts. No epoch is
// lost and no core is double-granted along the way.
func TestOverloadSolverStallDegradesAndRecovers(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	plan := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: 3 * time.Second, Target: faultsim.RMTarget, Kind: faultsim.KindSolverStall, Duration: 500 * time.Millisecond},
	}}
	res, journal, mt := chaosRun(t, sc, plan, 23)

	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	degraded, maxStreak, streak := 0, 0, 0
	for _, rec := range epochs {
		if degradedRung(rec.SolveSource) {
			degraded++
			streak++
			if streak > maxStreak {
				maxStreak = streak
			}
			if rec.SolveSource == alloc.SourceDegradedGreedy && rec.Error != "" {
				t.Errorf("degraded-greedy epoch at %.2fs journalled Error %q", rec.AtSec, rec.Error)
			}
		} else {
			streak = 0
		}
	}
	if degraded == 0 {
		t.Fatal("solver stall never produced a degraded epoch")
	}
	// Bounded degradation: the stall covers 500 ms of measure ticks; the
	// ladder must not stay engaged past the injected window.
	if stallEpochs := int(plan.Faults[0].Duration/(50*time.Millisecond)) + 2; maxStreak > stallEpochs {
		t.Errorf("degraded streak of %d epochs exceeds the %d-epoch stall window", maxStreak, stallEpochs)
	}
	if last := epochs[len(epochs)-1]; degradedRung(last.SolveSource) {
		t.Errorf("final epoch still degraded (%s): the ladder never released", last.SolveSource)
	}
	if got := mt.EpochDegraded.With(alloc.SourceDegradedGreedy).Value(); got == 0 {
		t.Error("harp_epoch_degraded_total{rung=degraded-greedy} = 0")
	}
	if got := mt.EpochFailures.Value(); got == 0 {
		t.Error("harp_epoch_failures_total = 0 under injected stalls")
	}
	assertNoDoubleGrant(t, res.Timeline)
}

// Acceptance: injected store I/O faults push the durable layer into
// degraded mode (retries counted) without ever stopping allocation; once
// the faults clear, the store heals and the final snapshot lands, so a
// restart recovers warm.
func TestOverloadStoreIOFaultsDegradeDurabilityNotAllocation(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	dir := t.TempDir()
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	var journal bytes.Buffer
	// The fault lands before the 150 ms registrations: the first session's
	// WAL append exhausts its retries (200 ms of faults = four failing
	// writes), the next append heals the store.
	plan := &faultsim.Plan{Faults: []faultsim.Fault{
		{At: 50 * time.Millisecond, Target: faultsim.RMTarget, Kind: faultsim.KindStoreIO, Duration: 200 * time.Millisecond},
	}}
	res := mustRun(t, sc, Options{
		Policy:         PolicyHARPOffline,
		OfflineTables:  tables,
		Seed:           29,
		Liveness:       chaosLiveness(),
		Faults:         plan,
		StateDir:       dir,
		Tracer:         telemetry.NewTracer(1),
		Journal:        telemetry.NewJournal(&journal),
		Metrics:        mt,
		RecordTimeline: true,
	})

	if got := mt.StoreRetries.Value(); got == 0 {
		t.Error("harp_store_retries_total = 0 under injected store faults")
	}
	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs journalled: allocation stopped during the store outage")
	}
	for _, rec := range epochs {
		if degradedRung(rec.SolveSource) {
			t.Errorf("store outage degraded the solve at %.2fs (%s): durability and allocation must fail independently",
				rec.AtSec, rec.SolveSource)
		}
	}
	assertNoDoubleGrant(t, res.Timeline)

	// The store healed after the outage, so the clean shutdown snapshotted
	// and a restart recovers warm.
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen state dir: %v", err)
	}
	defer s.Close()
	if s.Recovery().ColdStart {
		t.Error("restart after a healed outage cold-started: the final snapshot is missing")
	}
}

// Acceptance: the full overload chaos mix — solver stalls, store faults
// and client failures in one churn run — replays byte-identically from the
// same seed, because every injection is count-based on the virtual clock.
func TestOverloadChurnSameSeedIdenticalJournals(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C", "is.C")
	targets := []string{"cg.C", "mg.C", "is.C"}
	run := func() []byte {
		plan := faultsim.Generate(41, targets, 10*time.Second, 4)
		plan.Faults = append(plan.Faults,
			faultsim.Fault{At: 2 * time.Second, Target: faultsim.RMTarget, Kind: faultsim.KindSolverStall, Duration: 300 * time.Millisecond},
			faultsim.Fault{At: 6 * time.Second, Target: faultsim.RMTarget, Kind: faultsim.KindSolverStall, Duration: 150 * time.Millisecond},
		)
		sort.Slice(plan.Faults, func(i, j int) bool { return plan.Faults[i].At < plan.Faults[j].At })
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		res, journal, _ := chaosRun(t, sc, plan, 43)
		assertNoDoubleGrant(t, res.Timeline)
		return journal
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("overload churn produced an empty journal")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same overload fault plan produced different journals")
	}
	epochs, err := telemetry.ReadJournal(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for _, rec := range epochs {
		if degradedRung(rec.SolveSource) {
			sawDegraded = true
			break
		}
	}
	if !sawDegraded {
		t.Error("churn plan never engaged the degradation ladder")
	}
}

// Acceptance: without faults the ladder stays dormant — no degraded solve
// sources, no error epochs — so unfaulted journals carry none of the new
// omitempty fields and stay byte-compatible with pre-ladder runs.
func TestOverloadUnfaultedJournalHasNoDegradedMarkers(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	_, journal, mt := chaosRun(t, sc, nil, 7)
	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("unfaulted run journalled no epochs")
	}
	for _, rec := range epochs {
		if degradedRung(rec.SolveSource) {
			t.Errorf("unfaulted epoch at %.2fs degraded (%s)", rec.AtSec, rec.SolveSource)
		}
		if rec.Error != "" {
			t.Errorf("unfaulted epoch at %.2fs has Error %q", rec.AtSec, rec.Error)
		}
	}
	if got := mt.EpochFailures.Value(); got != 0 {
		t.Errorf("harp_epoch_failures_total = %d on an unfaulted run", got)
	}
	if bytes.Contains(journal, []byte("solve_source\":\"degraded")) ||
		bytes.Contains(journal, []byte("solve_source\":\"frozen")) {
		t.Error("unfaulted journal bytes mention degraded solve sources")
	}
}

// TestOverloadSoak is the nightly long-churn run (HARP_SOAK=1): a larger
// fleet under a dense mixed fault plan — solver stalls, store outages,
// client crashes/hangs/dropouts — for minutes of virtual time. It asserts
// the hard invariants only (no double grant, ladder releases, journal
// parses); the point is surviving sustained overload, not exact numbers.
func TestOverloadSoak(t *testing.T) {
	if os.Getenv("HARP_SOAK") == "" {
		t.Skip("set HARP_SOAK=1 to run the overload soak")
	}
	suite := []string{"cg.C", "mg.C", "is.C", "cg.C", "mg.C", "is.C", "cg.C", "mg.C"}
	sc := intelScenario(t, suite...)
	targets := make([]string, 0, len(suite))
	seen := map[string]int{}
	for _, n := range suite {
		seen[n]++
		if seen[n] == 1 {
			targets = append(targets, n)
		} else {
			targets = append(targets, n+"#"+string(rune('0'+seen[n])))
		}
	}
	horizon := 5 * time.Minute
	plan := faultsim.Generate(97, targets, horizon, 40)
	for at := 10 * time.Second; at < horizon; at += 20 * time.Second {
		plan.Faults = append(plan.Faults,
			faultsim.Fault{At: at, Target: faultsim.RMTarget, Kind: faultsim.KindSolverStall, Duration: time.Second},
			faultsim.Fault{At: at + 7*time.Second, Target: faultsim.RMTarget, Kind: faultsim.KindStoreIO, Duration: 500 * time.Millisecond},
		)
	}
	sort.Slice(plan.Faults, func(i, j int) bool { return plan.Faults[i].At < plan.Faults[j].At })
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	var journal bytes.Buffer
	res := mustRun(t, sc, Options{
		Policy:         PolicyHARPOffline,
		OfflineTables:  tables,
		Seed:           101,
		Horizon:        horizon + time.Minute,
		Liveness:       chaosLiveness(),
		Faults:         plan,
		StateDir:       dir,
		Tracer:         telemetry.NewTracer(1),
		Journal:        telemetry.NewJournal(&journal),
		Metrics:        mt,
		RecordTimeline: true,
	})
	assertNoDoubleGrant(t, res.Timeline)

	epochs, err := telemetry.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("soak journalled no epochs")
	}
	if last := epochs[len(epochs)-1]; degradedRung(last.SolveSource) {
		t.Errorf("soak ended with the ladder still engaged (%s)", last.SolveSource)
	}
	if got := mt.EpochDegraded.With(alloc.SourceDegradedGreedy).Value(); got == 0 {
		t.Error("soak never exercised the greedy fallback rung")
	}
	if got := mt.StoreRetries.Value(); got == 0 {
		t.Error("soak never exercised the store retry path")
	}
	t.Logf("soak: %d epochs, %d degraded-greedy, %d store retries, %d rm sessions reaped",
		len(epochs), mt.EpochDegraded.With(alloc.SourceDegradedGreedy).Value(),
		mt.StoreRetries.Value(), mt.SessionsReaped.Value())
}
