package harpsim

// Open-loop churn harness: the 10k-session scale proof for coalesced epochs,
// incremental re-solves and sharded solving (ISSUE 9). Unlike Run, which
// simulates application execution on the virtual machine, RunChurn drives a
// core.Manager directly with a seeded stream of mutating events — Poisson
// session arrivals, exponential-ish departures, table uploads and phase
// changes — on a virtual 50 ms tick, and measures the wall-clock latency of
// every epoch the manager actually solves. The event stream is a pure
// function of the seed, so two same-seed runs produce byte-identical
// decision journals; sampled epochs are differentially verified against
// check.CheckAllocations through an instrumented allocator wrapper.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// ChurnOptions configures one open-loop churn run.
type ChurnOptions struct {
	// Platform is the machine (nil selects ChurnPlatform(4, 8) — four core
	// kinds so sharding forms real domains).
	Platform *platform.Platform
	// Sessions is the target concurrent session population (ramped up
	// before the measured phase).
	Sessions int
	// Ticks is how many 50 ms adaptation ticks the measured phase runs.
	Ticks int
	// EventsPerTick is the Poisson mean of mutating events per tick.
	EventsPerTick float64
	// Seed drives every random choice; same seed, same event stream, same
	// journal bytes.
	Seed int64
	// Coalesce is the manager's coalescing policy (zero = solve per event,
	// the historical behaviour the benchmark's "before" column measures).
	Coalesce core.CoalescePolicy
	// Sharded solves kind-footprint domains in parallel; ShardParallelism
	// bounds its workers (<= 0 = one per CPU).
	Sharded          bool
	ShardParallelism int
	// Incremental enables the allocator's incremental re-solve path.
	Incremental bool
	// CacheSize sizes the allocator's solution cache (0 = default,
	// negative = off).
	CacheSize int
	// Journal receives the decision journal (nil disables). Journaling is
	// O(sessions) per epoch, so large-population benchmark runs leave it
	// nil and the byte-identity test runs at a smaller population.
	Journal io.Writer
	// VerifyEvery differentially verifies every n-th solved epoch against
	// check.CheckAllocations (0 disables).
	VerifyEvery int
}

// ChurnResult reports one churn run.
type ChurnResult struct {
	// Epochs is how many solves actually ran; Events is how many mutating
	// events were driven. Coalescing makes Epochs << Events.
	Epochs int
	Events int
	// PeakSessions / FinalSessions describe the population.
	PeakSessions  int
	FinalSessions int
	// SolveSources counts epochs by Stats.Source (cold, cached,
	// incremental, sharded, ...).
	SolveSources map[string]int
	// Verified counts epochs that passed the CheckAllocations oracle.
	Verified int
	// P50/P99/Max are wall-clock latencies of the calls (events and ticks)
	// in which at least one solve ran — the epoch latency the 50 ms tick
	// bounds.
	P50, P99, Max time.Duration
}

// ChurnPlatform builds a synthetic multi-kind machine for churn runs: kinds
// core kinds with coresPer cores each, no SMT. Several kinds matter — the
// sharded allocator's domains follow kind footprints.
func ChurnPlatform(kinds, coresPer int) *platform.Platform {
	p := &platform.Platform{
		Name:            fmt.Sprintf("churn-%dx%d", kinds, coresPer),
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
	}
	for k := 0; k < kinds; k++ {
		p.Kinds = append(p.Kinds, platform.CoreKind{
			Name:        fmt.Sprintf("K%d", k),
			Count:       coresPer,
			SMT:         1,
			MaxFreqGHz:  3 - 0.2*float64(k),
			MinFreqGHz:  0.5,
			IPC:         2 - 0.1*float64(k),
			ActiveWatts: 2 - 0.2*float64(k),
			IdleWatts:   0.2,
			SleepWatts:  0.02,
		})
	}
	if err := p.Validate(); err != nil {
		panic(err) // static construction; cannot fail for kinds,coresPer >= 1
	}
	return p
}

// verifyingAllocator wraps the solve so the harness can count epochs,
// aggregate sources and hand sampled (inputs, allocs) pairs to the oracle.
type verifyingAllocator struct {
	inner      core.Allocator
	solves     int
	lastInputs []alloc.AppInput
	lastAllocs []alloc.Allocation
	lastSource string
}

func (v *verifyingAllocator) AllocateWithStats(apps []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error) {
	allocs, stats, err := v.inner.AllocateWithStats(apps)
	if err != nil {
		return allocs, stats, err
	}
	v.solves++
	v.lastInputs = apps
	v.lastAllocs = allocs
	v.lastSource = stats.Source
	return allocs, stats, nil
}

// RunChurn executes one seeded churn run. See ChurnOptions.
func RunChurn(opts ChurnOptions) (*ChurnResult, error) {
	plat := opts.Platform
	if plat == nil {
		plat = ChurnPlatform(4, 8)
	}
	if opts.Sessions < 1 {
		return nil, fmt.Errorf("harpsim: churn with %d sessions", opts.Sessions)
	}
	if opts.Ticks < 1 {
		return nil, fmt.Errorf("harpsim: churn with %d ticks", opts.Ticks)
	}
	if opts.EventsPerTick <= 0 {
		opts.EventsPerTick = 1
	}

	// The virtual clock: the tracer (and through it the journal's AtSec
	// stamps) sees simulated time only, so journal bytes cannot depend on
	// host speed.
	var now time.Duration
	tracer := telemetry.NewTracer(16)
	tracer.SetClock(func() time.Duration { return now })

	var allocOpts []alloc.Option
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = alloc.DefaultCacheSize
	}
	allocOpts = append(allocOpts,
		alloc.WithCache(cacheSize),
		alloc.WithIncremental(opts.Incremental),
	)
	var inner core.Allocator
	var err error
	if opts.Sharded {
		inner, err = alloc.NewSharded(plat, opts.ShardParallelism, 0, allocOpts...)
	} else {
		inner, err = alloc.New(plat, allocOpts...)
	}
	if err != nil {
		return nil, err
	}
	verifier := &verifyingAllocator{inner: inner}

	var journal *telemetry.Journal
	if opts.Journal != nil {
		journal = telemetry.NewJournal(opts.Journal)
	}
	mgr, err := core.NewManager(core.Config{
		Platform:           plat,
		Allocator:          verifier,
		DisableExploration: true,
		Coalesce:           opts.Coalesce,
		Tracer:             tracer,
		Journal:            journal,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &ChurnResult{SolveSources: make(map[string]int)}
	var latencies []time.Duration
	var live []string
	nextID := 0
	verified := 0

	// timed wraps one manager call, attributing its wall-clock duration to
	// epoch latency iff a solve actually ran inside it, and running the
	// sampled oracle check.
	timed := func(fn func() error) error {
		before := verifier.solves
		t0 := time.Now()
		err := fn()
		d := time.Since(t0)
		if verifier.solves > before {
			latencies = append(latencies, d)
			res.Epochs += verifier.solves - before
			res.SolveSources[sourceLabel(verifier.lastSource)]++
			if opts.VerifyEvery > 0 && verifier.solves%opts.VerifyEvery == 0 {
				if cerr := check.CheckAllocations(plat, verifier.lastInputs, verifier.lastAllocs); cerr != nil {
					return fmt.Errorf("harpsim: churn epoch %d failed oracle: %w", verifier.solves, cerr)
				}
				verified++
			}
		}
		return err
	}

	register := func() error {
		id := fmt.Sprintf("s%06d", nextID)
		app := fmt.Sprintf("churn-app-%d", nextID%(4*len(plat.Kinds)))
		nextID++
		if err := timed(func() error {
			return mgr.Register(id, app, workload.Scalable, false)
		}); err != nil {
			return err
		}
		tbl := churnTable(plat, app)
		if err := timed(func() error { return mgr.UploadTable(id, tbl) }); err != nil {
			return err
		}
		live = append(live, id)
		res.Events += 2
		return nil
	}

	// Ramp: build the target population. With coalescing enabled this whole
	// storm lands in one pending epoch.
	for len(live) < opts.Sessions {
		if err := register(); err != nil {
			return nil, err
		}
	}
	if err := timed(mgr.Tick); err != nil {
		return nil, err
	}
	now += core.AdaptationTick

	// Measured phase: Poisson event bursts per tick, population held around
	// the target by biasing arrivals vs departures.
	for tick := 0; tick < opts.Ticks; tick++ {
		n := poisson(rng, opts.EventsPerTick)
		for e := 0; e < n; e++ {
			r := rng.Float64()
			switch {
			case r < 0.35 || len(live) == 0:
				if err := register(); err != nil {
					return nil, err
				}
			case r < 0.70 && len(live) > opts.Sessions/2:
				i := rng.Intn(len(live))
				id := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := timed(func() error { return mgr.Deregister(id) }); err != nil {
					return nil, err
				}
				res.Events++
			default:
				id := live[rng.Intn(len(live))]
				if err := timed(func() error { return mgr.PhaseChange(id, fmt.Sprintf("ph%d", tick%4)) }); err != nil {
					return nil, err
				}
				res.Events++
			}
		}
		if len(live) > res.PeakSessions {
			res.PeakSessions = len(live)
		}
		if err := timed(mgr.Tick); err != nil {
			return nil, err
		}
		now += core.AdaptationTick
	}
	if err := timed(mgr.Flush); err != nil {
		return nil, err
	}

	res.FinalSessions = len(live)
	res.Verified = verified
	res.P50, res.P99, res.Max = percentiles(latencies)
	return res, nil
}

func sourceLabel(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// churnTable builds a small synthetic operating-point table whose vectors
// live entirely on one core kind (chosen by app identity), so kind
// footprints partition the population into sharding domains. Utilities vary
// per app so tables — and hence fingerprints — differ; the content is a pure
// function of the app name, because the manager shares one explorer table
// per application and a re-registration that uploaded different content
// would rewrite it for every live session of that app.
func churnTable(plat *platform.Platform, app string) *opoint.Table {
	kind := hashString(app) % len(plat.Kinds)
	t := &opoint.Table{App: app, Platform: plat.Name}
	base := 4 + float64(hashString(app)%7)*0.25
	for cores := 1; cores <= 2; cores++ {
		rv := platform.NewResourceVector(plat)
		rv.Counts[kind][0] = cores
		t.Upsert(opoint.OperatingPoint{
			Vector:   rv,
			Utility:  base * float64(cores) * 0.8,
			Power:    1.5 * float64(cores),
			Measured: true,
		})
	}
	return t
}

func hashString(s string) int {
	h := 0
	for i := 0; i < len(s); i++ {
		h = h*31 + int(s[i])
	}
	if h < 0 {
		h = -h
	}
	return h
}

// poisson samples a Poisson variate by Knuth's product method — fine for the
// small per-tick means the harness uses.
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func percentiles(ds []time.Duration) (p50, p99, max time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99), sorted[len(sorted)-1]
}
