// Full-run invariant tests: the reusable internal/check suite asserted over
// complete simulated runs, including fault injection and liveness
// escalation. These are the system-level half of the correctness harness
// (the per-solve half lives in internal/alloc/differential_test.go); see
// CORRECTNESS.md.
package harpsim

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// toEntries converts a run timeline into the checker's reduced form.
func toEntries(timeline []TimelineEvent) []check.TimelineEntry {
	out := make([]check.TimelineEntry, len(timeline))
	for i, ev := range timeline {
		out[i] = check.TimelineEntry{
			AtSec:       ev.AtSec,
			Instance:    ev.Instance,
			Cores:       ev.Cores,
			CoAllocated: ev.CoAllocated,
		}
	}
	return out
}

// invariantSeeds picks the sweep width: a handful of chaotic runs per push,
// more for the nightly HARP_CHECK_LONG sweep.
func invariantSeeds(t *testing.T) int64 {
	t.Helper()
	if os.Getenv("HARP_CHECK_LONG") != "" {
		return 24
	}
	if testing.Short() {
		return 2
	}
	return 6
}

// TestSimInvariantsUnderChaos runs randomized fault-injected scenarios with
// aggressive liveness deadlines and asserts the full-run invariants: no core
// double-granted to isolated sessions at any instant (including across
// quarantines and reaps, whose core-clearing events the timeline records),
// never more distinct cores granted than the platform has, and a decision
// journal that is internally consistent — epochs numbered from 1,
// non-decreasing timestamps, strictly increasing decision sequence numbers.
func TestSimInvariantsUnderChaos(t *testing.T) {
	suite := workload.IntelApps()
	names := make([]string, 0, len(suite))
	for _, prof := range suite {
		names = append(names, prof.Name)
	}
	n := invariantSeeds(t)
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// Derive the app mix from the seed so one seed reproduces the
			// whole scenario.
			nApps := 2 + int(seed%3)
			var apps []string
			for i := 0; i < nApps; i++ {
				apps = append(apps, names[int(seed+int64(i)*3)%len(names)])
			}
			sc := intelScenario(t, apps...)
			sc.Name = fmt.Sprintf("%s-seed%d", sc.Name, seed)
			plan := faultsim.Generate(seed, apps, 10*time.Second, 4)
			res, journal, _ := chaosRun(t, sc, plan, seed)

			if err := check.CheckTimelineIsolation(sc.Platform, toEntries(res.Timeline)); err != nil {
				t.Errorf("timeline isolation: %v", err)
			}
			records, err := telemetry.ReadJournal(bytes.NewReader(journal))
			if err != nil {
				t.Fatalf("ReadJournal: %v", err)
			}
			if len(records) == 0 {
				t.Fatal("chaos run produced an empty journal")
			}
			if err := check.CheckJournal(records); err != nil {
				t.Errorf("journal contract: %v", err)
			}
			for _, rec := range records {
				if rec.Error != "" {
					t.Errorf("epoch %d recorded an allocation error: %s", rec.Epoch, rec.Error)
				}
			}
		})
	}
}

// TestSimJournalMatchesPushedInvariant asserts, via the reusable checker,
// that a traced run's journal outputs are exactly the pushed-decision stream
// — the property that makes the journal a faithful replay log.
func TestSimJournalMatchesPushedInvariant(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	journal, _, events, _ := tracedRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 5,
	})
	var pushed []telemetry.EpochOutput
	for _, ev := range events {
		if ev.Kind != telemetry.EvDecisionPushed {
			continue
		}
		pushed = append(pushed, telemetry.EpochOutput{
			Instance:    ev.Instance,
			Seq:         ev.Seq,
			Vector:      ev.Vector,
			Threads:     int(ev.Vals[0]),
			Cores:       int(ev.Vals[1]),
			Exploring:   ev.Exploring,
			CoAllocated: ev.CoAllocated,
			PredPowerW:  ev.Power,
		})
	}
	if len(pushed) == 0 {
		t.Fatal("run pushed no decisions")
	}
	records, err := telemetry.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if err := check.CheckJournal(records); err != nil {
		t.Fatalf("journal contract: %v", err)
	}
	if err := check.CheckJournalMatchesPushed(records, pushed); err != nil {
		t.Fatal(err)
	}
}

// TestSimTimelineIsolationFaultFree covers the quiet path: a run with no
// faults and no liveness pressure must, of course, also satisfy the isolation
// invariants end to end. An empty fault plan turns on session-clearing
// timeline events (exit/deregister) without injecting anything — a
// decision-only timeline cannot be replayed for standing allocations.
func TestSimTimelineIsolationFaultFree(t *testing.T) {
	sc := intelScenario(t, "ep.C", "cg.C", "ft.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	res := mustRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 1, RecordTimeline: true,
		Faults: faultsim.Generate(1, nil, 10*time.Second, 0),
	})
	if len(res.Timeline) == 0 {
		t.Fatal("run recorded no timeline")
	}
	if err := check.CheckTimelineIsolation(sc.Platform, toEntries(res.Timeline)); err != nil {
		t.Fatal(err)
	}
}
