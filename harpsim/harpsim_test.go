package harpsim

import (
	"math"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

func intelScenario(t *testing.T, names ...string) Scenario {
	t.Helper()
	suite := workload.IntelApps()
	var apps []*workload.Profile
	for _, n := range names {
		p, err := workload.ByName(suite, n)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, p)
	}
	name := names[0]
	for _, n := range names[1:] {
		name += "+" + n
	}
	return Scenario{Name: name, Platform: platform.RaptorLake(), Apps: apps}
}

func odroidScenario(t *testing.T, names ...string) Scenario {
	t.Helper()
	suite := workload.OdroidApps()
	var apps []*workload.Profile
	for _, n := range names {
		p, err := workload.ByName(suite, n)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, p)
	}
	return Scenario{Name: names[0], Platform: platform.OdroidXU3(), Apps: apps}
}

func mustRun(t *testing.T, sc Scenario, opts Options) *Result {
	t.Helper()
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", sc.Name, opts.Policy, err)
	}
	return res
}

func TestScenarioValidation(t *testing.T) {
	if err := (Scenario{}).Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	if err := (Scenario{Platform: platform.RaptorLake()}).Validate(); err == nil {
		t.Error("scenario without apps accepted")
	}
	sc := intelScenario(t, "ep.C")
	sc.Apps = append(sc.Apps, nil)
	if err := sc.Validate(); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if _, err := Run(intelScenario(t, "ep.C"), Options{Policy: Policy(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	tests := []struct {
		give Policy
		want string
	}{
		{PolicyCFS, "cfs"},
		{PolicyEAS, "eas"},
		{PolicyITD, "itd"},
		{PolicyHARP, "harp"},
		{PolicyHARPOffline, "harp-offline"},
		{PolicyHARPNoScaling, "harp-noscaling"},
		{PolicyHARPOverhead, "harp-overhead"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d: %q, want %q", int(tt.give), got, tt.want)
		}
		if !tt.give.IsHARP() && (tt.give == PolicyHARP || tt.give == PolicyHARPOffline) {
			t.Errorf("%s: IsHARP wrong", tt.give)
		}
	}
}

func TestCFSBaselineMatchesClosedForm(t *testing.T) {
	sc := intelScenario(t, "ep.C")
	res := mustRun(t, sc, Options{Policy: PolicyCFS, Governor: sim.GovernorPerformance})
	want := workload.EvaluateVector(sc.Platform, sc.Apps[0], sc.Platform.Capacity()).TimeSec
	if math.Abs(res.MakespanSec-want)/want > 0.06 {
		t.Errorf("CFS ep.C makespan = %.2fs, closed form %.2fs", res.MakespanSec, want)
	}
	if res.EnergyJ <= 0 {
		t.Error("no energy measured")
	}
	if len(res.Apps) != 1 {
		t.Errorf("per-app results = %d, want 1", len(res.Apps))
	}
}

// The headline mechanism: with offline operating points, HARP must cut mg.C's
// energy hard (memory-bound → E-cores) without a big slowdown.
func TestHARPOfflineSavesEnergyOnMG(t *testing.T) {
	sc := intelScenario(t, "mg.C")
	cfs := mustRun(t, sc, Options{Policy: PolicyCFS})
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	harp := mustRun(t, sc, Options{Policy: PolicyHARPOffline, OfflineTables: tables})

	energyGain := cfs.EnergyJ / harp.EnergyJ
	slowdown := harp.MakespanSec / cfs.MakespanSec
	if energyGain < 1.2 {
		t.Errorf("HARP(offline) energy gain on mg.C = %.2f×, want > 1.2×", energyGain)
	}
	if slowdown > 1.4 {
		t.Errorf("HARP(offline) slowdown on mg.C = %.2f×, want < 1.4×", slowdown)
	}
}

// binpack: HARP must fix the queue collapse (paper: 6.91×).
func TestHARPOfflineFixesBinpack(t *testing.T) {
	sc := intelScenario(t, "binpack")
	cfs := mustRun(t, sc, Options{Policy: PolicyCFS})
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	harp := mustRun(t, sc, Options{Policy: PolicyHARPOffline, OfflineTables: tables})
	speedup := cfs.MakespanSec / harp.MakespanSec
	if speedup < 3 {
		t.Errorf("HARP(offline) binpack speedup = %.2f×, want > 3×", speedup)
	}
}

// Multi-application: HARP must beat CFS on both metrics by scaling apps down
// to their partitions (§6.3.2).
func TestHARPOfflineMultiAppBeatsCFS(t *testing.T) {
	sc := intelScenario(t, "cg.C", "ft.C", "mg.C")
	cfs := mustRun(t, sc, Options{Policy: PolicyCFS})
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	harp := mustRun(t, sc, Options{Policy: PolicyHARPOffline, OfflineTables: tables})

	if harp.MakespanSec >= cfs.MakespanSec {
		t.Errorf("HARP multi-app makespan %.2fs not below CFS %.2fs", harp.MakespanSec, cfs.MakespanSec)
	}
	if harp.EnergyJ >= cfs.EnergyJ {
		t.Errorf("HARP multi-app energy %.0fJ not below CFS %.0fJ", harp.EnergyJ, cfs.EnergyJ)
	}
}

// Without application adaptation, restricting affinity alone must hurt badly
// (§6.3: geomeans 0.5–0.6×).
func TestNoScalingCollapse(t *testing.T) {
	sc := intelScenario(t, "ft.C", "cg.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	harp := mustRun(t, sc, Options{Policy: PolicyHARPOffline, OfflineTables: tables})
	noscale := mustRun(t, sc, Options{Policy: PolicyHARPNoScaling, OfflineTables: tables})
	if noscale.MakespanSec <= harp.MakespanSec {
		t.Errorf("NoScaling makespan %.2fs not above HARP %.2fs", noscale.MakespanSec, harp.MakespanSec)
	}
}

// Overhead mode: monitoring + communication without adaptation must stay
// within a few percent of plain CFS (§6.6).
func TestOverheadModeNearCFS(t *testing.T) {
	sc := intelScenario(t, "ft.C")
	cfs := mustRun(t, sc, Options{Policy: PolicyCFS})
	ovh := mustRun(t, sc, Options{Policy: PolicyHARPOverhead})
	ratio := ovh.MakespanSec / cfs.MakespanSec
	if ratio < 1.0 || ratio > 1.05 {
		t.Errorf("overhead-mode makespan ratio = %.4f, want (1.00, 1.05]", ratio)
	}
}

// Online learning: a repeating workload must reach the stable stage within
// roughly the paper's 30 s horizon.
func TestLearnTablesReachesStable(t *testing.T) {
	sc := intelScenario(t, "ft.C")
	lr, err := LearnTables(sc, 90*time.Second, 5*time.Second, Options{Seed: 1})
	if err != nil {
		t.Fatalf("LearnTables: %v", err)
	}
	if lr.StableAfterSec < 0 {
		t.Fatal("never reached the stable stage in 90s")
	}
	if lr.StableAfterSec > 60 {
		t.Errorf("stable after %.1fs, want < 60s (paper: ≈30s)", lr.StableAfterSec)
	}
	tbl := lr.Tables["ft.C"]
	if tbl == nil || tbl.MeasuredCount() < 20 {
		t.Fatalf("learned table = %+v, want ≥ 20 measured points", tbl)
	}
	if len(lr.Snapshots) < 10 {
		t.Errorf("snapshots = %d, want ≥ 10 over 90s at 5s", len(lr.Snapshots))
	}
	var sawLearning, sawStable bool
	for _, s := range lr.Snapshots {
		if s.AllStable {
			sawStable = true
		} else {
			sawLearning = true
		}
	}
	if !sawLearning || !sawStable {
		t.Errorf("snapshots did not cover both phases (learning=%v stable=%v)", sawLearning, sawStable)
	}
}

func TestLearnTablesRejectsOdroid(t *testing.T) {
	sc := odroidScenario(t, "ep.A")
	if _, err := LearnTables(sc, time.Minute, 0, Options{}); err == nil {
		t.Fatal("online learning on the Odroid accepted")
	}
}

// EAS baseline on the Odroid completes and meters per-island energy.
func TestEASOnOdroid(t *testing.T) {
	sc := odroidScenario(t, "mg.A")
	res := mustRun(t, sc, Options{Policy: PolicyEAS, Governor: sim.GovernorSchedutil})
	if res.MakespanSec <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("EAS run produced %+v", res)
	}
}

// HARP (offline) on the Odroid vs EAS — the Fig. 7 mechanism.
func TestHARPOfflineOdroidSavesEnergy(t *testing.T) {
	sc := odroidScenario(t, "mg.A")
	eas := mustRun(t, sc, Options{Policy: PolicyEAS, Governor: sim.GovernorSchedutil})
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	harp := mustRun(t, sc, Options{
		Policy: PolicyHARPOffline, OfflineTables: tables, Governor: sim.GovernorSchedutil,
	})
	if harp.EnergyJ >= eas.EnergyJ {
		t.Errorf("HARP(offline) mg.A energy %.1fJ not below EAS %.1fJ", harp.EnergyJ, eas.EnergyJ)
	}
}

func TestRunDeterminism(t *testing.T) {
	sc := intelScenario(t, "cg.C", "is.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	opts := Options{Policy: PolicyHARPOffline, OfflineTables: tables, Seed: 3}
	a := mustRun(t, sc, opts)
	b := mustRun(t, sc, opts)
	if a.MakespanSec != b.MakespanSec || a.EnergyJ != b.EnergyJ {
		t.Errorf("non-deterministic: (%.4f, %.1f) vs (%.4f, %.1f)",
			a.MakespanSec, a.EnergyJ, b.MakespanSec, b.EnergyJ)
	}
}

func TestOfflineDSETables(t *testing.T) {
	plat := platform.OdroidXU3()
	apps := workload.KPNOdroid()[:2]
	tables := OfflineDSETables(plat, apps)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for name, tbl := range tables {
		if tbl.MeasuredCount() != 24 {
			t.Errorf("%s: measured = %d, want 24 (full Odroid space)", name, tbl.MeasuredCount())
		}
		if err := tbl.Validate(plat); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTimelineRecording(t *testing.T) {
	sc := intelScenario(t, "cg.C", "mg.C")
	tables := OfflineDSETables(sc.Platform, sc.Apps)
	res := mustRun(t, sc, Options{
		Policy:         PolicyHARPOffline,
		OfflineTables:  tables,
		RecordTimeline: true,
	})
	if len(res.Timeline) < 2 {
		t.Fatalf("timeline has %d events, want at least one per app", len(res.Timeline))
	}
	seen := make(map[string]bool)
	for _, ev := range res.Timeline {
		if ev.AtSec < 0 || ev.VectorKey == "" {
			t.Errorf("malformed event %+v", ev)
		}
		seen[ev.Instance] = true
	}
	if !seen["cg.C"] || !seen["mg.C"] {
		t.Errorf("timeline missing instances: %v", seen)
	}
	// Baseline policies record nothing.
	plain := mustRun(t, sc, Options{Policy: PolicyCFS, RecordTimeline: true})
	if len(plain.Timeline) != 0 {
		t.Errorf("CFS run recorded %d timeline events", len(plain.Timeline))
	}
}

func TestHARPOverheadIsHARPButInert(t *testing.T) {
	sc := intelScenario(t, "cg.C")
	res := mustRun(t, sc, Options{Policy: PolicyHARPOverhead, RecordTimeline: true})
	// Decisions are dropped in libharp, so no timeline events are applied.
	if len(res.Timeline) != 0 {
		t.Errorf("overhead mode applied %d decisions", len(res.Timeline))
	}
}
