package harpsim

// Fleet chaos suite. These tests run the RunCluster harness with seeded
// churn and injected machine/coordinator kills under per-tick CheckFleet
// grading, and assert the PR's headline invariants: no double placement,
// bounded re-home after a kill, fleet power never above the budget (even
// mid-migration), and byte-identical same-seed journals.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
)

// rehomeBound is the asserted ceiling on how long a once-placed session
// may stay unowned: DeadAfter ticks to declare the machine dead, one tick
// of coordinator failover slack, the client-retry delay, and the
// remove-then-add migration tick.
const rehomeBound = 4 + clientRetryAfter + 4

func atTick(n int) time.Duration { return time.Duration(n) * core.AdaptationTick }

func clusterOpts(seed int64) ClusterOptions {
	return ClusterOptions{
		Machines:      4,
		Sessions:      6,
		Ticks:         240,
		EventsPerTick: 1,
		Seed:          seed,
		FleetBudgetW:  60, // caps 15 W/machine; sessions demand 3 W each
		Verify:        true,
	}
}

func runCluster(t *testing.T, opts ClusterOptions) *ClusterResult {
	t.Helper()
	res, err := RunCluster(opts)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if opts.FleetBudgetW > 0 && res.MaxFleetPowerW > opts.FleetBudgetW+1e-6 {
		t.Fatalf("fleet power peaked at %.2f W, budget %.2f W", res.MaxFleetPowerW, opts.FleetBudgetW)
	}
	return res
}

func TestClusterHealthyRunPlacesEverything(t *testing.T) {
	res := runCluster(t, clusterOpts(1))
	if res.Stats.Placements == 0 {
		t.Fatal("no placements recorded")
	}
	if res.FinalUnowned != 0 {
		t.Fatalf("%d of %d sessions unowned at end of a healthy run", res.FinalUnowned, res.FinalSessions)
	}
	if res.Health.Status != "ok" {
		t.Fatalf("health = %+v, want ok", res.Health)
	}
	if res.EnergyJ <= 0 {
		t.Fatalf("energy model integrated %.3f J", res.EnergyJ)
	}
}

func TestClusterMachineKillRehomesBounded(t *testing.T) {
	opts := clusterOpts(2)
	opts.Plan = &faultsim.Plan{Seed: 2, Faults: []faultsim.Fault{
		{At: atTick(80), Target: "m1", Kind: faultsim.KindMachineKill},
	}}
	res := runCluster(t, opts)
	if res.Stats.MachineDeaths != 1 {
		t.Fatalf("machine deaths = %d, want 1", res.Stats.MachineDeaths)
	}
	if res.MaxUnownedTicks > rehomeBound {
		t.Fatalf("re-home took %d ticks, bound %d", res.MaxUnownedTicks, rehomeBound)
	}
	if res.FinalUnowned != 0 {
		t.Fatalf("%d sessions still unowned after re-home", res.FinalUnowned)
	}
	if res.Health.MachinesAlive != 3 {
		t.Fatalf("machines alive = %d, want 3", res.Health.MachinesAlive)
	}
}

func TestClusterCoordinatorKillFailsOver(t *testing.T) {
	opts := clusterOpts(3)
	opts.Plan = &faultsim.Plan{Seed: 3, Faults: []faultsim.Fault{
		{At: atTick(100), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
	}}
	res := runCluster(t, opts)
	if res.Stats.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.Stats.Failovers)
	}
	if res.MaxUnownedTicks > rehomeBound {
		t.Fatalf("recovery took %d ticks, bound %d", res.MaxUnownedTicks, rehomeBound)
	}
	if res.FinalUnowned != 0 {
		t.Fatalf("%d sessions unowned after failover", res.FinalUnowned)
	}
	if res.Health.Coordinator != "promoted-standby" {
		t.Fatalf("coordinator = %q, want promoted-standby", res.Health.Coordinator)
	}
}

func TestClusterCombinedChaos(t *testing.T) {
	opts := clusterOpts(4)
	opts.Ticks = 320
	opts.Plan = &faultsim.Plan{Seed: 4, Faults: []faultsim.Fault{
		{At: atTick(60), Target: "m2", Kind: faultsim.KindMachineKill},
		{At: atTick(120), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
		{At: atTick(200), Target: "m0", Kind: faultsim.KindMachineKill},
	}}
	res := runCluster(t, opts)
	if res.Stats.MachineDeaths != 2 || res.Stats.Failovers != 1 {
		t.Fatalf("deaths=%d failovers=%d, want 2 and 1", res.Stats.MachineDeaths, res.Stats.Failovers)
	}
	if res.MaxUnownedTicks > rehomeBound {
		t.Fatalf("re-home took %d ticks, bound %d", res.MaxUnownedTicks, rehomeBound)
	}
	if res.FinalUnowned != 0 {
		t.Fatalf("%d sessions unowned at end", res.FinalUnowned)
	}
}

func TestClusterKillDuringMigrationWindow(t *testing.T) {
	// A machine kill landing right after a drain opens (a departure-heavy
	// stretch keeps migrations flowing) exercises the in-flight abort
	// path; per-tick CheckFleet proves the budget holds across the window.
	opts := clusterOpts(5)
	opts.Ticks = 320
	opts.EventsPerTick = 2
	opts.Plan = &faultsim.Plan{Seed: 5, Faults: []faultsim.Fault{
		{At: atTick(90), Target: "m0", Kind: faultsim.KindMachineKill},
		{At: atTick(91) + core.AdaptationTick/2, Target: "m3", Kind: faultsim.KindMachineKill},
	}}
	res := runCluster(t, opts)
	if res.Stats.MachineDeaths != 2 {
		t.Fatalf("machine deaths = %d, want 2", res.Stats.MachineDeaths)
	}
	if res.FinalUnowned != 0 {
		t.Fatalf("%d sessions unowned at end", res.FinalUnowned)
	}
}

type journalCapture struct {
	cluster  bytes.Buffer
	machines map[string]*bytes.Buffer
}

func captureClusterRun(t *testing.T, seed int64) *journalCapture {
	t.Helper()
	c := &journalCapture{machines: map[string]*bytes.Buffer{}}
	opts := clusterOpts(seed)
	opts.Ticks = 160
	opts.Plan = &faultsim.Plan{Seed: seed, Faults: []faultsim.Fault{
		{At: atTick(40), Target: "m1", Kind: faultsim.KindMachineKill},
		{At: atTick(90), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
	}}
	opts.Journal = &c.cluster
	opts.MachineJournal = func(id string) io.Writer {
		b := &bytes.Buffer{}
		c.machines[id] = b
		return b
	}
	runCluster(t, opts)
	return c
}

func TestClusterSameSeedByteIdenticalJournals(t *testing.T) {
	a := captureClusterRun(t, 7)
	b := captureClusterRun(t, 7)
	if !bytes.Equal(a.cluster.Bytes(), b.cluster.Bytes()) {
		t.Fatal("same-seed cluster journals differ")
	}
	if a.cluster.Len() == 0 {
		t.Fatal("cluster journal empty")
	}
	for id, buf := range a.machines {
		other, ok := b.machines[id]
		if !ok || !bytes.Equal(buf.Bytes(), other.Bytes()) {
			t.Fatalf("same-seed machine journal %s differs", id)
		}
	}
	c := captureClusterRun(t, 8)
	if bytes.Equal(a.cluster.Bytes(), c.cluster.Bytes()) {
		t.Fatal("different seeds produced identical cluster journals")
	}
}

func TestClusterDynamicConsolidatesBelowStaticEnergy(t *testing.T) {
	// Same seed, same churn stream: dynamic bin-packing with drain
	// consolidation must park machines that static hash partitioning
	// keeps lit, so it finishes with fewer active machine-ticks and less
	// energy. This is the Fig-style experiment's claim in miniature.
	base := ClusterOptions{
		Machines:      4,
		Sessions:      3,
		Ticks:         240,
		EventsPerTick: 1,
		Seed:          11,
		FleetBudgetW:  60,
		Verify:        true,
	}
	dynamic := runCluster(t, base)
	st := base
	st.Static = true
	static := runCluster(t, st)
	if dynamic.ActiveMachineTicks >= static.ActiveMachineTicks {
		t.Fatalf("dynamic used %d active machine-ticks, static %d — no consolidation",
			dynamic.ActiveMachineTicks, static.ActiveMachineTicks)
	}
	if dynamic.EnergyJ >= static.EnergyJ {
		t.Fatalf("dynamic energy %.2f J >= static %.2f J", dynamic.EnergyJ, static.EnergyJ)
	}
}

// TestClusterMultiSeedSweep is the nightly chaos sweep: many seeds, full
// fault mix, per-tick invariant grading. Gated behind HARP_CLUSTER_LONG;
// when HARP_CLUSTER_JOURNAL_DIR is set, journals are written there so CI
// can upload them as artifacts on failure.
func TestClusterMultiSeedSweep(t *testing.T) {
	if os.Getenv("HARP_CLUSTER_LONG") == "" {
		t.Skip("set HARP_CLUSTER_LONG=1 to run the multi-seed sweep")
	}
	dir := os.Getenv("HARP_CLUSTER_JOURNAL_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			jf, err := os.Create(filepath.Join(dir, fmt.Sprintf("cluster-seed%d.jsonl", seed)))
			if err != nil {
				t.Fatal(err)
			}
			defer jf.Close()
			opts := clusterOpts(seed)
			opts.Ticks = 600
			opts.EventsPerTick = 2
			opts.Journal = jf
			opts.Plan = &faultsim.Plan{Seed: seed, Faults: []faultsim.Fault{
				{At: atTick(100), Target: fmt.Sprintf("m%d", seed%4), Kind: faultsim.KindMachineKill},
				{At: atTick(250), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
			}}
			res := runCluster(t, opts)
			if res.MaxUnownedTicks > rehomeBound {
				t.Fatalf("seed %d: re-home took %d ticks, bound %d", seed, res.MaxUnownedTicks, rehomeBound)
			}
			if res.FinalUnowned != 0 {
				t.Fatalf("seed %d: %d sessions unowned at end", seed, res.FinalUnowned)
			}
		})
	}
}
