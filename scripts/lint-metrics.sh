#!/usr/bin/env bash
# lint-metrics checks that the harp_* metrics registered in code
# (internal/telemetry/metrics.go) and the metrics table in OBSERVABILITY.md
# agree in both directions: every registered metric is documented, and every
# documented metric is still registered. Run via `make lint-metrics`
# (part of `make check`).
set -eu
cd "$(dirname "$0")/.."

code=$(grep -oE '\br\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|FloatCounter|HistogramVec)\("harp_[a-z0-9_]+"' \
	internal/telemetry/metrics.go | grep -oE 'harp_[a-z0-9_]+' | sort -u)
# Table rows look like "| `harp_name` | ..." or "| `harp_name{label=…}` | ...";
# the name ends at the closing backtick or the label brace.
docs=$(sed -n 's/^| `\(harp_[a-z0-9_]*\)[`{].*/\1/p' OBSERVABILITY.md | sort -u)

if [ -z "$code" ]; then
	echo "lint-metrics: no registered harp_* metrics found — extraction broke" >&2
	exit 1
fi
if [ -z "$docs" ]; then
	echo "lint-metrics: no documented harp_* metrics found — extraction broke" >&2
	exit 1
fi

status=0
undocumented=$(comm -23 <(printf '%s\n' "$code") <(printf '%s\n' "$docs"))
if [ -n "$undocumented" ]; then
	echo "lint-metrics: registered in code but missing from OBSERVABILITY.md:" >&2
	printf '  %s\n' $undocumented >&2
	status=1
fi
stale=$(comm -13 <(printf '%s\n' "$code") <(printf '%s\n' "$docs"))
if [ -n "$stale" ]; then
	echo "lint-metrics: documented in OBSERVABILITY.md but not registered in code:" >&2
	printf '  %s\n' $stale >&2
	status=1
fi

if [ "$status" -eq 0 ]; then
	echo "lint-metrics: $(printf '%s\n' "$code" | wc -l | tr -d ' ') metrics, code and docs agree"
fi
exit "$status"
