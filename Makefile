GO ?= go

.PHONY: build test check race bench bench-alloc bench-parallel trace-demo fuzz-smoke invariants invariants-long lint-metrics soak cluster-chaos cluster-chaos-long

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-PR gate (run it before every pull request; CI runs the
# same thing): vet, the metrics-docs cross-check, plus the full test suite
# under the race detector. The race run covers the internal/parallel worker
# pool, the session-resilience chaos suites and every experiment driver
# fanning units across it.
check: lint-metrics
	$(GO) vet ./...
	$(GO) test -race ./...

# lint-metrics cross-checks the harp_* metrics registered in code against
# the table in OBSERVABILITY.md, both directions. See OBSERVABILITY.md.
lint-metrics:
	./scripts/lint-metrics.sh

race:
	$(GO) test -race ./...

# invariants runs the correctness harness (see CORRECTNESS.md): the exact
# MMKP oracle differential tests against the Lagrangian and greedy solvers,
# and the full-run invariant suites over simulated chaos runs and random
# Manager operation sequences. Failures print a shrunk counterexample and a
# one-line repro; set HARP_CHECK_ARTIFACTS to also write it to a file.
invariants:
	$(GO) test -race -count=1 \
		-run 'TestDifferential|TestBugCrop|TestOracle|TestShrink|TestCheckTimeline|TestSimInvariants|TestSimJournalMatchesPushedInvariant|TestSimTimelineIsolation|TestManagerInvariants|TestRegisterRollback|TestManagerSameSeed|TestCacheChurnNeverStale|TestCacheTransparentInSimulation' \
		./internal/check/ ./internal/alloc/ ./internal/core/ ./harpsim/

# invariants-long is the nightly sweep: the same harness over an order of
# magnitude more seeded scenarios (20000 differential seeds per solver).
invariants-long:
	HARP_CHECK_LONG=1 $(MAKE) invariants

# soak runs the overload suite plus the long overload soak (see
# RESILIENCE.md, "Overload and the degradation ladder"): minutes of virtual
# time under dense solver stalls, store outages and client churn, under the
# race detector. CI runs this nightly; locally it finishes in seconds
# (virtual clock).
soak:
	HARP_SOAK=1 $(GO) test -race -count=1 -v -run 'TestOverload' ./harpsim/

# cluster-chaos runs the fleet failover suites (see RESILIENCE.md, "Fleet
# failover and session migration") under the race detector: machine kills,
# coordinator kills, kill-during-migration, per-tick fleet invariants and
# byte-identical same-seed journals. CI runs this on every push.
cluster-chaos:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestCluster|TestCheckFleet|TestReconnectFollowsAddressProvider' \
		./harpsim/ ./internal/check/ ./harp/

# cluster-chaos-long is the nightly multi-seed sweep: 10 seeds of combined
# machine-kill + coordinator-kill chaos with journals written to
# HARP_CLUSTER_JOURNAL_DIR (uploaded as CI artifacts on failure).
cluster-chaos-long:
	HARP_CLUSTER_LONG=1 $(GO) test -race -count=1 -v -run 'TestClusterMultiSeedSweep' ./harpsim/

# fuzz-smoke briefly runs each wire-protocol and durable-state fuzzer —
# enough to catch framing regressions on every push without a dedicated
# fuzzing farm.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime 10s ./internal/proto/
	$(GO) test -run '^$$' -fuzz '^FuzzWrite$$' -fuzztime 10s ./internal/proto/
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshot$$' -fuzztime 10s ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzWAL$$' -fuzztime 10s ./internal/store/

# bench runs the experiment-level benchmarks, then regenerates
# BENCH_alloc.json (the committed allocator performance record — see
# PERFORMANCE.md) while enforcing the allocator's performance contracts:
# 0 allocs/op and >= 10x speedup on the cache-hit path, and warm starts
# never costing λ iterations.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/harp-bench -enforce -out BENCH_alloc.json

# bench-alloc regenerates and enforces only the allocator record (what the
# CI benchmark-smoke job runs).
bench-alloc:
	$(GO) run ./cmd/harp-bench -enforce -out BENCH_alloc.json

# bench-parallel compares the sequential and fanned-out Fig. 6 runs; on a
# multi-core host the parallel variant should be several times faster with
# bit-identical metrics.
bench-parallel:
	$(GO) test -bench 'BenchmarkFigure6(Sequential|Parallel)$$' -benchtime 1x -run '^$$' .

# trace-demo runs the Fig. 1 applications under HARP and leaves behind a
# sample Chrome trace (open harp.trace.json in https://ui.perfetto.dev) and
# the matching per-epoch decision journal. See OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/harp-sim run -platform intel -apps ep.C,mg.C \
		-policy harp-offline -trace harp.trace.json -journal harp.journal.jsonl
