GO ?= go

.PHONY: build test check race bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet plus the full test suite under the race detector.
# The race run covers the internal/parallel worker pool and every experiment
# driver fanning units across it.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-parallel compares the sequential and fanned-out Fig. 6 runs; on a
# multi-core host the parallel variant should be several times faster with
# bit-identical metrics.
bench-parallel:
	$(GO) test -bench 'BenchmarkFigure6(Sequential|Parallel)$$' -benchtime 1x -run '^$$' .
