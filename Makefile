GO ?= go

.PHONY: build test check race bench bench-parallel trace-demo fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-PR gate (run it before every pull request; CI runs the
# same thing): vet plus the full test suite under the race detector. The race
# run covers the internal/parallel worker pool, the session-resilience chaos
# suites and every experiment driver fanning units across it.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# fuzz-smoke briefly runs each wire-protocol fuzzer — enough to catch framing
# regressions on every push without a dedicated fuzzing farm.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime 10s ./internal/proto/
	$(GO) test -run '^$$' -fuzz '^FuzzWrite$$' -fuzztime 10s ./internal/proto/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-parallel compares the sequential and fanned-out Fig. 6 runs; on a
# multi-core host the parallel variant should be several times faster with
# bit-identical metrics.
bench-parallel:
	$(GO) test -bench 'BenchmarkFigure6(Sequential|Parallel)$$' -benchtime 1x -run '^$$' .

# trace-demo runs the Fig. 1 applications under HARP and leaves behind a
# sample Chrome trace (open harp.trace.json in https://ui.perfetto.dev) and
# the matching per-epoch decision journal. See OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/harp-sim run -platform intel -apps ep.C,mg.C \
		-policy harp-offline -trace harp.trace.json -journal harp.journal.jsonl
