module github.com/harp-rm/harp

go 1.23
