package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/harp-rm/harp/harp"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
)

// startDaemonPieces brings up the server + control listener the way main()
// does, on temp sockets.
func startDaemonPieces(t *testing.T) (appSock, ctlSock string) {
	t.Helper()
	dir := t.TempDir()
	appSock = filepath.Join(dir, "harp.sock")
	ctlSock = filepath.Join(dir, "ctl.sock")

	tracer := telemetry.NewTracer(0)
	srv, err := harp.NewServer(harp.ServerConfig{
		Platform:           platform.RaptorLake(),
		DisableExploration: true,
		Tracer:             tracer,
		Metrics:            telemetry.NewMetrics(telemetry.NewRegistry()),
		Energy:             telemetry.NewEnergyLedger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := newControlListener(ctlSock, srv, tracer)
	if err != nil {
		t.Fatal(err)
	}
	go ctl.serve()
	go func() { _ = srv.ListenAndServe(appSock) }()
	t.Cleanup(func() {
		_ = ctl.Close()
		_ = srv.Close()
	})
	waitSock(t, appSock)
	waitSock(t, ctlSock)
	return appSock, ctlSock
}

func waitSock(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("unix", path)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("socket %s never came up", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func controlRequest(t *testing.T, sock string, req map[string]string) map[string]json.RawMessage {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		t.Fatal(err)
	}
	var resp map[string]json.RawMessage
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestControlSessionsReflectsClients(t *testing.T) {
	appSock, ctlSock := startDaemonPieces(t)

	resp := controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
	if _, ok := resp["sessions"]; !ok {
		t.Fatalf("sessions missing: %v", resp)
	}

	client, err := harp.Dial(appSock, harp.Registration{App: "x", PID: 5, Adaptivity: harp.Static})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp = controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
		var sessions []map[string]any
		if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
			t.Fatal(err)
		}
		if len(sessions) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %v, want one", sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestControlSessionsReportsAllocCache checks the status surface of the
// solution cache: the sessions response carries the cache counters (cap = the
// default size) and, once a registration has triggered a solve, the last
// epoch's solve source.
func TestControlSessionsReportsAllocCache(t *testing.T) {
	appSock, ctlSock := startDaemonPieces(t)

	resp := controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
	var cache struct {
		Cap int `json:"cap"`
	}
	if err := json.Unmarshal(resp["alloc_cache"], &cache); err != nil {
		t.Fatalf("alloc_cache: %v (%s)", err, resp["alloc_cache"])
	}
	if cache.Cap != 64 {
		t.Fatalf("alloc cache cap = %d, want the default 64", cache.Cap)
	}

	client, err := harp.Dial(appSock, harp.Registration{App: "z", PID: 7, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp = controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
		var src string
		_ = json.Unmarshal(resp["solve_source"], &src)
		if src == "cold" || src == "warm" || src == "cached" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("solve_source = %q after a registration, want a solve source", src)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControlTable(t *testing.T) {
	appSock, ctlSock := startDaemonPieces(t)
	client, err := harp.Dial(appSock, harp.Registration{App: "y", PID: 6, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp := controlRequest(t, ctlSock, map[string]string{"op": "table", "instance": "y/6"})
	if _, ok := resp["table"]; !ok {
		t.Fatalf("table missing: %v", resp)
	}
	resp = controlRequest(t, ctlSock, map[string]string{"op": "table", "instance": "ghost"})
	if _, ok := resp["error"]; !ok {
		t.Fatalf("error missing for unknown instance: %v", resp)
	}
}

func TestControlUnknownOp(t *testing.T) {
	_, ctlSock := startDaemonPieces(t)
	resp := controlRequest(t, ctlSock, map[string]string{"op": "frobnicate"})
	if _, ok := resp["error"]; !ok {
		t.Fatalf("unknown op not rejected: %v", resp)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-platform", "does-not-exist"}); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestLivenessPolicyFlags(t *testing.T) {
	if p, err := livenessPolicy(false, 0, 0, 0); err != nil || p.Enabled() {
		t.Errorf("flags off: policy = %+v, err = %v, want disabled", p, err)
	}
	p, err := livenessPolicy(true, 0, 0, 0)
	if err != nil || p != core.DefaultLivenessPolicy() {
		t.Errorf("-liveness: policy = %+v, err = %v, want defaults", p, err)
	}
	p, err = livenessPolicy(false, 0, 0, 30*time.Second)
	if err != nil || p.ReapAfter != 30*time.Second || p.SuspectAfter != core.DefaultLivenessPolicy().SuspectAfter {
		t.Errorf("-reap-after alone: policy = %+v, err = %v, want defaults with 30s reap", p, err)
	}
	if _, err := livenessPolicy(false, 5*time.Second, time.Second, 0); err == nil {
		t.Error("suspect > quarantine accepted")
	}
}

func TestControlTrace(t *testing.T) {
	appSock, ctlSock := startDaemonPieces(t)
	client, err := harp.Dial(appSock, harp.Registration{App: "tr", PID: 7, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp := controlRequest(t, ctlSock, map[string]string{"op": "trace"})
	var events []map[string]any
	if err := json.Unmarshal(resp["events"], &events); err != nil {
		t.Fatalf("events: %v (%s)", err, resp["events"])
	}
	if len(events) == 0 {
		t.Fatal("no events after a registration")
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kind, ok := ev["kind"].(string)
		if !ok {
			t.Fatalf("event kind not serialized as a string: %v", ev["kind"])
		}
		kinds[kind] = true
	}
	if !kinds["session-registered"] || !kinds["decision-pushed"] {
		t.Errorf("trace kinds %v, want registration and its decision", kinds)
	}
}

func TestTelemetryMuxEndpoints(t *testing.T) {
	registry := telemetry.NewRegistry()
	srv, err := harp.NewServer(harp.ServerConfig{
		Platform:           platform.RaptorLake(),
		DisableExploration: true,
		Metrics:            telemetry.NewMetrics(registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	appSock := filepath.Join(t.TempDir(), "harp.sock")
	go func() { _ = srv.ListenAndServe(appSock) }()
	t.Cleanup(func() { _ = srv.Close() })
	waitSock(t, appSock)
	client, err := harp.Dial(appSock, harp.Registration{App: "m", PID: 8, Adaptivity: harp.Static})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ts := httptest.NewServer(telemetryMux(registry, srv))
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "harp_sessions") ||
		!strings.Contains(body, "# TYPE harp_decisions_total counter") {
		t.Errorf("/metrics incomplete:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "harp") {
		t.Errorf("/debug/vars missing registry:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index incomplete:\n%s", body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d on a healthy daemon", resp.StatusCode)
	}
	var rep harp.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != harp.HealthOK && rep.Status != harp.HealthDegraded {
		t.Errorf("health status = %q, want ok or degraded on a fresh daemon", rep.Status)
	}
	names := map[string]bool{}
	for _, c := range rep.Checks {
		names[c.Name] = true
	}
	for _, want := range []string{"measure-jitter", "journal", "tracer", "sessions", "epochs", "store", "store-durability", "budget"} {
		if !names[want] {
			t.Errorf("/healthz missing check %q: %+v", want, rep.Checks)
		}
	}
}

// TestControlHealthAndEnergy exercises the health op and the energy block of
// the sessions op over the control socket — the surfaces harpctl health and
// harpctl top render.
func TestControlHealthAndEnergy(t *testing.T) {
	appSock, ctlSock := startDaemonPieces(t)
	client, err := harp.Dial(appSock, harp.Registration{App: "he", PID: 9, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp := controlRequest(t, ctlSock, map[string]string{"op": "health"})
	var rep harp.HealthReport
	if err := json.Unmarshal(resp["health"], &rep); err != nil {
		t.Fatalf("health: %v (%s)", err, resp["health"])
	}
	if rep.Status == "" || len(rep.Checks) == 0 {
		t.Fatalf("empty health report: %+v", rep)
	}

	resp = controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
	var energy struct {
		FleetJoules float64          `json:"fleet_joules"`
		Sessions    []map[string]any `json:"sessions"`
	}
	if err := json.Unmarshal(resp["energy"], &energy); err != nil {
		t.Fatalf("energy: %v (%s)", err, resp["energy"])
	}
	if _, ok := resp["tracer_dropped"]; !ok {
		t.Fatalf("tracer_dropped missing: %v", resp)
	}
	if _, ok := resp["epoch_p99_sec"]; !ok {
		t.Fatalf("epoch_p99_sec missing: %v", resp)
	}
}
