package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/harp-rm/harp/harp"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/workload"
)

// buildHarpd compiles the daemon into a temp dir and returns the binary path.
func buildHarpd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "harpd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build harpd: %v\n%s", err, out)
	}
	return bin
}

// harpdProc is one running daemon child process.
type harpdProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

// startHarpd launches the daemon binary against the given sockets and state
// directory and waits for both sockets to come up.
func startHarpd(t *testing.T, bin, appSock, ctlSock, stateDir string) *harpdProc {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command(bin,
		"-platform", "intel",
		"-socket", appSock,
		"-control", ctlSock,
		"-state-dir", stateDir,
	)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &harpdProc{cmd: cmd, out: &out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	waitSock(t, appSock)
	waitSock(t, ctlSock)
	return p
}

// kill9 delivers SIGKILL — no shutdown hook, no final snapshot — and reaps
// the child.
func (p *harpdProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p.cmd.Wait() // exit status is the kill signal; only reaping matters
}

// terminate sends SIGTERM and waits for the graceful-shutdown path to run.
func (p *harpdProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatalf("harpd did not exit on SIGTERM; output:\n%s", p.out.String())
	}
}

// fullDescription serialises the complete offline design-space sweep for one
// profile: enough measured points that the session is stable on upload
// (StableAfter caps at the space size).
func fullDescription(t *testing.T, plat *platform.Platform, prof *workload.Profile) []byte {
	t.Helper()
	tbl := &opoint.Table{App: prof.Name, Platform: plat.Name}
	for _, rv := range platform.EnumerateVectors(plat, 0) {
		ev := workload.EvaluateVector(plat, prof, rv)
		tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
	}
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sessionView is the control-socket session summary the chaos test asserts on.
type sessionView struct {
	Instance string `json:"Instance"`
	Stage    string `json:"Stage"`
	Measured int    `json:"Measured"`
	Phase    string `json:"Phase"`
}

// daemonState asks the control socket for the session list plus the RM
// generation.
func daemonState(t *testing.T, ctlSock string) (sessions []sessionView, generation uint64) {
	t.Helper()
	resp := controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
	if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
		t.Fatalf("sessions: %v (%s)", err, resp["sessions"])
	}
	if err := json.Unmarshal(resp["generation"], &generation); err != nil {
		t.Fatalf("generation: %v (%s)", err, resp["generation"])
	}
	return sessions, generation
}

// daemonEnergy reads the fleet joule accumulator off the sessions op.
func daemonEnergy(t *testing.T, ctlSock string) float64 {
	t.Helper()
	resp := controlRequest(t, ctlSock, map[string]string{"op": "sessions"})
	var e struct {
		FleetJoules float64 `json:"fleet_joules"`
	}
	if err := json.Unmarshal(resp["energy"], &e); err != nil {
		t.Fatalf("energy: %v (%s)", err, resp["energy"])
	}
	return e.FleetJoules
}

// waitForDaemonSession polls the control socket until the instance satisfies
// ok.
func waitForDaemonSession(t *testing.T, ctlSock, instance string, ok func(sessionView) bool) sessionView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last []sessionView
	for {
		sessions, _ := daemonState(t, ctlSock)
		for _, s := range sessions {
			if s.Instance == instance && ok(s) {
				return s
			}
		}
		last = sessions
		if time.Now().After(deadline) {
			t.Fatalf("session %s never reached the wanted state; last view: %+v", instance, last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// preserveStateDir copies the state directory to $HARP_CHAOS_ARTIFACTS when
// the test fails, so CI can upload the snapshot + WAL that broke recovery.
func preserveStateDir(t *testing.T, stateDir string) {
	t.Cleanup(func() {
		dst := os.Getenv("HARP_CHAOS_ARTIFACTS")
		if !t.Failed() || dst == "" {
			return
		}
		target := filepath.Join(dst, t.Name())
		if err := os.MkdirAll(target, 0o755); err != nil {
			t.Logf("preserve state dir: %v", err)
			return
		}
		if err := os.CopyFS(target, os.DirFS(stateDir)); err != nil {
			t.Logf("preserve state dir: %v", err)
			return
		}
		t.Logf("state dir preserved in %s", target)
	})
}

// Acceptance: kill -9 the daemon mid-run, restart it with the same
// -state-dir, and a reconnecting client resumes its learned table at the
// prior exploration stage — stable, with the measured points and announced
// phase it had before the crash, without re-uploading anything. A final
// SIGTERM then exercises the graceful path: the store ends with a fresh
// snapshot and an empty WAL.
func TestHarpdKill9WarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon process")
	}
	bin := buildHarpd(t)
	dir := t.TempDir()
	appSock := filepath.Join(dir, "harp.sock")
	ctlSock := filepath.Join(dir, "ctl.sock")
	stateDir := filepath.Join(dir, "state")
	preserveStateDir(t, stateDir)

	plat := platform.RaptorLake()
	prof, err := workload.ByName(workload.IntelApps(), "ep.C")
	if err != nil {
		t.Fatal(err)
	}
	desc := fullDescription(t, plat, prof)

	// Generation 1: teach the daemon a full table and announce a phase.
	gen1 := startHarpd(t, bin, appSock, ctlSock, stateDir)
	c1, err := harp.Dial(appSock, harp.Registration{App: "ep.C", PID: 41, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatalf("dial generation 1: %v\n%s", err, gen1.out.String())
	}
	defer c1.Close()
	if err := c1.UploadDescription(bytes.NewReader(desc)); err != nil {
		t.Fatal(err)
	}
	if err := c1.NotifyPhase("solve"); err != nil {
		t.Fatal(err)
	}
	taught := waitForDaemonSession(t, ctlSock, "ep.C/41", func(s sessionView) bool {
		return s.Stage == "stable" && s.Phase == "solve"
	})
	if _, gen := daemonState(t, ctlSock); gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	energyBefore := daemonEnergy(t, ctlSock)

	// The crash: no exit message, no final snapshot — recovery must come
	// from the boot checkpoint and the WAL alone.
	gen1.kill9(t)

	// Generation 2: same state dir, fresh process.
	gen2 := startHarpd(t, bin, appSock, ctlSock, stateDir)
	c2, err := harp.Dial(appSock, harp.Registration{App: "ep.C", PID: 41, Adaptivity: harp.Scalable})
	if err != nil {
		t.Fatalf("dial generation 2: %v\n%s", err, gen2.out.String())
	}
	defer c2.Close()
	resumed := waitForDaemonSession(t, ctlSock, "ep.C/41", func(s sessionView) bool {
		return s.Stage == "stable"
	})
	if resumed.Measured < taught.Measured {
		t.Fatalf("resumed with %d measured points, want >= %d", resumed.Measured, taught.Measured)
	}
	if resumed.Phase != "solve" {
		t.Fatalf("resumed phase = %q, want the pre-crash phase restored", resumed.Phase)
	}
	if _, gen := daemonState(t, ctlSock); gen != 2 {
		t.Fatalf("generation after kill -9 restart = %d, want 2", gen)
	}
	// The joule account is monotone across the crash: the recovered ledger
	// resumes from the journalled accumulators, never from zero below them.
	if energyAfter := daemonEnergy(t, ctlSock); energyAfter < energyBefore {
		t.Fatalf("fleet joules shrank across kill -9: %.6f -> %.6f", energyBefore, energyAfter)
	}

	// Graceful end: SIGTERM must leave a final snapshot and a rotated WAL.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	gen2.terminate(t)
	st, err := store.Open(stateDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := st.Recovery()
	if rec.ColdStart || !rec.SnapshotLoaded {
		t.Fatalf("post-SIGTERM recovery = %+v, want a warm snapshot", rec)
	}
	if rec.WALRecords != 0 {
		t.Fatalf("post-SIGTERM WAL held %d records, want 0 after the final snapshot", rec.WALRecords)
	}
	if st.Generation() != 3 {
		t.Fatalf("generation = %d, want 3 (two daemon boots + this open)", st.Generation())
	}
	if st.RecoveredState().MeasuredPoints() == 0 {
		t.Fatal("final snapshot lost the learned operating points")
	}
}
