// Command harpd runs the HARP resource-manager daemon (§4.3): it listens on
// a Unix socket for libharp registrations, loads hardware and application
// descriptions from a /etc/harp-style configuration directory, and exposes a
// control socket for harpctl.
//
// Usage:
//
//	harpd -platform intel -socket /run/harp.sock -control /run/harpctl.sock \
//	      -config /etc/harp [-no-exploration]
//
// Without a real perf/RAPL sampler (not available in this repository's
// offline environment), sessions are driven purely by uploaded operating
// points and self-reported utility; see package harpsim for the simulated
// closed loop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"github.com/harp-rm/harp/harp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harpd", flag.ContinueOnError)
	var (
		platformName  = fs.String("platform", "intel", "built-in platform name or hardware description file")
		socketPath    = fs.String("socket", "/tmp/harp.sock", "Unix socket for libharp sessions")
		controlPath   = fs.String("control", "/tmp/harpctl.sock", "Unix socket for harpctl")
		configDir     = fs.String("config", "", "configuration directory (hardware description, opoints/)")
		noExploration = fs.Bool("no-exploration", false, "disable online exploration (HARP Offline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, err := harp.LoadPlatform(*platformName)
	if err != nil {
		return err
	}
	srv, err := harp.NewServer(harp.ServerConfig{
		Platform:           plat,
		ConfigDir:          *configDir,
		DisableExploration: *noExploration || !plat.SimultaneousPMU,
	})
	if err != nil {
		return err
	}

	ctl, err := newControlListener(*controlPath, srv)
	if err != nil {
		return err
	}
	defer ctl.Close()
	go ctl.serve()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		_ = srv.Close()
	}()

	fmt.Printf("harpd: managing %s on %s (control %s)\n", plat, *socketPath, *controlPath)
	return srv.ListenAndServe(*socketPath)
}

// controlListener answers harpctl queries with JSON lines.
type controlListener struct {
	ln  net.Listener
	srv *harp.Server
}

func newControlListener(path string, srv *harp.Server) (*controlListener, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return nil, err
	}
	return &controlListener{ln: ln, srv: srv}, nil
}

func (c *controlListener) Close() error { return c.ln.Close() }

func (c *controlListener) serve() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

// handle answers one request per connection: a JSON object
// {"op": "sessions"} or {"op": "table", "instance": "..."}.
func (c *controlListener) handle(conn net.Conn) {
	defer conn.Close()
	var req struct {
		Op       string `json:"op"`
		Instance string `json:"instance"`
	}
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	if err := dec.Decode(&req); err != nil {
		_ = enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	switch req.Op {
	case "sessions":
		_ = enc.Encode(map[string]any{"sessions": c.srv.Sessions()})
	case "table":
		tbl, err := c.srv.TableSnapshot(req.Instance)
		if err != nil {
			_ = enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		_ = enc.Encode(map[string]any{"table": tbl})
	default:
		_ = enc.Encode(map[string]string{"error": "unknown op " + req.Op})
	}
}
