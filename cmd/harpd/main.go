// Command harpd runs the HARP resource-manager daemon (§4.3): it listens on
// a Unix socket for libharp registrations, loads hardware and application
// descriptions from a /etc/harp-style configuration directory, and exposes a
// control socket for harpctl.
//
// Usage:
//
//	harpd -platform intel -socket /run/harp.sock -control /run/harpctl.sock \
//	      -config /etc/harp [-no-exploration] [-liveness] \
//	      [-suspect-after 1s -quarantine-after 3s -reap-after 10s] \
//	      [-telemetry 127.0.0.1:9140] [-journal /var/log/harp/journal.jsonl] \
//	      [-state-dir /var/lib/harp] [-max-sessions 64]
//	      [-alloc-cache 64] [-alloc-warm-start=false] [-epoch-budget 20ms]
//
// -liveness enables session health tracking (suspect → quarantine → reap,
// see RESILIENCE.md); the three deadline flags tune it and imply -liveness on
// their own. harpctl status shows each session's state and report age.
//
// -state-dir makes the daemon durable: learned operating-point tables and
// session context are recovered from the directory's snapshot + write-ahead
// log at startup (warm restart — even after kill -9), every mutation is
// WAL-logged, and a graceful shutdown writes a final snapshot. Corrupt state
// is quarantined and the daemon cold-starts rather than refusing to boot.
// -max-sessions caps concurrent registrations (rejections are journalled and
// counted). See RESILIENCE.md, "Warm restart".
//
// The daemon always keeps a ring buffer of adaptation-loop events (harpctl
// trace) and a metrics registry. -telemetry additionally serves them over
// HTTP: /metrics (Prometheus text format), /debug/vars (expvar) and
// /debug/pprof/ (runtime profiles). -journal appends one JSONL record per
// decision epoch to the given file.
//
// Without a real perf/RAPL sampler (not available in this repository's
// offline environment), sessions are driven purely by uploaded operating
// points and self-reported utility; see package harpsim for the simulated
// closed loop.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/harp-rm/harp/harp"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harpd", flag.ContinueOnError)
	var (
		platformName  = fs.String("platform", "intel", "built-in platform name or hardware description file")
		socketPath    = fs.String("socket", "/tmp/harp.sock", "Unix socket for libharp sessions")
		controlPath   = fs.String("control", "/tmp/harpctl.sock", "Unix socket for harpctl")
		configDir     = fs.String("config", "", "configuration directory (hardware description, opoints/)")
		noExploration = fs.Bool("no-exploration", false, "disable online exploration (HARP Offline)")
		liveness      = fs.Bool("liveness", false, "enable session liveness tracking with the default deadlines (see RESILIENCE.md)")
		suspectAfter  = fs.Duration("suspect-after", 0, "mark sessions suspect after this much silence (implies -liveness)")
		quarantine    = fs.Duration("quarantine-after", 0, "quarantine sessions after this much silence (implies -liveness)")
		reapAfter     = fs.Duration("reap-after", 0, "deregister sessions after this much silence (implies -liveness)")
		writeTimeout  = fs.Duration("write-timeout", 0, "per-message write deadline on session sockets (0 = default, negative = none)")
		telemetryAddr = fs.String("telemetry", "", "HTTP address for /metrics, /debug/vars and /debug/pprof/ (empty = off)")
		journalPath   = fs.String("journal", "", "append per-epoch decision records (JSONL) to this file (empty = off)")
		traceBuffer   = fs.Int("trace-buffer", 0, "event ring capacity for harpctl trace (0 = default)")
		stateDir      = fs.String("state-dir", "", "directory for durable RM state (snapshot + WAL); restarts resume learned tables (empty = off)")
		maxSessions   = fs.Int("max-sessions", 0, "admission cap on concurrent sessions (0 = unlimited)")
		allocCache    = fs.Int("alloc-cache", 0, "fingerprinted solution-cache capacity (0 = default, negative = off)")
		allocWarm     = fs.Bool("alloc-warm-start", true, "seed each solve's subgradient iteration from the previous epoch's multipliers")
		epochBudget   = fs.Duration("epoch-budget", 0, "deadline budget per epoch solve before the degradation ladder engages (0 = default, negative = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, err := harp.LoadPlatform(*platformName)
	if err != nil {
		return err
	}

	tracer := telemetry.NewTracer(*traceBuffer)
	registry := telemetry.NewRegistry()
	metrics := telemetry.NewMetrics(registry)
	energy := telemetry.NewEnergyLedger()
	var journal *telemetry.Journal
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		defer f.Close()
		journal = telemetry.NewJournal(f)
	}

	policy, err := livenessPolicy(*liveness, *suspectAfter, *quarantine, *reapAfter)
	if err != nil {
		return err
	}

	srv, err := harp.NewServer(harp.ServerConfig{
		Platform:           plat,
		ConfigDir:          *configDir,
		DisableExploration: *noExploration || !plat.SimultaneousPMU,
		Liveness:           policy,
		WriteTimeout:       *writeTimeout,
		Tracer:             tracer,
		Metrics:            metrics,
		Journal:            journal,
		Energy:             energy,
		StateDir:           *stateDir,
		MaxSessions:        *maxSessions,
		AllocCacheSize:     *allocCache,
		AllocWarmStart:     *allocWarm,
		EpochBudget:        *epochBudget,
	})
	if err != nil {
		return err
	}
	if rec, ok := srv.StoreRecovery(); ok {
		switch {
		case rec.ColdStart:
			fmt.Printf("harpd: state %s: cold start (generation %d)", *stateDir, srv.Generation())
		default:
			fmt.Printf("harpd: state %s: warm restart (generation %d, %d WAL records)",
				*stateDir, srv.Generation(), rec.WALRecords)
		}
		if rec.Quarantined != "" {
			fmt.Printf(", corrupt files quarantined in %s", rec.Quarantined)
		}
		if rec.Err != nil {
			fmt.Printf(" [%v]", rec.Err)
		}
		fmt.Println()
	}

	ctl, err := newControlListener(*controlPath, srv, tracer)
	if err != nil {
		return err
	}
	defer ctl.Close()
	go ctl.serve()

	if *telemetryAddr != "" {
		tln, err := net.Listen("tcp", *telemetryAddr)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer tln.Close()
		go func() { _ = http.Serve(tln, telemetryMux(registry, srv)) }()
		fmt.Printf("harpd: telemetry on http://%s/metrics\n", tln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	closeErr := make(chan error, 1)
	go func() {
		<-sigc
		closeErr <- srv.Close()
	}()

	fmt.Printf("harpd: managing %s on %s (control %s)\n", plat, *socketPath, *controlPath)
	if err := srv.ListenAndServe(*socketPath); err != nil {
		return err
	}
	// Serve returns nil only once Close has begun (the signal handler above);
	// wait for it so the final snapshot is on disk before the process exits.
	return <-closeErr
}

// livenessPolicy builds the session-liveness deadlines from the flags:
// -liveness enables the defaults, any explicit deadline overrides its default
// (and enables tracking on its own). The server validates the ordering again;
// checking here yields a flag-level error message.
func livenessPolicy(enabled bool, suspect, quarantine, reap time.Duration) (core.LivenessPolicy, error) {
	if !enabled && suspect == 0 && quarantine == 0 && reap == 0 {
		return core.LivenessPolicy{}, nil
	}
	p := core.DefaultLivenessPolicy()
	if suspect > 0 {
		p.SuspectAfter = suspect
	}
	if quarantine > 0 {
		p.QuarantineAfter = quarantine
	}
	if reap > 0 {
		p.ReapAfter = reap
	}
	if err := p.Validate(); err != nil {
		return core.LivenessPolicy{}, err
	}
	return p, nil
}

// telemetryMux serves the observability endpoints: Prometheus text,
// expvar, the health surface, and the standard pprof profiles.
func telemetryMux(reg *telemetry.Registry, srv *harp.Server) *http.ServeMux {
	reg.PublishExpvar("harp")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		rep := srv.Health()
		w.Header().Set("Content-Type", "application/json")
		// Degraded still answers 200: load balancers should keep routing to
		// an RM that is serving with eroded guarantees, and alert off the
		// body (or the metrics) instead.
		if rep.Status == harp.HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(rep)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// controlListener answers harpctl queries with JSON lines.
type controlListener struct {
	ln     net.Listener
	srv    *harp.Server
	tracer *telemetry.Tracer
}

func newControlListener(path string, srv *harp.Server, tracer *telemetry.Tracer) (*controlListener, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return nil, err
	}
	return &controlListener{ln: ln, srv: srv, tracer: tracer}, nil
}

func (c *controlListener) Close() error { return c.ln.Close() }

func (c *controlListener) serve() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

// handle answers one request per connection: a JSON object
// {"op": "sessions"}, {"op": "table", "instance": "..."},
// {"op": "trace", "n": 100} (n = 0 dumps the whole ring) or
// {"op": "health"}.
func (c *controlListener) handle(conn net.Conn) {
	defer conn.Close()
	var req struct {
		Op       string `json:"op"`
		Instance string `json:"instance"`
		N        int    `json:"n"`
	}
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	if err := dec.Decode(&req); err != nil {
		_ = enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	switch req.Op {
	case "sessions":
		cs := c.srv.AllocCacheStats()
		resp := map[string]any{
			"sessions":   c.srv.Sessions(),
			"generation": c.srv.Generation(),
			"uptime_sec": c.srv.Uptime().Seconds(),
			"alloc_cache": map[string]any{
				"size":      cs.Size,
				"cap":       cs.Cap,
				"hits":      cs.Hits,
				"misses":    cs.Misses,
				"evictions": cs.Evictions,
				"hit_rate":  cs.HitRate(),
			},
			"solve_source":   c.srv.LastSolveSource(),
			"tracer_dropped": c.tracer.Dropped(),
		}
		if err := c.srv.JournalError(); err != nil {
			resp["journal_error"] = err.Error()
		}
		if msg := c.srv.LastEpochError(); msg != "" {
			resp["last_epoch_error"] = msg
		}
		if rung := c.srv.DegradedRung(); rung != "" {
			resp["degraded_rung"] = rung
		}
		if c.srv.StoreDegraded() {
			resp["store_degraded"] = true
		}
		if mt := c.srv.Metrics(); mt != nil {
			resp["epoch_p99_sec"] = mt.AllocLatency.Quantile(0.99)
		}
		tot := c.srv.EnergyTotals()
		energy := map[string]any{
			"fleet_joules":       tot.Joules,
			"fleet_utility_sec":  tot.UtilityS,
			"fleet_power_w":      tot.PowerW,
			"budget_w":           tot.BudgetW,
			"budget_headroom_w":  tot.BudgetW - tot.PowerW,
			"budget_overrun_sec": tot.OverrunSec,
		}
		var rows []map[string]any
		for _, se := range c.srv.EnergySessions() {
			rows = append(rows, map[string]any{
				"instance":    se.Instance,
				"joules":      se.Joules,
				"utility_sec": se.UtilityS,
				"power_w":     se.PowerW,
				"efficiency":  se.Efficiency(),
			})
		}
		energy["sessions"] = rows
		resp["energy"] = energy
		_ = enc.Encode(resp)
	case "table":
		tbl, err := c.srv.TableSnapshot(req.Instance)
		if err != nil {
			_ = enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		_ = enc.Encode(map[string]any{"table": tbl})
	case "trace":
		_ = enc.Encode(map[string]any{
			"events":  c.tracer.Tail(req.N),
			"total":   c.tracer.Total(),
			"dropped": c.tracer.Dropped(),
		})
	case "health":
		_ = enc.Encode(map[string]any{"health": c.srv.Health()})
	default:
		_ = enc.Encode(map[string]string{"error": "unknown op " + req.Op})
	}
}
