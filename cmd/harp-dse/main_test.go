package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

func TestDSEGeneratesDescriptions(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-platform", "odroid", "-apps", "mg.A,lms", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.OdroidXU3()
	for _, name := range []string{"mg.A", "lms"} {
		tbl, err := opoint.LoadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if err := tbl.Validate(plat); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tbl.MeasuredCount() != 24 {
			t.Errorf("%s: %d points, want the full 24-config Odroid space", name, tbl.MeasuredCount())
		}
	}
	if !strings.Contains(buf.String(), "Pareto-optimal") {
		t.Errorf("output missing summary: %s", buf.String())
	}
}

func TestDSEAllFlag(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-platform", "odroid", "-all", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 13 {
		t.Errorf("generated %d descriptions, want 13 (full Odroid suite)", len(files))
	}
}

func TestDSEValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-platform", "intel"}, &buf); err == nil {
		t.Error("missing -apps/-all accepted")
	}
	if err := run([]string{"-platform", "venus", "-all"}, &buf); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-platform", "intel", "-apps", "ghost"}, &buf); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSanitise(t *testing.T) {
	tests := []struct{ give, want string }{
		{"ep.C", "ep.C"},
		{"a/b:c\\d", "a_b_c_d"},
	}
	for _, tt := range tests {
		if got := sanitise(tt.give); got != tt.want {
			t.Errorf("sanitise(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
