// Command harp-dse performs offline design-space exploration (§3.2.1):
// it sweeps the coarse configuration space of the given applications on a
// platform and writes application description files (operating-point tables)
// suitable for /etc/harp/opoints or for shipping with the application.
//
// Usage:
//
//	harp-dse -platform intel -apps mg.C,ep.C -out ./opoints
//	harp-dse -platform odroid -all -out /etc/harp/opoints
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harp-dse:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harp-dse", flag.ContinueOnError)
	var (
		platName = fs.String("platform", "intel", "intel or odroid")
		appsFlag = fs.String("apps", "", "comma-separated application names")
		allApps  = fs.Bool("all", false, "explore every workload of the platform's suite")
		outDir   = fs.String("out", "opoints", "output directory for description files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plat := platform.Builtin(*platName)
	if plat == nil {
		return fmt.Errorf("unknown platform %q", *platName)
	}
	suite := workload.IntelApps()
	if plat.Name == platform.OdroidXU3().Name {
		suite = workload.OdroidApps()
	}

	var apps []*workload.Profile
	switch {
	case *allApps:
		apps = suite
	case *appsFlag != "":
		for _, name := range strings.Split(*appsFlag, ",") {
			p, err := workload.ByName(suite, strings.TrimSpace(name))
			if err != nil {
				return err
			}
			apps = append(apps, p)
		}
	default:
		return errors.New("pass -apps or -all")
	}

	tables := harpsim.OfflineDSETables(plat, apps)
	for app, tbl := range tables {
		tbl.Sort()
		path := filepath.Join(*outDir, sanitise(app)+".json")
		if err := tbl.SaveFile(path); err != nil {
			return err
		}
		front := tbl.ParetoPoints()
		fmt.Fprintf(out, "%-20s %4d operating points (%d Pareto-optimal) → %s\n",
			app, len(tbl.Points), len(front), path)
	}
	return nil
}

// sanitise makes an application name filesystem-friendly.
func sanitise(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		default:
			return r
		}
	}, name)
}
