// Command harp-sim runs evaluation scenarios on the simulated heterogeneous
// platforms and regenerates the paper's tables and figures.
//
// Usage:
//
//	harp-sim run -platform intel -apps mg.C,cg.C -policy harp-offline \
//	             [-trace run.trace.json] [-journal run.journal.jsonl]
//	harp-sim experiment fig6 [-quick] [-seed 1]
//	harp-sim list
//
// Experiments: fig1, fig5, fig6, fig7, fig8, governor, overhead,
// attribution, alloc-ablation, explore-ablation, fig-cluster, all.
//
// fig-cluster is the fleet extension: coordinated bin-packing with drain
// consolidation versus static per-machine partitioning of one shared
// energy budget, with a faulted arm (machine kill + coordinator failover).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/experiments"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harp-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: harp-sim run|experiment|list …")
	}
	switch args[0] {
	case "run":
		return runScenario(args[1:], out)
	case "experiment":
		return runExperiment(args[1:], out)
	case "list":
		return listWorkloads(out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func listWorkloads(out io.Writer) error {
	fmt.Fprintln(out, "Intel Raptor Lake workloads:")
	for _, p := range workload.IntelApps() {
		fmt.Fprintf(out, "  %-20s %-9s work=%.0f GI  mem=%.2f\n", p.Name, p.Adaptivity, p.WorkGI, p.MemBound)
	}
	fmt.Fprintln(out, "Odroid XU3-E workloads:")
	for _, p := range workload.OdroidApps() {
		fmt.Fprintf(out, "  %-20s %-9s work=%.0f GI  mem=%.2f\n", p.Name, p.Adaptivity, p.WorkGI, p.MemBound)
	}
	return nil
}

func runScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harp-sim run", flag.ContinueOnError)
	var (
		platName  = fs.String("platform", "intel", "intel or odroid")
		appsFlag  = fs.String("apps", "", "comma-separated application names")
		polName   = fs.String("policy", "cfs", "cfs|eas|itd|harp|harp-offline|harp-noscaling|harp-overhead")
		seed      = fs.Int64("seed", 1, "noise seed")
		timeline  = fs.Bool("timeline", false, "print every applied allocation decision (HARP policies)")
		traceFile = fs.String("trace", "", "write a Chrome trace_event JSON of the run (open in Perfetto)")
		journFile = fs.String("journal", "", "write the per-epoch decision journal (JSONL) to this file")
		stateDir  = fs.String("state-dir", "", "durable RM state directory: resume learned tables across runs (HARP policies)")
		rmCrashAt = fs.Duration("rm-crash-at", 0, "kill and restart the RM at this virtual time (warm from -state-dir, else cold)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plat := platform.Builtin(*platName)
	if plat == nil {
		return fmt.Errorf("unknown platform %q", *platName)
	}
	suite := workload.IntelApps()
	if plat.Name == platform.OdroidXU3().Name {
		suite = workload.OdroidApps()
	}
	if *appsFlag == "" {
		return errors.New("-apps is required")
	}
	var apps []*workload.Profile
	for _, name := range strings.Split(*appsFlag, ",") {
		p, err := workload.ByName(suite, strings.TrimSpace(name))
		if err != nil {
			return err
		}
		apps = append(apps, p)
	}
	policy, err := parsePolicy(*polName)
	if err != nil {
		return err
	}
	sc := harpsim.Scenario{Name: *appsFlag, Platform: plat, Apps: apps}
	opts := harpsim.Options{Policy: policy, Seed: *seed, RecordTimeline: *timeline, StateDir: *stateDir}
	if policy.IsHARP() {
		opts.OfflineTables = harpsim.OfflineDSETables(plat, suite)
	}
	if *rmCrashAt > 0 {
		if !policy.IsHARP() {
			return errors.New("-rm-crash-at requires a HARP policy")
		}
		opts.Faults = &faultsim.Plan{Faults: []faultsim.Fault{
			{At: *rmCrashAt, Target: faultsim.RMTarget, Kind: faultsim.KindRMCrash},
		}}
	}
	if *traceFile != "" {
		// Large enough that typical scenario runs keep every event.
		opts.Tracer = telemetry.NewTracer(1 << 20)
	}
	var journalOut *os.File
	if *journFile != "" {
		f, err := os.Create(*journFile)
		if err != nil {
			return err
		}
		journalOut = f
		defer f.Close()
		opts.Journal = telemetry.NewJournal(f)
		if policy.IsHARP() {
			// Journalled HARP runs carry the energy ledger so each epoch
			// records energy_j / budget_headroom_w (see OBSERVABILITY.md).
			opts.Energy = telemetry.NewEnergyLedger()
		}
	}
	res, err := harpsim.Run(sc, opts)
	if err != nil {
		return err
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := opts.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace     : %s (%d events", *traceFile, opts.Tracer.Total())
		if d := opts.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(out, ", oldest %d evicted", d)
		}
		fmt.Fprintln(out, ")")
	}
	if journalOut != nil {
		if err := opts.Journal.Err(); err != nil {
			return err
		}
		fmt.Fprintf(out, "journal   : %s (%d epochs)\n", *journFile, opts.Journal.Epochs())
	}
	fmt.Fprintf(out, "scenario  : %s on %s under %s\n", sc.Name, plat.Name, policy)
	fmt.Fprintf(out, "makespan  : %.3f s\n", res.MakespanSec)
	fmt.Fprintf(out, "energy    : %.1f J\n", res.EnergyJ)
	if res.RMRestarts > 0 {
		fmt.Fprintf(out, "rm-crashes: %d survived (state %s)\n", res.RMRestarts, stateLabel(*stateDir))
	}
	appNames := make([]string, 0, len(res.Apps))
	for name := range res.Apps {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	for _, name := range appNames {
		ar := res.Apps[name]
		fmt.Fprintf(out, "  %-22s %8.3f s  %10.1f J dyn\n", name, ar.TimeSec, ar.DynEnergyJ)
	}
	if *timeline && len(res.Timeline) > 0 {
		fmt.Fprintln(out, "\nallocation timeline:")
		for _, ev := range res.Timeline {
			mode := "stable"
			switch {
			case len(ev.Cores) == 0 && ev.VectorKey == "":
				mode = "session-end"
			case len(ev.Cores) == 0:
				mode = "parked"
			case ev.Exploring:
				mode = "explore"
			case ev.CoAllocated:
				mode = "co-alloc"
			}
			fmt.Fprintf(out, "  %8.2fs %-22s %-11s vector %-10s threads %d\n",
				ev.AtSec, ev.Instance, mode, ev.VectorKey, ev.Threads)
		}
	}
	return nil
}

// stateLabel names the durability mode for the rm-crashes summary line.
func stateLabel(dir string) string {
	if dir == "" {
		return "none, cold restarts"
	}
	return dir
}

func parsePolicy(name string) (harpsim.Policy, error) {
	policies := map[string]harpsim.Policy{
		"cfs":            harpsim.PolicyCFS,
		"eas":            harpsim.PolicyEAS,
		"itd":            harpsim.PolicyITD,
		"harp":           harpsim.PolicyHARP,
		"harp-offline":   harpsim.PolicyHARPOffline,
		"harp-noscaling": harpsim.PolicyHARPNoScaling,
		"harp-overhead":  harpsim.PolicyHARPOverhead,
	}
	p, ok := policies[name]
	if !ok {
		return 0, fmt.Errorf("unknown policy %q", name)
	}
	return p, nil
}

func runExperiment(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harp-sim experiment", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "trimmed scenario lists for a fast run")
		seed     = fs.Int64("seed", 1, "noise seed")
		parallel = fs.Int("parallelism", 0, "worker count for the experiment fan-out (0 = one per CPU, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: harp-sim experiment <name> [-quick] [-seed N] [-parallelism N]")
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallelism: *parallel}

	type runner struct {
		name string
		fn   func() error
	}
	format := func(r interface{ Format(io.Writer) }, err error) error {
		if err != nil {
			return err
		}
		r.Format(out)
		return nil
	}
	all := []runner{
		{"fig1", func() error { r, err := experiments.Fig1(cfg); return format(r, err) }},
		{"fig5", func() error { r, err := experiments.Fig5(cfg); return format(r, err) }},
		{"fig6", func() error { r, err := experiments.Fig6(cfg); return format(r, err) }},
		{"fig7", func() error { r, err := experiments.Fig7(cfg); return format(r, err) }},
		{"fig8", func() error { r, err := experiments.Fig8(cfg); return format(r, err) }},
		{"governor", func() error { r, err := experiments.Governor(cfg); return format(r, err) }},
		{"overhead", func() error { r, err := experiments.Overhead(cfg); return format(r, err) }},
		{"attribution", func() error { r, err := experiments.Attribution(cfg); return format(r, err) }},
		{"alloc-ablation", func() error { r, err := experiments.AllocAblation(cfg); return format(r, err) }},
		{"explore-ablation", func() error { r, err := experiments.ExploreAblation(cfg); return format(r, err) }},
		{"fig-cluster", func() error { r, err := experiments.FigCluster(cfg); return format(r, err) }},
	}
	want := fs.Arg(0)
	if want == "all" {
		for _, r := range all {
			if err := r.fn(); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
		}
		return nil
	}
	for _, r := range all {
		if r.name == want {
			return r.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q", want)
}
