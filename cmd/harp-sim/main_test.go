package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/telemetry"
)

func TestRunRequiresCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no command accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestListWorkloads(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ep.C", "binpack", "vgg", "mg.A", "lms-static"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunScenarioCFS(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"run", "-platform", "intel", "-apps", "is.C", "-policy", "cfs"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"makespan", "energy", "is.C"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q: %s", want, out)
		}
	}
}

func TestRunScenarioHARPOnOdroid(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"run", "-platform", "odroid", "-apps", "mg.A,is.A", "-policy", "harp-offline"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "harp-offline") {
		t.Errorf("output missing policy: %s", buf.String())
	}
}

func TestRunScenarioWithTraceAndJournal(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	journalPath := filepath.Join(dir, "run.journal.jsonl")
	var buf bytes.Buffer
	err := run([]string{"run", "-platform", "intel", "-apps", "mg.C", "-policy", "harp-offline",
		"-trace", tracePath, "-journal", journalPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace", "journal", "epochs", "makespan"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not a trace_event array: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace file is empty")
	}

	jf, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	epochs, err := telemetry.ReadJournal(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Error("journal file has no epochs")
	}
}

func TestRunScenarioValidation(t *testing.T) {
	var buf bytes.Buffer
	tests := [][]string{
		{"run", "-platform", "mars", "-apps", "is.C"},
		{"run", "-platform", "intel"},
		{"run", "-platform", "intel", "-apps", "no-such-app"},
		{"run", "-platform", "intel", "-apps", "is.C", "-policy", "magic"},
	}
	for _, args := range tests {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"cfs", "eas", "itd", "harp", "harp-offline", "harp-noscaling", "harp-overhead"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("parsePolicy(%q): %v", name, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("parsePolicy(nope) accepted")
	}
}

func TestExperimentValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment"}, &buf); err == nil {
		t.Error("experiment without name accepted")
	}
	if err := run([]string{"experiment", "fig99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentQuickAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	var buf bytes.Buffer
	if err := run([]string{"experiment", "-quick", "attribution"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MAPE") {
		t.Errorf("attribution output incomplete: %s", buf.String())
	}
}
