// Command harp-calibrate is the model-calibration probe: for every workload
// of a platform it prints the baseline configuration (the OS scheduler's
// default full-machine run) next to the configuration HARP's energy-utility
// cost ζ would select, with the resulting time and energy ratios. This is
// the closed-form view behind Figs. 6 and 7 — useful when tuning platform
// power models or workload parameters.
//
// Usage:
//
//	harp-calibrate -platform intel
//	harp-calibrate -platform odroid
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harp-calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harp-calibrate", flag.ContinueOnError)
	platName := fs.String("platform", "intel", "intel or odroid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plat := platform.Builtin(*platName)
	if plat == nil {
		return fmt.Errorf("unknown platform %q", *platName)
	}
	suite := workload.IntelApps()
	if plat.Name == platform.OdroidXU3().Name {
		suite = workload.OdroidApps()
	}

	fmt.Fprintf(out, "%-18s %-28s %-28s %7s %7s\n",
		"app", "baseline (time, energy)", "harp ζ-pick (time, energy)", "t-gain", "e-gain")
	for _, prof := range suite {
		base := baselineEval(plat, prof)
		pick, ev := bestByCost(plat, prof)
		fmt.Fprintf(out, "%-18s %9.1fs %12.1fJ %-8s %8.1fs %10.1fJ %6.2fx %6.2fx\n",
			prof.Name, base.TimeSec, base.EnergyJ,
			pick, ev.TimeSec, ev.EnergyJ,
			base.TimeSec/ev.TimeSec, base.EnergyJ/ev.EnergyJ)
	}
	return nil
}

// baselineEval is the unmanaged run: the app's default thread count on the
// full machine (fixed-topology apps occupy only their topology, fastest
// cores first, as capacity-aware schedulers place them).
func baselineEval(plat *platform.Platform, prof *workload.Profile) workload.VectorEval {
	threads := prof.Threads(plat)
	if threads >= plat.NumHWThreads() {
		return workload.EvaluateVector(plat, prof, plat.Capacity())
	}
	rv := platform.NewResourceVector(plat)
	remaining := threads
	for kindIdx, kind := range plat.Kinds {
		for c := 0; c < kind.Count && remaining > 0; c++ {
			use := kind.SMT
			if use > remaining {
				use = remaining
			}
			rv.Counts[kindIdx][use-1]++
			remaining -= use
		}
	}
	return workload.EvaluateVector(plat, prof, rv)
}

// bestByCost returns the configuration minimising the energy-utility cost.
func bestByCost(plat *platform.Platform, prof *workload.Profile) (string, workload.VectorEval) {
	tbl := opoint.Table{App: prof.Name, Platform: plat.Name}
	evals := make(map[string]workload.VectorEval)
	for _, rv := range platform.EnumerateVectors(plat, 0) {
		ev := workload.EvaluateVector(plat, prof, rv)
		evals[rv.Key()] = ev
		tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
	}
	vstar := tbl.MaxUtility()
	tbl.Sort()
	bestKey := ""
	bestCost := math.Inf(1)
	for _, op := range tbl.Points {
		if c := op.Cost(vstar); c < bestCost {
			bestCost = c
			bestKey = op.Vector.Key()
		}
	}
	return bestKey, evals[bestKey]
}
