package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCalibrateIntel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-platform", "intel"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ep.C", "binpack", "t-gain", "e-gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// One row per Intel workload plus the header.
	if got := strings.Count(out, "\n"); got != 18 {
		t.Errorf("lines = %d, want 18 (header + 17 apps)", got)
	}
}

func TestCalibrateOdroid(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-platform", "odroid"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mandelbrot-static") {
		t.Error("output missing KPN variants")
	}
}

func TestCalibrateUnknownPlatform(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-platform", "pluto"}, &buf); err == nil {
		t.Error("unknown platform accepted")
	}
}
