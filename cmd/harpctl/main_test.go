package main

import (
	"bytes"
	"encoding/json"
	"net"
	"path/filepath"
	"strings"
	"testing"
)

// fakeHarpd answers control requests the way harpd's control listener does.
func fakeHarpd(t *testing.T) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req struct {
					Op       string `json:"op"`
					Instance string `json:"instance"`
				}
				if err := json.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				enc := json.NewEncoder(conn)
				switch req.Op {
				case "sessions":
					_ = enc.Encode(map[string]any{"sessions": []map[string]string{
						{"Instance": "ep.C/1", "App": "ep.C"},
					}})
				case "table":
					if req.Instance == "ghost" {
						_ = enc.Encode(map[string]string{"error": "unknown session"})
						return
					}
					_ = enc.Encode(map[string]any{"table": map[string]any{"app": req.Instance}})
				default:
					_ = enc.Encode(map[string]string{"error": "unknown op"})
				}
			}()
		}
	}()
	return sock
}

func TestSessionsCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "sessions"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ep.C/1") {
		t.Errorf("output missing session: %s", buf.String())
	}
}

func TestTableCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "table", "ep.C/1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table") {
		t.Errorf("output missing table: %s", buf.String())
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "table", "ghost"}, &buf); err == nil {
		t.Error("server error not surfaced")
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	tests := [][]string{
		nil,
		{"unknown-cmd"},
		{"table"}, // missing instance
	}
	for _, args := range tests {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestMissingDaemon(t *testing.T) {
	var buf bytes.Buffer
	sock := filepath.Join(t.TempDir(), "absent.sock")
	if err := run([]string{"-control", sock, "sessions"}, &buf); err == nil {
		t.Error("missing daemon not reported")
	}
}
