package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeHarpd answers control requests the way harpd's control listener does.
func fakeHarpd(t *testing.T) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req struct {
					Op       string `json:"op"`
					Instance string `json:"instance"`
					N        int    `json:"n"`
				}
				if err := json.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				enc := json.NewEncoder(conn)
				switch req.Op {
				case "sessions":
					_ = enc.Encode(map[string]any{"generation": 3, "uptime_sec": 125.0,
						"alloc_cache": map[string]any{
							"size": 2, "cap": 64, "hits": 17, "misses": 3,
							"evictions": 1, "hit_rate": 0.85,
						},
						"solve_source":     "cached",
						"tracer_dropped":   7,
						"journal_error":    "disk full",
						"last_epoch_error": "core: solver stalled past its deadline budget",
						"degraded_rung":    "degraded-greedy",
						"store_degraded":   true,
						"epoch_p99_sec":    0.0021,
						"energy": map[string]any{
							"fleet_joules": 120.5, "fleet_utility_sec": 900.0,
							"fleet_power_w": 37.5, "budget_w": 60.0,
							"budget_headroom_w": 22.5, "budget_overrun_sec": 0.0,
							"sessions": []map[string]any{{
								"instance": "ep.C/1", "joules": 120.5, "utility_sec": 900.0,
								"power_w": 37.5, "efficiency": 7.469,
							}},
						},
						"sessions": []map[string]any{{
							"Instance": "ep.C/1", "App": "ep.C", "Stage": "stable",
							"Liveness": 0, "LastReportAgeSec": 0.2,
							"Utility": 123.4, "Power": 37.5,
							"Vector": "P6", "Threads": 6, "Cores": 3,
						}, {
							"Instance": "cg.C/2", "App": "cg.C", "Stage": "stable",
							"Liveness": 2, "LastReportAgeSec": 4.8,
							"Utility": 0.0, "Power": 0.0,
							"Vector": "", "Threads": 0, "Cores": 0,
						}}})
				case "trace":
					_ = enc.Encode(map[string]any{
						"events": []map[string]any{{
							"at": 1500 * time.Millisecond, "kind": "decision-pushed",
							"instance": "ep.C/1", "vector": "P6", "seq": 3,
						}},
						"total": 42, "dropped": 2,
					})
				case "table":
					if req.Instance == "ghost" {
						_ = enc.Encode(map[string]string{"error": "unknown session"})
						return
					}
					_ = enc.Encode(map[string]any{"table": map[string]any{"app": req.Instance}})
				case "health":
					_ = enc.Encode(map[string]any{"health": map[string]any{
						"status": "degraded",
						"checks": []map[string]any{
							{"name": "measure-jitter", "status": "ok", "detail": "p99 0.4ms"},
							{"name": "tracer", "status": "degraded", "detail": "7 events evicted from the ring"},
						},
					}})
				default:
					_ = enc.Encode(map[string]string{"error": "unknown op"})
				}
			}()
		}
	}()
	return sock
}

func TestSessionsCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "sessions"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ep.C/1") {
		t.Errorf("output missing session: %s", buf.String())
	}
}

func TestTableCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "table", "ep.C/1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table") {
		t.Errorf("output missing table: %s", buf.String())
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "table", "ghost"}, &buf); err == nil {
		t.Error("server error not surfaced")
	}
}

func TestStatusCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "status"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rm generation 3, up 2m5s",
		"INSTANCE", "UTILITY", "LIVENESS", "AGE",
		"ep.C/1", "stable", "123.4", "37.5", "P6", "0.2s",
		"cg.C/2", "quarantined", "4.8s",
		"alloc cache 2/64, hit rate 85.0% (17 hits, 3 misses, 1 evictions), last solve cached",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

// TestStatusShowsTelemetryHealth pins the sticky journal error and the
// tracer eviction count onto the status output.
func TestStatusShowsTelemetryHealth(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "status"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"journal ERROR: disk full",
		"tracer dropped 7 events",
		"last epoch DEGRADED via degraded-greedy",
		"last epoch error: core: solver stalled past its deadline budget",
		"store DEGRADED: write retries exhausted, snapshots suspended",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestHealthCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "health"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"status: degraded",
		"measure-jitter  ok",
		"tracer          degraded  (7 events evicted from the ring)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("health output missing %q:\n%s", want, out)
		}
	}
}

// TestHealthUnhealthyFailsCommand: an unhealthy report makes the command
// itself fail, so scripts can gate on the exit code.
func TestHealthUnhealthyFailsCommand(t *testing.T) {
	var buf bytes.Buffer
	raw, _ := json.Marshal(map[string]any{"status": "unhealthy", "checks": []map[string]any{}})
	err := renderHealth(&buf, map[string]json.RawMessage{"health": raw})
	if err == nil {
		t.Fatal("unhealthy report did not fail the command")
	}
	if !strings.Contains(buf.String(), "status: unhealthy") {
		t.Errorf("report not printed before failing:\n%s", buf.String())
	}
}

// TestHealthExitCode maps the health grade onto the exit status with
// -exit-code: 0 ok, 1 degraded, 2 unhealthy. The fake daemon reports
// degraded, so the command fails with the code-1 sentinel.
func TestHealthExitCode(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	err := run([]string{"-control", sock, "health", "-exit-code"}, &buf)
	var ee exitError
	if !errors.As(err, &ee) || ee.code != 1 {
		t.Fatalf("health -exit-code on a degraded daemon: err = %v, want exit code 1", err)
	}
	if !strings.Contains(buf.String(), "status: degraded") {
		t.Errorf("report not printed before exiting:\n%s", buf.String())
	}

	// The grade-to-code map, exercised directly for all three grades.
	for _, tc := range []struct {
		status string
		code   int
	}{{"ok", 0}, {"degraded", 1}, {"unhealthy", 2}} {
		raw, _ := json.Marshal(map[string]any{"status": tc.status, "checks": []map[string]any{}})
		err := renderHealthMode(&bytes.Buffer{}, map[string]json.RawMessage{"health": raw}, true)
		if tc.code == 0 {
			if err != nil {
				t.Errorf("status %s: err = %v, want nil", tc.status, err)
			}
			continue
		}
		var ee exitError
		if !errors.As(err, &ee) || ee.code != tc.code {
			t.Errorf("status %s: err = %v, want exit code %d", tc.status, err, tc.code)
		}
	}
}

func TestTopCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "top", "-n", "1", "-interval", "10ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"harp top — up 2m5s, 2 sessions",
		"power 37.5W / budget 60.0W (headroom 22.5W, overrun 0.0s)  fleet 120.5J",
		"epoch p99 2.10ms, cache hit rate 85.0%, last solve cached, tracer dropped 7",
		"journal ERROR: disk full",
		"DEGRADED: last epoch via degraded-greedy",
		"store DEGRADED: snapshots suspended",
		"ENERGY[J]", "EFF[u/J]",
		"ep.C/1", "120.5", "7.469",
		"cg.C/2", "quarantined",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("single-frame top cleared the screen")
	}
}

// TestTopRefreshClearsScreen: a second frame starts with the ANSI
// clear+home sequence so the view refreshes in place.
func TestTopRefreshClearsScreen(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "top", "-n", "2", "-interval", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\x1b[2J\x1b[H") {
		t.Error("second top frame did not clear the screen")
	}
}

func TestTopFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"top", "-interval", "0s", "-n", "1"}, &buf); err == nil {
		t.Error("top accepted a non-positive interval")
	}
}

// TestStatusWithoutLivenessTracking renders "-" for the report age when the
// daemon does not track liveness (it sends a negative age).
func TestStatusWithoutLivenessTracking(t *testing.T) {
	if got := ageLabel(-1); got != "-" {
		t.Errorf("ageLabel(-1) = %q, want -", got)
	}
	if got := ageLabel(1.25); got != "1.2s" {
		t.Errorf("ageLabel(1.25) = %q, want 1.2s", got)
	}
	if got := livenessName(1); got != "suspect" {
		t.Errorf("livenessName(1) = %q, want suspect", got)
	}
	if got := livenessName(9); got != "state-9" {
		t.Errorf("livenessName(9) = %q, want state-9", got)
	}
}

func TestTraceTailCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "trace", "tail", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"decision-pushed", "ep.C/1", "vector=P6", "seq=3", "42 emitted", "2 evicted"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace tail output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceDumpCommand(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "trace", "dump"}, &buf); err != nil {
		t.Fatal(err)
	}
	var resp map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, buf.String())
	}
	if _, ok := resp["events"]; !ok {
		t.Errorf("dump missing events: %s", buf.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	tests := [][]string{
		nil,
		{"unknown-cmd"},
		{"table"},                 // missing instance
		{"trace"},                 // missing subcommand
		{"trace", "rewind"},       // unknown subcommand
		{"trace", "tail", "zero"}, // bad count
		{"trace", "tail", "-3"},   // bad count
	}
	for _, args := range tests {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestMissingDaemon(t *testing.T) {
	var buf bytes.Buffer
	sock := filepath.Join(t.TempDir(), "absent.sock")
	if err := run([]string{"-control", sock, "sessions"}, &buf); err == nil {
		t.Error("missing daemon not reported")
	}
}
