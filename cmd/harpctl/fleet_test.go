package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestStatusJSONStableFields pins the `status -json` contract: schema
// marker plus the documented field set, decoded from the document itself
// so renames fail loudly.
func TestStatusJSONStableFields(t *testing.T) {
	sock := fakeHarpd(t)
	var buf bytes.Buffer
	if err := run([]string{"-control", sock, "status", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("status -json is not JSON: %v\n%s", err, buf.String())
	}
	for _, field := range []string{
		"schema", "generation", "uptime_sec", "solve_source", "journal_error",
		"tracer_dropped", "degraded_rung", "last_epoch_error", "store_degraded",
		"alloc_cache", "fleet_power_w", "budget_w", "sessions",
	} {
		if _, ok := doc[field]; !ok {
			t.Errorf("status -json missing field %q:\n%s", field, buf.String())
		}
	}
	var parsed statusDoc
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Schema != statusSchema {
		t.Errorf("schema = %d, want %d", parsed.Schema, statusSchema)
	}
	if len(parsed.Sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(parsed.Sessions))
	}
	if s := parsed.Sessions[0]; s.Instance != "ep.C/1" || s.Liveness != "live" || s.PowerW != 37.5 {
		t.Errorf("first session row = %+v", s)
	}
	if parsed.Sessions[1].Liveness != "quarantined" {
		t.Errorf("liveness not symbolised: %+v", parsed.Sessions[1])
	}
	if parsed.BudgetW != 60.0 || parsed.FleetPowerW != 37.5 {
		t.Errorf("budget/power = %.1f/%.1f, want 60.0/37.5", parsed.BudgetW, parsed.FleetPowerW)
	}
}

// TestFleetCommandRendersEveryMachine: reachable machines get a live row,
// unreachable machines a down row with the dial error, and any down
// machine turns into exit code 1 for scripts.
func TestFleetCommandRendersEveryMachine(t *testing.T) {
	up := fakeHarpd(t)
	dead := filepath.Join(t.TempDir(), "dead.sock")

	var buf bytes.Buffer
	err := run([]string{"fleet", up, dead}, &buf)
	var ee exitError
	if !errors.As(err, &ee) || ee.code != 1 {
		t.Fatalf("fleet with a down machine: err = %v, want exit code 1", err)
	}
	out := buf.String()
	for _, want := range []string{
		"MACHINE", "SESSIONS", "POWER[W]", "BUDGET[W]",
		up, "up", "degraded", "37.5", "60.0", "2m5s",
		dead, "down",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}

	// All machines healthy: the command succeeds.
	buf.Reset()
	if err := run([]string{"fleet", up}, &buf); err != nil {
		t.Fatalf("fleet over a healthy machine: %v", err)
	}
}

func TestFleetJSON(t *testing.T) {
	up := fakeHarpd(t)
	dead := filepath.Join(t.TempDir(), "dead.sock")
	var buf bytes.Buffer
	err := run([]string{"fleet", "-json", up, dead}, &buf)
	var ee exitError
	if !errors.As(err, &ee) || ee.code != 1 {
		t.Fatalf("err = %v, want exit code 1", err)
	}
	var rows []fleetRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("fleet -json is not JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if !rows[0].Up || rows[0].Sessions != 2 || rows[0].Health != "degraded" {
		t.Errorf("up row = %+v", rows[0])
	}
	if rows[1].Up || rows[1].Error == "" {
		t.Errorf("down row = %+v", rows[1])
	}
}

func TestFleetUsage(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"fleet"}, &buf); err == nil {
		t.Error("fleet with no sockets accepted")
	}
}
