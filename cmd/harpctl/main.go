// Command harpctl inspects a running harpd: it lists registered sessions,
// shows their live utility/power and standing allocations, dumps learned
// operating-point tables, and tails the daemon's adaptation-loop trace — the
// way an administrator would inspect /etc/harp state (§4.3).
//
// Usage:
//
//	harpctl [-control /tmp/harpctl.sock] sessions
//	harpctl [-control /tmp/harpctl.sock] status [-json]
//	harpctl [-control /tmp/harpctl.sock] health [-exit-code]
//	harpctl [-control /tmp/harpctl.sock] top [-interval 2s] [-n 0]
//	harpctl [-control /tmp/harpctl.sock] table <instance>
//	harpctl [-control /tmp/harpctl.sock] trace tail [n]
//	harpctl [-control /tmp/harpctl.sock] trace dump
//	harpctl fleet [-json] <control-socket>...
//
// `health` prints the daemon's self-assessment (the same report harpd
// serves at /healthz) and exits non-zero when the daemon is unhealthy.
// With -exit-code the exit status encodes the grade for scripts and
// probes: 0 ok, 1 degraded, 2 unhealthy.
// `top` refreshes a per-session energy/efficiency view every -interval
// (-n bounds the number of frames; 0 runs until interrupted).
// `status -json` emits a versioned machine-readable document with a
// stable field set, for monitoring pipelines that must survive harpctl
// upgrades.
// `fleet` queries several machines' control sockets and renders one row
// per machine — the operator's cross-fleet view; unreachable machines get
// a down row instead of failing the whole command.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"
)

const usage = "usage: harpctl [-control PATH] sessions | status [-json] | health [-exit-code] | top [-interval D] [-n N] | table <instance> | trace tail [n] | trace dump | fleet [-json] <socket>..."

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var ee exitError
		if errors.As(err, &ee) {
			// health -exit-code: the report is already printed; the status
			// rides the exit code alone.
			os.Exit(ee.code)
		}
		fmt.Fprintln(os.Stderr, "harpctl:", err)
		os.Exit(1)
	}
}

// exitError requests a specific process exit status without an error
// message (the command already printed its report).
type exitError struct{ code int }

func (e exitError) Error() string { return fmt.Sprintf("exit status %d", e.code) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harpctl", flag.ContinueOnError)
	controlPath := fs.String("control", "/tmp/harpctl.sock", "harpd control socket")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New(usage)
	}

	req := map[string]any{"op": rest[0]}
	render := renderJSON
	switch rest[0] {
	case "sessions":
	case "status":
		sfs := flag.NewFlagSet("harpctl status", flag.ContinueOnError)
		asJSON := sfs.Bool("json", false, "emit a machine-readable status document with a stable field set")
		if err := sfs.Parse(rest[1:]); err != nil {
			return err
		}
		req["op"] = "sessions"
		render = renderStatus
		if *asJSON {
			render = renderStatusJSON
		}
	case "fleet":
		return runFleet(rest[1:], out)
	case "health":
		hfs := flag.NewFlagSet("harpctl health", flag.ContinueOnError)
		exitCode := hfs.Bool("exit-code", false, "map the health grade to the exit status: 0 ok, 1 degraded, 2 unhealthy")
		if err := hfs.Parse(rest[1:]); err != nil {
			return err
		}
		req["op"] = "health"
		render = func(out io.Writer, resp map[string]json.RawMessage) error {
			return renderHealthMode(out, resp, *exitCode)
		}
	case "top":
		return runTop(*controlPath, rest[1:], out)
	case "table":
		if len(rest) != 2 {
			return errors.New("usage: harpctl table <instance>")
		}
		req["instance"] = rest[1]
	case "trace":
		if len(rest) < 2 {
			return errors.New("usage: harpctl trace tail [n] | trace dump")
		}
		switch rest[1] {
		case "tail":
			n := 20
			if len(rest) == 3 {
				v, err := strconv.Atoi(rest[2])
				if err != nil || v <= 0 {
					return fmt.Errorf("trace tail: bad count %q", rest[2])
				}
				n = v
			}
			req["n"] = n
			render = renderTrace
		case "dump":
			req["n"] = 0
		default:
			return fmt.Errorf("unknown trace subcommand %q", rest[1])
		}
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}

	resp, err := query(*controlPath, req)
	if err != nil {
		return err
	}
	return render(out, resp)
}

// query performs one request/response exchange with the harpd control
// socket.
func query(controlPath string, req map[string]any) (map[string]json.RawMessage, error) {
	conn, err := net.Dial("unix", controlPath)
	if err != nil {
		return nil, fmt.Errorf("connect to harpd: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp map[string]json.RawMessage
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if errMsg, ok := resp["error"]; ok {
		return nil, fmt.Errorf("harpd: %s", errMsg)
	}
	return resp, nil
}

func renderJSON(out io.Writer, resp map[string]json.RawMessage) error {
	pretty, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(pretty))
	return nil
}

// renderStatus prints the RM header (generation, uptime) and the per-session
// utility/power/allocation table behind `harpctl status`.
func renderStatus(out io.Writer, resp map[string]json.RawMessage) error {
	var sessions []struct {
		Instance         string
		App              string
		Stage            string
		Phase            string
		Liveness         int
		LastReportAgeSec float64
		Utility          float64
		Power            float64
		Vector           string
		Threads          int
		Cores            int
		Exploring        bool
	}
	if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
		return err
	}
	var generation uint64
	var uptimeSec float64
	_ = json.Unmarshal(resp["generation"], &generation)
	_ = json.Unmarshal(resp["uptime_sec"], &uptimeSec)
	gen := "-" // zero means the daemon runs without a state dir
	if generation > 0 {
		gen = strconv.FormatUint(generation, 10)
	}
	fmt.Fprintf(out, "rm generation %s, up %s\n",
		gen, (time.Duration(uptimeSec * float64(time.Second))).Round(time.Second))
	var cache struct {
		Size      int     `json:"size"`
		Cap       int     `json:"cap"`
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	}
	var solveSource string
	_ = json.Unmarshal(resp["alloc_cache"], &cache)
	_ = json.Unmarshal(resp["solve_source"], &solveSource)
	if solveSource == "" {
		solveSource = "-" // no solve yet (or a pre-cache daemon)
	}
	if cache.Cap > 0 {
		fmt.Fprintf(out, "alloc cache %d/%d, hit rate %.1f%% (%d hits, %d misses, %d evictions), last solve %s\n",
			cache.Size, cache.Cap, 100*cache.HitRate, cache.Hits, cache.Misses, cache.Evictions, solveSource)
	} else {
		fmt.Fprintf(out, "alloc cache off, last solve %s\n", solveSource)
	}
	// Telemetry health: the first sticky journal error and the tracer's
	// eviction count — both zero on a healthy daemon.
	var journalErr string
	var dropped uint64
	_ = json.Unmarshal(resp["journal_error"], &journalErr)
	_ = json.Unmarshal(resp["tracer_dropped"], &dropped)
	if journalErr != "" {
		fmt.Fprintf(out, "journal ERROR: %s\n", journalErr)
	}
	if dropped > 0 {
		fmt.Fprintf(out, "tracer dropped %d events\n", dropped)
	}
	// Overload surface: the degradation-ladder rung that resolved the last
	// epoch, the sticky last epoch error, and durability-degraded storage.
	var degradedRung, lastEpochErr string
	var storeDegraded bool
	_ = json.Unmarshal(resp["degraded_rung"], &degradedRung)
	_ = json.Unmarshal(resp["last_epoch_error"], &lastEpochErr)
	_ = json.Unmarshal(resp["store_degraded"], &storeDegraded)
	if degradedRung != "" {
		fmt.Fprintf(out, "last epoch DEGRADED via %s\n", degradedRung)
	}
	if lastEpochErr != "" {
		fmt.Fprintf(out, "last epoch error: %s\n", lastEpochErr)
	}
	if storeDegraded {
		fmt.Fprintln(out, "store DEGRADED: write retries exhausted, snapshots suspended")
	}
	if len(sessions) == 0 {
		fmt.Fprintln(out, "no sessions")
		return nil
	}
	fmt.Fprintf(out, "%-22s %-14s %-11s %-11s %6s %10s %9s  %-12s %7s %5s\n",
		"INSTANCE", "APP", "STAGE", "LIVENESS", "AGE", "UTILITY", "POWER[W]", "VECTOR", "THREADS", "CORES")
	for _, s := range sessions {
		stage := s.Stage
		if s.Exploring {
			stage += "*"
		}
		vector := s.Vector
		if vector == "" {
			vector = "-"
		}
		fmt.Fprintf(out, "%-22s %-14s %-11s %-11s %6s %10.1f %9.1f  %-12s %7d %5d\n",
			s.Instance, s.App, stage, livenessName(s.Liveness), ageLabel(s.LastReportAgeSec),
			s.Utility, s.Power, vector, s.Threads, s.Cores)
	}
	return nil
}

// livenessName renders the numeric core.Liveness enum carried over the
// control socket.
func livenessName(l int) string {
	switch l {
	case 0:
		return "live"
	case 1:
		return "suspect"
	case 2:
		return "quarantined"
	default:
		return fmt.Sprintf("state-%d", l)
	}
}

// ageLabel formats the seconds since the session's last report; the daemon
// sends a negative age when it does not track liveness.
func ageLabel(sec float64) string {
	if sec < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fs", sec)
}

// renderTrace prints one line per event for `harpctl trace tail`.
func renderTrace(out io.Writer, resp map[string]json.RawMessage) error {
	var events []struct {
		At       time.Duration `json:"at"`
		Kind     string        `json:"kind"`
		Instance string        `json:"instance"`
		Vector   string        `json:"vector"`
		Stage    string        `json:"stage"`
		Seq      int           `json:"seq"`
		Utility  float64       `json:"utility"`
		Power    float64       `json:"power"`
	}
	if err := json.Unmarshal(resp["events"], &events); err != nil {
		return err
	}
	for _, ev := range events {
		line := fmt.Sprintf("%12s  %-20s %-22s", ev.At, ev.Kind, ev.Instance)
		if ev.Vector != "" {
			line += " vector=" + ev.Vector
		}
		if ev.Stage != "" {
			line += " stage=" + ev.Stage
		}
		if ev.Seq != 0 {
			line += fmt.Sprintf(" seq=%d", ev.Seq)
		}
		if ev.Utility != 0 || ev.Power != 0 {
			line += fmt.Sprintf(" utility=%.1f power=%.1fW", ev.Utility, ev.Power)
		}
		fmt.Fprintln(out, line)
	}
	var total, dropped uint64
	_ = json.Unmarshal(resp["total"], &total)
	_ = json.Unmarshal(resp["dropped"], &dropped)
	fmt.Fprintf(out, "%d events shown (%d emitted, %d evicted from the ring)\n",
		len(events), total, dropped)
	return nil
}

// healthReport mirrors harp.HealthReport over the control socket.
type healthReport struct {
	Status string `json:"status"`
	Checks []struct {
		Name   string `json:"name"`
		Status string `json:"status"`
		Detail string `json:"detail"`
	} `json:"checks"`
}

// renderHealth prints the daemon's self-assessment one check per line and
// fails the command (exit 1) when the overall status is unhealthy, so
// scripts can gate on it.
func renderHealth(out io.Writer, resp map[string]json.RawMessage) error {
	return renderHealthMode(out, resp, false)
}

// renderHealthMode is renderHealth with the -exit-code behaviour: the
// grade maps onto the exit status (0 ok, 1 degraded, 2 unhealthy) instead
// of only failing on unhealthy.
func renderHealthMode(out io.Writer, resp map[string]json.RawMessage, exitCode bool) error {
	var rep healthReport
	if err := json.Unmarshal(resp["health"], &rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "status: %s\n", rep.Status)
	for _, c := range rep.Checks {
		line := fmt.Sprintf("  %-15s %s", c.Name, c.Status)
		if c.Detail != "" {
			line += "  (" + c.Detail + ")"
		}
		fmt.Fprintln(out, line)
	}
	if exitCode {
		switch rep.Status {
		case "degraded":
			return exitError{code: 1}
		case "unhealthy":
			return exitError{code: 2}
		}
		return nil
	}
	if rep.Status == "unhealthy" {
		return errors.New("daemon is unhealthy")
	}
	return nil
}

// runTop implements `harpctl top`: a refreshing per-session
// energy/efficiency view over the control socket. -n bounds the number of
// frames (0 = until interrupted); frames after the first clear the screen.
func runTop(controlPath string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harpctl top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	frames := fs.Int("n", 0, "number of frames to render (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("top: bad interval %s", *interval)
	}
	for i := 0; ; i++ {
		resp, err := query(controlPath, map[string]any{"op": "sessions"})
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if err := renderTop(out, resp); err != nil {
			return err
		}
		if *frames > 0 && i+1 >= *frames {
			return nil
		}
		time.Sleep(*interval)
	}
}

// renderTop prints one top frame: a fleet header (uptime, budget headroom,
// epoch latency, cache hit rate, telemetry health) and a per-session table
// joining the session summaries with their energy rows.
func renderTop(out io.Writer, resp map[string]json.RawMessage) error {
	var sessions []struct {
		Instance string
		App      string
		Liveness int
		Utility  float64
		Power    float64
		Cores    int
	}
	if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
		return err
	}
	var energy struct {
		FleetJoules      float64 `json:"fleet_joules"`
		FleetUtilitySec  float64 `json:"fleet_utility_sec"`
		FleetPowerW      float64 `json:"fleet_power_w"`
		BudgetW          float64 `json:"budget_w"`
		BudgetHeadroomW  float64 `json:"budget_headroom_w"`
		BudgetOverrunSec float64 `json:"budget_overrun_sec"`
		Sessions         []struct {
			Instance   string  `json:"instance"`
			Joules     float64 `json:"joules"`
			UtilitySec float64 `json:"utility_sec"`
			PowerW     float64 `json:"power_w"`
			Efficiency float64 `json:"efficiency"`
		} `json:"sessions"`
	}
	_ = json.Unmarshal(resp["energy"], &energy)
	var uptimeSec, epochP99 float64
	var solveSource, journalErr string
	var dropped uint64
	_ = json.Unmarshal(resp["uptime_sec"], &uptimeSec)
	_ = json.Unmarshal(resp["epoch_p99_sec"], &epochP99)
	_ = json.Unmarshal(resp["solve_source"], &solveSource)
	_ = json.Unmarshal(resp["journal_error"], &journalErr)
	_ = json.Unmarshal(resp["tracer_dropped"], &dropped)
	var cache struct {
		HitRate float64 `json:"hit_rate"`
	}
	_ = json.Unmarshal(resp["alloc_cache"], &cache)

	fmt.Fprintf(out, "harp top — up %s, %d sessions\n",
		(time.Duration(uptimeSec * float64(time.Second))).Round(time.Second), len(sessions))
	fmt.Fprintf(out, "power %.1fW / budget %.1fW (headroom %.1fW, overrun %.1fs)  fleet %.1fJ\n",
		energy.FleetPowerW, energy.BudgetW, energy.BudgetHeadroomW, energy.BudgetOverrunSec, energy.FleetJoules)
	fmt.Fprintf(out, "epoch p99 %.2fms, cache hit rate %.1f%%, last solve %s, tracer dropped %d\n",
		epochP99*1e3, 100*cache.HitRate, orDash(solveSource), dropped)
	if journalErr != "" {
		fmt.Fprintf(out, "journal ERROR: %s\n", journalErr)
	}
	var degradedRung string
	var storeDegraded bool
	_ = json.Unmarshal(resp["degraded_rung"], &degradedRung)
	_ = json.Unmarshal(resp["store_degraded"], &storeDegraded)
	if degradedRung != "" {
		fmt.Fprintf(out, "DEGRADED: last epoch via %s\n", degradedRung)
	}
	if storeDegraded {
		fmt.Fprintln(out, "store DEGRADED: snapshots suspended")
	}
	if len(sessions) == 0 {
		fmt.Fprintln(out, "no sessions")
		return nil
	}
	byInstance := map[string]int{}
	for i, se := range energy.Sessions {
		byInstance[se.Instance] = i
	}
	fmt.Fprintf(out, "%-22s %-14s %10s %9s %10s %10s %5s %-11s\n",
		"INSTANCE", "APP", "UTILITY", "POWER[W]", "ENERGY[J]", "EFF[u/J]", "CORES", "LIVENESS")
	for _, s := range sessions {
		joules, eff := 0.0, 0.0
		if i, ok := byInstance[s.Instance]; ok {
			joules, eff = energy.Sessions[i].Joules, energy.Sessions[i].Efficiency
		}
		fmt.Fprintf(out, "%-22s %-14s %10.1f %9.1f %10.1f %10.3f %5d %-11s\n",
			s.Instance, s.App, s.Utility, s.Power, joules, eff, s.Cores, livenessName(s.Liveness))
	}
	return nil
}

// orDash substitutes "-" for an empty string in rendered fields.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
