// Command harpctl inspects a running harpd: it lists registered sessions,
// shows their live utility/power and standing allocations, dumps learned
// operating-point tables, and tails the daemon's adaptation-loop trace — the
// way an administrator would inspect /etc/harp state (§4.3).
//
// Usage:
//
//	harpctl [-control /tmp/harpctl.sock] sessions
//	harpctl [-control /tmp/harpctl.sock] status
//	harpctl [-control /tmp/harpctl.sock] table <instance>
//	harpctl [-control /tmp/harpctl.sock] trace tail [n]
//	harpctl [-control /tmp/harpctl.sock] trace dump
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"time"
)

const usage = "usage: harpctl [-control PATH] sessions | status | table <instance> | trace tail [n] | trace dump"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harpctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harpctl", flag.ContinueOnError)
	controlPath := fs.String("control", "/tmp/harpctl.sock", "harpd control socket")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New(usage)
	}

	req := map[string]any{"op": rest[0]}
	render := renderJSON
	switch rest[0] {
	case "sessions":
	case "status":
		req["op"] = "sessions"
		render = renderStatus
	case "table":
		if len(rest) != 2 {
			return errors.New("usage: harpctl table <instance>")
		}
		req["instance"] = rest[1]
	case "trace":
		if len(rest) < 2 {
			return errors.New("usage: harpctl trace tail [n] | trace dump")
		}
		switch rest[1] {
		case "tail":
			n := 20
			if len(rest) == 3 {
				v, err := strconv.Atoi(rest[2])
				if err != nil || v <= 0 {
					return fmt.Errorf("trace tail: bad count %q", rest[2])
				}
				n = v
			}
			req["n"] = n
			render = renderTrace
		case "dump":
			req["n"] = 0
		default:
			return fmt.Errorf("unknown trace subcommand %q", rest[1])
		}
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}

	conn, err := net.Dial("unix", *controlPath)
	if err != nil {
		return fmt.Errorf("connect to harpd: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return err
	}
	var resp map[string]json.RawMessage
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return err
	}
	if errMsg, ok := resp["error"]; ok {
		return fmt.Errorf("harpd: %s", errMsg)
	}
	return render(out, resp)
}

func renderJSON(out io.Writer, resp map[string]json.RawMessage) error {
	pretty, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(pretty))
	return nil
}

// renderStatus prints the RM header (generation, uptime) and the per-session
// utility/power/allocation table behind `harpctl status`.
func renderStatus(out io.Writer, resp map[string]json.RawMessage) error {
	var sessions []struct {
		Instance         string
		App              string
		Stage            string
		Phase            string
		Liveness         int
		LastReportAgeSec float64
		Utility          float64
		Power            float64
		Vector           string
		Threads          int
		Cores            int
		Exploring        bool
	}
	if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
		return err
	}
	var generation uint64
	var uptimeSec float64
	_ = json.Unmarshal(resp["generation"], &generation)
	_ = json.Unmarshal(resp["uptime_sec"], &uptimeSec)
	gen := "-" // zero means the daemon runs without a state dir
	if generation > 0 {
		gen = strconv.FormatUint(generation, 10)
	}
	fmt.Fprintf(out, "rm generation %s, up %s\n",
		gen, (time.Duration(uptimeSec*float64(time.Second))).Round(time.Second))
	var cache struct {
		Size      int     `json:"size"`
		Cap       int     `json:"cap"`
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	}
	var solveSource string
	_ = json.Unmarshal(resp["alloc_cache"], &cache)
	_ = json.Unmarshal(resp["solve_source"], &solveSource)
	if solveSource == "" {
		solveSource = "-" // no solve yet (or a pre-cache daemon)
	}
	if cache.Cap > 0 {
		fmt.Fprintf(out, "alloc cache %d/%d, hit rate %.1f%% (%d hits, %d misses, %d evictions), last solve %s\n",
			cache.Size, cache.Cap, 100*cache.HitRate, cache.Hits, cache.Misses, cache.Evictions, solveSource)
	} else {
		fmt.Fprintf(out, "alloc cache off, last solve %s\n", solveSource)
	}
	if len(sessions) == 0 {
		fmt.Fprintln(out, "no sessions")
		return nil
	}
	fmt.Fprintf(out, "%-22s %-14s %-11s %-11s %6s %10s %9s  %-12s %7s %5s\n",
		"INSTANCE", "APP", "STAGE", "LIVENESS", "AGE", "UTILITY", "POWER[W]", "VECTOR", "THREADS", "CORES")
	for _, s := range sessions {
		stage := s.Stage
		if s.Exploring {
			stage += "*"
		}
		vector := s.Vector
		if vector == "" {
			vector = "-"
		}
		fmt.Fprintf(out, "%-22s %-14s %-11s %-11s %6s %10.1f %9.1f  %-12s %7d %5d\n",
			s.Instance, s.App, stage, livenessName(s.Liveness), ageLabel(s.LastReportAgeSec),
			s.Utility, s.Power, vector, s.Threads, s.Cores)
	}
	return nil
}

// livenessName renders the numeric core.Liveness enum carried over the
// control socket.
func livenessName(l int) string {
	switch l {
	case 0:
		return "live"
	case 1:
		return "suspect"
	case 2:
		return "quarantined"
	default:
		return fmt.Sprintf("state-%d", l)
	}
}

// ageLabel formats the seconds since the session's last report; the daemon
// sends a negative age when it does not track liveness.
func ageLabel(sec float64) string {
	if sec < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fs", sec)
}

// renderTrace prints one line per event for `harpctl trace tail`.
func renderTrace(out io.Writer, resp map[string]json.RawMessage) error {
	var events []struct {
		At       time.Duration `json:"at"`
		Kind     string        `json:"kind"`
		Instance string        `json:"instance"`
		Vector   string        `json:"vector"`
		Stage    string        `json:"stage"`
		Seq      int           `json:"seq"`
		Utility  float64       `json:"utility"`
		Power    float64       `json:"power"`
	}
	if err := json.Unmarshal(resp["events"], &events); err != nil {
		return err
	}
	for _, ev := range events {
		line := fmt.Sprintf("%12s  %-20s %-22s", ev.At, ev.Kind, ev.Instance)
		if ev.Vector != "" {
			line += " vector=" + ev.Vector
		}
		if ev.Stage != "" {
			line += " stage=" + ev.Stage
		}
		if ev.Seq != 0 {
			line += fmt.Sprintf(" seq=%d", ev.Seq)
		}
		if ev.Utility != 0 || ev.Power != 0 {
			line += fmt.Sprintf(" utility=%.1f power=%.1fW", ev.Utility, ev.Power)
		}
		fmt.Fprintln(out, line)
	}
	var total, dropped uint64
	_ = json.Unmarshal(resp["total"], &total)
	_ = json.Unmarshal(resp["dropped"], &dropped)
	fmt.Fprintf(out, "%d events shown (%d emitted, %d evicted from the ring)\n",
		len(events), total, dropped)
	return nil
}
