// Command harpctl inspects a running harpd: it lists registered sessions and
// dumps learned operating-point tables, the way an administrator would
// inspect /etc/harp state (§4.3).
//
// Usage:
//
//	harpctl [-control /tmp/harpctl.sock] sessions
//	harpctl [-control /tmp/harpctl.sock] table <instance>
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harpctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harpctl", flag.ContinueOnError)
	controlPath := fs.String("control", "/tmp/harpctl.sock", "harpd control socket")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("usage: harpctl [-control PATH] sessions | table <instance>")
	}

	req := map[string]string{"op": rest[0]}
	switch rest[0] {
	case "sessions":
	case "table":
		if len(rest) != 2 {
			return errors.New("usage: harpctl table <instance>")
		}
		req["instance"] = rest[1]
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}

	conn, err := net.Dial("unix", *controlPath)
	if err != nil {
		return fmt.Errorf("connect to harpd: %w", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return err
	}
	var resp map[string]json.RawMessage
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return err
	}
	if errMsg, ok := resp["error"]; ok {
		return fmt.Errorf("harpd: %s", errMsg)
	}
	pretty, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(pretty))
	return nil
}
