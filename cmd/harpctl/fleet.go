package main

// `harpctl status -json` and `harpctl fleet`: machine-readable status with
// a stable field set, and the cross-machine operator view. Both decode the
// daemon's raw control response into typed documents so the emitted JSON
// is a contract of this file, not whatever the daemon happens to send.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"time"
)

// statusSchema versions the `status -json` document; bump on any
// incompatible field change.
const statusSchema = 1

// statusSession is one session row of the status document.
type statusSession struct {
	Instance  string  `json:"instance"`
	App       string  `json:"app"`
	Stage     string  `json:"stage"`
	Phase     string  `json:"phase,omitempty"`
	Liveness  string  `json:"liveness"`
	AgeSec    float64 `json:"age_sec"`
	Utility   float64 `json:"utility"`
	PowerW    float64 `json:"power_w"`
	Vector    string  `json:"vector,omitempty"`
	Threads   int     `json:"threads"`
	Cores     int     `json:"cores"`
	Exploring bool    `json:"exploring,omitempty"`
}

// statusCache is the allocation-cache block of the status document.
type statusCache struct {
	Size      int     `json:"size"`
	Cap       int     `json:"cap"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// statusDoc is the `status -json` contract.
type statusDoc struct {
	Schema         int             `json:"schema"`
	Generation     uint64          `json:"generation"`
	UptimeSec      float64         `json:"uptime_sec"`
	SolveSource    string          `json:"solve_source,omitempty"`
	JournalError   string          `json:"journal_error,omitempty"`
	TracerDropped  uint64          `json:"tracer_dropped,omitempty"`
	DegradedRung   string          `json:"degraded_rung,omitempty"`
	LastEpochError string          `json:"last_epoch_error,omitempty"`
	StoreDegraded  bool            `json:"store_degraded,omitempty"`
	AllocCache     *statusCache    `json:"alloc_cache,omitempty"`
	FleetPowerW    float64         `json:"fleet_power_w"`
	BudgetW        float64         `json:"budget_w"`
	Sessions       []statusSession `json:"sessions"`
}

// statusFromResponse maps the daemon's raw control response onto the
// stable document.
func statusFromResponse(resp map[string]json.RawMessage) (*statusDoc, error) {
	var sessions []struct {
		Instance         string
		App              string
		Stage            string
		Phase            string
		Liveness         int
		LastReportAgeSec float64
		Utility          float64
		Power            float64
		Vector           string
		Threads          int
		Cores            int
		Exploring        bool
	}
	if err := json.Unmarshal(resp["sessions"], &sessions); err != nil {
		return nil, err
	}
	doc := &statusDoc{Schema: statusSchema, Sessions: []statusSession{}}
	_ = json.Unmarshal(resp["generation"], &doc.Generation)
	_ = json.Unmarshal(resp["uptime_sec"], &doc.UptimeSec)
	_ = json.Unmarshal(resp["solve_source"], &doc.SolveSource)
	_ = json.Unmarshal(resp["journal_error"], &doc.JournalError)
	_ = json.Unmarshal(resp["tracer_dropped"], &doc.TracerDropped)
	_ = json.Unmarshal(resp["degraded_rung"], &doc.DegradedRung)
	_ = json.Unmarshal(resp["last_epoch_error"], &doc.LastEpochError)
	_ = json.Unmarshal(resp["store_degraded"], &doc.StoreDegraded)
	var cache statusCache
	if err := json.Unmarshal(resp["alloc_cache"], &cache); err == nil && cache.Cap > 0 {
		doc.AllocCache = &cache
	}
	var energy struct {
		FleetPowerW float64 `json:"fleet_power_w"`
		BudgetW     float64 `json:"budget_w"`
	}
	_ = json.Unmarshal(resp["energy"], &energy)
	doc.FleetPowerW = energy.FleetPowerW
	doc.BudgetW = energy.BudgetW
	for _, s := range sessions {
		doc.Sessions = append(doc.Sessions, statusSession{
			Instance:  s.Instance,
			App:       s.App,
			Stage:     s.Stage,
			Phase:     s.Phase,
			Liveness:  livenessName(s.Liveness),
			AgeSec:    s.LastReportAgeSec,
			Utility:   s.Utility,
			PowerW:    s.Power,
			Vector:    s.Vector,
			Threads:   s.Threads,
			Cores:     s.Cores,
			Exploring: s.Exploring,
		})
	}
	return doc, nil
}

// renderStatusJSON prints the stable status document for `status -json`.
func renderStatusJSON(out io.Writer, resp map[string]json.RawMessage) error {
	doc, err := statusFromResponse(resp)
	if err != nil {
		return err
	}
	pretty, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, string(pretty))
	return nil
}

// fleetRow is one machine in the `fleet` view. Unreachable machines carry
// the dial error instead of failing the whole command — during an incident
// the surviving machines are exactly what the operator needs to see.
type fleetRow struct {
	Machine     string  `json:"machine"`
	Up          bool    `json:"up"`
	Error       string  `json:"error,omitempty"`
	Health      string  `json:"health,omitempty"`
	Sessions    int     `json:"sessions"`
	FleetPowerW float64 `json:"fleet_power_w"`
	BudgetW     float64 `json:"budget_w"`
	UptimeSec   float64 `json:"uptime_sec"`
	Degraded    string  `json:"degraded_rung,omitempty"`
}

// fleetQuery collects one machine's row; overridable in tests.
var fleetQuery = func(sock string) fleetRow {
	row := fleetRow{Machine: sock}
	resp, err := query(sock, map[string]any{"op": "sessions"})
	if err != nil {
		row.Error = err.Error()
		return row
	}
	doc, err := statusFromResponse(resp)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	row.Up = true
	row.Sessions = len(doc.Sessions)
	row.FleetPowerW = doc.FleetPowerW
	row.BudgetW = doc.BudgetW
	row.UptimeSec = doc.UptimeSec
	row.Degraded = doc.DegradedRung
	if hr, err := query(sock, map[string]any{"op": "health"}); err == nil {
		var rep healthReport
		if json.Unmarshal(hr["health"], &rep) == nil {
			row.Health = rep.Status
		}
	}
	return row
}

// runFleet implements `harpctl fleet [-json] <socket>...`.
func runFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harpctl fleet", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit one JSON object per machine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	socks := fs.Args()
	if len(socks) == 0 {
		return errors.New("usage: harpctl fleet [-json] <control-socket>...")
	}
	rows := make([]fleetRow, 0, len(socks))
	down := 0
	for _, sock := range socks {
		row := fleetQuery(sock)
		if !row.Up {
			down++
		}
		rows = append(rows, row)
	}
	if *asJSON {
		pretty, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(pretty))
	} else {
		fmt.Fprintf(out, "%-32s %-6s %-10s %8s %9s %10s %8s  %s\n",
			"MACHINE", "STATE", "HEALTH", "SESSIONS", "POWER[W]", "BUDGET[W]", "UP", "NOTES")
		for _, r := range rows {
			if !r.Up {
				fmt.Fprintf(out, "%-32s %-6s %-10s %8s %9s %10s %8s  %s\n",
					r.Machine, "down", "-", "-", "-", "-", "-", r.Error)
				continue
			}
			notes := ""
			if r.Degraded != "" {
				notes = "degraded via " + r.Degraded
			}
			fmt.Fprintf(out, "%-32s %-6s %-10s %8d %9.1f %10.1f %8s  %s\n",
				r.Machine, "up", orDash(r.Health), r.Sessions, r.FleetPowerW, r.BudgetW,
				(time.Duration(r.UptimeSec * float64(time.Second))).Round(time.Second), notes)
		}
	}
	if down > 0 {
		return exitError{code: 1}
	}
	return nil
}
