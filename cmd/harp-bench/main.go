// Command harp-bench measures the allocator's solve regimes — cold
// Lagrangian, greedy ablation, fingerprint-cache hit and warm-started — on
// the production-scale 5-application Raptor Lake workload and writes the
// results as JSON (see PERFORMANCE.md for the methodology).
//
// With -enforce it exits non-zero when a performance contract regresses:
// the cache-hit path must stay at 0 allocs/op and at least 10× faster than a
// cold solve, and warm starts must not cost λ iterations. CI runs this on
// every push via `make bench`.
//
// Usage:
//
//	harp-bench -out BENCH_alloc.json
//	harp-bench -enforce            # CI contract check, writes nothing extra
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// Regime is one measured solve regime.
type Regime struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// LambdaIters is the subgradient iteration count of one representative
	// solve in this regime (0 for greedy and cache hits).
	LambdaIters int `json:"lambda_iters,omitempty"`
}

// Report is the BENCH_alloc.json schema.
type Report struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// Workload identifies the measured instance: full operating-point
	// tables for five NAS applications on the Intel platform.
	Platform    string `json:"platform"`
	Apps        int    `json:"apps"`
	TablePoints int    `json:"table_points"`

	Regimes map[string]Regime `json:"regimes"`

	// SpeedupColdOverHit is cold ns/op divided by cache-hit ns/op.
	SpeedupColdOverHit float64 `json:"speedup_cold_over_hit"`
	// SteadyStateHitRate is the cache hit rate over a simulated 200-epoch
	// run whose inputs change every 10th epoch — the RM's steady state.
	SteadyStateHitRate float64 `json:"steady_state_hit_rate"`
	// WarmColdIters / WarmIters sum λ iterations over the same 50 perturbed
	// epochs solved cold and warm-started; SavedPct is the reduction.
	WarmColdIters int     `json:"warm_cold_iters"`
	WarmIters     int     `json:"warm_iters"`
	WarmSavedPct  float64 `json:"warm_saved_pct"`

	// Churn is the open-loop 10k-session churn benchmark (harpsim.RunChurn):
	// coalesced epochs + incremental + sharded solving against the 50 ms
	// adaptation-tick budget, plus a smaller solve-per-event baseline for the
	// epochs-vs-events comparison.
	Churn *ChurnReport `json:"churn,omitempty"`

	// Cluster is the fleet benchmark (harpsim.RunCluster): a faulted
	// coordinated fleet against static partitioning of the same budget,
	// with the budget, re-home and energy contracts enforced by -enforce.
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// ChurnReport is the churn section of BENCH_alloc.json.
type ChurnReport struct {
	Sessions     int            `json:"sessions"`
	Ticks        int            `json:"ticks"`
	Events       int            `json:"events"`
	Epochs       int            `json:"epochs"`
	P50Ms        float64        `json:"p50_ms"`
	P99Ms        float64        `json:"p99_ms"`
	MaxMs        float64        `json:"max_ms"`
	TickBudgetMs float64        `json:"tick_budget_ms"`
	SolveSources map[string]int `json:"solve_sources"`
	Verified     int            `json:"verified"`

	// Baseline is the historical solve-per-event behaviour at a smaller
	// population (running it at 10k would take minutes by construction).
	BaselineSessions int     `json:"baseline_sessions"`
	BaselineEvents   int     `json:"baseline_events"`
	BaselineEpochs   int     `json:"baseline_epochs"`
	BaselineP99Ms    float64 `json:"baseline_p99_ms"`
}

// ClusterReport is the fleet section of BENCH_alloc.json. The dynamic run
// carries a machine kill and a coordinator kill; the static run is the
// same churn stream under per-machine partitioning.
type ClusterReport struct {
	Machines     int     `json:"machines"`
	Sessions     int     `json:"sessions"`
	Ticks        int     `json:"ticks"`
	FleetBudgetW float64 `json:"fleet_budget_w"`

	EnergyDynamicJ float64 `json:"energy_dynamic_j"`
	EnergyStaticJ  float64 `json:"energy_static_j"`
	EnergySavedPct float64 `json:"energy_saved_pct"`

	MaxFleetPowerW  float64 `json:"max_fleet_power_w"`
	Migrations      int     `json:"migrations"`
	MachineDeaths   int     `json:"machine_deaths"`
	Failovers       int     `json:"failovers"`
	MaxUnownedTicks int     `json:"max_unowned_ticks"`
	FinalUnowned    int     `json:"final_unowned"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harp-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harp-bench", flag.ContinueOnError)
	var (
		outPath = fs.String("out", "", "write the JSON report to this file (default: stdout)")
		enforce = fs.Bool("enforce", false, "exit non-zero when a performance contract regresses")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, inputs := benchWorkload()
	rep := &Report{
		GeneratedBy: "harp-bench",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Platform:    plat.Name,
		Apps:        len(inputs),
		TablePoints: len(inputs[0].Table.Points),
		Regimes:     make(map[string]Regime),
	}

	cold, err := measureCold(plat, inputs, alloc.Lagrangian)
	if err != nil {
		return err
	}
	rep.Regimes["cold_lagrangian"] = cold
	greedy, err := measureCold(plat, inputs, alloc.Greedy)
	if err != nil {
		return err
	}
	rep.Regimes["greedy"] = greedy
	hit, err := measureCacheHit(plat, inputs)
	if err != nil {
		return err
	}
	rep.Regimes["cache_hit"] = hit
	warm, err := measureWarmStart(plat, inputs)
	if err != nil {
		return err
	}
	rep.Regimes["warm_start"] = warm

	if hit.NsPerOp > 0 {
		rep.SpeedupColdOverHit = cold.NsPerOp / hit.NsPerOp
	}
	if rep.SteadyStateHitRate, err = steadyStateHitRate(plat, inputs); err != nil {
		return err
	}
	if rep.WarmColdIters, rep.WarmIters, err = warmIterSums(plat, inputs); err != nil {
		return err
	}
	if rep.WarmColdIters > 0 {
		rep.WarmSavedPct = 100 * (1 - float64(rep.WarmIters)/float64(rep.WarmColdIters))
	}
	if rep.Churn, err = measureChurn(); err != nil {
		return err
	}
	if rep.Cluster, err = measureCluster(); err != nil {
		return err
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "harp-bench: wrote %s\n", *outPath)
	} else {
		out.Write(raw)
	}

	if *enforce {
		return checkContracts(rep)
	}
	return nil
}

// checkContracts enforces the performance acceptance criteria (the CI gate).
func checkContracts(rep *Report) error {
	var errs []string
	if a := rep.Regimes["cache_hit"].AllocsPerOp; a != 0 {
		errs = append(errs, fmt.Sprintf("cache-hit solve allocates %d times per op, contract is 0", a))
	}
	if rep.SpeedupColdOverHit < 10 {
		errs = append(errs, fmt.Sprintf("cache-hit speedup %.1fx, contract is >= 10x", rep.SpeedupColdOverHit))
	}
	if rep.WarmIters > rep.WarmColdIters {
		errs = append(errs, fmt.Sprintf("warm starts cost iterations: %d warm vs %d cold", rep.WarmIters, rep.WarmColdIters))
	}
	if c := rep.Churn; c != nil {
		if c.P99Ms >= c.TickBudgetMs {
			errs = append(errs, fmt.Sprintf("churn p99 epoch latency %.1f ms breaches the %.0f ms tick budget at %d sessions",
				c.P99Ms, c.TickBudgetMs, c.Sessions))
		}
		if c.Epochs*4 > c.Events {
			errs = append(errs, fmt.Sprintf("coalescing ineffective: %d epochs for %d events", c.Epochs, c.Events))
		}
		if c.Verified == 0 {
			errs = append(errs, "no churn epochs were oracle-verified")
		}
	}
	if cl := rep.Cluster; cl != nil {
		if cl.MaxFleetPowerW > cl.FleetBudgetW+1e-6 {
			errs = append(errs, fmt.Sprintf("fleet power peaked at %.1f W over the %.1f W budget", cl.MaxFleetPowerW, cl.FleetBudgetW))
		}
		if cl.EnergyDynamicJ >= cl.EnergyStaticJ {
			errs = append(errs, fmt.Sprintf("coordinated fleet energy %.1f J >= static partitioning %.1f J", cl.EnergyDynamicJ, cl.EnergyStaticJ))
		}
		if cl.MaxUnownedTicks > 10 {
			errs = append(errs, fmt.Sprintf("re-home after a kill took %d ticks, contract is <= 10", cl.MaxUnownedTicks))
		}
		if cl.FinalUnowned != 0 {
			errs = append(errs, fmt.Sprintf("%d sessions still unowned after the chaos run", cl.FinalUnowned))
		}
		if cl.MachineDeaths == 0 || cl.Failovers == 0 {
			errs = append(errs, "cluster benchmark injected no effective faults")
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := "performance contract regressed:"
	for _, e := range errs {
		msg += "\n  - " + e
	}
	return fmt.Errorf("%s", msg)
}

// benchWorkload mirrors the internal/alloc benchmark fixture: five NAS
// applications with full design-space tables on Raptor Lake.
func benchWorkload() (*platform.Platform, []alloc.AppInput) {
	plat := platform.RaptorLake()
	names := []string{"ep.C", "mg.C", "cg.C", "ft.C", "sp.C"}
	var inputs []alloc.AppInput
	for _, name := range names {
		prof, err := workload.ByName(workload.IntelApps(), name)
		if err != nil {
			panic(err)
		}
		tbl := &opoint.Table{App: name, Platform: plat.Name}
		for _, rv := range platform.EnumerateVectors(plat, 0) {
			ev := workload.EvaluateVector(plat, prof, rv)
			tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts, Measured: true})
		}
		inputs = append(inputs, alloc.AppInput{ID: name, Table: tbl})
	}
	return plat, inputs
}

// perturb nudges one table point, flipping direction so the content cycles
// between two variants — every solve is a guaranteed cache miss.
func perturb(inputs []alloc.AppInput, up bool) {
	pt := inputs[0].Table.Points[0]
	if up {
		pt.Utility *= 1.01
	} else {
		pt.Utility /= 1.01
	}
	inputs[0].Table.Upsert(pt)
	inputs[0].Table.ParetoPoints() // rebuild the memo outside any timing
}

func measureCold(plat *platform.Platform, inputs []alloc.AppInput, m alloc.Method) (Regime, error) {
	a, err := alloc.New(plat, alloc.WithMethod(m))
	if err != nil {
		return Regime{}, err
	}
	_, st, err := a.AllocateWithStats(inputs)
	if err != nil {
		return Regime{}, err
	}
	iters := st.LambdaIters
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.Allocate(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	return regimeOf(res, iters), nil
}

func measureCacheHit(plat *platform.Platform, inputs []alloc.AppInput) (Regime, error) {
	a, err := alloc.New(plat, alloc.WithCache(alloc.DefaultCacheSize))
	if err != nil {
		return Regime{}, err
	}
	if _, _, err := a.AllocateWithStats(inputs); err != nil { // fill
		return Regime{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := a.AllocateWithStats(inputs)
			if err != nil {
				b.Fatal(err)
			}
			if st.Source != alloc.SourceCached {
				b.Fatalf("solve source = %q, want %q", st.Source, alloc.SourceCached)
			}
		}
	})
	return regimeOf(res, 0), nil
}

func measureWarmStart(plat *platform.Platform, inputs []alloc.AppInput) (Regime, error) {
	a, err := alloc.New(plat, alloc.WithWarmStart(true))
	if err != nil {
		return Regime{}, err
	}
	if _, _, err := a.AllocateWithStats(inputs); err != nil { // establish λ
		return Regime{}, err
	}
	var iters int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perturb(inputs, i%2 == 0)
			b.StartTimer()
			_, st, err := a.AllocateWithStats(inputs)
			if err != nil {
				b.Fatal(err)
			}
			if st.Source != alloc.SourceWarm {
				b.Fatalf("solve source = %q, want %q", st.Source, alloc.SourceWarm)
			}
			iters = st.LambdaIters
		}
	})
	return regimeOf(res, iters), nil
}

// steadyStateHitRate replays a 200-epoch cadence whose inputs change every
// 10th epoch — the shape of an RM at steady state — and returns the cache
// hit rate.
func steadyStateHitRate(plat *platform.Platform, inputs []alloc.AppInput) (float64, error) {
	a, err := alloc.New(plat, alloc.WithCache(alloc.DefaultCacheSize))
	if err != nil {
		return 0, err
	}
	for epoch := 0; epoch < 200; epoch++ {
		if epoch%10 == 0 {
			perturb(inputs, (epoch/10)%2 == 0)
		}
		if _, _, err := a.AllocateWithStats(inputs); err != nil {
			return 0, err
		}
	}
	return a.CacheStats().HitRate(), nil
}

// warmIterSums solves the same 50 perturbed epochs cold and warm-started and
// returns the summed λ iteration counts.
func warmIterSums(plat *platform.Platform, inputs []alloc.AppInput) (cold, warm int, err error) {
	ca, err := alloc.New(plat)
	if err != nil {
		return 0, 0, err
	}
	wa, err := alloc.New(plat, alloc.WithWarmStart(true))
	if err != nil {
		return 0, 0, err
	}
	if _, _, err := wa.AllocateWithStats(inputs); err != nil { // establish λ
		return 0, 0, err
	}
	for epoch := 0; epoch < 50; epoch++ {
		perturb(inputs, epoch%2 == 0)
		_, cst, err := ca.AllocateWithStats(inputs)
		if err != nil {
			return 0, 0, err
		}
		_, wst, err := wa.AllocateWithStats(inputs)
		if err != nil {
			return 0, 0, err
		}
		cold += cst.LambdaIters
		warm += wst.LambdaIters
	}
	return cold, warm, nil
}

// measureChurn runs the 10k-session open-loop churn benchmark — coalesced
// epochs, incremental re-solves and sharded solving, with every 8th epoch
// oracle-verified — plus a smaller solve-per-event baseline that shows the
// O(solve-per-event) pathology the tentpole removes.
func measureChurn() (*ChurnReport, error) {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	res, err := harpsim.RunChurn(harpsim.ChurnOptions{
		Sessions:      10000,
		Ticks:         40,
		EventsPerTick: 20,
		Seed:          1,
		Coalesce:      core.CoalescePolicy{Enabled: true},
		Sharded:       true,
		Incremental:   true,
		VerifyEvery:   8,
	})
	if err != nil {
		return nil, err
	}
	base, err := harpsim.RunChurn(harpsim.ChurnOptions{
		Sessions:      1000,
		Ticks:         10,
		EventsPerTick: 5,
		Seed:          1,
		// Zero CoalescePolicy: the historical solve-per-event behaviour.
	})
	if err != nil {
		return nil, err
	}
	return &ChurnReport{
		Sessions:         10000,
		Ticks:            40,
		Events:           res.Events,
		Epochs:           res.Epochs,
		P50Ms:            ms(res.P50),
		P99Ms:            ms(res.P99),
		MaxMs:            ms(res.Max),
		TickBudgetMs:     ms(core.AdaptationTick),
		SolveSources:     res.SolveSources,
		Verified:         res.Verified,
		BaselineSessions: 1000,
		BaselineEvents:   base.Events,
		BaselineEpochs:   base.Epochs,
		BaselineP99Ms:    ms(base.P99),
	}, nil
}

// measureCluster runs the fleet benchmark: one faulted coordinated run
// (machine kill at ¼, coordinator kill at ½) and one static-partitioning
// run over the same seed, both invariant-checked every tick.
func measureCluster() (*ClusterReport, error) {
	const (
		machines = 4
		sessions = 5
		ticks    = 600
		budgetW  = 60.0
	)
	opts := harpsim.ClusterOptions{
		Machines:     machines,
		Sessions:     sessions,
		Ticks:        ticks,
		Seed:         1,
		FleetBudgetW: budgetW,
		Verify:       true,
		Plan: &faultsim.Plan{Seed: 1, Faults: []faultsim.Fault{
			{At: harpsim.ClusterTick(ticks / 4), Target: "m1", Kind: faultsim.KindMachineKill},
			{At: harpsim.ClusterTick(ticks / 2), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
		}},
	}
	dyn, err := harpsim.RunCluster(opts)
	if err != nil {
		return nil, err
	}
	stOpts := opts
	stOpts.Static = true
	stOpts.Plan = nil // the baseline measures partitioning, not fault response
	st, err := harpsim.RunCluster(stOpts)
	if err != nil {
		return nil, err
	}
	rep := &ClusterReport{
		Machines:        machines,
		Sessions:        sessions,
		Ticks:           ticks,
		FleetBudgetW:    budgetW,
		EnergyDynamicJ:  dyn.EnergyJ,
		EnergyStaticJ:   st.EnergyJ,
		MaxFleetPowerW:  maxFloat(dyn.MaxFleetPowerW, st.MaxFleetPowerW),
		Migrations:      dyn.Stats.Migrations,
		MachineDeaths:   dyn.Stats.MachineDeaths,
		Failovers:       dyn.Stats.Failovers,
		MaxUnownedTicks: dyn.MaxUnownedTicks,
		FinalUnowned:    dyn.FinalUnowned,
	}
	if st.EnergyJ > 0 {
		rep.EnergySavedPct = 100 * (1 - dyn.EnergyJ/st.EnergyJ)
	}
	return rep, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func regimeOf(res testing.BenchmarkResult, iters int) Regime {
	return Regime{
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		LambdaIters: iters,
	}
}
