// Quickstart: run a HARP resource manager in-process, register an
// application through libharp, upload its operating-point description, and
// receive the allocation decision — the full two-way protocol of Fig. 3 over
// a real Unix socket.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/harp-rm/harp/harp"
	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The resource manager. A production deployment runs `harpd`; here
	// we embed the server. The Odroid-style configuration (no simultaneous
	// PMU access) would force DisableExploration; the Intel platform could
	// explore online given a perf/RAPL sampler.
	plat := platform.RaptorLake()
	srv, err := harp.NewServer(harp.ServerConfig{
		Platform:           plat,
		DisableExploration: true, // knowledge comes from the uploaded description
	})
	if err != nil {
		return err
	}
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("harp-quickstart-%d.sock", os.Getpid()))
	go func() {
		if err := srv.ListenAndServe(sock); err != nil {
			fmt.Fprintln(os.Stderr, "server:", err)
		}
	}()
	defer srv.Close()
	waitForSocket(sock)

	// 2. The application side: libharp registers a scalable application
	// (think OpenMP) and installs the adaptation callback.
	activations := make(chan harp.Activation, 8)
	client, err := harp.Dial(sock, harp.Registration{
		App:        "mg.C",
		Adaptivity: harp.Scalable,
		OnActivate: func(a harp.Activation) { activations <- a },
	})
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Println("registered as", client.SessionID())

	// 3. Upload the application description (normally shipped with the app
	// or produced by `harp-dse`). mg is memory-bound, so HARP should steer
	// it to E-cores.
	prof, err := workload.ByName(workload.IntelApps(), "mg.C")
	if err != nil {
		return err
	}
	table := harpsim.OfflineDSETables(plat, []*workload.Profile{prof})["mg.C"]
	var desc bytes.Buffer
	if err := table.Save(&desc); err != nil {
		return err
	}
	if err := client.UploadDescription(&desc); err != nil {
		return err
	}

	// 4. React to decisions the way libharp's OpenMP hook would: match the
	// worker count to the granted hardware threads.
	timeout := time.After(3 * time.Second)
	for i := 0; i < 2; i++ { // initial decision + post-upload decision
		select {
		case a := <-activations:
			fmt.Printf("activation #%d: vector %s → %d threads on %d cores (co-allocated: %v)\n",
				a.Seq, a.VectorKey, a.Threads, len(a.Cores), a.CoAllocated)
			eCores := 0
			for _, g := range a.Cores {
				if g.Core >= 8 { // cores 8–23 are the E-cores on this machine
					eCores++
				}
			}
			fmt.Printf("  → adapting: set OMP_NUM_THREADS=%d (%d of the cores are E-cores)\n",
				a.Threads, eCores)
		case <-timeout:
			return fmt.Errorf("no activation received")
		}
	}
	return nil
}

func waitForSocket(path string) {
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
