// Multiapp: the desktop-consolidation scenario from the paper's motivation —
// several data-parallel applications start together and fight for the
// heterogeneous cores. The example compares Linux CFS against HARP (with
// offline operating points) on the simulated Raptor Lake and prints the
// improvement factors (cf. Fig. 6, multi-application).
package main

import (
	"fmt"
	"os"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiapp:", err)
		os.Exit(1)
	}
}

func run() error {
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	// A desktop mix: a compute-bound batch job, two memory-bound kernels and
	// a neural-network inference service.
	var apps []*workload.Profile
	for _, name := range []string{"ep.C", "mg.C", "cg.C", "vgg"} {
		p, err := workload.ByName(suite, name)
		if err != nil {
			return err
		}
		apps = append(apps, p)
	}
	sc := harpsim.Scenario{Name: "desktop-mix", Platform: plat, Apps: apps}

	cfs, err := harpsim.Run(sc, harpsim.Options{Policy: harpsim.PolicyCFS, Seed: 1})
	if err != nil {
		return err
	}
	harp, err := harpsim.Run(sc, harpsim.Options{
		Policy:        harpsim.PolicyHARPOffline,
		OfflineTables: harpsim.OfflineDSETables(plat, apps),
		Seed:          1,
	})
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %s on %s\n\n", sc.Name, plat)
	fmt.Printf("%-14s %12s %12s\n", "policy", "makespan[s]", "energy[J]")
	fmt.Printf("%-14s %12.2f %12.1f\n", "CFS", cfs.MakespanSec, cfs.EnergyJ)
	fmt.Printf("%-14s %12.2f %12.1f\n", "HARP(offline)", harp.MakespanSec, harp.EnergyJ)
	fmt.Printf("\nimprovement: %.2f× faster, %.2f× less energy\n",
		cfs.MakespanSec/harp.MakespanSec, cfs.EnergyJ/harp.EnergyJ)

	fmt.Println("\nper-application completion times:")
	fmt.Printf("%-10s %10s %10s\n", "app", "CFS[s]", "HARP[s]")
	for _, p := range apps {
		fmt.Printf("%-10s %10.2f %10.2f\n", p.Name, cfs.Apps[p.Name].TimeSec, harp.Apps[p.Name].TimeSec)
	}
	return nil
}
