// Exploration: watch HARP learn an unknown application's operating points at
// runtime (§5). The workload repeats on the simulated Raptor Lake while the
// resource manager explores configurations (20 measurements à 50 ms per
// point, 25 points to the stable stage); every 5 s the example snapshots the
// learning state, mirroring Fig. 8.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exploration:", err)
		os.Exit(1)
	}
}

func run() error {
	plat := platform.RaptorLake()
	prof, err := workload.ByName(workload.IntelApps(), "seismic")
	if err != nil {
		return err
	}
	sc := harpsim.Scenario{Name: "seismic", Platform: plat, Apps: []*workload.Profile{prof}}

	fmt.Printf("learning %s on %s for 60 virtual seconds…\n\n", prof.Name, plat)
	lr, err := harpsim.LearnTables(sc, 60*time.Second, 5*time.Second, harpsim.Options{Seed: 7})
	if err != nil {
		return err
	}

	fmt.Printf("%8s %10s %16s\n", "t[s]", "stage", "measured points")
	for _, snap := range lr.Snapshots {
		stage := "learning"
		if snap.AllStable {
			stage = "stable"
		}
		fmt.Printf("%8.0f %10s %16d\n", snap.AtSec, stage, snap.Tables[prof.Name].MeasuredCount())
	}
	fmt.Printf("\nstable stage reached after %.1f s (paper: ≈ 30 s)\n", lr.StableAfterSec)

	// Show the best learned operating points by energy-utility cost.
	tbl := lr.Tables[prof.Name]
	vstar := tbl.MaxUtility()
	pts := tbl.ParetoPoints()
	sort.Slice(pts, func(i, j int) bool { return pts[i].Cost(vstar) < pts[j].Cost(vstar) })
	fmt.Println("\nbest learned operating points (by energy-utility cost ζ):")
	fmt.Printf("%-12s %12s %10s %12s\n", "vector", "utility", "power[W]", "cost ζ")
	for i, op := range pts {
		if i == 5 {
			break
		}
		fmt.Printf("%-12s %12.1f %10.1f %12.1f\n", op.Vector.Key(), op.Utility, op.Power, op.Cost(vstar))
	}

	// And what those points buy: run the scenario with the learned tables.
	cfs, err := harpsim.Run(sc, harpsim.Options{Policy: harpsim.PolicyCFS, Seed: 7})
	if err != nil {
		return err
	}
	learned, err := harpsim.Run(sc, harpsim.Options{
		Policy:        harpsim.PolicyHARP,
		OfflineTables: lr.Tables,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nwith learned knowledge: %.2f× time, %.2f× energy vs CFS\n",
		cfs.MakespanSec/learned.MakespanSec, cfs.EnergyJ/learned.EnergyJ)
	return nil
}
