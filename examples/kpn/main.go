// KPN: custom adaptivity on the embedded platform. A Kahn-process-network
// application (Leighton–Micali signatures) registers with the Custom
// adaptivity class and installs a callback that resizes its parallel region
// whenever HARP pushes a new allocation (§4.1.3, "custom applications") —
// the libharp extension of Khasanov et al. for implicit data parallelism in
// KPNs. The example also compares the adaptive and static variants under EAS
// and HARP on the simulated Odroid XU3-E (cf. Fig. 7).
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/harp-rm/harp/harp"
	"github.com/harp-rm/harp/harp/adapt"
	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

// kpnApp is a toy application-side model: a signature pipeline whose worker
// region can be resized at runtime, with optional fine-grained pinning
// templates per operating point (§4.1.2).
type kpnApp struct {
	workers int
	fine    harp.FineGrainedSet
}

// callbacks builds the libharp adaptation chain: fine-grained configurations
// where the application has them, coarse rescaling otherwise.
func (k *kpnApp) callbacks() func(harp.Activation) {
	return adapt.Combined(
		adapt.Scalable(func(n int) {
			if n != k.workers {
				fmt.Printf("  knob: resizing parallel region %d → %d workers\n", k.workers, n)
				k.workers = n
			}
		}),
		adapt.FineGrained(k.fine,
			func(p harp.FineGrainedPoint) {
				fmt.Printf("  fine-grained point %s: %d pinned threads, knobs %v\n",
					p.VectorKey, len(p.Pins), p.Knobs)
			},
			func(a harp.Activation) {
				fmt.Printf("  coarse fallback for vector %s\n", a.VectorKey)
			},
			nil),
	)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kpn:", err)
		os.Exit(1)
	}
}

func run() error {
	plat := platform.OdroidXU3()
	suite := workload.OdroidApps()

	// Part 1: the protocol side — register the adaptive KPN with a custom
	// callback and watch HARP resize it.
	fmt.Println("— custom adaptivity over the HARP protocol —")
	srv, err := harp.NewServer(harp.ServerConfig{Platform: plat, DisableExploration: true})
	if err != nil {
		return err
	}
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("harp-kpn-%d.sock", os.Getpid()))
	go func() { _ = srv.ListenAndServe(sock) }()
	defer srv.Close()
	waitForSocket(sock)

	app := &kpnApp{
		workers: 4, // natural topology: 1 source + 3 workers
		fine: harp.FineGrainedSet{
			// The full-machine point pins the source process to a big core
			// and widens the worker region to 8 (implicit data parallelism).
			"4|4": {
				VectorKey: "4|4",
				Pins:      []harp.ThreadPin{{Thread: 0, Grant: 0, HWThread: 0}},
				Knobs:     map[string]float64{"worker-region": 8},
			},
		},
	}
	client, err := harp.Dial(sock, harp.Registration{
		App:        "lms",
		Adaptivity: harp.Custom,
		OnActivate: app.callbacks(),
	})
	if err != nil {
		return err
	}
	defer client.Close()

	lms, err := workload.ByName(suite, "lms")
	if err != nil {
		return err
	}
	table := harpsim.OfflineDSETables(plat, []*workload.Profile{lms})["lms"]
	var desc bytes.Buffer
	if err := table.Save(&desc); err != nil {
		return err
	}
	if err := client.UploadDescription(&desc); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // let the activation callbacks land

	// Part 2: what the adaptation is worth — adaptive vs static topology
	// under EAS and HARP (Offline) on the simulated board.
	fmt.Println("\n— adaptive vs static KPN on the simulated Odroid —")
	fmt.Printf("%-20s %-14s %12s %12s\n", "app", "policy", "makespan[s]", "energy[J]")
	for _, name := range []string{"lms", "lms-static", "mandelbrot", "mandelbrot-static"} {
		prof, err := workload.ByName(suite, name)
		if err != nil {
			return err
		}
		sc := harpsim.Scenario{Name: name, Platform: plat, Apps: []*workload.Profile{prof}}
		eas, err := harpsim.Run(sc, harpsim.Options{
			Policy: harpsim.PolicyEAS, Governor: sim.GovernorSchedutil, Seed: 1,
		})
		if err != nil {
			return err
		}
		harpRes, err := harpsim.Run(sc, harpsim.Options{
			Policy:        harpsim.PolicyHARPOffline,
			OfflineTables: harpsim.OfflineDSETables(plat, []*workload.Profile{prof}),
			Governor:      sim.GovernorSchedutil,
			Seed:          1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-14s %12.2f %12.1f\n", name, "EAS", eas.MakespanSec, eas.EnergyJ)
		fmt.Printf("%-20s %-14s %12.2f %12.1f\n", "", "HARP(offline)", harpRes.MakespanSec, harpRes.EnergyJ)
	}
	return nil
}

func waitForSocket(path string) {
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
