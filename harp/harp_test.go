package harp

import (
	"bytes"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/proto"
	"github.com/harp-rm/harp/internal/workload"
)

// fixedSampler returns constant measurements for any PID.
type fixedSampler struct {
	utility, power float64
}

func (s fixedSampler) Sample(int) (float64, float64, error) {
	return s.utility, s.power, nil
}

// startServer spins up a server on a temp socket and returns its path.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	if cfg.Platform == nil {
		cfg.Platform = platform.RaptorLake()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "harp.sock")
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(sock) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	// Wait for the listener: a raw connect-and-close never registers a
	// session, so it does not pollute the server state.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return srv, sock
}

func offlineDescription(t *testing.T, plat *platform.Platform, prof *workload.Profile) []byte {
	t.Helper()
	tbl := &opoint.Table{App: prof.Name, Platform: plat.Name}
	for _, rv := range platform.EnumerateVectors(plat, 2) {
		ev := workload.EvaluateVector(plat, prof, rv)
		tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
	}
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAdaptivityValidity(t *testing.T) {
	for _, a := range []Adaptivity{Static, Scalable, Custom} {
		if !a.Valid() {
			t.Errorf("%q not valid", a)
		}
	}
	if Adaptivity("bogus").Valid() {
		t.Error("bogus adaptivity valid")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("config without platform accepted")
	}
	// The Odroid requires exploration to be disabled.
	if _, err := NewServer(ServerConfig{Platform: platform.OdroidXU3()}); err == nil {
		t.Error("Odroid server with exploration accepted")
	}
}

func TestLoadPlatform(t *testing.T) {
	p, err := LoadPlatform("intel")
	if err != nil || p.Name != "intel-raptor-lake-i9-13900k" {
		t.Fatalf("LoadPlatform(intel) = (%v, %v)", p, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	if err := platform.OdroidXU3().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	p, err = LoadPlatform(path)
	if err != nil || p.Name != "odroid-xu3-e" {
		t.Fatalf("LoadPlatform(file) = (%v, %v)", p, err)
	}
	if _, err := LoadPlatform("/no/such/file"); err == nil {
		t.Error("missing platform accepted")
	}
}

func TestRegisterAndReceiveActivation(t *testing.T) {
	_, sock := startServer(t, ServerConfig{Sampler: fixedSampler{utility: 100, power: 50}})

	var mu sync.Mutex
	var got []Activation
	client, err := Dial(sock, Registration{
		App:        "ep.C",
		PID:        1234,
		Adaptivity: Scalable,
		OnActivate: func(a Activation) {
			mu.Lock()
			got = append(got, a)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	if client.SessionID() != "ep.C/1234" {
		t.Errorf("session id = %q", client.SessionID())
	}
	// The first activation is pushed on registration; wait briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if act, ok := client.Activation(); ok {
			if act.VectorKey == "" || len(act.Cores) == 0 {
				t.Fatalf("empty activation %+v", act)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no activation within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if len(got) == 0 {
		t.Error("OnActivate never called")
	}
	mu.Unlock()
}

func TestDialValidation(t *testing.T) {
	_, sock := startServer(t, ServerConfig{})
	if _, err := Dial(sock, Registration{Adaptivity: Scalable}); err == nil {
		t.Error("empty app name accepted")
	}
	if _, err := Dial(sock, Registration{App: "x", Adaptivity: "weird"}); err == nil {
		t.Error("bad adaptivity accepted")
	}
	if _, err := Dial(filepath.Join(t.TempDir(), "nope.sock"), Registration{App: "x", Adaptivity: Static}); err == nil {
		t.Error("missing socket accepted")
	}
}

func TestUploadDescriptionDrivesAllocation(t *testing.T) {
	plat := platform.RaptorLake()
	srv, sock := startServer(t, ServerConfig{
		Platform:           plat,
		DisableExploration: true,
	})
	prof, err := workload.ByName(workload.IntelApps(), "mg.C")
	if err != nil {
		t.Fatal(err)
	}
	desc := offlineDescription(t, plat, prof)

	client, err := Dial(sock, Registration{App: "mg.C", PID: 7, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.UploadDescription(bytes.NewReader(desc)); err != nil {
		t.Fatalf("UploadDescription: %v", err)
	}

	// The upload triggers a reallocation whose decision reflects the table.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if act, ok := client.Activation(); ok && len(act.Cores) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no post-upload activation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tbl, err := srv.TableSnapshot("mg.C/7")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MeasuredCount() == 0 {
		t.Error("uploaded points not in the RM's table")
	}
}

func TestUploadDescriptionRejectsGarbage(t *testing.T) {
	_, sock := startServer(t, ServerConfig{})
	client, err := Dial(sock, Registration{App: "x", Adaptivity: Static})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.UploadDescription(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage description accepted")
	}
}

func TestTwoClientsShareTheMachine(t *testing.T) {
	// Exploration is disabled so decisions only change on registrations and
	// settle immediately — with it enabled, the two clients could hold
	// activations from different reallocation epochs while a push is in
	// flight, and comparing those is meaningless.
	srv, sock := startServer(t, ServerConfig{DisableExploration: true})
	a, err := Dial(sock, Registration{App: "app-a", PID: 1, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(sock, Registration{App: "app-b", PID: 2, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(srv.Sessions()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %d, want 2", len(srv.Sessions()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	actA, okA := waitActivation(t, a)
	actB, okB := waitActivation(t, b)
	if !okA || !okB {
		t.Fatal("missing activations")
	}
	// Let the post-registration reallocation pushes land, then re-read.
	time.Sleep(200 * time.Millisecond)
	actA, _ = a.Activation()
	actB, _ = b.Activation()
	// Without co-allocation the grants must not overlap.
	if !actA.CoAllocated && !actB.CoAllocated {
		used := make(map[int]bool)
		for _, g := range actA.Cores {
			used[g.Core] = true
		}
		for _, g := range actB.Cores {
			if used[g.Core] {
				t.Errorf("core %d granted to both clients", g.Core)
			}
		}
	}
}

func TestClientDisconnectDeregisters(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{})
	client, err := Dial(sock, Registration{App: "x", PID: 3, Adaptivity: Static})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Sessions()); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(srv.Sessions()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not removed after Close: %v", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	_, sock := startServer(t, ServerConfig{})
	a, err := Dial(sock, Registration{App: "x", PID: 9, Adaptivity: Static})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := Dial(sock, Registration{App: "x", PID: 9, Adaptivity: Static}); !errors.Is(err, ErrRegistrationRejected) {
		t.Fatalf("duplicate Dial err = %v, want ErrRegistrationRejected", err)
	}
}

func TestReportUtility(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{
		Sampler:      fixedSampler{utility: 0, power: 30},
		MeasureEvery: 10 * time.Millisecond,
	})
	client, err := Dial(sock, Registration{App: "tf", PID: 4, Adaptivity: Scalable, OwnUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 10; i++ {
		if err := client.ReportUtility(42.5); err != nil {
			t.Fatalf("ReportUtility: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The reported utility must reach the RM's table via measurements.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tbl, err := srv.TableSnapshot("tf/4")
		if err == nil && len(tbl.Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Skip("no measurement landed (timing-dependent); covered by core tests")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitActivation(t *testing.T, c *Client) (Activation, bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if act, ok := c.Activation(); ok {
			return act, true
		}
		if time.Now().After(deadline) {
			return Activation{}, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUtilityRequestPoll(t *testing.T) {
	// An own-utility session that never pushes gets polled by the RM; the
	// client answers via the OnUtilityRequest callback.
	_, sock := startServer(t, ServerConfig{
		Sampler:      fixedSampler{utility: 0, power: 25},
		MeasureEvery: 10 * time.Millisecond,
	})
	var polls int32
	client, err := Dial(sock, Registration{
		App:        "poll-me",
		PID:        11,
		Adaptivity: Scalable,
		OwnUtility: true,
		OnUtilityRequest: func() float64 {
			atomic.AddInt32(&polls, 1)
			return 77
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	deadline := time.Now().Add(3 * time.Second)
	for atomic.LoadInt32(&polls) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("RM never polled for utility")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A peer that speaks garbage must not disturb the server or other sessions.
func TestServerSurvivesGarbagePeers(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{})

	// Raw garbage bytes.
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("\x00\x00\x00\x05hello-not-a-frame")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A valid frame of the wrong type as the first message.
	conn2, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Write(conn2, proto.MsgUtilityReport, proto.UtilityReport{Utility: 1}); err != nil {
		t.Fatal(err)
	}
	// The server must answer with a rejection ack and close.
	if env, err := proto.Read(conn2); err == nil {
		var ack proto.RegisterAck
		if decErr := proto.DecodeBody(env, proto.MsgRegisterAck, &ack); decErr == nil && ack.OK {
			t.Error("server accepted a non-registration first message")
		}
	}
	conn2.Close()

	// A real client still works afterwards.
	client, err := Dial(sock, Registration{App: "ok", PID: 42, Adaptivity: Static})
	if err != nil {
		t.Fatalf("healthy client failed after garbage peers: %v", err)
	}
	defer client.Close()
	if len(srv.Sessions()) != 1 {
		t.Errorf("sessions = %d, want 1", len(srv.Sessions()))
	}
}

// Garbage frames after a successful registration only end that session.
func TestServerSurvivesMidSessionGarbage(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.Write(conn, proto.MsgRegister, proto.Register{
		PID: 77, App: "gonna-break", Adaptivity: "static",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Read(conn); err != nil { // ack
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("\xff\xff\xff\xff")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Sessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("broken session not reaped: %v", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNotifyPhase(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{Sampler: fixedSampler{utility: 50, power: 20}})
	client, err := Dial(sock, Registration{App: "phased", PID: 12, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.NotifyPhase("stage-2"); err != nil {
		t.Fatalf("NotifyPhase: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		infos := srv.Sessions()
		if len(infos) == 1 && infos[0].Phase == "stage-2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase not recorded: %+v", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
