package harp

import (
	"bytes"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// TestReconnectFollowsAddressProvider proves the fleet redirect hook: when
// the RM a client is attached to goes away for good, the reconnect loop
// consults ReconnectConfig.AddressProvider and resumes the session —
// re-register, table re-upload, phase replay — against the machine the
// provider names.
func TestReconnectFollowsAddressProvider(t *testing.T) {
	plat := platform.RaptorLake()
	newServer := func(name string) (*Server, string, func()) {
		srv, err := NewServer(ServerConfig{Platform: plat, DisableExploration: true})
		if err != nil {
			t.Fatal(err)
		}
		sock := filepath.Join(t.TempDir(), name+".sock")
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe(sock) }()
		waitSocket(t, sock)
		return srv, sock, func() {
			if err := srv.Close(); err != nil {
				t.Errorf("%s close: %v", name, err)
			}
			if err := <-errc; err != nil {
				t.Errorf("%s serve: %v", name, err)
			}
		}
	}

	_, sockA, stopA := newServer("a")
	srvB, sockB, stopB := newServer("b")
	defer stopB()

	var redirects atomic.Int64
	client, err := Dial(sockA, Registration{
		App:        "mg.C",
		PID:        77,
		Adaptivity: Scalable,
		Reconnect: ReconnectConfig{
			Enabled:        true,
			InitialBackoff: 5 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			Seed:           7,
			AddressProvider: func() string {
				redirects.Add(1)
				return sockB
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	prof, err := workload.ByName(workload.IntelApps(), "mg.C")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.UploadDescription(bytes.NewReader(offlineDescription(t, plat, prof))); err != nil {
		t.Fatal(err)
	}
	if err := client.NotifyPhase("steady"); err != nil {
		t.Fatal(err)
	}

	// Machine A dies for good; the provider must carry the session to B.
	stopA()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if ss := srvB.Sessions(); len(ss) == 1 && ss[0].Phase == "steady" {
			break
		}
		select {
		case <-client.Done():
			t.Fatalf("client gave up instead of following redirect: %v", client.Err())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never resumed on B: %+v", srvB.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if redirects.Load() == 0 {
		t.Error("address provider never consulted")
	}
	// The replayed table must be live on B, not just the registration.
	tbl, err := srvB.TableSnapshot("mg.C/77")
	if err != nil {
		t.Fatalf("table not replayed to B: %v", err)
	}
	if tbl.MeasuredCount() == 0 {
		t.Error("replayed table has no measured points")
	}
}

// TestReconnectZeroValueProviderKeepsAddress pins the compatibility
// contract: with no AddressProvider, reconnect behaviour is unchanged —
// the client re-dials the address it was born with.
func TestReconnectZeroValueProviderKeepsAddress(t *testing.T) {
	if (ReconnectConfig{Enabled: true}).withDefaults().AddressProvider != nil {
		t.Fatal("withDefaults invented an address provider")
	}
	sock := filepath.Join(t.TempDir(), "gone.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Platform: platform.RaptorLake(), DisableExploration: true})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	waitSocket(t, sock)

	client, err := Dial(sock, Registration{
		App: "pin", PID: 5, Adaptivity: Static,
		Reconnect: ReconnectConfig{
			Enabled:        true,
			InitialBackoff: 5 * time.Millisecond,
			MaxBackoff:     20 * time.Millisecond,
			MaxAttempts:    4,
			Seed:           3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// The socket is gone and stays gone: attempts must exhaust against the
	// original address, and the client must terminate with the dial error.
	select {
	case <-client.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client never gave up on the dead address")
	}
	if client.Err() == nil {
		t.Fatal("exhausted reconnect reported no error")
	}
}
