package harp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// FineGrainedPoint is the application-side half of a fine-grained operating
// point (§4.1.2): while the RM only ever sees the extended resource vector,
// the application keeps, per vector, its detailed configuration — explicit
// thread-to-core pins within the granted allocation and values for its
// adaptivity knobs. Custom applications look the activated vector up in
// their FineGrainedSet and reconfigure accordingly.
type FineGrainedPoint struct {
	// VectorKey identifies the coarse operating point this configuration
	// belongs to (platform.ResourceVector key form, e.g. "1,2|4").
	VectorKey string `json:"vectorKey"`
	// Pins maps application threads onto the granted cores: Pins[i] places
	// thread i. Missing threads float freely within the allocation.
	Pins []ThreadPin `json:"pins,omitempty"`
	// Knobs holds application-specific adaptivity-knob values for this
	// configuration (parallel-region widths, algorithm selectors, …).
	Knobs map[string]float64 `json:"knobs,omitempty"`
}

// ThreadPin places one application thread on one hardware thread of a
// granted core. Grant indexes Activation.Cores; HWThread selects the sibling
// within that core (0-based, < CoreGrant.Threads).
type ThreadPin struct {
	Thread   int `json:"thread"`
	Grant    int `json:"grant"`
	HWThread int `json:"hwThread"`
}

// FineGrainedSet is an application's fine-grained configurations keyed by
// vector key. It typically ships in the application description next to the
// coarse operating points.
type FineGrainedSet map[string]FineGrainedPoint

// LoadFineGrained reads a JSON array of FineGrainedPoints.
func LoadFineGrained(r io.Reader) (FineGrainedSet, error) {
	var points []FineGrainedPoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&points); err != nil {
		return nil, fmt.Errorf("harp: decode fine-grained points: %w", err)
	}
	set := make(FineGrainedSet, len(points))
	for _, p := range points {
		if p.VectorKey == "" {
			return nil, errors.New("harp: fine-grained point without vector key")
		}
		if _, dup := set[p.VectorKey]; dup {
			return nil, fmt.Errorf("harp: duplicate fine-grained point for %q", p.VectorKey)
		}
		set[p.VectorKey] = p
	}
	return set, nil
}

// Select resolves the fine-grained configuration for an activation and
// validates its pins against the granted cores. ok is false when the
// application has no fine-grained point for the activated vector — it should
// then fall back to coarse behaviour (uniform distribution, §4.1.2).
func (s FineGrainedSet) Select(a Activation) (FineGrainedPoint, bool, error) {
	p, ok := s[a.VectorKey]
	if !ok {
		return FineGrainedPoint{}, false, nil
	}
	for _, pin := range p.Pins {
		if pin.Thread < 0 {
			return FineGrainedPoint{}, false, fmt.Errorf("harp: pin with negative thread %d", pin.Thread)
		}
		if pin.Grant < 0 || pin.Grant >= len(a.Cores) {
			return FineGrainedPoint{}, false, fmt.Errorf(
				"harp: pin for thread %d references grant %d of %d", pin.Thread, pin.Grant, len(a.Cores))
		}
		if g := a.Cores[pin.Grant]; pin.HWThread < 0 || pin.HWThread >= g.Threads {
			return FineGrainedPoint{}, false, fmt.Errorf(
				"harp: pin for thread %d references hw thread %d of core %d (granted %d)",
				pin.Thread, pin.HWThread, g.Core, g.Threads)
		}
	}
	return p, true, nil
}
