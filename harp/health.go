package harp

import (
	"fmt"
	"time"

	"github.com/harp-rm/harp/internal/core"
)

// HealthStatus grades one health check (and the overall report) on the
// conventional three-level scale: ok means the RM is operating inside its
// envelope, degraded means it is serving but some guarantee is eroding
// (events dropped, budget exceeded, sessions quarantined), unhealthy means
// a core contract is broken (the measure loop has lost its cadence or the
// decision journal can no longer be written).
type HealthStatus string

const (
	HealthOK        HealthStatus = "ok"
	HealthDegraded  HealthStatus = "degraded"
	HealthUnhealthy HealthStatus = "unhealthy"
)

// worse reports whether a outranks b in severity.
func (a HealthStatus) worse(b HealthStatus) bool {
	return a.rank() > b.rank()
}

func (a HealthStatus) rank() int {
	switch a {
	case HealthUnhealthy:
		return 2
	case HealthDegraded:
		return 1
	}
	return 0
}

// HealthCheck is one named probe inside a HealthReport.
type HealthCheck struct {
	Name   string       `json:"name"`
	Status HealthStatus `json:"status"`
	// Detail explains a non-ok status (and carries the measured value for
	// ok checks that have one, e.g. the jitter p99).
	Detail string `json:"detail,omitempty"`
}

// HealthReport is the server's self-assessment, served by harpd at
// /healthz and printed by `harpctl health`. Status is the worst of the
// individual checks.
type HealthReport struct {
	Status HealthStatus  `json:"status"`
	Checks []HealthCheck `json:"checks"`
}

// Health grades the server against its operating envelope:
//
//   - measure-jitter: the p99 deviation of the measure loop from its
//     cadence. Past half the cadence the loop is degraded; past a full
//     cadence it is effectively missing epochs — unhealthy.
//   - journal: a sticky decision-journal write error means decisions are
//     being made but not recorded — unhealthy.
//   - tracer: ring evictions mean the flight recorder has holes — degraded.
//   - sessions: quarantined sessions are being carried dead weight —
//     degraded.
//   - epochs: the most recent epoch was resolved by a degradation-ladder
//     rung instead of a healthy solve — degraded.
//   - store: corruption events survived recovery but cost records —
//     degraded.
//   - store-durability: the store exhausted its write retries and
//     suspended snapshots (allocation continues undurably) — degraded.
//   - budget: accumulated time over the epoch power budget — degraded.
//
// Checks whose subsystem is disabled (no metrics, no journal, no ledger)
// report ok with a "disabled" detail rather than being omitted, so the
// check list is stable for scrapers.
func (s *Server) Health() HealthReport {
	rep := HealthReport{Status: HealthOK}
	add := func(name string, st HealthStatus, detail string) {
		rep.Checks = append(rep.Checks, HealthCheck{Name: name, Status: st, Detail: detail})
		if st.worse(rep.Status) {
			rep.Status = st
		}
	}

	if mt := s.cfg.Metrics; mt != nil {
		cadence := s.cfg.MeasureEvery.Seconds()
		p99 := mt.MeasureJitter.Quantile(0.99)
		switch {
		case cadence > 0 && p99 > cadence:
			add("measure-jitter", HealthUnhealthy,
				fmt.Sprintf("p99 %.1fms exceeds the %.0fms cadence", p99*1e3, cadence*1e3))
		case cadence > 0 && p99 > cadence/2:
			add("measure-jitter", HealthDegraded,
				fmt.Sprintf("p99 %.1fms exceeds half the %.0fms cadence", p99*1e3, cadence*1e3))
		default:
			add("measure-jitter", HealthOK, fmt.Sprintf("p99 %.1fms", p99*1e3))
		}
	} else {
		add("measure-jitter", HealthOK, "metrics disabled")
	}

	if err := s.cfg.Journal.Err(); err != nil {
		add("journal", HealthUnhealthy, err.Error())
	} else if !s.cfg.Journal.Enabled() {
		add("journal", HealthOK, "disabled")
	} else {
		add("journal", HealthOK, "")
	}

	if n := s.cfg.Tracer.Dropped(); n > 0 {
		add("tracer", HealthDegraded, fmt.Sprintf("%d events evicted from the ring", n))
	} else {
		add("tracer", HealthOK, "")
	}

	quarantined := 0
	for _, info := range s.mgr.Sessions() {
		if info.Liveness == core.LivenessQuarantined {
			quarantined++
		}
	}
	if quarantined > 0 {
		add("sessions", HealthDegraded, fmt.Sprintf("%d quarantined", quarantined))
	} else {
		add("sessions", HealthOK, "")
	}

	if rung := s.mgr.DegradedRung(); rung != "" {
		detail := rung
		if msg := s.mgr.LastEpochError(); msg != "" {
			detail = fmt.Sprintf("%s: %s", rung, msg)
		}
		add("epochs", HealthDegraded, detail)
	} else {
		add("epochs", HealthOK, "")
	}

	if rec, ok := s.StoreRecovery(); ok && rec.Corruptions > 0 {
		add("store", HealthDegraded, fmt.Sprintf("%d corruption events at recovery", rec.Corruptions))
	} else if !ok {
		add("store", HealthOK, "disabled")
	} else {
		add("store", HealthOK, "")
	}

	if s.store == nil {
		add("store-durability", HealthOK, "disabled")
	} else if s.store.Degraded() {
		add("store-durability", HealthDegraded,
			"write retries exhausted; snapshots suspended, allocation continues undurably")
	} else {
		add("store-durability", HealthOK, "")
	}

	if s.cfg.Energy != nil {
		tot := s.cfg.Energy.Totals()
		if tot.OverrunSec > 0 {
			add("budget", HealthDegraded,
				fmt.Sprintf("%s over the power budget", time.Duration(tot.OverrunSec*float64(time.Second)).Round(time.Millisecond)))
		} else {
			add("budget", HealthOK, "")
		}
	} else {
		add("budget", HealthOK, "energy ledger disabled")
	}

	return rep
}
