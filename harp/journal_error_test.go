package harp

import (
	"bytes"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
)

// failingAllocator errors on every solve.
type failingAllocator struct{}

func (failingAllocator) AllocateWithStats([]alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error) {
	return nil, alloc.Stats{}, errors.New("solver exploded")
}

// A solver failure must reach the client as a rejected registration and the
// journal as an error epoch with no outputs — never a pushed decision built
// from a failed solve. The server is closed before the journal buffer is
// read, so the read needs no synchronisation with the measure loop.
func TestAllocatorErrorSurfacesInJournal(t *testing.T) {
	var jbuf bytes.Buffer
	srv, err := NewServer(ServerConfig{
		Platform:  platform.RaptorLake(),
		Sampler:   fixedSampler{utility: 100, power: 50},
		Journal:   telemetry.NewJournal(&jbuf),
		Allocator: failingAllocator{},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "harp.sock")
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(sock) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	client, err := Dial(sock, Registration{App: "ep.C", PID: 7, Adaptivity: Scalable})
	if err == nil {
		client.Close()
		t.Fatal("registration succeeded although every solve fails")
	}
	if !strings.Contains(err.Error(), "solver exploded") {
		t.Errorf("registration error %q does not carry the solver failure", err)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	records, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, rec := range records {
		if len(rec.Outputs) != 0 {
			t.Errorf("epoch %d pushed %d decisions although every solve fails", rec.Epoch, len(rec.Outputs))
		}
		if rec.Trigger == "register" && rec.Error != "" {
			found = true
			if !strings.Contains(rec.Error, "solver exploded") {
				t.Errorf("error epoch records %q, want the solver failure", rec.Error)
			}
		}
	}
	if !found {
		t.Fatalf("no register error epoch in the journal (%d records)", len(records))
	}
}
