package harp

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// syncBuffer is a goroutine-safe journal sink: the measure loop journals
// epochs concurrently with the test's assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForSession polls the server until the instance's summary satisfies ok.
func waitForSession(t *testing.T, srv *Server, instance string, ok func(core.SessionInfo) bool) core.SessionInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, info := range srv.Sessions() {
			if info.Instance == instance && ok(info) {
				return info
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never reached the expected state: %+v", instance, srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerWarmRestart is the end-to-end warm-restart contract: a client
// that taught the RM its operating points reconnects after an RM restart on
// the same state directory and finds its table and exploration stage back —
// no re-learning.
func TestServerWarmRestart(t *testing.T) {
	plat := platform.RaptorLake()
	stateDir := filepath.Join(t.TempDir(), "state")
	prof, err := workload.ByName(workload.IntelApps(), "ep.C")
	if err != nil {
		t.Fatal(err)
	}
	desc := offlineDescription(t, plat, prof)

	srv1, sock1 := startServer(t, ServerConfig{
		Platform: plat,
		StateDir: stateDir,
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
	})
	if got := srv1.Generation(); got != 1 {
		t.Fatalf("first generation = %d, want 1", got)
	}
	c1, err := Dial(sock1, Registration{App: "ep.C", PID: 11, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.UploadDescription(bytes.NewReader(desc)); err != nil {
		t.Fatal(err)
	}
	if err := c1.NotifyPhase("solve"); err != nil {
		t.Fatal(err)
	}
	taught := waitForSession(t, srv1, "ep.C/11", func(info core.SessionInfo) bool {
		return info.Stage == explore.StageStable && info.Phase == "solve"
	})
	_ = c1.Close()
	if err := srv1.Close(); err != nil { // graceful: final snapshot
		t.Fatalf("Close: %v", err)
	}

	srv2, sock2 := startServer(t, ServerConfig{
		Platform: plat,
		StateDir: stateDir,
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
	})
	if got := srv2.Generation(); got != 2 {
		t.Fatalf("second generation = %d, want 2", got)
	}
	rec, ok := srv2.StoreRecovery()
	if !ok || rec.ColdStart || !rec.SnapshotLoaded {
		t.Fatalf("recovery = %+v, want warm snapshot load", rec)
	}
	// The reconnecting client neither uploads nor measures: everything must
	// come from the replayed state.
	c2, err := Dial(sock2, Registration{App: "ep.C", PID: 11, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resumed := waitForSession(t, srv2, "ep.C/11", func(info core.SessionInfo) bool {
		return info.Stage == explore.StageStable
	})
	if resumed.Measured < taught.Measured {
		t.Fatalf("resumed measured points = %d, want >= %d", resumed.Measured, taught.Measured)
	}
	// No phase assertion here: c1 exited cleanly, deregistering the session,
	// so its phase is rightly gone from the snapshot. Phase restoration
	// applies to *crashed* RMs whose sessions never deregistered — pinned by
	// the core-level warm-restart test and the harpd kill -9 chaos test.
}

// TestServerMaxSessions verifies over-cap registrations are rejected on the
// wire with the typed error's message and leave no state behind.
func TestServerMaxSessions(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	srv, sock := startServer(t, ServerConfig{MaxSessions: 1, Metrics: mt})
	c1, err := Dial(sock, Registration{App: "a", PID: 1, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, err = Dial(sock, Registration{App: "b", PID: 2, Adaptivity: Scalable})
	if !errors.Is(err, ErrRegistrationRejected) {
		t.Fatalf("over-cap Dial err = %v, want ErrRegistrationRejected", err)
	}
	if !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("rejection does not carry the admission error: %v", err)
	}
	if got := mt.SessionsRejected.Value(); got != 1 {
		t.Fatalf("harp_sessions_rejected_total = %d, want 1", got)
	}
	if n := len(srv.Sessions()); n != 1 {
		t.Fatalf("sessions after rejection = %d, want 1", n)
	}
	// Freeing the slot readmits.
	_ = c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(sock, Registration{App: "b", PID: 2, Adaptivity: Scalable})
		if err == nil {
			_ = c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseSnapshotAfterLastEpoch pins graceful-shutdown ordering at
// the server level: after Close, the journal's final epoch is the snapshot
// epoch — nothing was journalled after the state was captured — and a
// reopened store replays the learned table without touching the WAL.
func TestServerCloseSnapshotAfterLastEpoch(t *testing.T) {
	plat := platform.RaptorLake()
	stateDir := filepath.Join(t.TempDir(), "state")
	var jbuf syncBuffer
	prof, err := workload.ByName(workload.IntelApps(), "ep.C")
	if err != nil {
		t.Fatal(err)
	}

	srv, sock := startServer(t, ServerConfig{
		Platform: plat,
		StateDir: stateDir,
		Journal:  telemetry.NewJournal(&jbuf),
		Sampler:  fixedSampler{utility: 80, power: 20},
	})
	c, err := Dial(sock, Registration{App: "ep.C", PID: 3, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UploadDescription(bytes.NewReader(offlineDescription(t, plat, prof))); err != nil {
		t.Fatal(err)
	}
	waitForSession(t, srv, "ep.C/3", func(info core.SessionInfo) bool {
		return info.Measured > 0
	})
	closeWithin(t, srv, 5*time.Second)

	lines := strings.Split(strings.TrimSpace(jbuf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"trigger":"snapshot"`) {
		t.Fatalf("last journal epoch after Close is not the snapshot: %s", last)
	}

	st, err := store.Open(stateDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := st.Recovery()
	if !rec.SnapshotLoaded || rec.WALRecords != 0 {
		t.Fatalf("recovery after graceful close = %+v, want snapshot only", rec)
	}
	if st.RecoveredState().MeasuredPoints() == 0 {
		t.Fatal("graceful snapshot lost the learned table")
	}
}

// TestServerCloseRacesInFlightMeasure shuts the server down while the
// measure loop is actively feeding samples and a client is spamming utility
// reports — the shutdown path (final snapshot included) must be clean under
// the race detector and leave a loadable store.
func TestServerCloseRacesInFlightMeasure(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	srv, sock := startServer(t, ServerConfig{
		StateDir:     stateDir,
		Sampler:      fixedSampler{utility: 80, power: 20},
		MeasureEvery: time.Millisecond,
	})
	c, err := Dial(sock, Registration{App: "racer", PID: 5, Adaptivity: Scalable, OwnUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.ReportUtility(float64(i)); err != nil {
				return
			}
		}
	}()
	waitForSession(t, srv, "racer/5", func(info core.SessionInfo) bool {
		return info.Utility > 0
	})
	closeWithin(t, srv, 5*time.Second)
	close(stop)
	wg.Wait()

	st, err := store.Open(stateDir, store.Options{})
	if err != nil {
		t.Fatalf("store unusable after racy shutdown: %v", err)
	}
	defer st.Close()
	if st.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", st.Generation())
	}
}

// TestServerEnergySurvivesRestart pins the energy ledger's durability
// contract: cumulative fleet joules are exported with the state, recovered
// into a fresh ledger at warm restart, and only ever grow — the restart
// re-anchors integration instead of inventing energy for the downtime or
// resetting the account to zero.
func TestServerEnergySurvivesRestart(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	sampler := fixedSampler{utility: 80, power: 20}

	led1 := telemetry.NewEnergyLedger()
	srv1, sock1 := startServer(t, ServerConfig{
		StateDir:     stateDir,
		Sampler:      sampler,
		MeasureEvery: time.Millisecond,
		Energy:       led1,
	})
	c1, err := Dial(sock1, Registration{App: "joule", PID: 11, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv1.EnergyTotals().Joules == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no energy attributed despite a sampler feeding 20 W")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := srv1.EnergyTotals()
	// Conservation: the per-session rows plus the retired accumulator must
	// account for every fleet joule exactly (one lock guards both sides).
	var sum float64
	for _, se := range srv1.EnergySessions() {
		sum += se.Joules
	}
	if diff := sum + before.RetiredJoules - before.Joules; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy conservation violated: sessions %.12f + retired %.12f != fleet %.12f",
			sum, before.RetiredJoules, before.Joules)
	}
	closeWithin(t, srv1, 5*time.Second)

	led2 := telemetry.NewEnergyLedger()
	srv2, sock2 := startServer(t, ServerConfig{
		StateDir:     stateDir,
		Sampler:      sampler,
		MeasureEvery: time.Millisecond,
		Energy:       led2,
	})
	recovered := srv2.EnergyTotals()
	if recovered.Joules < before.Joules {
		t.Fatalf("fleet joules shrank across restart: %.6f -> %.6f", before.Joules, recovered.Joules)
	}
	c2, err := Dial(sock2, Registration{App: "joule", PID: 11, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for srv2.EnergyTotals().Joules <= recovered.Joules {
		if time.Now().After(deadline) {
			t.Fatalf("energy stopped accruing after restart (stuck at %.6f J)", recovered.Joules)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
