package harp

import (
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
)

// TestChaosLiveSockets drives auto-reconnect clients through a storm of
// connection-level faults — abrupt disconnects, read stalls, swallowed
// writes — against a liveness-enabled server, then asserts the system heals:
// every client holds a session again, the standing grants are disjoint, and
// the server shuts down cleanly. Run with -race; the chaos exercises every
// locking path of the server and client.
func TestChaosLiveSockets(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	srv, err := NewServer(ServerConfig{
		Platform:           platform.RaptorLake(),
		DisableExploration: true,
		MeasureEvery:       10 * time.Millisecond,
		WriteTimeout:       200 * time.Millisecond,
		Metrics:            mt,
		Liveness: core.LivenessPolicy{
			SuspectAfter:    50 * time.Millisecond,
			QuarantineAfter: 150 * time.Millisecond,
			ReapAfter:       400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "harp.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fln := faultsim.WrapListener(ln)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(fln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	waitSocket(t, sock)

	const nClients = 3
	type clientState struct {
		mu  sync.Mutex
		act Activation
	}
	states := make([]*clientState, nClients)
	clients := make([]*Client, nClients)
	for i := 0; i < nClients; i++ {
		st := &clientState{}
		states[i] = st
		c, err := Dial(sock, Registration{
			App:        fmt.Sprintf("chaos-%d", i),
			PID:        1000 + i,
			Adaptivity: Scalable,
			OnActivate: func(a Activation) {
				st.mu.Lock()
				st.act = a
				st.mu.Unlock()
			},
			Reconnect: ReconnectConfig{
				Enabled:        true,
				InitialBackoff: 10 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				Seed:           int64(i + 1),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	// The storm: seeded for a reproducible fault sequence. Victims are drawn
	// from the accept-order registry, so reconnected sessions get hit too.
	rng := rand.New(rand.NewSource(42))
	stormEnd := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(stormEnd) {
		conns := fln.Conns()
		if len(conns) > 0 {
			victim := conns[rng.Intn(len(conns))]
			switch rng.Intn(3) {
			case 0:
				_ = victim.Close() // abrupt disconnect, no exit message
			case 1:
				victim.StallReads(80 * time.Millisecond)
			case 2:
				victim.DropWrites(true)
				time.AfterFunc(100*time.Millisecond, func() { victim.DropWrites(false) })
			}
		}
		time.Sleep(time.Duration(30+rng.Intn(50)) * time.Millisecond)
	}

	// Healing: every client must hold a live session again and the standing
	// grants must be disjoint (polled, since pushes are asynchronous).
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := len(srv.Sessions()) == nClients
		if healthy {
			for _, c := range clients {
				select {
				case <-c.Done():
					t.Fatalf("client terminated during chaos: %v", c.Err())
				default:
				}
			}
			used := make(map[int]int)
			disjoint := true
			for i, st := range states {
				st.mu.Lock()
				act := st.act
				st.mu.Unlock()
				if len(act.Cores) == 0 {
					disjoint = false // not re-activated yet
					break
				}
				if act.CoAllocated {
					continue
				}
				for _, g := range act.Cores {
					if _, taken := used[g.Core]; taken {
						disjoint = false
					}
					used[g.Core] = i
				}
			}
			if disjoint {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("system did not heal: %d sessions, reaped=%d reconnects=%d",
				len(srv.Sessions()), mt.SessionsReaped.Value(), mt.Reconnects.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The storm must actually have exercised the resilience paths.
	if mt.SessionsReaped.Value() == 0 && mt.Reconnects.Value() == 0 {
		t.Error("chaos storm injected no effective faults")
	}
}
