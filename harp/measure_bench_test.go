package harp

import (
	"fmt"
	"io"
	"testing"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// newMeasureServer builds a server with registered stable sessions but no
// network: measureOnce can then be driven directly, isolating the 50 ms hot
// path. Exploration is disabled so measurements hit the stable-stage branch
// (the steady state a long-running deployment spends its time in).
func newMeasureServer(tb testing.TB, cfg ServerConfig) *Server {
	tb.Helper()
	cfg.Platform = platform.RaptorLake()
	cfg.DisableExploration = true
	cfg.Sampler = fixedSampler{utility: 120, power: 35}
	srv, err := NewServer(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		app := fmt.Sprintf("app%d", i)
		instance := fmt.Sprintf("%s/%d", app, i+1)
		srv.sessions[instance] = &serverSession{instance: instance, pid: i + 1}
		if err := srv.mgr.Register(instance, app, workload.Scalable, false); err != nil {
			tb.Fatal(err)
		}
	}
	return srv
}

// TestMeasureOnceZeroAllocsWhenDisabled pins the zero-cost-when-disabled
// contract: with no tracer/metrics/journal configured, the measure tick must
// not allocate at all. The run count stays below the reallocation cadence
// (100 stable measurements) so the periodic allocator run — which legitimately
// allocates — stays out of the measurement.
func TestMeasureOnceZeroAllocsWhenDisabled(t *testing.T) {
	srv := newMeasureServer(t, ServerConfig{})
	srv.measureOnce() // warm scratch state
	allocs := testing.AllocsPerRun(40, srv.measureOnce)
	if allocs != 0 {
		t.Errorf("measureOnce with telemetry disabled allocates %v/op, want 0", allocs)
	}
}

func BenchmarkMeasureOnce(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		srv := newMeasureServer(b, ServerConfig{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.measureOnce()
		}
	})
	b.Run("enabled", func(b *testing.B) {
		srv := newMeasureServer(b, ServerConfig{
			Tracer:  telemetry.NewTracer(0),
			Metrics: telemetry.NewMetrics(telemetry.NewRegistry()),
			Journal: telemetry.NewJournal(io.Discard),
			Energy:  telemetry.NewEnergyLedger(),
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.measureOnce()
		}
	})
}
