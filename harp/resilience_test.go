package harp

import (
	"bytes"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/proto"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// rawRegister opens a bare protocol connection and registers, bypassing the
// Client so the test controls (or withholds) every subsequent message.
func rawRegister(t *testing.T, sock, app string, pid int) net.Conn {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Write(conn, proto.MsgRegister, proto.Register{
		PID: pid, App: app, Adaptivity: "static",
	}); err != nil {
		t.Fatal(err)
	}
	env, err := proto.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	var ack proto.RegisterAck
	if err := proto.DecodeBody(env, proto.MsgRegisterAck, &ack); err != nil || !ack.OK {
		t.Fatalf("registration rejected: %+v (%v)", ack, err)
	}
	return conn
}

// A client that dies without Close() — here, a connection that simply goes
// silent while staying open, so the reader never sees EOF — must be
// collected by the liveness reaper, passing through quarantine on the way.
func TestReaperCollectsSilentClient(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	srv, sock := startServer(t, ServerConfig{
		MeasureEvery: 10 * time.Millisecond,
		Metrics:      mt,
		Liveness: core.LivenessPolicy{
			SuspectAfter:    30 * time.Millisecond,
			QuarantineAfter: 60 * time.Millisecond,
			ReapAfter:       300 * time.Millisecond,
		},
	})
	conn := rawRegister(t, sock, "silent", 100)
	defer conn.Close() // stays open for the whole test: EOF never fires

	if got := len(srv.Sessions()); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(srv.Sessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent session never reaped: %+v", srv.Sessions())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := mt.SessionsReaped.Value(); got != 1 {
		t.Errorf("sessions reaped = %d, want 1", got)
	}
	if got := mt.SessionsQuarantined.Value(); got < 1 {
		t.Errorf("session never quarantined before the reap (counter = %d)", got)
	}
	if got := mt.SessionsLive.Value(); got != 0 {
		t.Errorf("live gauge = %v, want 0", got)
	}
}

// An idle but healthy client survives the reaper: the RM's liveness ping is
// answered by libharp's automatic pong, refreshing the silence clock.
func TestIdleClientSurvivesViaHeartbeat(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	srv, sock := startServer(t, ServerConfig{
		MeasureEvery: 10 * time.Millisecond,
		Metrics:      mt,
		Liveness: core.LivenessPolicy{
			SuspectAfter:    50 * time.Millisecond,
			QuarantineAfter: 300 * time.Millisecond,
			ReapAfter:       time.Second,
		},
	})
	client, err := Dial(sock, Registration{App: "idle", PID: 101, Adaptivity: Static})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Long enough for several suspect → ping → pong → readmit cycles.
	time.Sleep(500 * time.Millisecond)
	if got := len(srv.Sessions()); got != 1 {
		t.Fatalf("idle client lost its session: %d sessions", got)
	}
	if got := mt.SessionsReaped.Value(); got != 0 {
		t.Errorf("idle client reaped %d times", got)
	}
}

// A failed write (decision push, utility poll or ping) marks the session
// suspect immediately and three strikes reap it ahead of the silence
// deadline — the regression was measureOnce dropping the poll error on the
// floor. net.Pipe makes the write failure deterministic: the reader half is
// closed mid-"poll" and the very next write errors out.
func TestWriteFailureEscalatesToReap(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	srv, err := NewServer(ServerConfig{
		Platform:           platform.RaptorLake(),
		DisableExploration: true,
		Metrics:            mt,
		Liveness:           core.DefaultLivenessPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peer, rmSide := net.Pipe()
	const instance = "piped/1"
	sess := &serverSession{instance: instance, pid: 1, conn: rmSide, lastSeen: time.Now()}
	srv.mu.Lock()
	srv.sessions[instance] = sess
	if err := srv.mgr.Register(instance, "piped", workload.Static, false); err != nil {
		srv.mu.Unlock()
		t.Fatal(err)
	}
	srv.mu.Unlock()
	sess.mu.Lock()
	sess.ready = true
	sess.mu.Unlock()

	peer.Close() // the client dies mid-poll: the next write must fail

	sess.mu.Lock()
	pollErr := srv.writeLocked(sess, proto.MsgUtilityRequest, nil)
	fails, forced := sess.probeFails, sess.forceSuspect
	sess.mu.Unlock()
	if pollErr == nil {
		t.Fatal("write to a dead peer succeeded")
	}
	if fails != 1 || !forced {
		t.Fatalf("poll failure not recorded: probeFails=%d forceSuspect=%v", fails, forced)
	}
	if got := mt.WriteTimeouts.Value(); got != 1 {
		t.Errorf("write-timeout counter = %d, want 1", got)
	}

	// The first sweep pins the session suspect ("write-failed") and its ping
	// probe also fails; within maxProbeFailures sweeps the session is reaped
	// even though its silence deadlines are nowhere near due.
	for i := 0; i < maxProbeFailures && len(srv.Sessions()) > 0; i++ {
		srv.livenessSweep()
	}
	if got := len(srv.Sessions()); got != 0 {
		t.Fatalf("broken-pipe session survived %d sweeps", maxProbeFailures)
	}
	if got := mt.SessionsReaped.Value(); got != 1 {
		t.Errorf("sessions reaped = %d, want 1", got)
	}
}

// Satellite regression: Close on a session whose RM is already gone must
// not surface the failed MsgExit write as an error — a graceful close of a
// dead session is still a success.
func TestCloseAfterServerGone(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: platform.RaptorLake(), DisableExploration: true})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "harp.sock")
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(sock) }()
	waitSocket(t, sock)

	client, err := Dial(sock, Registration{App: "orphan", PID: 102, Adaptivity: Static})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	select {
	case <-client.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client did not notice the server going away")
	}
	if client.Err() == nil {
		t.Error("Err() = nil for a session the RM abandoned")
	}
	if err := client.Close(); err != nil {
		t.Errorf("Close after server shutdown = %v, want nil", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// waitSocket blocks until the RM socket accepts connections.
func waitSocket(t *testing.T, sock string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Acceptance: an auto-reconnect client resumes its session across a full
// server restart — re-registering, re-uploading its operating-point table
// and replaying its phase — with user code seeing nothing but a fresh
// Activation.
func TestReconnectAcrossServerRestart(t *testing.T) {
	plat := platform.RaptorLake()
	sock := filepath.Join(t.TempDir(), "harp.sock")
	newRM := func() (*Server, chan error) {
		srv, err := NewServer(ServerConfig{Platform: plat, DisableExploration: true})
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe(sock) }()
		waitSocket(t, sock)
		return srv, errc
	}

	srv1, errc1 := newRM()
	var activations int32
	client, err := Dial(sock, Registration{
		App:        "mg.C",
		PID:        21,
		Adaptivity: Scalable,
		OnActivate: func(Activation) { atomic.AddInt32(&activations, 1) },
		Reconnect: ReconnectConfig{
			Enabled:        true,
			InitialBackoff: 20 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			Seed:           1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	prof, err := workload.ByName(workload.IntelApps(), "mg.C")
	if err != nil {
		t.Fatal(err)
	}
	desc := offlineDescription(t, plat, prof)
	if err := client.UploadDescription(bytes.NewReader(desc)); err != nil {
		t.Fatal(err)
	}
	if err := client.NotifyPhase("steady"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		infos := srv1.Sessions()
		if len(infos) == 1 && infos[0].Phase == "steady" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session state never landed on the first RM: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}
	preRestart := atomic.LoadInt32(&activations)
	if preRestart == 0 {
		t.Fatal("no activation before the restart")
	}

	// Restart the RM on the same socket.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc1; err != nil {
		t.Fatal(err)
	}
	srv2, errc2 := newRM()
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Error(err)
		}
		if err := <-errc2; err != nil {
			t.Error(err)
		}
	}()

	// The client re-registers and replays its table and phase on its own.
	deadline = time.Now().Add(5 * time.Second)
	for {
		infos := srv2.Sessions()
		if len(infos) == 1 && infos[0].Instance == "mg.C/21" && infos[0].Phase == "steady" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session did not resume on the restarted RM: %+v", infos)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tbl, err := srv2.TableSnapshot("mg.C/21")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MeasuredCount() == 0 {
		t.Error("operating-point table not re-uploaded after reconnect")
	}

	// User code only notices a fresh Activation — the session never ended.
	deadline = time.Now().Add(2 * time.Second)
	for atomic.LoadInt32(&activations) <= preRestart {
		if time.Now().After(deadline) {
			t.Fatal("no activation after the reconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-client.Done():
		t.Fatalf("client terminated across the restart: %v", client.Err())
	default:
	}
	if err := client.ReportUtility(1); err != nil {
		t.Errorf("resumed client cannot report: %v", err)
	}
}
