package harp

import (
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/proto"
)

// fakeRM accepts one client connection, acks its registration, and hands the
// raw connection to drive for scripted server behaviour.
func fakeRM(t *testing.T, drive func(conn net.Conn)) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "fake.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		env, err := proto.Read(conn)
		if err != nil {
			return
		}
		var reg proto.Register
		if err := proto.DecodeBody(env, proto.MsgRegister, &reg); err != nil {
			return
		}
		if err := proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{
			SessionID: "fake/1", OK: true,
		}); err != nil {
			return
		}
		drive(conn)
	}()
	return sock
}

func TestClientSurvivesMalformedActivation(t *testing.T) {
	done := make(chan struct{})
	sock := fakeRM(t, func(conn net.Conn) {
		// A body that is valid JSON but not an Activate object must be
		// skipped, not kill the read loop.
		if err := proto.Write(conn, proto.MsgActivate, json.RawMessage(`"garbage"`)); err != nil {
			t.Errorf("write malformed activate: %v", err)
		}
		if err := proto.Write(conn, proto.MsgActivate, proto.Activate{
			Seq: 7, VectorKey: "P2", Threads: 2,
			Cores: []proto.CoreGrant{{Core: 0, Threads: 1}},
		}); err != nil {
			t.Errorf("write activate: %v", err)
		}
		<-done // keep the connection open until the test is finished
	})
	defer close(done)

	acts := make(chan Activation, 2)
	c, err := Dial(sock, Registration{
		App: "fake", PID: 1, Adaptivity: Scalable,
		OnActivate: func(a Activation) { acts <- a },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	select {
	case a := <-acts:
		if a.Seq != 7 || a.VectorKey != "P2" {
			t.Fatalf("activation after malformed push = %+v", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no activation delivered after malformed push")
	}
	select {
	case <-c.Done():
		t.Fatal("malformed push killed the session")
	default:
	}
}

func TestClientRejectedRegistration(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "reject.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := proto.Read(conn); err != nil {
			return
		}
		_ = proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{OK: false, Error: "no quota"})
	}()
	if _, err := Dial(sock, Registration{App: "x", PID: 1, Adaptivity: Static}); !errors.Is(err, ErrRegistrationRejected) {
		t.Fatalf("Dial = %v, want ErrRegistrationRejected", err)
	}
}

func TestClientServerClosesMidSession(t *testing.T) {
	srv, sock := startServer(t, ServerConfig{Sampler: fixedSampler{utility: 80, power: 20}})
	c, err := Dial(sock, Registration{App: "midclose", PID: 1, Adaptivity: Scalable, OwnUtility: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReportUtility(10); err != nil {
		t.Fatalf("ReportUtility before close: %v", err)
	}

	closeWithin(t, srv, 5*time.Second)

	// The force-closed connection must surface as a closed Done channel …
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed after server shutdown")
	}
	// … and as write errors from then on.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.ReportUtility(11); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ReportUtility kept succeeding on a dead session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = c.Close() // must not hang or panic on an already-dead session
}

func TestClientCloseSemantics(t *testing.T) {
	_, sock := startServer(t, ServerConfig{Sampler: fixedSampler{utility: 80, power: 20}})
	c, err := Dial(sock, Registration{App: "closer", PID: 2, Adaptivity: Scalable})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
		t.Fatal("Done closed before Close")
	default:
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed by Close")
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
}
