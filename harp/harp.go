// Package harp is the public API of the HARP middleware: a resource-manager
// server (the HARP RM of §4) and a lightweight client library (libharp,
// §4.1) that communicate over Unix domain sockets with the two-way protocol
// of Fig. 3 — applications register, optionally upload operating-point
// descriptions and utility metrics, and receive allocation decisions they
// adapt to.
//
// The package contains no simulation: it is the middleware a real deployment
// would run, with measurement acquisition abstracted behind the Sampler
// interface (Linux perf + RAPL in production, the simulator in this
// repository's experiments — see package harpsim).
package harp

import (
	"fmt"

	"github.com/harp-rm/harp/internal/workload"
)

// Adaptivity is an application's adaptivity class (§4.1.3).
type Adaptivity string

// Adaptivity classes.
const (
	// Static applications cannot adapt; HARP only restricts their core set.
	Static Adaptivity = "static"
	// Scalable applications can change their parallelisation degree
	// (OpenMP, TBB, the TensorFlow wrapper).
	Scalable Adaptivity = "scalable"
	// Custom applications register their own adaptation callbacks (KPNs,
	// algorithm switching).
	Custom Adaptivity = "custom"
)

// Valid reports whether the adaptivity class is known.
func (a Adaptivity) Valid() bool {
	switch a {
	case Static, Scalable, Custom:
		return true
	default:
		return false
	}
}

// internal converts to the workload enum used by the resource manager.
func (a Adaptivity) internal() (workload.Adaptivity, error) {
	switch a {
	case Static:
		return workload.Static, nil
	case Scalable:
		return workload.Scalable, nil
	case Custom:
		return workload.Custom, nil
	default:
		return 0, fmt.Errorf("harp: unknown adaptivity %q", a)
	}
}

// CoreGrant assigns one physical core with a number of hardware threads.
type CoreGrant struct {
	// Core is the global physical core index.
	Core int `json:"core"`
	// Threads is how many of the core's hardware threads may be used.
	Threads int `json:"threads"`
}

// Activation is an allocation decision pushed to an application (§4.1.1
// step 3). The application should restrict itself to the granted cores and,
// if it can, match its parallelism to Threads.
type Activation struct {
	// Seq orders activations.
	Seq int `json:"seq"`
	// VectorKey is the canonical form of the extended resource vector, e.g.
	// "1,2|4" for 1 P-core on one hardware thread, 2 on both, 4 E-cores.
	VectorKey string `json:"vectorKey"`
	// Threads is the suggested parallelisation degree (0 = unchanged).
	Threads int `json:"threads"`
	// Cores are the concrete cores granted.
	Cores []CoreGrant `json:"cores"`
	// CoAllocated warns that the cores are time-shared with other
	// applications (the machine is over-committed).
	CoAllocated bool `json:"coAllocated,omitempty"`
}
