package harp

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
)

// closeWithin fails the test if Close does not return within the deadline —
// the historical failure mode was Close hanging on wg.Wait (handlers blocked
// in reads) or on <-done (measure loop never started).
func closeWithin(t *testing.T, srv *Server, d time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(d):
		t.Fatal("Close did not return")
	}
}

func TestCloseBeforeServe(t *testing.T) {
	srv, err := NewServer(ServerConfig{Platform: platform.RaptorLake()})
	if err != nil {
		t.Fatal(err)
	}
	closeWithin(t, srv, 2*time.Second)
	// Serve on a closed server must refuse rather than hang or leak the
	// listener.
	sock := filepath.Join(t.TempDir(), "harp.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	if _, err := net.Dial("unix", sock); err == nil {
		t.Error("refused Serve left the listener open")
	}
}

func TestDoubleServeRejected(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})
	ln, err := net.Listen("unix", filepath.Join(t.TempDir(), "second.sock"))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("second Serve succeeded")
	}
}

func TestDoubleCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})
	closeWithin(t, srv, 2*time.Second)
	closeWithin(t, srv, 2*time.Second)
}

// TestCloseUnderChurn is the shutdown regression test: repeatedly open a
// server, connect live sessions that keep reporting, and close the server
// mid-traffic. Close must terminate (force-closing session connections so
// handlers unblock) without racing in-flight measureOnce ticks; run with
// -race to check the latter.
func TestCloseUnderChurn(t *testing.T) {
	for round := 0; round < 4; round++ {
		srv, err := NewServer(ServerConfig{
			Platform:     platform.RaptorLake(),
			Sampler:      fixedSampler{utility: 90, power: 25},
			MeasureEvery: time.Millisecond, // hammer the measure loop
		})
		if err != nil {
			t.Fatal(err)
		}
		sock := filepath.Join(t.TempDir(), fmt.Sprintf("churn%d.sock", round))
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe(sock) }()
		waitForSocket(t, sock)

		var wg sync.WaitGroup
		clients := make([]*Client, 3)
		for i := range clients {
			c, err := Dial(sock, Registration{
				App: fmt.Sprintf("churn%d", i), PID: 1000*round + i + 1,
				Adaptivity: Scalable, OwnUtility: true,
			})
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, i, err)
			}
			clients[i] = c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-c.Done():
						return
					default:
						_ = c.ReportUtility(42)
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
		}
		time.Sleep(5 * time.Millisecond) // let measure ticks interleave

		closeWithin(t, srv, 5*time.Second)
		if err := <-errc; err != nil {
			t.Fatalf("round %d Serve: %v", round, err)
		}
		for i, c := range clients {
			select {
			case <-c.Done():
			case <-time.After(2 * time.Second):
				t.Fatalf("round %d client %d not released by Close", round, i)
			}
			_ = c.Close()
		}
		wg.Wait()
	}
}

func waitForSocket(t *testing.T, sock string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
