// Package adapt provides libharp's built-in adapters for common programming
// models (§4.1.3–§4.1.4): small composable callbacks that translate an RM
// activation into runtime-specific knob updates, the way the paper's libharp
// hooks GOMP_parallel for OpenMP, the task-arena size for Intel TBB, and the
// thread-pool size of the TensorFlow Lite wrapper.
package adapt

import "github.com/harp-rm/harp/harp"

// Scalable matches a runtime's worker count to the granted hardware threads
// — the malleability knob libharp adds to moldable OpenMP/TBB/TensorFlow
// applications. apply receives the new parallelisation degree; it is not
// called for activations that leave the degree unchanged (Threads = 0).
func Scalable(apply func(threads int)) func(harp.Activation) {
	return func(a harp.Activation) {
		if a.Threads > 0 {
			apply(a.Threads)
		}
	}
}

// CoreSet passes the granted physical core list to apply — the affinity
// restriction every adaptivity class supports, including static
// applications (§4.1.3).
func CoreSet(apply func(cores []int)) func(harp.Activation) {
	return func(a harp.Activation) {
		cores := make([]int, 0, len(a.Cores))
		for _, g := range a.Cores {
			cores = append(cores, g.Core)
		}
		apply(cores)
	}
}

// CoAllocationWarning invokes apply with true while the application is
// co-allocated (time-sharing cores with others) and false when it regains
// exclusive resources — applications may e.g. disable busy-waiting then.
func CoAllocationWarning(apply func(coAllocated bool)) func(harp.Activation) {
	return func(a harp.Activation) {
		apply(a.CoAllocated)
	}
}

// FineGrained resolves the activation against the application's fine-grained
// configurations (§4.1.2): onPoint receives the matching point, onCoarse is
// the fallback when no fine-grained point exists for the activated vector.
// Invalid pins are treated as "no point" after reporting through onError
// (which may be nil).
func FineGrained(set harp.FineGrainedSet, onPoint func(harp.FineGrainedPoint), onCoarse func(harp.Activation), onError func(error)) func(harp.Activation) {
	return func(a harp.Activation) {
		p, ok, err := set.Select(a)
		if err != nil {
			if onError != nil {
				onError(err)
			}
			ok = false
		}
		if ok {
			if onPoint != nil {
				onPoint(p)
			}
			return
		}
		if onCoarse != nil {
			onCoarse(a)
		}
	}
}

// Combined chains adapters: every callback sees every activation, in order.
func Combined(fns ...func(harp.Activation)) func(harp.Activation) {
	return func(a harp.Activation) {
		for _, fn := range fns {
			if fn != nil {
				fn(a)
			}
		}
	}
}
