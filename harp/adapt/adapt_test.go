package adapt

import (
	"strings"
	"testing"

	"github.com/harp-rm/harp/harp"
)

func activation() harp.Activation {
	return harp.Activation{
		Seq:       3,
		VectorKey: "1,1|2",
		Threads:   5,
		Cores: []harp.CoreGrant{
			{Core: 0, Threads: 1},
			{Core: 1, Threads: 2},
			{Core: 8, Threads: 1},
			{Core: 9, Threads: 1},
		},
	}
}

func TestScalable(t *testing.T) {
	var got []int
	fn := Scalable(func(n int) { got = append(got, n) })
	fn(activation())
	a := activation()
	a.Threads = 0 // unchanged → no call
	fn(a)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("applied threads = %v, want [5]", got)
	}
}

func TestCoreSet(t *testing.T) {
	var got []int
	CoreSet(func(cores []int) { got = cores })(activation())
	want := []int{0, 1, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("cores = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cores = %v, want %v", got, want)
		}
	}
}

func TestCoAllocationWarning(t *testing.T) {
	var states []bool
	fn := CoAllocationWarning(func(c bool) { states = append(states, c) })
	a := activation()
	a.CoAllocated = true
	fn(a)
	a.CoAllocated = false
	fn(a)
	if len(states) != 2 || !states[0] || states[1] {
		t.Fatalf("states = %v, want [true false]", states)
	}
}

func TestFineGrainedDispatch(t *testing.T) {
	set := harp.FineGrainedSet{
		"1,1|2": {
			VectorKey: "1,1|2",
			Pins:      []harp.ThreadPin{{Thread: 0, Grant: 1, HWThread: 1}},
			Knobs:     map[string]float64{"region-width": 4},
		},
	}
	var fine *harp.FineGrainedPoint
	var coarse *harp.Activation
	fn := FineGrained(set,
		func(p harp.FineGrainedPoint) { fine = &p },
		func(a harp.Activation) { coarse = &a },
		nil)

	fn(activation())
	if fine == nil || fine.Knobs["region-width"] != 4 {
		t.Fatalf("fine-grained point not dispatched: %+v", fine)
	}
	if coarse != nil {
		t.Fatal("coarse fallback fired despite a matching point")
	}

	fine = nil
	other := activation()
	other.VectorKey = "0,0|4"
	fn(other)
	if fine != nil || coarse == nil {
		t.Fatalf("coarse fallback not taken for unknown vector")
	}
}

func TestFineGrainedInvalidPinsFallBack(t *testing.T) {
	set := harp.FineGrainedSet{
		"1,1|2": {
			VectorKey: "1,1|2",
			Pins:      []harp.ThreadPin{{Thread: 0, Grant: 99, HWThread: 0}},
		},
	}
	var gotErr error
	var coarse bool
	fn := FineGrained(set, nil, func(harp.Activation) { coarse = true }, func(err error) { gotErr = err })
	fn(activation())
	if gotErr == nil || !coarse {
		t.Fatalf("invalid pins: err=%v coarse=%v, want error + coarse fallback", gotErr, coarse)
	}
}

func TestCombined(t *testing.T) {
	var order []string
	fn := Combined(
		func(harp.Activation) { order = append(order, "a") },
		nil,
		func(harp.Activation) { order = append(order, "b") },
	)
	fn(activation())
	if strings.Join(order, "") != "ab" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestFineGrainedSelectValidation(t *testing.T) {
	a := activation()
	tests := []struct {
		name string
		pin  harp.ThreadPin
	}{
		{"negative thread", harp.ThreadPin{Thread: -1}},
		{"grant out of range", harp.ThreadPin{Thread: 0, Grant: 4}},
		{"hw thread out of range", harp.ThreadPin{Thread: 0, Grant: 0, HWThread: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set := harp.FineGrainedSet{a.VectorKey: {VectorKey: a.VectorKey, Pins: []harp.ThreadPin{tt.pin}}}
			if _, _, err := set.Select(a); err == nil {
				t.Fatal("invalid pin accepted")
			}
		})
	}
	// Valid pin on the SMT core's second hardware thread.
	set := harp.FineGrainedSet{a.VectorKey: {
		VectorKey: a.VectorKey,
		Pins:      []harp.ThreadPin{{Thread: 2, Grant: 1, HWThread: 1}},
	}}
	if _, ok, err := set.Select(a); err != nil || !ok {
		t.Fatalf("valid pin rejected: ok=%v err=%v", ok, err)
	}
}

func TestLoadFineGrained(t *testing.T) {
	good := `[{"vectorKey":"1,1|2","pins":[{"thread":0,"grant":0,"hwThread":0}],"knobs":{"w":2}}]`
	set, err := harp.LoadFineGrained(strings.NewReader(good))
	if err != nil {
		t.Fatalf("LoadFineGrained: %v", err)
	}
	if len(set) != 1 || set["1,1|2"].Knobs["w"] != 2 {
		t.Fatalf("set = %+v", set)
	}
	for _, bad := range []string{
		`nope`,
		`[{"pins":[]}]`,                         // missing vector key
		`[{"vectorKey":"a"},{"vectorKey":"a"}]`, // duplicate
		`[{"vectorKey":"a","bogus":1}]`,         // unknown field
	} {
		if _, err := harp.LoadFineGrained(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadFineGrained(%q) accepted", bad)
		}
	}
}
