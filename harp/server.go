package harp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/proto"
	"github.com/harp-rm/harp/internal/telemetry"
)

// DefaultMeasureEvery is the monitoring cadence (§5.3: 50 ms).
const DefaultMeasureEvery = 50 * time.Millisecond

// Sampler supplies per-application utility and power measurements for
// sessions that do not report their own utility. A production deployment
// backs this with Linux perf (IPS) and RAPL-based attribution; tests and
// experiments back it with the simulator.
type Sampler interface {
	// Sample returns the application's current utility (e.g. IPS) and the
	// power attributed to it, identified by the PID it registered with.
	Sample(pid int) (utility, power float64, err error)
}

// ServerConfig configures a resource-manager server.
type ServerConfig struct {
	// Platform is the hardware description (required). Deployments load it
	// from the description file in ConfigDir; embedders may pass one of the
	// built-ins via LoadPlatform.
	Platform *platform.Platform
	// ConfigDir optionally points at a /etc/harp-style directory: a
	// hardware.json description and an opoints/ directory of application
	// description files (§4.3).
	ConfigDir string
	// DisableExploration turns off online exploration (mandatory on
	// platforms without simultaneous PMU access).
	DisableExploration bool
	// Sampler supplies measurements; nil means only self-reported utility
	// drives learning (power-less sessions never leave the initial stage,
	// so offline tables become the only knowledge source).
	Sampler Sampler
	// MeasureEvery overrides the monitoring cadence (0 = 50 ms).
	MeasureEvery time.Duration
	// Explore tunes the runtime exploration engine.
	Explore explore.Config
	// Tracer receives structured adaptation-loop events (nil disables
	// tracing). Timestamps are wall time since server creation.
	Tracer *telemetry.Tracer
	// Journal records one JSONL epoch per decision batch (nil disables).
	Journal *telemetry.Journal
	// Metrics receives the adaptation-loop instruments, including the
	// allocation-latency and measure-loop-jitter histograms (nil disables).
	Metrics *telemetry.Metrics
}

// LoadPlatform resolves a platform: a built-in name ("intel", "odroid", …)
// or a path to a hardware description file.
func LoadPlatform(nameOrPath string) (*platform.Platform, error) {
	if p := platform.Builtin(nameOrPath); p != nil {
		return p, nil
	}
	return platform.LoadFile(nameOrPath)
}

// serverSession tracks one connected application.
type serverSession struct {
	instance string
	pid      int
	own      bool

	mu          sync.Mutex // guards conn writes
	conn        net.Conn
	lastUtility float64
	hasUtility  bool
	lastReport  time.Time

	// Decisions pushed before the registration ack has been written are
	// buffered so the client always sees the ack first.
	ready   bool
	pending *proto.Activate
}

// Server is the HARP resource manager daemon: it accepts libharp
// registrations on a Unix socket, runs the allocation and exploration logic,
// and pushes activation decisions back to the applications.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	mgr      *core.Manager
	sessions map[string]*serverSession

	ln      net.Listener
	conns   map[net.Conn]struct{}
	stop    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closed  bool
	serving bool
}

// NewServer creates a server. The configuration directory, when given, is
// read once at startup.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Platform == nil {
		return nil, errors.New("harp: server config without platform")
	}
	if cfg.MeasureEvery == 0 {
		cfg.MeasureEvery = DefaultMeasureEvery
	}
	var offline map[string]*opoint.Table
	if cfg.ConfigDir != "" {
		var err error
		offline, err = opoint.LoadDir(filepath.Join(cfg.ConfigDir, "opoints"))
		if err != nil {
			return nil, err
		}
		for app, tbl := range offline {
			if err := tbl.Validate(cfg.Platform); err != nil {
				return nil, fmt.Errorf("harp: description for %s: %w", app, err)
			}
		}
	}
	start := time.Now()
	mgr, err := core.NewManager(core.Config{
		Platform:           cfg.Platform,
		Explore:            cfg.Explore,
		OfflineTables:      offline,
		DisableExploration: cfg.DisableExploration,
		Tracer:             cfg.Tracer,
		Journal:            cfg.Journal,
		Metrics:            cfg.Metrics,
		LatencyClock:       func() time.Duration { return time.Since(start) },
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		mgr:      mgr,
		sessions: make(map[string]*serverSession),
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	mgr.OnDecision(s.pushDecision)
	return s, nil
}

// ListenAndServe binds the Unix socket at path and serves until Close. A
// stale socket file is removed first.
func (s *Server) ListenAndServe(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("harp: remove stale socket: %w", err)
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return fmt.Errorf("harp: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("harp: server closed")
	}
	if s.serving {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("harp: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.mu.Unlock()

	go s.measureLoop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return fmt.Errorf("harp: accept: %w", err)
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue // Accept will fail next; the closed listener ends the loop
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// Close shuts the server down and waits for the measure loop and all
// connection handlers to finish. Session connections are force-closed so
// handlers blocked in reads terminate; Close before (or without) Serve
// returns immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	serving := s.serving
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.stop)
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	if serving {
		<-s.done
	}
	return nil
}

// Sessions returns the registered sessions' summaries (for harpctl).
func (s *Server) Sessions() []core.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.Sessions()
}

// TableSnapshot returns a session's operating-point table (for harpctl).
func (s *Server) TableSnapshot(instance string) (*opoint.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.Table(instance)
}

// measureLoop is the 50 ms monitoring cadence.
func (s *Server) measureLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.MeasureEvery)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-ticker.C:
			if mt := s.cfg.Metrics; mt != nil {
				now := time.Now()
				jitter := now.Sub(last) - s.cfg.MeasureEvery
				if jitter < 0 {
					jitter = -jitter
				}
				mt.MeasureJitter.Observe(jitter.Seconds())
				last = now
			}
			s.measureOnce()
		case <-s.stop:
			return
		}
	}
}

func (s *Server) measureOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for instance, sess := range s.sessions {
		var utility, power float64
		var have bool
		if s.cfg.Sampler != nil {
			u, p, err := s.cfg.Sampler.Sample(sess.pid)
			if err == nil {
				utility, power, have = u, p, true
			}
		}
		if sess.own {
			sess.mu.Lock()
			if sess.hasUtility {
				utility = sess.lastUtility
				if s.cfg.Sampler == nil {
					have = power > 0
				} else {
					have = true
				}
			}
			stale := !sess.hasUtility || now.Sub(sess.lastReport) > 4*s.cfg.MeasureEvery
			var pollErr error
			if stale && sess.ready {
				// Periodically request the current utility from libharp
				// (§4.1.1 step 4) when the application has not pushed one
				// recently.
				pollErr = proto.Write(sess.conn, proto.MsgUtilityRequest, nil)
			}
			sess.mu.Unlock()
			_ = pollErr // broken connections are reaped by the reader
		}
		if !have {
			continue
		}
		_ = s.mgr.Measure(instance, utility, power)
	}
}

// handleConn runs one application session.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()

	env, err := proto.Read(conn)
	if err != nil {
		return
	}
	var reg proto.Register
	if err := proto.DecodeBody(env, proto.MsgRegister, &reg); err != nil {
		_ = proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{
			OK: false, Error: "first message must be a registration",
		})
		return
	}
	adaptivity, err := Adaptivity(reg.Adaptivity).internal()
	if err != nil {
		_ = proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{OK: false, Error: err.Error()})
		return
	}
	instance := fmt.Sprintf("%s/%d", reg.App, reg.PID)
	sess := &serverSession{instance: instance, pid: reg.PID, own: reg.OwnUtility, conn: conn}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.sessions[instance] = sess
	err = s.mgr.Register(instance, reg.App, adaptivity, reg.OwnUtility)
	if err != nil {
		delete(s.sessions, instance)
	}
	s.mu.Unlock()

	ack := proto.RegisterAck{SessionID: instance, OK: err == nil}
	if err != nil {
		ack.Error = err.Error()
	}
	sess.mu.Lock()
	writeErr := proto.Write(conn, proto.MsgRegisterAck, ack)
	if writeErr == nil && sess.pending != nil {
		writeErr = proto.Write(conn, proto.MsgActivate, *sess.pending)
		sess.pending = nil
	}
	sess.ready = true
	sess.mu.Unlock()
	if err != nil || writeErr != nil {
		return
	}

	defer func() {
		s.mu.Lock()
		delete(s.sessions, instance)
		_ = s.mgr.Deregister(instance)
		s.mu.Unlock()
	}()

	for {
		env, err := proto.Read(conn)
		if err != nil {
			return // EOF or broken peer: deregister via the deferred cleanup
		}
		switch env.Type {
		case proto.MsgOperatingPoints:
			var up proto.OperatingPoints
			if err := proto.DecodeBody(env, proto.MsgOperatingPoints, &up); err != nil || up.Table == nil {
				continue
			}
			s.mu.Lock()
			_ = s.mgr.UploadTable(instance, up.Table)
			s.mu.Unlock()
		case proto.MsgUtilityReport:
			var rep proto.UtilityReport
			if err := proto.DecodeBody(env, proto.MsgUtilityReport, &rep); err != nil {
				continue
			}
			sess.mu.Lock()
			sess.lastUtility = rep.Utility
			sess.hasUtility = true
			sess.lastReport = time.Now()
			sess.mu.Unlock()
		case proto.MsgPhaseChange:
			var pc proto.PhaseChange
			if err := proto.DecodeBody(env, proto.MsgPhaseChange, &pc); err != nil {
				continue
			}
			s.mu.Lock()
			_ = s.mgr.PhaseChange(instance, pc.Phase)
			s.mu.Unlock()
		case proto.MsgExit:
			return
		default:
			// Unknown message types are ignored for forward compatibility.
		}
	}
}

// pushDecision relays a manager decision to the session's connection.
// Called with s.mu held (all manager entry points hold it).
func (s *Server) pushDecision(d core.Decision) {
	sess, ok := s.sessions[d.Instance]
	if !ok {
		return
	}
	act := proto.Activate{
		Seq:         d.Seq,
		VectorKey:   d.Vector.Key(),
		Threads:     d.Threads,
		CoAllocated: d.CoAllocated,
	}
	for _, g := range d.Grants {
		act.Cores = append(act.Cores, proto.CoreGrant{Core: g.Core, Threads: g.Threads})
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.ready {
		sess.pending = &act
		return
	}
	if err := proto.Write(sess.conn, proto.MsgActivate, act); err != nil && !errors.Is(err, io.EOF) {
		// The reader goroutine will notice the broken connection and
		// deregister; nothing else to do here.
		return
	}
}
