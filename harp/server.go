package harp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/proto"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
)

// DefaultMeasureEvery is the monitoring cadence (§5.3: 50 ms).
const DefaultMeasureEvery = 50 * time.Millisecond

// DefaultWriteTimeout bounds one framed write to a session connection, so a
// stuck client cannot wedge the decision-push path.
const DefaultWriteTimeout = 2 * time.Second

// maxProbeFailures is how many consecutive failed writes (decision pushes,
// utility polls or liveness pings) reap a session ahead of its silence
// deadline: the connection is demonstrably broken, not merely quiet.
const maxProbeFailures = 3

// Sampler supplies per-application utility and power measurements for
// sessions that do not report their own utility. A production deployment
// backs this with Linux perf (IPS) and RAPL-based attribution; tests and
// experiments back it with the simulator.
type Sampler interface {
	// Sample returns the application's current utility (e.g. IPS) and the
	// power attributed to it, identified by the PID it registered with.
	Sample(pid int) (utility, power float64, err error)
}

// ServerConfig configures a resource-manager server.
type ServerConfig struct {
	// Platform is the hardware description (required). Deployments load it
	// from the description file in ConfigDir; embedders may pass one of the
	// built-ins via LoadPlatform.
	Platform *platform.Platform
	// ConfigDir optionally points at a /etc/harp-style directory: a
	// hardware.json description and an opoints/ directory of application
	// description files (§4.3).
	ConfigDir string
	// DisableExploration turns off online exploration (mandatory on
	// platforms without simultaneous PMU access).
	DisableExploration bool
	// Sampler supplies measurements; nil means only self-reported utility
	// drives learning (power-less sessions never leave the initial stage,
	// so offline tables become the only knowledge source).
	Sampler Sampler
	// MeasureEvery overrides the monitoring cadence (0 = 50 ms).
	MeasureEvery time.Duration
	// Explore tunes the runtime exploration engine.
	Explore explore.Config
	// Tracer receives structured adaptation-loop events (nil disables
	// tracing). Timestamps are wall time since server creation.
	Tracer *telemetry.Tracer
	// Journal records one JSONL epoch per decision batch (nil disables).
	Journal *telemetry.Journal
	// Metrics receives the adaptation-loop instruments, including the
	// allocation-latency and measure-loop-jitter histograms (nil disables).
	Metrics *telemetry.Metrics
	// Energy accumulates per-session and fleet joules from the measure loop
	// (nil disables energy accounting). The server rebinds the ledger's
	// clock to wall time since server creation — the same base as the
	// tracer — and persists it in the StateDir so joules survive restarts.
	Energy *telemetry.EnergyLedger
	// Liveness sets the silence deadlines for the suspect → quarantine →
	// reap escalation. The zero value disables liveness tracking: sessions
	// then end only on exit or reader EOF (the pre-resilience behaviour).
	// See core.DefaultLivenessPolicy for sensible deadlines.
	Liveness core.LivenessPolicy
	// WriteTimeout bounds each framed write to a session connection
	// (0 = DefaultWriteTimeout, negative = no deadline).
	WriteTimeout time.Duration
	// Allocator overrides the manager's MMKP solver (nil builds the default
	// Lagrangian allocator). Correctness tests inject failing solvers to
	// verify errors surface in the journal instead of becoming decisions.
	Allocator core.Allocator
	// StateDir, when non-empty, makes the server durable: learned state is
	// recovered from the directory's snapshot + WAL at startup (warm
	// restart), every mutating operation is WAL-logged, and Close writes a
	// final snapshot. Empty disables persistence (the pre-durability
	// behaviour). See RESILIENCE.md, "Warm restart".
	StateDir string
	// MaxSessions caps concurrently registered sessions (0 = unlimited).
	// Over-cap registrations are acked with core.ErrTooManySessions.
	MaxSessions int
	// AllocCacheSize sizes the allocator's fingerprinted solution cache:
	// 0 selects the default capacity, negative disables caching. Ignored
	// when Allocator is set.
	AllocCacheSize int
	// AllocWarmStart seeds each solve's subgradient iteration from the
	// previous epoch's λ vector (fewer iterations on perturbed inputs; see
	// PERFORMANCE.md). Ignored when Allocator is set.
	AllocWarmStart bool
	// EpochBudget bounds each epoch's solve on the wall clock: past the
	// budget the subgradient loop cuts off early and, if the solve still
	// cannot complete, the manager walks the degradation ladder (see
	// RESILIENCE.md, "Overload and the degradation ladder"). 0 selects
	// core.DefaultEpochBudget; negative disables the deadline.
	EpochBudget time.Duration
}

// LoadPlatform resolves a platform: a built-in name ("intel", "odroid", …)
// or a path to a hardware description file.
func LoadPlatform(nameOrPath string) (*platform.Platform, error) {
	if p := platform.Builtin(nameOrPath); p != nil {
		return p, nil
	}
	return platform.LoadFile(nameOrPath)
}

// serverSession tracks one connected application.
type serverSession struct {
	instance string
	pid      int
	own      bool

	mu          sync.Mutex // guards conn writes and the liveness fields
	conn        net.Conn
	lastUtility float64
	hasUtility  bool
	lastReport  time.Time

	// Liveness bookkeeping: lastSeen is bumped by every inbound message,
	// probeFails counts consecutive failed writes, and forceSuspect pins the
	// session in the suspect state for the reaper after a failed utility
	// poll or decision push (cleared by inbound traffic).
	lastSeen     time.Time
	probeFails   int
	forceSuspect bool

	// Decisions pushed before the registration ack has been written are
	// buffered so the client always sees the ack first.
	ready   bool
	pending *proto.Activate
}

// alive records inbound traffic: the peer is demonstrably there, so failed
// probes and forced suspicion are forgotten.
func (sess *serverSession) alive(now time.Time) {
	sess.mu.Lock()
	sess.lastSeen = now
	sess.probeFails = 0
	sess.forceSuspect = false
	sess.mu.Unlock()
}

// Server is the HARP resource manager daemon: it accepts libharp
// registrations on a Unix socket, runs the allocation and exploration logic,
// and pushes activation decisions back to the applications.
type Server struct {
	cfg   ServerConfig
	start time.Time

	mu       sync.Mutex
	mgr      *core.Manager
	sessions map[string]*serverSession
	store    *store.Store // nil without StateDir

	ln      net.Listener
	conns   map[net.Conn]struct{}
	stop    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	closed  bool
	serving bool
}

// NewServer creates a server. The configuration directory, when given, is
// read once at startup.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Platform == nil {
		return nil, errors.New("harp: server config without platform")
	}
	if cfg.MeasureEvery == 0 {
		cfg.MeasureEvery = DefaultMeasureEvery
	}
	if err := cfg.Liveness.Validate(); err != nil {
		return nil, err
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	var offline map[string]*opoint.Table
	if cfg.ConfigDir != "" {
		var err error
		offline, err = opoint.LoadDir(filepath.Join(cfg.ConfigDir, "opoints"))
		if err != nil {
			return nil, err
		}
		for app, tbl := range offline {
			if err := tbl.Validate(cfg.Platform); err != nil {
				return nil, fmt.Errorf("harp: description for %s: %w", app, err)
			}
		}
	}
	var st *store.Store
	if cfg.StateDir != "" {
		var err error
		st, err = store.Open(cfg.StateDir, store.Options{Metrics: cfg.Metrics, Tracer: cfg.Tracer})
		if err != nil {
			return nil, fmt.Errorf("harp: open state dir: %w", err)
		}
	}
	start := time.Now()
	cfg.Energy.SetClock(func() time.Duration { return time.Since(start) })
	if mt := cfg.Metrics; mt != nil {
		cfg.Tracer.CountDrops(mt.TracerDropped)
		cfg.Journal.CountErrors(mt.JournalErrors)
	}
	coreCfg := core.Config{
		Platform:           cfg.Platform,
		Allocator:          cfg.Allocator,
		Explore:            cfg.Explore,
		OfflineTables:      offline,
		DisableExploration: cfg.DisableExploration,
		Tracer:             cfg.Tracer,
		Journal:            cfg.Journal,
		Metrics:            cfg.Metrics,
		Energy:             cfg.Energy,
		MaxSessions:        cfg.MaxSessions,
		AllocCacheSize:     cfg.AllocCacheSize,
		AllocWarmStart:     cfg.AllocWarmStart,
		EpochBudget:        cfg.EpochBudget,
		LatencyClock:       func() time.Duration { return time.Since(start) },
	}
	if st != nil {
		// Assigned only when non-nil: a typed-nil *store.Store in the
		// interface field would defeat the Manager's nil check.
		coreCfg.Store = st
	}
	mgr, err := core.NewManager(coreCfg)
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return nil, err
	}
	if st != nil {
		if err := mgr.ImportState(st.RecoveredState(), st.Recovery()); err != nil {
			_ = st.Close()
			return nil, fmt.Errorf("harp: replay recovered state: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		start:    start,
		mgr:      mgr,
		sessions: make(map[string]*serverSession),
		store:    st,
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	mgr.OnDecision(s.pushDecision)
	return s, nil
}

// ListenAndServe binds the Unix socket at path and serves until Close. A
// stale socket file is removed first.
func (s *Server) ListenAndServe(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("harp: remove stale socket: %w", err)
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return fmt.Errorf("harp: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("harp: server closed")
	}
	if s.serving {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("harp: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.mu.Unlock()

	go s.measureLoop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return fmt.Errorf("harp: accept: %w", err)
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue // Accept will fail next; the closed listener ends the loop
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// Close shuts the server down and waits for the measure loop and all
// connection handlers to finish. Session connections are force-closed so
// handlers blocked in reads terminate; Close before (or without) Serve
// returns immediately. With a StateDir, the final snapshot is written only
// after every handler and the measure loop have stopped — i.e. after the
// last journalled epoch — then the store is released.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	serving := s.serving
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	close(s.stop)
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	if serving {
		<-s.done
	}
	var err error
	s.mu.Lock()
	if s.store != nil {
		err = s.mgr.SnapshotTo(s.store)
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	s.mu.Unlock()
	return err
}

// Sessions returns the registered sessions' summaries (for harpctl), with
// each session's last-report age overlaid from the connection bookkeeping.
func (s *Server) Sessions() []core.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := s.mgr.Sessions()
	now := time.Now()
	for i := range infos {
		sess, ok := s.sessions[infos[i].Instance]
		if !ok {
			continue
		}
		sess.mu.Lock()
		infos[i].LastReportAgeSec = now.Sub(sess.lastSeen).Seconds()
		sess.mu.Unlock()
	}
	return infos
}

// TableSnapshot returns a session's operating-point table (for harpctl).
func (s *Server) TableSnapshot(instance string) (*opoint.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.Table(instance)
}

// Generation returns the store generation — how many times this state
// directory has been opened, i.e. which incarnation of the RM this is.
// Zero without a StateDir.
func (s *Server) Generation() uint64 {
	if s.store == nil {
		return 0
	}
	return s.store.Generation()
}

// Uptime is the time since the server was created (for harpctl status).
func (s *Server) Uptime() time.Duration {
	return time.Since(s.start)
}

// AllocCacheStats reports the allocator's solution-cache accounting (zero
// value when caching is disabled or a custom allocator is in use).
func (s *Server) AllocCacheStats() alloc.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.AllocCacheStats()
}

// LastSolveSource reports where the most recent epoch's allocation came
// from: "cold", "warm", "cached" or a degradation-ladder rung (empty
// before the first solve).
func (s *Server) LastSolveSource() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.LastSolveSource()
}

// LastEpochError returns the sticky message of the most recent failed or
// degraded epoch (empty while every epoch has been healthy).
func (s *Server) LastEpochError() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.LastEpochError()
}

// DegradedRung returns the degradation-ladder rung that resolved the most
// recent epoch (empty when the last solve was healthy).
func (s *Server) DegradedRung() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.DegradedRung()
}

// StoreDegraded reports whether the durable-state store has exhausted its
// write retries and entered durability-degraded mode (always false without
// a StateDir).
func (s *Server) StoreDegraded() bool {
	if s.store == nil {
		return false
	}
	return s.store.Degraded()
}

// StoreRecovery reports how the state directory was recovered at startup.
// ok is false without a StateDir.
func (s *Server) StoreRecovery() (rec store.Recovery, ok bool) {
	if s.store == nil {
		return store.Recovery{}, false
	}
	return s.store.Recovery(), true
}

// Metrics returns the server's instrument bundle (nil when metrics are
// disabled) — the health surface and harpd's control ops read it.
func (s *Server) Metrics() *telemetry.Metrics { return s.cfg.Metrics }

// JournalError returns the decision journal's sticky write error, if any
// (nil without a journal or while it is healthy).
func (s *Server) JournalError() error { return s.cfg.Journal.Err() }

// TracerDropped returns how many events the tracer ring has evicted.
func (s *Server) TracerDropped() uint64 { return s.cfg.Tracer.Dropped() }

// EnergyTotals returns the fleet energy accumulators (zero without a
// ledger).
func (s *Server) EnergyTotals() telemetry.EnergyTotals { return s.cfg.Energy.Totals() }

// EnergySessions returns the per-session energy rows sorted by instance
// (nil without a ledger).
func (s *Server) EnergySessions() []telemetry.SessionEnergy { return s.cfg.Energy.Sessions() }

// measureLoop is the 50 ms monitoring cadence; each tick also runs the
// liveness sweep when a policy is configured.
func (s *Server) measureLoop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.MeasureEvery)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-ticker.C:
			if mt := s.cfg.Metrics; mt != nil {
				now := time.Now()
				jitter := now.Sub(last) - s.cfg.MeasureEvery
				if jitter < 0 {
					jitter = -jitter
				}
				mt.MeasureJitter.Observe(jitter.Seconds())
				last = now
			}
			s.measureOnce()
			s.livenessSweep()
			if s.store != nil {
				s.store.SnapshotAge() // refresh the age gauge
			}
		case <-s.stop:
			return
		}
	}
}

func (s *Server) measureOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for instance, sess := range s.sessions {
		var utility, power float64
		var have bool
		if s.cfg.Sampler != nil {
			u, p, err := s.cfg.Sampler.Sample(sess.pid)
			if err == nil {
				utility, power, have = u, p, true
			}
		}
		if sess.own {
			sess.mu.Lock()
			if sess.hasUtility {
				utility = sess.lastUtility
				if s.cfg.Sampler == nil {
					have = power > 0
				} else {
					have = true
				}
			}
			stale := !sess.hasUtility || now.Sub(sess.lastReport) > 4*s.cfg.MeasureEvery
			if stale && sess.ready {
				// Periodically request the current utility from libharp
				// (§4.1.1 step 4) when the application has not pushed one
				// recently. A failed poll marks the session suspect for the
				// reaper (writeLocked records the failure) instead of
				// waiting for the reader to notice the broken peer.
				_ = s.writeLocked(sess, proto.MsgUtilityRequest, nil)
			}
			sess.mu.Unlock()
		}
		if !have {
			continue
		}
		_ = s.mgr.Measure(instance, utility, power)
	}
}

// writeLocked writes one framed message to the session connection under the
// configured write deadline. A failure counts a probe strike and pins the
// session suspect for the reaper. Callers hold sess.mu.
func (s *Server) writeLocked(sess *serverSession, typ proto.MsgType, body any) error {
	if d := s.cfg.WriteTimeout; d > 0 {
		_ = sess.conn.SetWriteDeadline(time.Now().Add(d))
		defer sess.conn.SetWriteDeadline(time.Time{})
	}
	err := proto.Write(sess.conn, typ, body)
	if err != nil {
		sess.probeFails++
		sess.forceSuspect = true
		if mt := s.cfg.Metrics; mt != nil {
			mt.WriteTimeouts.Inc()
		}
	}
	return err
}

// livenessSweep escalates silent sessions through suspect → quarantined →
// reaped, probes suspects with a ping, and readmits sessions whose traffic
// resumed. One sweep runs per measure tick, so a crashed session's cores are
// reclaimed within a bounded number of epochs after its reap deadline.
func (s *Server) livenessSweep() {
	if !s.cfg.Liveness.Enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for instance, sess := range s.sessions {
		sess.mu.Lock()
		age := now.Sub(sess.lastSeen)
		fails := sess.probeFails
		forced := sess.forceSuspect
		ready := sess.ready
		sess.mu.Unlock()
		if !ready {
			continue // still inside the registration handshake
		}

		if s.cfg.Liveness.ShouldReap(age) || fails >= maxProbeFailures {
			delete(s.sessions, instance)
			_ = s.mgr.Reap(instance)
			// Closing the connection ends the reader goroutine; its deferred
			// cleanup sees the session already replaced and stands down.
			_ = sess.conn.Close()
			continue
		}

		state := s.cfg.Liveness.StateFor(age)
		reason := "silent"
		if forced && state == core.LivenessLive {
			state, reason = core.LivenessSuspect, "write-failed"
		}
		switch state {
		case core.LivenessQuarantined:
			_ = s.mgr.SetLiveness(instance, core.LivenessQuarantined, reason)
		case core.LivenessSuspect:
			_ = s.mgr.SetLiveness(instance, core.LivenessSuspect, reason)
			// Probe: a live client answers with a pong, resetting lastSeen.
			sess.mu.Lock()
			_ = s.writeLocked(sess, proto.MsgPing, nil)
			sess.mu.Unlock()
		default:
			_ = s.mgr.SetLiveness(instance, core.LivenessLive, "resumed")
		}
	}
}

// handleConn runs one application session.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()

	// One buffer-reusing reader per connection: sessions stream utility
	// reports every measure tick, so the per-frame allocation matters.
	rd := proto.NewReader(conn)
	env, err := rd.Read()
	if err != nil {
		return
	}
	var reg proto.Register
	if err := proto.DecodeBody(env, proto.MsgRegister, &reg); err != nil {
		_ = proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{
			OK: false, Error: "first message must be a registration",
		})
		return
	}
	adaptivity, err := Adaptivity(reg.Adaptivity).internal()
	if err != nil {
		_ = proto.Write(conn, proto.MsgRegisterAck, proto.RegisterAck{OK: false, Error: err.Error()})
		return
	}
	instance := fmt.Sprintf("%s/%d", reg.App, reg.PID)
	sess := &serverSession{
		instance: instance,
		pid:      reg.PID,
		own:      reg.OwnUtility,
		conn:     conn,
		lastSeen: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, exists := s.sessions[instance]; exists {
		// A live session already owns this instance (e.g. a reconnecting
		// client racing the reaper): reject without disturbing it. The
		// client retries after the old session is reaped.
		err = fmt.Errorf("%w: %s", core.ErrDuplicateSession, instance)
	} else {
		s.sessions[instance] = sess
		err = s.mgr.Register(instance, reg.App, adaptivity, reg.OwnUtility)
		if err != nil {
			delete(s.sessions, instance)
		}
	}
	s.mu.Unlock()

	ack := proto.RegisterAck{SessionID: instance, OK: err == nil}
	if err != nil {
		ack.Error = err.Error()
	}
	sess.mu.Lock()
	writeErr := s.writeLocked(sess, proto.MsgRegisterAck, ack)
	if writeErr == nil && sess.pending != nil {
		writeErr = s.writeLocked(sess, proto.MsgActivate, *sess.pending)
		sess.pending = nil
	}
	sess.ready = true
	sess.mu.Unlock()
	if err != nil || writeErr != nil {
		return
	}

	defer func() {
		s.mu.Lock()
		// The liveness reaper may have replaced this session with a fresh
		// registration of the same instance; only clean up our own entry.
		if cur, ok := s.sessions[instance]; ok && cur == sess {
			delete(s.sessions, instance)
			_ = s.mgr.Deregister(instance)
		}
		s.mu.Unlock()
	}()

	for {
		env, err := rd.Read()
		if err != nil {
			return // EOF or broken peer: deregister via the deferred cleanup
		}
		sess.alive(time.Now())
		switch env.Type {
		case proto.MsgOperatingPoints:
			var up proto.OperatingPoints
			if err := proto.DecodeBody(env, proto.MsgOperatingPoints, &up); err != nil || up.Table == nil {
				continue
			}
			s.mu.Lock()
			_ = s.mgr.UploadTable(instance, up.Table)
			s.mu.Unlock()
		case proto.MsgUtilityReport:
			var rep proto.UtilityReport
			if err := proto.DecodeBody(env, proto.MsgUtilityReport, &rep); err != nil {
				continue
			}
			sess.mu.Lock()
			sess.lastUtility = rep.Utility
			sess.hasUtility = true
			sess.lastReport = time.Now()
			sess.mu.Unlock()
		case proto.MsgPhaseChange:
			var pc proto.PhaseChange
			if err := proto.DecodeBody(env, proto.MsgPhaseChange, &pc); err != nil {
				continue
			}
			s.mu.Lock()
			_ = s.mgr.PhaseChange(instance, pc.Phase)
			s.mu.Unlock()
		case proto.MsgPong:
			// Heartbeat answer to a liveness probe; sess.alive above already
			// recorded the traffic.
		case proto.MsgExit:
			return
		default:
			// Unknown message types are ignored for forward compatibility.
		}
	}
}

// pushDecision relays a manager decision to the session's connection.
// Called with s.mu held (all manager entry points hold it).
func (s *Server) pushDecision(d core.Decision) {
	sess, ok := s.sessions[d.Instance]
	if !ok {
		return
	}
	act := proto.Activate{
		Seq:         d.Seq,
		VectorKey:   d.Vector.Key(),
		Threads:     d.Threads,
		CoAllocated: d.CoAllocated,
	}
	for _, g := range d.Grants {
		act.Cores = append(act.Cores, proto.CoreGrant{Core: g.Core, Threads: g.Threads})
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !sess.ready {
		sess.pending = &act
		return
	}
	if err := s.writeLocked(sess, proto.MsgActivate, act); err != nil && !errors.Is(err, io.EOF) {
		// writeLocked marked the session suspect; the reaper (or the reader
		// goroutine, whichever notices first) will deregister it.
		return
	}
}
