package harp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/proto"
)

// Registration describes the application to the resource manager (§4.1.1
// step 1).
type Registration struct {
	// App is the application name, matched against description files.
	App string
	// PID identifies the process; 0 uses os.Getpid().
	PID int
	// Adaptivity is the application's adaptivity class.
	Adaptivity Adaptivity
	// OwnUtility announces that the application will report its own utility
	// metric via ReportUtility (§4.2.1).
	OwnUtility bool
	// OnActivate is invoked (from the client's reader goroutine) for every
	// allocation decision pushed by the RM. libharp's built-in adapters
	// call runtime hooks here; custom applications install their own
	// callbacks (§4.1.4).
	OnActivate func(Activation)
	// OnUtilityRequest, when set, answers the RM's periodic utility polls
	// (§4.1.1 step 4) with the application's current utility metric. Only
	// meaningful together with OwnUtility; applications may instead push
	// updates proactively via ReportUtility.
	OnUtilityRequest func() float64
}

// ErrRegistrationRejected is returned by Dial when the RM refuses the
// session.
var ErrRegistrationRejected = errors.New("harp: registration rejected")

// Client is a libharp session with the resource manager.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	session string

	onActivate func(Activation)
	onUtility  func() float64

	mu         sync.Mutex
	activation *Activation

	stopOnce sync.Once
	done     chan struct{}
}

// Dial connects to the RM's Unix socket and registers the application. It
// blocks until the RM acknowledges the registration.
func Dial(socketPath string, reg Registration) (*Client, error) {
	if reg.App == "" {
		return nil, errors.New("harp: registration without application name")
	}
	if !reg.Adaptivity.Valid() {
		return nil, fmt.Errorf("harp: invalid adaptivity %q", reg.Adaptivity)
	}
	if reg.PID == 0 {
		reg.PID = os.Getpid()
	}
	conn, err := net.Dial("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("harp: dial RM: %w", err)
	}
	if err := proto.Write(conn, proto.MsgRegister, proto.Register{
		PID:        reg.PID,
		App:        reg.App,
		Adaptivity: string(reg.Adaptivity),
		OwnUtility: reg.OwnUtility,
	}); err != nil {
		conn.Close()
		return nil, err
	}
	env, err := proto.Read(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("harp: waiting for registration ack: %w", err)
	}
	var ack proto.RegisterAck
	if err := proto.DecodeBody(env, proto.MsgRegisterAck, &ack); err != nil {
		conn.Close()
		return nil, err
	}
	if !ack.OK {
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRegistrationRejected, ack.Error)
	}

	c := &Client{
		conn:       conn,
		session:    ack.SessionID,
		onActivate: reg.OnActivate,
		onUtility:  reg.OnUtilityRequest,
		done:       make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// SessionID returns the RM-assigned session identifier.
func (c *Client) SessionID() string { return c.session }

// Activation returns the most recent allocation decision, if any.
func (c *Client) Activation() (Activation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.activation == nil {
		return Activation{}, false
	}
	return *c.activation, true
}

// UploadDescription sends an application description file's operating
// points to the RM (§4.1.1 step 2). The reader must yield the JSON format of
// opoint.Table.
func (c *Client) UploadDescription(r io.Reader) error {
	tbl, err := opoint.Load(r)
	if err != nil {
		return err
	}
	return c.write(proto.MsgOperatingPoints, proto.OperatingPoints{Table: tbl})
}

// UploadDescriptionFile sends the description at path.
func (c *Client) UploadDescriptionFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("harp: %w", err)
	}
	defer f.Close()
	return c.UploadDescription(f)
}

// ReportUtility pushes an application-specific utility sample (§4.1.1
// step 4). Only meaningful for sessions registered with OwnUtility.
func (c *Client) ReportUtility(utility float64) error {
	seq := 0
	if act, ok := c.Activation(); ok {
		seq = act.Seq
	}
	return c.write(proto.MsgUtilityReport, proto.UtilityReport{Seq: seq, Utility: utility})
}

// NotifyPhase announces a transition to a new execution stage with distinct
// performance-energy characteristics — the interface extension from the
// paper's outlook (§7). The RM discards stale smoothed state and reassesses
// the allocation for the new phase.
func (c *Client) NotifyPhase(phase string) error {
	return c.write(proto.MsgPhaseChange, proto.PhaseChange{Phase: phase})
}

// Close deregisters gracefully and releases the connection.
func (c *Client) Close() error {
	var err error
	c.stopOnce.Do(func() {
		err = c.write(proto.MsgExit, nil)
		c.conn.Close()
		<-c.done
	})
	return err
}

// Done is closed when the RM connection ends (server shutdown or Close).
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) write(typ proto.MsgType, body any) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return proto.Write(c.conn, typ, body)
}

// readLoop handles RM pushes until the connection ends.
func (c *Client) readLoop() {
	defer close(c.done)
	for {
		env, err := proto.Read(c.conn)
		if err != nil {
			return
		}
		switch env.Type {
		case proto.MsgActivate:
			var act proto.Activate
			if err := proto.DecodeBody(env, proto.MsgActivate, &act); err != nil {
				continue
			}
			pub := Activation{
				Seq:         act.Seq,
				VectorKey:   act.VectorKey,
				Threads:     act.Threads,
				CoAllocated: act.CoAllocated,
			}
			for _, g := range act.Cores {
				pub.Cores = append(pub.Cores, CoreGrant{Core: g.Core, Threads: g.Threads})
			}
			c.mu.Lock()
			c.activation = &pub
			c.mu.Unlock()
			if c.onActivate != nil {
				c.onActivate(pub)
			}
		case proto.MsgUtilityRequest:
			// Answer the RM's poll with the application's current utility
			// (§4.1.1 step 4). Without a callback the poll is ignored; the
			// application may still push reports proactively.
			if c.onUtility != nil {
				_ = c.ReportUtility(c.onUtility())
			}
		default:
		}
	}
}
