package harp

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/proto"
)

// ReconnectConfig opts a client into automatic session resumption: when the
// RM connection breaks (daemon restart, dropped socket), the client re-dials
// with exponential backoff plus jitter, re-registers, re-uploads its
// operating-point table and replays its current phase — transparently to
// OnActivate consumers, which simply observe a fresh Activation.
type ReconnectConfig struct {
	// Enabled turns auto-reconnect on.
	Enabled bool
	// InitialBackoff is the first retry delay (0 = 50 ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = 2 s).
	MaxBackoff time.Duration
	// Multiplier grows the delay between attempts (0 = 2.0).
	Multiplier float64
	// Jitter is the ± fraction of randomisation applied to each delay
	// (0 = 0.2; negative disables jitter entirely).
	Jitter float64
	// MaxAttempts bounds consecutive failed attempts before the client
	// gives up and closes Done with the last error (0 = unlimited).
	MaxAttempts int
	// Seed drives the jitter for reproducible backoff sequences in tests
	// (0 seeds from the clock).
	Seed int64
	// AddressProvider, when set, is consulted before every reconnect
	// attempt and may return a new RM socket path to dial — the fleet
	// redirect hook: after a session migration or coordinator failover the
	// provider (typically backed by a cluster control endpoint) points the
	// client at its new machine. An empty return keeps the current path.
	// Nil preserves the classic fixed-address behaviour exactly.
	AddressProvider func() string
}

func (rc ReconnectConfig) withDefaults() ReconnectConfig {
	if rc.InitialBackoff == 0 {
		rc.InitialBackoff = 50 * time.Millisecond
	}
	if rc.MaxBackoff == 0 {
		rc.MaxBackoff = 2 * time.Second
	}
	if rc.Multiplier == 0 {
		rc.Multiplier = 2.0
	}
	if rc.Jitter == 0 {
		rc.Jitter = 0.2
	}
	if rc.Seed == 0 {
		rc.Seed = time.Now().UnixNano()
	}
	return rc
}

// Registration describes the application to the resource manager (§4.1.1
// step 1).
type Registration struct {
	// App is the application name, matched against description files.
	App string
	// PID identifies the process; 0 uses os.Getpid().
	PID int
	// Adaptivity is the application's adaptivity class.
	Adaptivity Adaptivity
	// OwnUtility announces that the application will report its own utility
	// metric via ReportUtility (§4.2.1).
	OwnUtility bool
	// OnActivate is invoked (from the client's reader goroutine) for every
	// allocation decision pushed by the RM. libharp's built-in adapters
	// call runtime hooks here; custom applications install their own
	// callbacks (§4.1.4).
	OnActivate func(Activation)
	// OnUtilityRequest, when set, answers the RM's periodic utility polls
	// (§4.1.1 step 4) with the application's current utility metric. Only
	// meaningful together with OwnUtility; applications may instead push
	// updates proactively via ReportUtility.
	OnUtilityRequest func() float64
	// Reconnect opts into automatic session resumption across RM restarts.
	Reconnect ReconnectConfig
	// WriteTimeout bounds each framed write to the RM, so a wedged daemon
	// cannot block ReportUtility or Close forever (0 = 2 s, negative = no
	// deadline).
	WriteTimeout time.Duration
}

// ErrRegistrationRejected is returned by Dial when the RM refuses the
// session.
var ErrRegistrationRejected = errors.New("harp: registration rejected")

// Client is a libharp session with the resource manager.
type Client struct {
	reg Registration

	writeMu sync.Mutex

	onActivate func(Activation)
	onUtility  func() float64

	mu         sync.Mutex
	socketPath string // current RM address; AddressProvider may move it
	conn       net.Conn
	session    string
	activation *Activation
	lastTable  *opoint.Table
	lastPhase  string
	closing    bool
	err        error

	stopOnce sync.Once
	closec   chan struct{} // closed by Close to abort backoff sleeps
	done     chan struct{}
}

// Dial connects to the RM's Unix socket and registers the application. It
// blocks until the RM acknowledges the registration.
func Dial(socketPath string, reg Registration) (*Client, error) {
	if reg.App == "" {
		return nil, errors.New("harp: registration without application name")
	}
	if !reg.Adaptivity.Valid() {
		return nil, fmt.Errorf("harp: invalid adaptivity %q", reg.Adaptivity)
	}
	if reg.PID == 0 {
		reg.PID = os.Getpid()
	}
	if reg.WriteTimeout == 0 {
		reg.WriteTimeout = 2 * time.Second
	}
	if reg.Reconnect.Enabled {
		reg.Reconnect = reg.Reconnect.withDefaults()
	}
	c := &Client{
		socketPath: socketPath,
		reg:        reg,
		onActivate: reg.OnActivate,
		onUtility:  reg.OnUtilityRequest,
		closec:     make(chan struct{}),
		done:       make(chan struct{}),
	}
	conn, session, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.session = session
	go c.run()
	return c, nil
}

// handshake dials the current socket path and performs the registration
// exchange.
func (c *Client) handshake() (net.Conn, string, error) {
	c.mu.Lock()
	path := c.socketPath
	c.mu.Unlock()
	conn, err := net.Dial("unix", path)
	if err != nil {
		return nil, "", fmt.Errorf("harp: dial RM: %w", err)
	}
	if d := c.reg.WriteTimeout; d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
	}
	err = proto.Write(conn, proto.MsgRegister, proto.Register{
		PID:        c.reg.PID,
		App:        c.reg.App,
		Adaptivity: string(c.reg.Adaptivity),
		OwnUtility: c.reg.OwnUtility,
	})
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, "", err
	}
	env, err := proto.Read(conn)
	if err != nil {
		conn.Close()
		return nil, "", fmt.Errorf("harp: waiting for registration ack: %w", err)
	}
	var ack proto.RegisterAck
	if err := proto.DecodeBody(env, proto.MsgRegisterAck, &ack); err != nil {
		conn.Close()
		return nil, "", err
	}
	if !ack.OK {
		conn.Close()
		return nil, "", fmt.Errorf("%w: %s", ErrRegistrationRejected, ack.Error)
	}
	return conn, ack.SessionID, nil
}

// SessionID returns the RM-assigned session identifier.
func (c *Client) SessionID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Activation returns the most recent allocation decision, if any.
func (c *Client) Activation() (Activation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.activation == nil {
		return Activation{}, false
	}
	return *c.activation, true
}

// UploadDescription sends an application description file's operating
// points to the RM (§4.1.1 step 2). The reader must yield the JSON format of
// opoint.Table. The table is remembered so an auto-reconnecting client can
// re-upload it when resuming the session.
func (c *Client) UploadDescription(r io.Reader) error {
	tbl, err := opoint.Load(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.lastTable = tbl
	c.mu.Unlock()
	return c.write(proto.MsgOperatingPoints, proto.OperatingPoints{Table: tbl})
}

// UploadDescriptionFile sends the description at path.
func (c *Client) UploadDescriptionFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("harp: %w", err)
	}
	defer f.Close()
	return c.UploadDescription(f)
}

// ReportUtility pushes an application-specific utility sample (§4.1.1
// step 4). Only meaningful for sessions registered with OwnUtility.
func (c *Client) ReportUtility(utility float64) error {
	seq := 0
	if act, ok := c.Activation(); ok {
		seq = act.Seq
	}
	return c.write(proto.MsgUtilityReport, proto.UtilityReport{Seq: seq, Utility: utility})
}

// NotifyPhase announces a transition to a new execution stage with distinct
// performance-energy characteristics — the interface extension from the
// paper's outlook (§7). The RM discards stale smoothed state and reassesses
// the allocation for the new phase. The phase is remembered so an
// auto-reconnecting client replays it when resuming the session.
func (c *Client) NotifyPhase(phase string) error {
	c.mu.Lock()
	c.lastPhase = phase
	c.mu.Unlock()
	return c.write(proto.MsgPhaseChange, proto.PhaseChange{Phase: phase})
}

// Close deregisters gracefully and releases the connection. It always
// succeeds: a failed MsgExit write means the RM is already gone, which is
// exactly the outcome a graceful close wants.
func (c *Client) Close() error {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closing = true
		conn := c.conn
		c.mu.Unlock()
		close(c.closec)
		_ = c.write(proto.MsgExit, nil)
		conn.Close()
		<-c.done
	})
	return nil
}

// Done is closed when the session permanently ends: graceful Close, a broken
// connection with reconnect disabled, or exhausted reconnect attempts.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the session's termination cause once Done is closed: nil after
// a graceful Close, the connection error when the RM went away and reconnect
// was off, or the last reconnect failure when resumption gave up.
func (c *Client) Err() error {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) write(typ proto.MsgType, body any) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if d := c.reg.WriteTimeout; d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return proto.Write(conn, typ, body)
}

// run owns the client's lifecycle: it reads RM pushes off the current
// connection and, when the connection breaks, either resumes the session
// (reconnect enabled) or terminates with the cause recorded for Err.
func (c *Client) run() {
	defer close(c.done)
	for {
		readErr := c.readConn()
		c.mu.Lock()
		closing := c.closing
		c.mu.Unlock()
		if closing {
			return // graceful close: Err stays nil
		}
		if !c.reg.Reconnect.Enabled {
			c.setErr(readErr)
			return
		}
		if err := c.resume(); err != nil {
			c.setErr(fmt.Errorf("harp: session lost (%v); reconnect gave up: %w", readErr, err))
			return
		}
	}
}

func (c *Client) setErr(err error) {
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
}

// resume re-establishes the session with exponential backoff plus jitter:
// re-dial, re-register, re-upload the operating-point table, replay the
// current phase. A duplicate-session rejection simply retries — the RM's
// liveness reaper has not collected the half-dead predecessor yet.
func (c *Client) resume() error {
	rc := c.reg.Reconnect
	rng := rand.New(rand.NewSource(rc.Seed))
	backoff := rc.InitialBackoff
	var lastErr error
	for attempt := 0; rc.MaxAttempts == 0 || attempt < rc.MaxAttempts; attempt++ {
		// Ask the address provider where the session lives now — a fleet
		// may have migrated it or failed the coordinator over since the
		// connection broke.
		if rc.AddressProvider != nil {
			if addr := rc.AddressProvider(); addr != "" {
				c.mu.Lock()
				c.socketPath = addr
				c.mu.Unlock()
			}
		}
		delay := backoff
		if rc.Jitter > 0 {
			f := 1 + rc.Jitter*(2*rng.Float64()-1)
			delay = time.Duration(float64(delay) * f)
		}
		select {
		case <-time.After(delay):
		case <-c.closec:
			return errors.New("harp: client closed")
		}
		backoff = time.Duration(float64(backoff) * rc.Multiplier)
		if backoff > rc.MaxBackoff {
			backoff = rc.MaxBackoff
		}

		conn, session, err := c.handshake()
		if err != nil {
			lastErr = err
			continue
		}

		c.mu.Lock()
		if c.closing {
			c.mu.Unlock()
			conn.Close()
			return errors.New("harp: client closed")
		}
		c.conn = conn
		c.session = session
		tbl := c.lastTable
		phase := c.lastPhase
		c.mu.Unlock()

		// Replay session state. Failures here mean the fresh connection
		// already broke; loop around and try again.
		if tbl != nil {
			if err := c.write(proto.MsgOperatingPoints, proto.OperatingPoints{Table: tbl}); err != nil {
				lastErr = err
				conn.Close()
				continue
			}
		}
		if phase != "" {
			if err := c.write(proto.MsgPhaseChange, proto.PhaseChange{Phase: phase}); err != nil {
				lastErr = err
				conn.Close()
				continue
			}
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("harp: no reconnect attempts permitted")
	}
	return lastErr
}

// readConn handles RM pushes until the current connection ends, returning
// the read error that ended it.
func (c *Client) readConn() error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	rd := proto.NewReader(conn) // reuse one frame buffer for the push stream
	for {
		env, err := rd.Read()
		if err != nil {
			return err
		}
		switch env.Type {
		case proto.MsgActivate:
			var act proto.Activate
			if err := proto.DecodeBody(env, proto.MsgActivate, &act); err != nil {
				continue
			}
			pub := Activation{
				Seq:         act.Seq,
				VectorKey:   act.VectorKey,
				Threads:     act.Threads,
				CoAllocated: act.CoAllocated,
			}
			for _, g := range act.Cores {
				pub.Cores = append(pub.Cores, CoreGrant{Core: g.Core, Threads: g.Threads})
			}
			c.mu.Lock()
			c.activation = &pub
			c.mu.Unlock()
			if c.onActivate != nil {
				c.onActivate(pub)
			}
		case proto.MsgUtilityRequest:
			// Answer the RM's poll with the application's current utility
			// (§4.1.1 step 4). Without a callback the poll is ignored; the
			// application may still push reports proactively.
			if c.onUtility != nil {
				_ = c.ReportUtility(c.onUtility())
			}
		case proto.MsgPing:
			// Liveness probe: answer so the RM knows the session is alive
			// even when the application has nothing to report.
			_ = c.write(proto.MsgPong, nil)
		default:
		}
	}
}
