// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks — one benchmark per artefact (see DESIGN.md
// §3 for the experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// By default the benchmarks run the trimmed "quick" configuration so the
// whole suite finishes in a few minutes; set HARP_FULL_EXPERIMENTS=1 to run
// the full paper-scale scenario lists (the full Fig. 6 alone takes several
// minutes of wall time). Headline values are exported as benchmark metrics;
// run with -v to also print the formatted tables.
//
// The experiment drivers fan their scenario × policy × seed units out across
// a bounded worker pool; HARP_EXPERIMENT_PARALLELISM bounds it (0 or unset =
// one worker per CPU, 1 = sequential). Results are bit-identical at any
// setting — see BenchmarkFigure6Sequential/Parallel for the wall-clock
// comparison.
package bench

import (
	"io"
	"os"
	"strconv"
	"testing"

	"github.com/harp-rm/harp/internal/experiments"
)

// benchConfig selects quick or full experiment scale and reads the
// parallelism bound from HARP_EXPERIMENT_PARALLELISM.
func benchConfig() experiments.Config {
	parallelism := 0
	if v := os.Getenv("HARP_EXPERIMENT_PARALLELISM"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			parallelism = n
		}
	}
	return experiments.Config{
		Seed:        1,
		Quick:       os.Getenv("HARP_FULL_EXPERIMENTS") == "",
		Parallelism: parallelism,
	}
}

// sink formats results when -v is set.
func sink(b *testing.B, r interface{ Format(io.Writer) }) {
	b.Helper()
	if testing.Verbose() {
		r.Format(os.Stdout)
	}
}

// BenchmarkFigure1ConfigurationSweep regenerates Fig. 1: the full
// configuration sweep of ep.C and mg.C on the Raptor Lake with 4-objective
// Pareto marking.
func BenchmarkFigure1ConfigurationSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, app := range res.Apps {
				b.ReportMetric(float64(len(app.ParetoPoints())), "pareto-"+app.App)
			}
			sink(b, res)
		}
	}
}

// BenchmarkFigure5RegressionModels regenerates Fig. 5: the regression-model
// comparison (MAPE, IGD, common Pareto ratio across training sizes).
func BenchmarkFigure5RegressionModels(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if cell, ok := res.Cell("poly2", res.TrainSizes[len(res.TrainSizes)-1]); ok {
				b.ReportMetric(cell.MAPEIPS, "poly2-mape-ips-%")
				b.ReportMetric(cell.IGD, "poly2-igd")
			}
			sink(b, res)
		}
	}
}

// BenchmarkFigure6IntelRaptorLake regenerates Fig. 6: improvement factors of
// HARP, HARP (Offline), HARP (No Scaling) and ITD over CFS for single- and
// multi-application scenarios on the Intel machine.
func BenchmarkFigure6IntelRaptorLake(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GeoSingle["harp"].Energy, "harp-single-energy-x")
			b.ReportMetric(res.GeoMulti["harp"].Time, "harp-multi-time-x")
			b.ReportMetric(res.GeoMulti["harp"].Energy, "harp-multi-energy-x")
			b.ReportMetric(res.GeoMulti["harp-offline"].Time, "offline-multi-time-x")
			sink(b, res)
		}
	}
}

// BenchmarkFigure6Sequential runs Fig. 6 with the worker pool forced to a
// single inline worker — the baseline for the parallel speedup comparison.
func BenchmarkFigure6Sequential(b *testing.B) {
	cfg := benchConfig()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Parallel runs Fig. 6 with one worker per CPU. The reported
// metrics are bit-identical to BenchmarkFigure6Sequential (the determinism
// test in internal/experiments asserts this); only the wall time differs.
func BenchmarkFigure6Parallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Parallelism = 0
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7OdroidXU3E regenerates Fig. 7: HARP (Offline) versus EAS
// on the Odroid XU3-E.
func BenchmarkFigure7OdroidXU3E(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GeoSingle.Energy, "single-energy-x")
			b.ReportMetric(res.GeoMulti.Time, "multi-time-x")
			b.ReportMetric(res.GeoMulti.Energy, "multi-energy-x")
			sink(b, res)
		}
	}
}

// BenchmarkFigure8LearningOperatingPoints regenerates Fig. 8: HARP's
// behaviour during the learning phase, with 5 s table snapshots and the
// stable-stage onset statistics.
func BenchmarkFigure8LearningOperatingPoints(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SingleStableMean, "single-stable-s")
			b.ReportMetric(res.MultiStableMean, "multi-stable-s")
			sink(b, res)
		}
	}
}

// BenchmarkGovernorAblation regenerates §6.3.3: the impact of the Linux
// frequency governor on HARP's improvements.
func BenchmarkGovernorAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Governor(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Factors["harp"]["performance"].Energy, "harp-perf-energy-x")
			b.ReportMetric(res.Factors["harp"]["powersave"].Energy, "harp-save-energy-x")
			sink(b, res)
		}
	}
}

// BenchmarkEnergyAttributionValidation regenerates the §5.1 validation of
// the EnergAt-style attribution with per-kind power coefficients (Eq. 3).
func BenchmarkEnergyAttributionValidation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Attribution(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MAPE, "mape-%")
			sink(b, res)
		}
	}
}

// BenchmarkHARPOverhead regenerates §6.6: HARP's management overhead with
// adaptation dropped in libharp.
func BenchmarkHARPOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SingleMean, "single-overhead-%")
			b.ReportMetric(res.MultiMean, "multi-overhead-%")
			sink(b, res)
		}
	}
}

// BenchmarkAllocatorAblation compares the Lagrangian MMKP solver against the
// greedy baseline (DESIGN.md §4, decision 2).
func BenchmarkAllocatorAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AllocAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Rows) > 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.LagrangianCost, "lagr-cost")
			b.ReportMetric(last.GreedyCost, "greedy-cost")
			sink(b, res)
		}
	}
}

// BenchmarkExplorationAblation compares HARP's exploration heuristics
// against naive in-order measurement (DESIGN.md §4, decision 4).
func BenchmarkExplorationAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExploreAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.HeuristicMean, "heuristic-igd")
			b.ReportMetric(res.EnumerationMean, "enumeration-igd")
			sink(b, res)
		}
	}
}
