package core

import (
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

func TestLivenessPolicyStates(t *testing.T) {
	var off LivenessPolicy
	if off.Enabled() {
		t.Error("zero policy enabled")
	}
	if off.StateFor(time.Hour) != LivenessLive {
		t.Error("disabled policy demoted a session")
	}
	if off.ShouldReap(time.Hour) {
		t.Error("disabled policy reaped a session")
	}

	p := DefaultLivenessPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	cases := []struct {
		age  time.Duration
		want Liveness
	}{
		{0, LivenessLive},
		{p.SuspectAfter, LivenessLive},
		{p.SuspectAfter + time.Millisecond, LivenessSuspect},
		{p.QuarantineAfter + time.Millisecond, LivenessQuarantined},
		{p.ReapAfter + time.Hour, LivenessQuarantined},
	}
	for _, c := range cases {
		if got := p.StateFor(c.age); got != c.want {
			t.Errorf("StateFor(%v) = %v, want %v", c.age, got, c.want)
		}
	}
	if p.ShouldReap(p.ReapAfter) {
		t.Error("reaped exactly at the deadline")
	}
	if !p.ShouldReap(p.ReapAfter + time.Millisecond) {
		t.Error("not reaped past the deadline")
	}

	bad := LivenessPolicy{SuspectAfter: time.Second, QuarantineAfter: time.Millisecond, ReapAfter: time.Minute}
	if err := bad.Validate(); err == nil {
		t.Error("unordered deadlines accepted")
	}
}

// livenessManager builds an offline two-app manager so allocations settle
// immediately and decisions are deterministic.
func livenessManager(t *testing.T, mt *telemetry.Metrics) (*Manager, *decisionRecorder) {
	t.Helper()
	plat := platform.RaptorLake()
	profA := mustProfile(t, workload.IntelApps(), "ep.C")
	profB := mustProfile(t, workload.IntelApps(), "mg.C")
	m, err := NewManager(Config{
		Platform:           plat,
		DisableExploration: true,
		Metrics:            mt,
		OfflineTables: map[string]*opoint.Table{
			profA.Name: offlineTable(plat, profA),
			profB.Name: offlineTable(plat, profB),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("mg-1", "mg.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	return m, rec
}

func TestQuarantineShrinksCoresAndReadmitRestores(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	m, rec := livenessManager(t, mt)

	before := rec.last["ep-1"]
	if len(before.Grants) == 0 {
		t.Fatalf("no cores granted before quarantine: %+v", before)
	}
	survivorBefore := rec.last["mg-1"]

	if err := m.SetLiveness("ep-1", LivenessSuspect, "silent"); err != nil {
		t.Fatal(err)
	}
	if d := rec.last["ep-1"]; len(d.Grants) != len(before.Grants) {
		t.Errorf("suspect state changed the allocation: %+v", d)
	}

	if err := m.SetLiveness("ep-1", LivenessQuarantined, "silent"); err != nil {
		t.Fatal(err)
	}
	parked := rec.last["ep-1"]
	if len(parked.Grants) != 0 || !parked.Vector.IsZero() {
		t.Fatalf("quarantined session kept cores: %+v", parked)
	}
	if got, _ := m.Liveness("ep-1"); got != LivenessQuarantined {
		t.Errorf("liveness = %v, want quarantined", got)
	}
	// The survivor must absorb the freed capacity (or at least keep cores).
	survivor := rec.last["mg-1"]
	if len(survivor.Grants) < len(survivorBefore.Grants) {
		t.Errorf("survivor shrank during quarantine: %d -> %d cores",
			len(survivorBefore.Grants), len(survivor.Grants))
	}
	// Frozen learning: samples while quarantined do not count toward the
	// cadence or the table.
	measuredBefore := m.sessions["ep-1"].explorer.Table().MeasuredCount()
	for i := 0; i < 5; i++ {
		if err := m.Measure("ep-1", 10, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.sessions["ep-1"].explorer.Table().MeasuredCount(); got != measuredBefore {
		t.Errorf("quarantined session kept learning: %d -> %d points", measuredBefore, got)
	}
	if m.sessions["ep-1"].stableMeasurements != 0 {
		t.Error("quarantined samples advanced the stable cadence")
	}

	if err := m.SetLiveness("ep-1", LivenessLive, "resumed"); err != nil {
		t.Fatal(err)
	}
	restored := rec.last["ep-1"]
	if len(restored.Grants) == 0 {
		t.Fatalf("readmitted session got no cores: %+v", restored)
	}
	if mt.SessionsQuarantined.Value() != 1 || mt.SessionsReadmitted.Value() != 1 {
		t.Errorf("counters: quarantined=%d readmitted=%d, want 1/1",
			mt.SessionsQuarantined.Value(), mt.SessionsReadmitted.Value())
	}
}

func TestReapReallocatesSurvivors(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	m, rec := livenessManager(t, mt)

	if err := m.Reap("ep-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Liveness("ep-1"); err == nil {
		t.Error("reaped session still registered")
	}
	if mt.SessionsReaped.Value() != 1 {
		t.Errorf("reaped counter = %d, want 1", mt.SessionsReaped.Value())
	}
	// The survivor's standing decision must not reference any core twice and
	// the reaped session's cores must be reusable.
	survivor := rec.last["mg-1"]
	if len(survivor.Grants) == 0 {
		t.Fatal("survivor lost its allocation after reap")
	}
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatalf("re-registration after reap: %v", err)
	}
	if mt.Reconnects.Value() != 1 {
		t.Errorf("reconnects counter = %d, want 1", mt.Reconnects.Value())
	}
	if d := rec.last["ep-1"]; len(d.Grants) == 0 {
		t.Error("resumed session got no cores")
	}
}

func TestSetLivenessUnknownSession(t *testing.T) {
	m, _ := livenessManager(t, nil)
	if err := m.SetLiveness("ghost", LivenessSuspect, "silent"); err == nil {
		t.Error("unknown session accepted")
	}
	if err := m.Reap("ghost"); err == nil {
		t.Error("unknown session reaped")
	}
}

func TestSessionInfoCarriesLiveness(t *testing.T) {
	m, _ := livenessManager(t, nil)
	if err := m.SetLiveness("ep-1", LivenessQuarantined, "silent"); err != nil {
		t.Fatal(err)
	}
	for _, info := range m.Sessions() {
		switch info.Instance {
		case "ep-1":
			if info.Liveness != LivenessQuarantined {
				t.Errorf("ep-1 liveness = %v, want quarantined", info.Liveness)
			}
		case "mg-1":
			if info.Liveness != LivenessLive {
				t.Errorf("mg-1 liveness = %v, want live", info.Liveness)
			}
		}
		if info.LastReportAgeSec != -1 {
			t.Errorf("%s age = %v, want -1 (manager does not track time)",
				info.Instance, info.LastReportAgeSec)
		}
	}
}
