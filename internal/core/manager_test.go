package core

import (
	"errors"
	"testing"

	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// offlineTable builds a complete measured table from the workload model.
func offlineTable(p *platform.Platform, prof *workload.Profile) *opoint.Table {
	tbl := &opoint.Table{App: prof.Name, Platform: p.Name}
	for _, rv := range platform.EnumerateVectors(p, 0) {
		ev := workload.EvaluateVector(p, prof, rv)
		tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
	}
	return tbl
}

// decisionRecorder captures pushed decisions per instance.
type decisionRecorder struct {
	all  []Decision
	last map[string]Decision
}

func newRecorder(m *Manager) *decisionRecorder {
	r := &decisionRecorder{last: make(map[string]Decision)}
	m.OnDecision(func(d Decision) {
		r.all = append(r.all, d)
		r.last[d.Instance] = d
	})
	return r
}

func mustProfile(t *testing.T, suite []*workload.Profile, name string) *workload.Profile {
	t.Helper()
	p, err := workload.ByName(suite, name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Error("config without platform accepted")
	}
	// Odroid cannot run online exploration (§6.4).
	if _, err := NewManager(Config{Platform: platform.OdroidXU3()}); err == nil {
		t.Error("online exploration on the Odroid accepted")
	}
	if _, err := NewManager(Config{Platform: platform.OdroidXU3(), DisableExploration: true}); err != nil {
		t.Errorf("offline Odroid manager: %v", err)
	}
	if _, err := NewManager(Config{Platform: platform.RaptorLake(), ReallocEvery: -1}); err == nil {
		t.Error("negative realloc cadence accepted")
	}
}

func TestRegisterPushesDecision(t *testing.T) {
	m, err := NewManager(Config{Platform: platform.RaptorLake()})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatalf("Register: %v", err)
	}
	d, ok := rec.last["ep-1"]
	if !ok {
		t.Fatal("no decision pushed on registration")
	}
	if !d.Exploring {
		t.Error("fresh app's first decision not an exploration configuration")
	}
	if len(d.Grants) == 0 || d.Vector.IsZero() {
		t.Errorf("empty first decision: %+v", d)
	}
	if d.Threads != d.Vector.Threads() {
		t.Errorf("scalable threads = %d, want %d (match hw threads)", d.Threads, d.Vector.Threads())
	}
}

func TestRegisterValidation(t *testing.T) {
	m, err := NewManager(Config{Platform: platform.RaptorLake()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("", "x", workload.Scalable, false); err == nil {
		t.Error("empty instance accepted")
	}
	if err := m.Register("a", "x", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", "x", workload.Scalable, false); !errors.Is(err, ErrDuplicateSession) {
		t.Errorf("duplicate register err = %v, want ErrDuplicateSession", err)
	}
}

func TestUnknownSessionErrors(t *testing.T) {
	m, err := NewManager(Config{Platform: platform.RaptorLake()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Measure("ghost", 1, 1); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Measure(ghost) = %v", err)
	}
	if err := m.Deregister("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Deregister(ghost) = %v", err)
	}
	if _, err := m.Stage("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Stage(ghost) = %v", err)
	}
	if _, err := m.Table("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Table(ghost) = %v", err)
	}
}

func TestOfflineModeUsesDescriptionTables(t *testing.T) {
	p := platform.OdroidXU3()
	mg := mustProfile(t, workload.OdroidApps(), "mg.A")
	m, err := NewManager(Config{
		Platform:           p,
		DisableExploration: true,
		OfflineTables:      map[string]*opoint.Table{"mg.A": offlineTable(p, mg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("mg-1", "mg.A", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	d := rec.last["mg-1"]
	if d.Exploring {
		t.Error("offline-mode decision marked exploring")
	}
	stage, err := m.Stage("mg-1")
	if err != nil {
		t.Fatal(err)
	}
	if stage != explore.StageStable {
		t.Errorf("offline stage = %v, want stable", stage)
	}
	// mg is memory-bound and bandwidth-capped: the cost-optimal allocation
	// uses a small subset of the machine instead of all eight cores.
	if got := d.Vector.TotalCores(); got >= 8 {
		t.Errorf("mg.A allocation %v uses %d cores; expected a scaled-down pick", d.Vector, got)
	}
}

// Online learning end-to-end: feeding ground-truth measurements must walk the
// session through the stages into a stable, non-exploring decision.
func TestOnlineLearningReachesStable(t *testing.T) {
	p := platform.RaptorLake()
	prof := mustProfile(t, workload.IntelApps(), "ft.C")
	m, err := NewManager(Config{
		Platform: p,
		Explore:  explore.Config{MeasurementsPerPoint: 2, StableAfter: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("ft-1", "ft.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 500; i++ {
		stage, err := m.Stage("ft-1")
		if err != nil {
			t.Fatal(err)
		}
		if stage == explore.StageStable {
			break
		}
		d := rec.last["ft-1"]
		ev := workload.EvaluateVector(p, prof, d.Vector)
		if err := m.Measure("ft-1", ev.Utility, ev.PowerWatts); err != nil {
			t.Fatalf("Measure: %v", err)
		}
	}
	stage, err := m.Stage("ft-1")
	if err != nil {
		t.Fatal(err)
	}
	if stage != explore.StageStable {
		t.Fatalf("stage after learning = %v, want stable", stage)
	}
	d := rec.last["ft-1"]
	if d.Exploring {
		t.Error("stable session still on an exploration decision")
	}
	tbl, err := m.Table("ft-1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MeasuredCount() < 15 {
		t.Errorf("measured points = %d, want ≥ 15", tbl.MeasuredCount())
	}
	if m.AllStable() != true {
		t.Error("AllStable = false with one stable session")
	}
}

func TestDecisionsDoNotOverlap(t *testing.T) {
	p := platform.RaptorLake()
	tables := make(map[string]*opoint.Table)
	for _, name := range []string{"ep.C", "mg.C", "cg.C"} {
		tables[name] = offlineTable(p, mustProfile(t, workload.IntelApps(), name))
	}
	m, err := NewManager(Config{Platform: p, DisableExploration: true, OfflineTables: tables})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	for _, name := range []string{"ep.C", "mg.C", "cg.C"} {
		if err := m.Register(name, name, workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	used := make(map[int]string)
	for inst, d := range rec.last {
		if d.CoAllocated {
			continue
		}
		for _, g := range d.Grants {
			if other, ok := used[g.Core]; ok && other != inst {
				t.Errorf("core %d granted to both %s and %s", g.Core, other, inst)
			}
			used[g.Core] = inst
		}
	}
}

func TestExplorationPoolsDoNotOverlap(t *testing.T) {
	p := platform.RaptorLake()
	m, err := NewManager(Config{Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	for _, name := range []string{"a", "b", "c"} {
		if err := m.Register(name, "app-"+name, workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	used := make(map[int]string)
	for inst, d := range rec.last {
		for _, g := range d.Grants {
			if other, ok := used[g.Core]; ok && other != inst {
				t.Errorf("exploring sessions %s and %s share core %d", other, inst, g.Core)
			}
			used[g.Core] = inst
		}
	}
}

func TestCoAllocationSuspendsMonitoring(t *testing.T) {
	p := platform.OdroidXU3()
	// Force overload: tables demanding the full machine for many sessions.
	prof := mustProfile(t, workload.OdroidApps(), "ep.A")
	tbl := &opoint.Table{App: "hungry", Platform: p.Name}
	full := p.Capacity()
	ev := workload.EvaluateVector(p, prof, full)
	tbl.Upsert(opoint.OperatingPoint{Vector: full, Utility: ev.Utility, Power: ev.PowerWatts})

	m, err := NewManager(Config{
		Platform:           p,
		DisableExploration: true,
		OfflineTables:      map[string]*opoint.Table{"hungry": tbl},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	for _, inst := range []string{"h1", "h2", "h3", "h4"} {
		if err := m.Register(inst, "hungry", workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	var coallocated string
	for inst, d := range rec.last {
		if d.CoAllocated {
			coallocated = inst
		}
	}
	if coallocated == "" {
		t.Fatal("no co-allocated session among 4 full-machine apps on 8 cores")
	}
	// Measurements on a co-allocated session are silently dropped.
	if err := m.Measure(coallocated, 100, 100); err != nil {
		t.Fatalf("Measure(coallocated): %v", err)
	}
	tblAfter, err := m.Table(coallocated)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tblAfter.Points {
		if op.Measured && op.Utility == 100 {
			t.Error("co-allocated measurement leaked into the table")
		}
	}
}

func TestDeregisterReallocatesSurvivors(t *testing.T) {
	p := platform.OdroidXU3()
	prof := mustProfile(t, workload.OdroidApps(), "ep.A")
	tables := map[string]*opoint.Table{"ep.A": offlineTable(p, prof)}
	m, err := NewManager(Config{Platform: p, DisableExploration: true, OfflineTables: tables})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("a", "ep.A", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", "ep.A", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	sharedCores := rec.last["a"].Vector.TotalCores()
	if err := m.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	aloneCores := rec.last["a"].Vector.TotalCores()
	if aloneCores < sharedCores {
		t.Errorf("survivor shrank after peer exit: %d → %d cores", sharedCores, aloneCores)
	}
	if err := m.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Sessions()); got != 0 {
		t.Errorf("sessions after all exits = %d", got)
	}
}

func TestStaticAppThreadsUntouched(t *testing.T) {
	p := platform.OdroidXU3()
	m, err := NewManager(Config{Platform: p, DisableExploration: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("s", "static-app", workload.Static, false); err != nil {
		t.Fatal(err)
	}
	if d := rec.last["s"]; d.Threads != 0 {
		t.Errorf("static decision threads = %d, want 0 (leave unchanged)", d.Threads)
	}
}

func TestSessionsSummary(t *testing.T) {
	p := platform.RaptorLake()
	m, err := NewManager(Config{Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("x", "appx", workload.Custom, true); err != nil {
		t.Fatal(err)
	}
	infos := m.Sessions()
	if len(infos) != 1 {
		t.Fatalf("sessions = %d, want 1", len(infos))
	}
	got := infos[0]
	if got.Instance != "x" || got.App != "appx" || got.Adaptivity != workload.Custom || !got.OwnUtility {
		t.Errorf("session info = %+v", got)
	}
	if got.Stage != explore.StageInitial {
		t.Errorf("fresh session stage = %v, want initial", got.Stage)
	}
	own, err := m.OwnUtility("x")
	if err != nil || !own {
		t.Errorf("OwnUtility = (%v, %v), want (true, nil)", own, err)
	}
}

func TestUploadTable(t *testing.T) {
	p := platform.RaptorLake()
	prof := mustProfile(t, workload.IntelApps(), "ep.C")
	m, err := NewManager(Config{Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("e", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.UploadTable("e", nil); err == nil {
		t.Error("nil table accepted")
	}
	if err := m.UploadTable("e", offlineTable(p, prof)); err != nil {
		t.Fatalf("UploadTable: %v", err)
	}
	stage, err := m.Stage("e")
	if err != nil {
		t.Fatal(err)
	}
	if stage != explore.StageStable {
		t.Errorf("stage after full table upload = %v, want stable", stage)
	}
	if rec.last["e"].Exploring {
		t.Error("decision still exploring after full table upload")
	}
}

// Stable sessions must be reassessed after the configured number of
// measurements (§5.3: every 100).
func TestStableReallocCadence(t *testing.T) {
	p := platform.RaptorLake()
	prof := mustProfile(t, workload.IntelApps(), "ep.C")
	m, err := NewManager(Config{
		Platform:      p,
		ReallocEvery:  10,
		OfflineTables: map[string]*opoint.Table{"ep.C": offlineTable(p, prof)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("e", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	// The session is stable (seeded); count reallocations via a probe that
	// watches allocator activity indirectly: decisions only change if the
	// allocation changes, so register a second app mid-stream and verify the
	// survivor picks up the new capacity on the cadence boundary.
	for i := 0; i < 9; i++ {
		if err := m.Measure("e", 100, 10); err != nil {
			t.Fatal(err)
		}
	}
	// The 10th measurement triggers Reallocate without error.
	if err := m.Measure("e", 100, 10); err != nil {
		t.Fatalf("cadence reallocation: %v", err)
	}
}

// Operating-point tables persist across sessions of the same application:
// a restarted app resumes learning instead of starting over (§4.3,
// self-improving resource management).
func TestExplorerPersistsAcrossSessions(t *testing.T) {
	p := platform.RaptorLake()
	prof := mustProfile(t, workload.IntelApps(), "ft.C")
	m, err := NewManager(Config{
		Platform: p,
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)

	if err := m.Register("run-1", "ft.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d := rec.last["run-1"]
		ev := workload.EvaluateVector(p, prof, d.Vector)
		if err := m.Measure("run-1", ev.Utility, ev.PowerWatts); err != nil {
			t.Fatal(err)
		}
	}
	before, err := m.Table("run-1")
	if err != nil {
		t.Fatal(err)
	}
	if before.MeasuredCount() == 0 {
		t.Fatal("no points learned in the first session")
	}
	if err := m.Deregister("run-1"); err != nil {
		t.Fatal(err)
	}

	// Second execution of the same application: knowledge carries over.
	if err := m.Register("run-2", "ft.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	after, err := m.Table("run-2")
	if err != nil {
		t.Fatal(err)
	}
	if after.MeasuredCount() < before.MeasuredCount() {
		t.Errorf("knowledge lost across sessions: %d → %d measured points",
			before.MeasuredCount(), after.MeasuredCount())
	}
	tables := m.LearnedTables()
	if tables["ft.C"] == nil || tables["ft.C"].MeasuredCount() != after.MeasuredCount() {
		t.Errorf("LearnedTables inconsistent with session table")
	}
}

// Phase transitions (§7 outlook extension): the RM discards in-flight
// exploration measurements and restarts the stable cadence.
func TestPhaseChangeResetsState(t *testing.T) {
	p := platform.RaptorLake()
	m, err := NewManager(Config{Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m)
	if err := m.Register("ph", "phased-app", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	// Partially measure the current exploration point.
	if err := m.Measure("ph", 100, 50); err != nil {
		t.Fatal(err)
	}
	if err := m.PhaseChange("ph", "compute-stage"); err != nil {
		t.Fatalf("PhaseChange: %v", err)
	}
	infos := m.Sessions()
	if infos[0].Phase != "compute-stage" {
		t.Errorf("phase = %q, want compute-stage", infos[0].Phase)
	}
	// Measuring keeps working after the reset.
	if err := m.Measure("ph", 120, 55); err != nil {
		t.Fatalf("Measure after phase change: %v", err)
	}
	if err := m.PhaseChange("ghost", "x"); err == nil {
		t.Error("PhaseChange on unknown session accepted")
	}
}
