package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// ErrTooManySessions is returned by Register when the MaxSessions admission
// cap is reached. Embedders report it to the client; the attempt is
// journalled and counted (harp_sessions_rejected_total).
var ErrTooManySessions = errors.New("core: session limit reached")

// StateSink receives one durable record per mutating operation — session
// registrations and exits, table uploads, committed exploration points and
// phase changes. *store.Store is the production implementation; the Manager
// ignores append errors (the store keeps a sticky error and metrics — the
// RM must not die because its disk did).
//
// When wiring a *store.Store, only assign the field when the pointer is
// non-nil: a typed-nil interface would pass the Manager's nil check and
// panic on the first append.
type StateSink interface {
	Append(store.Record) error
}

// SnapshotWriter persists a full state snapshot (implemented by
// *store.Store).
type SnapshotWriter interface {
	WriteSnapshot(*store.State) error
}

// ExportState captures the Manager's durable state: every application's
// learned operating-point table, the registered sessions, and the
// decision-sequence high-water. Sessions are sorted by instance so the
// snapshot bytes are deterministic.
func (m *Manager) ExportState() *store.State {
	st := store.NewState()
	st.Seq = m.seq
	for app, e := range m.explorers {
		st.Tables[app] = e.Table().Clone()
	}
	for _, id := range m.order {
		if id == "" {
			continue // tombstoned order slot (orderRemove)
		}
		s := m.sessions[id]
		st.Sessions = append(st.Sessions, store.SessionState{
			Instance:   s.instance,
			App:        s.app,
			Adaptivity: s.adaptivity.String(),
			OwnUtility: s.ownUtility,
			Phase:      s.phase,
		})
	}
	sort.Slice(st.Sessions, func(i, j int) bool {
		return st.Sessions[i].Instance < st.Sessions[j].Instance
	})
	if c, ok := m.allocator.(cacheExporter); ok {
		st.AllocCache = c.ExportCache(exportCacheMax)
	}
	st.Energy = m.cfg.Energy.Export()
	return st
}

// cacheExporter is the optional allocator capability ExportState/ImportState
// use to persist the fingerprinted solution cache (*alloc.Allocator
// implements it).
type cacheExporter interface {
	ExportCache(max int) []alloc.CachedSolution
	SeedCache(entries []alloc.CachedSolution)
}

// exportCacheMax bounds how many cached solutions a snapshot carries. Warm
// restart only needs the recent working set — typically the single standing
// fingerprint — not the whole LRU history.
const exportCacheMax = 16

// ImportState replays recovered state into a fresh Manager: tables seed the
// per-application explorers (restoring each app's exploration stage, which
// is derived from the measured-point count), the decision sequence resumes
// from its high-water, and the recovered sessions are remembered as prior
// instances — when their clients reconnect, Register restores their phase
// and counts the resumption. Call it once, before any session registers.
//
// The recovery itself is journalled as a `recover` epoch (with recovErr in
// the error field when recovery degraded, e.g. a quarantined store) and
// traced as EvStateRecovered.
func (m *Manager) ImportState(st *store.State, rec store.Recovery) error {
	if st == nil {
		return errors.New("core: nil state import")
	}
	if len(m.sessions) > 0 {
		return errors.New("core: state import with live sessions")
	}
	for app, tbl := range st.Tables {
		if err := tbl.Validate(m.cfg.Platform); err != nil {
			// A table that does not fit this platform (e.g. the state dir
			// moved between machines) is dropped, not fatal: the app will
			// re-learn.
			continue
		}
		m.explorerFor(app).SeedTable(tbl)
	}
	for _, ss := range st.Sessions {
		m.ended[ss.Instance] = struct{}{}
		if ss.Phase != "" {
			if m.priorPhase == nil {
				m.priorPhase = make(map[string]string)
			}
			m.priorPhase[ss.Instance] = ss.Phase
		}
	}
	if st.Seq > m.seq {
		m.seq = st.Seq
	}
	stage := "warm"
	if rec.ColdStart {
		stage = "cold"
	}
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:  telemetry.EvStateRecovered,
		Stage: stage,
		Seq:   int(rec.Generation),
		Vals: [4]float64{
			float64(len(st.Tables)),
			float64(len(st.Sessions)),
			float64(rec.WALRecords),
			float64(rec.Corruptions),
		},
	})
	errMsg := ""
	if rec.Err != nil {
		errMsg = rec.Err.Error()
	}
	if c, ok := m.allocator.(cacheExporter); ok {
		c.SeedCache(st.AllocCache)
	}
	if st.Energy != nil {
		// Restore the cumulative joule accounting so "energy since
		// deployment" survives the restart; integration re-anchors at each
		// session's next sample, so no energy is invented for the downtime.
		m.cfg.Energy.Seed(st.Energy)
	}
	m.recordEpochWith("recover", 0, "", errMsg)
	return nil
}

// SnapshotTo journals a `snapshot` epoch and then writes the exported state
// through w — in that order, so the final snapshot of a graceful shutdown
// is provably written after the last journalled epoch.
func (m *Manager) SnapshotTo(w SnapshotWriter) error {
	if w == nil {
		return errors.New("core: nil snapshot writer")
	}
	m.recordEpochWith("snapshot", 0, "", "")
	st := m.ExportState()
	if err := w.WriteSnapshot(st); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	if m.cfg.Tracer.Enabled() {
		raw, _ := store.EncodeSnapshot(st)
		m.cfg.Tracer.Emit(telemetry.Event{
			Kind: telemetry.EvSnapshotWritten,
			Seq:  m.seq,
			Vals: [4]float64{float64(len(raw))},
		})
	}
	return nil
}

// appendRecord hands one mutation record to the configured state sink.
// Append errors are deliberately dropped here: the sink keeps them sticky.
func (m *Manager) appendRecord(rec store.Record) {
	if m.cfg.Store == nil {
		return
	}
	rec.Seq = m.seq
	_ = m.cfg.Store.Append(rec)
}

// ParseAdaptivity maps the durable string form back to the workload enum
// (inverse of workload.Adaptivity.String).
func ParseAdaptivity(s string) (workload.Adaptivity, error) {
	switch s {
	case "static":
		return workload.Static, nil
	case "scalable":
		return workload.Scalable, nil
	case "custom":
		return workload.Custom, nil
	}
	return 0, fmt.Errorf("core: unknown adaptivity %q", s)
}

// rejectRegistration journals, traces and counts an admission-control
// rejection.
func (m *Manager) rejectRegistration(instance, app, reason string) error {
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     telemetry.EvSessionRejected,
		Instance: instance,
		App:      app,
		Stage:    reason,
	})
	if mt := m.cfg.Metrics; mt != nil {
		mt.SessionsRejected.Inc()
	}
	err := fmt.Errorf("%w: %d sessions, cap %d", ErrTooManySessions, len(m.sessions), m.cfg.MaxSessions)
	m.recordEpochWith("rejected", 0, "", err.Error())
	return err
}
