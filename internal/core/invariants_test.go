package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// invariantHarness drives one Manager through random operations while
// mirroring every pushed decision into a timeline the internal/check suite
// can replay: each operation is one batch (one AtSec), deregistrations and
// reaps append explicit core-clearing entries.
type invariantHarness struct {
	t    *testing.T
	m    *Manager
	jbuf *bytes.Buffer

	op       int
	timeline []check.TimelineEntry
	pushed   []telemetry.EpochOutput
	live     []string // registered instances, registration order
}

func newInvariantHarness(t *testing.T, p *platform.Platform, tables map[string]*opoint.Table) *invariantHarness {
	t.Helper()
	h := &invariantHarness{t: t, jbuf: &bytes.Buffer{}}
	m, err := NewManager(Config{
		Platform:           p,
		OfflineTables:      tables,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(h.jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.OnDecision(func(d Decision) {
		cores := make([]int, 0, len(d.Grants))
		for _, g := range d.Grants {
			cores = append(cores, g.Core)
		}
		h.timeline = append(h.timeline, check.TimelineEntry{
			AtSec:       float64(h.op),
			Instance:    d.Instance,
			Cores:       cores,
			CoAllocated: d.CoAllocated,
		})
		h.pushed = append(h.pushed, telemetry.EpochOutput{
			Instance:    d.Instance,
			Seq:         d.Seq,
			Vector:      d.Vector.Key(),
			Threads:     d.Threads,
			Cores:       len(d.Grants),
			Exploring:   d.Exploring,
			CoAllocated: d.CoAllocated,
			PredPowerW:  d.PredictedPowerW,
		})
	})
	h.m = m
	return h
}

// clear records that an instance's standing allocation ended without a
// pushed decision (deregister/reap remove the session silently).
func (h *invariantHarness) clear(instance string) {
	h.timeline = append(h.timeline, check.TimelineEntry{AtSec: float64(h.op), Instance: instance})
}

func (h *invariantHarness) drop(instance string) {
	for i, id := range h.live {
		if id == instance {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
}

// TestManagerInvariantsRandomOps drives random operation sequences —
// register, deregister, reap, quarantine, readmit, phase change, measurement
// bursts, manual reallocation — against a Manager and asserts the reusable
// invariant suite over the resulting decision stream and journal: spatial
// isolation and capacity conservation at every step (including across
// quarantine and reap), a well-formed journal, and journal outputs exactly
// equal to the pushed-decision stream.
func TestManagerInvariantsRandomOps(t *testing.T) {
	// The small Odroid platform keeps each solve cheap while its 4+4 cores
	// put real co-allocation pressure on a six-session fuzz.
	p := platform.OdroidXU3()
	profiles := workload.IntelApps()
	tables := make(map[string]*opoint.Table, len(profiles))
	var apps []string
	for _, prof := range profiles {
		tables[prof.Name] = offlineTable(p, prof)
		apps = append(apps, prof.Name)
	}
	seeds := int64(8)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			h := newInvariantHarness(t, p, tables)
			rng := rand.New(rand.NewSource(seed))
			nextID := 0
			for h.op = 0; h.op < 80; h.op++ {
				switch roll := rng.Intn(10); {
				// Cap the session count: solve time grows with it and the
				// invariants do not need ever-larger instances.
				case (roll < 3 && len(h.live) < 6) || len(h.live) == 0: // register
					app := apps[rng.Intn(len(apps))]
					id := fmt.Sprintf("%s-%d", app, nextID)
					nextID++
					if err := h.m.Register(id, app, workload.Scalable, false); err != nil {
						t.Fatalf("op %d: Register(%s): %v", h.op, id, err)
					}
					h.live = append(h.live, id)
				case roll < 4: // deregister
					id := h.live[rng.Intn(len(h.live))]
					if err := h.m.Deregister(id); err != nil {
						t.Fatalf("op %d: Deregister(%s): %v", h.op, id, err)
					}
					h.drop(id)
					h.clear(id)
				case roll < 5: // reap
					id := h.live[rng.Intn(len(h.live))]
					if err := h.m.Reap(id); err != nil {
						t.Fatalf("op %d: Reap(%s): %v", h.op, id, err)
					}
					h.drop(id)
					h.clear(id)
				case roll < 7: // liveness transition
					id := h.live[rng.Intn(len(h.live))]
					states := []Liveness{LivenessLive, LivenessSuspect, LivenessQuarantined}
					if err := h.m.SetLiveness(id, states[rng.Intn(len(states))], "fuzz"); err != nil {
						t.Fatalf("op %d: SetLiveness(%s): %v", h.op, id, err)
					}
				case roll < 8: // phase change
					id := h.live[rng.Intn(len(h.live))]
					if err := h.m.PhaseChange(id, fmt.Sprintf("phase-%d", h.op)); err != nil {
						t.Fatalf("op %d: PhaseChange(%s): %v", h.op, id, err)
					}
				case roll < 9: // measurement burst (may trip the cadence)
					id := h.live[rng.Intn(len(h.live))]
					for i := 0; i < 30; i++ {
						if err := h.m.Measure(id, 1+rng.Float64(), 1+rng.Float64()); err != nil {
							t.Fatalf("op %d: Measure(%s): %v", h.op, id, err)
						}
					}
				default:
					if err := h.m.Reallocate(); err != nil {
						t.Fatalf("op %d: Reallocate: %v", h.op, err)
					}
				}
				if err := check.CheckTimelineIsolation(p, h.timeline); err != nil {
					t.Fatalf("op %d: %v", h.op, err)
				}
			}
			records, err := telemetry.ReadJournal(bytes.NewReader(h.jbuf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := check.CheckJournal(records); err != nil {
				t.Error(err)
			}
			if err := check.CheckJournalMatchesPushed(records, h.pushed); err != nil {
				t.Error(err)
			}
			for _, rec := range records {
				if rec.Error != "" {
					t.Errorf("epoch %d recorded an allocation error: %s", rec.Epoch, rec.Error)
				}
			}
		})
	}
}

// flakyAllocator delegates to a real allocator until armed, then fails every
// solve with a fixed error.
type flakyAllocator struct {
	real Allocator
	fail bool
}

func (f *flakyAllocator) AllocateWithStats(apps []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error) {
	if f.fail {
		return nil, alloc.Stats{}, errors.New("injected solver failure")
	}
	return f.real.AllocateWithStats(apps)
}

// TestRegisterRollbackOnAllocError pins the ghost-session bug at the core
// layer: when the registration-triggered solve fails, the half-registered
// session must be rolled back out — not left joining future solves with
// nobody listening — the failure must be journalled as an error epoch, and
// the same instance must be able to register again once the solver recovers.
func TestRegisterRollbackOnAllocError(t *testing.T) {
	p := platform.RaptorLake()
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	fa := &flakyAllocator{real: real}
	var jbuf bytes.Buffer
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          fa,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(&jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatalf("healthy Register: %v", err)
	}

	fa.fail = true
	if err := m.Register("b-1", "cg.C", workload.Scalable, false); err == nil {
		t.Fatal("Register succeeded although the solve failed")
	}
	if got := len(m.Sessions()); got != 1 {
		t.Fatalf("%d sessions after failed registration, want 1 (ghost session left behind)", got)
	}
	if err := m.Measure("b-1", 1, 1); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Measure on rolled-back session = %v, want ErrUnknownSession", err)
	}

	fa.fail = false
	if err := m.Register("b-1", "cg.C", workload.Scalable, false); err != nil {
		t.Fatalf("re-Register after solver recovery: %v", err)
	}
	if got := len(m.Sessions()); got != 2 {
		t.Fatalf("%d sessions after recovery, want 2", got)
	}

	records, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := check.CheckJournal(records); err != nil {
		t.Error(err)
	}
	var errEpochs int
	for _, rec := range records {
		if rec.Error == "" {
			continue
		}
		errEpochs++
		if rec.Trigger != "register" {
			t.Errorf("error epoch %d has trigger %q, want register", rec.Epoch, rec.Trigger)
		}
		if !strings.Contains(rec.Error, "injected solver failure") {
			t.Errorf("error epoch %d records %q, want the injected failure", rec.Epoch, rec.Error)
		}
		if len(rec.Outputs) != 0 {
			t.Errorf("error epoch %d pushed %d decisions", rec.Epoch, len(rec.Outputs))
		}
	}
	if errEpochs != 1 {
		t.Errorf("%d error epochs journalled, want 1", errEpochs)
	}
}

// TestManagerSameSeedDeterministic runs the random-op sequence twice with the
// same seed and requires byte-identical journals — the determinism invariant
// at the Manager layer.
func TestManagerSameSeedDeterministic(t *testing.T) {
	p := platform.OdroidXU3()
	profiles := workload.IntelApps()
	tables := make(map[string]*opoint.Table, len(profiles))
	var apps []string
	for _, prof := range profiles {
		tables[prof.Name] = offlineTable(p, prof)
		apps = append(apps, prof.Name)
	}
	run := func() []byte {
		h := newInvariantHarness(t, p, tables)
		rng := rand.New(rand.NewSource(42))
		nextID := 0
		for h.op = 0; h.op < 40; h.op++ {
			switch roll := rng.Intn(6); {
			case (roll < 2 && len(h.live) < 6) || len(h.live) == 0:
				app := apps[rng.Intn(len(apps))]
				id := fmt.Sprintf("%s-%d", app, nextID)
				nextID++
				if err := h.m.Register(id, app, workload.Scalable, false); err != nil {
					t.Fatal(err)
				}
				h.live = append(h.live, id)
			case roll < 3:
				id := h.live[rng.Intn(len(h.live))]
				if err := h.m.Deregister(id); err != nil {
					t.Fatal(err)
				}
				h.drop(id)
			case roll < 4:
				id := h.live[rng.Intn(len(h.live))]
				if err := h.m.Measure(id, 1+rng.Float64(), 1+rng.Float64()); err != nil {
					t.Fatal(err)
				}
			default:
				if err := h.m.Reallocate(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return h.jbuf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different journals")
	}
}
