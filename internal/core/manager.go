// Package core implements the HARP resource manager (§4): the paper's
// primary contribution. A Manager tracks registered applications (sessions),
// maintains their operating-point tables (offline-supplied or learned online
// through internal/explore), solves the energy-efficient allocation problem
// (internal/alloc), and pushes decisions back to applications through a
// caller-supplied callback — the two-way coordination channel.
//
// The Manager is transport- and time-agnostic: the harp package drives it
// from Unix-socket sessions and wall-clock timers, while harpsim drives it
// from the simulator's virtual clock. It is not goroutine-safe; the embedding
// layer serialises calls.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// DefaultReallocEvery is how many stable-stage measurements pass between
// allocation reassessments (§5.3: every 100 measurements).
const DefaultReallocEvery = 100

// DefaultEpochBudget is the default per-solve deadline budget: a fraction
// of the 50 ms adaptation tick, leaving headroom for the push and journal
// phases. Enforced only when Config.LatencyClock is wired (live servers);
// simulated runs have no wall deadline and rely on the error/stall rungs.
const DefaultEpochBudget = 20 * time.Millisecond

// Common errors.
var (
	// ErrUnknownSession is returned for operations on unregistered
	// instances.
	ErrUnknownSession = errors.New("core: unknown session")
	// ErrDuplicateSession is returned when an instance registers twice.
	ErrDuplicateSession = errors.New("core: session already registered")
)

// errSolverStalled stands in for the primary solver when an injected or
// detected stall skips it (degradation-ladder entry).
var errSolverStalled = errors.New("core: solver stalled past its deadline budget")

// Decision is one allocation pushed to an application (§4.1.1 step 3).
type Decision struct {
	// Instance is the registered application instance.
	Instance string
	// Seq orders decisions globally.
	Seq int
	// Vector is the activated extended resource vector.
	Vector platform.ResourceVector
	// Threads is the parallelisation degree for scalable/custom apps
	// (0 = leave unchanged, used for static apps).
	Threads int
	// Grants are the concrete cores assigned.
	Grants []alloc.CoreGrant
	// CoAllocated warns that the cores are time-shared with other apps.
	CoAllocated bool
	// Exploring marks an exploration configuration rather than a
	// cost-optimal stable allocation.
	Exploring bool
	// PredictedPowerW is the selected operating point's predicted power
	// draw — the application's slice of the system power budget (0 for
	// exploration probes, which have no prediction yet).
	PredictedPowerW float64
}

// SessionInfo is a read-only session summary.
type SessionInfo struct {
	Instance    string
	App         string
	Adaptivity  workload.Adaptivity
	OwnUtility  bool
	Stage       explore.Stage
	CoAllocated bool
	Measured    int
	// Phase is the application-announced execution stage (§7 outlook
	// extension; empty if never announced).
	Phase string
	// Liveness is the session's health state (live, suspect, quarantined).
	Liveness Liveness
	// LastReportAgeSec is the silence age the embedding layer observed when
	// the summary was taken (-1 when the embedder does not track liveness).
	LastReportAgeSec float64
	// Utility and Power are the last smoothed sample fed to Measure.
	Utility float64
	Power   float64
	// Vector, Threads, Cores, Seq and Exploring summarise the session's
	// standing decision (zero values before the first push).
	Vector    string
	Threads   int
	Cores     int
	Seq       int
	Exploring bool
}

// Allocator solves the MMKP for the manager. *alloc.Allocator is the
// production implementation; the indirection exists so correctness tests can
// inject failing or instrumented solvers and verify that allocation errors
// surface in the decision journal instead of turning into bad decisions.
type Allocator interface {
	AllocateWithStats(apps []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error)
}

// Config configures a Manager.
type Config struct {
	// Platform is the hardware description (required).
	Platform *platform.Platform
	// Allocator solves the MMKP; nil builds a default Lagrangian allocator.
	Allocator Allocator
	// Explore tunes runtime exploration.
	Explore explore.Config
	// OfflineTables maps application names to pre-generated operating-point
	// tables (the /etc/harp directory, §4.3).
	OfflineTables map[string]*opoint.Table
	// DisableExploration turns off online exploration — the HARP (Offline)
	// configuration, mandatory on platforms without simultaneous PMU access
	// such as the Odroid XU3-E (§6.4).
	DisableExploration bool
	// ReallocEvery is the stable-stage reallocation cadence in
	// measurements; 0 selects DefaultReallocEvery.
	ReallocEvery int
	// Tracer receives structured adaptation-loop events (nil disables
	// tracing). It is also handed to the explorers and, when Allocator is
	// nil, to the default allocator.
	Tracer *telemetry.Tracer
	// Journal records one JSONL epoch per decision batch (nil disables).
	Journal *telemetry.Journal
	// Metrics receives the adaptation-loop instruments (nil disables).
	Metrics *telemetry.Metrics
	// Energy accumulates per-session and fleet joules from Measure samples
	// (nil disables energy accounting). The embedding layer owns the ledger
	// and its clock: harp.Server binds wall time since startup, harpsim binds
	// the machine's virtual clock.
	Energy *telemetry.EnergyLedger
	// LatencyClock, when set, times each allocation for the
	// harp_allocation_seconds histogram. Servers inject wall time since
	// startup; simulated runs leave it nil (the histogram would measure
	// host speed, not simulated behaviour).
	LatencyClock func() time.Duration
	// Store receives one durable record per mutating operation (nil
	// disables persistence). Assign a *store.Store only when non-nil — a
	// typed-nil interface would defeat the Manager's nil check.
	Store StateSink
	// MaxSessions caps concurrent registrations (0 = unlimited). Attempts
	// beyond the cap fail with ErrTooManySessions.
	MaxSessions int
	// AllocCacheSize sizes the default allocator's fingerprinted solution
	// cache: 0 selects alloc.DefaultCacheSize, negative disables caching.
	// Ignored when Allocator is set — a custom allocator manages its own
	// caching. The cache is content-addressed, so it is decision-transparent:
	// register/deregister/phase-change/table mutations change the fingerprint
	// and miss naturally (see PERFORMANCE.md).
	AllocCacheSize int
	// AllocWarmStart seeds the default allocator's subgradient iteration
	// from the previous epoch's λ vector. Warm-started solves converge in
	// fewer iterations but are not guaranteed bit-identical to cold solves,
	// so this is opt-in. Ignored when Allocator is set.
	AllocWarmStart bool
	// Coalesce batches the epochs mutating operations trigger: instead of one
	// solve per Register/Deregister/UploadTable/PhaseChange, a pending epoch
	// is enqueued and flushed by the adaptation tick (Manager.Tick) or at the
	// dirty-event bound. The zero value preserves solve-per-event behaviour.
	// See coalesce.go.
	Coalesce CoalescePolicy
	// ShardedAlloc replaces the default allocator with an alloc.Sharded that
	// partitions sessions into kind-footprint domains and solves them in
	// parallel. Ignored when Allocator is set. The sharded allocator does not
	// support the deadline probe or cache export (those hooks assume a single
	// solver), so EpochBudget's early-cutoff rung and snapshot cache seeding
	// are inactive with it.
	ShardedAlloc bool
	// ShardParallelism bounds the sharded allocator's worker count
	// (<= 0 = one per CPU). Ignored unless ShardedAlloc.
	ShardParallelism int
	// PowerCapW, when > 0, arms the sharded allocator's power-budget
	// coordinator: when the summed chosen-point power exceeds the cap, every
	// domain is re-solved once against proportionally scaled capacities.
	// Ignored unless ShardedAlloc.
	PowerCapW float64
	// AllocIncremental enables the default allocator's incremental re-solve
	// path: unchanged sessions stay pinned at their standing allocations and
	// only the changed set re-optimises against the residual capacity.
	// Opt-in for the same reason as AllocWarmStart — results are not
	// guaranteed bit-identical to cold solves. Ignored when Allocator is set.
	AllocIncremental bool
	// EpochBudget is the per-solve deadline for the degradation ladder:
	// the default allocator's subgradient loop cuts off early when the
	// budget is exceeded, and a solve that cannot produce a result at all
	// falls to the cheaper rungs (greedy fallback, last-known-good,
	// frozen). Wall-clock enforcement requires LatencyClock; 0 selects
	// DefaultEpochBudget, negative disables the deadline (the error, stall
	// and panic rungs stay active). With a custom Allocator the greedy
	// fallback rung is unavailable and solver errors keep their fail-fast
	// semantics — the indirection exists so tests can observe error epochs.
	EpochBudget time.Duration
}

type session struct {
	instance   string
	app        string
	adaptivity workload.Adaptivity
	ownUtility bool

	explorer *explore.Explorer

	// Current decision state.
	last *Decision

	// Exploration state for the current epoch: the concrete core pool the
	// session may roam in, and its per-kind size (the exploration bound).
	pool  map[platform.KindID][]int
	bound []int

	stableMeasurements int
	coAllocated        bool
	phase              string
	liveness           Liveness

	// Telemetry state: the last smoothed sample, and the session's gauges
	// cached at registration so the 50 ms hot path skips the GaugeVec map.
	lastUtility float64
	lastPower   float64
	utilGauge   *telemetry.Gauge
	powerGauge  *telemetry.Gauge
}

// Manager is the HARP resource manager.
type Manager struct {
	cfg       Config
	allocator Allocator
	sessions  map[string]*session
	explorers map[string]*explore.Explorer // per application name; persists across sessions
	// order preserves registration order for deterministic solves. Removal
	// tombstones the slot ("" entries, skipped by every iterator) and
	// compacts when half the slice is dead, so a deregistration storm is
	// amortised O(1) per event instead of the old O(N) scan. orderIdx maps
	// instance -> live slot; orderDead counts tombstones.
	order     []string
	orderIdx  map[string]int
	orderDead int
	seq       int
	onDecide  []func(Decision)

	// Coalescing state (coalesce.go): one pending epoch batching the
	// mutating events since the last solve.
	pendingEpoch   bool
	pendingTrigger string
	pendingEvents  int
	pendingTicks   int
	// ended remembers instances that deregistered, so a re-registration of
	// the same instance can be counted as a session resumption.
	ended map[string]struct{}
	// priorPhase remembers the last announced phase of sessions recovered
	// from durable state (ImportState), restored when the client reconnects.
	priorPhase map[string]string

	// pendingOut accumulates the decisions pushed since the last journal
	// epoch (only when a journal is configured), so an epoch's Outputs are
	// exactly the EvDecisionPushed events it covers.
	pendingOut []telemetry.EpochOutput

	// lastSolveSource remembers where the most recent solve's solution came
	// from ("cold", "warm" or "cached") for status surfaces; empty before
	// the first solve.
	lastSolveSource string

	// Flight-recorder phase histograms, resolved once at construction so the
	// epoch path never touches the HistogramVec map (nil without metrics —
	// the span API is nil-safe).
	epochHist    *telemetry.Histogram
	snapshotHist *telemetry.Histogram
	pushHist     *telemetry.Histogram
	journalHist  *telemetry.Histogram

	// Degradation-ladder state (see solveWithLadder). fallback is the
	// greedy rung-2 solver, built only alongside the default allocator;
	// lastGood is a clone of the most recent healthy solve's allocations;
	// forceDegraded counts pending injected solver stalls; lastEpochErr is
	// the sticky message of the last failed or degraded epoch; lastRung is
	// the rung that resolved the most recent epoch ("" = healthy); the
	// deadline pair arms the allocator's over-budget probe per solve.
	fallback      Allocator
	lastGood      []alloc.Allocation
	forceDegraded int
	lastEpochErr  string
	lastRung      string
	deadlineAt    time.Duration
	deadlineArmed bool
}

// NewManager creates a resource manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Platform == nil {
		return nil, errors.New("core: config without platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Platform.SimultaneousPMU && !cfg.DisableExploration {
		return nil, fmt.Errorf(
			"core: platform %s cannot monitor all core kinds simultaneously; online exploration must be disabled (§6.4)",
			cfg.Platform.Name)
	}
	allocator := cfg.Allocator
	var fallback Allocator
	if allocator == nil {
		cacheSize := cfg.AllocCacheSize
		if cacheSize == 0 {
			cacheSize = alloc.DefaultCacheSize
		}
		var err error
		if cfg.ShardedAlloc {
			// Children share the metrics bundle (its instruments are atomic)
			// but not the tracer: parallel children would interleave ring
			// events nondeterministically.
			allocator, err = alloc.NewSharded(cfg.Platform, cfg.ShardParallelism, cfg.PowerCapW,
				alloc.WithMetrics(cfg.Metrics),
				alloc.WithCache(cacheSize),
				alloc.WithWarmStart(cfg.AllocWarmStart),
				alloc.WithIncremental(cfg.AllocIncremental),
			)
		} else {
			allocator, err = alloc.New(cfg.Platform,
				alloc.WithTracer(cfg.Tracer),
				alloc.WithMetrics(cfg.Metrics),
				alloc.WithCache(cacheSize),
				alloc.WithWarmStart(cfg.AllocWarmStart),
				alloc.WithIncremental(cfg.AllocIncremental),
			)
		}
		if err != nil {
			return nil, err
		}
		// The rung-2 fallback: a bare greedy solver with no cache or warm
		// state, so a degraded epoch never perturbs the primary solver's
		// memo and unfaulted runs stay byte-identical.
		fallback, err = alloc.New(cfg.Platform, alloc.WithMethod(alloc.Greedy))
		if err != nil {
			return nil, err
		}
	}
	if cfg.Explore.Tracer == nil {
		cfg.Explore.Tracer = cfg.Tracer
	}
	if cfg.ReallocEvery == 0 {
		cfg.ReallocEvery = DefaultReallocEvery
	}
	if cfg.ReallocEvery < 1 {
		return nil, fmt.Errorf("core: realloc cadence %d", cfg.ReallocEvery)
	}
	if cfg.EpochBudget == 0 {
		cfg.EpochBudget = DefaultEpochBudget
	}
	m := &Manager{
		cfg:       cfg,
		allocator: allocator,
		fallback:  fallback,
		sessions:  make(map[string]*session),
		explorers: make(map[string]*explore.Explorer),
		ended:      make(map[string]struct{}),
		priorPhase: make(map[string]string),
		orderIdx:   make(map[string]int),
	}
	if cfg.LatencyClock != nil && cfg.EpochBudget > 0 {
		if da, ok := allocator.(interface{ SetOverBudget(func() bool) }); ok {
			da.SetOverBudget(func() bool {
				return m.deadlineArmed && m.cfg.LatencyClock() > m.deadlineAt
			})
		}
	}
	if mt := cfg.Metrics; mt != nil {
		m.epochHist = mt.EpochPhase.With(telemetry.PhaseEpoch)
		m.snapshotHist = mt.EpochPhase.With(telemetry.PhaseSnapshot)
		m.pushHist = mt.EpochPhase.With(telemetry.PhasePush)
		m.journalHist = mt.EpochPhase.With(telemetry.PhaseJournal)
		cfg.Energy.BindMetrics(mt.SessionEnergy, mt.EnergyTotal, mt.BudgetOverrunSeconds)
	}
	return m, nil
}

// explorerFor returns the application's persistent explorer, creating and
// seeding it on first use. Operating-point tables outlive individual
// sessions: profiles are refined across repeated executions (§4.3,
// "self-improving resource management").
func (m *Manager) explorerFor(app string) *explore.Explorer {
	if e, ok := m.explorers[app]; ok {
		return e
	}
	e := explore.New(m.cfg.Platform, app, m.cfg.Explore)
	if tbl, ok := m.cfg.OfflineTables[app]; ok {
		e.SeedTable(tbl)
	}
	m.explorers[app] = e
	return e
}

// OnDecision registers a callback invoked for every pushed decision.
func (m *Manager) OnDecision(fn func(Decision)) {
	m.onDecide = append(m.onDecide, fn)
}

// Register adds an application session and triggers a reallocation
// (§4.1.1 step 1). If an offline table for the application exists it seeds
// the session — with exploration disabled, that is the only knowledge source.
func (m *Manager) Register(instance, app string, adaptivity workload.Adaptivity, ownUtility bool) error {
	if instance == "" || app == "" {
		return errors.New("core: registration with empty instance or app name")
	}
	if _, ok := m.sessions[instance]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateSession, instance)
	}
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return m.rejectRegistration(instance, app, "max-sessions")
	}
	s := &session{
		instance:   instance,
		app:        app,
		adaptivity: adaptivity,
		ownUtility: ownUtility,
		explorer:   m.explorerFor(app),
	}
	// Stash the restart-continuity state the registration consumes so a
	// failed solve can restore it: without the stash, a failed registration
	// followed by a successful retry loses the resumed phase and the
	// reconnect count.
	priorPhase, hadPrior := m.priorPhase[instance]
	_, wasEnded := m.ended[instance]
	if hadPrior {
		// The instance existed before an RM restart; resume its announced
		// phase so the journal and status views stay continuous.
		s.phase = priorPhase
		delete(m.priorPhase, instance)
	}
	m.sessions[instance] = s
	m.orderAdd(instance)
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     telemetry.EvSessionRegistered,
		Instance: instance,
		App:      app,
		Stage:    s.explorer.Stage().String(),
	})
	if mt := m.cfg.Metrics; mt != nil {
		mt.Sessions.Set(float64(len(m.sessions)))
		s.utilGauge = mt.SessionUtility.With(instance)
		s.powerGauge = mt.SessionPower.With(instance)
	}
	delete(m.ended, instance)
	m.updateLiveGauge()
	rerr := m.epochAfter("register")
	if rerr != nil && !m.cfg.Coalesce.Enabled {
		// Roll the half-registered session back out: the caller reports the
		// failure to the client, and a ghost session would keep joining
		// future solves with nobody listening for its decisions. The journal
		// has already recorded the error epoch. (With coalescing the session
		// stays — a flush failure covers many sessions, and evicting the one
		// that tripped the dirty bound would be arbitrary; see coalesce.go.)
		delete(m.sessions, instance)
		m.orderRemove(instance)
		if mt := m.cfg.Metrics; mt != nil {
			mt.Sessions.Set(float64(len(m.sessions)))
			// Release the per-instance label series cached on the session
			// above — without this every rejected registration leaks a gauge
			// pair and metric cardinality grows forever.
			mt.SessionUtility.Delete(instance)
			mt.SessionPower.Delete(instance)
		}
		// Restore the consumed continuity state for the retry.
		if hadPrior {
			m.priorPhase[instance] = priorPhase
		}
		if wasEnded {
			m.ended[instance] = struct{}{}
		}
		m.updateLiveGauge()
		return rerr
	}
	// Counted only once the registration sticks — a rolled-back attempt is
	// not a resumption.
	if mt := m.cfg.Metrics; mt != nil && wasEnded {
		mt.Reconnects.Inc()
	}
	m.appendRecord(store.Record{
		Kind:       store.RecRegister,
		Instance:   instance,
		App:        app,
		Adaptivity: adaptivity.String(),
		OwnUtility: s.ownUtility,
		Phase:      s.phase,
	})
	return rerr
}

// orderAdd appends an instance to the deterministic solve order.
func (m *Manager) orderAdd(instance string) {
	m.orderIdx[instance] = len(m.order)
	m.order = append(m.order, instance)
}

// orderRemove tombstones the instance's slot in O(1) and compacts the slice
// once half of it is dead, keeping removal amortised O(1) per event.
func (m *Manager) orderRemove(instance string) {
	idx, ok := m.orderIdx[instance]
	if !ok {
		return
	}
	delete(m.orderIdx, instance)
	m.order[idx] = ""
	m.orderDead++
	if m.orderDead*2 < len(m.order) {
		return
	}
	live := m.order[:0]
	for _, id := range m.order {
		if id == "" {
			continue
		}
		m.orderIdx[id] = len(live)
		live = append(live, id)
	}
	m.order = live
	m.orderDead = 0
}

// UploadTable merges operating points supplied by the application itself
// (description file shipped with the app, §4.1.1 step 2) and reallocates.
func (m *Manager) UploadTable(instance string, t *opoint.Table) error {
	s, err := m.session(instance)
	if err != nil {
		return err
	}
	if t == nil {
		return errors.New("core: nil table upload")
	}
	if err := t.Validate(m.cfg.Platform); err != nil {
		return err
	}
	s.explorer.SeedTable(t)
	rerr := m.epochAfter("table-upload")
	m.appendRecord(store.Record{Kind: store.RecTable, Instance: instance, App: s.app, Table: t})
	return rerr
}

// Deregister removes a session (application exit) and reallocates.
func (m *Manager) Deregister(instance string) error {
	return m.deregister(instance, "deregister", telemetry.EvSessionExited)
}

// Reap removes a session the liveness reaper declared dead: the same cleanup
// as Deregister, but journaled and traced as a reap so decision streams
// distinguish voluntary exits from reclaimed sessions.
func (m *Manager) Reap(instance string) error {
	if mt := m.cfg.Metrics; mt != nil {
		if _, ok := m.sessions[instance]; ok {
			mt.SessionsReaped.Inc()
		}
	}
	return m.deregister(instance, "reap", telemetry.EvSessionReaped)
}

func (m *Manager) deregister(instance, trigger string, kind telemetry.EventKind) error {
	s, err := m.session(instance)
	if err != nil {
		return err
	}
	delete(m.sessions, instance)
	m.ended[instance] = struct{}{}
	m.cfg.Energy.EndSession(instance)
	m.orderRemove(instance)
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     kind,
		Instance: instance,
		App:      s.app,
	})
	if mt := m.cfg.Metrics; mt != nil {
		mt.Sessions.Set(float64(len(m.sessions)))
		mt.SessionUtility.Delete(instance)
		mt.SessionPower.Delete(instance)
	}
	m.updateLiveGauge()
	if len(m.sessions) == 0 {
		if mt := m.cfg.Metrics; mt != nil {
			mt.CoresGranted.Set(0)
		}
		m.appendRecord(store.Record{Kind: store.RecDeregister, Instance: instance, App: s.app})
		return nil
	}
	rerr := m.epochAfter(trigger)
	m.appendRecord(store.Record{Kind: store.RecDeregister, Instance: instance, App: s.app})
	return rerr
}

// SetLiveness transitions a session's health state (driven by the embedding
// layer's deadlines). Entering quarantine freezes learning and reallocates so
// the session's cores shrink to zero; leaving quarantine reallocates to
// restore them. Suspect transitions are recorded but keep the allocation.
// The reason labels the trace event (e.g. "silent", "write-failed").
func (m *Manager) SetLiveness(instance string, l Liveness, reason string) error {
	s, err := m.session(instance)
	if err != nil {
		return err
	}
	if s.liveness == l {
		return nil
	}
	old := s.liveness
	s.liveness = l
	var kind telemetry.EventKind
	switch {
	case l == LivenessQuarantined:
		kind = telemetry.EvSessionQuarantined
	case l == LivenessSuspect:
		kind = telemetry.EvSessionSuspect
	default:
		kind = telemetry.EvSessionReadmitted
	}
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     kind,
		Instance: instance,
		App:      s.app,
		Stage:    reason,
	})
	if mt := m.cfg.Metrics; mt != nil {
		switch kind {
		case telemetry.EvSessionQuarantined:
			mt.SessionsQuarantined.Inc()
		case telemetry.EvSessionReadmitted:
			mt.SessionsReadmitted.Inc()
		}
	}
	m.updateLiveGauge()
	switch {
	case l == LivenessQuarantined:
		// Freeze learning: an in-flight exploration measurement would mix
		// pre- and post-silence behaviour, and the stable cadence restarts
		// when the session resumes.
		s.explorer.Abort()
		s.stableMeasurements = 0
		return m.epochAfter("quarantine")
	case old == LivenessQuarantined:
		return m.epochAfter("readmit")
	}
	return nil
}

// Liveness returns a session's health state.
func (m *Manager) Liveness(instance string) (Liveness, error) {
	s, err := m.session(instance)
	if err != nil {
		return 0, err
	}
	return s.liveness, nil
}

// updateLiveGauge recounts the sessions in the live state.
func (m *Manager) updateLiveGauge() {
	mt := m.cfg.Metrics
	if mt == nil {
		return
	}
	live := 0
	for _, s := range m.sessions {
		if s.liveness == LivenessLive {
			live++
		}
	}
	mt.SessionsLive.Set(float64(live))
}

// Measure feeds one smoothed (utility, power) sample for a session
// (§4.1.1 step 4; the embedding layer samples at 50 ms). Exploring sessions
// fold it into the configuration under measurement; stable sessions count it
// toward the periodic reallocation cadence.
func (m *Manager) Measure(instance string, utility, power float64) error {
	s, err := m.session(instance)
	if err != nil {
		return err
	}
	s.lastUtility = utility
	s.lastPower = power
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     telemetry.EvMeasureSample,
		Instance: instance,
		App:      s.app,
		Utility:  utility,
		Power:    power,
	})
	if mt := m.cfg.Metrics; mt != nil {
		mt.Samples.Inc()
		s.utilGauge.Set(utility)
		s.powerGauge.Set(power)
	}
	// Energy accrues for every sample — quarantined and co-allocated
	// sessions still draw the watts they report, even while learning from
	// those samples is suspended.
	m.cfg.Energy.Observe(instance, utility, power)
	if s.liveness == LivenessQuarantined {
		// Learning is frozen in quarantine: the session's cores were
		// reclaimed, so samples describe a zero-resource configuration and
		// would corrupt the operating-point table. The embedding layer
		// readmits the session (SetLiveness) when its reports resume.
		return nil
	}
	if s.coAllocated {
		// Co-allocation distorts measurements; monitoring is suspended
		// (§4.2.2, Limitations).
		return nil
	}
	if m.exploring(s) {
		cur, measuring := s.explorer.Current()
		if !measuring {
			// Not currently measuring (e.g. just seeded); start a point.
			if err := m.startExploration(s); err != nil {
				return m.reallocate("exploration")
			}
			return m.flushMeasureEpoch()
		}
		done, err := s.explorer.Record(utility, power)
		if err != nil {
			return err
		}
		if !done {
			return nil
		}
		var rerr error
		switch {
		case s.explorer.Stage() == explore.StageStable:
			// Graduation: pick the cost-optimal allocation system-wide.
			rerr = m.reallocate("graduation")
		default:
			if err := m.startExploration(s); err != nil {
				rerr = m.reallocate("exploration")
			} else {
				rerr = m.flushMeasureEpoch()
			}
		}
		// Persist the committed point (after the reallocation, so the
		// record's Seq covers any decisions the commit triggered).
		if op, ok := s.explorer.Table().Lookup(cur); ok {
			m.appendRecord(store.Record{
				Kind:  store.RecPoint,
				App:   s.app,
				Point: &op,
				Stage: s.explorer.Stage().String(),
			})
		}
		return rerr
	}

	s.stableMeasurements++
	if s.stableMeasurements >= m.cfg.ReallocEvery {
		s.stableMeasurements = 0
		return m.reallocate("cadence")
	}
	return nil
}

// flushMeasureEpoch journals decisions pushed directly from Measure
// (exploration steps bypass reallocate); a no-op when nothing was pushed.
func (m *Manager) flushMeasureEpoch() error {
	if len(m.pendingOut) > 0 {
		m.recordEpoch("exploration", 0, "")
	}
	return nil
}

// PhaseChange handles an application's announcement that it entered a new
// execution stage with different performance-energy characteristics — the
// interface extension from the paper's outlook (§7). The session's current
// exploration measurement is discarded (it straddles two phases), the
// stable-stage cadence restarts, and the allocation is reassessed so the new
// phase's behaviour drives fresh measurements.
func (m *Manager) PhaseChange(instance, phase string) error {
	s, err := m.session(instance)
	if err != nil {
		return err
	}
	s.phase = phase
	s.stableMeasurements = 0
	if _, measuring := s.explorer.Current(); measuring {
		s.explorer.Abort()
	}
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     telemetry.EvPhaseChange,
		Instance: instance,
		App:      s.app,
		Stage:    phase,
	})
	rerr := m.epochAfter("phase-change")
	m.appendRecord(store.Record{Kind: store.RecPhase, Instance: instance, App: s.app, Phase: phase})
	return rerr
}

// Reallocate recomputes allocations for all sessions and pushes changed
// decisions. It is invoked on registration, exits, graduation to the stable
// stage, and the periodic stable-stage cadence.
func (m *Manager) Reallocate() error {
	return m.reallocate("manual")
}

// reallocate is Reallocate with the trigger label for the decision journal
// and trace events.
func (m *Manager) reallocate(trigger string) error {
	// Any full solve satisfies a queued coalesced epoch — absorb it so an
	// inline trigger (cadence, graduation, manual) never leaves a stale
	// pending flush behind.
	m.absorbPending()
	if len(m.sessions) == 0 {
		return nil
	}
	var t0 time.Duration
	timed := m.cfg.LatencyClock != nil
	if timed {
		t0 = m.cfg.LatencyClock()
	}

	ep := m.cfg.Tracer.BeginPhase(telemetry.PhaseEpoch, m.epochHist)
	defer ep.End()

	// Quarantined sessions are excluded from the solve: their cores shrink
	// to zero (a parked decision) and the survivors absorb the capacity.
	snap := m.cfg.Tracer.BeginPhase(telemetry.PhaseSnapshot, m.snapshotHist)
	inputs := make([]alloc.AppInput, 0, len(m.sessions))
	for _, id := range m.order {
		if id == "" {
			continue // tombstoned order slot (orderRemove)
		}
		s := m.sessions[id]
		if s.liveness == LivenessQuarantined {
			continue
		}
		inputs = append(inputs, alloc.AppInput{ID: id, Table: s.explorer.PredictedTable()})
	}
	snap.End()
	var allocs []alloc.Allocation
	var stats alloc.Stats
	staleOnly := false
	if len(inputs) > 0 {
		sr := m.solveWithLadder(inputs)
		if sr.hardErr != nil {
			// Custom-allocator fail-fast semantics: the solve failure pushes
			// nothing — every session keeps its standing decision — and is
			// journalled as an error epoch so operators see the gap in the
			// decision stream instead of a silently missing epoch.
			m.recordEpochError(trigger, sr.hardErr)
			return fmt.Errorf("core: allocate: %w", sr.hardErr)
		}
		if sr.frozen {
			// Ladder rung 4: no usable allocation exists at all. Standing
			// decisions stay frozen (pushing zeros would strand running
			// applications for a transient solver fault) and the epoch
			// records the gap.
			m.lastSolveSource = alloc.SourceFrozen
			m.recordEpochWith(trigger, 0, alloc.SourceFrozen, sr.errMsg)
			return nil
		}
		allocs, stats, staleOnly = sr.allocs, sr.stats, sr.stale
		if stats.Source != "" {
			m.lastSolveSource = stats.Source
		}
	}
	pushSpan := m.cfg.Tracer.BeginPhase(telemetry.PhasePush, m.pushHist)
	byID := make(map[string]alloc.Allocation, len(allocs))
	for _, al := range allocs {
		byID[al.ID] = al
	}

	// Free cores per kind = capacity − cores granted to isolated sessions.
	free := make(map[platform.KindID][]int)
	used := make(map[int]bool)
	for _, al := range allocs {
		if al.CoAllocated {
			continue
		}
		for _, g := range al.Grants {
			used[g.Core] = true
		}
	}
	for kindIdx := range m.cfg.Platform.Kinds {
		lo, hi := m.cfg.Platform.CoreRange(platform.KindID(kindIdx))
		for c := lo; c < hi; c++ {
			if !used[c] {
				free[platform.KindID(kindIdx)] = append(free[platform.KindID(kindIdx)], c)
			}
		}
	}

	// Count exploring sessions to split the free cores evenly (§5.3).
	var exploring []*session
	for _, id := range m.order {
		if id == "" {
			continue
		}
		s := m.sessions[id]
		if s.liveness == LivenessQuarantined {
			continue
		}
		s.coAllocated = byID[id].CoAllocated
		if m.exploring(s) && !s.coAllocated {
			exploring = append(exploring, s)
		}
	}

	for _, id := range m.order {
		if id == "" {
			continue
		}
		s := m.sessions[id]
		if s.liveness == LivenessQuarantined {
			s.explorer.Abort()
			s.pool = nil
			s.bound = nil
			s.coAllocated = false
			m.pushParked(s)
			continue
		}
		al, ok := byID[id]
		if !ok && staleOnly {
			// Stale replay (ladder rung 3): sessions absent from the
			// last-known-good allocation keep their standing decision
			// rather than being pushed to zero.
			continue
		}
		m.pushSession(s, al, free, len(exploring))
	}
	pushSpan.End()

	if timed {
		if mt := m.cfg.Metrics; mt != nil {
			mt.AllocLatency.Observe((m.cfg.LatencyClock() - t0).Seconds())
		}
	}
	if mt := m.cfg.Metrics; mt != nil {
		mt.Reallocations.Inc()
		mt.CoresGranted.Set(float64(m.grantedCores()))
	}
	m.recordEpoch(trigger, stats.LambdaIters, stats.Source)
	return nil
}

// solveResult is one epoch's outcome from the degradation ladder.
type solveResult struct {
	allocs []alloc.Allocation
	stats  alloc.Stats
	// stale marks a rung-3 replay: sessions missing from allocs keep their
	// standing decisions instead of being pushed to zero.
	stale bool
	// frozen marks rung 4: nothing usable, push no decisions at all.
	frozen bool
	// errMsg is the triggering failure, journalled on frozen epochs.
	errMsg string
	// hardErr carries a custom-allocator solve error through unchanged
	// (fail-fast semantics; no fallback rungs apply).
	hardErr error
}

// solveWithLadder runs the epoch's solve through the degradation ladder:
//
//  1. the deadline-bounded primary solve (the subgradient loop cuts off
//     early when EpochBudget is exceeded on the LatencyClock);
//  2. a greedy fallback solve when the primary errors, panics or stalls;
//  3. the last-known-good allocation replayed;
//  4. pushes frozen entirely.
//
// Rungs 2–4 are journalled via Stats.Source, counted per rung in
// harp_epoch_degraded_total and traced as EvEpochDegraded. A panicking
// solve additionally quarantines the session whose inputs reproduce the
// panic (poisonous-table isolation) before falling down the ladder.
func (m *Manager) solveWithLadder(inputs []alloc.AppInput) solveResult {
	var cause error
	if m.forceDegraded > 0 {
		// An injected stall skips the primary solve outright, exactly as a
		// wedged solver would look from the epoch loop's side.
		m.forceDegraded--
		cause = errSolverStalled
	} else {
		allocs, stats, pv, err := m.solvePrimary(inputs)
		switch {
		case pv != nil:
			inputs = m.quarantinePanicking(inputs, pv)
			cause = fmt.Errorf("core: solver panic: %s", truncatePanic(pv))
		case err == nil:
			m.lastRung = ""
			m.lastGood = cloneAllocs(allocs)
			return solveResult{allocs: allocs, stats: stats}
		case m.fallback == nil:
			// Custom allocators keep their fail-fast error contract.
			return solveResult{hardErr: err}
		default:
			cause = err
		}
	}

	// Rung 2: greedy fallback. Cheap, deterministic, and independent of
	// the primary solver's cache and warm state.
	if m.fallback != nil {
		if allocs, stats, pv, err := m.runAllocator(m.fallback, inputs); err == nil && pv == nil {
			stats.Source = alloc.SourceDegradedGreedy
			stats.LambdaIters = 0
			m.markRung(alloc.SourceDegradedGreedy, cause)
			m.lastGood = cloneAllocs(allocs)
			return solveResult{allocs: allocs, stats: stats}
		}
	}

	// Rung 3: replay the last-known-good allocation.
	if len(m.lastGood) > 0 {
		m.markRung(alloc.SourceDegradedStale, cause)
		return solveResult{
			allocs: cloneAllocs(m.lastGood),
			stats:  alloc.Stats{Source: alloc.SourceDegradedStale},
			stale:  true,
		}
	}

	// Rung 4: freeze.
	m.markRung(alloc.SourceFrozen, cause)
	return solveResult{frozen: true, errMsg: cause.Error()}
}

// solvePrimary runs the primary allocator with the epoch deadline armed
// and panic containment on.
func (m *Manager) solvePrimary(inputs []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, any, error) {
	if m.cfg.LatencyClock != nil && m.cfg.EpochBudget > 0 {
		m.deadlineAt = m.cfg.LatencyClock() + m.cfg.EpochBudget
		m.deadlineArmed = true
		defer func() { m.deadlineArmed = false }()
	}
	return m.runAllocator(m.allocator, inputs)
}

// runAllocator invokes one solver with panic containment; panicked is the
// recovered panic value (nil when the solve returned normally).
func (m *Manager) runAllocator(a Allocator, inputs []alloc.AppInput) (allocs []alloc.Allocation, stats alloc.Stats, panicked any, err error) {
	defer func() {
		if r := recover(); r != nil {
			allocs, stats, err = nil, alloc.Stats{}, nil
			panicked = r
		}
	}()
	allocs, stats, err = a.AllocateWithStats(inputs)
	return
}

// quarantinePanicking attributes a solve panic by probing each input alone
// against the primary solver, quarantines the offenders, and returns the
// surviving inputs. When no single input reproduces the panic (an
// interaction, or a non-deterministic fault) the inputs are returned
// unchanged and the ladder handles the epoch without isolation.
func (m *Manager) quarantinePanicking(inputs []alloc.AppInput, pv any) []alloc.AppInput {
	survivors := make([]alloc.AppInput, 0, len(inputs))
	poisonous := false
	for _, in := range inputs {
		if _, _, probePV, _ := m.runAllocator(m.allocator, []alloc.AppInput{in}); probePV != nil {
			m.quarantineForPanic(in.ID, probePV)
			poisonous = true
			continue
		}
		survivors = append(survivors, in)
	}
	if !poisonous {
		return inputs
	}
	return survivors
}

// quarantineForPanic moves a session into quarantine without triggering a
// nested reallocation — the surrounding epoch parks it in its own push
// phase, exactly like a liveness quarantine.
func (m *Manager) quarantineForPanic(instance string, pv any) {
	s, ok := m.sessions[instance]
	if !ok || s.liveness == LivenessQuarantined {
		return
	}
	s.liveness = LivenessQuarantined
	s.explorer.Abort()
	s.stableMeasurements = 0
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:     telemetry.EvSessionPanicked,
		Instance: instance,
		App:      s.app,
		Stage:    truncatePanic(pv),
	})
	if mt := m.cfg.Metrics; mt != nil {
		mt.SessionsQuarantined.Inc()
	}
	m.updateLiveGauge()
}

// markRung accounts one degraded epoch: the rung counter, the epoch
// failure counter, the sticky error surfaces and an EvEpochDegraded trace
// event.
func (m *Manager) markRung(rung string, cause error) {
	m.lastRung = rung
	m.lastEpochErr = cause.Error()
	if mt := m.cfg.Metrics; mt != nil {
		mt.EpochFailures.Inc()
		mt.EpochDegraded.With(rung).Inc()
	}
	m.cfg.Tracer.Emit(telemetry.Event{
		Kind:  telemetry.EvEpochDegraded,
		Stage: rung,
	})
}

// cloneAllocs deep-copies an allocation set. Cache hits share slices with
// the allocator's cache, and the last-known-good copy must outlive any
// churn there.
func cloneAllocs(in []alloc.Allocation) []alloc.Allocation {
	out := make([]alloc.Allocation, len(in))
	for i, al := range in {
		out[i] = al
		out[i].Grants = append([]alloc.CoreGrant(nil), al.Grants...)
	}
	return out
}

// truncatePanic renders a recovered panic value bounded for trace and
// status surfaces.
func truncatePanic(pv any) string {
	s := fmt.Sprintf("%v", pv)
	const max = 120
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}

// pushSession pushes one session's epoch outcome with panic containment:
// a session whose table or decision path panics is quarantined
// (poisonous-table isolation) and parked, instead of the panic killing
// the epoch loop and every other session with it.
func (m *Manager) pushSession(s *session, al alloc.Allocation, free map[platform.KindID][]int, nExploring int) {
	defer func() {
		if r := recover(); r != nil {
			m.quarantineForPanic(s.instance, r)
			func() {
				defer func() {
					if recover() != nil {
						// Even the parked push panicked; drop the standing
						// decision so the session cannot hold ghost grants.
						s.last = nil
					}
				}()
				m.pushParked(s)
			}()
		}
	}()
	if m.exploring(s) && !s.coAllocated {
		m.setExplorationPool(s, al, free, nExploring)
		if err := m.startExploration(s); err != nil {
			// Nothing left to explore within the bound; run the base
			// allocation as-is.
			s.explorer.Abort()
			m.pushBase(s, al)
		}
		return
	}
	s.explorer.Abort()
	s.pool = nil
	s.bound = nil
	m.pushBase(s, al)
}

// ForceDegradedSolves makes the next n reallocation epochs skip the
// primary solver as if it had stalled past its deadline, walking the
// degradation ladder instead. Count-based and clock-free, so harpsim's
// solver-stall faults reproduce bit-identically on the virtual clock.
func (m *Manager) ForceDegradedSolves(n int) {
	if n > 0 {
		m.forceDegraded += n
	}
}

// LastEpochError returns the sticky message of the most recent failed or
// degraded epoch (empty while every epoch has been healthy).
func (m *Manager) LastEpochError() string { return m.lastEpochErr }

// DegradedRung returns the degradation-ladder rung that resolved the most
// recent epoch (alloc.SourceDegradedGreedy, SourceDegradedStale or
// SourceFrozen; empty when the last solve was healthy).
func (m *Manager) DegradedRung() string { return m.lastRung }

// LastSolveSource reports where the most recent epoch's solution came from
// (alloc.SourceCold, alloc.SourceWarm, alloc.SourceCached or a
// degradation-ladder rung; empty before the first solve).
func (m *Manager) LastSolveSource() string { return m.lastSolveSource }

// AllocCacheStats reports the allocator's solution-cache accounting, or the
// zero value when the configured allocator has no cache.
func (m *Manager) AllocCacheStats() alloc.CacheStats {
	if c, ok := m.allocator.(interface{ CacheStats() alloc.CacheStats }); ok {
		return c.CacheStats()
	}
	return alloc.CacheStats{}
}

// grantedCores counts the distinct physical cores held by spatially
// isolated standing decisions.
func (m *Manager) grantedCores() int {
	used := make(map[int]bool)
	for _, s := range m.sessions {
		if s.last == nil || s.last.CoAllocated {
			continue
		}
		for _, g := range s.last.Grants {
			used[g.Core] = true
		}
	}
	return len(used)
}

// recordEpoch writes one decision-journal record covering the decisions
// accumulated in pendingOut since the previous epoch; source labels where
// the epoch's solution came from (empty for epochs without a solve).
func (m *Manager) recordEpoch(trigger string, lambdaIters int, source string) {
	m.recordEpochWith(trigger, lambdaIters, source, "")
}

// recordEpochError journals a failed reallocation: an epoch with no outputs
// and the allocator's error, so the journal explains why no decisions were
// pushed for the trigger.
func (m *Manager) recordEpochError(trigger string, allocErr error) {
	m.recordEpochWith(trigger, 0, "", allocErr.Error())
}

func (m *Manager) recordEpochWith(trigger string, lambdaIters int, source, errMsg string) {
	if !m.cfg.Journal.Enabled() && m.cfg.Energy == nil {
		return
	}
	var budget float64
	for _, id := range m.order {
		if id == "" {
			continue
		}
		if s := m.sessions[id]; s.last != nil {
			budget += s.last.PredictedPowerW
		}
	}
	// The epoch's predicted system power is the fleet budget the energy
	// ledger accrues overrun against until the next epoch moves it.
	m.cfg.Energy.SetBudget(budget)
	if m.cfg.Journal.Enabled() {
		rec := telemetry.EpochRecord{
			AtSec:        m.cfg.Tracer.Now().Seconds(),
			Trigger:      trigger,
			LambdaIters:  lambdaIters,
			SolveSource:  source,
			PowerBudgetW: budget,
			Error:        errMsg,
			Inputs:       make([]telemetry.EpochInput, 0, len(m.order)),
			Outputs:      m.pendingOut,
		}
		if led := m.cfg.Energy; led != nil {
			tot := led.Totals()
			rec.EnergyJ = tot.Joules
			rec.BudgetHeadroomW = budget - tot.PowerW
		}
		for _, id := range m.order {
			if id == "" {
				continue
			}
			s := m.sessions[id]
			rec.Inputs = append(rec.Inputs, telemetry.EpochInput{
				Instance: s.instance,
				App:      s.app,
				Stage:    s.explorer.Stage().String(),
				Utility:  s.lastUtility,
				PowerW:   s.lastPower,
				Measured: s.explorer.Table().MeasuredCount(),
			})
		}
		m.pendingOut = nil
		jsp := m.cfg.Tracer.BeginPhase(telemetry.PhaseJournal, m.journalHist)
		_ = m.cfg.Journal.Record(rec) // sticky error readable via Journal.Err
		jsp.End()
	}
	if m.cfg.Energy != nil {
		// Persist the ledger once per epoch: a crash loses at most the
		// accrual since this record, so recovered joules stay monotone.
		m.appendRecord(store.Record{Kind: store.RecEnergy, Energy: m.cfg.Energy.Export()})
	}
}

// exploring reports whether a session is still learning.
func (m *Manager) exploring(s *session) bool {
	return !m.cfg.DisableExploration && s.explorer.Stage() != explore.StageStable
}

// setExplorationPool gives the session its base cores plus an even share of
// the free cores.
func (m *Manager) setExplorationPool(s *session, al alloc.Allocation, free map[platform.KindID][]int, nExploring int) {
	pool := make(map[platform.KindID][]int, len(m.cfg.Platform.Kinds))
	for _, g := range al.Grants {
		kind, err := m.cfg.Platform.KindOf(g.Core)
		if err != nil {
			continue
		}
		pool[kind] = append(pool[kind], g.Core)
	}
	if nExploring > 0 {
		for kind, cores := range free {
			share := len(cores) / nExploring
			take := share
			if take > len(cores) {
				take = len(cores)
			}
			pool[kind] = append(pool[kind], cores[:take]...)
			free[kind] = cores[take:]
		}
	}
	s.pool = pool
	s.bound = make([]int, len(m.cfg.Platform.Kinds))
	for kind, cores := range pool {
		s.bound[kind] = len(cores)
	}
}

// startExploration picks the session's next configuration and pushes it.
func (m *Manager) startExploration(s *session) error {
	if s.bound == nil {
		return explore.ErrNoCandidates
	}
	rv, err := s.explorer.Next(s.bound)
	if err != nil {
		return err
	}
	grants, err := m.grantsFromPool(s, rv)
	if err != nil {
		return err
	}
	m.push(s, Decision{
		Instance:  s.instance,
		Vector:    rv,
		Threads:   m.threadsFor(s, rv),
		Grants:    grants,
		Exploring: true,
	})
	return nil
}

// grantsFromPool maps an exploration vector onto the session's reserved
// cores.
func (m *Manager) grantsFromPool(s *session, rv platform.ResourceVector) ([]alloc.CoreGrant, error) {
	var grants []alloc.CoreGrant
	for kindIdx, counts := range rv.Counts {
		kind := platform.KindID(kindIdx)
		next := 0
		for tIdx, cores := range counts {
			for c := 0; c < cores; c++ {
				if next >= len(s.pool[kind]) {
					return nil, fmt.Errorf("core: exploration vector %v exceeds pool of %s", rv, s.instance)
				}
				grants = append(grants, alloc.CoreGrant{Core: s.pool[kind][next], Threads: tIdx + 1})
				next++
			}
		}
	}
	return grants, nil
}

// pushParked pushes the zero allocation a quarantined session holds: no
// cores, no thread change. Threads stays 0 ("leave unchanged") so a resumed
// application does not thrash its parallelisation on readmission.
func (m *Manager) pushParked(s *session) {
	m.push(s, Decision{
		Instance: s.instance,
		Vector:   platform.NewResourceVector(m.cfg.Platform),
	})
}

// pushBase pushes an allocator decision unchanged.
func (m *Manager) pushBase(s *session, al alloc.Allocation) {
	m.push(s, Decision{
		Instance:        s.instance,
		Vector:          al.Point.Vector.Clone(),
		Threads:         m.threadsFor(s, al.Point.Vector),
		Grants:          al.Grants,
		CoAllocated:     al.CoAllocated,
		PredictedPowerW: al.Point.Power,
	})
}

// threadsFor derives the parallelisation degree from a vector: scalable and
// custom applications match threads to granted hardware threads; static
// applications cannot be rescaled (§4.1.3).
func (m *Manager) threadsFor(s *session, rv platform.ResourceVector) int {
	if s.adaptivity == workload.Static {
		return 0
	}
	return rv.Threads()
}

// push emits a decision if it differs from the session's last one.
func (m *Manager) push(s *session, d Decision) {
	if s.last != nil && sameDecision(*s.last, d) {
		return
	}
	m.seq++
	d.Seq = m.seq
	s.last = &d
	if m.cfg.Tracer.Enabled() { // guard: Key() builds a string
		m.cfg.Tracer.Emit(telemetry.Event{
			Kind:        telemetry.EvDecisionPushed,
			Instance:    d.Instance,
			App:         s.app,
			Vector:      d.Vector.Key(),
			Seq:         d.Seq,
			Power:       d.PredictedPowerW,
			Exploring:   d.Exploring,
			CoAllocated: d.CoAllocated,
			Vals:        [4]float64{float64(d.Threads), float64(len(d.Grants))},
		})
	}
	if mt := m.cfg.Metrics; mt != nil {
		mt.Decisions.Inc()
		if d.Exploring {
			mt.ExplorationSteps.Inc()
		}
	}
	if m.cfg.Journal.Enabled() {
		m.pendingOut = append(m.pendingOut, telemetry.EpochOutput{
			Instance:    d.Instance,
			Seq:         d.Seq,
			Vector:      d.Vector.Key(),
			Threads:     d.Threads,
			Cores:       len(d.Grants),
			Exploring:   d.Exploring,
			CoAllocated: d.CoAllocated,
			PredPowerW:  d.PredictedPowerW,
		})
	}
	for _, fn := range m.onDecide {
		fn(d)
	}
}

func sameDecision(a, b Decision) bool {
	if !a.Vector.Equal(b.Vector) || a.Threads != b.Threads ||
		a.CoAllocated != b.CoAllocated || a.Exploring != b.Exploring ||
		len(a.Grants) != len(b.Grants) {
		return false
	}
	// Fast path: the allocator assigns cores deterministically, so an
	// unchanged decision usually repeats the grant list element for element.
	// Only a positional mismatch pays for the clone+sort order-insensitive
	// compare — at churn scale, push runs once per session per epoch.
	same := true
	for i := range a.Grants {
		if a.Grants[i] != b.Grants[i] {
			same = false
			break
		}
	}
	if same {
		return true
	}
	ag := append([]alloc.CoreGrant(nil), a.Grants...)
	bg := append([]alloc.CoreGrant(nil), b.Grants...)
	sortGrants(ag)
	sortGrants(bg)
	for i := range ag {
		if ag[i] != bg[i] {
			return false
		}
	}
	return true
}

func sortGrants(gs []alloc.CoreGrant) {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Core != gs[j].Core {
			return gs[i].Core < gs[j].Core
		}
		return gs[i].Threads < gs[j].Threads
	})
}

// session looks up a registered session.
func (m *Manager) session(instance string) (*session, error) {
	s, ok := m.sessions[instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, instance)
	}
	return s, nil
}

// Stage returns a session's exploration maturity.
func (m *Manager) Stage(instance string) (explore.Stage, error) {
	s, err := m.session(instance)
	if err != nil {
		return 0, err
	}
	if m.cfg.DisableExploration {
		return explore.StageStable, nil
	}
	return s.explorer.Stage(), nil
}

// AllStable reports whether every session has reached the stable stage
// (Fig. 8's background shading).
func (m *Manager) AllStable() bool {
	for _, s := range m.sessions {
		if m.exploring(s) {
			return false
		}
	}
	return true
}

// Sessions returns summaries of all registered sessions in registration
// order.
func (m *Manager) Sessions() []SessionInfo {
	out := make([]SessionInfo, 0, len(m.sessions))
	for _, id := range m.order {
		if id == "" {
			continue
		}
		s := m.sessions[id]
		stage := s.explorer.Stage()
		if m.cfg.DisableExploration {
			stage = explore.StageStable
		}
		info := SessionInfo{
			Instance:         s.instance,
			App:              s.app,
			Adaptivity:       s.adaptivity,
			OwnUtility:       s.ownUtility,
			Stage:            stage,
			CoAllocated:      s.coAllocated,
			Measured:         s.explorer.Table().MeasuredCount(),
			Phase:            s.phase,
			Liveness:         s.liveness,
			LastReportAgeSec: -1, // embedders tracking liveness overlay the real age
			Utility:          s.lastUtility,
			Power:            s.lastPower,
		}
		if s.last != nil {
			info.Vector = s.last.Vector.Key()
			info.Threads = s.last.Threads
			info.Cores = len(s.last.Grants)
			info.Seq = s.last.Seq
			info.Exploring = s.last.Exploring
		}
		out = append(out, info)
	}
	return out
}

// StandingPowerW sums the predicted power of every session's standing
// decision — the same quantity the epoch recorder reports as the budget
// numerator. The fleet coordinator reads it per machine to grade actual
// load against the distributed per-machine power cap.
func (m *Manager) StandingPowerW() float64 {
	total := 0.0
	for _, id := range m.order {
		if id == "" {
			continue
		}
		if s := m.sessions[id]; s.last != nil {
			total += s.last.PredictedPowerW
		}
	}
	return total
}

// Table returns a snapshot of a session's learned operating points —
// harpctl uses this, and Fig. 8 snapshots it every 5 s.
func (m *Manager) Table(instance string) (*opoint.Table, error) {
	s, err := m.session(instance)
	if err != nil {
		return nil, err
	}
	return s.explorer.Table().Clone(), nil
}

// LearnedTables returns a deep copy of every application's operating-point
// table, keyed by application name — what /etc/harp accumulates over time
// and what Fig. 8 snapshots during the learning phase.
func (m *Manager) LearnedTables() map[string]*opoint.Table {
	out := make(map[string]*opoint.Table, len(m.explorers))
	for app, e := range m.explorers {
		out[app] = e.Table().Clone()
	}
	return out
}

// OwnUtility reports whether the session supplies its own utility metric.
func (m *Manager) OwnUtility(instance string) (bool, error) {
	s, err := m.session(instance)
	if err != nil {
		return false, err
	}
	return s.ownUtility, nil
}
