package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// driveToStable feeds Measure samples until the session graduates (or the
// iteration budget runs out).
func driveToStable(t *testing.T, m *Manager, instance string) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if stage, err := m.Stage(instance); err != nil {
			t.Fatal(err)
		} else if stage == explore.StageStable {
			return
		}
		if err := m.Measure(instance, 100+float64(i), 10); err != nil {
			t.Fatalf("Measure: %v", err)
		}
	}
	t.Fatal("session never graduated")
}

func TestWarmRestartThroughStore(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
		Store:    st1,
	})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m1)
	if err := m1.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m1.PhaseChange("ep-1", "solve"); err != nil {
		t.Fatal(err)
	}
	driveToStable(t, m1, "ep-1")
	measured, err := m1.Table("ep-1")
	if err != nil {
		t.Fatal(err)
	}
	preSeq := m1.seq
	st1.Close() // kill -9: no final snapshot, only WAL appends

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	tracer := telemetry.NewTracer(64)
	m2, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
		Store:    st2,
		Tracer:   tracer,
		Metrics:  telemetry.NewMetrics(telemetry.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m2)
	if err := m2.ImportState(st2.RecoveredState(), st2.Recovery()); err != nil {
		t.Fatal(err)
	}
	if m2.seq < preSeq {
		t.Fatalf("recovered seq %d < pre-crash %d", m2.seq, preSeq)
	}
	// The client reconnects: its table and stage must be back, no
	// re-exploration.
	if err := m2.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	stage, err := m2.Stage("ep-1")
	if err != nil {
		t.Fatal(err)
	}
	if stage != explore.StageStable {
		t.Fatalf("resumed stage = %v, want stable", stage)
	}
	resumed, err := m2.Table("ep-1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.MeasuredCount(), measured.MeasuredCount(); got < want {
		t.Fatalf("resumed measured points = %d, want >= %d", got, want)
	}
	infos := m2.Sessions()
	if len(infos) != 1 || infos[0].Phase != "solve" {
		t.Fatalf("resumed phase = %+v, want prior phase restored", infos)
	}
	if got := m2.cfg.Metrics.Reconnects.Value(); got != 1 {
		t.Fatalf("reconnects counter = %d, want 1", got)
	}
	var recovered bool
	for _, ev := range tracer.Events() {
		if ev.Kind == telemetry.EvStateRecovered && ev.Stage == "warm" {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no warm EvStateRecovered event emitted")
	}
}

func TestImportStateColdStartJournalsRecoverError(t *testing.T) {
	var jbuf strings.Builder
	journal := telemetry.NewJournal(&jbuf)
	m, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Journal:  journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Recovery{Generation: 1, ColdStart: true, Err: errors.New("snapshot CRC mismatch"), Corruptions: 1}
	if err := m.ImportState(store.NewState(), rec); err != nil {
		t.Fatal(err)
	}
	out := jbuf.String()
	if !strings.Contains(out, `"trigger":"recover"`) || !strings.Contains(out, "snapshot CRC mismatch") {
		t.Fatalf("journal missing recover epoch with error: %s", out)
	}
}

func TestMaxSessionsAdmission(t *testing.T) {
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	var jbuf strings.Builder
	journal := telemetry.NewJournal(&jbuf)
	m, err := NewManager(Config{
		Platform:    platform.RaptorLake(),
		MaxSessions: 1,
		Metrics:     mt,
		Journal:     journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m)
	if err := m.Register("a-1", "a", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	err = m.Register("b-1", "b", workload.Scalable, false)
	if !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-cap register err = %v, want ErrTooManySessions", err)
	}
	if got := mt.SessionsRejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if len(m.Sessions()) != 1 {
		t.Fatalf("rejected registration left state behind: %+v", m.Sessions())
	}
	// A duplicate of the admitted instance still reports duplicate, not cap.
	if err := m.Register("a-1", "a", workload.Scalable, false); !errors.Is(err, ErrDuplicateSession) {
		t.Fatalf("duplicate register err = %v, want ErrDuplicateSession", err)
	}
	// Freeing the slot readmits.
	if err := m.Deregister("a-1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b-1", "b", workload.Scalable, false); err != nil {
		t.Fatalf("register after free slot: %v", err)
	}
	if !strings.Contains(jbuf.String(), `"trigger":"rejected"`) {
		t.Fatalf("rejection not journalled: %s", jbuf.String())
	}
}

// snapshotProbe records the journal's epoch count at the moment the
// snapshot is written, to pin shutdown ordering.
type snapshotProbe struct {
	epochsAtWrite int
	journal       *telemetry.Journal
	state         *store.State
}

func (p *snapshotProbe) WriteSnapshot(st *store.State) error {
	p.epochsAtWrite = p.journal.Epochs()
	p.state = st
	return nil
}

func TestSnapshotToWritesAfterLastEpoch(t *testing.T) {
	var jbuf strings.Builder
	journal := telemetry.NewJournal(&jbuf)
	m, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
		Journal:  journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	driveToStable(t, m, "ep-1")

	probe := &snapshotProbe{journal: journal}
	if err := m.SnapshotTo(probe); err != nil {
		t.Fatal(err)
	}
	total := journal.Epochs()
	if probe.epochsAtWrite != total {
		t.Fatalf("snapshot written at epoch %d, journal ended at %d — snapshot must come after the last epoch",
			probe.epochsAtWrite, total)
	}
	lines := strings.Split(strings.TrimSpace(jbuf.String()), "\n")
	if !strings.Contains(lines[len(lines)-1], `"trigger":"snapshot"`) {
		t.Fatalf("last journal epoch is not the snapshot epoch: %s", lines[len(lines)-1])
	}
	if probe.state == nil || len(probe.state.Tables) == 0 {
		t.Fatal("snapshot state empty")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m1, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	newRecorder(m1)
	if err := m1.Register("ep-1", "ep.C", workload.Scalable, true); err != nil {
		t.Fatal(err)
	}
	driveToStable(t, m1, "ep-1")
	exported := m1.ExportState()
	if len(exported.Sessions) != 1 || exported.Sessions[0].Adaptivity != "scalable" || !exported.Sessions[0].OwnUtility {
		t.Fatalf("exported sessions = %+v", exported.Sessions)
	}
	if exported.Seq != m1.seq {
		t.Fatalf("exported seq = %d, want %d", exported.Seq, m1.seq)
	}

	m2, err := NewManager(Config{
		Platform: platform.RaptorLake(),
		Explore:  explore.Config{MeasurementsPerPoint: 1, StableAfter: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.ImportState(exported, store.Recovery{Generation: 2}); err != nil {
		t.Fatal(err)
	}
	got := m2.LearnedTables()["ep.C"]
	want := m1.LearnedTables()["ep.C"]
	if got == nil || got.MeasuredCount() != want.MeasuredCount() {
		t.Fatalf("imported table measured = %v, want %d", got, want.MeasuredCount())
	}
	// Import is once-only and rejected with live sessions.
	newRecorder(m2)
	if err := m2.Register("x-1", "x", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m2.ImportState(exported, store.Recovery{}); err == nil {
		t.Fatal("ImportState with live sessions accepted")
	}
}

func TestParseAdaptivityRoundTrip(t *testing.T) {
	for _, a := range []workload.Adaptivity{workload.Static, workload.Scalable, workload.Custom} {
		got, err := ParseAdaptivity(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAdaptivity(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAdaptivity("bogus"); err == nil {
		t.Fatal("bogus adaptivity accepted")
	}
}
