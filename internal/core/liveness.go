package core

import (
	"fmt"
	"time"
)

// Liveness is a session's health as seen by the resource manager. Sessions
// start Live; an embedding layer (harp.Server on wall time, harpsim on the
// virtual clock) demotes them as their reports go silent and readmits them
// when reports resume. The manager itself only reacts to the state: a
// quarantined session's learning is frozen and its cores are shrunk to zero
// so survivors can absorb them before the session is reaped.
type Liveness uint8

// Liveness states, in escalation order.
const (
	// LivenessLive: the session reports within its deadline.
	LivenessLive Liveness = iota
	// LivenessSuspect: the session missed its report deadline; it keeps its
	// allocation while the embedder probes it.
	LivenessSuspect
	// LivenessQuarantined: the session stayed silent past the quarantine
	// deadline. Learning is frozen and its cores are reclaimed; the session
	// is readmitted cleanly if it resumes, reaped if it stays silent.
	LivenessQuarantined
)

// String implements fmt.Stringer.
func (l Liveness) String() string {
	switch l {
	case LivenessLive:
		return "live"
	case LivenessSuspect:
		return "suspect"
	case LivenessQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("liveness(%d)", int(l))
	}
}

// LivenessPolicy holds the silence deadlines driving the suspect →
// quarantine → reap escalation. The zero value disables liveness tracking
// entirely (sessions are only removed on exit or reader EOF — the
// pre-resilience behaviour).
type LivenessPolicy struct {
	// SuspectAfter marks a session suspect when no report, heartbeat or
	// other message has been seen for this long.
	SuspectAfter time.Duration
	// QuarantineAfter freezes learning and reclaims the session's cores
	// after this much silence. Must be >= SuspectAfter.
	QuarantineAfter time.Duration
	// ReapAfter deregisters the session after this much silence. Must be
	// >= QuarantineAfter.
	ReapAfter time.Duration
}

// DefaultLivenessPolicy returns the deadlines used when liveness is enabled
// without explicit tuning: suspect after 20 missed 50 ms cadences, quarantine
// at 3 s, reap at 10 s.
func DefaultLivenessPolicy() LivenessPolicy {
	return LivenessPolicy{
		SuspectAfter:    time.Second,
		QuarantineAfter: 3 * time.Second,
		ReapAfter:       10 * time.Second,
	}
}

// Enabled reports whether the policy tracks liveness at all.
func (p LivenessPolicy) Enabled() bool {
	return p.SuspectAfter > 0 || p.QuarantineAfter > 0 || p.ReapAfter > 0
}

// Validate checks the deadlines are ordered.
func (p LivenessPolicy) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.SuspectAfter <= 0 || p.QuarantineAfter < p.SuspectAfter || p.ReapAfter < p.QuarantineAfter {
		return fmt.Errorf("core: liveness deadlines must satisfy 0 < suspect (%v) <= quarantine (%v) <= reap (%v)",
			p.SuspectAfter, p.QuarantineAfter, p.ReapAfter)
	}
	return nil
}

// ShouldReap reports whether a session silent for age must be deregistered.
func (p LivenessPolicy) ShouldReap(age time.Duration) bool {
	return p.Enabled() && age > p.ReapAfter
}

// StateFor maps a silence age to the liveness state it mandates.
func (p LivenessPolicy) StateFor(age time.Duration) Liveness {
	if !p.Enabled() {
		return LivenessLive
	}
	switch {
	case age > p.QuarantineAfter:
		return LivenessQuarantined
	case age > p.SuspectAfter:
		return LivenessSuspect
	default:
		return LivenessLive
	}
}
