package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// driveManager exercises the full lifecycle: two sessions, measurements
// through exploration, a phase change, and a deregistration.
func driveManager(t *testing.T, cfg Config) *decisionRecorder {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("bw-1", "bw.M", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := m.Measure("ep-1", 100+float64(i%7), 20); err != nil {
			t.Fatal(err)
		}
		if err := m.Measure("bw-1", 50, 15); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.PhaseChange("ep-1", "solver"); err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister("bw-1"); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestTracerCoversAdaptationLoop(t *testing.T) {
	tr := telemetry.NewTracer(1 << 16)
	var virtual time.Duration
	tr.SetClock(func() time.Duration { virtual += time.Millisecond; return virtual })
	driveManager(t, Config{Platform: platform.RaptorLake(), Tracer: tr})

	byKind := map[telemetry.EventKind]int{}
	for _, ev := range tr.Events() {
		byKind[ev.Kind]++
	}
	for _, kind := range []telemetry.EventKind{
		telemetry.EvSessionRegistered, telemetry.EvSessionExited,
		telemetry.EvMeasureSample, telemetry.EvTableUpdated,
		telemetry.EvExplorationStep, telemetry.EvAllocationComputed,
		telemetry.EvDecisionPushed, telemetry.EvPhaseChange,
	} {
		if byKind[kind] == 0 {
			t.Errorf("no %v events emitted", kind)
		}
	}
	if byKind[telemetry.EvSessionRegistered] != 2 || byKind[telemetry.EvSessionExited] != 1 {
		t.Errorf("lifecycle events = %d/%d, want 2/1",
			byKind[telemetry.EvSessionRegistered], byKind[telemetry.EvSessionExited])
	}
	if byKind[telemetry.EvMeasureSample] != 600 {
		t.Errorf("measure samples = %d, want 600", byKind[telemetry.EvMeasureSample])
	}
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.EvDecisionPushed && ev.Vector == "" {
			t.Fatalf("decision event without vector key: %+v", ev)
		}
	}
}

func TestJournalOutputsMatchPushedDecisions(t *testing.T) {
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	rec := driveManager(t, Config{Platform: platform.RaptorLake(), Journal: j})

	epochs, err := telemetry.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs journaled")
	}
	var outs []telemetry.EpochOutput
	triggers := map[string]int{}
	for _, ep := range epochs {
		outs = append(outs, ep.Outputs...)
		triggers[ep.Trigger]++
		if len(ep.Inputs) == 0 {
			t.Errorf("epoch %d without inputs", ep.Epoch)
		}
	}
	// The journal's concatenated outputs are exactly the pushed decisions,
	// in order.
	if len(outs) != len(rec.all) {
		t.Fatalf("journal outputs = %d, pushed decisions = %d", len(outs), len(rec.all))
	}
	for i, d := range rec.all {
		o := outs[i]
		if o.Instance != d.Instance || o.Seq != d.Seq || o.Vector != d.Vector.Key() ||
			o.Threads != d.Threads || o.Cores != len(d.Grants) ||
			o.Exploring != d.Exploring || o.CoAllocated != d.CoAllocated {
			t.Fatalf("journal output %d = %+v, decision = %+v", i, o, d)
		}
	}
	for _, trig := range []string{"register", "deregister", "phase-change"} {
		if triggers[trig] == 0 {
			t.Errorf("no %q epoch journaled (have %v)", trig, triggers)
		}
	}
	if triggers["exploration"]+triggers["graduation"] == 0 {
		t.Errorf("no exploration-driven epochs journaled (have %v)", triggers)
	}
}

func TestMetricsTrackLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	mt := telemetry.NewMetrics(reg)
	clock := time.Duration(0)
	rec := driveManager(t, Config{
		Platform: platform.RaptorLake(),
		Metrics:  mt,
		LatencyClock: func() time.Duration {
			clock += 100 * time.Microsecond
			return clock
		},
	})

	if got := mt.Decisions.Value(); got != uint64(len(rec.all)) {
		t.Errorf("decisions counter = %d, want %d", got, len(rec.all))
	}
	if mt.Samples.Value() != 600 {
		t.Errorf("samples counter = %d, want 600", mt.Samples.Value())
	}
	if mt.Sessions.Value() != 1 {
		t.Errorf("sessions gauge = %g, want 1 (after one deregistration)", mt.Sessions.Value())
	}
	if mt.Reallocations.Value() == 0 || mt.AllocLatency.Count() == 0 {
		t.Error("reallocation counter or latency histogram empty")
	}
	if mt.CoresGranted.Value() <= 0 {
		t.Errorf("cores granted = %g", mt.CoresGranted.Value())
	}
	// Exited sessions must not leak per-session gauges.
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if bytes.Contains(buf.Bytes(), []byte(`instance="bw-1"`)) {
		t.Error("deregistered session still exported:\n" + buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`instance="ep-1"`)) {
		t.Error("live session missing from export:\n" + buf.String())
	}
}
