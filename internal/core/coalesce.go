package core

// Epoch coalescing: batch the epochs that mutating operations trigger.
//
// Without coalescing every Register/Deregister/UploadTable/PhaseChange runs
// a full global solve inline — a 1k-session registration storm costs 1k
// solves, the O(full-solve-per-event) pathology from ROADMAP.md. With
// coalescing enabled, mutating operations enqueue one pending epoch instead:
// the solve runs when the embedding layer's adaptation tick observes the
// pending epoch (Tick), or immediately when the dirty-event bound is hit, so
// the storm costs one solve.
//
// What changes for callers when coalescing is on:
//
//   - Mutating ops return nil without solving (unless their event hits the
//     dirty bound and flushes inline). Solver failures therefore surface at
//     flush time — in the decision journal's error epochs and through Tick's
//     return value — not from the mutating call.
//   - Register keeps the session even when a flush it triggered fails: the
//     failed epoch covers many sessions, so evicting the one that happened
//     to trip the bound would be arbitrary. The rollback path (and its
//     restart-continuity stash) only exists for inline solves.
//   - Measure-triggered epochs (exploration, graduation, cadence) and manual
//     Reallocate stay inline; a pending epoch is absorbed by any inline
//     solve, since every solve covers all sessions.
//
// The coalesced trigger label is the sole event's trigger when exactly one
// event is pending, or "coalesced" when a burst was batched, so journals
// stay attributable.

import "time"

// AdaptationTick is the 50 ms adaptation-loop cadence (§4.1.1) — the period
// the embedding layer calls Tick at, and the latency budget a coalesced
// epoch's solve must fit inside.
const AdaptationTick = 50 * time.Millisecond

// DefaultCoalesceMaxDirty is the dirty-event bound: a pending epoch flushes
// immediately once this many mutating events have accumulated, keeping
// worst-case staleness bounded even if the embedding layer stops ticking.
const DefaultCoalesceMaxDirty = 256

// TriggerCoalesced labels journal epochs that cover more than one batched
// mutating event.
const TriggerCoalesced = "coalesced"

// CoalescePolicy configures epoch coalescing (Config.Coalesce). The zero
// value disables coalescing, preserving the historical solve-per-event
// behaviour byte for byte.
type CoalescePolicy struct {
	// Enabled turns coalescing on.
	Enabled bool
	// MaxDirty flushes the pending epoch immediately once this many mutating
	// events have accumulated (0 selects DefaultCoalesceMaxDirty).
	MaxDirty int
	// MaxPendingTicks is how many adaptation ticks a pending epoch may wait
	// before Tick flushes it (0 selects 1: flush on the next tick).
	MaxPendingTicks int
}

func (p CoalescePolicy) maxDirty() int {
	if p.MaxDirty > 0 {
		return p.MaxDirty
	}
	return DefaultCoalesceMaxDirty
}

func (p CoalescePolicy) maxTicks() int {
	if p.MaxPendingTicks > 0 {
		return p.MaxPendingTicks
	}
	return 1
}

// epochAfter is the epoch trigger for mutating operations: solve inline when
// coalescing is off, otherwise enqueue the pending epoch and flush only at
// the dirty-event bound.
func (m *Manager) epochAfter(trigger string) error {
	if !m.cfg.Coalesce.Enabled {
		return m.reallocate(trigger)
	}
	m.pendingEvents++
	if m.pendingEpoch {
		m.pendingTrigger = TriggerCoalesced
	} else {
		m.pendingEpoch = true
		m.pendingTrigger = trigger
		m.pendingTicks = 0
	}
	if m.pendingEvents >= m.cfg.Coalesce.maxDirty() {
		return m.flushPending()
	}
	return nil
}

// Tick advances the coalescing clock by one adaptation tick (the embedding
// layer's 50 ms loop calls it once per tick) and flushes the pending epoch
// once it has waited MaxPendingTicks. A no-op without a pending epoch or
// with coalescing disabled.
func (m *Manager) Tick() error {
	if !m.pendingEpoch {
		return nil
	}
	m.pendingTicks++
	if m.pendingTicks >= m.cfg.Coalesce.maxTicks() {
		return m.flushPending()
	}
	return nil
}

// Flush forces the pending coalesced epoch to solve now; a no-op when
// nothing is pending. Embedding layers call it before snapshots or shutdown
// so no batched events are lost.
func (m *Manager) Flush() error {
	if !m.pendingEpoch {
		return nil
	}
	return m.flushPending()
}

// PendingEpoch reports whether a coalesced epoch is queued and how many
// mutating events it covers.
func (m *Manager) PendingEpoch() (pending bool, events int) {
	return m.pendingEpoch, m.pendingEvents
}

// flushPending runs the batched epoch. The deferred-events metric counts
// events beyond the first — the solves coalescing saved.
func (m *Manager) flushPending() error {
	trigger := m.pendingTrigger
	events := m.pendingEvents
	m.resetPending()
	if events > 1 {
		if mt := m.cfg.Metrics; mt != nil {
			mt.EpochsCoalesced.Add(uint64(events - 1))
		}
	}
	return m.reallocate(trigger)
}

// absorbPending folds a queued coalesced epoch into an inline solve that is
// about to run anyway (cadence, graduation, manual Reallocate): every solve
// covers all sessions, so the pending epoch is satisfied and all its events
// count as coalesced. Called from reallocate.
func (m *Manager) absorbPending() {
	if !m.pendingEpoch {
		return
	}
	events := m.pendingEvents
	m.resetPending()
	if mt := m.cfg.Metrics; mt != nil {
		mt.EpochsCoalesced.Add(uint64(events))
	}
}

func (m *Manager) resetPending() {
	m.pendingEpoch = false
	m.pendingTrigger = ""
	m.pendingEvents = 0
	m.pendingTicks = 0
}
