package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// countingAllocator counts solves so coalescing tests can assert how many
// epochs a burst actually cost.
type countingAllocator struct {
	real   Allocator
	solves int
	fail   bool
}

func (c *countingAllocator) AllocateWithStats(apps []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error) {
	if c.fail {
		return nil, alloc.Stats{}, errors.New("injected solver failure")
	}
	c.solves++
	return c.real.AllocateWithStats(apps)
}

func churnTestPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := &platform.Platform{
		Name:            "churn-core-test",
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
		Kinds: []platform.CoreKind{
			{Name: "P", Count: 4, SMT: 1, MaxFreqGHz: 3, MinFreqGHz: 0.5, IPC: 2, ActiveWatts: 2, IdleWatts: 0.2, SleepWatts: 0.02},
			{Name: "E", Count: 4, SMT: 1, MaxFreqGHz: 2, MinFreqGHz: 0.5, IPC: 1, ActiveWatts: 1, IdleWatts: 0.1, SleepWatts: 0.01},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func churnTestTable(t *testing.T, p *platform.Platform, app string, kind, cores int) *opoint.Table {
	t.Helper()
	tbl := &opoint.Table{App: app, Platform: p.Name}
	rv := platform.NewResourceVector(p)
	rv.Counts[kind][0] = cores
	tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: 5 + float64(cores), Power: float64(cores), Measured: true})
	return tbl
}

func newCoalescingManager(t *testing.T, pol CoalescePolicy) (*Manager, *countingAllocator) {
	t.Helper()
	p := churnTestPlatform(t)
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingAllocator{real: real}
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          counting,
		DisableExploration: true,
		Coalesce:           pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, counting
}

// TestRegistrationStormCoalescesToOneEpoch pins the tentpole property: a
// registration storm under coalescing costs exactly one solve, flushed by
// the adaptation tick, instead of one solve per event.
func TestRegistrationStormCoalescesToOneEpoch(t *testing.T) {
	m, counting := newCoalescingManager(t, CoalescePolicy{Enabled: true})
	const storm = 100
	for i := 0; i < storm; i++ {
		if err := m.Register(fmt.Sprintf("s%03d", i), "app", workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	if counting.solves != 0 {
		t.Fatalf("storm ran %d inline solves, want 0 (all deferred)", counting.solves)
	}
	pending, events := m.PendingEpoch()
	if !pending || events != storm {
		t.Fatalf("pending=%v events=%d, want pending with %d events", pending, events, storm)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if counting.solves != 1 {
		t.Fatalf("flush ran %d solves, want exactly 1", counting.solves)
	}
	if pending, _ := m.PendingEpoch(); pending {
		t.Fatal("epoch still pending after flush")
	}
	// Every session must have received a decision from the single coalesced
	// solve.
	for _, info := range m.Sessions() {
		if s := m.sessions[info.Instance]; s.last == nil {
			t.Fatalf("session %s has no decision after coalesced flush", info.Instance)
		}
	}
}

// TestCoalesceDirtyBoundFlushesInline pins the staleness bound: the pending
// epoch flushes as soon as MaxDirty events accumulate, without waiting for a
// tick.
func TestCoalesceDirtyBoundFlushesInline(t *testing.T) {
	m, counting := newCoalescingManager(t, CoalescePolicy{Enabled: true, MaxDirty: 10})
	for i := 0; i < 25; i++ {
		if err := m.Register(fmt.Sprintf("s%03d", i), "app", workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	// 25 events with a bound of 10 → flushes at events 10 and 20, leaving 5
	// pending.
	if counting.solves != 2 {
		t.Fatalf("dirty bound ran %d solves for 25 events, want 2", counting.solves)
	}
	if pending, events := m.PendingEpoch(); !pending || events != 5 {
		t.Fatalf("pending=%v events=%d, want 5 residual events pending", pending, events)
	}
}

// TestInlineSolveAbsorbsPendingEpoch pins the interaction between coalesced
// and inline epochs: a manual Reallocate (or cadence solve) covers all
// sessions, so the queued epoch is satisfied, not double-solved.
func TestInlineSolveAbsorbsPendingEpoch(t *testing.T) {
	m, counting := newCoalescingManager(t, CoalescePolicy{Enabled: true})
	if err := m.Register("s0", "app", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Reallocate(); err != nil {
		t.Fatal(err)
	}
	if counting.solves != 1 {
		t.Fatalf("%d solves, want 1 (inline solve absorbs the pending epoch)", counting.solves)
	}
	if pending, _ := m.PendingEpoch(); pending {
		t.Fatal("pending epoch not absorbed by inline solve")
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if counting.solves != 1 {
		t.Fatalf("tick after absorption ran a solve; total %d, want 1", counting.solves)
	}
}

// TestRegisterRollbackReleasesGauges pins the metric-cardinality leak: a
// failed registration must release the per-instance gauge label series it
// created, or rejected registrations grow the registry forever.
func TestRegisterRollbackReleasesGauges(t *testing.T) {
	p := churnTestPlatform(t)
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingAllocator{real: real}
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          counting,
		DisableExploration: true,
		Metrics:            telemetry.NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	counting.fail = true
	if err := m.Register("ghost", "app", workload.Scalable, false); err == nil {
		t.Fatal("registration succeeded although the solver failed")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if strings.Contains(buf.String(), `instance="ghost"`) {
		t.Fatal("rolled-back registration leaked per-instance gauge series")
	}
}

// TestRegisterRollbackRestoresContinuityState pins the restart-continuity
// loss: Register consumes m.priorPhase and m.ended before the solve; a
// failed solve must restore both so a successful retry still resumes the
// phase and counts as a reconnect.
func TestRegisterRollbackRestoresContinuityState(t *testing.T) {
	p := churnTestPlatform(t)
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingAllocator{real: real}
	reg := telemetry.NewRegistry()
	mt := telemetry.NewMetrics(reg)
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          counting,
		DisableExploration: true,
		Metrics:            mt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate recovered continuity state: the instance deregistered before
	// (ended) and announced a phase before an RM restart (priorPhase).
	m.ended["s0"] = struct{}{}
	m.priorPhase["s0"] = "steady"

	counting.fail = true
	if err := m.Register("s0", "app", workload.Scalable, false); err == nil {
		t.Fatal("registration succeeded although the solver failed")
	}
	if _, ok := m.ended["s0"]; !ok {
		t.Fatal("rollback lost m.ended: retry will not count as a reconnect")
	}
	if phase := m.priorPhase["s0"]; phase != "steady" {
		t.Fatalf("rollback lost m.priorPhase: got %q, want %q", phase, "steady")
	}

	counting.fail = false
	if err := m.Register("s0", "app", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if got := m.sessions["s0"].phase; got != "steady" {
		t.Fatalf("retry resumed phase %q, want %q", got, "steady")
	}
	if got := mt.Reconnects.Value(); got != 1 {
		t.Fatalf("reconnects = %d, want 1 (retry resumes the ended instance)", got)
	}
}

// TestDeregisterStormCompactsOrder pins the O(N²) deregistration fix: the
// order slice tombstones in O(1) and compacts, so after a full storm no
// ghost entries remain and re-registration works.
func TestDeregisterStormCompactsOrder(t *testing.T) {
	m, _ := newCoalescingManager(t, CoalescePolicy{})
	const n = 64
	for i := 0; i < n; i++ {
		if err := m.Register(fmt.Sprintf("s%03d", i), "app", workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := m.Deregister(fmt.Sprintf("s%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Sessions()); got != 0 {
		t.Fatalf("%d sessions after full deregistration storm", got)
	}
	if len(m.order) > n {
		t.Fatalf("order grew to %d entries, tombstones not compacted", len(m.order))
	}
	for _, id := range m.order {
		if id != "" && m.sessions[id] == nil {
			t.Fatalf("ghost order entry %q survives deregistration", id)
		}
	}
	if err := m.Register("s000", "app", workload.Scalable, false); err != nil {
		t.Fatalf("re-registration after storm: %v", err)
	}
	if idx, ok := m.orderIdx["s000"]; !ok || m.order[idx] != "s000" {
		t.Fatal("order index out of sync after storm + re-registration")
	}
}

// TestCoalescedEpochTriggerLabels pins journal attribution: one pending
// event keeps its own trigger, a burst is journalled as "coalesced".
func TestCoalescedEpochTriggerLabels(t *testing.T) {
	p := churnTestPlatform(t)
	var jbuf bytes.Buffer
	m, err := NewManager(Config{
		Platform:           p,
		DisableExploration: true,
		Coalesce:           CoalescePolicy{Enabled: true},
		Journal:            telemetry.NewJournal(&jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("solo", "app", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"trigger":"register"`) {
		t.Fatalf("single-event epoch lost its trigger; journal: %s", jbuf.String())
	}
	jbuf.Reset()
	for i := 0; i < 3; i++ {
		if err := m.Register(fmt.Sprintf("b%d", i), "app", workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"trigger":"coalesced"`) {
		t.Fatalf("burst epoch not labelled coalesced; journal: %s", jbuf.String())
	}
}

// TestShardedManagerConfig pins the Config wiring: ShardedAlloc builds a
// sharded default allocator and the manager solves through it.
func TestShardedManagerConfig(t *testing.T) {
	p := churnTestPlatform(t)
	m, err := NewManager(Config{
		Platform:           p,
		DisableExploration: true,
		ShardedAlloc:       true,
		ShardParallelism:   2,
		AllocIncremental:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sessions on disjoint kinds → two domains → sharded solve.
	for i, kind := range []int{0, 1} {
		id := fmt.Sprintf("s%d", i)
		if err := m.Register(id, fmt.Sprintf("app%d", i), workload.Scalable, false); err != nil {
			t.Fatal(err)
		}
		if err := m.UploadTable(id, churnTestTable(t, p, fmt.Sprintf("app%d", i), kind, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.LastSolveSource(); got != alloc.SourceSharded {
		t.Fatalf("solve source = %q, want %q", got, alloc.SourceSharded)
	}
	for _, info := range m.Sessions() {
		if s := m.sessions[info.Instance]; s.last == nil || len(s.last.Grants) == 0 {
			t.Fatalf("session %s has no grants from the sharded solve", info.Instance)
		}
	}
}
