package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// churnMgr is one half of the lockstep pair: a Manager plus its captured
// decision stream and journal buffer.
type churnMgr struct {
	m    *Manager
	jbuf *bytes.Buffer
	dec  []Decision
}

func newChurnMgr(t *testing.T, p *platform.Platform, tables map[string]*opoint.Table, cacheSize int) *churnMgr {
	t.Helper()
	c := &churnMgr{jbuf: &bytes.Buffer{}}
	m, err := NewManager(Config{
		Platform:           p,
		OfflineTables:      tables,
		DisableExploration: true,
		AllocCacheSize:     cacheSize,
		Journal:            telemetry.NewJournal(c.jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.OnDecision(func(d Decision) { c.dec = append(c.dec, d) })
	c.m = m
	return c
}

// TestCacheChurnNeverStale drives a cache-enabled Manager and a cache-disabled
// Manager through identical seeded churn — register, deregister, phase
// changes, measurement bursts, manual reallocations, and a mid-sequence
// export/import restart — and requires their decision streams to stay exactly
// equal after every operation. Any stale cache serve (a fingerprint that
// failed to change when its inputs did, or a seeded snapshot entry surviving a
// content change) diverges the streams and fails on the operation that did it.
func TestCacheChurnNeverStale(t *testing.T) {
	p := platform.OdroidXU3()
	profiles := workload.IntelApps()
	tables := make(map[string]*opoint.Table, len(profiles))
	var apps []string
	for _, prof := range profiles {
		tables[prof.Name] = offlineTable(p, prof)
		apps = append(apps, prof.Name)
	}
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cached := newChurnMgr(t, p, tables, 0) // 0 → DefaultCacheSize
			fresh := newChurnMgr(t, p, tables, -1) // negative → disabled
			rng := rand.New(rand.NewSource(seed))
			nextID := 0
			type sess struct{ id, app string }
			var live []sess
			both := func(op string, f func(m *Manager) error) {
				t.Helper()
				if err := f(cached.m); err != nil {
					t.Fatalf("%s on cached manager: %v", op, err)
				}
				if err := f(fresh.m); err != nil {
					t.Fatalf("%s on fresh manager: %v", op, err)
				}
			}
			for op := 0; op < 50; op++ {
				switch roll := rng.Intn(10); {
				case op == 25:
					// Export/import restart churn: both managers are rebuilt
					// from their own snapshots (the cached one carrying its
					// solution cache) and every live session re-registers.
					cst, fst := cached.m.ExportState(), fresh.m.ExportState()
					if len(cst.AllocCache) == 0 {
						t.Fatalf("op %d: cached manager exported no cache entries", op)
					}
					if len(fst.AllocCache) != 0 {
						t.Fatalf("op %d: cache-disabled manager exported %d cache entries", op, len(fst.AllocCache))
					}
					cached = newChurnMgr(t, p, tables, 0)
					fresh = newChurnMgr(t, p, tables, -1)
					if err := cached.m.ImportState(cst, store.Recovery{}); err != nil {
						t.Fatalf("op %d: import into cached manager: %v", op, err)
					}
					if err := fresh.m.ImportState(fst, store.Recovery{}); err != nil {
						t.Fatalf("op %d: import into fresh manager: %v", op, err)
					}
					for _, s := range live {
						s := s
						both("re-Register", func(m *Manager) error {
							return m.Register(s.id, s.app, workload.Scalable, false)
						})
					}
				case (roll < 3 && len(live) < 6) || len(live) == 0: // register
					app := apps[rng.Intn(len(apps))]
					id := fmt.Sprintf("%s-%d", app, nextID)
					nextID++
					both("Register", func(m *Manager) error {
						return m.Register(id, app, workload.Scalable, false)
					})
					live = append(live, sess{id, app})
				case roll < 4 && len(live) > 1: // deregister
					i := rng.Intn(len(live))
					id := live[i].id
					both("Deregister", func(m *Manager) error { return m.Deregister(id) })
					live = append(live[:i], live[i+1:]...)
				case roll < 6: // phase change
					id := live[rng.Intn(len(live))].id
					phase := fmt.Sprintf("phase-%d", op)
					both("PhaseChange", func(m *Manager) error { return m.PhaseChange(id, phase) })
				case roll < 8: // measurement burst (may trip the cadence)
					id := live[rng.Intn(len(live))].id
					u, pw := 1+rng.Float64(), 1+rng.Float64()
					both("Measure", func(m *Manager) error {
						for i := 0; i < 30; i++ {
							if err := m.Measure(id, u, pw); err != nil {
								return err
							}
						}
						return nil
					})
				default:
					both("Reallocate", func(m *Manager) error { return m.Reallocate() })
				}
				if !reflect.DeepEqual(cached.dec, fresh.dec) {
					t.Fatalf("op %d: cached manager's decisions diverge from the cache-less manager's\ncached: %+v\nfresh:  %+v",
						op, cached.dec, fresh.dec)
				}
			}

			// The journals must agree on everything except the solve
			// bookkeeping (lambda_iters, solve_source) — and the cached run
			// must actually have exercised the cache.
			crecs, err := telemetry.ReadJournal(bytes.NewReader(cached.jbuf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			frecs, err := telemetry.ReadJournal(bytes.NewReader(fresh.jbuf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(crecs) != len(frecs) {
				t.Fatalf("journal length diverges: cached %d epochs, fresh %d", len(crecs), len(frecs))
			}
			var hits int
			for i := range crecs {
				c, f := crecs[i], frecs[i]
				if c.SolveSource == "cached" {
					hits++
				}
				if f.SolveSource == "cached" {
					t.Fatalf("epoch %d: cache-disabled manager reports a cached solve", f.Epoch)
				}
				c.LambdaIters, f.LambdaIters = 0, 0
				c.SolveSource, f.SolveSource = "", ""
				if !reflect.DeepEqual(c, f) {
					t.Fatalf("epoch %d diverges beyond solve bookkeeping:\ncached: %+v\nfresh:  %+v", c.Epoch, c, f)
				}
			}
			if hits == 0 {
				t.Fatal("churn sequence never hit the cache — the test is not exercising it")
			}
			cs := cached.m.AllocCacheStats()
			if cs.Hits == 0 {
				t.Fatalf("cache stats report no hits after churn: %+v", cs)
			}
			if fcs := fresh.m.AllocCacheStats(); fcs.Cap != 0 {
				t.Fatalf("cache-disabled manager reports a cache: %+v", fcs)
			}
		})
	}
}
