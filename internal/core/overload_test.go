package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// panickyAllocator delegates to a real allocator, panicking whenever the
// inputs include one of the poisonous instances.
type panickyAllocator struct {
	real   Allocator
	poison map[string]bool
}

func (a *panickyAllocator) AllocateWithStats(apps []alloc.AppInput) ([]alloc.Allocation, alloc.Stats, error) {
	for _, in := range apps {
		if a.poison[in.ID] {
			panic("poisonous operating-point table: " + in.ID)
		}
	}
	return a.real.AllocateWithStats(apps)
}

// ladderManager builds a default-allocator manager (ladder armed) on the
// Odroid with journal, tracer and metrics attached.
func ladderManager(t *testing.T) (*Manager, *bytes.Buffer, *telemetry.Tracer, *telemetry.Metrics) {
	t.Helper()
	p := platform.OdroidXU3()
	profiles := workload.IntelApps()
	tables := make(map[string]*opoint.Table, len(profiles))
	for _, prof := range profiles {
		tables[prof.Name] = offlineTable(p, prof)
	}
	jbuf := &bytes.Buffer{}
	tracer := telemetry.NewTracer(0)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	m, err := NewManager(Config{
		Platform:           p,
		OfflineTables:      tables,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(jbuf),
		Tracer:             tracer,
		Metrics:            mt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, jbuf, tracer, mt
}

// lastRecord parses the journal buffer and returns its final epoch record.
func lastRecord(t *testing.T, jbuf *bytes.Buffer) telemetry.EpochRecord {
	t.Helper()
	recs, err := telemetry.ReadJournal(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("empty journal")
	}
	return recs[len(recs)-1]
}

func TestSolverStallFallsBackToGreedy(t *testing.T) {
	m, jbuf, _, mt := ladderManager(t)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("mg-1", "mg.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}

	m.ForceDegradedSolves(1)
	if err := m.Reallocate(); err != nil {
		t.Fatalf("Reallocate under stall: %v", err)
	}
	rec := lastRecord(t, jbuf)
	if rec.SolveSource != alloc.SourceDegradedGreedy {
		t.Errorf("stalled epoch SolveSource = %q, want %q", rec.SolveSource, alloc.SourceDegradedGreedy)
	}
	if rec.Error != "" {
		t.Errorf("degraded-greedy epoch journalled Error %q; it pushed decisions", rec.Error)
	}
	if got := m.DegradedRung(); got != alloc.SourceDegradedGreedy {
		t.Errorf("DegradedRung = %q, want %q", got, alloc.SourceDegradedGreedy)
	}
	if msg := m.LastEpochError(); !strings.Contains(msg, "stalled") {
		t.Errorf("LastEpochError = %q, want a stall message", msg)
	}
	if got := mt.EpochDegraded.With(alloc.SourceDegradedGreedy).Value(); got != 1 {
		t.Errorf("harp_epoch_degraded_total{rung=degraded-greedy} = %d, want 1", got)
	}
	if got := mt.EpochFailures.Value(); got != 1 {
		t.Errorf("harp_epoch_failures_total = %d, want 1", got)
	}

	// The next epoch solves normally: the rung clears, the sticky error
	// stays for harpctl status.
	if err := m.Reallocate(); err != nil {
		t.Fatalf("Reallocate after stall: %v", err)
	}
	if rec := lastRecord(t, jbuf); rec.SolveSource == alloc.SourceDegradedGreedy {
		t.Error("healthy epoch still journalled as degraded")
	}
	if got := m.DegradedRung(); got != "" {
		t.Errorf("DegradedRung after recovery = %q, want empty", got)
	}
	if m.LastEpochError() == "" {
		t.Error("sticky LastEpochError cleared by recovery")
	}
}

func TestStallWithoutFallbackReplaysLastGood(t *testing.T) {
	// An injected custom allocator has no greedy fallback, so a stall walks
	// straight to rung 3: replay the last-known-good allocation.
	p := platform.RaptorLake()
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	jbuf := &bytes.Buffer{}
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          real,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	before, ok := rec.last["ep-1"]
	if !ok {
		t.Fatal("no decision pushed on registration")
	}

	m.ForceDegradedSolves(1)
	if err := m.Reallocate(); err != nil {
		t.Fatalf("Reallocate under stall: %v", err)
	}
	if jr := lastRecord(t, jbuf); jr.SolveSource != alloc.SourceDegradedStale {
		t.Errorf("SolveSource = %q, want %q", jr.SolveSource, alloc.SourceDegradedStale)
	}
	// The replay must keep the standing grant, not move or shrink it.
	after := rec.last["ep-1"]
	if after.Seq != before.Seq {
		if len(after.Grants) != len(before.Grants) || after.Vector.Key() != before.Vector.Key() {
			t.Errorf("stale replay changed the allocation: %+v -> %+v", before, after)
		}
	}
}

func TestStallWithNothingFreezesPushes(t *testing.T) {
	// No fallback and no last-known-good: rung 4 freezes the epoch.
	p := platform.RaptorLake()
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	jbuf := &bytes.Buffer{}
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          real,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	m.ForceDegradedSolves(1)
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatalf("Register under frozen epoch: %v", err)
	}
	if _, pushed := rec.last["ep-1"]; pushed {
		t.Error("frozen epoch pushed a decision")
	}
	jr := lastRecord(t, jbuf)
	if jr.SolveSource != alloc.SourceFrozen {
		t.Errorf("SolveSource = %q, want %q", jr.SolveSource, alloc.SourceFrozen)
	}
	if jr.Error == "" {
		t.Error("frozen epoch journalled no Error")
	}
	if len(jr.Outputs) != 0 {
		t.Errorf("frozen epoch journalled %d outputs", len(jr.Outputs))
	}

	// The stall was one epoch; the session recovers on the next solve.
	if err := m.Reallocate(); err != nil {
		t.Fatalf("Reallocate after frozen epoch: %v", err)
	}
	if _, pushed := rec.last["ep-1"]; !pushed {
		t.Error("no decision after the stall lifted")
	}
}

func TestSolverPanicQuarantinesPoisonousSession(t *testing.T) {
	p := platform.RaptorLake()
	real, err := alloc.New(p)
	if err != nil {
		t.Fatal(err)
	}
	pa := &panickyAllocator{real: real, poison: map[string]bool{}}
	jbuf := &bytes.Buffer{}
	tracer := telemetry.NewTracer(0)
	mt := telemetry.NewMetrics(telemetry.NewRegistry())
	m, err := NewManager(Config{
		Platform:           p,
		Allocator:          pa,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(jbuf),
		Tracer:             tracer,
		Metrics:            mt,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder(m)
	if err := m.Register("good-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	goodBefore := rec.last["good-1"]

	// The second registration brings poisonous inputs: the solve panics,
	// the offender is attributed and quarantined, and the epoch resolves
	// via the ladder instead of crashing the manager.
	pa.poison["bad-1"] = true
	if err := m.Register("bad-1", "mg.C", workload.Scalable, false); err != nil {
		t.Fatalf("Register with poisonous table: %v", err)
	}

	infos := m.Sessions()
	byID := map[string]SessionInfo{}
	for _, info := range infos {
		byID[info.Instance] = info
	}
	if got := byID["bad-1"].Liveness; got != LivenessQuarantined {
		t.Errorf("poisonous session liveness = %v, want quarantined", got)
	}
	if got := byID["good-1"].Liveness; got != LivenessLive {
		t.Errorf("innocent session liveness = %v, want live", got)
	}
	if jr := lastRecord(t, jbuf); jr.SolveSource != alloc.SourceDegradedStale {
		t.Errorf("panic epoch SolveSource = %q, want %q (last-good replay)", jr.SolveSource, alloc.SourceDegradedStale)
	}
	if goodAfter := rec.last["good-1"]; goodAfter.Seq != goodBefore.Seq {
		if len(goodAfter.Grants) != len(goodBefore.Grants) {
			t.Errorf("survivor's allocation disturbed: %+v -> %+v", goodBefore, goodAfter)
		}
	}
	var sawPanic bool
	for _, ev := range tracer.Events() {
		if ev.Kind == telemetry.EvSessionPanicked && ev.Instance == "bad-1" {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Error("no EvSessionPanicked trace event for the poisonous session")
	}

	// Subsequent epochs run clean: the quarantined session's inputs are
	// excluded, so the solver no longer panics.
	if err := m.Reallocate(); err != nil {
		t.Fatalf("Reallocate after quarantine: %v", err)
	}
	if got := m.DegradedRung(); got != "" {
		t.Errorf("DegradedRung after quarantine = %q, want empty (clean solve)", got)
	}
}

func TestDeadlineBudgetCutsLagrangianShort(t *testing.T) {
	// A LatencyClock past the deadline on every reading forces the
	// subgradient loop to its early cutoff: the solve still succeeds (one
	// iteration), no ladder rung engages.
	p := platform.OdroidXU3()
	profiles := workload.IntelApps()
	tables := make(map[string]*opoint.Table, len(profiles))
	for _, prof := range profiles {
		tables[prof.Name] = offlineTable(p, prof)
	}
	jbuf := &bytes.Buffer{}
	now := time.Duration(0)
	m, err := NewManager(Config{
		Platform:           p,
		OfflineTables:      tables,
		DisableExploration: true,
		Journal:            telemetry.NewJournal(jbuf),
		EpochBudget:        time.Millisecond,
		LatencyClock: func() time.Duration {
			now += 10 * time.Millisecond
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("ep-1", "ep.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("mg-1", "mg.C", workload.Scalable, false); err != nil {
		t.Fatal(err)
	}
	rec := lastRecord(t, jbuf)
	if rec.SolveSource == alloc.SourceFrozen || rec.Error != "" {
		t.Errorf("budget-cut solve degraded to %q (error %q); want a bounded healthy solve", rec.SolveSource, rec.Error)
	}
	if rec.LambdaIters > 2 {
		t.Errorf("over-budget solve ran %d λ iterations, want early cutoff", rec.LambdaIters)
	}
	if got := m.DegradedRung(); got != "" {
		t.Errorf("DegradedRung = %q after a bounded solve", got)
	}
}
