package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func vec(t *testing.T, p *platform.Platform, perKind ...[]int) platform.ResourceVector {
	t.Helper()
	rv, err := platform.VectorOf(p, perKind...)
	if err != nil {
		t.Fatal(err)
	}
	return rv
}

func newAllocator(t *testing.T, p *platform.Platform, opts ...Option) *Allocator {
	t.Helper()
	a, err := New(p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// tableFor builds a full measured table from the workload model.
func tableFor(p *platform.Platform, prof *workload.Profile) *opoint.Table {
	tbl := &opoint.Table{App: prof.Name, Platform: p.Name}
	for _, rv := range platform.EnumerateVectors(p, 0) {
		ev := workload.EvaluateVector(p, prof, rv)
		tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts, Measured: true})
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(platform.OdroidXU3(), WithMethod(Method(9))); err == nil {
		t.Error("bad method accepted")
	}
	if _, err := New(platform.OdroidXU3(), WithIterations(0)); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := platform.OdroidXU3()
	bad.Kinds = nil
	if _, err := New(bad); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestAllocateEmpty(t *testing.T) {
	a := newAllocator(t, platform.OdroidXU3())
	got, err := a.Allocate(nil)
	if err != nil || got != nil {
		t.Fatalf("Allocate(nil) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestAllocateRejectsNilTable(t *testing.T) {
	a := newAllocator(t, platform.OdroidXU3())
	if _, err := a.Allocate([]AppInput{{ID: "x"}}); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestSingleAppGetsMinCostPoint(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	tbl := &opoint.Table{App: "x", Platform: p.Name}
	// Cheapest point: equal utility, lowest power.
	tbl.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{2}, []int{0}), Utility: 10, Power: 4, Measured: true})
	tbl.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{0}, []int{2}), Utility: 10, Power: 1, Measured: true})

	allocs, err := a.Allocate([]AppInput{{ID: "x", Table: tbl}})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 1 {
		t.Fatalf("allocations = %d, want 1", len(allocs))
	}
	got := allocs[0]
	if got.Point.Power != 1 {
		t.Errorf("selected point power = %g, want the 1 W point", got.Point.Power)
	}
	if got.CoAllocated {
		t.Error("single app co-allocated")
	}
	if len(got.Grants) != 2 {
		t.Fatalf("grants = %v, want 2 LITTLE cores", got.Grants)
	}
	for _, g := range got.Grants {
		if g.Core < 4 || g.Core > 7 {
			t.Errorf("grant %+v outside LITTLE core range [4,8)", g)
		}
		if g.Threads != 1 {
			t.Errorf("grant threads = %d, want 1", g.Threads)
		}
	}
}

func TestAllocationsAreSpatiallyIsolated(t *testing.T) {
	p := platform.RaptorLake()
	a := newAllocator(t, p)
	var inputs []AppInput
	for _, name := range []string{"ep.C", "mg.C", "ft.C"} {
		prof, err := workload.ByName(workload.IntelApps(), name)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, AppInput{ID: name, Table: tableFor(p, prof)})
	}
	allocs, err := a.Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 3 {
		t.Fatalf("allocations = %d, want 3", len(allocs))
	}
	for i := range allocs {
		if allocs[i].CoAllocated {
			t.Errorf("%s co-allocated on a roomy machine", allocs[i].ID)
		}
		if len(allocs[i].Grants) == 0 {
			t.Errorf("%s received no cores", allocs[i].ID)
		}
		for j := i + 1; j < len(allocs); j++ {
			if Overlaps(allocs[i], allocs[j]) {
				t.Errorf("allocations %s and %s overlap", allocs[i].ID, allocs[j].ID)
			}
		}
	}
}

func TestCoAllocationWhenOverloaded(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	// Ten apps that each insist on the full machine.
	full := vec(t, p, []int{4}, []int{4})
	var inputs []AppInput
	for i := 0; i < 10; i++ {
		tbl := &opoint.Table{App: "x", Platform: p.Name}
		tbl.Upsert(opoint.OperatingPoint{Vector: full, Utility: 10, Power: 5, Measured: true})
		inputs = append(inputs, AppInput{ID: string(rune('a' + i)), Table: tbl})
	}
	allocs, err := a.Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var coallocated int
	for _, al := range allocs {
		if al.CoAllocated {
			coallocated++
		}
		if len(al.Grants) == 0 {
			t.Errorf("%s received no cores even under co-allocation", al.ID)
		}
	}
	if coallocated == 0 {
		t.Fatal("no app marked co-allocated on a 10×-overloaded machine")
	}
}

// The crafted instance where greedy paints itself into a corner: the first
// app grabs all big cores for a marginal gain, leaving the second app
// nothing; the Lagrangian solver shares.
func TestLagrangianBeatsGreedy(t *testing.T) {
	p := platform.OdroidXU3()

	t1 := &opoint.Table{App: "a", Platform: p.Name}
	t1.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{4}, []int{0}), Utility: 10, Power: 1, Measured: true})
	t1.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{2}, []int{0}), Utility: 10, Power: 1.2, Measured: true})
	t2 := &opoint.Table{App: "b", Platform: p.Name}
	t2.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{4}, []int{0}), Utility: 10, Power: 10, Measured: true})
	t2.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{2}, []int{0}), Utility: 10, Power: 10.5, Measured: true})
	inputs := []AppInput{{ID: "a", Table: t1}, {ID: "b", Table: t2}}

	greedy, err := newAllocator(t, p, WithMethod(Greedy)).Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	lagr, err := newAllocator(t, p, WithMethod(Lagrangian)).Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	greedyCo := greedy[0].CoAllocated || greedy[1].CoAllocated
	lagrCo := lagr[0].CoAllocated || lagr[1].CoAllocated
	if !greedyCo {
		t.Error("greedy unexpectedly found the feasible split")
	}
	if lagrCo {
		t.Error("lagrangian failed to find the feasible 2+2 split")
	}
	if Overlaps(lagr[0], lagr[1]) {
		t.Error("lagrangian allocations overlap")
	}
}

func TestFallbackForEmptyTable(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	allocs, err := a.Allocate([]AppInput{{ID: "fresh", Table: &opoint.Table{App: "fresh"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 1 || len(allocs[0].Grants) != 1 {
		t.Fatalf("fallback allocation = %+v, want one core", allocs)
	}
	// The fallback core is of the most efficient kind (LITTLE).
	if g := allocs[0].Grants[0]; g.Core < 4 {
		t.Errorf("fallback core %d, want a LITTLE core (≥ 4)", g.Core)
	}
}

func TestMethodString(t *testing.T) {
	if Lagrangian.String() != "lagrangian" || Greedy.String() != "greedy" {
		t.Error("unexpected method names")
	}
	if Method(9).String() != "method(9)" {
		t.Error("unexpected unknown-method string")
	}
}

// Property: for random app mixes, every allocation is within core ranges,
// non-co-allocated allocations never overlap, and per-kind totals of
// isolated allocations never exceed capacity.
func TestAllocatorInvariantsProperty(t *testing.T) {
	p := platform.OdroidXU3()
	vecs := platform.EnumerateVectors(p, 0)
	a := newAllocator(t, p)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nApps := 1 + r.Intn(6)
		inputs := make([]AppInput, nApps)
		for i := range inputs {
			tbl := &opoint.Table{App: "x", Platform: p.Name}
			nPts := 1 + r.Intn(8)
			for j := 0; j < nPts; j++ {
				rv := vecs[r.Intn(len(vecs))]
				tbl.Upsert(opoint.OperatingPoint{
					Vector:   rv,
					Utility:  r.Float64() * 20,
					Power:    r.Float64() * 8,
					Measured: true,
				})
			}
			inputs[i] = AppInput{ID: string(rune('a' + i)), Table: tbl}
		}
		allocs, err := a.Allocate(inputs)
		if err != nil || len(allocs) != nApps {
			return false
		}
		used := make([]int, len(p.Kinds))
		for i, al := range allocs {
			for _, g := range al.Grants {
				kind, err := p.KindOf(g.Core)
				if err != nil {
					return false
				}
				if g.Threads < 1 || g.Threads > p.Kinds[kind].SMT {
					return false
				}
			}
			if al.CoAllocated {
				continue
			}
			for _, d := range al.Point.Vector.CoreDemand() {
				_ = d
			}
			for k, d := range al.Point.Vector.CoreDemand() {
				used[k] += d
			}
			for j := i + 1; j < len(allocs); j++ {
				if !allocs[j].CoAllocated && Overlaps(al, allocs[j]) {
					return false
				}
			}
		}
		for k, u := range used {
			if u > p.Kinds[k].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The Lagrangian solver must never produce a worse feasible outcome than the
// greedy baseline on instances both can satisfy without co-allocation.
func TestLagrangianNoWorseThanGreedyCost(t *testing.T) {
	p := platform.RaptorLake()
	apps := []string{"ep.C", "mg.C", "cg.C", "ft.C"}
	var inputs []AppInput
	for _, name := range apps {
		prof, err := workload.ByName(workload.IntelApps(), name)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, AppInput{ID: name, Table: tableFor(p, prof)})
	}
	lagr, err := newAllocator(t, p, WithMethod(Lagrangian)).Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := newAllocator(t, p, WithMethod(Greedy)).Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	lc := TotalCost(lagr, inputs)
	gc := TotalCost(greedy, inputs)
	if lc > gc*1.05 {
		t.Errorf("lagrangian cost %.2f noticeably above greedy %.2f", lc, gc)
	}
}

// Overlaps must not let a later grant on the same core shadow an earlier
// one: an allocation that wraps around (co-allocation) can hold several
// grants for one core, and the per-core occupancy is the maximum over them.
func TestOverlapsMultipleGrantsSameCore(t *testing.T) {
	a := Allocation{ID: "a", Grants: []CoreGrant{
		{Core: 3, Threads: 2},
		{Core: 3, Threads: 0}, // must not erase the occupancy above
	}}
	b := Allocation{ID: "b", Grants: []CoreGrant{{Core: 3, Threads: 1}}}
	if !Overlaps(a, b) {
		t.Error("overlap on core 3 missed when a later zero-thread grant shadows it")
	}
	if !Overlaps(b, a) {
		t.Error("Overlaps not symmetric for the shadowed-grant case")
	}
	// Zero-thread grants occupy nothing: no overlap in either direction.
	c := Allocation{ID: "c", Grants: []CoreGrant{{Core: 3, Threads: 0}}}
	if Overlaps(b, c) || Overlaps(c, b) {
		t.Error("zero-thread grant reported as overlapping")
	}
	// Disjoint cores never overlap.
	d := Allocation{ID: "d", Grants: []CoreGrant{{Core: 4, Threads: 2}}}
	if Overlaps(a, d) {
		t.Error("disjoint cores reported as overlapping")
	}
}
