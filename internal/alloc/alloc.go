// Package alloc implements HARP's energy-efficient resource allocation
// (§4.2.2): selecting one operating point per application to minimise the
// system-wide energy-utility cost (Eq. 1a) subject to the platform's
// per-kind core capacity (Eq. 1b). The problem is a Multiple-choice
// Multi-dimensional Knapsack (MMKP); the production solver uses Lagrangian
// relaxation with a greedy repair phase in the style of Wildermann et al.,
// and a plain greedy solver is provided as an ablation baseline. When demand
// exceeds capacity the allocator falls back to co-allocation (§4.2.2,
// Limitations), marking the affected applications so the resource manager
// can suspend their performance monitoring.
package alloc

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
)

// Method selects the MMKP solver.
type Method int

// Method values.
const (
	// Lagrangian is the production solver (relaxation + repair).
	Lagrangian Method = iota + 1
	// Greedy picks min-cost feasible points in application order — the
	// ablation baseline.
	Greedy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Lagrangian:
		return "lagrangian"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// AppInput describes one application competing for resources.
type AppInput struct {
	// ID identifies the application (its session name).
	ID string
	// Table is the application's operating points (measured + predicted).
	Table *opoint.Table
	// MaxUtility overrides v* for cost normalisation; 0 derives it from the
	// table.
	MaxUtility float64
}

// CoreGrant assigns one physical core with a number of hardware threads.
type CoreGrant struct {
	// Core is the global physical core index.
	Core int
	// Threads is how many of the core's hardware threads the application
	// may use (1 ≤ Threads ≤ SMT).
	Threads int
}

// Allocation is the allocator's decision for one application.
type Allocation struct {
	// ID echoes the AppInput ID.
	ID string
	// Point is the selected operating point.
	Point opoint.OperatingPoint
	// Grants lists the concrete cores assigned (spatially isolated unless
	// CoAllocated).
	Grants []CoreGrant
	// CoAllocated marks applications sharing cores with others because
	// demand exceeded capacity; HARP suspends their monitoring (§5.1).
	CoAllocated bool
}

// Allocator solves the operating-point selection and core assignment.
//
// The Allocator is stateful — it owns a solution cache, the previous solve's
// λ vector for warm starts and a reusable solver scratch arena — and is not
// goroutine-safe; embedders (the Manager, benchmarks) serialise solves, as
// they already do for the Manager itself.
type Allocator struct {
	plat    *platform.Platform
	method  Method
	iters   int
	tracer  *telemetry.Tracer
	metrics *telemetry.Metrics

	// Solution cache (cache.go) and input fingerprinting (Fingerprint.go).
	cacheSize int
	cache     *solutionCache
	fpBase    Fingerprint
	tableMemo map[uint64]tableHashEntry

	// Warm-start state (warmstart.go).
	warm       bool
	prevLambda []float64
	havePrev   bool

	// Incremental re-solve state (incremental.go): standing allocations
	// pinned per application, the epochs since the last full solve, and the
	// cost-slack baseline the drift bound compares against.
	inc           bool
	incFullEvery  int
	incDriftBound float64
	incPins       map[string]*pinnedApp
	incSinceFull  int
	incBaseSlack  float64
	incHaveBase   bool

	// overBudget, when set, is polled between subgradient iterations; a
	// true return cuts the λ loop off early (repair still makes the
	// partial selection feasible). See SetOverBudget.
	overBudget func() bool

	// Flight-recorder phase histograms, resolved once in New so the hot path
	// never touches the HistogramVec map (nil when metrics are off — the
	// span API is nil-safe).
	fingerprintHist *telemetry.Histogram
	solveHist       *telemetry.Histogram
	repairHist      *telemetry.Histogram

	scratch solverScratch
}

// solverScratch is the per-Allocator arena reused across solves so the
// steady-state pipeline stays off the heap: capacity/λ/demand vectors, the
// per-app states with their candidate and demand buffers, and the
// representative arenas of the subgradient iteration. Nothing in here may
// escape into a returned Allocation — assignCores always builds fresh output
// slices precisely because cache entries retain them.
type solverScratch struct {
	capacity   []int
	states     []*appState
	usable     []opoint.OperatingPoint
	lambda     []float64
	lambdaPrev []float64
	demand     []int
	remaining  []int
	reps       [][]lagRep
	repBuf     []lagRep
	fdBuf      []float64
	seen       map[uint64]bool
}

// ensureStates returns n reusable per-app states.
func (s *solverScratch) ensureStates(n int) []*appState {
	for len(s.states) < n {
		s.states = append(s.states, new(appState))
	}
	return s.states[:n]
}

// growInts returns buf resized to n, reallocating only when it must.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growFloats is growInts for float64 slices.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Option configures an Allocator.
type Option interface{ apply(*Allocator) }

type optionFunc func(*Allocator)

func (f optionFunc) apply(a *Allocator) { f(a) }

// WithMethod selects the solver (default Lagrangian).
func WithMethod(m Method) Option {
	return optionFunc(func(a *Allocator) { a.method = m })
}

// WithIterations sets the subgradient iteration count (default 60).
func WithIterations(n int) Option {
	return optionFunc(func(a *Allocator) { a.iters = n })
}

// WithTracer emits an EvAllocationComputed event per solver run (nil
// disables tracing).
func WithTracer(t *telemetry.Tracer) Option {
	return optionFunc(func(a *Allocator) { a.tracer = t })
}

// WithCache enables the content-addressed solution cache with capacity n
// (entries); n <= 0 disables caching, which is the default. DefaultCacheSize
// is a sensible capacity for production managers. Cache hits return the
// memoised []Allocation without copying — callers must treat it as
// read-only.
func WithCache(n int) Option {
	return optionFunc(func(a *Allocator) { a.cacheSize = n })
}

// WithMetrics wires the allocator's cache counters and warm-start iteration
// histogram (nil disables; the instruments are nil-safe but the bundle
// pointer is checked here).
func WithMetrics(m *telemetry.Metrics) Option {
	return optionFunc(func(a *Allocator) { a.metrics = m })
}

// SetOverBudget installs the deadline probe for the degradation ladder's
// rung 1: between subgradient iterations the solver polls check and stops
// early when it returns true, keeping the current selection (repair makes
// it feasible, so the result is valid — just less converged). At least one
// iteration always runs. A nil check removes the probe.
func (a *Allocator) SetOverBudget(check func() bool) { a.overBudget = check }

// New creates an allocator for the platform.
func New(plat *platform.Platform, opts ...Option) (*Allocator, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{plat: plat, method: Lagrangian, iters: 60}
	for _, o := range opts {
		o.apply(a)
	}
	if a.method != Lagrangian && a.method != Greedy {
		return nil, fmt.Errorf("alloc: bad method %d", a.method)
	}
	if a.iters < 1 {
		return nil, fmt.Errorf("alloc: iterations %d", a.iters)
	}
	if a.cacheSize > 0 {
		a.cache = newSolutionCache(a.cacheSize)
	}
	if a.incFullEvery < 1 {
		a.incFullEvery = DefaultIncrementalFullEvery
	}
	if a.incDriftBound <= 0 {
		a.incDriftBound = DefaultIncrementalDriftBound
	}
	if a.inc {
		a.incPins = make(map[string]*pinnedApp)
	}
	a.fpBase = a.fingerprintBase()
	if a.metrics != nil {
		a.fingerprintHist = a.metrics.EpochPhase.With(telemetry.PhaseFingerprint)
		a.solveHist = a.metrics.EpochPhase.With(telemetry.PhaseSolve)
		a.repairHist = a.metrics.EpochPhase.With(telemetry.PhaseRepair)
	}
	return a, nil
}

// candidate is an operating point with its precomputed cost and demand.
type candidate struct {
	op     opoint.OperatingPoint
	cost   float64
	demand []int
}

// appState is the per-application solver view. States live in the solver
// scratch and are reset per solve; demandBuf is the arena the candidates'
// demand slices are carved from.
type appState struct {
	id     string
	cands  []candidate
	chosen int // index into cands, -1 = none
	// coalloc records that repair found no candidate fitting the remaining
	// capacity and deferred the application to co-allocation; assignCores
	// wraps exactly these states around the capacity. A wrap attempt by any
	// other state is an internal accounting bug surfaced as *CapacityError.
	coalloc   bool
	demandBuf []int
}

// Solve sources reported in Stats.Source and journaled per epoch.
const (
	// SourceCold is a full solve from a zero λ vector.
	SourceCold = "cold"
	// SourceWarm is a full solve seeded with the previous epoch's λ.
	SourceWarm = "warm"
	// SourceCached is a solution served from the fingerprint cache.
	SourceCached = "cached"
	// SourceIncremental is a merge of pinned standing allocations with a
	// re-solve of the changed applications against the residual capacity
	// (see incremental.go).
	SourceIncremental = "incremental"
	// SourceSharded is a solve partitioned into independent allocation
	// domains by platform-kind footprint and solved in parallel (see
	// sharded.go). Single-domain sharded solves keep the child's source.
	SourceSharded = "sharded"

	// The remaining sources are degradation-ladder rungs, produced by
	// core.Manager (not this package's solver) when the primary solve
	// fails or exceeds its deadline budget; they are declared here so the
	// journal vocabulary for SolveSource lives in one place.

	// SourceDegradedGreedy is a greedy fallback solve after the primary
	// solve failed (ladder rung 2).
	SourceDegradedGreedy = "degraded-greedy"
	// SourceDegradedStale is the last-known-good allocation replayed
	// (ladder rung 3).
	SourceDegradedStale = "degraded-stale"
	// SourceFrozen is an epoch that pushed nothing because no usable
	// allocation existed (ladder rung 4).
	SourceFrozen = "frozen"
)

// Stats summarises one solver run for the telemetry layer.
type Stats struct {
	// Apps is the number of competing applications.
	Apps int
	// Candidates is the total Pareto-filtered candidate count across apps.
	Candidates int
	// LambdaIters is the number of subgradient iterations actually performed
	// before the λ fixpoint was reached (0 for the greedy solver and for
	// cache hits) — the iterations-to-convergence measure warm starts are
	// judged by.
	LambdaIters int
	// CoAllocated counts applications that ended up sharing cores.
	CoAllocated int
	// Source tells where the solution came from: SourceCold, SourceWarm,
	// SourceCached, SourceIncremental or SourceSharded.
	Source string
	// Pinned and Resolved break an incremental solve down: Pinned
	// applications kept their standing allocation, Resolved went through the
	// residual re-solve (both 0 for full solves).
	Pinned, Resolved int
}

// Allocate selects one operating point per application and assigns concrete
// cores. Every input application receives an allocation; applications that
// cannot fit are co-allocated on shared cores.
func (a *Allocator) Allocate(apps []AppInput) ([]Allocation, error) {
	out, _, err := a.AllocateWithStats(apps)
	return out, err
}

// AllocateWithStats is Allocate plus solver statistics, and emits an
// EvAllocationComputed event when the allocator has a tracer.
//
// With the solution cache enabled, a Fingerprint hit returns the memoised
// []Allocation directly — zero heap allocations, Stats.Source = SourceCached
// — and the returned slice is shared with the cache: callers must not mutate
// it (the Manager clones what it pushes). Misses run the full pipeline and
// memoise the result.
func (a *Allocator) AllocateWithStats(apps []AppInput) ([]Allocation, Stats, error) {
	var stats Stats
	if len(apps) == 0 {
		return nil, stats, nil
	}

	var fp Fingerprint
	fpOK := false
	if a.cache != nil {
		sp := a.tracer.BeginPhase(telemetry.PhaseFingerprint, a.fingerprintHist)
		fp, fpOK = a.fingerprintInputs(apps)
		if fpOK {
			if e := a.cache.get(fp); e != nil {
				sp.End()
				if a.metrics != nil {
					a.metrics.AllocCacheHits.Inc()
				}
				stats = e.stats
				stats.Source = SourceCached
				stats.LambdaIters = 0
				// With incremental solving on, pins track the standing
				// solution even across cache hits, so a later changed-set
				// merge starts from what was actually returned. A no-op
				// (and still zero-allocation) when incremental is off.
				a.rememberFullSolve(apps, e.allocs)
				a.emitTrace(stats)
				return e.allocs, stats, nil
			}
			if a.metrics != nil {
				a.metrics.AllocCacheMisses.Inc()
			}
		}
		sp.End()
	}

	s := &a.scratch
	s.capacity = growInts(s.capacity, len(a.plat.Kinds))
	capacity := s.capacity
	for k, kind := range a.plat.Kinds {
		capacity[k] = kind.Count
	}

	solveSpan := a.tracer.BeginPhase(telemetry.PhaseSolve, a.solveHist)

	// Incremental path (incremental.go): when pins from a previous solve
	// exist and only a small changed set of applications differs, re-solve
	// just that set against the residual capacity. Falls through to the full
	// pipeline when ineligible, on drift or on the full-solve cadence.
	if out, incStats, ok, err := a.tryIncremental(apps, capacity); ok || err != nil {
		solveSpan.End()
		if err != nil {
			return nil, stats, err
		}
		a.emitTrace(incStats)
		return out, incStats, nil
	}

	states := s.ensureStates(len(apps))
	for i, app := range apps {
		if app.Table == nil {
			solveSpan.End()
			return nil, stats, fmt.Errorf("alloc: app %q without operating-point table", app.ID)
		}
		if err := a.buildState(states[i], app); err != nil {
			solveSpan.End()
			return nil, stats, err
		}
		stats.Candidates += len(states[i].cands)
	}
	stats.Apps = len(apps)
	stats.Source = SourceCold

	warm := a.warmLambda(len(capacity))
	if warm != nil {
		stats.Source = SourceWarm
	}
	stats.LambdaIters = a.selectPoints(states, capacity, warm)
	if stats.Source == SourceWarm && a.metrics != nil {
		a.metrics.AllocWarmStartIters.Observe(float64(stats.LambdaIters))
	}
	solveSpan.End()

	repairSpan := a.tracer.BeginPhase(telemetry.PhaseRepair, a.repairHist)
	a.refine(states, capacity)
	out, err := a.assignCores(states)
	repairSpan.End()
	if err != nil {
		return nil, stats, err
	}
	for _, al := range out {
		if al.CoAllocated {
			stats.CoAllocated++
		}
	}
	if fpOK {
		evicted := a.cache.put(fp, out, stats)
		if a.metrics != nil && evicted > 0 {
			a.metrics.AllocCacheEvictions.Add(uint64(evicted))
		}
	}
	a.rememberFullSolve(apps, out)
	a.emitTrace(stats)
	return out, stats, nil
}

// AllocateCapped solves against an explicit per-kind core capacity instead
// of the platform's (capacity[k] <= the kind's core count). The sharded
// allocator's power-budget coordinator uses it to shrink a domain's
// footprint; the solution cache and the incremental path are bypassed — the
// fingerprint does not cover capacity overrides — but pins are refreshed so
// later incremental merges start from what was returned.
func (a *Allocator) AllocateCapped(apps []AppInput, capacity []int) ([]Allocation, Stats, error) {
	var stats Stats
	if len(apps) == 0 {
		return nil, stats, nil
	}
	if len(capacity) != len(a.plat.Kinds) {
		return nil, stats, fmt.Errorf("alloc: capped solve with %d capacities for %d kinds", len(capacity), len(a.plat.Kinds))
	}
	states := a.scratch.ensureStates(len(apps))
	for i, app := range apps {
		if app.Table == nil {
			return nil, stats, fmt.Errorf("alloc: app %q without operating-point table", app.ID)
		}
		if err := a.buildState(states[i], app); err != nil {
			return nil, stats, err
		}
		stats.Candidates += len(states[i].cands)
	}
	stats.Apps = len(apps)
	stats.Source = SourceCold
	stats.LambdaIters = a.selectPoints(states, capacity, nil)
	a.refine(states, capacity)
	out, err := a.assignCores(states)
	if err != nil {
		return nil, stats, err
	}
	for _, al := range out {
		if al.CoAllocated {
			stats.CoAllocated++
		}
	}
	a.rememberFullSolve(apps, out)
	return out, stats, nil
}

// selectPoints runs the solver's selection step — the subgradient iteration
// for Lagrangian, the "pick during repair" initialisation for greedy — and
// returns the λ iteration count (0 for greedy).
func (a *Allocator) selectPoints(states []*appState, capacity []int, warm []float64) int {
	switch a.method {
	case Lagrangian:
		return a.lagrangianSelect(states, capacity, warm)
	default:
		for i := range states {
			states[i].chosen = -1
		}
		return 0
	}
}

// refine makes the selection feasible and locally optimal: repair, then (for
// the production Lagrangian pipeline only) rescue, then the local-search
// improvement. rescue stays off the greedy ablation — it exists to show what
// order-sensitive repair costs, and rescuing it would erase exactly that
// difference.
func (a *Allocator) refine(states []*appState, capacity []int) {
	a.repair(states, capacity)
	if a.method == Lagrangian {
		a.rescue(states, capacity)
	}
	a.improve(states, capacity)
}

// emitTrace emits the per-solve EvAllocationComputed event when tracing is
// enabled. Cache hits emit too — the adaptation loop still decided an epoch —
// with the cached stats and zero λ iterations.
func (a *Allocator) emitTrace(stats Stats) {
	if !a.tracer.Enabled() {
		return
	}
	a.tracer.Emit(telemetry.Event{
		Kind: telemetry.EvAllocationComputed,
		Seq:  stats.Apps,
		Vals: [4]float64{
			float64(stats.LambdaIters),
			float64(stats.Candidates),
			float64(stats.CoAllocated),
		},
	})
}

// buildState Pareto-filters the table and precomputes costs into a reusable
// per-app state. Candidate demand vectors are carved from the state's demand
// arena; the arena never escapes into returned Allocations.
//
// Unusable points — zero vectors and points whose cost guard yields a
// non-finite cost (e.g. a zero-power measurement) — are dropped BEFORE Pareto
// filtering. The Pareto objectives score low power and low demand as better,
// so a degenerate zero-power or zero-vector point dominates every honest
// point and, filtered afterwards, would evict the whole usable front and
// silently collapse the application onto the free fallback candidate (found
// by the differential oracle; see CORRECTNESS.md). Among usable points
// domination is cost-monotone — higher utility and lower power both lower
// cost = power/vhat² — so pre-filtering keeps the front lossless.
func (a *Allocator) buildState(st *appState, app AppInput) error {
	if err := app.Table.Validate(a.plat); err != nil {
		return err
	}
	vstar := app.MaxUtility
	if vstar <= 0 {
		vstar = app.Table.MaxUtility()
	}
	usable := a.scratch.usable[:0]
	for _, op := range app.Table.Points {
		if op.Vector.IsZero() {
			continue
		}
		cost := op.Cost(vstar)
		if math.IsInf(cost, 1) || math.IsNaN(cost) {
			continue
		}
		usable = append(usable, op)
	}
	a.scratch.usable = usable[:0]
	var points []opoint.OperatingPoint
	if len(usable) == len(app.Table.Points) {
		points = app.Table.ParetoPoints() // memoised fast path, same front
	} else {
		points = opoint.Pareto(usable, opoint.RuntimeObjectives)
	}
	st.id = app.ID
	st.chosen = -1
	st.coalloc = false
	st.cands = st.cands[:0]
	// Size the demand arena up front: carving then never reallocates, so the
	// candidates' demand slices stay valid.
	nk := len(a.plat.Kinds)
	if need := max(len(points), 1) * nk; cap(st.demandBuf) < need {
		st.demandBuf = make([]int, 0, need)
	}
	buf := st.demandBuf[:0]
	for _, op := range points {
		start := len(buf)
		for kind := range op.Vector.Counts {
			buf = append(buf, op.Vector.Cores(platform.KindID(kind)))
		}
		st.cands = append(st.cands, candidate{
			op:     op,
			cost:   op.Cost(vstar),
			demand: buf[start:len(buf):len(buf)],
		})
	}
	st.demandBuf = buf
	if len(st.cands) == 0 {
		// No usable characteristics yet (fresh application): fall back to a
		// single core of the most efficient kind so the app can run and be
		// explored.
		st.cands = append(st.cands, a.fallbackCandidate())
	}
	slices.SortFunc(st.cands, func(x, y candidate) int {
		if x.cost != y.cost {
			if x.cost < y.cost {
				return -1
			}
			return 1
		}
		return strings.Compare(x.op.Vector.Key(), y.op.Vector.Key())
	})
	return nil
}

// fallbackCandidate is one core (one hardware thread) of the most efficient
// kind with a neutral cost.
func (a *Allocator) fallbackCandidate() candidate {
	rv := platform.NewResourceVector(a.plat)
	kind := len(a.plat.Kinds) - 1
	rv.Counts[kind][0] = 1
	return candidate{
		op:     opoint.OperatingPoint{Vector: rv},
		cost:   0,
		demand: rv.CoreDemand(),
	}
}

// lagRep is one representative candidate in the subgradient scan: its index
// in the app's candidate list with cost and demand pre-converted to float64.
type lagRep struct {
	idx    int
	cost   float64
	demand []float64
}

// lagrangianSelect runs the subgradient iteration on the relaxed problem:
// each application independently minimises cost + λ·demand, and λ rises on
// over-demanded kinds. It returns the number of iterations actually
// performed and retains the final λ for warm starts.
//
// Candidates sharing a core-demand vector see the same λ·demand penalty, so
// within a demand group only the cheapest candidate — the first in cost
// order — can win the relaxed minimisation. The iteration therefore scans
// one representative per distinct demand vector (tens instead of hundreds),
// with demands pre-converted to float64. Representatives keep first-occurrence
// order and the per-candidate arithmetic is unchanged, so the selected
// indices, and with them the final allocation, are bit-identical to the full
// scan.
//
// warm, when non-nil, seeds λ₀ instead of zeros (see warmstart.go); the
// arithmetic is otherwise unchanged, so a nil warm reproduces the cold solve
// exactly.
//
// The iteration stops early at a λ fixpoint: if an update leaves every
// component unchanged, every future iteration is identical — the choices
// depend only on λ, and an unchanged λ means each kind had over == 0 (for
// λ[k] > 0) or over ≤ 0 (for λ[k] == 0), conditions the shrinking step
// schedule preserves. Exiting there is therefore bit-identical to running
// the full budget, and it makes the returned count a real
// iterations-to-convergence measure.
func (a *Allocator) lagrangianSelect(states []*appState, capacity []int, warm []float64) int {
	nk := len(capacity)
	s := &a.scratch
	s.lambda = growFloats(s.lambda, nk)
	lambda := s.lambda
	if warm != nil {
		copy(lambda, warm)
	} else {
		for k := range lambda {
			lambda[k] = 0
		}
	}
	s.lambdaPrev = growFloats(s.lambdaPrev, nk)
	prev := s.lambdaPrev

	// Scale for the multiplier updates: typical cost per core.
	var costSum, coreSum float64
	totalCands := 0
	for _, st := range states {
		totalCands += len(st.cands)
		for i := range st.cands {
			costSum += st.cands[i].cost
			for _, d := range st.cands[i].demand {
				coreSum += float64(d)
			}
		}
	}
	scale := 1.0
	if coreSum > 0 && costSum > 0 {
		scale = costSum / coreSum
	}

	// Representatives are carved from per-solve arenas whose capacity is
	// ensured up front (total candidates bounds the representative count),
	// so carving never reallocates and the slices stay valid.
	if cap(s.repBuf) < totalCands {
		s.repBuf = make([]lagRep, 0, totalCands)
	}
	repBuf := s.repBuf[:0]
	if cap(s.fdBuf) < totalCands*nk {
		s.fdBuf = make([]float64, 0, totalCands*nk)
	}
	fdBuf := s.fdBuf[:0]
	if cap(s.reps) < len(states) {
		s.reps = make([][]lagRep, len(states))
	}
	reps := s.reps[:len(states)]
	if s.seen == nil {
		s.seen = make(map[uint64]bool)
	}
	for si, st := range states {
		clear(s.seen)
		start := len(repBuf)
		for i := range st.cands {
			c := &st.cands[i]
			key, ok := demandKey(c.demand)
			if ok {
				if s.seen[key] {
					continue
				}
				s.seen[key] = true
			}
			fdStart := len(fdBuf)
			for _, d := range c.demand {
				fdBuf = append(fdBuf, float64(d))
			}
			repBuf = append(repBuf, lagRep{idx: i, cost: c.cost, demand: fdBuf[fdStart:len(fdBuf):len(fdBuf)]})
		}
		reps[si] = repBuf[start:len(repBuf):len(repBuf)]
	}
	s.repBuf, s.fdBuf = repBuf, fdBuf

	s.demand = growInts(s.demand, nk)
	demand := s.demand
	iters := a.iters
	for it := 0; it < a.iters; it++ {
		if it > 0 && a.overBudget != nil && a.overBudget() {
			// Deadline cutoff (degradation-ladder rung 1): keep the
			// selection from the previous iteration rather than miss the
			// epoch's budget chasing convergence.
			iters = it
			break
		}
		for k := range demand {
			demand[k] = 0
		}
		for si, st := range states {
			best := 0
			bestVal := math.Inf(1)
			for _, r := range reps[si] {
				v := r.cost
				for k, d := range r.demand {
					v += lambda[k] * d
				}
				if v < bestVal {
					bestVal = v
					best = r.idx
				}
			}
			st.chosen = best
			for k, d := range st.cands[best].demand {
				demand[k] += d
			}
		}
		copy(prev, lambda)
		step := scale * 2 / float64(it+2)
		for k := range lambda {
			// A platform kind always has capacity >= 1, but residual solves
			// (incremental re-solves, power-capped reconciles) can present a
			// kind whose capacity is fully pinned away; normalise by 1 there
			// so the over-demand signal stays finite.
			denom := float64(capacity[k])
			if denom <= 0 {
				denom = 1
			}
			over := float64(demand[k]-capacity[k]) / denom
			lambda[k] = math.Max(0, lambda[k]+step*over)
		}
		if floatsEqual(lambda, prev) {
			iters = it + 1
			break
		}
	}
	a.rememberLambda(lambda)
	return iters
}

// floatsEqual reports element-wise equality (bitwise, as the fixpoint test
// requires — no tolerance).
func floatsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// demandKey packs a per-kind core-demand vector into a dedup key; ok is
// false when the vector does not fit (the caller then keeps the candidate
// without deduplication, which is always correct).
//
// Each element is stored biased by one so that a leading zero demand still
// occupies its 16-bit slot: without the bias, [1 2] and [0 1 2] packed to
// the same key, and any caller deduplicating across vectors of different
// lengths would silently reuse the wrong λ-dot-product representative. The
// bias costs one value of headroom, hence the 1<<16−1 bound.
func demandKey(demand []int) (key uint64, ok bool) {
	if len(demand) > 4 {
		return 0, false
	}
	for _, d := range demand {
		if d < 0 || d >= 1<<16-1 {
			return 0, false
		}
		key = key<<16 | uint64(d+1)
	}
	return key, true
}

// repair makes the relaxed selection feasible: in application order, keep
// the Lagrangian choice if it fits the remaining capacity, otherwise take
// the cheapest fitting candidate; applications with no fitting candidate are
// deferred to co-allocation (chosen stays, CoAllocated set later).
func (a *Allocator) repair(states []*appState, capacity []int) {
	a.scratch.remaining = growInts(a.scratch.remaining, len(capacity))
	remaining := a.scratch.remaining
	copy(remaining, capacity)
	fits := func(demand []int) bool {
		for k, d := range demand {
			if d > remaining[k] {
				return false
			}
		}
		return true
	}
	take := func(demand []int) {
		for k, d := range demand {
			remaining[k] -= d
		}
	}
	for _, st := range states {
		if st.chosen >= 0 && fits(st.cands[st.chosen].demand) {
			take(st.cands[st.chosen].demand)
			continue
		}
		found := -1
		for i, c := range st.cands { // cands sorted by cost
			if fits(c.demand) {
				found = i
				break
			}
		}
		if found >= 0 {
			st.chosen = found
			take(st.cands[found].demand)
		} else {
			// Co-allocation fallback: smallest-demand candidate. Its demand
			// is deliberately not taken from the accounting — the overflow is
			// resolved by assignCores wrapping this state's grants around the
			// capacity, not by starving later applications.
			st.chosen = smallestDemand(st.cands)
			st.coalloc = true
		}
	}
}

// rescueMaxSwitches bounds how many other applications a rescue may switch
// at once; rescueBudget caps the search nodes per deferred application so
// rescue stays cheap on production-sized tables.
const (
	rescueMaxSwitches = 2
	rescueBudget      = 200_000
)

// rescueMaxDeferred skips rescue entirely when more applications were
// deferred to co-allocation than could plausibly be lifted back: mass
// oversubscription (thousands of sessions on tens of cores) has no isolated
// arrangement to find, and O(deferred × rescueBudget) search there would
// dominate the epoch. Small instances — everything the differential oracle
// covers — are unaffected.
const rescueMaxDeferred = 32

// pairMoveMaxApps bounds the pairwise-exchange neighbourhood of improve: the
// scan is O(N² × candidates²), which is noise for oracle-sized instances but
// would dwarf the solve itself at churn scale. Single moves still run at any
// size.
const pairMoveMaxApps = 64

// rescue tries to lift co-allocated applications back into spatial isolation.
// repair walks applications in order without backtracking, so early
// applications holding large points can push a later one into co-allocation
// even when rearranging their choices would make everything fit — a
// systematic gap the differential oracle exposed (see CORRECTNESS.md). For
// each deferred application, rescue searches its candidates combined with up
// to rescueMaxSwitches switches in other isolated applications, applies the
// cheapest combination under which every kind stays within capacity, and
// repeats until no deferred application can be lifted. The loop terminates:
// each round clears at least one coalloc flag and rescue never sets one.
func (a *Allocator) rescue(states []*appState, capacity []int) {
	deferred := 0
	for _, st := range states {
		if st.coalloc {
			deferred++
		}
	}
	if deferred == 0 || deferred > rescueMaxDeferred {
		return
	}
	nk := len(capacity)
	remaining := make([]int, nk)
	recompute := func() {
		copy(remaining, capacity)
		for _, st := range states {
			if st.coalloc || st.chosen < 0 {
				continue
			}
			for k, d := range st.cands[st.chosen].demand {
				remaining[k] -= d
			}
		}
	}
	type switchTo struct {
		app  *appState
		cand int
	}
	for changed := true; changed; {
		changed = false
		for _, st := range states {
			if !st.coalloc {
				continue
			}
			recompute()
			var others []*appState
			for _, o := range states {
				if o != st && !o.coalloc && o.chosen >= 0 {
					others = append(others, o)
				}
			}
			bestCost := math.Inf(1)
			bestCand := -1
			var bestSw, curSw []switchTo
			budget := rescueBudget
			// need[k] > 0 means kind k still lacks cores for the candidate
			// under the switches applied so far; need ≤ 0 everywhere is
			// exactly "all isolated choices plus the candidate fit".
			need := make([]int, nk)
			var dfs func(oi, switches, ci int, delta float64)
			dfs = func(oi, switches, ci int, delta float64) {
				if budget--; budget < 0 {
					return
				}
				fits := true
				for _, n := range need {
					if n > 0 {
						fits = false
						break
					}
				}
				if fits {
					if total := st.cands[ci].cost + delta; total < bestCost {
						bestCost, bestCand = total, ci
						bestSw = append(bestSw[:0], curSw...)
					}
					return
				}
				if oi >= len(others) || switches >= rescueMaxSwitches {
					return
				}
				dfs(oi+1, switches, ci, delta) // leave others[oi] as is
				o := others[oi]
				cur := o.cands[o.chosen]
				for alt, oc := range o.cands {
					if alt == o.chosen {
						continue
					}
					for k := 0; k < nk; k++ {
						need[k] += oc.demand[k] - cur.demand[k]
					}
					curSw = append(curSw, switchTo{o, alt})
					dfs(oi+1, switches+1, ci, delta+oc.cost-cur.cost)
					curSw = curSw[:len(curSw)-1]
					for k := 0; k < nk; k++ {
						need[k] -= oc.demand[k] - cur.demand[k]
					}
				}
			}
			for ci, c := range st.cands {
				for k := 0; k < nk; k++ {
					need[k] = c.demand[k] - remaining[k]
				}
				dfs(0, 0, ci, 0)
			}
			if bestCand >= 0 {
				st.chosen = bestCand
				st.coalloc = false
				for _, s := range bestSw {
					s.app.chosen = s.cand
				}
				changed = true
			}
		}
	}
}

// improve runs a local search over the feasible selection until a fixpoint:
// first single moves (one application to a cheaper point within leftover
// capacity), then pairwise exchanges (one application moves cheaper while a
// second simultaneously switches — possibly to a dearer point — so the pair
// fits and the summed cost still drops). The pairwise neighbourhood matters:
// the subgradient iteration can terminate with app A squatting on the cores
// whose release would let app B take a far cheaper point, a local optimum no
// single move escapes (found by the differential oracle; see CORRECTNESS.md).
//
// Every accepted move strictly decreases the summed cost while the per-kind
// capacity deltas keep remaining non-negative, so spatial isolation is
// preserved move by move — in particular a kind with zero remaining capacity
// only ever admits combinations that shrink or hold its demand — and the
// strictly decreasing cost over a finite assignment space bounds the loop.
func (a *Allocator) improve(states []*appState, capacity []int) {
	a.scratch.remaining = growInts(a.scratch.remaining, len(capacity))
	remaining := a.scratch.remaining
	copy(remaining, capacity)
	for _, st := range states {
		if st.chosen < 0 {
			continue
		}
		for k, d := range st.cands[st.chosen].demand {
			remaining[k] -= d
		}
	}
	for k := range remaining {
		if remaining[k] < 0 {
			return // co-allocated system; nothing to improve safely
		}
	}
	apply := func(st *appState, i int) {
		cur := st.cands[st.chosen]
		for k, d := range st.cands[i].demand {
			remaining[k] -= d - cur.demand[k]
		}
		st.chosen = i
	}
	singleMove := func() bool {
		moved := false
		for _, st := range states {
			cur := st.cands[st.chosen]
			for i, c := range st.cands {
				if i == st.chosen || c.cost >= cur.cost {
					continue
				}
				ok := true
				for k, d := range c.demand {
					if d-cur.demand[k] > remaining[k] {
						ok = false
						break
					}
				}
				if ok {
					apply(st, i)
					moved = true
					break
				}
			}
		}
		return moved
	}
	pairMove := func() bool {
		for ai, sa := range states {
			ca := sa.cands[sa.chosen]
			for i, na := range sa.cands {
				if i == sa.chosen || na.cost >= ca.cost {
					continue
				}
				for bi, sb := range states {
					if bi == ai {
						continue
					}
					cb := sb.cands[sb.chosen]
					for j, nb := range sb.cands {
						if j == sb.chosen {
							continue
						}
						if (na.cost-ca.cost)+(nb.cost-cb.cost) >= 0 {
							continue
						}
						ok := true
						for k := range remaining {
							delta := na.demand[k] - ca.demand[k] + nb.demand[k] - cb.demand[k]
							if delta > remaining[k] {
								ok = false
								break
							}
						}
						if ok {
							apply(sa, i)
							apply(sb, j)
							return true
						}
					}
				}
			}
		}
		return false
	}
	for {
		if singleMove() {
			continue
		}
		if len(states) > pairMoveMaxApps || !pairMove() {
			return
		}
	}
}

// CapacityError reports that assigning spatially isolated cores ran past a
// kind's capacity even though repair accounted every isolated choice as
// fitting. That is an internal solver invariant violation — the accounting
// and the assignment disagree — and it must surface as an error, never as a
// silently shared core dressed up as an isolated grant.
type CapacityError struct {
	// App is the application whose grant overflowed.
	App string
	// Kind indexes the overflowed core kind on the platform.
	Kind int
	// Granted is how many isolated cores of the kind were already handed out
	// when the overflow happened; Capacity is how many exist.
	Granted, Capacity int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("alloc: internal: isolated assignment for %q overflows kind %d (%d granted, %d exist)",
		e.App, e.Kind, e.Granted, e.Capacity)
}

// assignCores maps the selected operating points to concrete cores in two
// passes. Pass one places the spatially isolated applications with a per-kind
// cursor; repair accounted those choices as fitting the capacity, so running
// out of cores here returns *CapacityError instead of quietly double-granting
// a core. Pass two places the applications repair explicitly deferred to
// co-allocation, wrapping round-robin from where the isolated cursor stopped
// so genuinely free cores are shared first.
//
// assignCores deliberately builds fresh output slices on every call — never
// scratch-arena memory — because the solution cache retains its result
// beyond the solve.
func (a *Allocator) assignCores(states []*appState) ([]Allocation, error) {
	return a.assignCoresAvail(states, nil)
}

// assignCoresAvail is assignCores against an explicit per-kind availability:
// avail[kind] lists the free global core indices the assignment may draw
// from, in the order they should be handed out. A nil avail means the full
// kind ranges — bit-identical to the historical assignment. Incremental
// re-solves pass the capacity left over by pinned allocations.
//
// Co-allocated states wrap around the kind's availability list; a kind with
// no free cores at all wraps around its full range instead (the cores are
// time-shared anyway, and a co-allocated grant may legally overlap pinned
// isolated allocations).
func (a *Allocator) assignCoresAvail(states []*appState, avail [][]int) ([]Allocation, error) {
	coreAt := func(kindIdx, slot int) int {
		if avail == nil {
			lo, _ := a.plat.CoreRange(platform.KindID(kindIdx))
			return lo + slot
		}
		return avail[kindIdx][slot]
	}
	totalOf := func(kindIdx int) int {
		if avail == nil {
			lo, hi := a.plat.CoreRange(platform.KindID(kindIdx))
			return hi - lo
		}
		return len(avail[kindIdx])
	}
	nextFree := make([]int, len(a.plat.Kinds))
	out := make([]Allocation, len(states))
	for si, st := range states {
		if st.chosen < 0 || st.chosen >= len(st.cands) {
			return nil, errors.New("alloc: internal: no chosen candidate")
		}
		cand := st.cands[st.chosen]
		out[si] = Allocation{ID: st.id, Point: cand.op}
		if st.coalloc {
			continue
		}
		for kindIdx, counts := range cand.op.Vector.Counts {
			total := totalOf(kindIdx)
			for tIdx, cores := range counts {
				for c := 0; c < cores; c++ {
					slot := nextFree[kindIdx]
					if slot >= total {
						return nil, &CapacityError{App: st.id, Kind: kindIdx, Granted: slot, Capacity: total}
					}
					out[si].Grants = append(out[si].Grants, CoreGrant{
						Core:    coreAt(kindIdx, slot),
						Threads: tIdx + 1,
					})
					nextFree[kindIdx]++
				}
			}
		}
	}
	for si, st := range states {
		if !st.coalloc {
			continue
		}
		out[si].CoAllocated = true
		cand := st.cands[st.chosen]
		for kindIdx, counts := range cand.op.Vector.Counts {
			total := totalOf(kindIdx)
			wrapFull := total == 0
			lo, hi := a.plat.CoreRange(platform.KindID(kindIdx))
			for tIdx, cores := range counts {
				for c := 0; c < cores; c++ {
					var core int
					if wrapFull {
						core = lo + nextFree[kindIdx]%(hi-lo)
					} else {
						core = coreAt(kindIdx, nextFree[kindIdx]%total)
					}
					out[si].Grants = append(out[si].Grants, CoreGrant{
						Core:    core,
						Threads: tIdx + 1,
					})
					nextFree[kindIdx]++
				}
			}
		}
	}
	return out, nil
}

// smallestDemand returns the index of the candidate with the fewest total
// cores (ties broken by cost, then key; cands are cost-sorted already).
func smallestDemand(cands []candidate) int {
	best := 0
	bestCores := math.MaxInt
	for i, c := range cands {
		var cores int
		for _, d := range c.demand {
			cores += d
		}
		if cores < bestCores {
			bestCores = cores
			best = i
		}
	}
	return best
}

// TotalCost sums the energy-utility cost of the chosen points — handy for
// solver-quality comparisons in the ablation bench.
func TotalCost(allocs []Allocation, inputs []AppInput) float64 {
	vstar := make(map[string]float64, len(inputs))
	for _, in := range inputs {
		v := in.MaxUtility
		if v <= 0 && in.Table != nil {
			v = in.Table.MaxUtility()
		}
		vstar[in.ID] = v
	}
	var sum float64
	for _, al := range allocs {
		c := al.Point.Cost(vstar[al.ID])
		if !math.IsInf(c, 1) && !math.IsNaN(c) {
			sum += c
		}
	}
	return sum
}

// Overlaps reports whether two allocations share any (core, hardware-thread)
// pair — used by invariant tests: non-co-allocated allocations must never
// overlap. Grants on a core always occupy its hardware threads from sibling 0
// upward, so two allocations collide exactly when both hold a positive thread
// count on a common core. An allocation may carry several grants for the same
// core (the co-allocation wrap-around case); the per-core occupancy is the
// maximum over its grants — assigning the last grant's count would let a
// trailing zero-thread grant mask a genuine overlap.
func Overlaps(a, b Allocation) bool {
	used := make(map[int]int, len(a.Grants))
	for _, g := range a.Grants {
		if g.Threads > used[g.Core] {
			used[g.Core] = g.Threads
		}
	}
	for _, g := range b.Grants {
		if g.Threads > 0 && used[g.Core] > 0 {
			return true
		}
	}
	return false
}
