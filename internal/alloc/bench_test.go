package alloc

import (
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// benchInputs builds a realistic 5-application allocation problem with full
// 764-point tables — the allocator's production workload on the Intel
// platform.
func benchInputs(tb testing.TB) (*platform.Platform, []AppInput) {
	tb.Helper()
	plat := platform.RaptorLake()
	names := []string{"ep.C", "mg.C", "cg.C", "ft.C", "sp.C"}
	var inputs []AppInput
	for _, name := range names {
		prof, err := workload.ByName(workload.IntelApps(), name)
		if err != nil {
			tb.Fatal(err)
		}
		tbl := &opoint.Table{App: name, Platform: plat.Name}
		for _, rv := range platform.EnumerateVectors(plat, 0) {
			ev := workload.EvaluateVector(plat, prof, rv)
			tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts, Measured: true})
		}
		inputs = append(inputs, AppInput{ID: name, Table: tbl})
	}
	return plat, inputs
}

// benchPerturb nudges one point of the first table — the "next epoch" input
// shape: same structure, slightly different numbers. Flipping between the two
// variants keeps every solve a cache miss while staying warm-start friendly.
func benchPerturb(inputs []AppInput, up bool) {
	pt := inputs[0].Table.Points[0]
	if up {
		pt.Utility *= 1.01
	} else {
		pt.Utility /= 1.01
	}
	inputs[0].Table.Upsert(pt)
}

func benchmarkAllocate(b *testing.B, method Method) {
	plat, inputs := benchInputs(b)
	a, err := New(plat, WithMethod(method))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateLagrangian is the cold regime: every solve runs the full
// subgradient iteration from λ=0 (no cache, no warm start).
func BenchmarkAllocateLagrangian(b *testing.B) { benchmarkAllocate(b, Lagrangian) }

func BenchmarkAllocateGreedy(b *testing.B) { benchmarkAllocate(b, Greedy) }

// BenchmarkAllocateCacheHit is the steady-state regime: unchanged inputs
// between epochs are served from the fingerprinted solution cache. The
// contract is 0 allocs/op — enforced here and in TestCacheHitZeroAllocs.
func BenchmarkAllocateCacheHit(b *testing.B) {
	plat, inputs := benchInputs(b)
	a, err := New(plat, WithCache(DefaultCacheSize))
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := a.AllocateWithStats(inputs); err != nil { // fill
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := a.AllocateWithStats(inputs)
		if err != nil {
			b.Fatal(err)
		}
		if st.Source != SourceCached {
			b.Fatalf("solve source = %q, want %q", st.Source, SourceCached)
		}
	}
}

// BenchmarkAllocateWarmStart is the perturbed-epoch regime: each solve sees a
// slightly changed input (a guaranteed cache miss) and seeds its λ vector
// from the previous epoch's fixpoint.
func BenchmarkAllocateWarmStart(b *testing.B) {
	plat, inputs := benchInputs(b)
	a, err := New(plat, WithWarmStart(true))
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := a.AllocateWithStats(inputs); err != nil { // establish λ
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchPerturb(inputs, i%2 == 0)
		// Rebuild the table's memoised Pareto front outside the timed
		// region: the mutation invalidated it, and its recompute is table
		// maintenance, not solve work.
		inputs[0].Table.ParetoPoints()
		b.StartTimer()
		_, st, err := a.AllocateWithStats(inputs)
		if err != nil {
			b.Fatal(err)
		}
		if st.Source != SourceWarm {
			b.Fatalf("solve source = %q, want %q", st.Source, SourceWarm)
		}
	}
}

// TestBenchCacheHitZeroAllocsRegime pins the benchmark regime itself with
// testing.AllocsPerRun on the full production-size input, so a regression
// shows up in `go test` even when benchmarks are not run.
func TestBenchCacheHitZeroAllocsRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size tables are slow to build in -short mode")
	}
	plat, inputs := benchInputs(t)
	a, err := New(plat, WithCache(DefaultCacheSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.AllocateWithStats(inputs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, st, err := a.AllocateWithStats(inputs); err != nil || st.Source != SourceCached {
			t.Fatalf("unexpected solve: source=%q err=%v", st.Source, err)
		}
	})
	if avg != 0 {
		t.Fatalf("production-size cache-hit solve allocates %.1f times per run, want 0", avg)
	}
}
