package alloc

import (
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// benchInputs builds a realistic 5-application allocation problem with full
// 764-point tables — the allocator's production workload on the Intel
// platform.
func benchInputs(b *testing.B) (*platform.Platform, []AppInput) {
	b.Helper()
	plat := platform.RaptorLake()
	names := []string{"ep.C", "mg.C", "cg.C", "ft.C", "sp.C"}
	var inputs []AppInput
	for _, name := range names {
		prof, err := workload.ByName(workload.IntelApps(), name)
		if err != nil {
			b.Fatal(err)
		}
		tbl := &opoint.Table{App: name, Platform: plat.Name}
		for _, rv := range platform.EnumerateVectors(plat, 0) {
			ev := workload.EvaluateVector(plat, prof, rv)
			tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts, Measured: true})
		}
		inputs = append(inputs, AppInput{ID: name, Table: tbl})
	}
	return plat, inputs
}

func benchmarkAllocate(b *testing.B, method Method) {
	plat, inputs := benchInputs(b)
	a, err := New(plat, WithMethod(method))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateLagrangian(b *testing.B) { benchmarkAllocate(b, Lagrangian) }

func BenchmarkAllocateGreedy(b *testing.B) { benchmarkAllocate(b, Greedy) }
