package alloc

import (
	"fmt"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

func incTestPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := &platform.Platform{
		Name:            "inc-test",
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
		Kinds: []platform.CoreKind{
			{Name: "P", Count: 8, SMT: 1, MaxFreqGHz: 3, MinFreqGHz: 0.5, IPC: 2, ActiveWatts: 2, IdleWatts: 0.2, SleepWatts: 0.02},
			{Name: "E", Count: 8, SMT: 1, MaxFreqGHz: 2, MinFreqGHz: 0.5, IPC: 1, ActiveWatts: 1, IdleWatts: 0.1, SleepWatts: 0.01},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func incTestTable(t *testing.T, p *platform.Platform, app string, kind int, utility float64) *opoint.Table {
	t.Helper()
	tbl := &opoint.Table{App: app, Platform: p.Name}
	for cores := 1; cores <= 2; cores++ {
		rv := platform.NewResourceVector(p)
		rv.Counts[kind][0] = cores
		tbl.Upsert(opoint.OperatingPoint{
			Vector:   rv,
			Utility:  utility * float64(cores) * 0.8,
			Power:    float64(cores),
			Measured: true,
		})
	}
	return tbl
}

func incTestInputs(t *testing.T, p *platform.Platform, n int) []AppInput {
	t.Helper()
	inputs := make([]AppInput, n)
	for i := range inputs {
		id := fmt.Sprintf("app%02d", i)
		inputs[i] = AppInput{ID: id, Table: incTestTable(t, p, id, i%2, 4+float64(i%5))}
	}
	return inputs
}

// assertStructurallyValid re-implements the core structural invariants the
// internal/check oracle enforces (which cannot be imported here without a
// cycle): output order matches input order, isolated grants realise the
// chosen vector, isolated allocations never overlap, per-kind demand fits.
func assertStructurallyValid(t *testing.T, p *platform.Platform, inputs []AppInput, allocs []Allocation) {
	t.Helper()
	if len(allocs) != len(inputs) {
		t.Fatalf("%d allocations for %d inputs", len(allocs), len(inputs))
	}
	owner := make(map[int]string)
	for i, al := range allocs {
		if al.ID != inputs[i].ID {
			t.Fatalf("allocs[%d] = %s, want input order %s", i, al.ID, inputs[i].ID)
		}
		if al.CoAllocated {
			continue
		}
		want := 0
		for kind := range al.Point.Vector.Counts {
			want += al.Point.Vector.Cores(platform.KindID(kind))
		}
		if len(al.Grants) != want {
			t.Fatalf("%s: %d grants for a %d-core vector", al.ID, len(al.Grants), want)
		}
		for _, g := range al.Grants {
			if prev, taken := owner[g.Core]; taken {
				t.Fatalf("core %d granted to both %s and %s", g.Core, prev, al.ID)
			}
			owner[g.Core] = al.ID
		}
	}
}

func totalCost(inputs []AppInput, allocs []Allocation) float64 {
	sum := 0.0
	for i, al := range allocs {
		vstar := inputs[i].MaxUtility
		if vstar <= 0 {
			vstar = inputs[i].Table.MaxUtility()
		}
		if c := al.Point.Cost(vstar); c == c && !al.Point.Vector.IsZero() { // skip NaN / fallback
			sum += c
		}
	}
	return sum
}

// TestIncrementalPinsUnchangedApps pins the tentpole behaviour: after a full
// solve, a solve where only one table changed runs incrementally — the
// unchanged apps keep their standing allocations, the result stays
// structurally valid and its cost stays within the oracle's 1.10× bound of
// a from-scratch full solve.
func TestIncrementalPinsUnchangedApps(t *testing.T) {
	p := incTestPlatform(t)
	a, err := New(p, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	inputs := incTestInputs(t, p, 6)

	first, stats, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source == SourceIncremental {
		t.Fatal("first solve cannot be incremental (no pins exist)")
	}
	assertStructurallyValid(t, p, inputs, first)

	// Mutate one table (version bump → fingerprint change).
	inputs[2].Table.Upsert(opoint.OperatingPoint{
		Vector:   vecOf(t, p, 1, 3),
		Utility:  9,
		Power:    2.5,
		Measured: true,
	})
	second, stats, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source != SourceIncremental {
		t.Fatalf("second solve source = %q, want %q", stats.Source, SourceIncremental)
	}
	if stats.Resolved < 1 || stats.Pinned < len(inputs)/2 {
		t.Fatalf("resolved=%d pinned=%d: expected a small changed set with most apps pinned",
			stats.Resolved, stats.Pinned)
	}
	assertStructurallyValid(t, p, inputs, second)

	// Unchanged apps keep their standing allocations.
	for i := range inputs {
		if i == 2 {
			continue
		}
		if !second[i].Point.Vector.Equal(first[i].Point.Vector) {
			t.Fatalf("unchanged app %s moved from %s to %s",
				inputs[i].ID, first[i].Point.Vector.Key(), second[i].Point.Vector.Key())
		}
	}

	// Differential equivalence: within the oracle's 1.10× cost bound of a
	// cold full solve over the same inputs.
	fresh, err2 := New(p)
	if err2 != nil {
		t.Fatal(err2)
	}
	full, _, err := fresh.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	incCost, fullCost := totalCost(inputs, second), totalCost(inputs, full)
	if incCost > fullCost*1.10+1e-9 {
		t.Fatalf("incremental cost %.4f exceeds 1.10× full-solve cost %.4f", incCost, fullCost)
	}
}

func vecOf(t *testing.T, p *platform.Platform, kind, cores int) platform.ResourceVector {
	t.Helper()
	rv := platform.NewResourceVector(p)
	rv.Counts[kind][0] = cores
	return rv
}

// TestIncrementalFullSolveCadence pins the guard rail: after the configured
// number of accepted incremental merges, the next solve runs the full
// pipeline again.
func TestIncrementalFullSolveCadence(t *testing.T) {
	p := incTestPlatform(t)
	a, err := New(p, WithIncremental(true), WithIncrementalCadence(2), WithCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	inputs := incTestInputs(t, p, 4)
	sources := []string{}
	for i := 0; i < 5; i++ {
		_, stats, err := a.AllocateWithStats(inputs)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, stats.Source)
		// Perturb one table each round so every solve has a changed set.
		inputs[i%4].Table.Upsert(opoint.OperatingPoint{
			Vector:   vecOf(t, p, 0, 3),
			Utility:  8 + float64(i),
			Power:    3,
			Measured: true,
		})
	}
	// Round 0 is the baseline full solve; rounds 1-2 merge incrementally;
	// round 3 hits the cadence and goes full; round 4 is incremental again.
	want := []string{SourceCold, SourceIncremental, SourceIncremental, SourceCold, SourceIncremental}
	for i := range want {
		if sources[i] != want[i] {
			t.Fatalf("solve sources = %v, want %v", sources, want)
		}
	}
}

// TestIncrementalBailsWhenMostChanged pins the oversized-changed-set guard:
// when more than half the inputs changed, the full pipeline runs instead.
func TestIncrementalBailsWhenMostChanged(t *testing.T) {
	p := incTestPlatform(t)
	a, err := New(p, WithIncremental(true), WithCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	inputs := incTestInputs(t, p, 4)
	if _, _, err := a.AllocateWithStats(inputs); err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		inputs[i].Table.Upsert(opoint.OperatingPoint{
			Vector:   vecOf(t, p, i%2, 3),
			Utility:  10 + float64(i),
			Power:    3,
			Measured: true,
		})
	}
	_, stats, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source == SourceIncremental {
		t.Fatal("incremental path taken although every input changed")
	}
}

// TestIncrementalHandlesDepartures pins the churn case: sessions leaving
// between solves shrink the input; the merged result must only cover the
// survivors and stay valid.
func TestIncrementalHandlesDepartures(t *testing.T) {
	p := incTestPlatform(t)
	a, err := New(p, WithIncremental(true), WithCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	inputs := incTestInputs(t, p, 6)
	if _, _, err := a.AllocateWithStats(inputs); err != nil {
		t.Fatal(err)
	}
	survivors := append(append([]AppInput{}, inputs[:2]...), inputs[3:]...)
	allocs, stats, err := a.AllocateWithStats(survivors)
	if err != nil {
		t.Fatal(err)
	}
	assertStructurallyValid(t, p, survivors, allocs)
	if stats.Source == SourceIncremental && stats.Pinned+stats.Resolved != len(survivors) {
		t.Fatalf("pinned %d + resolved %d != %d survivors", stats.Pinned, stats.Resolved, len(survivors))
	}
}

// TestIncrementalOffIsByteStable pins the opt-in contract: with incremental
// disabled (the default), repeated cold solves stay bit-identical — the
// rememberFullSolve hook must be a true no-op.
func TestIncrementalOffIsByteStable(t *testing.T) {
	p := incTestPlatform(t)
	a, err := New(p, WithCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	inputs := incTestInputs(t, p, 5)
	first, _, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	second, stats, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source == SourceIncremental {
		t.Fatal("incremental path ran although the option is off")
	}
	for i := range first {
		if !first[i].Point.Vector.Equal(second[i].Point.Vector) || len(first[i].Grants) != len(second[i].Grants) {
			t.Fatalf("solve %s not byte-stable with incremental off", inputs[i].ID)
		}
		for j := range first[i].Grants {
			if first[i].Grants[j] != second[i].Grants[j] {
				t.Fatalf("grants differ for %s with incremental off", inputs[i].ID)
			}
		}
	}
	if since, pinned := a.IncrementalStats(); since != 0 || pinned != 0 {
		t.Fatalf("incremental bookkeeping (%d, %d) active although the option is off", since, pinned)
	}
}
