package alloc

import (
	"reflect"
	"testing"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// cacheInputs builds a small two-app workload on the Odroid platform.
func cacheInputs(t *testing.T, p *platform.Platform) []AppInput {
	t.Helper()
	suite := workload.NASOdroid()
	var inputs []AppInput
	for _, prof := range suite[:2] {
		inputs = append(inputs, AppInput{ID: prof.Name, Table: tableFor(p, prof)})
	}
	return inputs
}

func TestFingerprintStability(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	inputs := cacheInputs(t, p)

	fp1, ok := a.fingerprintInputs(inputs)
	if !ok {
		t.Fatal("fingerprint not computed")
	}
	fp2, ok := a.fingerprintInputs(inputs)
	if !ok || fp1 != fp2 {
		t.Fatalf("fingerprint unstable: %v vs %v", fp1, fp2)
	}

	// A second allocator over content-equal tables (different pointers) must
	// agree: the cache is content-addressed, not identity-addressed.
	b := newAllocator(t, p, WithCache(4))
	inputs2 := cacheInputs(t, p)
	fp3, ok := b.fingerprintInputs(inputs2)
	if !ok || fp1 != fp3 {
		t.Fatalf("content-equal inputs fingerprint differently: %v vs %v", fp1, fp3)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	base := cacheInputs(t, p)
	fp0, ok := a.fingerprintInputs(base)
	if !ok {
		t.Fatal("fingerprint not computed")
	}
	distinct := map[Fingerprint]string{fp0: "base"}
	record := func(label string, fp Fingerprint) {
		if prev, dup := distinct[fp]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		distinct[fp] = label
	}

	// App identity.
	renamed := append([]AppInput(nil), base...)
	renamed[0].ID = "bt2"
	fp, _ := a.fingerprintInputs(renamed)
	record("renamed app", fp)

	// v* override.
	vstar := append([]AppInput(nil), base...)
	vstar[0].MaxUtility = 123.0
	fp, _ = a.fingerprintInputs(vstar)
	record("MaxUtility override", fp)

	// App order (the solver is order-sensitive through repair).
	swapped := []AppInput{base[1], base[0]}
	fp, _ = a.fingerprintInputs(swapped)
	record("swapped order", fp)

	// Subset.
	fp, _ = a.fingerprintInputs(base[:1])
	record("subset", fp)

	// Table content: an Upsert bumps the version and changes the hash.
	mutated := cacheInputs(t, p)
	pt := mutated[0].Table.Points[0]
	pt.Utility *= 1.5
	mutated[0].Table.Upsert(pt)
	fp, _ = a.fingerprintInputs(mutated)
	record("mutated table", fp)

	// Solver configuration is part of the base hash.
	b := newAllocator(t, p, WithCache(4), WithIterations(10))
	fpB, _ := b.fingerprintInputs(base)
	record("different iteration budget", fpB)
	g := newAllocator(t, p, WithCache(4), WithMethod(Greedy))
	fpG, _ := g.fingerprintInputs(base)
	record("greedy method", fpG)
}

func TestFingerprintTracksTableVersion(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	inputs := cacheInputs(t, p)
	fp0, _ := a.fingerprintInputs(inputs)

	// Mutate through Upsert: the memoised hash must refresh via the version.
	pt := inputs[0].Table.Points[0]
	pt.Power += 1.0
	inputs[0].Table.Upsert(pt)
	fp1, _ := a.fingerprintInputs(inputs)
	if fp0 == fp1 {
		t.Fatal("table mutation did not change the fingerprint")
	}

	// Restore the original point value: content equality must restore the
	// Fingerprint even though the version moved on.
	pt.Power -= 1.0
	inputs[0].Table.Upsert(pt)
	fp2, _ := a.fingerprintInputs(inputs)
	if fp0 != fp2 {
		t.Fatal("restored table content did not restore the fingerprint")
	}
}

func TestSolutionCacheHitIsIdentical(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	inputs := cacheInputs(t, p)

	first, st1, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Source != SourceCold {
		t.Fatalf("first solve source = %q, want %q", st1.Source, SourceCold)
	}
	second, st2, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Source != SourceCached {
		t.Fatalf("second solve source = %q, want %q", st2.Source, SourceCached)
	}
	if st2.LambdaIters != 0 {
		t.Fatalf("cache hit reported %d λ iterations", st2.LambdaIters)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached solution differs from the original solve")
	}
	if st2.Apps != st1.Apps || st2.Candidates != st1.Candidates || st2.CoAllocated != st1.CoAllocated {
		t.Fatalf("cached stats diverge: %+v vs %+v", st2, st1)
	}
	cs := a.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Size != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / size 1", cs)
	}
}

func TestSolutionCacheMissesOnChange(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(8))
	inputs := cacheInputs(t, p)
	if _, _, err := a.AllocateWithStats(inputs); err != nil {
		t.Fatal(err)
	}

	// A table mutation must miss and produce a fresh (possibly different)
	// solution rather than serving the stale one.
	pt := inputs[0].Table.Points[0]
	pt.Utility *= 2
	inputs[0].Table.Upsert(pt)
	_, st, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source == SourceCached {
		t.Fatal("mutated input served from cache")
	}
	if cs := a.CacheStats(); cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("cache stats = %+v, want 2 misses", cs)
	}
}

func TestSolutionCacheEviction(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(2))
	base := cacheInputs(t, p)

	// Three distinct fingerprints through distinct MaxUtility overrides.
	for i := 1; i <= 3; i++ {
		in := append([]AppInput(nil), base...)
		in[0].MaxUtility = float64(i * 100)
		if _, _, err := a.AllocateWithStats(in); err != nil {
			t.Fatal(err)
		}
	}
	cs := a.CacheStats()
	if cs.Size != 2 || cs.Evictions != 1 {
		t.Fatalf("cache stats = %+v, want size 2 / 1 eviction", cs)
	}
	// The oldest entry (i=1) was evicted; i=3 and i=2 remain. Probe the
	// resident entry first — probing the evicted one is itself a miss that
	// inserts and evicts again.
	in := append([]AppInput(nil), base...)
	in[0].MaxUtility = 200
	if _, st, _ := a.AllocateWithStats(in); st.Source != SourceCached {
		t.Fatal("resident entry missed")
	}
	in[0].MaxUtility = 100
	if _, st, _ := a.AllocateWithStats(in); st.Source == SourceCached {
		t.Fatal("evicted entry served")
	}
}

func TestCacheExportSeedRoundTrip(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	inputs := cacheInputs(t, p)
	want, _, err := a.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	dump := a.ExportCache(0)
	if len(dump) != 1 {
		t.Fatalf("exported %d entries, want 1", len(dump))
	}

	// A fresh allocator seeded with the dump serves the first solve from
	// cache — the warm-restart contract.
	b := newAllocator(t, p, WithCache(4))
	b.SeedCache(dump)
	got, st, err := b.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != SourceCached {
		t.Fatalf("seeded allocator solve source = %q, want %q", st.Source, SourceCached)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("seeded solution differs from the original")
	}
	// Seeding must not pollute the workload accounting.
	if cs := b.CacheStats(); cs.Hits != 1 || cs.Misses != 0 {
		t.Fatalf("seeded cache stats = %+v, want 1 hit / 0 misses", cs)
	}

	// Seeding a cache-less allocator is a no-op, not a panic.
	c := newAllocator(t, p)
	c.SeedCache(dump)
	if cs := c.CacheStats(); cs.Cap != 0 {
		t.Fatalf("cache-less allocator reports cache %+v", cs)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	inputs := cacheInputs(t, p)
	for i := 0; i < 2; i++ {
		_, st, err := a.AllocateWithStats(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if st.Source != SourceCold {
			t.Fatalf("solve %d source = %q, want %q", i, st.Source, SourceCold)
		}
	}
	if cs := a.CacheStats(); cs != (CacheStats{}) {
		t.Fatalf("cache stats %+v without a cache", cs)
	}
}

func TestCacheMetrics(t *testing.T) {
	p := platform.OdroidXU3()
	reg := telemetry.NewRegistry()
	m := telemetry.NewMetrics(reg)
	a := newAllocator(t, p, WithCache(1), WithMetrics(m))
	base := cacheInputs(t, p)

	if _, _, err := a.AllocateWithStats(base); err != nil { // miss
		t.Fatal(err)
	}
	if _, _, err := a.AllocateWithStats(base); err != nil { // hit
		t.Fatal(err)
	}
	in := append([]AppInput(nil), base...)
	in[0].MaxUtility = 42
	if _, _, err := a.AllocateWithStats(in); err != nil { // miss + eviction
		t.Fatal(err)
	}
	if got := m.AllocCacheHits.Value(); got != 1 {
		t.Errorf("hits counter = %d, want 1", got)
	}
	if got := m.AllocCacheMisses.Value(); got != 2 {
		t.Errorf("misses counter = %d, want 2", got)
	}
	if got := m.AllocCacheEvictions.Value(); got != 1 {
		t.Errorf("evictions counter = %d, want 1", got)
	}
}

// TestCacheHitZeroAllocs pins the steady-state contract: a cache-hit solve
// performs zero heap allocations.
func TestCacheHitZeroAllocs(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p, WithCache(4))
	inputs := cacheInputs(t, p)
	if _, _, err := a.AllocateWithStats(inputs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, st, err := a.AllocateWithStats(inputs); err != nil || st.Source != SourceCached {
			t.Fatalf("unexpected solve: source=%q err=%v", st.Source, err)
		}
	})
	if avg != 0 {
		t.Fatalf("cache-hit solve allocates %.1f times per run, want 0", avg)
	}
}
