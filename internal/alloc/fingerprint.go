package alloc

import (
	"math"

	"github.com/harp-rm/harp/internal/opoint"
)

// Fingerprint is a 128-bit content hash of one complete solve input: the
// platform's capacity layout, the solver configuration and — per application,
// in order — the ID, the v* override and the full operating-point table
// contents. Two inputs with equal fingerprints produce bit-identical
// allocations (the solver is deterministic in its inputs), which is what
// makes memoising whole solutions sound. 128 bits keep the accidental
// collision probability negligible at cache-realistic populations.
type Fingerprint struct {
	Hi uint64 `json:"hi"`
	Lo uint64 `json:"lo"`
}

// fpHasher accumulates two independent 64-bit lanes: lane one is FNV-1a,
// lane two a multiply-add mix with a different seed and an odd constant
// injection so the lanes decorrelate. It extends the demandKey idiom (pack
// solver-relevant content into integers) from a single demand vector to the
// whole solve input.
type fpHasher struct {
	h1, h2 uint64
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	fpSeed2     = 0x9e3779b97f4a7c15
)

func newFPHasher() fpHasher {
	return fpHasher{h1: fnvOffset64, h2: fpSeed2}
}

func (h *fpHasher) byte(b byte) {
	h.h1 = (h.h1 ^ uint64(b)) * fnvPrime64
	h.h2 = h.h2*fnvPrime64 + uint64(b) + fpSeed2
}

func (h *fpHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fpHasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *fpHasher) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *fpHasher) sum() Fingerprint { return Fingerprint{Hi: h.h1, Lo: h.h2} }

// tableHashEntry memoises one table's content hash at a specific mutation
// version. opoint.Table bumps its version on every Upsert/Sort/Invalidate,
// so (pointer, version) equality proves the cached hash still describes the
// table's contents — the same invariant the explorer's prediction memo rests
// on (DESIGN.md, "Pareto-cache invariant").
type tableHashEntry struct {
	version uint64
	hi, lo  uint64
	// minCost is the cheapest usable point's cost at the table's own v*
	// (0 when no point is usable — the free fallback candidate). The
	// incremental drift bound (incremental.go) sums these to judge how far
	// pinned allocations have drifted from the per-app optimum; it is a
	// heuristic trigger, so a caller-side MaxUtility override is deliberately
	// not folded in.
	minCost float64
}

// tableMemoCap bounds the table-hash memo. Tables are long-lived (one per
// session, stable pointer between mutations), so in steady state the memo
// holds one entry per managed application; the cap only matters under heavy
// session churn, where dropping the memo costs a re-hash, never correctness.
const tableMemoCap = 1024

// hashTable returns the table's 128-bit content hash, memoised per
// (pointer, version). The hash covers everything the solver reads from a
// table: identity fields, point order, vectors, utility/power and the
// measured flag — so any mutation that could change the allocation changes
// the fingerprint.
func (a *Allocator) hashTable(t *opoint.Table) (hi, lo uint64) {
	e := a.tableInfo(t)
	return e.hi, e.lo
}

// tableInfo returns the memoised (hash, minCost) entry for the table at its
// current version, computing and caching it on a version change. The memo is
// keyed by the table's process-unique ID, not its pointer: predicted tables
// are clones that all start at version 0, so under session churn a reused
// address could otherwise serve a stale entry for a different table
// (opoint.Table.ID).
func (a *Allocator) tableInfo(t *opoint.Table) tableHashEntry {
	id := t.ID()
	v := t.Version()
	if e, ok := a.tableMemo[id]; ok && e.version == v {
		return e
	}
	h := newFPHasher()
	h.str(t.App)
	h.str(t.Platform)
	h.u64(uint64(len(t.Points)))
	vstar := 0.0
	for i := range t.Points {
		p := &t.Points[i]
		h.f64(p.Utility)
		h.f64(p.Power)
		if p.Measured {
			h.byte(1)
		} else {
			h.byte(0)
		}
		h.u64(uint64(len(p.Vector.Counts)))
		for _, counts := range p.Vector.Counts {
			h.u64(uint64(len(counts)))
			for _, c := range counts {
				h.u64(uint64(c))
			}
		}
		if p.Utility > vstar {
			vstar = p.Utility
		}
	}
	// Cheapest usable point at the table's own v*, mirroring buildState's
	// usability filter; 0 when nothing is usable (fallback candidate).
	minCost := 0.0
	haveMin := false
	for i := range t.Points {
		p := &t.Points[i]
		if p.Vector.IsZero() {
			continue
		}
		c := p.Cost(vstar)
		if math.IsInf(c, 1) || math.IsNaN(c) {
			continue
		}
		if !haveMin || c < minCost {
			minCost, haveMin = c, true
		}
	}
	e := tableHashEntry{version: v, hi: h.h1, lo: h.h2, minCost: minCost}
	if a.tableMemo == nil {
		a.tableMemo = make(map[uint64]tableHashEntry)
	} else if len(a.tableMemo) >= tableMemoCap {
		clear(a.tableMemo)
	}
	a.tableMemo[id] = e
	return e
}

// fingerprintBase hashes the per-Allocator constants — platform capacity
// layout, solver method and iteration budget — once at construction. Core
// capacities live here, so a cache entry persisted under one platform can
// never be served under another.
func (a *Allocator) fingerprintBase() Fingerprint {
	h := newFPHasher()
	h.str(a.plat.Name)
	h.u64(uint64(len(a.plat.Kinds)))
	for _, k := range a.plat.Kinds {
		h.str(k.Name)
		h.u64(uint64(k.Count))
		h.u64(uint64(k.SMT))
	}
	h.u64(uint64(a.method))
	h.u64(uint64(a.iters))
	return h.sum()
}

// fingerprintInputs hashes one solve input on top of the base Fingerprint.
// ok is false when any application is missing its table — such inputs error
// in buildState and are never cached. The hot path allocates nothing: the
// hasher lives on the stack and table hashes come from the memo.
func (a *Allocator) fingerprintInputs(apps []AppInput) (fp Fingerprint, ok bool) {
	h := fpHasher{h1: a.fpBase.Hi, h2: a.fpBase.Lo}
	h.u64(uint64(len(apps)))
	for i := range apps {
		app := &apps[i]
		if app.Table == nil {
			return Fingerprint{}, false
		}
		h.str(app.ID)
		h.f64(app.MaxUtility)
		hi, lo := a.hashTable(app.Table)
		h.u64(hi)
		h.u64(lo)
	}
	return h.sum(), true
}
