// Differential tests: the production solvers against the exact MMKP oracle
// on seeded random instances. Lives in package alloc_test so it can import
// internal/check (which imports alloc) without a cycle.
//
// Every subtest is named seed=N; a failure prints the shrunk counterexample
// and the one-line reproduction, and dumps both under $HARP_CHECK_ARTIFACTS
// when set (CI uploads that directory). HARP_CHECK_LONG=1 widens the sweep
// for the nightly run.
package alloc_test

import (
	"fmt"
	"os"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/platform"
)

func diffSeedCount(t *testing.T) int64 {
	t.Helper()
	if os.Getenv("HARP_CHECK_LONG") != "" {
		return 20000
	}
	if testing.Short() {
		return 200
	}
	return 1500
}

// diffConfig derives the generator config for a seed deterministically, so a
// seed alone reproduces the instance: odd seeds mix in degenerate points.
func diffConfig(seed int64) check.GenConfig {
	return check.GenConfig{Degenerate: seed%2 == 1}
}

// runDifferential solves one seeded instance with the given method and
// checks it against the oracle; on failure it shrinks the instance and fails
// the test with a paste-able dump and reproduction line.
func runDifferential(t *testing.T, test string, seed int64, method alloc.Method, strict bool) {
	t.Helper()
	p, inputs := check.Gen(seed, diffConfig(seed))
	fail := func(p *platform.Platform, in []alloc.AppInput) error {
		a, err := alloc.New(p, alloc.WithMethod(method))
		if err != nil {
			return fmt.Errorf("alloc.New: %v", err)
		}
		allocs, err := a.Allocate(in)
		if err != nil {
			return fmt.Errorf("allocate: %v", err)
		}
		return check.CheckAgainstOracle(p, in, allocs, strict)
	}
	err := fail(p, inputs)
	if err == nil {
		return
	}
	shrunk, serr := check.Shrink(p, inputs, fail)
	repro := check.ReproLine("./internal/alloc/", test, seed)
	dump := fmt.Sprintf("seed %d (%s): %v\nshrunk to: %v\n%s\nrepro: %s\n",
		seed, method, err, serr, check.FormatInstance(p, shrunk), repro)
	if path := check.WriteArtifact(fmt.Sprintf("%s-seed%d.txt", test, seed), []byte(dump)); path != "" {
		t.Logf("counterexample saved to %s", path)
	}
	t.Fatal(dump)
}

// TestDifferentialLagrangianVsOracle holds the production solver to the
// strict contract: structurally valid, never co-allocating where an isolated
// assignment exists, and within check.CostBound of the exact optimum.
func TestDifferentialLagrangianVsOracle(t *testing.T) {
	n := diffSeedCount(t)
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, "TestDifferentialLagrangianVsOracle", seed, alloc.Lagrangian, true)
		})
	}
}

// TestBugCropRegressions replays the seeds whose shrunk counterexamples
// exposed the original bug crop, so even -short runs (which sample far fewer
// seeds) keep covering them: zero-power points evicting the usable Pareto
// front (361, 287, 257, 599), repair's order trap needing a one-switch
// rescue (227, 276, 328), and local optima/deferrals needing the pairwise
// exchange or a two-switch rescue (392, 407, 464, 1258).
func TestBugCropRegressions(t *testing.T) {
	cases := []struct {
		seed   int64
		method alloc.Method
		strict bool
	}{
		{257, alloc.Greedy, false},
		{287, alloc.Greedy, false},
		{361, alloc.Greedy, false},
		{599, alloc.Greedy, false},
		{227, alloc.Lagrangian, true},
		{276, alloc.Lagrangian, true},
		{328, alloc.Lagrangian, true},
		{392, alloc.Lagrangian, true},
		{407, alloc.Lagrangian, true},
		{464, alloc.Lagrangian, true},
		{1258, alloc.Lagrangian, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/%s", tc.seed, tc.method), func(t *testing.T) {
			runDifferential(t, "TestBugCropRegressions", tc.seed, tc.method, tc.strict)
		})
	}
}

// TestDifferentialGreedyVsOracle checks the ablation baseline loosely: it may
// paint itself into co-allocation corners, but its solutions must stay
// structurally valid and never beat the exact optimum.
func TestDifferentialGreedyVsOracle(t *testing.T) {
	n := diffSeedCount(t)
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, "TestDifferentialGreedyVsOracle", seed, alloc.Greedy, false)
		})
	}
}
