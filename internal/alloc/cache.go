package alloc

// Solution cache: a content-addressed, in-process LRU memoising complete
// solver outputs keyed by the input Fingerprint. HARP's adaptation loop
// re-solves the MMKP every epoch, yet in steady state most epochs see inputs
// identical to the previous one (long stable phases between adaptations);
// the cache makes those epochs O(lookup) instead of O(solve). Entries are
// exportable so the PR 5 state store can persist them across restarts — a
// warm-restarted RM then skips its first full solve.
//
// Correctness rests entirely on content addressing: the Fingerprint covers
// every input the solver reads (see Fingerprint.go), so there is no
// invalidation protocol to get wrong — register, deregister, phase change or
// table mutation each change the fingerprint and miss naturally. Cached
// slices are returned WITHOUT copying (the zero-allocation hit path) and
// must be treated as read-only by callers; the Manager already clones what
// it mutates.

// DefaultCacheSize is the solution-cache capacity used when a caller enables
// caching without choosing a size. Steady-state harpd sees a handful of
// distinct fingerprints between input changes; 64 leaves generous headroom
// for oscillating workloads without retaining unbounded history.
const DefaultCacheSize = 64

// CacheStats is a point-in-time view of the solution cache's accounting.
type CacheStats struct {
	// Size and Cap are the current and maximum entry counts.
	Size, Cap int
	// Hits, Misses and Evictions count lookups served from cache, lookups
	// that fell through to a full solve, and entries dropped at capacity.
	Hits, Misses, Evictions uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CachedSolution is one exportable cache entry: the input Fingerprint and
// the memoised solver output. The store layer persists these verbatim in
// snapshots; on import the fingerprint self-validates (it covers platform,
// method and iteration budget), so stale entries are harmlessly unreachable
// rather than dangerous.
type CachedSolution struct {
	Key         Fingerprint  `json:"key"`
	Allocations []Allocation `json:"allocations"`
	Stats       Stats        `json:"stats"`
}

// cacheEntry is one resident solution on the intrusive LRU list.
type cacheEntry struct {
	key        Fingerprint
	allocs     []Allocation
	stats      Stats // stats of the original cold/warm solve
	prev, next *cacheEntry
}

// solutionCache is the LRU. Not goroutine-safe — the Allocator's embedders
// (Manager, benchmarks) already serialise solves.
type solutionCache struct {
	entries    map[Fingerprint]*cacheEntry
	head, tail *cacheEntry // head = most recently used
	cap        int
	hits       uint64
	misses     uint64
	evictions  uint64
}

func newSolutionCache(capacity int) *solutionCache {
	return &solutionCache{
		entries: make(map[Fingerprint]*cacheEntry, capacity),
		cap:     capacity,
	}
}

// get returns the entry for the fingerprint and promotes it to the front,
// or nil on a miss. The hit path performs no heap allocation.
func (c *solutionCache) get(fp Fingerprint) *cacheEntry {
	e, ok := c.entries[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.moveToFront(e)
	return e
}

// put inserts (or refreshes) a solution, evicting the least recently used
// entries at capacity; it returns how many entries were evicted.
func (c *solutionCache) put(fp Fingerprint, allocs []Allocation, stats Stats) int {
	if e, ok := c.entries[fp]; ok {
		e.allocs, e.stats = allocs, stats
		c.moveToFront(e)
		return 0
	}
	evicted := 0
	for len(c.entries) >= c.cap {
		lru := c.tail
		if lru == nil {
			break
		}
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
		evicted++
	}
	e := &cacheEntry{key: fp, allocs: allocs, stats: stats}
	c.entries[fp] = e
	c.pushFront(e)
	return evicted
}

func (c *solutionCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *solutionCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *solutionCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *solutionCache) stats() CacheStats {
	return CacheStats{
		Size: len(c.entries), Cap: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// CacheStats reports the solution cache's accounting; the zero value means
// caching is disabled.
func (a *Allocator) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.stats()
}

// ExportCache dumps up to max resident solutions in most-recently-used
// order, for snapshot persistence. A non-positive max exports everything.
func (a *Allocator) ExportCache(max int) []CachedSolution {
	if a.cache == nil || len(a.cache.entries) == 0 {
		return nil
	}
	if max <= 0 || max > len(a.cache.entries) {
		max = len(a.cache.entries)
	}
	out := make([]CachedSolution, 0, max)
	for e := a.cache.head; e != nil && len(out) < max; e = e.next {
		out = append(out, CachedSolution{Key: e.key, Allocations: e.allocs, Stats: e.stats})
	}
	return out
}

// SeedCache loads previously exported solutions, least-recently-used first
// so relative recency survives the round trip. Entries beyond capacity are
// dropped; empty entries are skipped. A disabled cache ignores the seed.
func (a *Allocator) SeedCache(entries []CachedSolution) {
	if a.cache == nil {
		return
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if len(e.Allocations) == 0 {
			continue
		}
		a.cache.put(e.Key, e.Allocations, e.Stats)
	}
	// Seeding is bookkeeping, not workload: don't let it pollute the
	// miss/eviction counters the hit-rate is computed from.
	a.cache.misses, a.cache.evictions = 0, 0
}
