package alloc

// Sharded epoch solving: partition the applications into independent
// allocation domains by platform-kind footprint and solve the domains in
// parallel, one child Allocator per domain.
//
// The partition is exact, not heuristic: an application's footprint is the
// set of core kinds any of its usable operating points demands (a superset
// of what the solver can ever choose for it, since candidates are a Pareto
// subset of the usable points). Two applications whose footprints share no
// kind can never compete for a core, so solving them in different domains
// is loss-free — the merged solution is one a full solve could also have
// produced, and it satisfies the same structural invariants
// (check.CheckAllocations) because isolated grants stay inside their
// domain's kinds and co-allocated grants are exempt from overlap rules.
// Domains are connected components of the "shares a kind" relation,
// computed per solve with a small union-find over kinds.
//
// Children are keyed by domain kind-mask and persist across solves, so each
// domain keeps its own solution cache, warm-start λ and incremental pin
// state (whatever options the Sharded allocator was built with). A thin
// power-budget coordinator runs after the parallel solves: when the summed
// chosen-point power exceeds the configured cap, every domain is re-solved
// once against proportionally scaled per-kind capacities (AllocateCapped),
// which pushes each domain toward cheaper points. The reconcile round is
// deterministic and bounded — one extra pass, then the result is accepted
// and the residual overshoot is left to the manager's power governor.
//
// Sharded implements the core.Allocator interface. It deliberately does not
// forward SetOverBudget or the cache export hooks: the degradation ladder
// and state snapshots operate on a single allocator, and a manager that
// wants them uses a plain *Allocator. Like *Allocator, Sharded is not
// goroutine-safe — the embedder serialises solves; internally each parallel
// worker touches exactly one child.

import (
	"math"

	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
)

// Sharded partitions applications into kind-footprint domains and solves
// them in parallel on child Allocators.
type Sharded struct {
	plat        *platform.Platform
	parallelism int
	powerCapW   float64
	childOpts   []Option

	// children persist per domain kind-mask so caches, warm starts and
	// incremental pins survive across epochs as long as the partition is
	// stable.
	children map[uint64]*Allocator

	// footMemo memoises per-table footprint masks, keyed by the table's
	// process-unique ID and invalidated by (version, v*) — the tableMemo
	// idiom from fingerprint.go.
	footMemo map[uint64]footEntry
}

type footEntry struct {
	version uint64
	vstar   float64
	mask    uint64
}

// NewSharded creates a sharded allocator. parallelism <= 0 means one worker
// per CPU; powerCapW <= 0 disables the power-budget coordinator; opts are
// applied to every child Allocator (method, cache, warm start, incremental,
// metrics...).
func NewSharded(plat *platform.Platform, parallelism int, powerCapW float64, opts ...Option) (*Sharded, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	// Build one child eagerly: surfaces bad options at construction time and
	// pre-warms the whole-platform domain every mixed workload hits.
	s := &Sharded{
		plat:        plat,
		parallelism: parallelism,
		powerCapW:   powerCapW,
		childOpts:   opts,
		children:    make(map[uint64]*Allocator),
		footMemo:    make(map[uint64]footEntry),
	}
	if _, err := s.child(s.allKindsMask()); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Sharded) allKindsMask() uint64 {
	return (uint64(1) << uint(len(s.plat.Kinds))) - 1
}

func (s *Sharded) child(mask uint64) (*Allocator, error) {
	if c, ok := s.children[mask]; ok {
		return c, nil
	}
	c, err := New(s.plat, s.childOpts...)
	if err != nil {
		return nil, err
	}
	s.children[mask] = c
	return c, nil
}

// footprint returns the bitmask of kinds any usable point of the table
// demands; an application with no usable points demands exactly the
// fallback candidate's kind (the last, most efficient one). A nil table
// maps to all kinds so the error surfaces from a single child's buildState.
func (s *Sharded) footprint(app *AppInput) uint64 {
	if app.Table == nil {
		return s.allKindsMask()
	}
	vstar := app.MaxUtility
	if vstar <= 0 {
		vstar = app.Table.MaxUtility()
	}
	id := app.Table.ID()
	v := app.Table.Version()
	if e, ok := s.footMemo[id]; ok && e.version == v && e.vstar == vstar {
		return e.mask
	}
	var mask uint64
	for i := range app.Table.Points {
		p := &app.Table.Points[i]
		if p.Vector.IsZero() {
			continue
		}
		c := p.Cost(vstar)
		if math.IsInf(c, 1) || math.IsNaN(c) {
			continue
		}
		for kind := range p.Vector.Counts {
			if p.Vector.Cores(platform.KindID(kind)) > 0 {
				mask |= 1 << uint(kind)
			}
		}
	}
	if mask == 0 {
		mask = 1 << uint(len(s.plat.Kinds)-1) // fallbackCandidate's kind
	}
	if len(s.footMemo) >= tableMemoCap {
		clear(s.footMemo)
	}
	s.footMemo[id] = footEntry{version: v, vstar: vstar, mask: mask}
	return mask
}

// domain is one connected component of the shares-a-kind relation: the kinds
// it owns and the positions (input order) of the applications inside it.
type domain struct {
	mask uint64
	idx  []int
}

// AllocateWithStats implements core.Allocator: partition, solve domains in
// parallel, merge positionally, then run the power-budget coordinator.
func (s *Sharded) AllocateWithStats(apps []AppInput) ([]Allocation, Stats, error) {
	nk := len(s.plat.Kinds)
	if len(apps) == 0 || nk > 64 {
		// Degenerate platform widths fall back to a single whole-platform
		// solve (no production platform has >64 core kinds).
		c, err := s.child(s.allKindsMask())
		if err != nil {
			return nil, Stats{}, err
		}
		return c.AllocateWithStats(apps)
	}

	// Union-find over kinds: each application's footprint links its kinds.
	parent := make([]int, nk)
	for k := range parent {
		parent[k] = k
	}
	var find func(int) int
	find = func(k int) int {
		for parent[k] != k {
			parent[k] = parent[parent[k]]
			k = parent[k]
		}
		return k
	}
	masks := make([]uint64, len(apps))
	for i := range apps {
		m := s.footprint(&apps[i])
		masks[i] = m
		first := -1
		for k := 0; k < nk; k++ {
			if m&(1<<uint(k)) == 0 {
				continue
			}
			if first < 0 {
				first = find(k)
				continue
			}
			parent[find(k)] = first
		}
	}

	// Collect domains ordered by their lowest kind — a deterministic order
	// independent of parallelism (the parallel.Map contract).
	domOf := make(map[int]int, nk)
	var doms []*domain
	for i := range apps {
		root := find(lowestKind(masks[i]))
		di, ok := domOf[root]
		if !ok {
			di = len(doms)
			domOf[root] = di
			doms = append(doms, &domain{})
		}
		doms[di].mask |= masks[i]
		doms[di].idx = append(doms[di].idx, i)
	}
	// Domain masks must cover their whole component, not just the kinds the
	// surviving apps touch, so the child key is stable while membership
	// fluctuates.
	for _, d := range doms {
		root := find(lowestKind(d.mask))
		var full uint64
		for k := 0; k < nk; k++ {
			if find(k) == root {
				full |= 1 << uint(k)
			}
		}
		d.mask = full
	}

	if len(doms) == 1 {
		// One domain: plain delegation, child source preserved (a sharded
		// manager on a single-kind platform behaves exactly like an
		// unsharded one).
		c, err := s.child(doms[0].mask)
		if err != nil {
			return nil, Stats{}, err
		}
		return c.AllocateWithStats(apps)
	}

	// Materialise children and per-domain inputs before fanning out —
	// workers must not touch shared maps.
	children := make([]*Allocator, len(doms))
	inputs := make([][]AppInput, len(doms))
	for di, d := range doms {
		c, err := s.child(d.mask)
		if err != nil {
			return nil, Stats{}, err
		}
		children[di] = c
		in := make([]AppInput, len(d.idx))
		for j, i := range d.idx {
			in[j] = apps[i]
		}
		inputs[di] = in
	}

	type domResult struct {
		allocs []Allocation
		stats  Stats
	}
	results, err := parallel.Map(s.parallelism, len(doms), func(di int) (domResult, error) {
		al, st, err := children[di].AllocateWithStats(inputs[di])
		return domResult{allocs: al, stats: st}, err
	})
	if err != nil {
		return nil, Stats{}, err
	}

	// Power-budget coordinator: one proportional-scaling reconcile round.
	if s.powerCapW > 0 {
		total := 0.0
		for _, r := range results {
			for i := range r.allocs {
				total += r.allocs[i].Point.Power
			}
		}
		if total > s.powerCapW {
			scale := s.powerCapW / total
			capped := make([]int, nk)
			for k := range s.plat.Kinds {
				capped[k] = int(float64(s.plat.Kinds[k].Count) * scale)
				if capped[k] < 1 {
					capped[k] = 1
				}
			}
			results, err = parallel.Map(s.parallelism, len(doms), func(di int) (domResult, error) {
				al, st, err := children[di].AllocateCapped(inputs[di], capped)
				return domResult{allocs: al, stats: st}, err
			})
			if err != nil {
				return nil, Stats{}, err
			}
		}
	}

	// Merge positionally back into input order (the CheckAllocations
	// contract) and aggregate stats.
	out := make([]Allocation, len(apps))
	stats := Stats{Apps: len(apps), Source: SourceSharded}
	for di, d := range doms {
		r := results[di]
		for j, i := range d.idx {
			out[i] = r.allocs[j]
		}
		stats.Candidates += r.stats.Candidates
		stats.LambdaIters += r.stats.LambdaIters
		stats.CoAllocated += r.stats.CoAllocated
		stats.Pinned += r.stats.Pinned
		stats.Resolved += r.stats.Resolved
	}
	return out, stats, nil
}

// Allocate is AllocateWithStats without the statistics.
func (s *Sharded) Allocate(apps []AppInput) ([]Allocation, error) {
	out, _, err := s.AllocateWithStats(apps)
	return out, err
}

// Domains reports how many child allocators exist (distinct domain masks
// seen so far) — observability for tests and harpctl.
func (s *Sharded) Domains() int { return len(s.children) }

func lowestKind(mask uint64) int {
	for k := 0; k < 64; k++ {
		if mask&(1<<uint(k)) != 0 {
			return k
		}
	}
	return 0
}
