// Regression tests pinned from the correctness-harness bug crop (see
// CORRECTNESS.md): demandKey cross-length collisions, the Pareto filter
// evicting usable points, the repair order trap, and the assignCores
// capacity guard. These exercise unexported internals, so they live in
// package alloc; the seed-replay forms live in differential_test.go.
package alloc

import (
	"errors"
	"fmt"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

// demandKey packed elements without biasing, so a leading zero fell out of
// the key: [1 2] and [0 1 2] collided and the Lagrangian dedup could reuse a
// representative across different demand vectors.
func TestDemandKeyCrossLengthCollisionRegression(t *testing.T) {
	a, aok := demandKey([]int{1, 2})
	b, bok := demandKey([]int{0, 1, 2})
	if !aok || !bok {
		t.Fatal("small demand vectors reported unencodable")
	}
	if a == b {
		t.Fatalf("demandKey([1 2]) == demandKey([0 1 2]) == %#x", a)
	}
}

func TestDemandKeyInjectiveOnSmallDomain(t *testing.T) {
	seen := make(map[uint64][]int)
	var walk func(prefix []int)
	walk = func(prefix []int) {
		key, ok := demandKey(prefix)
		if !ok {
			t.Fatalf("demandKey(%v) unencodable", prefix)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("demandKey collision: %v and %v both pack to %#x", prev, prefix, key)
		}
		seen[key] = append([]int(nil), prefix...)
		if len(prefix) == 4 {
			return
		}
		for d := 0; d <= 3; d++ {
			walk(append(prefix, d))
		}
	}
	walk(nil)
}

func TestDemandKeyUnencodable(t *testing.T) {
	if _, ok := demandKey([]int{0, 0, 0, 0, 0}); ok {
		t.Error("5-kind vector reported encodable")
	}
	if _, ok := demandKey([]int{-1}); ok {
		t.Error("negative demand reported encodable")
	}
	if _, ok := demandKey([]int{1<<16 - 1}); ok {
		t.Error("demand at the bias bound reported encodable")
	}
	if _, ok := demandKey([]int{1<<16 - 2}); !ok {
		t.Error("demand just under the bias bound reported unencodable")
	}
}

// The Pareto objectives score low power and low demand as better, so a
// degenerate zero-power (or zero-vector) point dominated every honest point;
// filtered only after Pareto, it evicted the whole usable front and the app
// collapsed onto the free fallback core. Found by the differential oracle.
func TestDegeneratePointDoesNotEvictUsableFront(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	tbl := &opoint.Table{App: "x", Platform: p.Name}
	// The honest point: finite cost.
	tbl.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{2}, []int{0}), Utility: 8, Power: 5, Measured: true})
	// The poison point: dominates (higher utility, zero power, smaller
	// demand) but its cost guard makes it unusable.
	tbl.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{1}, []int{0}), Utility: 11, Power: 0, Measured: true})

	allocs, err := a.Allocate([]AppInput{{ID: "x", Table: tbl}})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 1 {
		t.Fatalf("allocations = %d, want 1", len(allocs))
	}
	if allocs[0].Point.Power != 5 {
		t.Fatalf("selected point %+v, want the honest 5 W point (fallback means the usable front was evicted)",
			allocs[0].Point)
	}
}

func testTwoKindPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := &platform.Platform{
		Name:            "rescue-test",
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
		Kinds: []platform.CoreKind{
			{Name: "K0", Count: 3, SMT: 1, MaxFreqGHz: 3, MinFreqGHz: 0.5, IPC: 2, ActiveWatts: 2, IdleWatts: 0.2, SleepWatts: 0.02},
			{Name: "K1", Count: 1, SMT: 1, MaxFreqGHz: 2, MinFreqGHz: 0.5, IPC: 1, ActiveWatts: 1, IdleWatts: 0.1, SleepWatts: 0.01},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// repair walks applications in order without backtracking: app1's cheap
// 3-core point used to squat on all of K0, pushing app2 — which needs one K0
// core — into co-allocation even though switching app1 to its 1-core point
// makes both fit. rescue must lift app2 back into isolation. Pinned from
// differential seed 227.
func TestRescueLiftsDeferredAppRegression(t *testing.T) {
	p := testTwoKindPlatform(t)
	t1 := &opoint.Table{App: "app1", Platform: p.Name}
	t1.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{3}, []int{0}), Utility: 11, Power: 0.58, Measured: true})
	t1.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{1}, []int{0}), Utility: 3.2, Power: 4.6, Measured: true})
	t2 := &opoint.Table{App: "app2", Platform: p.Name}
	t2.Upsert(opoint.OperatingPoint{Vector: vec(t, p, []int{1}, []int{1}), Utility: 6.7, Power: 5.25, Measured: true})
	inputs := []AppInput{{ID: "app1", Table: t1}, {ID: "app2", Table: t2}}

	allocs, err := newAllocator(t, p, WithMethod(Lagrangian)).Allocate(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range allocs {
		if al.CoAllocated {
			t.Fatalf("%s co-allocated although an isolated arrangement exists", al.ID)
		}
	}
	if Overlaps(allocs[0], allocs[1]) {
		t.Fatal("rescued allocations overlap")
	}
}

// improve must never accept a move that breaks spatial isolation: a cheaper
// candidate needing one more core of a kind with zero remaining capacity has
// to be rejected, however attractive its cost.
func TestImproveRespectsExhaustedKind(t *testing.T) {
	p := testTwoKindPlatform(t) // capacity [3,1]
	mk := func(v platform.ResourceVector, cost float64) candidate {
		return candidate{op: opoint.OperatingPoint{Vector: v}, cost: cost, demand: v.CoreDemand()}
	}
	// st1 holds 2×K0 at cost 5; its cheaper alternative wants all 3×K0. st2
	// owns the third K0 core and has nowhere else to go, so K0 stays
	// exhausted and st1's move must be rejected despite its cost.
	st1 := &appState{id: "a", cands: []candidate{
		mk(vec(t, p, []int{3}, []int{0}), 1),
		mk(vec(t, p, []int{2}, []int{0}), 5),
	}, chosen: 1}
	st2 := &appState{id: "b", cands: []candidate{
		mk(vec(t, p, []int{1}, []int{0}), 4),
	}, chosen: 0}
	a := newAllocator(t, p)
	a.improve([]*appState{st1, st2}, []int{3, 1})
	if st1.chosen != 1 {
		t.Errorf("improve moved onto %d K0 cores with the kind exhausted by an unmovable neighbour",
			st1.cands[st1.chosen].demand[0])
	}

	// If the neighbour can vacate K0 first, the expansion becomes legal —
	// improve may take it, but the combined demand must stay within capacity.
	st2.cands = append(st2.cands, mk(vec(t, p, []int{0}, []int{1}), 2))
	a.improve([]*appState{st1, st2}, []int{3, 1})
	for k, cap := range []int{3, 1} {
		total := st1.cands[st1.chosen].demand[k] + st2.cands[st2.chosen].demand[k]
		if total > cap {
			t.Errorf("kind %d over capacity after improve: %d > %d", k, total, cap)
		}
	}
}

// assignCores must refuse to hand out cores past a kind's capacity for a
// state repair accounted as fitting — that is an internal invariant breach,
// surfaced as *CapacityError, never a silent double grant.
func TestAssignCoresCapacityError(t *testing.T) {
	p := platform.OdroidXU3()
	a := newAllocator(t, p)
	over := platform.NewResourceVector(p)
	over.Counts[0][0] = 5 // 5 big cores on a 4-big-core platform
	corrupt := &appState{id: "x", cands: []candidate{{
		op:     opoint.OperatingPoint{Vector: over},
		demand: over.CoreDemand(),
	}}, chosen: 0}

	_, err := a.assignCores([]*appState{corrupt})
	var capErr *CapacityError
	if !errors.As(err, &capErr) {
		t.Fatalf("assignCores = %v, want *CapacityError", err)
	}
	if capErr.App != "x" || capErr.Kind != 0 || capErr.Capacity != 4 {
		t.Errorf("CapacityError = %+v, want app x, kind 0, capacity 4", capErr)
	}
	if msg := capErr.Error(); msg == "" || !errors.As(fmt.Errorf("wrap: %w", err), &capErr) {
		t.Error("CapacityError does not survive wrapping")
	}

	// The same over-demand explicitly deferred to co-allocation is legal and
	// wraps around the capacity instead.
	corrupt.coalloc = true
	allocs, err := a.assignCores([]*appState{corrupt})
	if err != nil {
		t.Fatalf("co-allocated over-demand rejected: %v", err)
	}
	if !allocs[0].CoAllocated || len(allocs[0].Grants) != 5 {
		t.Fatalf("co-allocated wrap = %+v, want 5 wrapped grants", allocs[0])
	}
	for _, g := range allocs[0].Grants {
		if g.Core < 0 || g.Core >= 4 {
			t.Errorf("wrapped grant on core %d, want a big core [0,4)", g.Core)
		}
	}
}
