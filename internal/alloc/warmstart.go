package alloc

// Warm starts: when the fingerprint misses but the input overlaps the
// previous epoch (some apps' tables or phases changed, the rest did not),
// the subgradient iteration need not rediscover the price vector from zero.
// The Allocator retains the final λ of its last Lagrangian solve and, with
// warm starting enabled, seeds the next solve's λ₀ from it; the first
// relaxed minimisation under that λ then reproduces the previous epoch's
// per-app selections wherever the tables still agree, and repair/rescue/
// improve run from that incumbent. Combined with the fixpoint early exit in
// lagrangianSelect this turns Stats.LambdaIters into a real
// iterations-to-convergence measure — warm starts show up as smaller counts
// on perturbed inputs.
//
// Warm-started solves are NOT guaranteed bit-identical to cold solves (a
// different λ₀ can converge to a different, equally feasible selection), so
// warm starting is opt-in: the solution cache is transparent by
// construction, warm starting trades exact cold-solve equivalence for
// convergence speed. Every warm result still passes the full repair
// pipeline, the allocation invariants and the differential oracle (see
// warmstart_test.go).

// WithWarmStart enables seeding the subgradient iteration from the previous
// solve's final λ vector (default off). Only the Lagrangian method warm
// starts; the greedy ablation has no λ.
func WithWarmStart(on bool) Option {
	return optionFunc(func(a *Allocator) { a.warm = on })
}

// warmLambda returns the λ₀ seed for a solve over nk kinds: the previous
// solve's final λ when warm starting is enabled and a compatible previous
// solve exists, nil (= cold zeros) otherwise.
func (a *Allocator) warmLambda(nk int) []float64 {
	if !a.warm || !a.havePrev || len(a.prevLambda) != nk {
		return nil
	}
	return a.prevLambda
}

// rememberLambda retains a solve's final λ for the next warm start.
func (a *Allocator) rememberLambda(lambda []float64) {
	if cap(a.prevLambda) < len(lambda) {
		a.prevLambda = make([]float64, len(lambda))
	}
	a.prevLambda = a.prevLambda[:len(lambda)]
	copy(a.prevLambda, lambda)
	a.havePrev = true
}
