// Differential tests for the solution cache and warm-start path: over the
// same seeded instance sweep as the solver-vs-oracle suites, every cached and
// warm-started solve is held to the cold solver's answer and to the exact
// oracle. This is the safety net that lets the cache default on: a regression
// that serves a stale or divergent solution fails here on the seed that
// exposes it.
package alloc_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/check"
)

// perturbInputs applies a small deterministic content change to the first
// app's table — the "next epoch" shape the warm-start path exists for:
// mostly the same instance, slightly different numbers.
func perturbInputs(inputs []alloc.AppInput) {
	if len(inputs) == 0 || inputs[0].Table == nil || len(inputs[0].Table.Points) == 0 {
		return
	}
	pt := inputs[0].Table.Points[0]
	pt.Utility *= 1.05
	pt.Power *= 0.97
	inputs[0].Table.Upsert(pt)
}

// TestDifferentialCachedVsCold proves the cache is decision-transparent on
// every seeded instance: the first (miss) solve of a cached allocator is
// byte-identical to a cache-less allocator's solve, the second (hit) solve is
// byte-identical to the first, and the served solution passes the strict
// oracle contract.
func TestDifferentialCachedVsCold(t *testing.T) {
	n := diffSeedCount(t)
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p, inputs := check.Gen(seed, diffConfig(seed))

			cold, err := alloc.New(p, alloc.WithMethod(alloc.Lagrangian))
			if err != nil {
				t.Fatal(err)
			}
			cached, err := alloc.New(p, alloc.WithMethod(alloc.Lagrangian), alloc.WithCache(4))
			if err != nil {
				t.Fatal(err)
			}

			want, err := cold.Allocate(inputs)
			if err != nil {
				t.Fatalf("cold allocate: %v", err)
			}
			first, st1, err := cached.AllocateWithStats(inputs)
			if err != nil {
				t.Fatalf("cached allocate (miss): %v", err)
			}
			if st1.Source != alloc.SourceCold {
				t.Fatalf("first solve source = %q, want %q", st1.Source, alloc.SourceCold)
			}
			if !reflect.DeepEqual(want, first) {
				t.Fatalf("seed %d: cache-miss solve diverges from cache-less solve\ncold: %+v\nmiss: %+v", seed, want, first)
			}
			second, st2, err := cached.AllocateWithStats(inputs)
			if err != nil {
				t.Fatalf("cached allocate (hit): %v", err)
			}
			if st2.Source != alloc.SourceCached {
				t.Fatalf("second solve source = %q, want %q", st2.Source, alloc.SourceCached)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("seed %d: cache-hit solve diverges from the solve that filled it", seed)
			}
			if err := check.CheckAgainstOracle(p, inputs, second, true); err != nil {
				t.Fatalf("seed %d: cached solution fails oracle: %v\nrepro: %s", seed, err,
					check.ReproLine("./internal/alloc/", "TestDifferentialCachedVsCold", seed))
			}
		})
	}
}

// TestDifferentialWarmVsOracle holds every warm-started solve to the same
// strict oracle contract as a cold solve, on both an identical re-solve and a
// perturbed "next epoch" instance, and proves the point of warm starting:
// summed across the sweep, warm solves reach the λ fixpoint in strictly fewer
// subgradient iterations than cold solves of the same instances.
func TestDifferentialWarmVsOracle(t *testing.T) {
	n := diffSeedCount(t)
	var coldIters, warmIters atomic.Int64
	t.Run("seeds", func(t *testing.T) {
		for seed := int64(0); seed < n; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				// Two content-identical copies of the instance, perturbed in
				// lockstep, so the cold and warm allocators see the same inputs.
				pc, coldIn := check.Gen(seed, diffConfig(seed))
				pw, warmIn := check.Gen(seed, diffConfig(seed))

				cold, err := alloc.New(pc, alloc.WithMethod(alloc.Lagrangian))
				if err != nil {
					t.Fatal(err)
				}
				warm, err := alloc.New(pw, alloc.WithMethod(alloc.Lagrangian), alloc.WithWarmStart(true))
				if err != nil {
					t.Fatal(err)
				}

				// Epoch 1: no previous λ exists, so the warm allocator's first
				// solve must be byte-identical to the cold allocator's.
				wantEpoch1, _, err := cold.AllocateWithStats(coldIn)
				if err != nil {
					t.Fatal(err)
				}
				gotEpoch1, st1, err := warm.AllocateWithStats(warmIn)
				if err != nil {
					t.Fatal(err)
				}
				if st1.Source != alloc.SourceCold {
					t.Fatalf("first solve source = %q, want %q", st1.Source, alloc.SourceCold)
				}
				if !reflect.DeepEqual(wantEpoch1, gotEpoch1) {
					t.Fatalf("seed %d: warm allocator's first (cold) solve diverges", seed)
				}

				// Epoch 2: perturb both copies identically and re-solve. The warm
				// solve may legitimately pick a different — equally valid —
				// solution, so it is held to the oracle, not to the cold answer.
				perturbInputs(coldIn)
				perturbInputs(warmIn)
				_, stCold, err := cold.AllocateWithStats(coldIn)
				if err != nil {
					t.Fatal(err)
				}
				warmAllocs, stWarm, err := warm.AllocateWithStats(warmIn)
				if err != nil {
					t.Fatal(err)
				}
				if stWarm.Source != alloc.SourceWarm {
					t.Fatalf("perturbed solve source = %q, want %q", stWarm.Source, alloc.SourceWarm)
				}
				if err := check.CheckAgainstOracle(pw, warmIn, warmAllocs, true); err != nil {
					t.Fatalf("seed %d: warm solution fails oracle: %v\nrepro: %s", seed, err,
						check.ReproLine("./internal/alloc/", "TestDifferentialWarmVsOracle", seed))
				}
				coldIters.Add(int64(stCold.LambdaIters))
				warmIters.Add(int64(stWarm.LambdaIters))
			})
		}
	})
	c, w := coldIters.Load(), warmIters.Load()
	t.Logf("λ iterations across %d perturbed instances: cold %d, warm %d (%.1f%% saved)",
		n, c, w, 100*(1-float64(w)/float64(c)))
	if w >= c {
		t.Fatalf("warm starts did not save iterations: cold %d, warm %d", c, w)
	}
}
