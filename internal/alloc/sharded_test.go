package alloc

import (
	"fmt"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

func shardTestPlatform(t *testing.T, kinds int) *platform.Platform {
	t.Helper()
	p := &platform.Platform{
		Name:            "shard-test",
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
	}
	for k := 0; k < kinds; k++ {
		p.Kinds = append(p.Kinds, platform.CoreKind{
			Name:        fmt.Sprintf("K%d", k),
			Count:       8,
			SMT:         1,
			MaxFreqGHz:  3 - 0.5*float64(k),
			MinFreqGHz:  0.5,
			IPC:         2 - 0.3*float64(k),
			ActiveWatts: 2 - 0.4*float64(k),
			IdleWatts:   0.1,
			SleepWatts:  0.01,
		})
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// shardTestInputs spreads n single-kind apps round-robin over the platform's
// kinds, so every kind forms its own allocation domain.
func shardTestInputs(t *testing.T, p *platform.Platform, n int) []AppInput {
	t.Helper()
	inputs := make([]AppInput, n)
	for i := range inputs {
		id := fmt.Sprintf("app%02d", i)
		inputs[i] = AppInput{ID: id, Table: incTestTable(t, p, id, i%len(p.Kinds), 4+float64(i%5))}
	}
	return inputs
}

func assertSameAllocations(t *testing.T, a, b []Allocation) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("allocation count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Point.Vector.Equal(b[i].Point.Vector) ||
			a[i].CoAllocated != b[i].CoAllocated || len(a[i].Grants) != len(b[i].Grants) {
			t.Fatalf("allocation %d differs: %s %s vs %s %s",
				i, a[i].ID, a[i].Point.Vector.Key(), b[i].ID, b[i].Point.Vector.Key())
		}
		for j := range a[i].Grants {
			if a[i].Grants[j] != b[i].Grants[j] {
				t.Fatalf("grants differ for %s at %d", a[i].ID, j)
			}
		}
	}
}

// TestShardedDeterministicAcrossParallelism pins the parallel.Map contract
// end to end: worker count must not change the merged result.
func TestShardedDeterministicAcrossParallelism(t *testing.T) {
	p := shardTestPlatform(t, 3)
	inputs := shardTestInputs(t, p, 12)

	serial, err := NewSharded(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewSharded(p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sa, sst, err := serial.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	wa, wst, err := wide.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Source != SourceSharded || wst.Source != SourceSharded {
		t.Fatalf("sources %q/%q, want %q", sst.Source, wst.Source, SourceSharded)
	}
	assertSameAllocations(t, sa, wa)
	assertStructurallyValid(t, p, inputs, sa)
}

// TestShardedPartitionsDisjointKinds pins the partition itself: single-kind
// apps on a 2-kind platform form two domains (plus the eagerly built
// whole-platform child), and the merged result is structurally valid.
func TestShardedPartitionsDisjointKinds(t *testing.T) {
	p := shardTestPlatform(t, 2)
	s, err := NewSharded(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := shardTestInputs(t, p, 8)
	allocs, stats, err := s.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source != SourceSharded {
		t.Fatalf("source = %q, want %q", stats.Source, SourceSharded)
	}
	// Eager all-kinds child + one child per single-kind domain.
	if got := s.Domains(); got != 3 {
		t.Fatalf("Domains() = %d, want 3 (all-kinds + 2 domains)", got)
	}
	assertStructurallyValid(t, p, inputs, allocs)
	for i := range allocs {
		if allocs[i].Point.Vector.IsZero() && !allocs[i].CoAllocated {
			t.Fatalf("%s got no resources on an uncontended platform", allocs[i].ID)
		}
	}
}

// TestShardedSingleDomainDelegates pins the delegation path: when every app
// lives in one domain the child solves directly and its source label (cold,
// cache...) is preserved, so a sharded manager on a single-kind workload
// behaves exactly like an unsharded one.
func TestShardedSingleDomainDelegates(t *testing.T) {
	p := shardTestPlatform(t, 2)
	s, err := NewSharded(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]AppInput, 4)
	for i := range inputs {
		id := fmt.Sprintf("solo%d", i)
		inputs[i] = AppInput{ID: id, Table: incTestTable(t, p, id, 0, 5)}
	}
	allocs, stats, err := s.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source == SourceSharded {
		t.Fatalf("single-domain solve labelled %q; want the child's own source", stats.Source)
	}
	assertStructurallyValid(t, p, inputs, allocs)
}

// TestShardedBridgingAppMergesDomains pins the union-find: one app whose
// table spans both kinds links them into a single component, collapsing the
// partition to one domain.
func TestShardedBridgingAppMergesDomains(t *testing.T) {
	p := shardTestPlatform(t, 2)
	s, err := NewSharded(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := shardTestInputs(t, p, 4)
	bridge := &opoint.Table{App: "bridge", Platform: p.Name}
	rv := platform.NewResourceVector(p)
	rv.Counts[0][0] = 1
	rv.Counts[1][0] = 1
	bridge.Upsert(opoint.OperatingPoint{Vector: rv, Utility: 6, Power: 2, Measured: true})
	inputs = append(inputs, AppInput{ID: "bridge", Table: bridge})

	allocs, stats, err := s.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source == SourceSharded {
		t.Fatalf("bridged workload still partitioned (source %q)", stats.Source)
	}
	assertStructurallyValid(t, p, inputs, allocs)
}

// TestShardedPowerCapReconcile pins the power-budget coordinator: when the
// merged chosen power exceeds the cap, the capped reconcile round runs and
// the result is still structurally valid with reduced total power.
func TestShardedPowerCapReconcile(t *testing.T) {
	p := shardTestPlatform(t, 2)
	inputs := shardTestInputs(t, p, 8)

	free, err := NewSharded(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, _, err := free.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.0
	for i := range uncapped {
		budget += uncapped[i].Point.Power
	}
	if budget <= 0 {
		t.Fatal("uncapped run drew no power; test platform misconfigured")
	}

	capped, err := NewSharded(p, 2, budget/2)
	if err != nil {
		t.Fatal(err)
	}
	allocs, stats, err := capped.AllocateWithStats(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Source != SourceSharded {
		t.Fatalf("source = %q, want %q", stats.Source, SourceSharded)
	}
	assertStructurallyValid(t, p, inputs, allocs)
	total := 0.0
	for i := range allocs {
		total += allocs[i].Point.Power
	}
	if total > budget {
		t.Fatalf("reconciled power %.2f W exceeds the uncapped draw %.2f W", total, budget)
	}
}
