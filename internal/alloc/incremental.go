package alloc

// Incremental re-solves: the churn-scale answer to "one session changed, why
// re-optimise all N?". The Allocator pins every application's standing
// allocation after a successful solve (fingerprinted per table version, the
// PR 6 machinery). When the next solve's inputs differ only in a small
// changed set — new applications, departed ones, tables whose content hash
// moved — the unchanged applications stay pinned at their standing
// allocations and only the changed set, plus a bounded neighbourhood of
// co-allocated pins that might now fit in isolation, is re-optimised against
// the residual capacity the pins leave free.
//
// Guard rails keep the merged solution honest:
//
//   - a full solve runs on cadence (every DefaultIncrementalFullEvery
//     accepted merges), so pinned decisions cannot age indefinitely;
//   - a drift bound compares the merged solution's cost slack (chosen cost
//     over per-app minimum cost) against the last full solve's baseline and
//     falls back to a full solve when it degrades past
//     DefaultIncrementalDriftBound;
//   - a changed set larger than half the input falls through to the full
//     pipeline, which is cheaper at that point;
//   - any internal inconsistency (negative residual, pin/grant mismatch)
//     falls back to the full pipeline instead of erroring.
//
// Incremental results are deliberately NOT written to the solution cache:
// cache entries stay pure full-pipeline outputs, so a cache hit never
// depends on pin history. Like warm starts, incremental solving trades
// bit-identical cold-solve equivalence for latency and is therefore opt-in;
// every merged solution still satisfies the structural invariants
// (check.CheckAllocations) because pins are fragments of previously valid
// solutions and the re-solve only consumes capacity the pins left free.

import (
	"math"
	"slices"

	"github.com/harp-rm/harp/internal/platform"
)

const (
	// DefaultIncrementalFullEvery is the full-solve cadence: after this many
	// accepted incremental merges the next solve runs the full pipeline.
	DefaultIncrementalFullEvery = 64
	// DefaultIncrementalDriftBound bounds the merged solution's cost-slack
	// ratio relative to the last full solve's baseline; beyond it the epoch
	// falls back to a full solve.
	DefaultIncrementalDriftBound = 1.25
	// incNeighbourhood is how many pinned co-allocated applications join each
	// incremental re-solve: the likeliest candidates to be lifted back into
	// spatial isolation when a change freed capacity.
	incNeighbourhood = 8
)

// WithIncremental enables incremental re-solves (default off). Incremental
// results depend on solve history (which applications were pinned where), so
// they are not bit-identical to cold solves — the same opt-in contract as
// WithWarmStart. Runs that need exact cold-solve reproducibility leave it
// off.
func WithIncremental(on bool) Option {
	return optionFunc(func(a *Allocator) { a.inc = on })
}

// WithIncrementalCadence overrides the full-solve cadence (default
// DefaultIncrementalFullEvery; values < 1 are ignored).
func WithIncrementalCadence(every int) Option {
	return optionFunc(func(a *Allocator) {
		if every >= 1 {
			a.incFullEvery = every
		}
	})
}

// pinnedApp is one application's standing allocation with everything needed
// to detect change, free its capacity and account drift without touching its
// table.
type pinnedApp struct {
	// tableHi/tableLo and maxUtility identify the inputs the pin was solved
	// under; any difference marks the application as changed.
	tableHi, tableLo uint64
	maxUtility       float64
	// alloc is the standing allocation (grants owned by the pin).
	alloc Allocation
	// demand is the per-kind isolated core demand (nil for co-allocated
	// pins, which hold no exclusive capacity).
	demand []int
	// chosenCost and minCost feed the drift bound.
	chosenCost float64
	minCost    float64
}

// tryIncremental attempts the incremental path for one solve. ok reports
// whether the merged solution should be returned; ok=false with a nil error
// means "run the full pipeline" (ineligible, cadence, drift, oversized
// changed set or an internal inconsistency).
func (a *Allocator) tryIncremental(apps []AppInput, capacity []int) ([]Allocation, Stats, bool, error) {
	if !a.inc || len(a.incPins) == 0 || a.incSinceFull >= a.incFullEvery {
		return nil, Stats{}, false, nil
	}
	nk := len(capacity)

	// Pass 1: which inputs changed since they were pinned?
	inResolve := make([]bool, len(apps))
	resolveIdx := make([]int, 0, 16)
	for i := range apps {
		app := &apps[i]
		if app.Table == nil {
			return nil, Stats{}, false, nil // full path reports the error
		}
		pin, ok := a.incPins[app.ID]
		if ok {
			hi, lo := a.hashTable(app.Table)
			if hi == pin.tableHi && lo == pin.tableLo && app.MaxUtility == pin.maxUtility {
				continue
			}
		}
		inResolve[i] = true
		resolveIdx = append(resolveIdx, i)
	}

	// Pass 2: bounded neighbourhood — the first few pinned co-allocated
	// applications join the re-solve. They hold no exclusive capacity, so
	// re-solving them can only lift them toward isolation when the change
	// (or a departure) freed cores.
	budget := incNeighbourhood
	for i := range apps {
		if budget == 0 {
			break
		}
		if inResolve[i] {
			continue
		}
		if pin := a.incPins[apps[i].ID]; pin.alloc.CoAllocated {
			inResolve[i] = true
			resolveIdx = append(resolveIdx, i)
			budget--
		}
	}
	slices.Sort(resolveIdx)

	if 2*len(resolveIdx) > len(apps) {
		return nil, Stats{}, false, nil // full pipeline is cheaper from here
	}

	// Residual capacity and the concrete free cores the pins leave behind.
	residual := make([]int, nk)
	copy(residual, capacity)
	pinnedCores := make(map[int]bool)
	for i := range apps {
		if inResolve[i] {
			continue
		}
		pin := a.incPins[apps[i].ID]
		if pin.alloc.CoAllocated {
			continue
		}
		for k, d := range pin.demand {
			residual[k] -= d
		}
		for _, g := range pin.alloc.Grants {
			pinnedCores[g.Core] = true
		}
	}
	avail := make([][]int, nk)
	for k := range a.plat.Kinds {
		if residual[k] < 0 {
			return nil, Stats{}, false, nil // pins no longer fit; full solve
		}
		lo, hi := a.plat.CoreRange(platform.KindID(k))
		for c := lo; c < hi; c++ {
			if !pinnedCores[c] {
				avail[k] = append(avail[k], c)
			}
		}
		if len(avail[k]) != residual[k] {
			return nil, Stats{}, false, nil // pin accounting disagrees; full solve
		}
	}

	// Re-solve the changed set against the residual capacity.
	states := a.scratch.ensureStates(len(resolveIdx))
	cands := 0
	for ri, i := range resolveIdx {
		if err := a.buildState(states[ri], apps[i]); err != nil {
			return nil, Stats{}, false, err
		}
		cands += len(states[ri].cands)
	}
	var iters int
	var solved []Allocation
	if len(resolveIdx) > 0 {
		iters = a.selectPoints(states, residual, nil)
		a.refine(states, residual)
		var err error
		solved, err = a.assignCoresAvail(states, avail)
		if err != nil {
			return nil, Stats{}, false, nil // inconsistent; full solve recovers
		}
	}

	// Merge in input order (the CheckAllocations contract) and measure the
	// merged solution's cost slack for the drift bound.
	out := make([]Allocation, len(apps))
	var chosenSum, minSum float64
	ri := 0
	for i := range apps {
		if inResolve[i] {
			out[i] = solved[ri]
			st := states[ri]
			chosenSum += st.cands[st.chosen].cost
			minSum += a.tableInfo(apps[i].Table).minCost
			ri++
			continue
		}
		pin := a.incPins[apps[i].ID]
		out[i] = pin.alloc
		chosenSum += pin.chosenCost
		minSum += pin.minCost
	}
	slack := (1 + chosenSum) / (1 + minSum)
	if a.incHaveBase && slack > a.incDriftBound*a.incBaseSlack+1e-9 {
		return nil, Stats{}, false, nil // drifted past the bound; full solve
	}

	for ri, i := range resolveIdx {
		st := states[ri]
		a.setPin(&apps[i], out[i], st.cands[st.chosen].cost)
	}
	a.prunePins(apps)
	a.incSinceFull++

	stats := Stats{
		Apps:        len(apps),
		Candidates:  cands,
		LambdaIters: iters,
		Source:      SourceIncremental,
		Pinned:      len(apps) - len(resolveIdx),
		Resolved:    len(resolveIdx),
	}
	for i := range out {
		if out[i].CoAllocated {
			stats.CoAllocated++
		}
	}
	return out, stats, true, nil
}

// rememberFullSolve re-pins every application at the full solve's (or cache
// hit's) allocations and re-anchors the drift baseline and the full-solve
// cadence. A no-op unless incremental solving is enabled.
func (a *Allocator) rememberFullSolve(apps []AppInput, allocs []Allocation) {
	if !a.inc || len(allocs) != len(apps) {
		return
	}
	if a.incPins == nil {
		a.incPins = make(map[string]*pinnedApp, len(apps))
	}
	var chosenSum, minSum float64
	for i := range apps {
		cost := a.chosenCostOf(&apps[i], &allocs[i])
		a.setPin(&apps[i], allocs[i], cost)
		chosenSum += cost
		minSum += a.incPins[apps[i].ID].minCost
	}
	a.prunePins(apps)
	a.incSinceFull = 0
	a.incBaseSlack = (1 + chosenSum) / (1 + minSum)
	a.incHaveBase = true
}

// chosenCostOf recomputes an allocation's cost under the app's v* (0 for
// unusable points such as the free fallback candidate, mirroring
// buildState).
func (a *Allocator) chosenCostOf(app *AppInput, al *Allocation) float64 {
	vstar := app.MaxUtility
	if vstar <= 0 {
		vstar = app.Table.MaxUtility()
	}
	c := al.Point.Cost(vstar)
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return 0
	}
	return c
}

// setPin records one application's standing allocation. Grants are cloned so
// pins never alias the solution cache or solver scratch.
func (a *Allocator) setPin(app *AppInput, al Allocation, chosenCost float64) {
	info := a.tableInfo(app.Table)
	pin := a.incPins[app.ID]
	if pin == nil {
		pin = &pinnedApp{}
		a.incPins[app.ID] = pin
	}
	pin.tableHi, pin.tableLo = info.hi, info.lo
	pin.maxUtility = app.MaxUtility
	pin.minCost = info.minCost
	pin.chosenCost = chosenCost
	pin.alloc = Allocation{
		ID:          al.ID,
		Point:       al.Point,
		Grants:      append([]CoreGrant(nil), al.Grants...),
		CoAllocated: al.CoAllocated,
	}
	if al.CoAllocated {
		pin.demand = nil
	} else {
		pin.demand = al.Point.Vector.CoreDemand()
	}
}

// prunePins drops pins for departed applications once the map outgrows the
// live population — departed pins are unreachable (lookups go by current
// input IDs), so this is memory hygiene under session churn, not
// correctness.
func (a *Allocator) prunePins(apps []AppInput) {
	if len(a.incPins) <= 2*len(apps)+16 {
		return
	}
	keep := make(map[string]bool, len(apps))
	for i := range apps {
		keep[apps[i].ID] = true
	}
	for id := range a.incPins {
		if !keep[id] {
			delete(a.incPins, id)
		}
	}
}

// IncrementalStats reports the incremental solver's bookkeeping: how many
// merges have run since the last full solve and how many applications are
// currently pinned.
func (a *Allocator) IncrementalStats() (sinceFull, pinned int) {
	return a.incSinceFull, len(a.incPins)
}
