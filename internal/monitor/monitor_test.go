package monitor

import (
	"math"
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sched"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

func newMachine(t *testing.T, plat *platform.Platform) *sim.Machine {
	t.Helper()
	m, err := sim.New(plat, sched.CFS{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func prof(name string, work, mem float64) *workload.Profile {
	return &workload.Profile{
		Name:        name,
		Adaptivity:  workload.Scalable,
		WorkGI:      work,
		MemBound:    mem,
		SMTFriendly: 0.5,
		DynamicLoad: true,
		Wait:        workload.Block,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil machine accepted")
	}
	m := newMachine(t, platform.RaptorLake())
	if _, err := New(m, WithNoise(-1)); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := New(m, WithSmoothing(2)); err == nil {
		t.Error("smoothing > 1 accepted")
	}
}

func TestSampleMeasuresIPSAndPower(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	p, err := m.Start(prof("a", 1e6, 0.1), "")
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(m, WithNoise(0), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Track(p.ID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := mon.Sample()
	meas, ok := got[p.ID()]
	if !ok {
		t.Fatal("no measurement for tracked process")
	}
	if meas.IPS <= 0 || meas.PowerW <= 0 {
		t.Fatalf("measurement = %+v, want positive IPS and power", meas)
	}
	if meas.UsefulRate <= 0 || meas.UsefulRate > meas.IPS+1e-9 {
		t.Errorf("useful rate %g outside (0, IPS %g]", meas.UsefulRate, meas.IPS)
	}
	if meas.Interval != 500*time.Millisecond {
		t.Errorf("interval = %v, want 500ms", meas.Interval)
	}
	// Attributed power should be within the machine's physical range.
	if meas.PowerW > m.Platform().MaxPower() {
		t.Errorf("attributed power %g W above platform max %g W", meas.PowerW, m.Platform().MaxPower())
	}
}

func TestSampleWithoutElapsedTime(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	mon, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Sample(); len(got) != 0 {
		t.Fatalf("Sample with no elapsed time = %v, want empty", got)
	}
}

func TestTrackUnknownProcess(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	mon, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Track(sim.ProcID(42)); err == nil {
		t.Error("tracking unknown process accepted")
	}
}

func TestAttributionSplitsByActivity(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	// Big compute app and a small one — the big one must receive more energy.
	big, err := m.Start(prof("big", 1e6, 0.05), "")
	if err != nil {
		t.Fatal(err)
	}
	small := prof("small", 1e6, 0.05)
	small.DefaultThreads = 2
	sm, err := m.Start(small, "")
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(m, WithNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []sim.ProcID{big.ID(), sm.ID()} {
		if err := mon.Track(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	got := mon.Sample()
	if got[big.ID()].PowerW <= got[sm.ID()].PowerW {
		t.Errorf("big app power %.1f W not above small app %.1f W",
			got[big.ID()].PowerW, got[sm.ID()].PowerW)
	}
}

// The P/E power coefficients must attribute more energy per busy second to
// P-cores than to E-cores (Eq. 3).
func TestAttributionUsesKindCoefficients(t *testing.T) {
	plat := platform.RaptorLake()
	run := func(kind platform.KindID) float64 {
		m := newMachine(t, plat)
		a := prof("a", 1e6, 0.05)
		a.DefaultThreads = 4
		p, err := m.Start(a, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetAffinity(p.ID(), m.HWThreadsOfKind(kind)[:4]); err != nil {
			t.Fatal(err)
		}
		mon, err := New(m, WithNoise(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Track(p.ID()); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return mon.Sample()[p.ID()].PowerW
	}
	onP := run(0)
	onE := run(1)
	if onP <= onE {
		t.Errorf("power on P cores %.2f W not above E cores %.2f W", onP, onE)
	}
}

// Attribution against ground truth: for a single app running alone, the
// attributed dynamic energy should be within ~25 % of the process's true
// dynamic energy (the paper reports 8.76 % MAPE in multi-app scenarios).
func TestAttributionAccuracy(t *testing.T) {
	for _, plat := range []*platform.Platform{platform.RaptorLake(), platform.OdroidXU3()} {
		t.Run(plat.Name, func(t *testing.T) {
			m := newMachine(t, plat)
			p, err := m.Start(prof("a", 1e9, 0.2), "")
			if err != nil {
				t.Fatal(err)
			}
			mon, err := New(m, WithNoise(0))
			if err != nil {
				t.Fatal(err)
			}
			if err := mon.Track(p.ID()); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				if err := m.Run(50 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
				mon.Sample()
			}
			truth := p.Counters().DynEnergyJ
			got := mon.AttributedEnergy(p.ID())
			if truth <= 0 {
				t.Fatal("no ground-truth energy")
			}
			rel := math.Abs(got-truth) / truth
			if rel > 0.25 {
				t.Errorf("attributed %.1f J vs truth %.1f J: %.0f%% error", got, truth, 100*rel)
			}
		})
	}
}

func TestUntrackReturnsTotal(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	p, err := m.Start(prof("a", 1e6, 0.1), "")
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(m, WithNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Track(p.ID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	mon.Sample()
	total := mon.Untrack(p.ID())
	if total <= 0 {
		t.Errorf("Untrack total = %g, want > 0", total)
	}
	if mon.Tracked() != 0 {
		t.Errorf("Tracked = %d after Untrack", mon.Tracked())
	}
	if again := mon.Untrack(p.ID()); again != 0 {
		t.Errorf("second Untrack = %g, want 0", again)
	}
}

func TestSmoothingAndReset(t *testing.T) {
	m := newMachine(t, platform.RaptorLake())
	p, err := m.Start(prof("a", 1e6, 0.1), "")
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(m, WithNoise(0.1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Track(p.ID()); err != nil {
		t.Fatal(err)
	}
	var lastSmoothed float64
	for i := 0; i < 10; i++ {
		if err := m.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		meas := mon.Sample()[p.ID()]
		lastSmoothed = meas.SmoothedIPS
	}
	if lastSmoothed <= 0 {
		t.Fatal("no smoothed IPS")
	}
	mon.ResetSmoothing(p.ID())
	if err := m.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	meas := mon.Sample()[p.ID()]
	// After a reset the EMA primes directly from the raw sample.
	if meas.SmoothedIPS != meas.IPS {
		t.Errorf("after reset smoothed %.2f ≠ raw %.2f", meas.SmoothedIPS, meas.IPS)
	}
}

func TestDeterministicNoise(t *testing.T) {
	run := func() float64 {
		m := newMachine(t, platform.RaptorLake())
		p, err := m.Start(prof("a", 1e6, 0.1), "")
		if err != nil {
			t.Fatal(err)
		}
		mon, err := New(m, WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Track(p.ID()); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return mon.Sample()[p.ID()].IPS
	}
	if a, b := run(), run(); a != b {
		t.Errorf("noise not deterministic: %g vs %g", a, b)
	}
}
