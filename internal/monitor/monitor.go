// Package monitor implements HARP's runtime performance and power
// monitoring (§5.1): per-application IPS sampling in the style of Linux
// perf (with multiplexing noise), and per-application power attribution
// built on package-level energy counters in the style of EnergAt, extended
// with per-core-kind power coefficients (Eq. 3) because plain EnergAt does
// not distinguish heterogeneous core types. Utility and power streams are
// smoothed with an exponential moving average (α = 0.1).
package monitor

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/telemetry"
)

// DefaultSmoothing is the EMA factor from the paper (§5.1).
const DefaultSmoothing = 0.1

// Option configures a Monitor.
type Option interface{ apply(*Monitor) }

type optionFunc func(*Monitor)

func (f optionFunc) apply(m *Monitor) { f(m) }

// WithNoise sets the relative standard deviation of measurement noise
// (perf sampling jitter, RAPL quantisation). Default 0.03.
func WithNoise(sigma float64) Option {
	return optionFunc(func(m *Monitor) { m.noise = sigma })
}

// WithSeed seeds the deterministic noise generator.
func WithSeed(seed int64) Option {
	return optionFunc(func(m *Monitor) { m.rng = rand.New(rand.NewSource(seed)) })
}

// WithSmoothing overrides the EMA smoothing factor.
func WithSmoothing(alpha float64) Option {
	return optionFunc(func(m *Monitor) { m.alpha = alpha })
}

// WithTracer emits an EvMonitorSample event per Sample tick carrying the
// per-kind busy hardware-thread seconds (nil disables tracing).
func WithTracer(t *telemetry.Tracer) Option {
	return optionFunc(func(m *Monitor) { m.tracer = t })
}

// WithMetrics aggregates each Sample tick's duration into the flight
// recorder's "measure" phase histogram (nil disables).
func WithMetrics(mx *telemetry.Metrics) Option {
	return optionFunc(func(m *Monitor) {
		if mx != nil {
			m.measureHist = mx.EpochPhase.With(telemetry.PhaseMeasure)
		}
	})
}

// Measurement is one per-application sample.
type Measurement struct {
	// IPS is the raw instructions-per-second reading in GI/s.
	IPS float64
	// UsefulRate is the application's true useful rate — only available when
	// the application itself exports a utility metric through libharp.
	UsefulRate float64
	// PowerW is the raw attributed power in watts.
	PowerW float64
	// SmoothedIPS and SmoothedPower are the EMA-filtered streams HARP's
	// exploration consumes.
	SmoothedIPS   float64
	SmoothedPower float64
	// EnergyJ is the attributed energy for the sample interval.
	EnergyJ float64
	// Interval is the wall (virtual) time covered by the sample.
	Interval time.Duration
}

type appState struct {
	last     sim.Counters
	cur      sim.Counters // scratch snapshot, swapped with last after each sample
	tByK     []float64    // per-kind busy-time delta scratch, reused per tick
	ipsEMA   *mathx.EMA
	powerEMA *mathx.EMA
	totalJ   float64
}

// Monitor samples per-application utility and power from a simulated
// machine's counters, exactly as HARP would from perf + RAPL on real
// hardware.
type Monitor struct {
	machine     *sim.Machine
	gamma       []float64 // per-kind power coefficient relative to the most efficient kind
	static      float64   // estimated static (idle + uncore) watts subtracted before attribution
	noise       float64
	alpha       float64
	rng         *rand.Rand
	tracer      *telemetry.Tracer
	measureHist *telemetry.Histogram

	apps       map[sim.ProcID]*appState
	lastEnergy sim.EnergyReading
	lastTime   time.Duration

	// Scratch buffers reused across Sample calls — sampling runs every 50 ms
	// of virtual time for every tracked process, so the per-tick garbage adds
	// up over a multi-minute simulated run.
	idScratch       []sim.ProcID
	deltaScratch    []sampleDelta
	totalByKind     []float64
	occupancyByKind []float64
	perKindDyn      []float64
	out             map[sim.ProcID]Measurement
}

// sampleDelta is the per-app scratch record built by Sample. The per-kind
// busy-time delta lives on the appState so the slice is reused across ticks.
type sampleDelta struct {
	id   sim.ProcID
	st   *appState
	exec float64
	used float64
}

// New creates a monitor for the machine. The power coefficients γ (Eq. 3)
// come from the hardware description's per-kind active power — the paper
// determines them offline.
func New(machine *sim.Machine, opts ...Option) (*Monitor, error) {
	if machine == nil {
		return nil, errors.New("monitor: nil machine")
	}
	plat := machine.Platform()
	base := plat.Kinds[len(plat.Kinds)-1].ActiveWatts
	gamma := make([]float64, len(plat.Kinds))
	for i, k := range plat.Kinds {
		gamma[i] = k.ActiveWatts / base
	}
	// Static floor: uncore plus every core in its deepest idle state. Using
	// the floor (rather than a mean idle estimate) guarantees the dynamic
	// residual attributed to applications never collapses to zero for small
	// allocations.
	var static float64
	for _, k := range plat.Kinds {
		static += float64(k.Count) * k.SleepWatts
	}
	static += plat.UncoreWatts

	m := &Monitor{
		machine:    machine,
		gamma:      gamma,
		static:     static,
		noise:      0.03,
		alpha:      DefaultSmoothing,
		rng:        rand.New(rand.NewSource(1)),
		apps:       make(map[sim.ProcID]*appState),
		lastEnergy: machine.Energy(),
		lastTime:   machine.Now(),
	}
	for _, o := range opts {
		o.apply(m)
	}
	if m.noise < 0 || m.alpha <= 0 || m.alpha > 1 {
		return nil, fmt.Errorf("monitor: bad noise %g or smoothing %g", m.noise, m.alpha)
	}
	return m, nil
}

// Track starts monitoring a process.
func (m *Monitor) Track(id sim.ProcID) error {
	p, err := m.machine.Proc(id)
	if err != nil {
		return err
	}
	m.apps[id] = &appState{
		last:     p.Counters(),
		ipsEMA:   mathx.NewEMA(m.alpha),
		powerEMA: mathx.NewEMA(m.alpha),
	}
	return nil
}

// Untrack stops monitoring a process and returns its total attributed energy.
func (m *Monitor) Untrack(id sim.ProcID) float64 {
	st, ok := m.apps[id]
	delete(m.apps, id)
	if !ok {
		return 0
	}
	return st.totalJ
}

// Tracked returns the number of tracked processes.
func (m *Monitor) Tracked() int { return len(m.apps) }

// AttributedEnergy returns the energy attributed to a tracked process so far.
func (m *Monitor) AttributedEnergy(id sim.ProcID) float64 {
	if st, ok := m.apps[id]; ok {
		return st.totalJ
	}
	return 0
}

// ResetSmoothing clears a process's EMA streams — HARP does this when an
// application switches to a new operating point so old-configuration samples
// don't bleed into the new one.
func (m *Monitor) ResetSmoothing(id sim.ProcID) {
	if st, ok := m.apps[id]; ok {
		st.ipsEMA.Reset()
		st.powerEMA.Reset()
	}
}

// Sample reads all tracked processes since the previous call and returns
// their measurements. It must be called at a fixed cadence (HARP uses 50 ms,
// §5.3). Processes that exited since the last sample are skipped.
//
// The returned map is reused by the next Sample call — callers must consume
// (or copy) it before sampling again. Every caller in this repo reads it
// within the same control cycle.
func (m *Monitor) Sample() map[sim.ProcID]Measurement {
	sp := m.tracer.BeginPhase(telemetry.PhaseMeasure, m.measureHist)
	defer sp.End()
	now := m.machine.Now()
	dt := (now - m.lastTime).Seconds()
	energy := m.machine.Energy()
	if m.out == nil {
		m.out = make(map[sim.ProcID]Measurement, len(m.apps))
	} else {
		clear(m.out)
	}
	out := m.out
	if dt <= 0 {
		return out
	}

	// Gather per-app busy-time deltas per kind, in sorted-ID order — the
	// jitter RNG is consumed per app, so the order is part of the
	// deterministic results.
	ids := m.idScratch[:0]
	for id := range m.apps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.idScratch = ids

	deltas := m.deltaScratch[:0]
	totalWeighted := 0.0 // Σ_k T_k·γ_k across tracked apps
	for _, id := range ids {
		st := m.apps[id]
		p, err := m.machine.Proc(id)
		if err != nil {
			continue // exited; Untrack reports the final energy
		}
		p.CountersInto(&st.cur)
		d := sampleDelta{
			id:   id,
			st:   st,
			exec: st.cur.ExecutedGI - st.last.ExecutedGI,
			used: st.cur.UsefulGI - st.last.UsefulGI,
		}
		if cap(st.tByK) < len(st.cur.CPUTimeByKind) {
			st.tByK = make([]float64, len(st.cur.CPUTimeByKind))
		}
		st.tByK = st.tByK[:len(st.cur.CPUTimeByKind)]
		for k := range st.cur.CPUTimeByKind {
			st.tByK[k] = st.cur.CPUTimeByKind[k] - st.last.CPUTimeByKind[k]
			totalWeighted += st.tByK[k] * m.gamma[k]
		}
		deltas = append(deltas, d)
	}
	m.deltaScratch = deltas

	// Dynamic energy to distribute.
	plat := m.machine.Platform()
	multiplex := 1 + 0.1*float64(len(deltas)-1) // perf multiplexing inflates jitter

	// Busy-time totals per kind, and the estimated "occupancy" static power
	// of the cores kept out of deep idle by the tracked applications. Plain
	// EnergAt would attribute this idle overhead to the applications; we
	// subtract it so the attribution targets dynamic energy.
	if len(m.totalByKind) != len(plat.Kinds) {
		m.totalByKind = make([]float64, len(plat.Kinds))
		m.occupancyByKind = make([]float64, len(plat.Kinds))
		m.perKindDyn = make([]float64, len(plat.Kinds))
	}
	totalByKind := m.totalByKind
	for k := range totalByKind {
		totalByKind[k] = 0
	}
	for _, d := range deltas {
		for k, v := range d.st.tByK {
			totalByKind[k] += v
		}
	}
	var occupancyJ float64
	occupancyByKind := m.occupancyByKind
	for k, kind := range plat.Kinds {
		coreSeconds := totalByKind[k] / float64(kind.SMT)
		occupancyByKind[k] = (kind.IdleWatts - kind.SleepWatts) * coreSeconds
		occupancyJ += occupancyByKind[k]
	}

	if plat.EnergySensors == "island" {
		// Per-island sensors: attribute each island's dynamic energy by
		// busy-time share within that island.
		perKindDyn := m.perKindDyn
		for k := range plat.Kinds {
			staticK := float64(plat.Kinds[k].Count)*plat.Kinds[k].SleepWatts*dt + occupancyByKind[k]
			dyn := (energy.ByKindJ[k] - m.lastEnergy.ByKindJ[k]) - staticK
			if dyn < 0 {
				dyn = 0
			}
			perKindDyn[k] = dyn
		}
		for _, d := range deltas {
			var joules float64
			for k, tk := range d.st.tByK {
				if totalByKind[k] > 0 {
					joules += perKindDyn[k] * tk / totalByKind[k]
				}
			}
			out[d.id] = m.finish(d.st, d.exec, d.used, joules, dt, multiplex)
		}
	} else {
		// Package counter: split E_dyn into per-kind shares via the power
		// coefficients (Eq. 3), then to apps by busy time.
		dynJ := (energy.PackageJ - m.lastEnergy.PackageJ) - m.static*dt - occupancyJ
		if dynJ < 0 {
			dynJ = 0
		}
		var pBase float64 // watts per busy-thread-second of the most efficient kind
		if totalWeighted > 0 {
			pBase = dynJ / totalWeighted
		}
		for _, d := range deltas {
			var joules float64
			for k, tk := range d.st.tByK {
				joules += tk * m.gamma[k] * pBase
			}
			out[d.id] = m.finish(d.st, d.exec, d.used, joules, dt, multiplex)
		}
	}

	if m.tracer.Enabled() {
		ev := telemetry.Event{Kind: telemetry.EvMonitorSample, Seq: len(deltas)}
		for k := range totalByKind {
			if k >= len(ev.Vals) {
				break
			}
			ev.Vals[k] = totalByKind[k]
		}
		m.tracer.Emit(ev)
	}

	m.lastEnergy = energy
	m.lastTime = now
	return out
}

// finish applies measurement noise and smoothing, updates state, and builds
// the Measurement. The current snapshot in st.cur becomes st.last by buffer
// swap, so neither side allocates on the next tick.
func (m *Monitor) finish(st *appState, exec, used, joules, dt, multiplex float64) Measurement {
	st.last, st.cur = st.cur, st.last
	st.totalJ += joules

	ips := exec / dt * m.jitter(multiplex)
	power := joules / dt * m.jitter(1)
	if ips < 0 {
		ips = 0
	}
	if power < 0 {
		power = 0
	}
	return Measurement{
		IPS:           ips,
		UsefulRate:    used / dt,
		PowerW:        power,
		SmoothedIPS:   st.ipsEMA.Add(ips),
		SmoothedPower: st.powerEMA.Add(power),
		EnergyJ:       joules,
		Interval:      time.Duration(dt * float64(time.Second)),
	}
}

// jitter returns a multiplicative noise factor.
func (m *Monitor) jitter(scale float64) float64 {
	if m.noise == 0 {
		return 1
	}
	return 1 + m.rng.NormFloat64()*m.noise*scale
}
