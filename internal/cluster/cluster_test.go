package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

func testPlat() *platform.Platform {
	p := &platform.Platform{
		Name:            "cluster-test",
		MemBWGips:       50,
		EnergySensors:   "package",
		SimultaneousPMU: true,
		Kinds: []platform.CoreKind{
			{Name: "P", Count: 8, SMT: 1, MaxFreqGHz: 3, MinFreqGHz: 0.5, IPC: 2, ActiveWatts: 2, IdleWatts: 0.2, SleepWatts: 0.02},
			{Name: "E", Count: 8, SMT: 1, MaxFreqGHz: 2, MinFreqGHz: 0.5, IPC: 1.5, ActiveWatts: 1, IdleWatts: 0.1, SleepWatts: 0.01},
		},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// testSpec builds a session whose worst-case demand is exactly demandW.
func testSpec(p *platform.Platform, inst string, demandW float64) SessionSpec {
	app := "app-" + inst
	t := &opoint.Table{App: app, Platform: p.Name}
	for cores := 1; cores <= 2; cores++ {
		rv := platform.NewResourceVector(p)
		rv.Counts[0][0] = cores
		t.Upsert(opoint.OperatingPoint{
			Vector:   rv,
			Utility:  4 * float64(cores),
			Power:    demandW * float64(cores) / 2,
			Measured: true,
		})
	}
	return SessionSpec{Instance: inst, App: app, Adaptivity: workload.Scalable, Table: t}
}

func testFleet(t *testing.T, machines int, budgetW float64, mut func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Machines:     machines,
		Platform:     testPlat(),
		FleetBudgetW: budgetW,
		Verify:       true,
		Coalesce:     core.CoalescePolicy{Enabled: true},
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func mustTick(t *testing.T, f *Fleet, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("Tick: %v (health %+v)", err, f.Health())
		}
	}
}

func TestPlacementBinPacksUnderBudget(t *testing.T) {
	f := testFleet(t, 3, 30, nil) // caps 10 W each
	for i := 0; i < 5; i++ {
		if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 4)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	mustTick(t, f, 2)
	owners := map[string]int{}
	for i := 0; i < 5; i++ {
		m := f.Owner(fmt.Sprintf("s%d", i))
		if m == "" {
			t.Fatalf("s%d unplaced; health %+v", i, f.Health())
		}
		owners[m]++
	}
	// Best-fit at 4 W a session under 10 W caps: two sessions fill a
	// machine, so five sessions pack 2+2+1 — no machine is left half-used
	// while another could still take the load.
	counts := []int{owners["m0"], owners["m1"], owners["m2"]}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("owners = %v, want 2+2+1 packing", owners)
	}
	if h := f.Health(); h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	if err := check.CheckFleet(f.View()); err != nil {
		t.Fatalf("CheckFleet: %v", err)
	}
}

func TestPlacementRejectsWhenFleetFull(t *testing.T) {
	f := testFleet(t, 2, 10, nil) // caps 5 W each
	for i := 0; i < 3; i++ {
		if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 4)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	mustTick(t, f, 2)
	placed := 0
	for i := 0; i < 3; i++ {
		if f.Owner(fmt.Sprintf("s%d", i)) != "" {
			placed++
		}
	}
	if placed != 2 {
		t.Fatalf("placed = %d, want 2 (one 4 W session per 5 W cap)", placed)
	}
	if f.Stats().Rejected == 0 {
		t.Fatal("no rejection counted for the unplaceable session")
	}
	if h := f.Health(); h.Status != "degraded" || h.Unplaced != 1 {
		t.Fatalf("health = %+v, want degraded with 1 unplaced", h)
	}
}

func TestSubmitValidation(t *testing.T) {
	f := testFleet(t, 1, 0, nil)
	spec := testSpec(f.cfg.Platform, "a", 2)
	if err := f.Submit(spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := f.Submit(spec); !errors.Is(err, ErrDuplicateSession) {
		t.Fatalf("queued duplicate: %v", err)
	}
	mustTick(t, f, 1)
	if err := f.Submit(spec); !errors.Is(err, ErrDuplicateSession) {
		t.Fatalf("placed duplicate: %v", err)
	}
	if err := f.Submit(SessionSpec{Instance: "b", App: "b"}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("tableless submit: %v", err)
	}
	if err := f.Deregister("nope"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown deregister: %v", err)
	}
	f.KillCoordinator()
	if err := f.Submit(testSpec(f.cfg.Platform, "c", 2)); !errors.Is(err, ErrNoCoordinator) {
		t.Fatalf("headless submit: %v", err)
	}
	mustTick(t, f, 1) // standby promotes
	if err := f.Submit(testSpec(f.cfg.Platform, "c", 2)); err != nil {
		t.Fatalf("submit after promotion: %v", err)
	}
}

func TestMachineKillRehomesSessions(t *testing.T) {
	f := testFleet(t, 3, 30, nil)
	for i := 0; i < 6; i++ {
		if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 3)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	mustTick(t, f, 2)
	victim := f.Owner("s0")
	if victim == "" {
		t.Fatal("s0 unplaced")
	}
	if err := f.KillMachine(victim); err != nil {
		t.Fatal(err)
	}
	// Declaration after DeadAfter missed beats, re-home on the same tick.
	mustTick(t, f, DefaultDeadAfter+1)
	if f.Stats().MachineDeaths != 1 {
		t.Fatalf("machine deaths = %d, want 1", f.Stats().MachineDeaths)
	}
	for i := 0; i < 6; i++ {
		inst := fmt.Sprintf("s%d", i)
		m := f.Owner(inst)
		if m == "" {
			t.Fatalf("%s still orphaned after re-home window; health %+v", inst, f.Health())
		}
		if m == victim {
			t.Fatalf("%s still on the dead machine %s", inst, victim)
		}
	}
	if h := f.Health(); h.MachinesAlive != 2 || h.Status != "degraded" {
		t.Fatalf("health = %+v, want 2 alive machines (degraded)", h)
	}
}

func TestCoordinatorFailoverRecoversPlacements(t *testing.T) {
	var journal bytes.Buffer
	f := testFleet(t, 3, 30, func(c *Config) {
		c.SnapshotEvery = 2
		c.Journal = &journal
	})
	for i := 0; i < 5; i++ {
		if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 3)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	mustTick(t, f, 4) // places everyone and ships at ticks 2 and 4
	before := map[string]string{}
	for i := 0; i < 5; i++ {
		inst := fmt.Sprintf("s%d", i)
		before[inst] = f.Owner(inst)
	}
	f.KillCoordinator()
	mustTick(t, f, 1)
	if f.Stats().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", f.Stats().Failovers)
	}
	if h := f.Health(); h.Coordinator != "promoted-standby" {
		t.Fatalf("health = %+v, want promoted-standby", h)
	}
	for inst, m := range before {
		if got := f.Owner(inst); got != m {
			t.Fatalf("%s moved across failover: %s → %s", inst, m, got)
		}
	}
	// The promoted coordinator keeps full re-home capability: kill a
	// machine and its sessions must land elsewhere.
	if err := f.KillMachine(before["s0"]); err != nil {
		t.Fatal(err)
	}
	mustTick(t, f, DefaultDeadAfter+1)
	if m := f.Owner("s0"); m == "" || m == before["s0"] {
		t.Fatalf("s0 on %q after post-failover machine kill", m)
	}
	for _, ev := range []string{`"ev":"failover"`, `"ev":"ship"`, `"ev":"machine-dead"`} {
		if !strings.Contains(journal.String(), ev) {
			t.Fatalf("journal missing %s:\n%s", ev, journal.String())
		}
	}
}

func TestDrainConsolidatesAndMigrates(t *testing.T) {
	f := testFleet(t, 2, 24, nil) // caps 12 W each
	// Best-fit at 3 W: four sessions fill m0 (12 W), the fifth spills.
	for i := 0; i < 5; i++ {
		if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 3)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	mustTick(t, f, 2)
	perMachine := map[string][]string{}
	for i := 0; i < 5; i++ {
		inst := fmt.Sprintf("s%d", i)
		perMachine[f.Owner(inst)] = append(perMachine[f.Owner(inst)], inst)
	}
	var spillInst, spillMachine string
	for m, insts := range perMachine {
		if len(insts) == 1 {
			spillMachine, spillInst = m, insts[0]
		}
	}
	if spillInst == "" {
		t.Fatalf("no 4/1 split: %v", perMachine)
	}
	// A departure on the full machine opens 3 W of headroom — enough for
	// the drain to consolidate the spill machine away.
	var fullInsts []string
	for m, insts := range perMachine {
		if m != spillMachine {
			fullInsts = insts
		}
	}
	if err := f.Deregister(fullInsts[0]); err != nil {
		t.Fatal(err)
	}
	mustTick(t, f, 3) // drain plan + migrate-start + migrate-done
	if f.Stats().Migrations == 0 {
		t.Fatalf("no migration after drain window; stats %+v", f.Stats())
	}
	if got := f.Owner(spillInst); got == "" || got == spillMachine {
		t.Fatalf("%s owner = %q, want moved off %s", spillInst, got, spillMachine)
	}
	if h := f.Health(); h.Status != "ok" {
		t.Fatalf("health after drain = %+v", h)
	}
}

func TestKillDuringMigrationAborts(t *testing.T) {
	f := testFleet(t, 3, 30, func(c *Config) { c.DeadAfter = 1 })
	// Two 4 W sessions fill m0 to 8/10, so the 3 W session spills to m1.
	// Deregistering a1 then opens 6 W of headroom on m0, making m1
	// drainable.
	specs := []struct {
		inst    string
		demandW float64
	}{{"a0", 4}, {"a1", 4}, {"b0", 3}}
	for _, s := range specs {
		if err := f.Submit(testSpec(f.cfg.Platform, s.inst, s.demandW)); err != nil {
			t.Fatal(err)
		}
	}
	mustTick(t, f, 1)
	if src := f.Owner("b0"); src == "" || src == f.Owner("a0") {
		t.Fatalf("unexpected spread: b0 on %q, a0 on %q", src, f.Owner("a0"))
	}
	if err := f.Deregister("a1"); err != nil {
		t.Fatal(err)
	}
	// Let the drain of b0's machine start, then kill the migration target
	// before the add half runs.
	for i := 0; i < 6; i++ {
		mustTick(t, f, 1)
		if f.Health().InFlight > 0 {
			break
		}
	}
	if f.Health().InFlight == 0 {
		t.Fatalf("no in-flight migration to interrupt; stats %+v", f.Stats())
	}
	target := f.coord.inflight[0].to
	if err := f.KillMachine(target); err != nil {
		t.Fatal(err)
	}
	// DeadAfter=1: next tick declares the target dead, aborts the flight
	// and re-homes; every tick in between must keep the invariants.
	mustTick(t, f, 4)
	if m := f.Owner("b0"); m == "" || m == target {
		t.Fatalf("b0 on %q after target kill (target %s)", m, target)
	}
	if err := check.CheckFleet(f.View()); err != nil {
		t.Fatalf("CheckFleet: %v", err)
	}
}

func TestJournalDeterminism(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		f := testFleet(t, 3, 30, func(c *Config) {
			c.Journal = &buf
			c.SnapshotEvery = 2
		})
		for i := 0; i < 6; i++ {
			if err := f.Submit(testSpec(f.cfg.Platform, fmt.Sprintf("s%d", i), 3)); err != nil {
				t.Fatal(err)
			}
		}
		mustTick(t, f, 3)
		if err := f.KillMachine(f.Owner("s0")); err != nil {
			t.Fatal(err)
		}
		mustTick(t, f, DefaultDeadAfter+1)
		f.KillCoordinator()
		mustTick(t, f, 3)
		if err := f.Deregister("s1"); err != nil {
			t.Fatal(err)
		}
		mustTick(t, f, 2)
		if err := f.JournalErr(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same scripted run produced different journals:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty journal")
	}
}
