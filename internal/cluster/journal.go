package cluster

// The cluster transition journal: one JSON line per coordinator
// transition (placements, rejections, migration phases, kills, deaths,
// failovers, shipments, exits). Field order is fixed by the struct, every
// producer iterates sorted state, and timestamps are virtual ticks — so
// same-seed runs write byte-identical journals, the property the chaos
// suites assert. Write errors are sticky and surfaced via JournalErr, like
// the decision journal's error contract.

import "encoding/json"

// journalRec is one cluster journal line.
type journalRec struct {
	Tick     uint64  `json:"tick"`
	Ev       string  `json:"ev"`
	Instance string  `json:"instance,omitempty"`
	Machine  string  `json:"machine,omitempty"`
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
	DemandW  float64 `json:"demand_w,omitempty"`
	N        int     `json:"n,omitempty"`
	Orphans  int     `json:"orphans,omitempty"`
}

func (f *Fleet) journal(rec journalRec) {
	if f.jw == nil || f.jerr != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		f.jerr = err
		return
	}
	b = append(b, '\n')
	if _, err := f.jw.Write(b); err != nil {
		f.jerr = err
	}
}
