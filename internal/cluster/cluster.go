// Package cluster federates N machine-local resource managers under one
// fleet coordinator — the multi-node step toward the ROADMAP's
// millions-of-users scale (MARS's hierarchical coordinator-over-local-
// managers shape, PAPERS.md).
//
// Each simulated machine runs its own core.Manager on a shared virtual
// clock. The coordinator places incoming sessions by bin-packing on the
// sessions' operating-point tables, enforces the fleet-wide energy budget
// by distributing per-machine power caps, migrates sessions off hot or
// dying machines with the PR 3 reconnect contract (re-register + table and
// phase replay, transparent to the application), and survives its own
// death: a standby promotes itself from the last shipped snapshot
// (internal/store cluster codec) and reconciles against the machines that
// still answer.
//
// # Budget soundness
//
// The coordinator admits by worst-case demand: a session's demand is the
// maximum power over its table's usable operating points, an upper bound
// on anything the machine-local solver can choose (exploration is disabled
// on fleet machines). A session is placed only where admitted demand plus
// its own stays under the machine's cap, and the alive machines' caps
// always sum to at most the fleet budget — so actual fleet power can never
// exceed the budget, at any instant, including mid-migration (a migrating
// session's demand is reserved on the target before it leaves the source's
// books... see migrate()). check.CheckFleet verifies exactly this chain
// from the outside.
//
// # Determinism
//
// Every coordinator decision iterates sorted state (machine index order,
// instance-sorted registry walks), so same-seed harness runs produce
// byte-identical cluster journals and shipments — the chaos suites compare
// them. Like core.Manager, a Fleet is not goroutine-safe; one driver
// owns it.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/check"
	"github.com/harp-rm/harp/internal/core"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/store"
	"github.com/harp-rm/harp/internal/telemetry"
	"github.com/harp-rm/harp/internal/workload"
)

// Sentinel errors for client-facing fleet operations.
var (
	// ErrNoCoordinator: the active coordinator is dead and the standby has
	// not promoted yet (it does so on the next tick). Clients retry.
	ErrNoCoordinator = errors.New("cluster: no active coordinator")
	// ErrDuplicateSession: the instance is already registered, queued or
	// migrating somewhere in the fleet.
	ErrDuplicateSession = errors.New("cluster: duplicate session")
	// ErrUnknownSession: the instance is nowhere in the fleet.
	ErrUnknownSession = errors.New("cluster: unknown session")
	// ErrNoTable: placement needs an operating-point table with at least
	// one usable point — worst-case admission has no demand bound without
	// one.
	ErrNoTable = errors.New("cluster: session has no usable operating points")
)

// DefaultDeadAfter is how many consecutive missed heartbeats (ticks)
// declare a machine dead.
const DefaultDeadAfter = 3

// DefaultSnapshotEvery is the coordinator-to-standby shipping cadence in
// ticks.
const DefaultSnapshotEvery = 5

// DefaultMigrateBatch bounds migration starts per tick, so a drain spreads
// over several ticks and kill-during-migration is a real window.
const DefaultMigrateBatch = 4

// Config configures a Fleet.
type Config struct {
	// Machines is the fleet size (>= 1).
	Machines int
	// Platform is every machine's hardware model (required).
	Platform *platform.Platform
	// FleetBudgetW is the fleet-wide power budget, distributed across the
	// alive machines as per-machine caps. 0 disables budget enforcement.
	FleetBudgetW float64
	// DeadAfter is the missed-heartbeat count that declares a machine dead
	// (0 selects DefaultDeadAfter).
	DeadAfter int
	// SnapshotEvery is the standby shipping cadence in ticks (0 selects
	// DefaultSnapshotEvery).
	SnapshotEvery int
	// MigrateBatch bounds migration starts per tick (0 selects
	// DefaultMigrateBatch).
	MigrateBatch int
	// Static disables bin-packing and migration: sessions are spread
	// round-robin over fixed budget/N partitions. The Fig-style experiment's
	// baseline.
	Static bool
	// Verify runs check.CheckFleet at the end of every tick and fails the
	// tick on a violation. Chaos suites turn it on.
	Verify bool
	// Coalesce is each machine manager's epoch-coalescing policy.
	Coalesce core.CoalescePolicy
	// Tracer receives cluster transition events (and the machine managers'
	// events); its clock is the harness's virtual clock. May be nil.
	Tracer *telemetry.Tracer
	// Metrics receives the harp_cluster_* instruments. May be nil.
	Metrics *telemetry.Metrics
	// Journal receives the coordinator's JSONL transition journal. May be
	// nil. Same-seed runs write byte-identical journals.
	Journal io.Writer
	// MachineJournal, when set, supplies a per-machine decision-journal
	// writer (called once per machine at construction).
	MachineJournal func(id string) io.Writer
}

func (c *Config) withDefaults() error {
	if c.Machines < 1 {
		return fmt.Errorf("cluster: fleet of %d machines", c.Machines)
	}
	if c.Platform == nil {
		return errors.New("cluster: config without platform")
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = DefaultDeadAfter
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.MigrateBatch <= 0 {
		c.MigrateBatch = DefaultMigrateBatch
	}
	return nil
}

// SessionSpec is everything the coordinator needs to place (and later
// re-home) one session: the registration tuple plus the table and phase to
// replay — the client reconnect contract.
type SessionSpec struct {
	Instance   string
	App        string
	Adaptivity workload.Adaptivity
	OwnUtility bool
	Phase      string
	Table      *opoint.Table
}

// sessionRec is the coordinator's ledger entry for one session.
type sessionRec struct {
	spec    SessionSpec
	demandW float64
	// machine is the owning (or, mid-migration, reserving) machine; ""
	// while the session waits for placement.
	machine string
	// inflight marks the remove-then-add migration window: the session has
	// left its source and its demand is reserved on machine, but it is not
	// registered anywhere.
	inflight bool
}

// machine is one fleet member.
type machine struct {
	id  string
	idx int
	// mgr is the machine-local resource manager; nil once the coordinator
	// declared the machine dead and discarded it.
	mgr *core.Manager
	// killed is the fault-injection ground truth: a killed machine stops
	// heartbeating and serving, but the coordinator only learns via the
	// missed-heartbeat deadline.
	killed   bool
	lastBeat uint64
}

// migration is one in-flight session move.
type migration struct {
	instance, from, to string
}

// coordinator is the (replaceable) fleet brain. All its state is rebuilt
// on failover from the last shipment plus machine reconciliation.
type coordinator struct {
	registry map[string]*sessionRec
	// admitted is the per-machine worst-case demand ledger.
	admitted map[string]float64
	caps     map[string]float64
	// dead is the coordinator's belief (declared machines), which can lag
	// the killed ground truth by up to DeadAfter ticks.
	dead     map[string]bool
	inflight []migration
	epoch    uint64
	// drainSrc is the machine currently being consolidated away ("" when
	// no drain is active).
	drainSrc string
	promoted bool
}

// standby holds what a coordinator replacement starts from.
type standby struct {
	lastShipment []byte
}

// Stats counts fleet transitions since construction.
type Stats struct {
	Placements    int
	Rejected      int
	Migrations    int
	MachineDeaths int
	Failovers     int
	Exits         int
	Shipments     int
}

// Health is the fleet's graded health surface.
type Health struct {
	// Status is ok, degraded (dead machines or unplaced sessions) or
	// failed (headless fleet or an invariant violation).
	Status        string `json:"status"`
	MachinesAlive int    `json:"machines_alive"`
	MachinesTotal int    `json:"machines_total"`
	// Coordinator is "primary" or "promoted-standby".
	Coordinator string `json:"coordinator"`
	Unplaced    int    `json:"unplaced"`
	InFlight    int    `json:"in_flight"`
	Failovers   int    `json:"failovers"`
	// InvariantErr is the last check.CheckFleet violation ("" when clean).
	InvariantErr string `json:"invariant_err,omitempty"`
}

// Fleet is N machines, an active coordinator and a standby on one virtual
// clock. Drive it with Submit/Deregister/PhaseChange between ticks and
// Tick once per adaptation period.
type Fleet struct {
	cfg      Config
	machines []*machine
	coord    *coordinator
	standby  *standby
	// coordKilled marks the window between KillCoordinator and the next
	// tick's promotion.
	coordKilled bool
	// arrivals is the client-side queue: specs submitted but not yet
	// placed. It survives coordinator death — clients retry registration.
	arrivals []SessionSpec
	tick     uint64
	stats    Stats
	health   Health
	jw       io.Writer
	jerr     error
}

// New builds a fleet: machines m0..m(N-1), a fresh coordinator, an empty
// standby.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, standby: &standby{}, jw: cfg.Journal}
	for i := 0; i < cfg.Machines; i++ {
		id := fmt.Sprintf("m%d", i)
		var journal *telemetry.Journal
		if cfg.MachineJournal != nil {
			if w := cfg.MachineJournal(id); w != nil {
				journal = telemetry.NewJournal(w)
			}
		}
		// Each machine gets its own allocator (solution caches and warm
		// state must not be shared); the tracer is shared — ticks run in
		// machine index order, so interleaving stays deterministic.
		a, err := alloc.New(cfg.Platform, alloc.WithCache(alloc.DefaultCacheSize))
		if err != nil {
			return nil, err
		}
		mgr, err := core.NewManager(core.Config{
			Platform:           cfg.Platform,
			Allocator:          a,
			DisableExploration: true,
			Coalesce:           cfg.Coalesce,
			Tracer:             cfg.Tracer,
			Journal:            journal,
		})
		if err != nil {
			return nil, err
		}
		f.machines = append(f.machines, &machine{id: id, idx: i, mgr: mgr})
	}
	f.coord = f.newCoordinator(false)
	f.redistributeCaps()
	f.gauge()
	return f, nil
}

func (f *Fleet) newCoordinator(promoted bool) *coordinator {
	return &coordinator{
		registry: make(map[string]*sessionRec),
		admitted: make(map[string]float64),
		caps:     make(map[string]float64),
		dead:     make(map[string]bool),
		promoted: promoted,
	}
}

// maxDemandW is the worst-case admission bound: the maximum power over the
// table's usable points — an upper bound on any point the machine-local
// solver can select for the session.
func maxDemandW(t *opoint.Table) (float64, error) {
	if t == nil {
		return 0, ErrNoTable
	}
	best, found := 0.0, false
	for i := range t.Points {
		p := &t.Points[i]
		if p.Vector.IsZero() {
			continue
		}
		found = true
		if p.Power > best {
			best = p.Power
		}
	}
	if !found {
		return 0, ErrNoTable
	}
	return best, nil
}

// Submit queues a session for placement. The spec's table is required (see
// maxDemandW). Queued specs survive coordinator death — the queue models
// clients retrying registration.
func (f *Fleet) Submit(spec SessionSpec) error {
	if spec.Instance == "" || spec.App == "" {
		return errors.New("cluster: submit without instance or app")
	}
	if _, err := maxDemandW(spec.Table); err != nil {
		return err
	}
	if f.coordKilled {
		return ErrNoCoordinator
	}
	if _, ok := f.coord.registry[spec.Instance]; ok {
		return ErrDuplicateSession
	}
	for i := range f.arrivals {
		if f.arrivals[i].Instance == spec.Instance {
			return ErrDuplicateSession
		}
	}
	f.arrivals = append(f.arrivals, spec)
	return nil
}

// Deregister removes a session wherever it is: owned (deregistered from
// its machine), in flight (reservation released), queued or awaiting
// re-home.
func (f *Fleet) Deregister(instance string) error {
	if f.coordKilled {
		return ErrNoCoordinator
	}
	for i := range f.arrivals {
		if f.arrivals[i].Instance == instance {
			f.arrivals = append(f.arrivals[:i], f.arrivals[i+1:]...)
			return nil
		}
	}
	c := f.coord
	rec, ok := c.registry[instance]
	if !ok {
		return ErrUnknownSession
	}
	if rec.machine != "" {
		c.admitted[rec.machine] -= rec.demandW
		if rec.inflight {
			for i := range c.inflight {
				if c.inflight[i].instance == instance {
					c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
					break
				}
			}
		} else if m := f.byID(rec.machine); m != nil && m.mgr != nil {
			if err := m.mgr.Deregister(instance); err != nil {
				return err
			}
		}
	}
	delete(c.registry, instance)
	f.stats.Exits++
	f.journal(journalRec{Tick: f.tick, Ev: "exit", Instance: instance, Machine: rec.machine})
	return nil
}

// PhaseChange records (and, when the session is placed, forwards) an
// application phase announcement, so a later re-home replays the current
// phase.
func (f *Fleet) PhaseChange(instance, phase string) error {
	if f.coordKilled {
		return ErrNoCoordinator
	}
	for i := range f.arrivals {
		if f.arrivals[i].Instance == instance {
			f.arrivals[i].Phase = phase
			return nil
		}
	}
	rec, ok := f.coord.registry[instance]
	if !ok {
		return ErrUnknownSession
	}
	rec.spec.Phase = phase
	if rec.machine != "" && !rec.inflight {
		if m := f.byID(rec.machine); m != nil && m.mgr != nil {
			return m.mgr.PhaseChange(instance, phase)
		}
	}
	return nil
}

// KillMachine injects a faultsim machine-kill: the machine stops
// heartbeating and serving immediately; the coordinator discovers it via
// the missed-heartbeat deadline.
func (f *Fleet) KillMachine(id string) error {
	m := f.byID(id)
	if m == nil {
		return fmt.Errorf("cluster: kill of unknown machine %q", id)
	}
	m.killed = true
	f.journal(journalRec{Tick: f.tick, Ev: "machine-kill", Machine: id})
	return nil
}

// KillCoordinator injects a faultsim coordinator-kill: the active
// coordinator's state is gone; the standby promotes on the next tick.
func (f *Fleet) KillCoordinator() {
	f.coord = nil
	f.coordKilled = true
	f.journal(journalRec{Tick: f.tick, Ev: "coordinator-kill"})
}

// Owner reports which machine currently owns the instance ("" when the
// session is queued, in flight, awaiting re-home or unknown).
func (f *Fleet) Owner(instance string) string {
	if f.coord == nil {
		return ""
	}
	if rec, ok := f.coord.registry[instance]; ok && !rec.inflight {
		return rec.machine
	}
	return ""
}

// Stats returns transition counters since construction.
func (f *Fleet) Stats() Stats { return f.stats }

// Health returns the health surface graded at the end of the last tick.
func (f *Fleet) Health() Health { return f.health }

// Tick advances the fleet one adaptation period: standby promotion,
// heartbeat collection and death declaration, migration completion and
// starts, placement, per-machine manager ticks, snapshot shipping and
// health grading — all in a deterministic order.
func (f *Fleet) Tick() error {
	f.tick++
	if f.coordKilled {
		if err := f.promote(); err != nil {
			return err
		}
	}
	f.heartbeats()
	if err := f.completeMigrations(); err != nil {
		return err
	}
	if !f.cfg.Static {
		f.planDrain()
		if err := f.startMigrations(); err != nil {
			return err
		}
	}
	if err := f.place(); err != nil {
		return err
	}
	for _, m := range f.machines {
		if m.killed || m.mgr == nil {
			continue
		}
		if err := m.mgr.Tick(); err != nil {
			return fmt.Errorf("cluster: machine %s tick: %w", m.id, err)
		}
	}
	if f.tick%uint64(f.cfg.SnapshotEvery) == 0 {
		if err := f.ship(); err != nil {
			return err
		}
	}
	return f.grade()
}

// byID resolves a machine by ID (nil if unknown).
func (f *Fleet) byID(id string) *machine {
	for _, m := range f.machines {
		if m.id == id {
			return m
		}
	}
	return nil
}

// aliveMachines lists, in index order, the machines the coordinator
// believes alive.
func (f *Fleet) aliveMachines() []*machine {
	out := make([]*machine, 0, len(f.machines))
	for _, m := range f.machines {
		if !f.coord.dead[m.id] {
			out = append(out, m)
		}
	}
	return out
}

// redistributeCaps splits the fleet budget equally over the machines the
// coordinator believes alive. Σ alive caps == budget at all times, the
// outer link of the budget-soundness chain.
func (f *Fleet) redistributeCaps() {
	if f.coord == nil {
		return
	}
	alive := f.aliveMachines()
	for _, m := range f.machines {
		f.coord.caps[m.id] = 0
	}
	if f.cfg.FleetBudgetW <= 0 || len(alive) == 0 {
		return
	}
	per := f.cfg.FleetBudgetW / float64(len(alive))
	for _, m := range alive {
		f.coord.caps[m.id] = per
	}
}

// heartbeats delivers this tick's heartbeats from non-killed machines and
// declares machines dead once DeadAfter ticks pass without one. A declared
// machine's sessions go back to the placement queue (registry entries with
// machine == "") and its manager is discarded.
func (f *Fleet) heartbeats() {
	c := f.coord
	for _, m := range f.machines {
		if !m.killed && m.mgr != nil {
			m.lastBeat = f.tick
		}
	}
	for _, m := range f.machines {
		if c.dead[m.id] || f.tick-m.lastBeat < uint64(f.cfg.DeadAfter) {
			continue
		}
		c.dead[m.id] = true
		m.mgr = nil
		orphans := 0
		for _, inst := range sortedInstances(c.registry) {
			rec := c.registry[inst]
			if rec.machine != m.id {
				continue
			}
			// In-flight reservations on the dead target are aborted below
			// the same way owned sessions are orphaned: back to the queue.
			if rec.inflight {
				for i := range c.inflight {
					if c.inflight[i].instance == inst {
						c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
						break
					}
				}
				rec.inflight = false
			}
			c.admitted[m.id] -= rec.demandW
			rec.machine = ""
			orphans++
		}
		c.admitted[m.id] = 0
		if c.drainSrc == m.id {
			c.drainSrc = ""
		}
		f.stats.MachineDeaths++
		f.journal(journalRec{Tick: f.tick, Ev: "machine-dead", Machine: m.id, N: orphans})
		f.emit(telemetry.Event{Kind: telemetry.EvClusterMachineDead, Stage: m.id, Vals: [4]float64{float64(orphans)}})
		if mt := f.cfg.Metrics; mt != nil {
			mt.ClusterMachineDeaths.Inc()
		}
		f.redistributeCaps()
		f.gauge()
	}
}

// completeMigrations finishes the add half of every in-flight move: the
// session registers on its target with table and phase replayed. A target
// that died mid-flight sends the session back to the placement queue.
func (f *Fleet) completeMigrations() error {
	c := f.coord
	moves := c.inflight
	c.inflight = nil
	for _, mv := range moves {
		rec := c.registry[mv.instance]
		m := f.byID(mv.to)
		if m == nil || m.mgr == nil || c.dead[mv.to] {
			c.admitted[mv.to] -= rec.demandW
			rec.machine, rec.inflight = "", false
			f.journal(journalRec{Tick: f.tick, Ev: "migrate-abort", Instance: mv.instance, From: mv.from, To: mv.to})
			continue
		}
		if err := f.registerOn(m, rec); err != nil {
			return fmt.Errorf("cluster: migrate %s to %s: %w", mv.instance, mv.to, err)
		}
		rec.inflight = false
		f.stats.Migrations++
		f.journal(journalRec{Tick: f.tick, Ev: "migrate-done", Instance: mv.instance, From: mv.from, To: mv.to})
		f.emit(telemetry.Event{Kind: telemetry.EvClusterMigrated, Instance: mv.instance, Stage: mv.from + "→" + mv.to})
		if mt := f.cfg.Metrics; mt != nil {
			mt.ClusterMigrations.Inc()
			mt.ClusterPlacements.Inc()
		}
	}
	return nil
}

// planDrain picks the consolidation source: the least-loaded non-empty
// alive machine whose whole population fits into the other alive machines'
// cap headroom. Draining it to empty lets the harness park the machine —
// the fleet-energy win over static partitioning. One drain at a time.
func (f *Fleet) planDrain() {
	c := f.coord
	if c.drainSrc != "" || len(c.inflight) > 0 {
		return
	}
	alive := f.aliveMachines()
	if len(alive) < 2 || f.cfg.FleetBudgetW <= 0 {
		return
	}
	var src *machine
	for _, m := range alive {
		if c.admitted[m.id] <= 0 {
			continue
		}
		if src == nil || c.admitted[m.id] < c.admitted[src.id] {
			src = m
		}
	}
	if src == nil {
		return
	}
	// Simulate best-fit of every source session into the headroom of the
	// other non-empty machines. Empty machines are not drain targets —
	// moving load onto one would shuffle sessions without reducing the
	// active machine count, the whole point of consolidating.
	head := make(map[string]float64)
	for _, m := range alive {
		if m != src && c.admitted[m.id] > 0 {
			head[m.id] = c.caps[m.id] - c.admitted[m.id]
		}
	}
	if len(head) == 0 {
		return
	}
	for _, inst := range sortedInstances(c.registry) {
		rec := c.registry[inst]
		if rec.machine != src.id {
			continue
		}
		best := ""
		for _, m := range alive {
			h, ok := head[m.id]
			if !ok || h < rec.demandW {
				continue
			}
			if best == "" || h < head[best] {
				best = m.id
			}
		}
		if best == "" {
			return // does not fully fit; no partial drains
		}
		head[best] -= rec.demandW
	}
	c.drainSrc = src.id
}

// startMigrations begins up to MigrateBatch moves off the drain source (or
// off any machine whose admitted demand exceeds its cap — the hot case,
// defensive against future cap shrinking). Remove-then-add: the session
// deregisters from its source and its demand is reserved on the target
// now; registration on the target happens next tick.
func (f *Fleet) startMigrations() error {
	c := f.coord
	started := 0
	for _, src := range f.aliveMachines() {
		over := c.caps[src.id] > 0 && c.admitted[src.id] > c.caps[src.id]+1e-9
		if src.id != c.drainSrc && !over {
			continue
		}
		for _, inst := range sortedInstances(c.registry) {
			if started >= f.cfg.MigrateBatch {
				return nil
			}
			rec := c.registry[inst]
			if rec.machine != src.id || rec.inflight {
				continue
			}
			dst := f.bestFit(rec.demandW, src.id, src.id == c.drainSrc)
			if dst == nil {
				continue
			}
			if src.mgr != nil {
				if err := src.mgr.Deregister(inst); err != nil {
					return fmt.Errorf("cluster: migrate %s off %s: %w", inst, src.id, err)
				}
			}
			c.admitted[src.id] -= rec.demandW
			c.admitted[dst.id] += rec.demandW
			rec.machine, rec.inflight = dst.id, true
			c.inflight = append(c.inflight, migration{instance: inst, from: src.id, to: dst.id})
			started++
			f.journal(journalRec{Tick: f.tick, Ev: "migrate-start", Instance: inst, From: src.id, To: dst.id})
		}
		if src.id == c.drainSrc && c.admitted[src.id] <= 1e-9 {
			c.drainSrc = ""
		}
	}
	return nil
}

// bestFit picks the alive machine (excluding skip) with the least cap
// headroom that still fits demand — best-fit packing, which consolidates
// load onto few machines. Uncapped fleets fill the lowest-index alive
// machine (maximal consolidation). With nonEmptyOnly, empty machines are
// excluded (drain moves must not open a machine the drain is trying to
// save).
func (f *Fleet) bestFit(demandW float64, skip string, nonEmptyOnly bool) *machine {
	c := f.coord
	var best *machine
	for _, m := range f.aliveMachines() {
		if m.id == skip || m.mgr == nil {
			continue
		}
		if nonEmptyOnly && c.admitted[m.id] <= 0 {
			continue
		}
		if f.cfg.FleetBudgetW <= 0 {
			return m // uncapped: first alive machine, maximal consolidation
		}
		if c.admitted[m.id]+demandW > c.caps[m.id]+1e-9 {
			continue
		}
		if best == nil || c.caps[m.id]-c.admitted[m.id] < c.caps[best.id]-c.admitted[best.id] {
			best = m
		}
	}
	return best
}

// staticTarget is the baseline placement: a fixed hash partition over all
// machines, dead or alive (static partitioning does not re-home).
func (f *Fleet) staticTarget(instance string) *machine {
	h := 0
	for i := 0; i < len(instance); i++ {
		h = h*31 + int(instance[i])
	}
	if h < 0 {
		h = -h
	}
	return f.machines[h%len(f.machines)]
}

// place admits the placement queue: first the registry's unplaced sessions
// (orphans being re-homed, instance order), then the arrival queue in
// submission order. Unplaceable sessions stay queued and retry next tick.
func (f *Fleet) place() error {
	c := f.coord
	for _, inst := range sortedInstances(c.registry) {
		rec := c.registry[inst]
		if rec.machine != "" {
			continue
		}
		if err := f.placeRec(rec); err != nil {
			return err
		}
	}
	remaining := f.arrivals[:0]
	for i := range f.arrivals {
		spec := f.arrivals[i]
		demand, err := maxDemandW(spec.Table)
		if err != nil {
			return err
		}
		rec := &sessionRec{spec: spec, demandW: demand}
		if err := f.placeRec(rec); err != nil {
			return err
		}
		if rec.machine == "" {
			remaining = append(remaining, spec)
			continue
		}
		c.registry[spec.Instance] = rec
	}
	f.arrivals = remaining
	return nil
}

// placeRec tries to place one session, leaving rec.machine == "" when no
// machine fits this tick.
func (f *Fleet) placeRec(rec *sessionRec) error {
	c := f.coord
	var dst *machine
	if f.cfg.Static {
		m := f.staticTarget(rec.spec.Instance)
		if m.mgr != nil && !c.dead[m.id] &&
			(f.cfg.FleetBudgetW <= 0 || c.admitted[m.id]+rec.demandW <= c.caps[m.id]+1e-9) {
			dst = m
		}
	} else {
		dst = f.bestFit(rec.demandW, "", false)
	}
	if dst == nil {
		f.stats.Rejected++
		f.journal(journalRec{Tick: f.tick, Ev: "reject", Instance: rec.spec.Instance})
		if mt := f.cfg.Metrics; mt != nil {
			mt.ClusterPlacementsRejected.Inc()
		}
		return nil
	}
	if err := f.registerOn(dst, rec); err != nil {
		return fmt.Errorf("cluster: place %s on %s: %w", rec.spec.Instance, dst.id, err)
	}
	c.admitted[dst.id] += rec.demandW
	rec.machine = dst.id
	f.stats.Placements++
	f.journal(journalRec{Tick: f.tick, Ev: "place", Instance: rec.spec.Instance, Machine: dst.id, DemandW: rec.demandW})
	f.emit(telemetry.Event{Kind: telemetry.EvClusterPlaced, Instance: rec.spec.Instance, Stage: dst.id, Power: rec.demandW})
	if mt := f.cfg.Metrics; mt != nil {
		mt.ClusterPlacements.Inc()
	}
	return nil
}

// registerOn performs the register + table/phase replay handshake on a
// machine's manager — identical for first placements, re-homes and
// migration completions (the reconnect contract).
func (f *Fleet) registerOn(m *machine, rec *sessionRec) error {
	if err := m.mgr.Register(rec.spec.Instance, rec.spec.App, rec.spec.Adaptivity, rec.spec.OwnUtility); err != nil {
		return err
	}
	if err := m.mgr.UploadTable(rec.spec.Instance, rec.spec.Table); err != nil {
		return err
	}
	if rec.spec.Phase != "" {
		if err := m.mgr.PhaseChange(rec.spec.Instance, rec.spec.Phase); err != nil {
			return err
		}
	}
	return nil
}

// ship encodes the coordinator's state and hands it to the standby — the
// PR 5 snapshot shape on the wire (store cluster codec).
func (f *Fleet) ship() error {
	raw, err := store.EncodeClusterState(f.exportState())
	if err != nil {
		return fmt.Errorf("cluster: ship: %w", err)
	}
	f.standby.lastShipment = raw
	f.coord.epoch++
	f.stats.Shipments++
	f.journal(journalRec{Tick: f.tick, Ev: "ship", N: len(raw)})
	return nil
}

// exportState renders the coordinator ledger as a store.ClusterState with
// sorted machines and sessions. In-flight sessions export unplaced: a
// coordinator recovering from this shipment must re-home them, never
// assume the add half completed.
func (f *Fleet) exportState() *store.ClusterState {
	c := f.coord
	cs := &store.ClusterState{
		Epoch:        c.epoch,
		Tick:         f.tick,
		FleetBudgetW: f.cfg.FleetBudgetW,
	}
	for _, m := range f.machines {
		cs.Machines = append(cs.Machines, store.ClusterMachine{
			ID:    m.id,
			CapW:  c.caps[m.id],
			Alive: !c.dead[m.id],
		})
	}
	for _, inst := range sortedInstances(c.registry) {
		rec := c.registry[inst]
		mach := rec.machine
		if rec.inflight {
			mach = ""
		}
		cs.Sessions = append(cs.Sessions, store.ClusterSession{
			Instance:   rec.spec.Instance,
			App:        rec.spec.App,
			Adaptivity: rec.spec.Adaptivity.String(),
			OwnUtility: rec.spec.OwnUtility,
			Phase:      rec.spec.Phase,
			Machine:    mach,
			DemandW:    rec.demandW,
			Table:      rec.spec.Table,
		})
	}
	return cs
}

// promote replaces the dead coordinator: decode the standby's last
// shipment, then reconcile against every machine that still answers —
// machines are the authority on ownership, the shipment on sessions that
// are currently nowhere. Anything in neither (placed and migrated away
// entirely inside the shipping interval) is recovered by the client's own
// re-registration, like any control-plane loss.
func (f *Fleet) promote() error {
	c := f.newCoordinator(true)
	recovered, orphans := 0, 0
	if raw := f.standby.lastShipment; raw != nil {
		cs, err := store.DecodeClusterState(raw)
		if err != nil {
			return fmt.Errorf("cluster: promote: %w", err)
		}
		c.epoch = cs.Epoch
		for i := range cs.Machines {
			if !cs.Machines[i].Alive {
				c.dead[cs.Machines[i].ID] = true
			}
		}
		for i := range cs.Sessions {
			s := &cs.Sessions[i]
			ad, err := core.ParseAdaptivity(s.Adaptivity)
			if err != nil {
				return fmt.Errorf("cluster: promote: %w", err)
			}
			c.registry[s.Instance] = &sessionRec{
				spec: SessionSpec{
					Instance:   s.Instance,
					App:        s.App,
					Adaptivity: ad,
					OwnUtility: s.OwnUtility,
					Phase:      s.Phase,
					Table:      s.Table,
				},
				demandW: s.DemandW,
			}
			recovered++
		}
	}
	// Reconcile: live machines are authoritative for ownership and state.
	owned := make(map[string]string)
	for _, m := range f.machines {
		if m.killed || m.mgr == nil || c.dead[m.id] {
			continue
		}
		for _, si := range m.mgr.Sessions() {
			owned[si.Instance] = m.id
			rec, ok := c.registry[si.Instance]
			if !ok {
				tbl, err := m.mgr.Table(si.Instance)
				if err != nil {
					return fmt.Errorf("cluster: promote reconcile: %w", err)
				}
				demand, err := maxDemandW(tbl)
				if err != nil {
					return fmt.Errorf("cluster: promote reconcile %s: %w", si.Instance, err)
				}
				rec = &sessionRec{
					spec: SessionSpec{
						Instance:   si.Instance,
						App:        si.App,
						Adaptivity: si.Adaptivity,
						OwnUtility: si.OwnUtility,
						Phase:      si.Phase,
						Table:      tbl,
					},
					demandW: demand,
				}
				c.registry[si.Instance] = rec
			}
			rec.machine = m.id
			rec.spec.Phase = si.Phase
		}
	}
	for _, inst := range sortedInstances(c.registry) {
		rec := c.registry[inst]
		if m, ok := owned[inst]; ok {
			rec.machine = m
			continue
		}
		rec.machine, rec.inflight = "", false
		orphans++
	}
	for _, inst := range sortedInstances(c.registry) {
		rec := c.registry[inst]
		if rec.machine != "" {
			c.admitted[rec.machine] += rec.demandW
		}
	}
	f.coord = c
	f.coordKilled = false
	f.redistributeCaps()
	f.standby = &standby{}
	f.stats.Failovers++
	f.journal(journalRec{Tick: f.tick, Ev: "failover", N: recovered, Orphans: orphans})
	f.emit(telemetry.Event{Kind: telemetry.EvClusterFailover, Vals: [4]float64{float64(recovered), float64(orphans)}})
	if mt := f.cfg.Metrics; mt != nil {
		mt.ClusterFailovers.Inc()
	}
	f.gauge()
	return nil
}

// View renders the point-in-time fleet snapshot check.CheckFleet grades:
// coordinator belief for alive/caps/admitted, machine-manager ground truth
// for ownership and standing power.
func (f *Fleet) View() check.FleetView {
	v := check.FleetView{BudgetW: f.cfg.FleetBudgetW}
	for _, m := range f.machines {
		fm := check.FleetMachine{ID: m.id}
		if f.coord != nil {
			fm.Alive = !f.coord.dead[m.id]
			fm.CapW = f.coord.caps[m.id]
			fm.AdmittedW = f.coord.admitted[m.id]
		}
		if m.mgr != nil {
			for _, si := range m.mgr.Sessions() {
				fm.Sessions = append(fm.Sessions, si.Instance)
			}
			if !m.killed {
				fm.StandingPowerW = m.mgr.StandingPowerW()
			}
		}
		v.Machines = append(v.Machines, fm)
	}
	return v
}

// Unowned lists, sorted, every session the fleet knows about but no
// machine currently serves — queued arrivals, in-flight migrations and
// orphans awaiting re-home. Chaos suites bound how long any instance stays
// on this list.
func (f *Fleet) Unowned() []string {
	var out []string
	for i := range f.arrivals {
		out = append(out, f.arrivals[i].Instance)
	}
	if f.coord != nil {
		for _, inst := range sortedInstances(f.coord.registry) {
			rec := f.coord.registry[inst]
			if rec.machine == "" || rec.inflight {
				out = append(out, inst)
			}
		}
	}
	sort.Strings(out)
	return out
}

// grade refreshes the health surface and, with Verify set, fails the tick
// on a fleet-invariant violation.
func (f *Fleet) grade() error {
	h := Health{MachinesTotal: len(f.machines), Failovers: f.stats.Failovers, Coordinator: "primary"}
	if f.coord != nil && f.coord.promoted {
		h.Coordinator = "promoted-standby"
	}
	for _, m := range f.machines {
		if f.coord != nil && !f.coord.dead[m.id] {
			h.MachinesAlive++
		}
	}
	h.Unplaced = len(f.Unowned())
	if f.coord != nil {
		h.InFlight = len(f.coord.inflight)
		h.Unplaced -= h.InFlight // in-flight sessions are in motion, not stuck
	}
	var verr error
	if f.cfg.Verify {
		verr = check.CheckFleet(f.View())
	}
	switch {
	case verr != nil:
		h.Status, h.InvariantErr = "failed", verr.Error()
	case f.coord == nil:
		h.Status = "failed"
	case h.MachinesAlive < h.MachinesTotal || h.Unplaced > 0:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	f.health = h
	f.gauge()
	return verr
}

func (f *Fleet) gauge() {
	if mt := f.cfg.Metrics; mt == nil {
		return
	} else if f.coord != nil {
		alive := 0
		for _, m := range f.machines {
			if !f.coord.dead[m.id] {
				alive++
			}
		}
		mt.ClusterMachinesAlive.Set(float64(alive))
	}
}

func (f *Fleet) emit(ev telemetry.Event) {
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Emit(ev)
	}
}

// JournalErr reports the first cluster-journal write error (nil when the
// journal is healthy or disabled).
func (f *Fleet) JournalErr() error { return f.jerr }

func sortedInstances(registry map[string]*sessionRec) []string {
	out := make([]string, 0, len(registry))
	for inst := range registry {
		out = append(out, inst)
	}
	sort.Strings(out)
	return out
}
