package check

import (
	"os"
	"path/filepath"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/platform"
)

// FailFunc reproduces the failure under investigation: it returns a non-nil
// error when the instance still exhibits it. Shrinking keeps only reductions
// that preserve the failure, so the predicate must be deterministic.
type FailFunc func(p *platform.Platform, inputs []alloc.AppInput) error

// Shrink greedily minimises a failing instance: it repeatedly tries to drop
// whole applications, then individual operating points, keeping every
// reduction under which fail still returns an error, until a fixpoint. The
// returned instance is the smallest found, together with the failure it
// still produces. Inputs are never mutated; shrunk tables are copies.
//
// Greedy one-at-a-time deletion is not globally minimal, but in practice it
// collapses 4-app × 8-point counterexamples to the 2-app × 2-point core of
// the bug, which is what a human needs to see.
func Shrink(p *platform.Platform, inputs []alloc.AppInput, fail FailFunc) ([]alloc.AppInput, error) {
	cur := cloneInputs(inputs)
	err := fail(p, cur)
	if err == nil {
		return cur, nil
	}
	for shrunk := true; shrunk; {
		shrunk = false
		// Drop whole applications.
		for i := 0; i < len(cur); i++ {
			if len(cur) == 1 {
				break
			}
			cand := append(append([]alloc.AppInput{}, cur[:i]...), cur[i+1:]...)
			if e := fail(p, cand); e != nil {
				cur, err = cand, e
				shrunk = true
				i--
			}
		}
		// Drop individual operating points.
		for i := 0; i < len(cur); i++ {
			tbl := cur[i].Table
			if tbl == nil {
				continue
			}
			for j := 0; j < len(tbl.Points); j++ {
				if len(tbl.Points) == 1 {
					break
				}
				cand := cloneInputs(cur)
				ct := cand[i].Table
				ct.Points = append(ct.Points[:j], ct.Points[j+1:]...)
				ct.Invalidate()
				if e := fail(p, cand); e != nil {
					cur, err = cand, e
					shrunk = true
					j--
					tbl = cur[i].Table
				}
			}
		}
	}
	return cur, err
}

func cloneInputs(inputs []alloc.AppInput) []alloc.AppInput {
	out := make([]alloc.AppInput, len(inputs))
	for i, in := range inputs {
		out[i] = in
		if in.Table != nil {
			out[i].Table = in.Table.Clone()
		}
	}
	return out
}

// WriteArtifact saves a counterexample dump under $HARP_CHECK_ARTIFACTS for
// CI to upload, returning the written path ("" when the variable is unset or
// the write fails — artifact capture must never mask the test failure
// itself).
func WriteArtifact(name string, data []byte) string {
	dir := os.Getenv("HARP_CHECK_ARTIFACTS")
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return ""
	}
	return path
}
