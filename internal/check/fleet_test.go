package check

import (
	"reflect"
	"strings"
	"testing"
)

func healthyFleet() FleetView {
	return FleetView{
		BudgetW: 100,
		Machines: []FleetMachine{
			{ID: "m0", Alive: true, CapW: 50, Sessions: []string{"a/1", "b/2"}, AdmittedW: 40, StandingPowerW: 31},
			{ID: "m1", Alive: true, CapW: 50, Sessions: []string{"c/3"}, AdmittedW: 20, StandingPowerW: 12},
			{ID: "m2", Alive: false, CapW: 0},
		},
	}
}

func TestCheckFleetAcceptsHealthyView(t *testing.T) {
	if err := CheckFleet(healthyFleet()); err != nil {
		t.Fatalf("healthy fleet rejected: %v", err)
	}
}

func TestCheckFleetViolations(t *testing.T) {
	cases := map[string]struct {
		mutate func(*FleetView)
		want   string
	}{
		"double-placement": {
			mutate: func(v *FleetView) { v.Machines[1].Sessions = append(v.Machines[1].Sessions, "a/1") },
			want:   "double-placed",
		},
		"dead-machine-owns": {
			mutate: func(v *FleetView) { v.Machines[2].Sessions = []string{"d/4"} },
			want:   "dead machine",
		},
		"admitted-over-cap": {
			mutate: func(v *FleetView) { v.Machines[0].AdmittedW = 50.1 },
			want:   "admitted",
		},
		"standing-over-cap": {
			mutate: func(v *FleetView) { v.Machines[1].StandingPowerW = 51 },
			want:   "standing power",
		},
		"caps-over-budget": {
			mutate: func(v *FleetView) { v.Machines[0].CapW = 60; v.Machines[0].AdmittedW = 0; v.Machines[0].StandingPowerW = 0 },
			want:   "fleet budget",
		},
		"duplicate-machine": {
			mutate: func(v *FleetView) { v.Machines[2].ID = "m0" },
			want:   "duplicate machine",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			v := healthyFleet()
			tc.mutate(&v)
			err := CheckFleet(v)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestCheckFleetZeroBudgetSkipsBudgetChecks(t *testing.T) {
	v := healthyFleet()
	v.BudgetW = 0
	v.Machines[0].CapW = 1e9 // caps can exceed any budget when none is set
	if err := CheckFleet(v); err != nil {
		t.Fatalf("zero-budget fleet rejected: %v", err)
	}
}

func TestOrphans(t *testing.T) {
	v := healthyFleet()
	got := Orphans(v, []string{"c/3", "z/9", "a/1", "y/8"})
	if want := []string{"y/8", "z/9"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("orphans = %v, want %v", got, want)
	}
	if got := Orphans(v, []string{"a/1"}); got != nil {
		t.Fatalf("no orphans expected, got %v", got)
	}
}
