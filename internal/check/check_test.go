package check

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/platform"
)

// bruteForce enumerates every assignment to find the true optimum — the
// oracle's oracle. Only usable on tiny instances.
func bruteForce(inst Instance) Solution {
	n := len(inst.Apps)
	best := Solution{Cost: math.Inf(1)}
	chosen := make([]int, n)
	var walk func(d int, cost float64, remaining []int)
	walk = func(d int, cost float64, remaining []int) {
		if d == n {
			if cost < best.Cost {
				best.Feasible = true
				best.Cost = cost
				best.Chosen = append([]int(nil), chosen...)
			}
			return
		}
		for ci, c := range inst.Apps[d].Cands {
			fits := true
			for k, dem := range c.Demand {
				if dem > remaining[k] {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			next := append([]int(nil), remaining...)
			for k, dem := range c.Demand {
				next[k] -= dem
			}
			chosen[d] = ci
			walk(d+1, cost+c.Cost, next)
		}
	}
	walk(0, 0, append([]int(nil), inst.Capacity...))
	if !best.Feasible {
		return Solution{}
	}
	return best
}

func TestOracleMatchesBruteForce(t *testing.T) {
	cfg := GenConfig{MaxApps: 3, MaxPoints: 4, Degenerate: true}
	for seed := int64(0); seed < 400; seed++ {
		p, inputs := Gen(seed, cfg)
		inst := FromInputs(p, inputs)
		got, err := inst.Solve()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForce(inst)
		if got.Feasible != want.Feasible {
			t.Fatalf("seed %d: oracle feasible=%v, brute force says %v\n%s",
				seed, got.Feasible, want.Feasible, FormatInstance(p, inputs))
		}
		if !want.Feasible {
			continue
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("seed %d: oracle cost %g, brute force %g\n%s",
				seed, got.Cost, want.Cost, FormatInstance(p, inputs))
		}
		if math.Abs(inst.CostOf(got.Chosen)-got.Cost) > 1e-9 {
			t.Fatalf("seed %d: oracle's Chosen prices at %g, claims %g",
				seed, inst.CostOf(got.Chosen), got.Cost)
		}
		// The oracle's own assignment must fit the capacity.
		used := make([]int, len(inst.Capacity))
		for i, ci := range got.Chosen {
			for k, dem := range inst.Apps[i].Cands[ci].Demand {
				used[k] += dem
			}
		}
		for k := range used {
			if used[k] > inst.Capacity[k] {
				t.Fatalf("seed %d: oracle assignment overflows kind %d: %d > %d",
					seed, k, used[k], inst.Capacity[k])
			}
		}
	}
}

func TestOracleInfeasible(t *testing.T) {
	inst := Instance{
		Capacity: []int{1},
		Apps: []App{
			{ID: "a", Cands: []Cand{{Cost: 1, Demand: []int{2}}}},
		},
	}
	sol, err := inst.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatalf("demand 2 on capacity 1 reported feasible: %+v", sol)
	}
}

func TestOracleEmpty(t *testing.T) {
	sol, err := Instance{Capacity: []int{4}}.Solve()
	if err != nil || !sol.Feasible || sol.Cost != 0 {
		t.Fatalf("empty instance: sol=%+v err=%v", sol, err)
	}
	sol, err = Instance{Capacity: []int{4}, Apps: []App{{ID: "a"}}}.Solve()
	if err != nil || sol.Feasible {
		t.Fatalf("app with no candidates must be infeasible: sol=%+v err=%v", sol, err)
	}
}

func TestOraclePrefersCheaperSplit(t *testing.T) {
	// Two apps, each with an expensive 1-core point and a cheap 2-core point,
	// on 3 cores: the optimum mixes one of each.
	inst := Instance{
		Capacity: []int{3},
		Apps: []App{
			{ID: "a", Cands: []Cand{{Cost: 10, Demand: []int{1}}, {Cost: 1, Demand: []int{2}}}},
			{ID: "b", Cands: []Cand{{Cost: 10, Demand: []int{1}}, {Cost: 1, Demand: []int{2}}}},
		},
	}
	sol, err := inst.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || math.Abs(sol.Cost-11) > 1e-9 {
		t.Fatalf("want cost 11 (one cheap + one expensive), got %+v", sol)
	}
}

func TestGenDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p1, in1 := Gen(seed, GenConfig{Degenerate: true})
		p2, in2 := Gen(seed, GenConfig{Degenerate: true})
		if FormatInstance(p1, in1) != FormatInstance(p2, in2) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGenPlatformsValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p, inputs := Gen(seed, GenConfig{Degenerate: true})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid platform: %v", seed, err)
		}
		if len(inputs) == 0 {
			t.Fatalf("seed %d: no applications", seed)
		}
		for _, in := range inputs {
			if !hasUsablePoint(in.Table) {
				t.Fatalf("seed %d: %s has no usable operating point", seed, in.ID)
			}
		}
		inst := FromInputs(p, inputs)
		if inst.Size() <= 0 {
			t.Fatalf("seed %d: empty instance", seed)
		}
	}
}

func TestShrinkReducesToCore(t *testing.T) {
	p, inputs := Gen(7, GenConfig{})
	// Plant a recognisable poison point in the middle of the mix.
	poison := inputs[0].Table.Points[0]
	poison.Utility = 1234.5
	inputs[0].Table.Upsert(poison)
	fail := func(_ *platform.Platform, in []alloc.AppInput) error {
		for _, ai := range in {
			for _, op := range ai.Table.Points {
				if op.Utility == 1234.5 {
					return fmt.Errorf("poison present")
				}
			}
		}
		return nil
	}
	shrunk, err := Shrink(p, inputs, fail)
	if err == nil {
		t.Fatal("shrink lost the failure")
	}
	if len(shrunk) != 1 || len(shrunk[0].Table.Points) != 1 {
		t.Fatalf("want 1 app × 1 point, got %d apps (first table %d points)",
			len(shrunk), len(shrunk[0].Table.Points))
	}
	if shrunk[0].Table.Points[0].Utility != 1234.5 {
		t.Fatalf("shrink kept the wrong point: %+v", shrunk[0].Table.Points[0])
	}
	// The originals must be untouched.
	if len(inputs[0].Table.Points) == 1 {
		t.Fatal("shrink mutated the caller's inputs")
	}
}

func TestShrinkNoFailure(t *testing.T) {
	p, inputs := Gen(3, GenConfig{})
	out, err := Shrink(p, inputs, func(*platform.Platform, []alloc.AppInput) error { return nil })
	if err != nil {
		t.Fatalf("healthy instance shrank to an error: %v", err)
	}
	if len(out) != len(inputs) {
		t.Fatalf("healthy instance was reduced: %d → %d apps", len(inputs), len(out))
	}
}

func TestReproLine(t *testing.T) {
	line := ReproLine("./internal/alloc", "TestDifferentialLagrangianVsOracle", 42)
	for _, want := range []string{"go test", "-race", "seed=42", "./internal/alloc", "TestDifferentialLagrangianVsOracle"} {
		if !strings.Contains(line, want) {
			t.Fatalf("repro line %q missing %q", line, want)
		}
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("HARP_CHECK_ARTIFACTS", dir)
	path := WriteArtifact("ce.txt", []byte("counterexample"))
	if path != filepath.Join(dir, "ce.txt") {
		t.Fatalf("unexpected artifact path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "counterexample" {
		t.Fatalf("artifact read back %q, %v", data, err)
	}
	t.Setenv("HARP_CHECK_ARTIFACTS", "")
	if got := WriteArtifact("ce.txt", nil); got != "" {
		t.Fatalf("artifact written with no dir configured: %q", got)
	}
}

func TestCheckTimelineIsolation(t *testing.T) {
	p, _ := Gen(1, GenConfig{})
	n := p.NumCores()
	if n < 1 {
		t.Fatal("generated platform has no cores")
	}
	good := []TimelineEntry{
		{AtSec: 1, Instance: "a", Cores: []int{0}},
		{AtSec: 2, Instance: "a", Cores: nil}, // released
		{AtSec: 2, Instance: "b", Cores: []int{0}},
	}
	if err := CheckTimelineIsolation(p, good); err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	doubleGrant := []TimelineEntry{
		{AtSec: 1, Instance: "a", Cores: []int{0}},
		{AtSec: 2, Instance: "b", Cores: []int{0}},
	}
	if err := CheckTimelineIsolation(p, doubleGrant); err == nil {
		t.Fatal("double grant not detected")
	}
	coAllocated := []TimelineEntry{
		{AtSec: 1, Instance: "a", Cores: []int{0}},
		{AtSec: 2, Instance: "b", Cores: []int{0}, CoAllocated: true},
	}
	if err := CheckTimelineIsolation(p, coAllocated); err != nil {
		t.Fatalf("co-allocated sharing rejected: %v", err)
	}
	ghost := []TimelineEntry{{AtSec: 1, Instance: "a", Cores: []int{n}}}
	if err := CheckTimelineIsolation(p, ghost); err == nil {
		t.Fatal("nonexistent core not detected")
	}
	// A mid-batch conflict resolved within the same timestamp is legal.
	handoff := []TimelineEntry{
		{AtSec: 1, Instance: "a", Cores: []int{0}},
		{AtSec: 3, Instance: "b", Cores: []int{0}},
		{AtSec: 3, Instance: "a", Cores: nil},
	}
	if err := CheckTimelineIsolation(p, handoff); err != nil {
		t.Fatalf("same-batch handoff rejected: %v", err)
	}
}
