package check

// Fleet-level invariants. The cluster coordinator enforces the fleet energy
// budget by worst-case admission control: a session's demand is the maximum
// power over its table's usable points, so the sum of admitted demands on a
// machine bounds anything its local solver can choose. CheckFleet verifies
// the resulting global properties from the outside on a point-in-time view
// of the fleet — the cluster chaos suites call it every virtual-clock tick,
// including mid-migration.

import (
	"fmt"
	"sort"
)

// powerEps absorbs float accumulation noise when comparing summed watts
// against caps and budgets.
const powerEps = 1e-6

// FleetMachine is one machine's slice of a FleetView.
type FleetMachine struct {
	// ID names the machine (e.g. "m0").
	ID string
	// Alive is false once the coordinator declared the machine dead.
	Alive bool
	// CapW is the per-machine power cap distributed by the coordinator.
	CapW float64
	// Sessions are the instances the machine's local manager owns.
	Sessions []string
	// AdmittedW is the coordinator's worst-case demand sum for the machine.
	AdmittedW float64
	// StandingPowerW is the local manager's actual standing predicted
	// power (core.Manager.StandingPowerW).
	StandingPowerW float64
}

// FleetView is a point-in-time snapshot of the fleet handed to CheckFleet.
type FleetView struct {
	// BudgetW is the fleet-wide energy budget in watts.
	BudgetW float64
	// Machines holds every machine the coordinator knows, dead or alive.
	Machines []FleetMachine
}

// CheckFleet verifies the fleet placement invariants:
//
//  1. no session is owned by two machines (double placement),
//  2. dead machines own no sessions,
//  3. each machine's admitted worst-case demand and its actual standing
//     power both respect its cap,
//  4. the alive machines' caps sum to at most the fleet budget — so by
//     transitivity total fleet power never exceeds the budget, even
//     mid-migration.
//
// A zero BudgetW disables the budget checks (3 sum side and 4); per-machine
// checks still run when CapW > 0.
func CheckFleet(v FleetView) error {
	owner := make(map[string]string)
	ids := make(map[string]bool, len(v.Machines))
	aliveCap := 0.0
	for i := range v.Machines {
		m := &v.Machines[i]
		if m.ID == "" {
			return fmt.Errorf("check: fleet machine %d has no ID", i)
		}
		if ids[m.ID] {
			return fmt.Errorf("check: duplicate machine ID %q", m.ID)
		}
		ids[m.ID] = true
		if !m.Alive && len(m.Sessions) > 0 {
			return fmt.Errorf("check: dead machine %q owns %d sessions %v", m.ID, len(m.Sessions), m.Sessions)
		}
		for _, inst := range m.Sessions {
			if prev, dup := owner[inst]; dup {
				return fmt.Errorf("check: session %q double-placed on %q and %q", inst, prev, m.ID)
			}
			owner[inst] = m.ID
		}
		if m.CapW > 0 {
			if m.AdmittedW > m.CapW+powerEps {
				return fmt.Errorf("check: machine %q admitted %.3f W over its %.3f W cap", m.ID, m.AdmittedW, m.CapW)
			}
			if m.StandingPowerW > m.CapW+powerEps {
				return fmt.Errorf("check: machine %q standing power %.3f W over its %.3f W cap", m.ID, m.StandingPowerW, m.CapW)
			}
		}
		if m.Alive {
			aliveCap += m.CapW
		}
	}
	if v.BudgetW > 0 && aliveCap > v.BudgetW+powerEps {
		return fmt.Errorf("check: alive machine caps sum to %.3f W, over the %.3f W fleet budget", aliveCap, v.BudgetW)
	}
	return nil
}

// Orphans returns, sorted, the instances in want that no machine in the
// view owns — the sessions the coordinator still has to re-home. Chaos
// suites use it to bound re-homing latency in ticks.
func Orphans(v FleetView, want []string) []string {
	owned := make(map[string]bool)
	for i := range v.Machines {
		for _, inst := range v.Machines[i].Sessions {
			owned[inst] = true
		}
	}
	var out []string
	for _, inst := range want {
		if !owned[inst] {
			out = append(out, inst)
		}
	}
	sort.Strings(out)
	return out
}
