package check

import (
	"fmt"
	"math"
	"sort"
)

// MaxOracleNodes bounds the branch-and-bound search. The oracle is correct by
// construction but exponential; instances past this bound return ErrTooLarge
// instead of silently taking forever.
const MaxOracleNodes = 5_000_000

// ErrTooLarge is returned by Solve for instances beyond the oracle's search
// budget.
var ErrTooLarge = fmt.Errorf("check: instance exceeds the oracle's %d-node budget", MaxOracleNodes)

// Solution is the oracle's answer for an Instance.
type Solution struct {
	// Feasible reports whether any assignment fits the capacity.
	Feasible bool
	// Cost is the minimum total cost over feasible assignments (undefined
	// when infeasible).
	Cost float64
	// Chosen[i] indexes Apps[i].Cands in the optimal assignment (nil when
	// infeasible).
	Chosen []int
}

// Solve computes the exact MMKP optimum by depth-first branch and bound:
// applications are ordered by ascending candidate count (smallest branching
// factor first), partial assignments are pruned against a lower bound of
// per-application minimum costs, and capacity is maintained incrementally.
// The implementation favours obvious correctness over speed — it exists to
// judge the fast solvers, not to replace them.
func (inst Instance) Solve() (Solution, error) {
	n := len(inst.Apps)
	if n == 0 {
		return Solution{Feasible: true, Chosen: []int{}}, nil
	}
	for _, app := range inst.Apps {
		if len(app.Cands) == 0 {
			// An application with no candidate can never satisfy the
			// choose-exactly-one constraint.
			return Solution{}, nil
		}
	}

	// Search app order: fewest candidates first tightens the tree early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(inst.Apps[order[a]].Cands) < len(inst.Apps[order[b]].Cands)
	})

	// minTail[d] is the sum over apps order[d:] of each app's cheapest
	// candidate — an admissible lower bound on the remaining cost.
	minTail := make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		minCost := math.Inf(1)
		for _, c := range inst.Apps[order[d]].Cands {
			if c.Cost < minCost {
				minCost = c.Cost
			}
		}
		minTail[d] = minTail[d+1] + minCost
	}

	remaining := append([]int(nil), inst.Capacity...)
	chosen := make([]int, n)
	best := Solution{Cost: math.Inf(1)}
	nodes := 0

	var dfs func(d int, cost float64) error
	dfs = func(d int, cost float64) error {
		if nodes++; nodes > MaxOracleNodes {
			return ErrTooLarge
		}
		if cost+minTail[d] >= best.Cost {
			return nil // cannot beat the incumbent
		}
		if d == n {
			best.Feasible = true
			best.Cost = cost
			best.Chosen = append(best.Chosen[:0], chosen...)
			return nil
		}
		app := inst.Apps[order[d]]
		for ci, c := range app.Cands {
			fits := true
			for k, dem := range c.Demand {
				if k >= len(remaining) || dem > remaining[k] {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			for k, dem := range c.Demand {
				remaining[k] -= dem
			}
			chosen[order[d]] = ci
			err := dfs(d+1, cost+c.Cost)
			for k, dem := range c.Demand {
				remaining[k] += dem
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return Solution{}, err
	}
	if !best.Feasible {
		return Solution{}, nil
	}
	return best, nil
}

// CostOf sums the cost of an explicit assignment (one candidate index per
// app), without feasibility checking — used to price heuristic solutions in
// oracle units.
func (inst Instance) CostOf(chosen []int) float64 {
	var sum float64
	for i, ci := range chosen {
		sum += inst.Apps[i].Cands[ci].Cost
	}
	return sum
}
