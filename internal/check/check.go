// Package check is the allocator correctness harness: an exact MMKP
// reference solver used as a differential oracle against the production
// solvers, a seeded random instance generator with counterexample shrinking,
// and a reusable invariant suite asserted over single allocator solves and
// over full simulated runs.
//
// The package deliberately re-derives everything it checks from first
// principles — candidate costs, feasibility, optimal assignments — instead of
// reusing the allocator's own plumbing, so a bug in internal/alloc cannot
// hide itself from the oracle. See CORRECTNESS.md for how to run the harness
// and how to read a shrunk counterexample.
package check

import (
	"fmt"
	"math"
	"strings"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/platform"
)

// Cand is one candidate operating point of an Instance application: its
// energy-utility cost and its per-kind physical core demand.
type Cand struct {
	// Cost is the point's energy-utility cost ζ (lower is better).
	Cost float64
	// Demand is the per-kind physical core demand.
	Demand []int
}

// App is one application of an Instance.
type App struct {
	// ID identifies the application.
	ID string
	// Cands are the candidate points. Exactly one must be chosen.
	Cands []Cand
}

// Instance is a standalone multiple-choice multi-dimensional knapsack
// instance: pick one candidate per application minimising total cost subject
// to per-kind capacity. It is the oracle's input format, decoupled from
// operating-point tables so oracle tests can construct adversarial instances
// directly.
type Instance struct {
	// Capacity is the per-kind core capacity.
	Capacity []int
	// Apps are the competing applications.
	Apps []App
}

// FromInputs derives the MMKP instance the allocator faces for the given
// inputs. Candidates come from the full operating-point tables (not the
// Pareto-filtered fronts the allocator scans), so the oracle also witnesses
// that Pareto filtering never discards every optimal solution. The
// candidate-building rules mirror alloc.Allocator: zero vectors and
// non-finite costs are unusable, and an application without a single usable
// point falls back to one core of the most efficient kind at neutral cost.
func FromInputs(p *platform.Platform, inputs []alloc.AppInput) Instance {
	inst := Instance{Capacity: make([]int, len(p.Kinds))}
	for k, kind := range p.Kinds {
		inst.Capacity[k] = kind.Count
	}
	for _, in := range inputs {
		app := App{ID: in.ID}
		vstar := in.MaxUtility
		if vstar <= 0 && in.Table != nil {
			vstar = in.Table.MaxUtility()
		}
		if in.Table != nil {
			for _, op := range in.Table.Points {
				if op.Vector.IsZero() {
					continue
				}
				cost := op.Cost(vstar)
				if math.IsInf(cost, 1) || math.IsNaN(cost) {
					continue
				}
				app.Cands = append(app.Cands, Cand{Cost: cost, Demand: op.Vector.CoreDemand()})
			}
		}
		if len(app.Cands) == 0 {
			demand := make([]int, len(p.Kinds))
			demand[len(p.Kinds)-1] = 1
			app.Cands = append(app.Cands, Cand{Cost: 0, Demand: demand})
		}
		inst.Apps = append(inst.Apps, app)
	}
	return inst
}

// Size returns the number of candidate combinations the instance spans — the
// search-space bound the oracle refuses to exceed.
func (inst Instance) Size() float64 {
	size := 1.0
	for _, app := range inst.Apps {
		size *= float64(len(app.Cands))
	}
	return size
}

// FormatInstance renders an allocator instance compactly for counterexample
// logs: the platform's per-kind capacity and every application's points as
// (vector, utility, power) triples. Paste-able into a regression test.
func FormatInstance(p *platform.Platform, inputs []alloc.AppInput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform %s:", p.Name)
	for _, k := range p.Kinds {
		fmt.Fprintf(&b, " %d×%s(smt%d)", k.Count, k.Name, k.SMT)
	}
	b.WriteByte('\n')
	for _, in := range inputs {
		fmt.Fprintf(&b, "app %s (maxUtility=%g):\n", in.ID, in.MaxUtility)
		if in.Table == nil {
			b.WriteString("  <nil table>\n")
			continue
		}
		for _, op := range in.Table.Points {
			fmt.Fprintf(&b, "  {Vector: %s, Utility: %g, Power: %g, Measured: %v}\n",
				op.Vector, op.Utility, op.Power, op.Measured)
		}
	}
	return b.String()
}

// ReproLine returns the one-line `go test` command that replays a seeded
// subtest failure, e.g. ReproLine("./internal/alloc/", "TestDifferentialSmallInstances", 17).
func ReproLine(pkg, test string, seed int64) string {
	return fmt.Sprintf("go test -race -run '^%s$/^seed=%d$' %s", test, seed, pkg)
}
