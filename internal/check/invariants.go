package check

import (
	"fmt"
	"math"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/telemetry"
)

// CostBound is the acceptance bound for the production solver: on
// oracle-sized instances the Lagrangian solution's total cost must stay
// within this factor of the exact optimum.
const CostBound = 1.10

// CheckAllocations verifies the structural invariants of one allocator solve
// against its inputs: one allocation per input in order; every grant on a
// real core with a legal thread count; spatially isolated allocations
// granting exactly their selected vector, never overlapping each other, and
// conserving per-kind capacity. Returns the first violated invariant.
func CheckAllocations(p *platform.Platform, inputs []alloc.AppInput, allocs []alloc.Allocation) error {
	if len(allocs) != len(inputs) {
		return fmt.Errorf("check: %d allocations for %d inputs", len(allocs), len(inputs))
	}
	for i, al := range allocs {
		if al.ID != inputs[i].ID {
			return fmt.Errorf("check: allocation %d is %q, want input order %q", i, al.ID, inputs[i].ID)
		}
	}
	used := make([]int, len(p.Kinds))
	for i, al := range allocs {
		grantsPerKT := make(map[[2]int]int)
		for _, g := range al.Grants {
			kind, err := p.KindOf(g.Core)
			if err != nil {
				return fmt.Errorf("check: %s: grant on core %d: %v", al.ID, g.Core, err)
			}
			if g.Threads < 1 || g.Threads > p.Kinds[kind].SMT {
				return fmt.Errorf("check: %s: core %d granted %d threads (kind %s has SMT %d)",
					al.ID, g.Core, g.Threads, p.Kinds[kind].Name, p.Kinds[kind].SMT)
			}
			grantsPerKT[[2]int{int(kind), g.Threads}]++
		}
		if al.CoAllocated {
			continue
		}
		// An isolated allocation must realise exactly its selected vector:
		// Counts[kind][t-1] cores granted with t threads each.
		for kindIdx, counts := range al.Point.Vector.Counts {
			for t, c := range counts {
				if got := grantsPerKT[[2]int{kindIdx, t + 1}]; got != c {
					return fmt.Errorf("check: %s: vector %s wants %d cores of kind %d at %d threads, granted %d",
						al.ID, al.Point.Vector, c, kindIdx, t+1, got)
				}
			}
		}
		for k, d := range al.Point.Vector.CoreDemand() {
			used[k] += d
		}
		for j := i + 1; j < len(allocs); j++ {
			if !allocs[j].CoAllocated && alloc.Overlaps(al, allocs[j]) {
				return fmt.Errorf("check: isolated allocations %s and %s overlap", al.ID, allocs[j].ID)
			}
		}
	}
	for k, u := range used {
		if u > p.Kinds[k].Count {
			return fmt.Errorf("check: kind %s over capacity: %d isolated cores granted, %d exist",
				p.Kinds[k].Name, u, p.Kinds[k].Count)
		}
	}
	return nil
}

// CheckAgainstOracle runs the differential comparison for one instance: the
// heuristic solution must be structurally valid, must never beat the exact
// optimum (that would mean the oracle — or the cost accounting — is wrong),
// and when the oracle proves the instance infeasible the solver must have
// co-allocated — claiming an isolated solution there is a hard bug.
//
// With strict set (the production Lagrangian contract), two more invariants
// apply on oracle-feasible instances: the solver must not give up spatial
// isolation where an isolated assignment exists, and its total cost must
// stay within CostBound of the exact optimum. The greedy ablation baseline
// is checked loosely — painting itself into a co-allocation corner is
// precisely the behaviour the Lagrangian solver exists to avoid.
func CheckAgainstOracle(p *platform.Platform, inputs []alloc.AppInput, allocs []alloc.Allocation, strict bool) error {
	if err := CheckAllocations(p, inputs, allocs); err != nil {
		return err
	}
	inst := FromInputs(p, inputs)
	sol, err := inst.Solve()
	if err != nil {
		return fmt.Errorf("check: oracle: %v", err)
	}
	coAllocated := false
	for _, al := range allocs {
		if al.CoAllocated {
			coAllocated = true
		}
	}
	if !sol.Feasible {
		if !coAllocated {
			return fmt.Errorf("check: oracle proves infeasibility but the solver claims an isolated solution")
		}
		return nil // co-allocation is the designed answer to infeasibility
	}
	if coAllocated {
		if strict {
			return fmt.Errorf("check: solver co-allocated on an instance the oracle solves in isolation (optimal cost %.6g)", sol.Cost)
		}
		return nil
	}
	got := alloc.TotalCost(allocs, inputs)
	if got < sol.Cost-1e-9 && sol.Cost > 0 {
		return fmt.Errorf("check: solver cost %.6g beats the exact optimum %.6g — oracle or cost accounting broken", got, sol.Cost)
	}
	if strict && got > sol.Cost*CostBound+1e-9 {
		return fmt.Errorf("check: solver cost %.6g exceeds %.2f× the exact optimum %.6g", got, CostBound, sol.Cost)
	}
	return nil
}

// TimelineEntry is one applied decision in a run's timeline, reduced to what
// the isolation invariants need. harpsim.TimelineEvent converts 1:1.
type TimelineEntry struct {
	// AtSec is the virtual time of the decision.
	AtSec float64
	// Instance is the affected application instance.
	Instance string
	// Cores are the granted core IDs (empty = the instance's standing
	// allocation ended: parked, reaped, deregistered or exited).
	Cores []int
	// CoAllocated marks time-shared grants, exempt from isolation.
	CoAllocated bool
}

// CheckTimelineIsolation replays a timeline, maintaining every instance's
// standing allocation, and verifies that after each decision batch (events
// sharing a timestamp) no core is held by two non-co-allocated instances and
// the number of distinct granted cores never exceeds the platform. This is
// the full-run form of the no-double-grant and capacity-conservation
// invariants, and it holds across quarantines and reaps because those emit
// core-clearing events.
func CheckTimelineIsolation(p *platform.Platform, timeline []TimelineEntry) error {
	standing := make(map[string][]int)
	coAlloc := make(map[string]bool)
	nCores := p.NumCores()
	check := func(atSec float64) error {
		owner := make(map[int]string)
		distinct := make(map[int]bool)
		for inst, cores := range standing {
			for _, c := range cores {
				if c < 0 || c >= nCores {
					return fmt.Errorf("check: t=%.3fs: %s granted nonexistent core %d", atSec, inst, c)
				}
				distinct[c] = true
				if coAlloc[inst] {
					continue
				}
				if other, ok := owner[c]; ok {
					return fmt.Errorf("check: t=%.3fs: core %d granted to both %s and %s", atSec, c, other, inst)
				}
				owner[c] = inst
			}
		}
		if len(distinct) > nCores {
			return fmt.Errorf("check: t=%.3fs: %d distinct cores granted on a %d-core platform", atSec, len(distinct), nCores)
		}
		return nil
	}
	for i, ev := range timeline {
		if len(ev.Cores) == 0 {
			delete(standing, ev.Instance)
			delete(coAlloc, ev.Instance)
		} else {
			standing[ev.Instance] = ev.Cores
			coAlloc[ev.Instance] = ev.CoAllocated
		}
		// Decisions of one epoch share a timestamp; the push order inside an
		// epoch is unspecified, so invariants hold at batch boundaries.
		if i+1 == len(timeline) || timeline[i+1].AtSec != ev.AtSec {
			if err := check(ev.AtSec); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckJournal verifies a decision journal's internal contract: epochs
// numbered 1..n with non-decreasing timestamps, every epoch carrying a
// trigger, and decision sequence numbers strictly increasing across the
// whole stream — the property that makes the concatenated outputs exactly
// the pushed-decision stream.
func CheckJournal(records []telemetry.EpochRecord) error {
	lastAt := math.Inf(-1)
	lastSeq := 0
	for i, rec := range records {
		if rec.Epoch != i+1 {
			return fmt.Errorf("check: journal record %d numbered epoch %d", i, rec.Epoch)
		}
		if rec.Trigger == "" {
			return fmt.Errorf("check: epoch %d has no trigger", rec.Epoch)
		}
		if rec.AtSec < lastAt {
			return fmt.Errorf("check: epoch %d at %.3fs precedes epoch %d at %.3fs",
				rec.Epoch, rec.AtSec, i, lastAt)
		}
		lastAt = rec.AtSec
		for _, out := range rec.Outputs {
			if out.Seq <= lastSeq {
				return fmt.Errorf("check: epoch %d: decision seq %d after seq %d — journal and push stream disagree",
					rec.Epoch, out.Seq, lastSeq)
			}
			lastSeq = out.Seq
		}
	}
	return nil
}

// CheckJournalMatchesPushed verifies that the journal's concatenated outputs
// are exactly the pushed-decision stream observed by a decision callback, in
// order and field by field.
func CheckJournalMatchesPushed(records []telemetry.EpochRecord, pushed []telemetry.EpochOutput) error {
	var outs []telemetry.EpochOutput
	for _, rec := range records {
		outs = append(outs, rec.Outputs...)
	}
	if len(outs) != len(pushed) {
		return fmt.Errorf("check: journal records %d decisions, %d were pushed", len(outs), len(pushed))
	}
	for i := range outs {
		if outs[i] != pushed[i] {
			return fmt.Errorf("check: decision %d: journal %+v ≠ pushed %+v", i, outs[i], pushed[i])
		}
	}
	return nil
}
