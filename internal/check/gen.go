package check

import (
	"fmt"
	"math/rand"

	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

// GenConfig bounds the random instance generator. The zero value selects the
// oracle-friendly defaults from ISSUE/CORRECTNESS.md: small platforms and at
// most 4 applications × 8 candidate points, comfortably inside the exact
// solver's budget.
type GenConfig struct {
	// MaxKinds is the maximum number of core kinds (default 3).
	MaxKinds int
	// MaxCoresPerKind caps each kind's core count (default 4).
	MaxCoresPerKind int
	// MaxSMT caps hardware threads per core (default 2).
	MaxSMT int
	// MaxApps caps the number of competing applications (default 4).
	MaxApps int
	// MaxPoints caps the operating points per application (default 8).
	MaxPoints int
	// Degenerate mixes in hostile points — zero vectors, zero utility, zero
	// power, NaN-free but unusable — that the allocator must filter rather
	// than crash on (default off; the differential tests switch it on).
	Degenerate bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxKinds == 0 {
		c.MaxKinds = 3
	}
	if c.MaxCoresPerKind == 0 {
		c.MaxCoresPerKind = 4
	}
	if c.MaxSMT == 0 {
		c.MaxSMT = 2
	}
	if c.MaxApps == 0 {
		c.MaxApps = 4
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 8
	}
	return c
}

// GenPlatform derives a random valid platform from the rng: 1–MaxKinds core
// kinds with random counts, SMT and a plausible power model. Every platform
// it returns passes platform.Validate.
func GenPlatform(r *rand.Rand, cfg GenConfig) *platform.Platform {
	cfg = cfg.withDefaults()
	nKinds := 1 + r.Intn(cfg.MaxKinds)
	p := &platform.Platform{
		Name:            fmt.Sprintf("gen-%dk", nKinds),
		UncoreWatts:     r.Float64() * 3,
		MemBWGips:       20 + r.Float64()*200,
		EnergySensors:   "package",
		SimultaneousPMU: true,
	}
	for k := 0; k < nKinds; k++ {
		maxF := 1 + r.Float64()*4
		p.Kinds = append(p.Kinds, platform.CoreKind{
			Name:           fmt.Sprintf("K%d", k),
			Count:          1 + r.Intn(cfg.MaxCoresPerKind),
			SMT:            1 + r.Intn(cfg.MaxSMT),
			MaxFreqGHz:     maxF,
			MinFreqGHz:     0.2 + r.Float64()*0.5,
			IPC:            0.5 + r.Float64()*4,
			MemPenalty:     r.Float64(),
			SMTMaxGain:     r.Float64() * 0.6,
			SMTPowerFactor: r.Float64() * 0.6,
			ActiveWatts:    0.5 + r.Float64()*6,
			IdleWatts:      r.Float64() * 0.8,
			SleepWatts:     r.Float64() * 0.1,
		})
	}
	return p
}

// GenInputs derives a random application mix for the platform: each app gets
// a table of random operating points over the platform's vector space with
// independent utility/power draws. With cfg.Degenerate, hostile points that
// must be filtered (zero vectors, non-positive utility or power) are mixed
// in; every table keeps at least one usable point so the instance stays
// meaningfully comparable against the oracle.
func GenInputs(r *rand.Rand, p *platform.Platform, cfg GenConfig) []alloc.AppInput {
	cfg = cfg.withDefaults()
	vecs := platform.EnumerateVectors(p, 0)
	nApps := 1 + r.Intn(cfg.MaxApps)
	inputs := make([]alloc.AppInput, 0, nApps)
	for i := 0; i < nApps; i++ {
		tbl := &opoint.Table{App: fmt.Sprintf("app%d", i), Platform: p.Name}
		nPts := 1 + r.Intn(cfg.MaxPoints)
		for j := 0; j < nPts; j++ {
			op := opoint.OperatingPoint{
				Vector:   vecs[r.Intn(len(vecs))].Clone(),
				Utility:  0.1 + r.Float64()*20,
				Power:    0.05 + r.Float64()*8,
				Measured: true,
			}
			if cfg.Degenerate && r.Intn(10) == 0 {
				switch r.Intn(3) {
				case 0:
					op.Vector = platform.NewResourceVector(p)
				case 1:
					op.Utility = 0
				case 2:
					op.Power = 0
				}
			}
			tbl.Upsert(op)
		}
		if !hasUsablePoint(tbl) {
			tbl.Upsert(opoint.OperatingPoint{
				Vector:   vecs[r.Intn(len(vecs))].Clone(),
				Utility:  0.5 + r.Float64()*10,
				Power:    0.1 + r.Float64()*4,
				Measured: true,
			})
		}
		inputs = append(inputs, alloc.AppInput{ID: fmt.Sprintf("app%d", i), Table: tbl})
	}
	return inputs
}

// Gen derives a full random allocator instance — platform plus application
// mix — from one seed. Same seed, same instance.
func Gen(seed int64, cfg GenConfig) (*platform.Platform, []alloc.AppInput) {
	r := rand.New(rand.NewSource(seed))
	p := GenPlatform(r, cfg)
	return p, GenInputs(r, p, cfg)
}

func hasUsablePoint(tbl *opoint.Table) bool {
	for _, op := range tbl.Points {
		if !op.Vector.IsZero() && op.Utility > 0 && op.Power > 0 {
			return true
		}
	}
	return false
}
