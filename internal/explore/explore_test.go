package explore

import (
	"errors"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/regress"
	"github.com/harp-rm/harp/internal/workload"
)

func odroidExplorer(cfg Config) *Explorer {
	return New(platform.OdroidXU3(), "app", cfg)
}

// measurePoint drives one full Next/Record cycle using the workload model as
// ground truth.
func measurePoint(t *testing.T, e *Explorer, prof *workload.Profile, caps []int) platform.ResourceVector {
	t.Helper()
	rv, err := e.Next(caps)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	ev := workload.EvaluateVector(e.plat, prof, rv)
	for {
		done, err := e.Record(ev.Utility, ev.PowerWatts)
		if err != nil {
			t.Fatalf("Record: %v", err)
		}
		if done {
			break
		}
	}
	return rv
}

func TestStageProgression(t *testing.T) {
	plat := platform.OdroidXU3()
	prof := &workload.Profile{
		Name: "x", Adaptivity: workload.Scalable, WorkGI: 100,
		MemBound: 0.3, DynamicLoad: true, Wait: workload.Block,
	}
	e := New(plat, "x", Config{MeasurementsPerPoint: 2, StableAfter: 10})
	if got := e.Stage(); got != StageInitial {
		t.Fatalf("fresh stage = %v, want initial", got)
	}
	caps := []int{4, 4}
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		rv := measurePoint(t, e, prof, caps)
		if seen[rv.Key()] {
			t.Errorf("configuration %v measured twice", rv)
		}
		seen[rv.Key()] = true
	}
	if got := e.Stage(); got != StageStable {
		t.Fatalf("stage after 10 points = %v, want stable", got)
	}
	if got := e.Table().MeasuredCount(); got != 10 {
		t.Errorf("measured count = %d, want 10", got)
	}
}

func TestNextRespectsBound(t *testing.T) {
	e := odroidExplorer(Config{MeasurementsPerPoint: 1})
	caps := []int{1, 2}
	for i := 0; i < 5; i++ {
		rv, err := e.Next(caps)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rv.Cores(0) > 1 || rv.Cores(1) > 2 {
			t.Fatalf("candidate %v exceeds caps %v", rv, caps)
		}
		if _, err := e.Record(1, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNextExhaustsCandidates(t *testing.T) {
	e := odroidExplorer(Config{MeasurementsPerPoint: 1, StableAfter: 100})
	caps := []int{1, 1} // 3 non-zero configs: (1,0), (0,1), (1,1)
	for i := 0; i < 3; i++ {
		if _, err := e.Next(caps); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if _, err := e.Record(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Next(caps); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestFirstPointIsFarthestFromZero(t *testing.T) {
	e := odroidExplorer(Config{})
	rv, err := e.Next([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// The farthest point from the zero anchor is the full configuration.
	if rv.Cores(0) != 4 || rv.Cores(1) != 4 {
		t.Errorf("first exploration point = %v, want the full bound [4|4]", rv)
	}
}

func TestRecordWithoutNext(t *testing.T) {
	e := odroidExplorer(Config{})
	if _, err := e.Record(1, 1); err == nil {
		t.Fatal("Record without Next accepted")
	}
}

func TestAbortDropsCurrent(t *testing.T) {
	e := odroidExplorer(Config{MeasurementsPerPoint: 5})
	if _, err := e.Next([]int{4, 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Current(); !ok {
		t.Fatal("no current after Next")
	}
	e.Abort()
	if _, ok := e.Current(); ok {
		t.Fatal("current survived Abort")
	}
	if _, err := e.Record(1, 1); err == nil {
		t.Fatal("Record after Abort accepted")
	}
}

func TestRecordAveragesMeasurements(t *testing.T) {
	e := odroidExplorer(Config{MeasurementsPerPoint: 4})
	rv, err := e.Next([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{10, 12, 8, 10}
	for i, v := range vals {
		done, err := e.Record(v, v/2)
		if err != nil {
			t.Fatal(err)
		}
		if (i == len(vals)-1) != done {
			t.Fatalf("done = %v at sample %d", done, i)
		}
	}
	op, ok := e.Table().Lookup(rv)
	if !ok {
		t.Fatal("measured point missing from table")
	}
	if op.Utility != 10 || op.Power != 5 {
		t.Errorf("point = (%g, %g), want (10, 5)", op.Utility, op.Power)
	}
	if op.Samples != 4 || !op.Measured {
		t.Errorf("point meta = %+v", op)
	}
}

func TestSeedTableSkipsToStable(t *testing.T) {
	plat := platform.OdroidXU3()
	prof := &workload.Profile{
		Name: "x", Adaptivity: workload.Scalable, WorkGI: 100,
		MemBound: 0.3, DynamicLoad: true, Wait: workload.Block,
	}
	offline := &opoint.Table{App: "x", Platform: plat.Name}
	for _, rv := range platform.EnumerateVectors(plat, 0) {
		ev := workload.EvaluateVector(plat, prof, rv)
		offline.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
	}
	e := New(plat, "x", Config{})
	e.SeedTable(offline)
	if got := e.Stage(); got != StageStable {
		t.Fatalf("stage after seeding %d points = %v, want stable", offline.MeasuredCount(), got)
	}
}

// PredictedTable must cover the whole platform once a model is available and
// approximate the true surface decently.
func TestPredictedTableCoversPlatform(t *testing.T) {
	plat := platform.OdroidXU3()
	prof := &workload.Profile{
		Name: "x", Adaptivity: workload.Scalable, WorkGI: 100,
		MemBound: 0.3, SerialFrac: 0.02, DynamicLoad: true, Wait: workload.Block,
	}
	e := New(plat, "x", Config{MeasurementsPerPoint: 1})
	caps := []int{4, 4}
	for i := 0; i < 8; i++ { // enough for refinement on 2 features (6 monomials)
		measurePoint(t, e, prof, caps)
	}
	if e.Stage() != StageRefinement {
		t.Fatalf("stage = %v, want refinement", e.Stage())
	}
	full := e.PredictedTable()
	all := platform.EnumerateVectors(plat, 0)
	if len(full.Points) != len(all) {
		t.Fatalf("predicted table has %d points, want %d", len(full.Points), len(all))
	}
	// Check prediction quality on a handful of configurations.
	var worst float64
	for _, rv := range all {
		op, ok := full.Lookup(rv)
		if !ok {
			t.Fatalf("missing prediction for %v", rv)
		}
		truth := workload.EvaluateVector(plat, prof, rv)
		if truth.Utility > 0 {
			rel := (op.Utility - truth.Utility) / truth.Utility
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
		if op.Power < 0 {
			t.Errorf("negative power prediction for %v", rv)
		}
	}
	if worst > 0.6 {
		t.Errorf("worst relative utility prediction error = %.0f%%, want < 60%%", 100*worst)
	}
}

// In the initial stage the allocator sees only measured points.
func TestPredictedTableInitialStage(t *testing.T) {
	e := odroidExplorer(Config{MeasurementsPerPoint: 1})
	measurePoint(t, e, &workload.Profile{
		Name: "x", Adaptivity: workload.Scalable, WorkGI: 100,
		DynamicLoad: true, Wait: workload.Block,
	}, []int{4, 4})
	tbl := e.PredictedTable()
	if got := len(tbl.Points); got != 1 {
		t.Fatalf("initial-stage predicted table has %d points, want 1", got)
	}
}

func TestStageString(t *testing.T) {
	tests := []struct {
		give Stage
		want string
	}{
		{StageInitial, "initial"},
		{StageRefinement, "refinement"},
		{StageStable, "stable"},
		{Stage(7), "stage(7)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d: %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

// negModel predicts a negative utility for one specific configuration and
// sane values elsewhere — rigging the refinement stage's first heuristic.
type negModel struct {
	fitted bool
}

func (m *negModel) Name() string { return "neg" }

func (m *negModel) Fit(x [][]float64, y []float64) error {
	m.fitted = true
	return nil
}

func (m *negModel) Predict(x []float64) (float64, error) {
	if !m.fitted {
		return 0, regress.ErrNotFitted
	}
	// The [4|4] configuration (features 4,4 on the Odroid) gets a negative
	// prediction; everything else a positive one.
	if x[0] == 4 && x[1] == 4 {
		return -100, nil
	}
	return 10, nil
}

// The refinement heuristic must prioritise configurations with negative
// predictions (§5.3).
func TestRefinementTargetsNegativePredictions(t *testing.T) {
	plat := platform.OdroidXU3()
	e := New(plat, "x", Config{
		MeasurementsPerPoint: 1,
		RefinementAfter:      2,
		StableAfter:          20,
		Model:                func() regress.Model { return &negModel{} },
	})
	caps := []int{4, 4}
	// Two quick measurements to enter the refinement stage, steering away
	// from the rigged configuration (the farthest-point stage would pick it
	// first otherwise).
	for _, key := range []string{"1|0", "0|1"} {
		rv, err := platform.ParseKey(plat, key)
		if err != nil {
			t.Fatal(err)
		}
		e.table.Upsert(opoint.OperatingPoint{Vector: rv, Utility: 5, Power: 1, Measured: true})
	}
	if e.Stage() != StageRefinement {
		t.Fatalf("stage = %v, want refinement", e.Stage())
	}
	rv, err := e.Next(caps)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Key() != "4|4" {
		t.Errorf("refinement picked %s, want the negative-prediction config 4|4", rv.Key())
	}
}
