// Package explore implements HARP's runtime exploration of operating points
// (§5.3): a per-application state machine that matures through three stages
// (initial → refinement → stable), choosing which configuration to measure
// next, folding 50 ms measurements into operating points, and predicting
// characteristics of unmeasured configurations with a regression model
// (degree-2 polynomial by default, per §5.2).
package explore

import (
	"errors"
	"fmt"
	"math"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/regress"
	"github.com/harp-rm/harp/internal/telemetry"
)

// Stage is the maturity of an application's operating-point table (§5.3).
type Stage int

// Stage values.
const (
	// StageInitial has too few measured points for even a preliminary model;
	// measurements are spread for diversity (farthest-point heuristic).
	StageInitial Stage = iota + 1
	// StageRefinement has a preliminary model that is still imprecise;
	// measurements target model anomalies and disagreements.
	StageRefinement
	// StageStable has enough explored configurations for reliable
	// approximation; the application simply runs on its allocation.
	StageStable
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageInitial:
		return "initial"
	case StageRefinement:
		return "refinement"
	case StageStable:
		return "stable"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// MarshalJSON renders the stage by name, so session listings serialized for
// harpctl read "stable" rather than a constant's value.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ErrNoCandidates is returned when no unmeasured configuration fits within
// the exploration bound.
var ErrNoCandidates = errors.New("explore: no candidate configurations within bound")

// Config tunes an Explorer. Zero values select the paper's parameters.
type Config struct {
	// MeasurementsPerPoint is how many samples are folded into one operating
	// point before moving on (paper: 20 at 50 ms intervals).
	MeasurementsPerPoint int
	// RefinementAfter is the number of measured points needed to fit a
	// preliminary model. Zero derives it from the model's parameter count.
	RefinementAfter int
	// StableAfter is the number of distinct measured configurations at which
	// the application enters the stable stage (paper: 25).
	StableAfter int
	// Model constructs the regression models for utility and power.
	// Nil selects degree-2 polynomial regression.
	Model regress.Factory
	// Tracer receives EvExplorationStep/EvTableUpdated events (nil disables).
	Tracer *telemetry.Tracer
	// Instance labels this explorer's trace events (the session instance).
	Instance string
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.MeasurementsPerPoint <= 0 {
		c.MeasurementsPerPoint = 20
	}
	if c.StableAfter <= 0 {
		c.StableAfter = 25
	}
	if c.Model == nil {
		c.Model = func() regress.Model { return regress.NewPolynomial(2) }
	}
	if c.RefinementAfter <= 0 {
		// Enough points to determine a degree-2 fit on this feature width.
		c.RefinementAfter = regress.NewPolynomial(2).MinSamples(nFeatures)
	}
	return c
}

// Explorer drives runtime exploration for one application.
type Explorer struct {
	plat  *platform.Platform
	cfg   Config
	table *opoint.Table

	current    platform.ResourceVector
	hasCurrent bool
	samples    int
	utilSum    float64
	powerSum   float64

	// predTable memoises PredictedTable for the table version it was built
	// from: between new measurements the models, and hence the predictions,
	// are unchanged, so the allocator can reuse the same table (and its
	// memoised Pareto front) across reallocations.
	predTable   *opoint.Table
	predVersion uint64
	predOK      bool
}

// New creates an explorer for the application on the given platform.
func New(plat *platform.Platform, app string, cfg Config) *Explorer {
	nf := len(platform.NewResourceVector(plat).Features())
	cfg = cfg.withDefaults(nf)
	// A platform whose whole configuration space is smaller than the stable
	// threshold is stable once the space is exhausted (the Odroid has only
	// 24 coarse configurations).
	if space := len(platform.EnumerateVectors(plat, 0)); space < cfg.StableAfter {
		cfg.StableAfter = space
	}
	return &Explorer{
		plat:  plat,
		cfg:   cfg,
		table: &opoint.Table{App: app, Platform: plat.Name},
	}
}

// SeedTable merges offline-generated operating points (e.g. from a
// description file) into the explorer's table as measured points.
func (e *Explorer) SeedTable(t *opoint.Table) {
	for _, op := range t.Points {
		op.Measured = true
		e.table.Upsert(op)
	}
}

// Table returns the live operating-point table (measured points only).
func (e *Explorer) Table() *opoint.Table { return e.table }

// Stage returns the application's maturity stage. Once stable, an
// application never regresses (§6.5: refinement continues but allocation
// treats it as stable).
func (e *Explorer) Stage() Stage {
	n := e.table.MeasuredCount()
	switch {
	case n >= e.cfg.StableAfter:
		return StageStable
	case n >= e.cfg.RefinementAfter:
		return StageRefinement
	default:
		return StageInitial
	}
}

// Current returns the configuration currently under measurement.
func (e *Explorer) Current() (platform.ResourceVector, bool) {
	if !e.hasCurrent {
		return platform.ResourceVector{}, false
	}
	return e.current.Clone(), true
}

// Next selects the next configuration to measure, bounded by the per-kind
// core caps the allocator granted this application. The chosen configuration
// becomes Current until enough measurements are recorded.
func (e *Explorer) Next(caps []int) (platform.ResourceVector, error) {
	candidates := e.unmeasured(caps)
	if len(candidates) == 0 {
		return platform.ResourceVector{}, ErrNoCandidates
	}

	var chosen platform.ResourceVector
	if e.Stage() == StageInitial || e.table.MeasuredCount() == 0 {
		chosen = e.farthestPoint(candidates)
	} else {
		var err error
		chosen, err = e.refinementPoint(candidates)
		if err != nil {
			chosen = e.farthestPoint(candidates)
		}
	}
	e.current = chosen.Clone()
	e.hasCurrent = true
	e.samples = 0
	e.utilSum = 0
	e.powerSum = 0
	if e.cfg.Tracer.Enabled() { // guard: Key() builds a string
		e.cfg.Tracer.Emit(telemetry.Event{
			Kind:     telemetry.EvExplorationStep,
			Instance: e.cfg.Instance,
			App:      e.table.App,
			Vector:   chosen.Key(),
			Stage:    e.Stage().String(),
			Seq:      len(candidates),
		})
	}
	return chosen, nil
}

// Record folds one measurement (already EMA-smoothed by the monitor) into
// the current configuration. It reports true when the point is complete and
// committed to the table.
func (e *Explorer) Record(utility, power float64) (done bool, err error) {
	if !e.hasCurrent {
		return false, errors.New("explore: Record without a current configuration")
	}
	e.samples++
	e.utilSum += utility
	e.powerSum += power
	if e.samples < e.cfg.MeasurementsPerPoint {
		return false, nil
	}
	n := float64(e.samples)
	e.table.Upsert(opoint.OperatingPoint{
		Vector:   e.current.Clone(),
		Utility:  e.utilSum / n,
		Power:    e.powerSum / n,
		Measured: true,
		Samples:  e.samples,
	})
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(telemetry.Event{
			Kind:     telemetry.EvTableUpdated,
			Instance: e.cfg.Instance,
			App:      e.table.App,
			Vector:   e.current.Key(),
			Stage:    e.Stage().String(),
			Seq:      e.table.MeasuredCount(),
			Utility:  e.utilSum / n,
			Power:    e.powerSum / n,
		})
	}
	e.hasCurrent = false
	return true, nil
}

// Abort drops the configuration under measurement (used when the allocator
// revokes resources mid-measurement).
func (e *Explorer) Abort() { e.hasCurrent = false }

// PredictedTable returns the table the allocator should use: all measured
// points plus model predictions for every unmeasured configuration on the
// whole platform. During the initial stage (no usable model) only measured
// points are returned.
//
// The result is memoised until the next measurement lands in the table, so
// repeated calls (one per reallocation) return the same table; callers must
// treat it as read-only.
func (e *Explorer) PredictedTable() *opoint.Table {
	if e.predOK && e.predVersion == e.table.Version() {
		return e.predTable
	}
	out := e.predictedTable()
	e.predTable = out
	e.predVersion = e.table.Version()
	e.predOK = true
	return out
}

// predictedTable builds the prediction table uncached.
func (e *Explorer) predictedTable() *opoint.Table {
	out := e.table.Clone()
	if e.Stage() == StageInitial {
		return out
	}
	uModel, pModel, err := e.fitModels(e.measuredPoints())
	if err != nil {
		return out
	}
	known := make(map[string]bool, len(e.table.Points))
	for _, op := range e.table.Points {
		known[op.Vector.Key()] = true
	}
	for _, rv := range platform.EnumerateVectors(e.plat, 0) {
		if known[rv.Key()] {
			continue
		}
		feats := rv.Features()
		u, uErr := uModel.Predict(feats)
		p, pErr := pModel.Predict(feats)
		if uErr != nil || pErr != nil {
			continue
		}
		if p < 0 {
			p = 0
		}
		out.Points = append(out.Points, opoint.OperatingPoint{Vector: rv, Utility: u, Power: p})
	}
	return out
}

// unmeasured lists configurations within caps that have no measured point.
func (e *Explorer) unmeasured(caps []int) []platform.ResourceVector {
	measured := make(map[string]bool, len(e.table.Points))
	for _, op := range e.table.Points {
		if op.Measured {
			measured[op.Vector.Key()] = true
		}
	}
	var out []platform.ResourceVector
	for _, rv := range platform.EnumerateVectorsWithin(e.plat, caps) {
		if measured[rv.Key()] {
			continue
		}
		out = append(out, rv)
	}
	return out
}

// farthestPoint implements the initial-stage heuristic: the candidate whose
// feature vector maximises the minimum distance to all measured
// configurations (the zero configuration counts as measured — it anchors the
// space).
func (e *Explorer) farthestPoint(candidates []platform.ResourceVector) platform.ResourceVector {
	measured := [][]float64{platform.NewResourceVector(e.plat).Features()}
	for _, op := range e.table.Points {
		if op.Measured {
			measured = append(measured, op.Vector.Features())
		}
	}
	best := candidates[0]
	bestDist := -1.0
	for _, rv := range candidates {
		feats := rv.Features()
		minDist := math.Inf(1)
		for _, m := range measured {
			minDist = math.Min(minDist, dist(feats, m))
		}
		if minDist > bestDist {
			bestDist = minDist
			best = rv
		}
	}
	return best
}

// refinementPoint implements the refinement-stage heuristic: first target
// configurations with negative predictions (largest geometric mean of the
// negative deviations), otherwise the largest disagreement between the
// primary model and a zero-anchored auxiliary model (§5.3).
func (e *Explorer) refinementPoint(candidates []platform.ResourceVector) (platform.ResourceVector, error) {
	measured := e.measuredPoints()
	uPrimary, pPrimary, err := e.fitModels(measured)
	if err != nil {
		return platform.ResourceVector{}, err
	}

	// 1) Negative-prediction repair.
	var best platform.ResourceVector
	bestScore := 0.0
	found := false
	for _, rv := range candidates {
		feats := rv.Features()
		u, uErr := uPrimary.Predict(feats)
		p, pErr := pPrimary.Predict(feats)
		if uErr != nil || pErr != nil {
			continue
		}
		negU := math.Max(0, -u)
		negP := math.Max(0, -p)
		if negU == 0 && negP == 0 {
			continue
		}
		score := mathx.GeoMean([]float64{negU, negP})
		if score > bestScore {
			bestScore = score
			best = rv
			found = true
		}
	}
	if found {
		return best, nil
	}

	// 2) Disagreement with the zero-anchored auxiliary model.
	anchored := append(measuredSamples(measured), sample{
		feats: platform.NewResourceVector(e.plat).Features(),
	})
	uAux, pAux, err := fitOn(e.cfg.Model, anchored)
	if err != nil {
		return platform.ResourceVector{}, err
	}
	bestScore = -1
	for _, rv := range candidates {
		feats := rv.Features()
		u1, err1 := uPrimary.Predict(feats)
		p1, err2 := pPrimary.Predict(feats)
		u2, err3 := uAux.Predict(feats)
		p2, err4 := pAux.Predict(feats)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			continue
		}
		score := mathx.GeoMean([]float64{math.Abs(u1 - u2), math.Abs(p1 - p2)})
		if score > bestScore {
			bestScore = score
			best = rv
		}
	}
	if bestScore < 0 {
		return platform.ResourceVector{}, ErrNoCandidates
	}
	return best, nil
}

type sample struct {
	feats   []float64
	utility float64
	power   float64
}

func (e *Explorer) measuredPoints() []sample {
	var out []sample
	for _, op := range e.table.Points {
		if op.Measured {
			out = append(out, sample{feats: op.Vector.Features(), utility: op.Utility, power: op.Power})
		}
	}
	return out
}

func measuredSamples(s []sample) []sample {
	out := make([]sample, len(s))
	copy(out, s)
	return out
}

func (e *Explorer) fitModels(samples []sample) (utility, power regress.Model, err error) {
	return fitOn(e.cfg.Model, samples)
}

func fitOn(factory regress.Factory, samples []sample) (utility, power regress.Model, err error) {
	if len(samples) == 0 {
		return nil, nil, regress.ErrTooFewSamples
	}
	xs := make([][]float64, len(samples))
	us := make([]float64, len(samples))
	ps := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.feats
		us[i] = s.utility
		ps[i] = s.power
	}
	uModel := factory()
	if err := uModel.Fit(xs, us); err != nil {
		return nil, nil, fmt.Errorf("explore: utility model: %w", err)
	}
	pModel := factory()
	if err := pModel.Fit(xs, ps); err != nil {
		return nil, nil, fmt.Errorf("explore: power model: %w", err)
	}
	return uModel, pModel, nil
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
