package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// AttributionRow is one application's attributed-versus-true dynamic energy
// within a multi-application scenario.
type AttributionRow struct {
	Scenario    string
	App         string
	TrueJ       float64
	AttributedJ float64
	ErrPercent  float64
}

// AttributionResult reproduces the §5.1 validation of the EnergAt-style
// attribution with per-kind power coefficients (Eq. 3). The paper reports an
// overall MAPE of 8.76 % against isolated executions; here the simulator
// provides the exact per-process dynamic energy as ground truth.
type AttributionResult struct {
	Rows []AttributionRow
	MAPE float64
}

// Attribution runs multi-application scenarios under HARP (Offline) and
// compares the monitor's per-application energy attribution against the
// simulator's ground truth.
func Attribution(cfg Config) (*AttributionResult, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	scenarios := [][]string{
		{"cg.C", "mg.C"},
		{"ep.C", "ft.C"},
		{"ft.C", "mg.C", "cg.C"},
		{"bt.C", "cg.C", "ft.C", "is.C"},
	}
	if cfg.Quick {
		scenarios = scenarios[:2]
	}
	offline := harpsim.OfflineDSETablesParallel(plat, suite, cfg.Parallelism)

	scs := make([]harpsim.Scenario, len(scenarios))
	for i, names := range scenarios {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}
	runs, err := parallel.Map(cfg.Parallelism, len(scs), func(i int) (*harpsim.Result, error) {
		return harpsim.Run(scs[i], harpsim.Options{
			Policy:        harpsim.PolicyHARPOffline,
			OfflineTables: offline,
			Seed:          cfg.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	res := &AttributionResult{}
	var truths, attrs []float64
	for i, run := range runs {
		// Iterate the per-app results in sorted order: the Apps map has no
		// deterministic range order, and the MAPE sums in row order.
		apps := make([]string, 0, len(run.Apps))
		for app := range run.Apps {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			ar := run.Apps[app]
			if ar.DynEnergyJ <= 0 || ar.AttributedEnergyJ <= 0 {
				continue
			}
			truths = append(truths, ar.DynEnergyJ)
			attrs = append(attrs, ar.AttributedEnergyJ)
			res.Rows = append(res.Rows, AttributionRow{
				Scenario:    scs[i].Name,
				App:         app,
				TrueJ:       ar.DynEnergyJ,
				AttributedJ: ar.AttributedEnergyJ,
				ErrPercent:  100 * math.Abs(ar.AttributedEnergyJ-ar.DynEnergyJ) / ar.DynEnergyJ,
			})
		}
	}
	res.MAPE = mathx.MAPE(truths, attrs)
	return res, nil
}

// Format writes the attribution validation table.
func (r *AttributionResult) Format(w io.Writer) {
	writeHeader(w, "§5.1: per-application energy attribution validation")
	fmt.Fprintf(w, "%-26s %-10s %12s %12s %8s\n", "scenario", "app", "true[J]", "attr[J]", "err")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s %-10s %12.1f %12.1f %7.1f%%\n",
			row.Scenario, row.App, row.TrueJ, row.AttributedJ, row.ErrPercent)
	}
	fmt.Fprintf(w, "\noverall MAPE: %.2f%% (paper: 8.76%%)\n", r.MAPE)
}
