package experiments

import (
	"fmt"
	"io"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// OverheadRow is one scenario's management overhead: HARP fully active
// (monitoring, exploration, communication) but with activation messages
// dropped in libharp, so applications remain CFS-scheduled (§6.6).
type OverheadRow struct {
	Scenario        string
	Multi           bool
	CFSMakespanSec  float64
	OverheadPercent float64
}

// OverheadResult reproduces §6.6: HARP introduces < 1 % overhead for single
// applications and ≈ 2.5 % in multi-application scenarios.
type OverheadResult struct {
	Rows       []OverheadRow
	SingleMean float64
	MultiMean  float64
}

// Overhead runs the overhead measurement.
func Overhead(cfg Config) (*OverheadResult, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	singles := []string{"ep.C", "ft.C", "mg.C", "lu.C", "binpack", "vgg"}
	multis := [][]string{
		{"cg.C", "mg.C"},
		{"ft.C", "mg.C", "cg.C"},
		{"bt.C", "cg.C", "ft.C", "is.C"},
		{"ep.C", "cg.C", "ft.C", "mg.C", "sp.C"},
	}
	if cfg.Quick {
		singles = []string{"ft.C"}
		multis = [][]string{{"cg.C", "mg.C", "ft.C"}}
	}

	type scMeta struct {
		sc    harpsim.Scenario
		multi bool
	}
	var metas []scMeta
	for _, name := range singles {
		sc, err := scenarioOf(plat, suite, name)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, false})
	}
	for _, names := range multis {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, true})
	}

	// Scenario × policy units (CFS baseline, HARP with adaptation dropped).
	base := harpsim.Options{Seed: cfg.Seed}
	runs, err := parallel.Map(cfg.Parallelism, len(metas)*2, func(u int) (*harpsim.Result, error) {
		sc := metas[u/2].sc
		if u%2 == 0 {
			return harpsim.Run(sc, withPolicy(base, harpsim.PolicyCFS))
		}
		return harpsim.Run(sc, withPolicy(base, harpsim.PolicyHARPOverhead))
	})
	if err != nil {
		return nil, err
	}

	res := &OverheadResult{}
	for s, m := range metas {
		cfs, ovh := runs[2*s], runs[2*s+1]
		res.Rows = append(res.Rows, OverheadRow{
			Scenario:        m.sc.Name,
			Multi:           m.multi,
			CFSMakespanSec:  cfs.MakespanSec,
			OverheadPercent: 100 * (ovh.MakespanSec/cfs.MakespanSec - 1),
		})
	}

	var single, multi []float64
	for _, row := range res.Rows {
		if row.Multi {
			multi = append(multi, row.OverheadPercent)
		} else {
			single = append(single, row.OverheadPercent)
		}
	}
	res.SingleMean = mathx.Mean(single)
	res.MultiMean = mathx.Mean(multi)
	return res, nil
}

// Format writes the overhead table.
func (r *OverheadResult) Format(w io.Writer) {
	writeHeader(w, "§6.6: HARP management overhead (adaptation dropped in libharp)")
	fmt.Fprintf(w, "%-28s %10s %10s\n", "scenario", "CFS[s]", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %10.2f %9.2f%%\n", row.Scenario, row.CFSMakespanSec, row.OverheadPercent)
	}
	fmt.Fprintf(w, "\naverage: single %.2f%% (paper: < 1%%), multi %.2f%% (paper: ≈ 2.5%%)\n",
		r.SingleMean, r.MultiMean)
}
