package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/alloc"
	"github.com/harp-rm/harp/internal/explore"
	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/regress"
	"github.com/harp-rm/harp/internal/workload"
)

// AllocAblationRow compares the MMKP solvers on one application mix.
type AllocAblationRow struct {
	Scenario        string
	LagrangianCost  float64
	GreedyCost      float64
	LagrangianCoAll int
	GreedyCoAll     int
	LagrangianUs    float64
	GreedyUs        float64
}

// AllocAblationResult compares the Lagrangian-relaxation solver against the
// greedy baseline (design decision 2 in DESIGN.md).
type AllocAblationResult struct {
	Rows []AllocAblationRow
}

// AllocAblation runs the solver comparison on Intel application mixes.
func AllocAblation(cfg Config) (*AllocAblationResult, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()
	tables := harpsim.OfflineDSETablesParallel(plat, suite, cfg.Parallelism)

	mixes := [][]string{
		{"ep.C", "mg.C"},
		{"ft.C", "mg.C", "cg.C"},
		{"bt.C", "cg.C", "ft.C", "is.C", "lu.C"},
		{"ep.C", "cg.C", "ft.C", "mg.C", "sp.C", "ua.C", "bt.C"},
	}
	if cfg.Quick {
		mixes = mixes[:2]
	}

	// One unit per application mix; each unit runs both solvers. The shared
	// offline tables are only read (their derived-data caches are
	// mutex-guarded), so concurrent mixes cannot influence each other.
	rows, err := parallel.Map(cfg.Parallelism, len(mixes), func(i int) (AllocAblationRow, error) {
		names := mixes[i]
		label := names[0]
		inputs := make([]alloc.AppInput, 0, len(names))
		for j, n := range names {
			if j > 0 {
				label += "+" + n
			}
			inputs = append(inputs, alloc.AppInput{ID: n, Table: tables[n]})
		}
		row := AllocAblationRow{Scenario: label}
		for _, method := range []alloc.Method{alloc.Lagrangian, alloc.Greedy} {
			a, err := alloc.New(plat, alloc.WithMethod(method))
			if err != nil {
				return row, err
			}
			start := time.Now()
			allocs, err := a.Allocate(inputs)
			if err != nil {
				return row, err
			}
			elapsed := float64(time.Since(start).Microseconds())
			cost := alloc.TotalCost(allocs, inputs)
			var coAll int
			for _, al := range allocs {
				if al.CoAllocated {
					coAll++
				}
			}
			if method == alloc.Lagrangian {
				row.LagrangianCost, row.LagrangianCoAll, row.LagrangianUs = cost, coAll, elapsed
			} else {
				row.GreedyCost, row.GreedyCoAll, row.GreedyUs = cost, coAll, elapsed
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AllocAblationResult{Rows: rows}, nil
}

// Format writes the allocator ablation table.
func (r *AllocAblationResult) Format(w io.Writer) {
	writeHeader(w, "Ablation: MMKP solver — Lagrangian relaxation vs greedy")
	fmt.Fprintf(w, "%-44s %12s %12s %6s %6s %9s %9s\n",
		"mix", "lagr cost", "greedy cost", "l-co", "g-co", "lagr[µs]", "grdy[µs]")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-44s %12.1f %12.1f %6d %6d %9.0f %9.0f\n",
			row.Scenario, row.LagrangianCost, row.GreedyCost,
			row.LagrangianCoAll, row.GreedyCoAll, row.LagrangianUs, row.GreedyUs)
	}
}

// ExploreAblationRow compares exploration strategies after a point budget.
type ExploreAblationRow struct {
	App            string
	Budget         int
	HeuristicIGD   float64
	EnumerationIGD float64
	// HeuristicMAPE and EnumerationMAPE measure the predicted table's
	// utility accuracy across the whole configuration space — the global
	// model quality the exploration heuristic targets.
	HeuristicMAPE   float64
	EnumerationMAPE float64
}

// ExploreAblationResult compares HARP's exploration heuristics (farthest
// point + model-discrepancy targeting, §5.3) against naive in-order
// measurement of the configuration space: after an equal measurement budget,
// how close is the table the allocator sees to the true Pareto front (IGD)
// and to the true characteristics overall (MAPE)? In-order enumeration
// happens to cover the small-allocation corner where bandwidth-bound fronts
// live, so its IGD can look good per-app; the heuristic's diversity is what
// keeps the *global* model accurate.
type ExploreAblationResult struct {
	Rows []ExploreAblationRow
	// Means across apps.
	HeuristicMean, EnumerationMean         float64
	HeuristicMAPEMean, EnumerationMAPEMean float64
}

// ExploreAblation runs the exploration-strategy comparison.
func ExploreAblation(cfg Config) (*ExploreAblationResult, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	apps := []string{"ep.C", "mg.C", "ft.C", "lu.C", "seismic", "vgg"}
	if cfg.Quick {
		apps = apps[:3]
	}
	const budget = 25 // points measured before the stable stage (§5.3)
	suite := workload.IntelApps()
	caps := []int{8, 16}

	// One unit per application; each runs both exploration strategies against
	// its own ground-truth table.
	rows, err := parallel.Map(cfg.Parallelism, len(apps), func(i int) (ExploreAblationRow, error) {
		name := apps[i]
		prof, err := workload.ByName(suite, name)
		if err != nil {
			return ExploreAblationRow{}, err
		}
		truth := harpsim.OfflineDSETablesParallel(plat, []*workload.Profile{prof}, 1)[name]

		// Strategy A: HARP's heuristics.
		heur := explore.New(plat, name, explore.Config{MeasurementsPerPoint: 1, StableAfter: budget})
		for i := 0; i < budget; i++ {
			rv, err := heur.Next(caps)
			if err != nil {
				break
			}
			ev := workload.EvaluateVector(plat, prof, rv)
			if _, err := heur.Record(ev.Utility, ev.PowerWatts); err != nil {
				return ExploreAblationRow{}, err
			}
		}
		// Strategy B: measure the first `budget` configurations in
		// enumeration order, then predict the rest with the same model.
		enum := explore.New(plat, name, explore.Config{MeasurementsPerPoint: 1, StableAfter: budget})
		seed := &opoint.Table{App: name, Platform: plat.Name}
		for i, rv := range platform.EnumerateVectors(plat, 0) {
			if i >= budget {
				break
			}
			ev := workload.EvaluateVector(plat, prof, rv)
			seed.Upsert(opoint.OperatingPoint{Vector: rv, Utility: ev.Utility, Power: ev.PowerWatts})
		}
		enum.SeedTable(seed)

		hPred := heur.PredictedTable()
		ePred := enum.PredictedTable()
		return ExploreAblationRow{
			App: name, Budget: budget,
			HeuristicIGD: tableIGD(truth, hPred), EnumerationIGD: tableIGD(truth, ePred),
			HeuristicMAPE: tableMAPE(truth, hPred), EnumerationMAPE: tableMAPE(truth, ePred),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ExploreAblationResult{Rows: rows}
	var hs, es, hm, em []float64
	for _, row := range rows {
		hs = append(hs, row.HeuristicIGD)
		es = append(es, row.EnumerationIGD)
		hm = append(hm, row.HeuristicMAPE)
		em = append(em, row.EnumerationMAPE)
	}
	res.HeuristicMean = mathx.Mean(hs)
	res.EnumerationMean = mathx.Mean(es)
	res.HeuristicMAPEMean = mathx.Mean(hm)
	res.EnumerationMAPEMean = mathx.Mean(em)
	return res, nil
}

// tableMAPE measures the predicted table's utility error against the truth
// over every configuration.
func tableMAPE(truth, predicted *opoint.Table) float64 {
	keyed := make(map[string]float64, len(predicted.Points))
	for _, op := range predicted.Points {
		keyed[op.Vector.Key()] = op.Utility
	}
	var want, got []float64
	for _, op := range truth.Points {
		p, ok := keyed[op.Vector.Key()]
		if !ok {
			continue
		}
		want = append(want, op.Utility)
		got = append(got, p)
	}
	return mathx.MAPE(want, got)
}

// tableIGD compares two tables' (utility, power) Pareto fronts.
func tableIGD(truth, predicted *opoint.Table) float64 {
	tu, tp := tableObjectives(truth)
	pu, pp := tableObjectives(predicted)
	refIdx := regress.ParetoIndices(tu, tp)
	prIdx := regress.ParetoIndices(pu, pp)
	// Evaluate the predicted front at the *true* characteristics of the
	// selected vectors — what matters is which configurations get picked.
	keyed := make(map[string]int, len(truth.Points))
	for i, op := range truth.Points {
		keyed[op.Vector.Key()] = i
	}
	var prTrueU, prTrueP []float64
	for _, i := range prIdx {
		if j, ok := keyed[predicted.Points[i].Vector.Key()]; ok {
			prTrueU = append(prTrueU, tu[j])
			prTrueP = append(prTrueP, tp[j])
		}
	}
	var refU, refP []float64
	for _, i := range refIdx {
		refU = append(refU, tu[i])
		refP = append(refP, tp[i])
	}
	return regress.IGD(refU, refP, prTrueU, prTrueP)
}

func tableObjectives(t *opoint.Table) (utility, power []float64) {
	utility = make([]float64, len(t.Points))
	power = make([]float64, len(t.Points))
	for i, op := range t.Points {
		utility[i] = op.Utility
		power[i] = op.Power
	}
	return utility, power
}

// Format writes the exploration ablation table.
func (r *ExploreAblationResult) Format(w io.Writer) {
	writeHeader(w, "Ablation: exploration heuristics vs in-order enumeration (lower is better)")
	fmt.Fprintf(w, "%-12s %8s %11s %11s %12s %12s\n",
		"app", "budget", "heur IGD", "enum IGD", "heur MAPE%", "enum MAPE%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %8d %11.4f %11.4f %12.1f %12.1f\n",
			row.App, row.Budget, row.HeuristicIGD, row.EnumerationIGD,
			row.HeuristicMAPE, row.EnumerationMAPE)
	}
	fmt.Fprintf(w, "mean IGD: heuristic %.4f vs enumeration %.4f; mean MAPE: %.1f%% vs %.1f%%\n",
		r.HeuristicMean, r.EnumerationMean, r.HeuristicMAPEMean, r.EnumerationMAPEMean)
}
