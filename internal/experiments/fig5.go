package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/regress"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig5Cell is one (model, training-size) aggregate across applications and
// seeds.
type Fig5Cell struct {
	Model       string
	TrainSize   int
	MAPEIPS     float64
	MAPEPower   float64
	IGD         float64
	CommonRatio float64
}

// Fig5Result reproduces Fig. 5: regression-model comparison on 15
// applications measured on the Intel Raptor Lake.
type Fig5Result struct {
	Cells []Fig5Cell
	// TrainSizes and Models index the cells.
	TrainSizes []int
	Models     []string
}

// Fig5 evaluates polynomial (degrees 1–3), neural-network and SVM models on
// ground-truth characteristic tables, training on random subsets of several
// sizes with multiple seeds (the paper uses 15 apps × 10 seeds).
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	apps := workload.IntelApps()[:15]
	sizes := []int{10, 15, 20, 30, 50, 80}
	seeds := 10
	models := []string{"poly1", "poly2", "poly3", "nn", "svm"}
	if cfg.Quick {
		apps = apps[:4]
		sizes = []int{10, 20, 40}
		seeds = 3
	}

	// Ground-truth tables: utility (IPS) and power per configuration, with
	// mild measurement noise as a real profiling pass would have.
	vecs := platform.EnumerateVectors(plat, 0)
	features := make([][]float64, len(vecs))
	for i, rv := range vecs {
		features[i] = rv.Features()
	}
	type truth struct{ ips, power []float64 }
	noise := rand.New(rand.NewSource(cfg.Seed + 17))
	truths := make([]truth, len(apps))
	for a, prof := range apps {
		t := truth{ips: make([]float64, len(vecs)), power: make([]float64, len(vecs))}
		for i, rv := range vecs {
			ev := workload.EvaluateVector(plat, prof, rv)
			t.ips[i] = ev.IPS * (1 + 0.02*noise.NormFloat64())
			t.power[i] = ev.PowerWatts * (1 + 0.02*noise.NormFloat64())
		}
		truths[a] = t
	}

	registry := regress.Registry(cfg.Seed + 99)
	res := &Fig5Result{TrainSizes: sizes, Models: models}

	// Fan the full model × size × app × seed grid across the pool. Every
	// unit trains fresh model instances from a deterministic seed, and the
	// results are aggregated positionally in grid order below, so the means
	// sum in exactly the sequential order (bit-identical aggregates).
	type fit struct {
		cell Fig5Cell
		ok   bool
	}
	perCell := len(apps) * seeds
	n := len(models) * len(sizes) * perCell
	fits, err := parallel.Map(cfg.Parallelism, n, func(u int) (fit, error) {
		mi := u / (len(sizes) * perCell)
		si := u / perCell % len(sizes)
		a := u / seeds % len(apps)
		seed := u % seeds
		cell, ok := fig5One(registry[models[mi]], features, truths[a].ips, truths[a].power,
			sizes[si], cfg.Seed+int64(seed)*1000+int64(a))
		return fit{cell, ok}, nil
	})
	if err != nil {
		return nil, err
	}

	for mi, modelName := range models {
		for si, size := range sizes {
			var mapeIPS, mapePower, igd, common []float64
			base := (mi*len(sizes) + si) * perCell
			for _, f := range fits[base : base+perCell] {
				if !f.ok {
					continue
				}
				mapeIPS = append(mapeIPS, f.cell.MAPEIPS)
				mapePower = append(mapePower, f.cell.MAPEPower)
				if !math.IsNaN(f.cell.IGD) {
					igd = append(igd, f.cell.IGD)
				}
				if !math.IsNaN(f.cell.CommonRatio) {
					common = append(common, f.cell.CommonRatio)
				}
			}
			res.Cells = append(res.Cells, Fig5Cell{
				Model:       modelName,
				TrainSize:   size,
				MAPEIPS:     mathx.Mean(mapeIPS),
				MAPEPower:   mathx.Mean(mapePower),
				IGD:         mathx.Mean(igd),
				CommonRatio: mathx.Mean(common),
			})
		}
	}
	return res, nil
}

// fig5One trains one model pair on one subset and computes all four metrics.
func fig5One(factory regress.Factory, features [][]float64, ips, power []float64, size int, seed int64) (Fig5Cell, bool) {
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(features))
	if size > len(features) {
		size = len(features)
	}
	trainX := make([][]float64, size)
	trainIPS := make([]float64, size)
	trainPower := make([]float64, size)
	for i := 0; i < size; i++ {
		trainX[i] = features[idx[i]]
		trainIPS[i] = ips[idx[i]]
		trainPower[i] = power[idx[i]]
	}

	mIPS := factory()
	if err := mIPS.Fit(trainX, trainIPS); err != nil {
		return Fig5Cell{}, false
	}
	mPower := factory()
	if err := mPower.Fit(trainX, trainPower); err != nil {
		return Fig5Cell{}, false
	}

	predIPS := make([]float64, len(features))
	predPower := make([]float64, len(features))
	for i, x := range features {
		u, err1 := mIPS.Predict(x)
		p, err2 := mPower.Predict(x)
		if err1 != nil || err2 != nil {
			return Fig5Cell{}, false
		}
		predIPS[i] = u
		predPower[i] = p
	}

	refFront := regress.ParetoIndices(ips, power)
	predFront := regress.ParetoIndices(predIPS, predPower)
	refU, refP := pick(ips, refFront), pick(power, refFront)
	prU, prP := pick(predIPS, predFront), pick(predPower, predFront)

	return Fig5Cell{
		MAPEIPS:     mathx.MAPE(ips, predIPS),
		MAPEPower:   mathx.MAPE(power, predPower),
		IGD:         regress.IGD(refU, refP, prU, prP),
		CommonRatio: regress.CommonRatio(refFront, predFront),
	}, true
}

func pick(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// Cell returns the aggregate for (model, size).
func (r *Fig5Result) Cell(model string, size int) (Fig5Cell, bool) {
	for _, c := range r.Cells {
		if c.Model == model && c.TrainSize == size {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// Format writes the Fig. 5 table.
func (r *Fig5Result) Format(w io.Writer) {
	writeHeader(w, "Figure 5: regression models — MAPE(IPS), MAPE(Power), IGD, common Pareto ratio")
	sizes := append([]int(nil), r.TrainSizes...)
	sort.Ints(sizes)
	for _, metric := range []string{"MAPE IPS [%]", "MAPE Power [%]", "IGD", "common ratio"} {
		fmt.Fprintf(w, "\n%s\n%-8s", metric, "model")
		for _, s := range sizes {
			fmt.Fprintf(w, "%10s", fmt.Sprintf("n=%d", s))
		}
		fmt.Fprintln(w)
		for _, m := range r.Models {
			fmt.Fprintf(w, "%-8s", m)
			for _, s := range sizes {
				c, ok := r.Cell(m, s)
				if !ok {
					fmt.Fprintf(w, "%10s", "-")
					continue
				}
				var v float64
				switch metric {
				case "MAPE IPS [%]":
					v = c.MAPEIPS
				case "MAPE Power [%]":
					v = c.MAPEPower
				case "IGD":
					v = c.IGD
				default:
					v = c.CommonRatio
				}
				fmt.Fprintf(w, "%10.3f", v)
			}
			fmt.Fprintln(w)
		}
	}
}
