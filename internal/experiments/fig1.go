package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig1Point is one configuration of the Fig. 1 sweep: an application run on
// a specific thread distribution across E-cores and P-hyperthreads.
type Fig1Point struct {
	// Vector is the extended resource vector.
	Vector platform.ResourceVector
	// PHyperthreads and ECores are Fig. 1's axes.
	PHyperthreads int
	ECores        int
	// TimeSec and EnergyJ are the execution characteristics (dot size and
	// colour in the paper's plot).
	TimeSec float64
	EnergyJ float64
	// Pareto marks the 4-objective Pareto-optimal configurations (green
	// rings): execution time, energy, P-cores, E-cores, all minimised.
	Pareto bool
}

// Fig1App is the sweep of one application.
type Fig1App struct {
	App    string
	Points []Fig1Point
}

// Fig1Result reproduces Fig. 1: performance and energy of ep.C and mg.C on
// the Intel Raptor Lake across the full coarse configuration space.
type Fig1Result struct {
	Apps []Fig1App
}

// Fig1 runs the configuration sweep. Like the paper's measured data, each
// configuration carries a little run-to-run noise; on the smooth analytic
// surfaces this is what keeps the 4-objective front selective.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()
	names := []string{"ep.C", "mg.C"}
	noise := rand.New(rand.NewSource(cfg.Seed + 1))

	// Fig. 1's axes are thread distributions: #E-cores (x) versus
	// #P-hyperthreads (y). For a given P-hyperthread count, threads pack
	// onto ⌈pht/2⌉ P-cores (pairs first, plus one single-thread core for
	// odd counts).
	//
	// The run-to-run noise comes from one shared RNG stream, so the draws are
	// made sequentially in sweep order here; only the (deterministic) model
	// evaluations fan out across the pool.
	type unit struct {
		prof   *workload.Profile
		pht, e int
		tNoise float64
		eNoise float64
	}
	var units []unit
	for _, name := range names {
		prof, err := workload.ByName(suite, name)
		if err != nil {
			return nil, err
		}
		for pht := 0; pht <= 16; pht++ {
			for e := 0; e <= 16; e++ {
				if pht == 0 && e == 0 {
					continue
				}
				units = append(units, unit{
					prof: prof, pht: pht, e: e,
					tNoise: 1 + 0.015*noise.NormFloat64(),
					eNoise: 1 + 0.015*noise.NormFloat64(),
				})
			}
		}
	}

	points, err := parallel.Map(cfg.Parallelism, len(units), func(i int) (Fig1Point, error) {
		u := units[i]
		rv, err := platform.VectorOf(plat, []int{u.pht % 2, u.pht / 2}, []int{u.e})
		if err != nil {
			return Fig1Point{}, err
		}
		ev := workload.EvaluateVector(plat, u.prof, rv)
		return Fig1Point{
			Vector:        rv,
			PHyperthreads: u.pht,
			ECores:        u.e,
			TimeSec:       ev.TimeSec * u.tNoise,
			EnergyJ:       ev.EnergyJ * u.eNoise,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{}
	perApp := len(units) / len(names)
	for a, name := range names {
		app := Fig1App{App: name, Points: points[a*perApp : (a+1)*perApp]}
		markFig1Pareto(app.Points)
		res.Apps = append(res.Apps, app)
	}
	return res, nil
}

// markFig1Pareto flags the 4-objective Pareto set.
func markFig1Pareto(points []Fig1Point) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	front := opoint.Pareto(idx, func(i int) []float64 {
		p := points[i]
		return []float64{
			p.TimeSec,
			p.EnergyJ,
			float64(p.Vector.Cores(0)),
			float64(p.Vector.Cores(1)),
		}
	})
	for _, i := range front {
		points[i].Pareto = true
	}
}

// ParetoPoints returns an app's Pareto configurations sorted by time.
func (a Fig1App) ParetoPoints() []Fig1Point {
	var out []Fig1Point
	for _, p := range a.Points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeSec < out[j].TimeSec })
	return out
}

// Format writes the Fig. 1 summary: the Pareto fronts plus the qualitative
// observations the paper draws from the plot.
func (r *Fig1Result) Format(w io.Writer) {
	writeHeader(w, "Figure 1: configuration sweep of ep.C and mg.C — Intel Raptor Lake")
	const maxRows = 25
	for _, app := range r.Apps {
		front := app.ParetoPoints()
		fmt.Fprintf(w, "\n%s: %d configurations, %d Pareto-optimal (showing up to %d by time)\n",
			app.App, len(app.Points), len(front), maxRows)
		fmt.Fprintf(w, "%-12s %6s %8s %10s %10s\n", "vector", "P-HT", "E-cores", "time[s]", "energy[J]")
		for i, p := range front {
			if i >= maxRows {
				fmt.Fprintf(w, "… %d more\n", len(front)-maxRows)
				break
			}
			fmt.Fprintf(w, "%-12s %6d %8d %10.2f %10.1f\n",
				p.Vector.Key(), p.PHyperthreads, p.ECores, p.TimeSec, p.EnergyJ)
		}
	}
	fmt.Fprintln(w, "\nObservations to check against the paper:")
	for _, app := range r.Apps {
		front := app.ParetoPoints()
		evenP, mixed, eOnly := 0, 0, 0
		for _, p := range front {
			if p.PHyperthreads > 0 && p.PHyperthreads%2 == 0 {
				evenP++
			}
			if p.PHyperthreads > 0 && p.ECores > 0 {
				mixed++
			}
			if p.PHyperthreads == 0 {
				eOnly++
			}
		}
		fmt.Fprintf(w, "  %s: %d/%d front points use an even P-HT count, %d mix P+E, %d are E-only\n",
			app.App, evenP, len(front), mixed, eOnly)
	}
}
