package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig6Labels are the resource managers compared against CFS in Fig. 6.
var Fig6Labels = []string{"itd", "harp", "harp-offline", "harp-noscaling"}

// Fig6Row is one scenario's improvement factors over CFS.
type Fig6Row struct {
	Scenario       string
	Multi          bool
	CFSMakespanSec float64
	CFSEnergyJ     float64
	Factors        map[string]Factor
}

// Fig6Result reproduces Fig. 6: relative improvement of HARP and ITD over
// CFS on the Intel Raptor Lake, single- and multi-application scenarios.
type Fig6Result struct {
	Rows []Fig6Row
	// GeoSingle and GeoMulti are the per-label geometric means, matching
	// the paper's summary columns.
	GeoSingle map[string]Factor
	GeoMulti  map[string]Factor
}

// IntelSingleScenarioNames lists the Fig. 6 single-application scenarios.
func IntelSingleScenarioNames() []string {
	return []string{
		"bt.C", "cg.C", "ep.C", "ft.C", "is.C", "lu.C", "mg.C", "sp.C", "ua.C",
		"binpack", "fractal", "parallel-preorder", "pi", "primes", "seismic",
		"vgg", "alexnet",
	}
}

// IntelMultiScenarioNames lists the Fig. 6 multi-application scenarios.
func IntelMultiScenarioNames() [][]string {
	return [][]string{
		{"is.C", "lu.C"},
		{"cg.C", "mg.C"},
		{"ep.C", "ft.C"},
		{"bt.C", "sp.C"},
		{"binpack", "pi"},
		{"vgg", "alexnet"},
		{"ft.C", "mg.C", "cg.C"},
		{"ep.C", "lu.C", "ua.C"},
		{"bt.C", "cg.C", "ft.C", "is.C"},
		{"ep.C", "cg.C", "ft.C", "mg.C", "sp.C"},
	}
}

// Fig6 runs the Intel evaluation.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	singles := IntelSingleScenarioNames()
	multis := IntelMultiScenarioNames()
	if cfg.Quick {
		singles = []string{"ep.C", "mg.C", "binpack", "ft.C"}
		multis = [][]string{{"cg.C", "mg.C"}, {"ft.C", "mg.C", "cg.C"}}
	}

	offline := harpsim.OfflineDSETablesParallel(plat, suite, cfg.Parallelism)

	type scMeta struct {
		sc    harpsim.Scenario
		multi bool
	}
	var metas []scMeta
	for _, name := range singles {
		sc, err := scenarioOf(plat, suite, name)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, false})
	}
	for _, names := range multis {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, true})
	}

	// Fan scenario × policy units across the pool: every unit builds its own
	// machine from the scenario and the shared read-only tables, so results
	// are bit-identical at any parallelism level. The "harp" unit chains its
	// online-learning warm-up with the measured run (the learned tables are
	// unit-local state).
	const nPolicies = 5 // cfs, itd, harp (learn+run), harp-offline, harp-noscaling
	runs, err := parallel.Map(cfg.Parallelism, len(metas)*nPolicies, func(u int) (*harpsim.Result, error) {
		m := metas[u/nPolicies]
		base := harpsim.Options{Seed: cfg.Seed, Governor: sim.GovernorPowersave}
		switch u % nPolicies {
		case 0:
			return harpsim.Run(m.sc, withPolicy(base, harpsim.PolicyCFS))
		case 1:
			return harpsim.Run(m.sc, withPolicy(base, harpsim.PolicyITD))
		case 2:
			// HARP with stable operating points learned online (§6.3:
			// behaviour during learning is Fig. 8's subject).
			learned, err := harpsim.LearnTables(m.sc, cfg.LearnFor, 0, base)
			if err != nil {
				return nil, err
			}
			opts := withPolicy(base, harpsim.PolicyHARP)
			opts.OfflineTables = learned.Tables
			return harpsim.Run(m.sc, opts)
		case 3:
			opts := withPolicy(base, harpsim.PolicyHARPOffline)
			opts.OfflineTables = offline
			return harpsim.Run(m.sc, opts)
		default:
			opts := withPolicy(base, harpsim.PolicyHARPNoScaling)
			opts.OfflineTables = offline
			return harpsim.Run(m.sc, opts)
		}
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{
		GeoSingle: make(map[string]Factor),
		GeoMulti:  make(map[string]Factor),
	}
	for s, m := range metas {
		cfs := runs[s*nPolicies]
		res.Rows = append(res.Rows, Fig6Row{
			Scenario:       m.sc.Name,
			Multi:          m.multi,
			CFSMakespanSec: cfs.MakespanSec,
			CFSEnergyJ:     cfs.EnergyJ,
			Factors: map[string]Factor{
				"itd":            factorOf(cfs, runs[s*nPolicies+1]),
				"harp":           factorOf(cfs, runs[s*nPolicies+2]),
				"harp-offline":   factorOf(cfs, runs[s*nPolicies+3]),
				"harp-noscaling": factorOf(cfs, runs[s*nPolicies+4]),
			},
		})
	}

	for _, label := range Fig6Labels {
		var single, multi []Factor
		for _, row := range res.Rows {
			if f, ok := row.Factors[label]; ok {
				if row.Multi {
					multi = append(multi, f)
				} else {
					single = append(single, f)
				}
			}
		}
		res.GeoSingle[label] = geoMeanFactors(single)
		res.GeoMulti[label] = geoMeanFactors(multi)
	}
	return res, nil
}

func withPolicy(o harpsim.Options, p harpsim.Policy) harpsim.Options {
	o.Policy = p
	return o
}

// Format writes the Fig. 6 table.
func (r *Fig6Result) Format(w io.Writer) {
	writeHeader(w, "Figure 6: improvement factors over CFS — Intel Raptor Lake i9-13900K")
	fmt.Fprintf(w, "%-28s %9s  %s\n", "scenario", "CFS[s]", formatFactorHeader())
	rows := append([]Fig6Row(nil), r.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Multi != rows[j].Multi {
			return !rows[i].Multi
		}
		return false
	})
	lastMulti := false
	for _, row := range rows {
		if row.Multi && !lastMulti {
			fmt.Fprintln(w, strings.Repeat("-", 100))
			lastMulti = true
		}
		fmt.Fprintf(w, "%-28s %9.2f  %s\n", row.Scenario, row.CFSMakespanSec, formatFactors(row.Factors))
	}
	fmt.Fprintln(w, strings.Repeat("=", 100))
	fmt.Fprintf(w, "%-38s  %s\n", "geomean (single-application)", formatFactors(r.GeoSingle))
	fmt.Fprintf(w, "%-38s  %s\n", "geomean (multi-application)", formatFactors(r.GeoMulti))
}

func formatFactorHeader() string {
	var b strings.Builder
	for _, label := range Fig6Labels {
		fmt.Fprintf(&b, "%-15s t/e     ", label)
	}
	return b.String()
}

func formatFactors(fs map[string]Factor) string {
	var b strings.Builder
	for _, label := range Fig6Labels {
		f, ok := fs[label]
		if !ok {
			fmt.Fprintf(&b, "%-23s", "-")
			continue
		}
		fmt.Fprintf(&b, "%5.2fx /%5.2fx          ", f.Time, f.Energy)
	}
	return b.String()
}
