package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig8Point is one learning snapshot: the improvement factors HARP would
// achieve with the knowledge it had at that instant.
type Fig8Point struct {
	AtSec     float64
	AllStable bool
	Factor    Factor
}

// Fig8Scenario is the learning trajectory of one scenario.
type Fig8Scenario struct {
	Scenario       string
	Multi          bool
	StableAfterSec float64
	Points         []Fig8Point
}

// Fig8Result reproduces Fig. 8: HARP's behaviour during the learning phase.
// The paper snapshots the operating-point tables every 5 s and reports when
// scenarios reach the stable stage (single ≈ 29.8 ± 5.9 s, multi ≈
// 36.6 ± 8.0 s).
type Fig8Result struct {
	Scenarios []Fig8Scenario
	// Stable-onset statistics across scenarios.
	SingleStableMean, SingleStableStd float64
	MultiStableMean, MultiStableStd   float64
}

// Fig8SingleNames are the single-application learning scenarios.
func Fig8SingleNames() []string {
	return []string{"ep.C", "ft.C", "mg.C", "lu.C", "cg.C", "binpack", "seismic", "vgg"}
}

// Fig8MultiNames are the multi-application learning scenarios.
func Fig8MultiNames() [][]string {
	return [][]string{
		{"is.C", "lu.C"},
		{"cg.C", "mg.C"},
		{"ft.C", "mg.C", "cg.C"},
		{"bt.C", "cg.C", "ft.C", "is.C"},
		{"ep.C", "cg.C", "ft.C", "mg.C", "sp.C"},
	}
}

// Fig8 runs the learning-phase experiment.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	singles := Fig8SingleNames()
	multis := Fig8MultiNames()
	if cfg.Quick {
		singles = []string{"ft.C", "mg.C"}
		multis = [][]string{{"cg.C", "mg.C"}}
	}

	type scMeta struct {
		sc    harpsim.Scenario
		multi bool
	}
	var metas []scMeta
	for _, name := range singles {
		sc, err := scenarioOf(plat, suite, name)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, false})
	}
	for _, names := range multis {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, true})
	}

	base := harpsim.Options{Seed: cfg.Seed}

	// Phase 1 — per scenario: the CFS baseline and the learning run with 5 s
	// snapshots (the snapshots feed phase 2).
	type prep struct {
		cfs *harpsim.Result
		lr  *harpsim.LearnResult
	}
	preps, err := parallel.Map(cfg.Parallelism, len(metas), func(s int) (prep, error) {
		cfs, err := harpsim.Run(metas[s].sc, withPolicy(base, harpsim.PolicyCFS))
		if err != nil {
			return prep{}, err
		}
		lr, err := harpsim.LearnTables(metas[s].sc, cfg.LearnFor, 5*time.Second, base)
		if err != nil {
			return prep{}, err
		}
		return prep{cfs, lr}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 — replay every (scenario, snapshot) with the knowledge HARP had
	// at that instant. The units are flattened across scenarios for load
	// balance; factors are assembled back in snapshot order below.
	type replayKey struct{ s, snap int }
	var keys []replayKey
	for s, p := range preps {
		for i := range p.lr.Snapshots {
			keys = append(keys, replayKey{s, i})
		}
	}
	replays, err := parallel.Map(cfg.Parallelism, len(keys), func(u int) (*harpsim.Result, error) {
		k := keys[u]
		opts := withPolicy(base, harpsim.PolicyHARPOffline)
		opts.OfflineTables = preps[k.s].lr.Snapshots[k.snap].Tables
		return harpsim.Run(metas[k.s].sc, opts)
	})
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{}
	rows := make([]Fig8Scenario, len(metas))
	for s, m := range metas {
		rows[s] = Fig8Scenario{
			Scenario:       m.sc.Name,
			Multi:          m.multi,
			StableAfterSec: preps[s].lr.StableAfterSec,
		}
	}
	for u, k := range keys {
		snap := preps[k.s].lr.Snapshots[k.snap]
		rows[k.s].Points = append(rows[k.s].Points, Fig8Point{
			AtSec:     snap.AtSec,
			AllStable: snap.AllStable,
			Factor:    factorOf(preps[k.s].cfs, replays[u]),
		})
	}
	res.Scenarios = rows

	var single, multi []float64
	for _, s := range res.Scenarios {
		if s.StableAfterSec < 0 {
			continue
		}
		if s.Multi {
			multi = append(multi, s.StableAfterSec)
		} else {
			single = append(single, s.StableAfterSec)
		}
	}
	res.SingleStableMean, res.SingleStableStd = mathx.Mean(single), mathx.StdDev(single)
	res.MultiStableMean, res.MultiStableStd = mathx.Mean(multi), mathx.StdDev(multi)
	return res, nil
}

// Format writes the Fig. 8 summary.
func (r *Fig8Result) Format(w io.Writer) {
	writeHeader(w, "Figure 8: HARP improvement over CFS during the learning phase — Intel Raptor Lake")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "\n%s (stable after %.1fs)\n", s.Scenario, s.StableAfterSec)
		fmt.Fprintf(w, "%8s %10s %8s %8s\n", "t[s]", "stage", "time", "energy")
		for _, p := range s.Points {
			stage := "learning"
			if p.AllStable {
				stage = "stable"
			}
			fmt.Fprintf(w, "%8.0f %10s %7.2fx %7.2fx\n", p.AtSec, stage, p.Factor.Time, p.Factor.Energy)
		}
	}
	fmt.Fprintf(w, "\nstable-stage onset: single %.1f ± %.1f s (paper: 29.8 ± 5.9), multi %.1f ± %.1f s (paper: 36.6 ± 8.0)\n",
		r.SingleStableMean, r.SingleStableStd, r.MultiStableMean, r.MultiStableStd)
}
