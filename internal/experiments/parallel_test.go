package experiments

import (
	"reflect"
	"testing"
	"time"
)

// The experiment drivers promise bit-identical results at any parallelism
// level: every scenario × policy × seed unit owns its machine and RNG
// streams, and results are merged in submission order. These tests pin that
// guarantee by comparing a strictly sequential run against a fanned-out one
// with reflect.DeepEqual — exact float equality, not tolerances.

func TestFig6ParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick Fig. 6 twice")
	}
	cfg := quickCfg()
	cfg.LearnFor = 30 * time.Second

	cfg.Parallelism = 1
	seq, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Errorf("rows differ between parallelism 1 and 4:\nseq: %+v\npar: %+v", seq.Rows, par.Rows)
	}
	if !reflect.DeepEqual(seq.GeoSingle, par.GeoSingle) {
		t.Errorf("single geomeans differ: %+v vs %+v", seq.GeoSingle, par.GeoSingle)
	}
	if !reflect.DeepEqual(seq.GeoMulti, par.GeoMulti) {
		t.Errorf("multi geomeans differ: %+v vs %+v", seq.GeoMulti, par.GeoMulti)
	}
}

func TestFig8ParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick Fig. 8 twice")
	}
	cfg := quickCfg()
	cfg.LearnFor = 30 * time.Second

	cfg.Parallelism = 1
	seq, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq.Scenarios, par.Scenarios) {
		t.Errorf("learning trajectories differ between parallelism 1 and 4:\nseq: %+v\npar: %+v",
			seq.Scenarios, par.Scenarios)
	}
	for _, v := range [][2]float64{
		{seq.SingleStableMean, par.SingleStableMean},
		{seq.SingleStableStd, par.SingleStableStd},
		{seq.MultiStableMean, par.MultiStableMean},
		{seq.MultiStableStd, par.MultiStableStd},
	} {
		if v[0] != v[1] {
			t.Errorf("stable-onset statistic differs: %v vs %v", v[0], v[1])
		}
	}
}

// TestFig1ParallelismDeterminism covers the pre-drawn-noise path: the shared
// RNG stream is consumed sequentially before the fan-out, so the sweep must
// be exactly reproducible.
func TestFig1ParallelismDeterminism(t *testing.T) {
	cfg := quickCfg()
	cfg.Parallelism = 1
	seq, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	par, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Fig. 1 sweep differs between parallelism 1 and 8")
	}
}
