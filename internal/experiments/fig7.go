package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig7Row is one Odroid scenario's improvement of HARP (Offline) over EAS.
type Fig7Row struct {
	Scenario    string
	Multi       bool
	EASMakespan float64
	EASEnergyJ  float64
	Factor      Factor
}

// Fig7Result reproduces Fig. 7: HARP (Offline) versus the Linux
// Energy-Aware Scheduler on the Odroid XU3-E. Online exploration is
// impossible there — the PMU cannot observe both islands at once (§6.4).
type Fig7Result struct {
	Rows      []Fig7Row
	GeoSingle Factor
	GeoMulti  Factor
}

// OdroidSingleScenarioNames lists the Fig. 7 single-application scenarios.
func OdroidSingleScenarioNames() []string {
	return []string{
		"bt.A", "cg.A", "ep.A", "ft.A", "is.A", "lu.A", "mg.A", "sp.A", "ua.A",
		"mandelbrot", "mandelbrot-static", "lms", "lms-static",
	}
}

// OdroidMultiScenarioNames lists the Fig. 7 multi-application scenarios.
func OdroidMultiScenarioNames() [][]string {
	return [][]string{
		{"is.A", "lu.A"},
		{"cg.A", "mg.A"},
		{"ep.A", "ft.A"},
		{"mandelbrot", "lms"},
		{"bt.A", "sp.A", "ua.A"},
		{"ep.A", "cg.A", "ft.A", "mg.A"},
	}
}

// Fig7 runs the Odroid evaluation.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.OdroidXU3()
	suite := workload.OdroidApps()

	singles := OdroidSingleScenarioNames()
	multis := OdroidMultiScenarioNames()
	if cfg.Quick {
		singles = []string{"mg.A", "lu.A", "mandelbrot"}
		multis = [][]string{{"cg.A", "mg.A"}}
	}

	offline := harpsim.OfflineDSETablesParallel(plat, suite, cfg.Parallelism)
	base := harpsim.Options{Seed: cfg.Seed, Governor: sim.GovernorSchedutil}

	type scMeta struct {
		sc    harpsim.Scenario
		multi bool
	}
	var metas []scMeta
	for _, name := range singles {
		sc, err := scenarioOf(plat, suite, name)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, false})
	}
	for _, names := range multis {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		metas = append(metas, scMeta{sc, true})
	}

	// Scenario × policy units (EAS baseline, HARP offline), merged in
	// submission order.
	runs, err := parallel.Map(cfg.Parallelism, len(metas)*2, func(u int) (*harpsim.Result, error) {
		m := metas[u/2]
		if u%2 == 0 {
			return harpsim.Run(m.sc, withPolicy(base, harpsim.PolicyEAS))
		}
		opts := withPolicy(base, harpsim.PolicyHARPOffline)
		opts.OfflineTables = offline
		return harpsim.Run(m.sc, opts)
	})
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{}
	for s, m := range metas {
		eas, harp := runs[2*s], runs[2*s+1]
		res.Rows = append(res.Rows, Fig7Row{
			Scenario:    m.sc.Name,
			Multi:       m.multi,
			EASMakespan: eas.MakespanSec,
			EASEnergyJ:  eas.EnergyJ,
			Factor:      factorOf(eas, harp),
		})
	}

	var single, multi []Factor
	for _, row := range res.Rows {
		if row.Multi {
			multi = append(multi, row.Factor)
		} else {
			single = append(single, row.Factor)
		}
	}
	res.GeoSingle = geoMeanFactors(single)
	res.GeoMulti = geoMeanFactors(multi)
	return res, nil
}

// Format writes the Fig. 7 table.
func (r *Fig7Result) Format(w io.Writer) {
	writeHeader(w, "Figure 7: HARP (Offline) improvement over EAS — Odroid XU3-E")
	fmt.Fprintf(w, "%-26s %10s %12s %8s %8s\n", "scenario", "EAS[s]", "EAS[J]", "time", "energy")
	lastMulti := false
	for _, row := range r.Rows {
		if row.Multi && !lastMulti {
			fmt.Fprintln(w, strings.Repeat("-", 70))
			lastMulti = true
		}
		fmt.Fprintf(w, "%-26s %10.2f %12.1f %7.2fx %7.2fx\n",
			row.Scenario, row.EASMakespan, row.EASEnergyJ, row.Factor.Time, row.Factor.Energy)
	}
	fmt.Fprintln(w, strings.Repeat("=", 70))
	fmt.Fprintf(w, "%-50s %7.2fx %7.2fx\n", "geomean (single-application)", r.GeoSingle.Time, r.GeoSingle.Energy)
	fmt.Fprintf(w, "%-50s %7.2fx %7.2fx\n", "geomean (multi-application)", r.GeoMulti.Time, r.GeoMulti.Energy)
}
