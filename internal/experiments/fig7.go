package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

// Fig7Row is one Odroid scenario's improvement of HARP (Offline) over EAS.
type Fig7Row struct {
	Scenario    string
	Multi       bool
	EASMakespan float64
	EASEnergyJ  float64
	Factor      Factor
}

// Fig7Result reproduces Fig. 7: HARP (Offline) versus the Linux
// Energy-Aware Scheduler on the Odroid XU3-E. Online exploration is
// impossible there — the PMU cannot observe both islands at once (§6.4).
type Fig7Result struct {
	Rows      []Fig7Row
	GeoSingle Factor
	GeoMulti  Factor
}

// OdroidSingleScenarioNames lists the Fig. 7 single-application scenarios.
func OdroidSingleScenarioNames() []string {
	return []string{
		"bt.A", "cg.A", "ep.A", "ft.A", "is.A", "lu.A", "mg.A", "sp.A", "ua.A",
		"mandelbrot", "mandelbrot-static", "lms", "lms-static",
	}
}

// OdroidMultiScenarioNames lists the Fig. 7 multi-application scenarios.
func OdroidMultiScenarioNames() [][]string {
	return [][]string{
		{"is.A", "lu.A"},
		{"cg.A", "mg.A"},
		{"ep.A", "ft.A"},
		{"mandelbrot", "lms"},
		{"bt.A", "sp.A", "ua.A"},
		{"ep.A", "cg.A", "ft.A", "mg.A"},
	}
}

// Fig7 runs the Odroid evaluation.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	plat := platform.OdroidXU3()
	suite := workload.OdroidApps()

	singles := OdroidSingleScenarioNames()
	multis := OdroidMultiScenarioNames()
	if cfg.Quick {
		singles = []string{"mg.A", "lu.A", "mandelbrot"}
		multis = [][]string{{"cg.A", "mg.A"}}
	}

	offline := harpsim.OfflineDSETables(plat, suite)
	base := harpsim.Options{Seed: cfg.Seed, Governor: sim.GovernorSchedutil}

	res := &Fig7Result{}
	run := func(names []string, multi bool) error {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return err
		}
		eas, err := harpsim.Run(sc, withPolicy(base, harpsim.PolicyEAS))
		if err != nil {
			return err
		}
		harpOpts := withPolicy(base, harpsim.PolicyHARPOffline)
		harpOpts.OfflineTables = offline
		harp, err := harpsim.Run(sc, harpOpts)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Fig7Row{
			Scenario:    sc.Name,
			Multi:       multi,
			EASMakespan: eas.MakespanSec,
			EASEnergyJ:  eas.EnergyJ,
			Factor:      factorOf(eas, harp),
		})
		return nil
	}
	for _, name := range singles {
		if err := run([]string{name}, false); err != nil {
			return nil, err
		}
	}
	for _, names := range multis {
		if err := run(names, true); err != nil {
			return nil, err
		}
	}

	var single, multi []Factor
	for _, row := range res.Rows {
		if row.Multi {
			multi = append(multi, row.Factor)
		} else {
			single = append(single, row.Factor)
		}
	}
	res.GeoSingle = geoMeanFactors(single)
	res.GeoMulti = geoMeanFactors(multi)
	return res, nil
}

// Format writes the Fig. 7 table.
func (r *Fig7Result) Format(w io.Writer) {
	writeHeader(w, "Figure 7: HARP (Offline) improvement over EAS — Odroid XU3-E")
	fmt.Fprintf(w, "%-26s %10s %12s %8s %8s\n", "scenario", "EAS[s]", "EAS[J]", "time", "energy")
	lastMulti := false
	for _, row := range r.Rows {
		if row.Multi && !lastMulti {
			fmt.Fprintln(w, strings.Repeat("-", 70))
			lastMulti = true
		}
		fmt.Fprintf(w, "%-26s %10.2f %12.1f %7.2fx %7.2fx\n",
			row.Scenario, row.EASMakespan, row.EASEnergyJ, row.Factor.Time, row.Factor.Energy)
	}
	fmt.Fprintln(w, strings.Repeat("=", 70))
	fmt.Fprintf(w, "%-50s %7.2fx %7.2fx\n", "geomean (single-application)", r.GeoSingle.Time, r.GeoSingle.Energy)
	fmt.Fprintf(w, "%-50s %7.2fx %7.2fx\n", "geomean (multi-application)", r.GeoMulti.Time, r.GeoMulti.Energy)
}
