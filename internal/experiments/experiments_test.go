package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps the experiment tests fast; the full-scale runs back
// EXPERIMENTS.md and the root benchmarks.
func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestFig1Shapes(t *testing.T) {
	res, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d, want 2 (ep.C, mg.C)", len(res.Apps))
	}
	byName := map[string]Fig1App{}
	for _, a := range res.Apps {
		byName[a.App] = a
	}
	ep, mg := byName["ep.C"], byName["mg.C"]
	if len(ep.Points) != 288 || len(mg.Points) != 288 {
		t.Fatalf("sweep sizes = (%d, %d), want 288 each", len(ep.Points), len(mg.Points))
	}

	// ep scales: its fastest configuration uses nearly the whole machine.
	epFront := ep.ParetoPoints()
	if len(epFront) == 0 {
		t.Fatal("empty ep front")
	}
	fastest := epFront[0]
	if fastest.PHyperthreads < 14 || fastest.ECores < 14 {
		t.Errorf("ep fastest config = %d P-HT, %d E — should use nearly everything", fastest.PHyperthreads, fastest.ECores)
	}
	// ep favours even P-hyperthread counts on the front (Fig. 1a).
	var even, withP int
	for _, p := range epFront {
		if p.PHyperthreads > 0 {
			withP++
			if p.PHyperthreads%2 == 0 {
				even++
			}
		}
	}
	if withP > 0 && float64(even)/float64(withP) < 0.5 {
		t.Errorf("ep front: only %d/%d P-using points have even P-HT counts", even, withP)
	}

	// mg's best-energy Pareto points avoid P-cores (Fig. 1b).
	mgFront := mg.ParetoPoints()
	bestEnergy := mgFront[0]
	for _, p := range mgFront {
		if p.EnergyJ < bestEnergy.EnergyJ {
			bestEnergy = p
		}
	}
	if bestEnergy.PHyperthreads != 0 {
		t.Errorf("mg best-energy config uses %d P-HT, want 0 (E-cores only)", bestEnergy.PHyperthreads)
	}
	// mg does not benefit from more resources (Fig. 1b): the full machine is
	// barely faster than a 10-E-core allocation but burns much more energy.
	var full, e10 *Fig1Point
	for i := range mg.Points {
		p := &mg.Points[i]
		if p.PHyperthreads == 16 && p.ECores == 16 {
			full = p
		}
		if p.PHyperthreads == 0 && p.ECores == 10 {
			e10 = p
		}
	}
	if full == nil || e10 == nil {
		t.Fatal("sweep missing reference configurations")
	}
	if e10.TimeSec > full.TimeSec*1.2 {
		t.Errorf("mg on 10 E-cores %.1fs much slower than full machine %.1fs — should be BW-bound", e10.TimeSec, full.TimeSec)
	}
	if full.EnergyJ < 1.5*e10.EnergyJ {
		t.Errorf("mg full machine energy %.0fJ not well above 10×E %.0fJ", full.EnergyJ, e10.EnergyJ)
	}

	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "Pareto-optimal") {
		t.Error("Format output incomplete")
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	largest := res.TrainSizes[len(res.TrainSizes)-1]
	p2, ok := res.Cell("poly2", largest)
	if !ok {
		t.Fatal("missing poly2 cell")
	}
	p1, ok := res.Cell("poly1", largest)
	if !ok {
		t.Fatal("missing poly1 cell")
	}
	// Degree 2 beats degree 1 given enough data (Fig. 5, §5.2).
	if p2.MAPEIPS >= p1.MAPEIPS {
		t.Errorf("poly2 MAPE %.2f%% not below poly1 %.2f%% at n=%d", p2.MAPEIPS, p1.MAPEIPS, largest)
	}
	if p2.IGD >= p1.IGD {
		t.Errorf("poly2 IGD %.4f not below poly1 %.4f at n=%d", p2.IGD, p1.IGD, largest)
	}
	// poly2 accuracy improves with training size.
	small, _ := res.Cell("poly2", res.TrainSizes[0])
	if p2.MAPEIPS >= small.MAPEIPS {
		t.Errorf("poly2 MAPE did not improve with data: %.2f%% → %.2f%%", small.MAPEIPS, p2.MAPEIPS)
	}

	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "MAPE IPS") {
		t.Error("Format output incomplete")
	}
}

func TestFig6Shapes(t *testing.T) {
	res, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Multi-application HARP beats CFS on both metrics (§6.3.2).
	harpMulti := res.GeoMulti["harp"]
	if harpMulti.Time < 1 || harpMulti.Energy < 1.1 {
		t.Errorf("HARP multi geomean = %.2fx/%.2fx, want > 1x time and > 1.1x energy", harpMulti.Time, harpMulti.Energy)
	}
	// Offline operating points do at least as well as learned ones.
	offMulti := res.GeoMulti["harp-offline"]
	if offMulti.Energy < harpMulti.Energy*0.9 {
		t.Errorf("offline multi energy %.2fx well below online %.2fx", offMulti.Energy, harpMulti.Energy)
	}
	// No-scaling collapses (§6.3.1: the critical role of adaptation).
	ns := res.GeoSingle["harp-noscaling"]
	if ns.Time > 0.9 {
		t.Errorf("NoScaling single time factor = %.2fx, want well below 1", ns.Time)
	}
	// ITD stays close to CFS for single applications (§6.3.1).
	itd := res.GeoSingle["itd"]
	if itd.Time < 0.9 || itd.Time > 1.15 {
		t.Errorf("ITD single time factor = %.2fx, want ≈ 1", itd.Time)
	}
	// binpack is the headline outlier.
	for _, row := range res.Rows {
		if row.Scenario == "binpack" {
			if f := row.Factors["harp-offline"]; f.Time < 3 {
				t.Errorf("binpack HARP(offline) speedup = %.2fx, want > 3x", f.Time)
			}
		}
	}

	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("Format output incomplete")
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// HARP (Offline) saves energy on the Odroid overall (§6.4: 1.27× single,
	// 1.38× multi).
	if res.GeoSingle.Energy < 1.05 {
		t.Errorf("single energy geomean = %.2fx, want > 1.05x", res.GeoSingle.Energy)
	}
	if res.GeoMulti.Energy < 1.1 || res.GeoMulti.Time < 1.0 {
		t.Errorf("multi geomean = %.2fx/%.2fx, want gains on both", res.GeoMulti.Time, res.GeoMulti.Energy)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "EAS") {
		t.Error("Format output incomplete")
	}
}

func TestFig8Shapes(t *testing.T) {
	res, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleStableMean < 15 || res.SingleStableMean > 60 {
		t.Errorf("single stable onset = %.1fs, want 15–60s (paper: 29.8 ± 5.9)", res.SingleStableMean)
	}
	for _, sc := range res.Scenarios {
		if len(sc.Points) < 5 {
			t.Errorf("%s: only %d snapshots", sc.Scenario, len(sc.Points))
		}
		var sawStable bool
		for _, p := range sc.Points {
			if p.AllStable {
				sawStable = true
			}
		}
		if !sawStable {
			t.Errorf("%s never reached the stable stage", sc.Scenario)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "stable-stage onset") {
		t.Error("Format output incomplete")
	}
}

func TestGovernorShapes(t *testing.T) {
	res, err := Governor(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The governor has only a minor effect (§6.3.3): factors under the two
	// governors stay within 25 % of each other.
	for _, policy := range []string{"harp", "harp-offline"} {
		save := res.Factors[policy]["powersave"]
		perf := res.Factors[policy]["performance"]
		if ratio := perf.Energy / save.Energy; ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: governor changed energy factor by %.2fx — should be minor", policy, ratio)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "powersave") {
		t.Error("Format output incomplete")
	}
}

func TestOverheadShapes(t *testing.T) {
	res, err := Overhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleMean < 0 || res.SingleMean > 2 {
		t.Errorf("single-app overhead = %.2f%%, want (0, 2]%% (paper: < 1%%)", res.SingleMean)
	}
	if res.MultiMean < res.SingleMean || res.MultiMean > 5 {
		t.Errorf("multi-app overhead = %.2f%%, want above single and < 5%% (paper: ≈ 2.5%%)", res.MultiMean)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "overhead") {
		t.Error("Format output incomplete")
	}
}

func TestAttributionShapes(t *testing.T) {
	res, err := Attribution(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d, want several apps", len(res.Rows))
	}
	if res.MAPE <= 0 || res.MAPE > 20 {
		t.Errorf("attribution MAPE = %.2f%%, want (0, 20]%% (paper: 8.76%%)", res.MAPE)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "MAPE") {
		t.Error("Format output incomplete")
	}
}

func TestAllocAblationShapes(t *testing.T) {
	res, err := AllocAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.LagrangianCost > row.GreedyCost*1.05 {
			t.Errorf("%s: lagrangian cost %.1f noticeably above greedy %.1f",
				row.Scenario, row.LagrangianCost, row.GreedyCost)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "lagr") {
		t.Error("Format output incomplete")
	}
}

func TestExploreAblationShapes(t *testing.T) {
	res, err := ExploreAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic's diversity must win on global model accuracy; IGD is
	// app-dependent (enumeration happens to start in the small-allocation
	// corner where bandwidth-bound fronts live).
	if res.HeuristicMAPEMean >= res.EnumerationMAPEMean {
		t.Errorf("heuristic MAPE %.1f%% not below enumeration %.1f%%",
			res.HeuristicMAPEMean, res.EnumerationMAPEMean)
	}
	if res.HeuristicMean <= 0 || res.HeuristicMean > 0.2 {
		t.Errorf("heuristic IGD mean = %.4f, want a small positive value", res.HeuristicMean)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "heuristic") {
		t.Error("Format output incomplete")
	}
}

// TestFigClusterShapes checks the fleet-energy comparison's headline
// claims on a quick run: the coordinated fleet consumes less energy and
// fewer active machine-ticks than static partitioning, and no arm — not
// even the faulted one — ever exceeds the shared budget.
func TestFigClusterShapes(t *testing.T) {
	res, err := FigCluster(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	st, dy := res.Cells["static"], res.Cells["dynamic"]
	if dy.EnergyJ >= st.EnergyJ {
		t.Errorf("dynamic energy %.1fJ >= static %.1fJ — consolidation won nothing", dy.EnergyJ, st.EnergyJ)
	}
	if dy.ActiveMachineTicks >= st.ActiveMachineTicks {
		t.Errorf("dynamic active machine-ticks %.1f >= static %.1f", dy.ActiveMachineTicks, st.ActiveMachineTicks)
	}
	for arm, c := range res.Cells {
		if c.MaxFleetPowerW > res.BudgetW+1e-6 {
			t.Errorf("%s: peak fleet power %.1fW exceeds the %.1fW budget", arm, c.MaxFleetPowerW, res.BudgetW)
		}
	}
	if res.Cells["dynamic-faults"].Migrations == 0 {
		t.Error("faulted arm recorded no migrations — the kill never forced a re-home")
	}
	var buf bytes.Buffer
	res.Format(&buf)
	for _, want := range []string{"fleet energy", "static", "dynamic-faults", "budget held"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Format output missing %q:\n%s", want, buf.String())
		}
	}
}
