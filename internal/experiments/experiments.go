// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated platforms. Each experiment returns typed
// rows plus formatted text output; bench_test.go at the repository root
// exposes one benchmark per experiment, and EXPERIMENTS.md records the
// paper-versus-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/mathx"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/workload"
)

// Config tunes experiment scale.
type Config struct {
	// Seed drives all measurement noise.
	Seed int64
	// LearnFor is the online-learning warm-up horizon; zero selects 90
	// virtual seconds.
	LearnFor time.Duration
	// Quick trims scenario lists and seed counts for fast runs (used by
	// -short test runs); the full configuration reproduces the paper scale.
	Quick bool
	// Parallelism bounds the worker pool every driver fans its independent
	// scenario × policy × seed units out across: 0 selects one worker per
	// CPU, 1 forces a strictly sequential run. Each unit owns its own
	// simulated machine and RNG seeds and results are merged in submission
	// order, so the reported metrics are bit-identical at any setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.LearnFor == 0 {
		c.LearnFor = 90 * time.Second
	}
	return c
}

// Factor is an improvement factor over a baseline: >1 is better (faster /
// less energy), exactly as the paper reports.
type Factor struct {
	Time   float64
	Energy float64
}

// factorOf computes baseline/result improvement factors.
func factorOf(baseline, result *harpsim.Result) Factor {
	return Factor{
		Time:   baseline.MakespanSec / result.MakespanSec,
		Energy: baseline.EnergyJ / result.EnergyJ,
	}
}

// geoMeanFactors aggregates factors geometrically (matching the paper's
// geomean rows).
func geoMeanFactors(fs []Factor) Factor {
	times := make([]float64, len(fs))
	energies := make([]float64, len(fs))
	for i, f := range fs {
		times[i] = f.Time
		energies[i] = f.Energy
	}
	return Factor{Time: mathx.GeoMean(times), Energy: mathx.GeoMean(energies)}
}

// scenarioOf builds a named scenario from profile names within a suite.
func scenarioOf(plat *platform.Platform, suite []*workload.Profile, names ...string) (harpsim.Scenario, error) {
	var apps []*workload.Profile
	label := ""
	for i, n := range names {
		p, err := workload.ByName(suite, n)
		if err != nil {
			return harpsim.Scenario{}, err
		}
		apps = append(apps, p)
		if i > 0 {
			label += "+"
		}
		label += n
	}
	return harpsim.Scenario{Name: label, Platform: plat, Apps: apps}, nil
}

// writeHeader prints a section header.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
