package experiments

import (
	"fmt"
	"io"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/faultsim"
	"github.com/harp-rm/harp/internal/parallel"
)

// FigClusterResult extends the paper's single-node energy story (§6) to a
// fleet: N machines under one energy budget, comparing HARP's coordinated
// bin-packing with drain consolidation against static per-machine
// partitioning of the same budget. The dynamic coordinator parks machines
// the static split keeps lit, so its fleet energy and active machine-ticks
// drop while the peak power stays within the shared budget in both arms —
// including under a mid-run machine kill and coordinator failover.
type FigClusterResult struct {
	// Seeds is how many seeded runs each cell aggregates.
	Seeds int
	// Machines and BudgetW describe the fleet.
	Machines int
	BudgetW  float64
	// Cells maps arm name ("static", "dynamic", "dynamic-faults") to the
	// seed-averaged measurements.
	Cells map[string]FigClusterCell
}

// FigClusterCell is one arm's seed-averaged measurement.
type FigClusterCell struct {
	EnergyJ            float64
	ActiveMachineTicks float64
	MaxFleetPowerW     float64
	Migrations         float64
	MaxUnownedTicks    float64
}

// FigCluster runs the fleet-energy comparison: static partitioning versus
// the coordinated fleet, plus a faulted dynamic arm proving the energy win
// survives machine loss and coordinator failover.
func FigCluster(cfg Config) (*FigClusterResult, error) {
	cfg = cfg.withDefaults()
	const (
		machines = 4
		budgetW  = 60.0
	)
	seeds, ticks := 5, 1200
	if cfg.Quick {
		seeds, ticks = 2, 300
	}

	arms := []struct {
		name   string
		static bool
		plan   func(seed int64) *faultsim.Plan
	}{
		{name: "static", static: true},
		{name: "dynamic"},
		{name: "dynamic-faults", plan: func(seed int64) *faultsim.Plan {
			return &faultsim.Plan{Seed: seed, Faults: []faultsim.Fault{
				{At: harpsim.ClusterTick(ticks / 4), Target: "m1", Kind: faultsim.KindMachineKill},
				{At: harpsim.ClusterTick(ticks / 2), Target: faultsim.CoordinatorTarget, Kind: faultsim.KindCoordKill},
			}}
		}},
	}

	results, err := parallel.Map(cfg.Parallelism, len(arms)*seeds, func(u int) (*harpsim.ClusterResult, error) {
		arm := arms[u/seeds]
		seed := cfg.Seed + int64(u%seeds)
		opts := harpsim.ClusterOptions{
			Machines:     machines,
			Sessions:     5,
			Ticks:        ticks,
			Seed:         seed,
			FleetBudgetW: budgetW,
			Static:       arm.static,
			Verify:       true,
		}
		if arm.plan != nil {
			opts.Plan = arm.plan(seed)
		}
		return harpsim.RunCluster(opts)
	})
	if err != nil {
		return nil, err
	}

	res := &FigClusterResult{
		Seeds:    seeds,
		Machines: machines,
		BudgetW:  budgetW,
		Cells:    make(map[string]FigClusterCell),
	}
	for a, arm := range arms {
		var cell FigClusterCell
		for s := 0; s < seeds; s++ {
			r := results[a*seeds+s]
			cell.EnergyJ += r.EnergyJ
			cell.ActiveMachineTicks += float64(r.ActiveMachineTicks)
			if r.MaxFleetPowerW > cell.MaxFleetPowerW {
				cell.MaxFleetPowerW = r.MaxFleetPowerW
			}
			cell.Migrations += float64(r.Stats.Migrations)
			if float64(r.MaxUnownedTicks) > cell.MaxUnownedTicks {
				cell.MaxUnownedTicks = float64(r.MaxUnownedTicks)
			}
		}
		n := float64(seeds)
		cell.EnergyJ /= n
		cell.ActiveMachineTicks /= n
		cell.Migrations /= n
		res.Cells[arm.name] = cell
	}
	return res, nil
}

// Format writes the fleet-energy comparison table.
func (r *FigClusterResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf(
		"fleet energy: coordinated bin-packing vs static partitioning — %d machines, %.0f W budget, %d seeds",
		r.Machines, r.BudgetW, r.Seeds))
	fmt.Fprintf(w, "%-16s %12s %14s %12s %11s %12s\n",
		"arm", "energy[J]", "active mt", "peak P[W]", "migrations", "max unowned")
	for _, arm := range []string{"static", "dynamic", "dynamic-faults"} {
		c, ok := r.Cells[arm]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-16s %12.1f %14.1f %12.1f %11.1f %12.0f\n",
			arm, c.EnergyJ, c.ActiveMachineTicks, c.MaxFleetPowerW, c.Migrations, c.MaxUnownedTicks)
	}
	if s, d := r.Cells["static"], r.Cells["dynamic"]; s.EnergyJ > 0 {
		fmt.Fprintf(w, "(dynamic saves %.1f%% fleet energy over static partitioning; budget held in every arm)\n",
			100*(1-d.EnergyJ/s.EnergyJ))
	}
}
