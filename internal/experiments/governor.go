package experiments

import (
	"fmt"
	"io"

	"github.com/harp-rm/harp/harpsim"
	"github.com/harp-rm/harp/internal/parallel"
	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

// GovernorResult reproduces §6.3.3: the impact of the Linux frequency
// governor on HARP's improvements. The paper reports HARP at 1.20×/1.44×
// (time/energy) under performance versus 1.14×/1.42× under powersave, and
// HARP (Offline) at 1.36×/1.61× versus 1.34×/1.58× — i.e. only a minor
// effect.
type GovernorResult struct {
	// Factors[policy][governor] aggregates across all scenarios.
	Factors map[string]map[string]Factor
	// Scenarios lists the scenario names measured.
	Scenarios []string
}

// Governor runs the governor ablation across the Fig. 6 scenario mix.
func Governor(cfg Config) (*GovernorResult, error) {
	cfg = cfg.withDefaults()
	plat := platform.RaptorLake()
	suite := workload.IntelApps()

	scenarios := [][]string{
		{"ep.C"}, {"mg.C"}, {"ft.C"}, {"lu.C"}, {"binpack"},
		{"cg.C", "mg.C"}, {"ft.C", "mg.C", "cg.C"},
		{"ep.C", "cg.C", "ft.C", "mg.C", "sp.C"},
	}
	if cfg.Quick {
		scenarios = [][]string{{"mg.C"}, {"cg.C", "mg.C"}}
	}
	offline := harpsim.OfflineDSETablesParallel(plat, suite, cfg.Parallelism)
	govNames := []string{"powersave", "performance"}
	govs := map[string]sim.Governor{
		"powersave":   sim.GovernorPowersave,
		"performance": sim.GovernorPerformance,
	}

	scs := make([]harpsim.Scenario, len(scenarios))
	for i, names := range scenarios {
		sc, err := scenarioOf(plat, suite, names...)
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}

	// Governor × scenario units; each runs its own CFS baseline, the
	// learn-then-run HARP chain, and HARP (Offline).
	type pair struct{ harp, off Factor }
	units, err := parallel.Map(cfg.Parallelism, len(govNames)*len(scs), func(u int) (pair, error) {
		sc := scs[u%len(scs)]
		base := harpsim.Options{Seed: cfg.Seed, Governor: govs[govNames[u/len(scs)]]}
		cfs, err := harpsim.Run(sc, withPolicy(base, harpsim.PolicyCFS))
		if err != nil {
			return pair{}, err
		}
		lr, err := harpsim.LearnTables(sc, cfg.LearnFor, 0, base)
		if err != nil {
			return pair{}, err
		}
		harpOpts := withPolicy(base, harpsim.PolicyHARP)
		harpOpts.OfflineTables = lr.Tables
		harp, err := harpsim.Run(sc, harpOpts)
		if err != nil {
			return pair{}, err
		}
		offOpts := withPolicy(base, harpsim.PolicyHARPOffline)
		offOpts.OfflineTables = offline
		off, err := harpsim.Run(sc, offOpts)
		if err != nil {
			return pair{}, err
		}
		return pair{harp: factorOf(cfs, harp), off: factorOf(cfs, off)}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &GovernorResult{Factors: map[string]map[string]Factor{
		"harp":         make(map[string]Factor),
		"harp-offline": make(map[string]Factor),
	}}
	for _, sc := range scs {
		res.Scenarios = append(res.Scenarios, sc.Name)
	}
	for g, govName := range govNames {
		var harpFactors, offFactors []Factor
		for s := range scs {
			u := units[g*len(scs)+s]
			harpFactors = append(harpFactors, u.harp)
			offFactors = append(offFactors, u.off)
		}
		res.Factors["harp"][govName] = geoMeanFactors(harpFactors)
		res.Factors["harp-offline"][govName] = geoMeanFactors(offFactors)
	}
	return res, nil
}

// Format writes the governor ablation table.
func (r *GovernorResult) Format(w io.Writer) {
	writeHeader(w, "§6.3.3: frequency-governor ablation — Intel Raptor Lake")
	fmt.Fprintf(w, "%-14s %-13s %8s %8s\n", "policy", "governor", "time", "energy")
	for _, policy := range []string{"harp", "harp-offline"} {
		for _, gov := range []string{"powersave", "performance"} {
			f := r.Factors[policy][gov]
			fmt.Fprintf(w, "%-14s %-13s %7.2fx %7.2fx\n", policy, gov, f.Time, f.Energy)
		}
	}
	fmt.Fprintf(w, "(paper: harp 1.14x/1.42x powersave vs 1.20x/1.44x performance;\n")
	fmt.Fprintf(w, " offline 1.34x/1.58x powersave vs 1.36x/1.61x performance — minor effect)\n")
}
