package workload

import "fmt"

// The suites below parameterise the paper's evaluation workloads (§6.2).
// Work sizes are calibrated so baseline makespans land in the ranges the
// paper reports (e.g. ep.C ≈ 2.4 s under CFS, §6.5.1); the behavioural
// parameters encode each benchmark's published character:
//
//   - ep is embarrassingly parallel, compute-bound, and profits from using
//     both hyper-threads of each P-core (Fig. 1a).
//   - mg is memory-bound: extra cores burn power without speedup, and the
//     best configurations sit on the E-core island (Fig. 1b).
//   - binpack's workers contend on one shared input queue, collapsing at the
//     32-thread default and giving HARP its ≈7× headline win (§6.3.1).
//   - lu spin-waits, so observed IPS overstates useful work and misguides
//     IPS-based utility (§6.3.1).
//   - primes and is are too short to amortise management overhead.
//   - KPN apps come in a custom-adaptive and a static-topology variant
//     (§6.2, evaluated on the Odroid only).

// NASIntel returns the NAS Parallel Benchmarks, class C, as run on the
// Raptor Lake machine. All are OpenMP: scalable, barrier-coupled, blocking
// waits unless noted.
func NASIntel() []*Profile {
	nas := func(name string, work, serial, mem, smt, sync float64) *Profile {
		return &Profile{
			Name:         name,
			Adaptivity:   Scalable,
			WorkGI:       work,
			SerialFrac:   serial,
			MemBound:     mem,
			SMTFriendly:  smt,
			Barrier:      true,
			Wait:         Block,
			SyncOverhead: sync,
		}
	}
	lu := nas("lu.C", 12500, 0.010, 0.30, 0.40, 0.006)
	lu.Wait = Spin // lu busy-waits in its pipelined sweeps; IPS overstates utility
	return []*Profile{
		nas("bt.C", 9300, 0.010, 0.35, 0.40, 0.004),
		nas("cg.C", 1350, 0.020, 0.80, 0.10, 0.002),
		nas("ep.C", 760, 0.002, 0.05, 0.90, 0.000),
		nas("ft.C", 2050, 0.015, 0.65, 0.20, 0.002),
		withStartup(nas("is.C", 81, 0.050, 0.75, 0.10, 0.002), 3),
		lu,
		nas("mg.C", 900, 0.030, 0.85, 0.10, 0.002),
		nas("sp.C", 5500, 0.012, 0.55, 0.30, 0.003),
		nas("ua.C", 4700, 0.020, 0.50, 0.20, 0.008),
	}
}

// TBBIntel returns the Intel TBB benchmarks (§6.2). TBB work-steals, so the
// models use dynamic load distribution and no barrier pacing.
func TBBIntel() []*Profile {
	tbb := func(name string, work, serial, mem, smt, sync float64) *Profile {
		return &Profile{
			Name:         name,
			Adaptivity:   Scalable,
			WorkGI:       work,
			SerialFrac:   serial,
			MemBound:     mem,
			SMTFriendly:  smt,
			DynamicLoad:  true,
			Wait:         Block,
			SyncOverhead: sync,
		}
	}
	binpack := tbb("binpack", 175, 0.005, 0.30, 0.50, 0.002)
	binpack.QueueCap = 4
	binpack.QueuePenalty = 1.2
	return []*Profile{
		binpack,
		tbb("fractal", 3100, 0.005, 0.08, 0.60, 0.000),
		tbb("parallel-preorder", 900, 0.020, 0.45, 0.30, 0.006),
		tbb("pi", 2170, 0.001, 0.02, 0.80, 0.000),
		withStartup(tbb("primes", 220, 0.010, 0.15, 0.50, 0.001), 5),
		tbb("seismic", 1125, 0.010, 0.60, 0.30, 0.004),
	}
}

// TensorFlowIntel returns the two TensorFlow Lite image-recognition models
// run through the HARP-enabled wrapper (§6.2). They report an
// application-specific utility (inferences per second).
func TensorFlowIntel() []*Profile {
	return []*Profile{
		{
			Name:         "vgg",
			Adaptivity:   Scalable,
			WorkGI:       3560,
			SerialFrac:   0.06,
			MemBound:     0.30,
			SMTFriendly:  0.50,
			DynamicLoad:  true,
			Wait:         Block,
			SyncOverhead: 0.003,
			OwnUtility:   true,
			UtilityScale: 0.02,
		},
		{
			Name:         "alexnet",
			Adaptivity:   Scalable,
			WorkGI:       900,
			SerialFrac:   0.04,
			MemBound:     0.40,
			SMTFriendly:  0.40,
			DynamicLoad:  true,
			Wait:         Block,
			SyncOverhead: 0.003,
			OwnUtility:   true,
			UtilityScale: 0.2,
		},
	}
}

// NASOdroid returns the NAS benchmarks, class A, as run on the Odroid XU3-E.
func NASOdroid() []*Profile {
	nas := func(name string, work, serial, mem, sync float64) *Profile {
		return &Profile{
			Name:         name,
			Adaptivity:   Scalable,
			WorkGI:       work,
			SerialFrac:   serial,
			MemBound:     mem,
			Barrier:      true,
			Wait:         Block,
			SyncOverhead: sync,
		}
	}
	lu := nas("lu.A", 440, 0.010, 0.30, 0.006)
	lu.Wait = Spin
	return []*Profile{
		nas("bt.A", 330, 0.010, 0.35, 0.004),
		nas("cg.A", 46, 0.020, 0.80, 0.002),
		nas("ep.A", 100, 0.002, 0.05, 0.000),
		nas("ft.A", 67, 0.015, 0.65, 0.002),
		withStartup(nas("is.A", 12, 0.050, 0.75, 0.002), 1),
		lu,
		nas("mg.A", 34, 0.030, 0.85, 0.002),
		nas("sp.A", 200, 0.012, 0.55, 0.003),
		nas("ua.A", 250, 0.020, 0.50, 0.008),
	}
}

// KPNOdroid returns the Kahn-process-network applications (§6.2): mandelbrot
// and lms (Leighton–Micali signatures), each in a custom-adaptive variant
// (implicit data parallelism, scaled through libharp callbacks) and a
// static-topology variant whose process count is fixed at launch.
func KPNOdroid() []*Profile {
	return []*Profile{
		{
			Name:       "mandelbrot",
			Adaptivity: Custom,
			WorkGI:     295,
			SerialFrac: 0.02,
			MemBound:   0.03,
			// The KPN launches with its natural topology (1 source + 4
			// workers); only HARP's parallel-region knob can widen it.
			DefaultThreads: 5,
			DynamicLoad:    true,
			Wait:           Block,
			SyncOverhead:   0.002,
			OwnUtility:     true,
			UtilityScale:   1,
		},
		{
			Name:           "mandelbrot-static",
			Adaptivity:     Static,
			WorkGI:         295,
			SerialFrac:     0.02,
			MemBound:       0.03,
			DynamicLoad:    true,
			Wait:           Block,
			SyncOverhead:   0.002,
			DefaultThreads: 5,
		},
		{
			Name:           "lms",
			Adaptivity:     Custom,
			WorkGI:         180,
			SerialFrac:     0.10,
			MemBound:       0.12,
			DefaultThreads: 4, // natural KPN topology; widened via the HARP knob
			DynamicLoad:    true,
			Wait:           Block,
			SyncOverhead:   0.004,
			OwnUtility:     true,
			UtilityScale:   1,
		},
		{
			Name:           "lms-static",
			Adaptivity:     Static,
			WorkGI:         180,
			SerialFrac:     0.10,
			MemBound:       0.12,
			DynamicLoad:    true,
			Wait:           Block,
			SyncOverhead:   0.004,
			DefaultThreads: 4,
		},
	}
}

// IntelApps returns every Intel single-application workload (9 NAS + 6 TBB +
// 2 TensorFlow), fresh copies safe to mutate.
func IntelApps() []*Profile {
	var out []*Profile
	out = append(out, NASIntel()...)
	out = append(out, TBBIntel()...)
	out = append(out, TensorFlowIntel()...)
	return out
}

// OdroidApps returns every Odroid single-application workload (9 NAS class A
// + 4 KPN variants).
func OdroidApps() []*Profile {
	var out []*Profile
	out = append(out, NASOdroid()...)
	out = append(out, KPNOdroid()...)
	return out
}

// ByName finds a profile by name in the given suite.
func ByName(suite []*Profile, name string) (*Profile, error) {
	for _, p := range suite {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown profile %q", name)
}

func withStartup(p *Profile, startupGI float64) *Profile {
	p.StartupGI = startupGI
	return p
}
