package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/harp-rm/harp/internal/platform"
)

func mustVector(t *testing.T, p *platform.Platform, perKind ...[]int) platform.ResourceVector {
	t.Helper()
	rv, err := platform.VectorOf(p, perKind...)
	if err != nil {
		t.Fatalf("VectorOf: %v", err)
	}
	return rv
}

func mustProfile(t *testing.T, suite []*Profile, name string) *Profile {
	t.Helper()
	p, err := ByName(suite, name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllProfilesValidate(t *testing.T) {
	for _, suite := range [][]*Profile{IntelApps(), OdroidApps()} {
		for _, p := range suite {
			if err := p.Validate(); err != nil {
				t.Errorf("%s: %v", p.Name, err)
			}
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := func() *Profile {
		return &Profile{Name: "x", Adaptivity: Scalable, WorkGI: 1, Wait: Block}
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"bad adaptivity", func(p *Profile) { p.Adaptivity = 0 }},
		{"zero work", func(p *Profile) { p.WorkGI = 0 }},
		{"serial one", func(p *Profile) { p.SerialFrac = 1 }},
		{"mem bound 2", func(p *Profile) { p.MemBound = 2 }},
		{"smt friendly neg", func(p *Profile) { p.SMTFriendly = -0.1 }},
		{"bad wait", func(p *Profile) { p.Wait = 0 }},
		{"neg queue", func(p *Profile) { p.QueueCap = -1 }},
		{"neg sync", func(p *Profile) { p.SyncOverhead = -1 }},
		{"neg threads", func(p *Profile) { p.DefaultThreads = -1 }},
		{"own utility no scale", func(p *Profile) { p.OwnUtility = true }},
		{"neg startup", func(p *Profile) { p.StartupGI = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("Validate accepted bad profile")
			}
		})
	}
}

func TestSuiteContents(t *testing.T) {
	if got := len(IntelApps()); got != 17 {
		t.Errorf("Intel suite size = %d, want 17 (9 NAS + 6 TBB + 2 TF)", got)
	}
	if got := len(OdroidApps()); got != 13 {
		t.Errorf("Odroid suite size = %d, want 13 (9 NAS + 4 KPN)", got)
	}
	if _, err := ByName(IntelApps(), "no-such-app"); err == nil {
		t.Error("ByName(unknown) succeeded")
	}
}

func TestDefaultThreads(t *testing.T) {
	intel := platform.RaptorLake()
	ep := mustProfile(t, IntelApps(), "ep.C")
	if got := ep.Threads(intel); got != 32 {
		t.Errorf("ep default threads = %d, want 32 (one per hw thread)", got)
	}
	static := mustProfile(t, OdroidApps(), "mandelbrot-static")
	if got := static.Threads(platform.OdroidXU3()); got != 5 {
		t.Errorf("static KPN threads = %d, want 5 (fixed topology)", got)
	}
}

func TestRespondEmptyPlacement(t *testing.T) {
	ep := mustProfile(t, IntelApps(), "ep.C")
	resp := ep.Respond(platform.RaptorLake(), nil, Conditions{MemBWGips: 60})
	if resp.UsefulRate != 0 || resp.ExecRate != 0 {
		t.Fatalf("empty placement response = %+v, want zero", resp)
	}
}

func TestSlotsForVectorShape(t *testing.T) {
	p := platform.RaptorLake()
	rv := mustVector(t, p, []int{1, 2}, []int{4}) // paper example: 9 hw threads
	slots := SlotsForVector(p, rv)
	if len(slots) != 9 {
		t.Fatalf("slots = %d, want 9", len(slots))
	}
	var smtPairs, singles, eCores int
	for _, s := range slots {
		if s.Share != 1 || s.FreqScale != 1 {
			t.Fatalf("slot %+v not exclusive full-speed", s)
		}
		switch {
		case s.Kind == 0 && s.BusyOnCore == 2:
			smtPairs++
		case s.Kind == 0 && s.BusyOnCore == 1:
			singles++
		case s.Kind == 1:
			eCores++
		}
	}
	if smtPairs != 4 || singles != 1 || eCores != 4 {
		t.Fatalf("slot mix = (%d smt, %d single, %d E), want (4, 1, 4)", smtPairs, singles, eCores)
	}
}

// ep must scale with more resources and benefit from full SMT pairs (Fig. 1a).
func TestEPScalesAndLikesSMT(t *testing.T) {
	p := platform.RaptorLake()
	ep := mustProfile(t, IntelApps(), "ep.C")

	full := EvaluateVector(p, ep, p.Capacity())
	eOnly := EvaluateVector(p, ep, mustVector(t, p, []int{0, 0}, []int{16}))
	if full.TimeSec >= eOnly.TimeSec {
		t.Errorf("ep full machine (%.2fs) not faster than E-only (%.2fs)", full.TimeSec, eOnly.TimeSec)
	}

	smtPairs := EvaluateVector(p, ep, mustVector(t, p, []int{0, 4}, []int{0}))  // 4 cores, 8 threads
	smtSingle := EvaluateVector(p, ep, mustVector(t, p, []int{4, 0}, []int{0})) // 4 cores, 4 threads
	if smtPairs.UsefulRate <= smtSingle.UsefulRate {
		t.Errorf("ep with SMT pairs (%.1f GI/s) not above single-thread cores (%.1f GI/s)",
			smtPairs.UsefulRate, smtSingle.UsefulRate)
	}
}

// mg must be bandwidth-bound: the full machine burns more energy than a
// modest E-core allocation without a matching speedup (Fig. 1b).
func TestMGPrefersECores(t *testing.T) {
	p := platform.RaptorLake()
	mg := mustProfile(t, IntelApps(), "mg.C")

	full := EvaluateVector(p, mg, p.Capacity())
	e8 := EvaluateVector(p, mg, mustVector(t, p, []int{0, 0}, []int{8}))

	if full.EnergyJ <= e8.EnergyJ {
		t.Errorf("mg full machine energy %.0f J not above 8×E %.0f J", full.EnergyJ, e8.EnergyJ)
	}
	// The speedup from tripling the resources must be marginal (< 25 %).
	if e8.TimeSec/full.TimeSec > 1.25 {
		t.Errorf("mg full machine %.2fs vs 8×E %.2fs: speedup too large for a BW-bound app",
			full.TimeSec, e8.TimeSec)
	}
	// Energy-wise, 8 E-cores must beat 8 P-cores for memory-bound work.
	p8 := EvaluateVector(p, mg, mustVector(t, p, []int{0, 8}, []int{0}))
	if e8.EnergyJ >= p8.EnergyJ {
		t.Errorf("mg 8×E energy %.0f J not below 8×P %.0f J", e8.EnergyJ, p8.EnergyJ)
	}
}

// binpack's shared queue must collapse at the 32-thread default: the paper
// reports a 6.91× speedup when HARP scales it down (§6.3.1).
func TestBinpackQueueCollapse(t *testing.T) {
	p := platform.RaptorLake()
	binpack := mustProfile(t, IntelApps(), "binpack")

	wide := EvaluateVector(p, binpack, p.Capacity()) // 32 threads
	narrow := EvaluateVector(p, binpack, mustVector(t, p, []int{4, 0}, []int{0}))

	speedup := wide.TimeSec / narrow.TimeSec
	if speedup < 4 || speedup > 12 {
		t.Errorf("binpack 32→4 thread speedup = %.2f×, want roughly 7× (4–12)", speedup)
	}
}

// Barrier-coupled apps on mixed cores are paced by the efficiency cores;
// work-stealing apps are not.
func TestBarrierPacingOnMixedCores(t *testing.T) {
	p := platform.RaptorLake()
	mixed := mustVector(t, p, []int{8, 0}, []int{8}) // 8 P threads + 8 E threads

	barrier := &Profile{
		Name: "b", Adaptivity: Scalable, WorkGI: 100, Wait: Block, Barrier: true,
	}
	stealing := &Profile{
		Name: "s", Adaptivity: Scalable, WorkGI: 100, Wait: Block, DynamicLoad: true,
	}
	rb := EvaluateVector(p, barrier, mixed)
	rs := EvaluateVector(p, stealing, mixed)
	if rb.UsefulRate >= rs.UsefulRate {
		t.Errorf("barrier app rate %.1f not below work-stealing rate %.1f on mixed cores",
			rb.UsefulRate, rs.UsefulRate)
	}
	// The barrier app must be paced at ≈ 16 × E-rate.
	slots := SlotsForVector(p, mixed)
	var eRate float64
	for _, s := range slots {
		if s.Kind == 1 {
			eRate = p.Kinds[1].ComputeRate()
			_ = s
			break
		}
	}
	want := 16 * eRate
	if math.Abs(rb.UsefulRate-want)/want > 0.05 {
		t.Errorf("barrier pacing = %.1f GI/s, want ≈ %.1f (16 × E-rate)", rb.UsefulRate, want)
	}
}

// Spin waiting must inflate IPS and busy time above the blocking equivalent.
func TestSpinInflatesIPSAndPower(t *testing.T) {
	p := platform.RaptorLake()
	mixed := mustVector(t, p, []int{8, 0}, []int{8})

	mk := func(wait WaitPolicy) *Profile {
		return &Profile{
			Name: "w", Adaptivity: Scalable, WorkGI: 100, Wait: wait, Barrier: true,
		}
	}
	spin := EvaluateVector(p, mk(Spin), mixed)
	block := EvaluateVector(p, mk(Block), mixed)

	if spin.UsefulRate != block.UsefulRate {
		t.Errorf("wait policy changed useful rate: %.2f vs %.2f", spin.UsefulRate, block.UsefulRate)
	}
	if spin.IPS <= block.IPS {
		t.Errorf("spin IPS %.1f not above block IPS %.1f", spin.IPS, block.IPS)
	}
	if spin.PowerWatts <= block.PowerWatts {
		t.Errorf("spin power %.1f W not above block power %.1f W", spin.PowerWatts, block.PowerWatts)
	}
}

// Oversubscribed placements (time-sharing) must be slower than matched ones,
// and dramatically so for barrier apps (lock-holder preemption, §2.2).
func TestOversubscriptionPenalty(t *testing.T) {
	p := platform.RaptorLake()
	// 4 exclusive P hardware threads.
	exclusive := make([]Slot, 4)
	for i := range exclusive {
		exclusive[i] = Slot{Kind: 0, BusyOnCore: 1, Share: 1, FreqScale: 1}
	}
	// 16 threads time-sharing the same 4 hardware threads.
	shared := make([]Slot, 16)
	for i := range shared {
		shared[i] = Slot{Kind: 0, BusyOnCore: 1, Share: 0.25, FreqScale: 1}
	}
	cond := Conditions{MemBWGips: p.MemBWGips}

	barrier := &Profile{Name: "b", Adaptivity: Static, WorkGI: 1, Wait: Block, Barrier: true}
	loose := &Profile{Name: "l", Adaptivity: Static, WorkGI: 1, Wait: Block, DynamicLoad: true}

	exB := barrier.Respond(p, exclusive, cond).UsefulRate
	shB := barrier.Respond(p, shared, cond).UsefulRate
	exL := loose.Respond(p, exclusive, cond).UsefulRate
	shL := loose.Respond(p, shared, cond).UsefulRate

	if shB >= exB || shL >= exL {
		t.Fatalf("time-sharing not penalised: barrier %.2f→%.2f, loose %.2f→%.2f", exB, shB, exL, shL)
	}
	lossB := shB / exB
	lossL := shL / exL
	if lossB >= lossL {
		t.Errorf("barrier app retained %.0f%% under oversubscription, loose app %.0f%%; barrier should suffer more",
			100*lossB, 100*lossL)
	}
}

// The memory bandwidth cap must bound useful progress.
func TestMemoryBandwidthCap(t *testing.T) {
	p := platform.RaptorLake()
	mg := mustProfile(t, IntelApps(), "mg.C")
	resp := mg.Respond(p, SlotsForVector(p, p.Capacity()), Conditions{MemBWGips: p.MemBWGips})
	cap := p.MemBWGips / mg.MemBound
	if resp.UsefulRate > cap+1e-9 {
		t.Errorf("useful rate %.1f exceeds BW cap %.1f", resp.UsefulRate, cap)
	}
	// Halving the available bandwidth must reduce the rate.
	half := mg.Respond(p, SlotsForVector(p, p.Capacity()), Conditions{MemBWGips: p.MemBWGips / 2})
	if half.UsefulRate >= resp.UsefulRate {
		t.Errorf("halving bandwidth did not slow mg: %.1f vs %.1f", half.UsefulRate, resp.UsefulRate)
	}
}

// Busy fractions must stay within [0, share].
func TestBusyFractionsBounded(t *testing.T) {
	p := platform.RaptorLake()
	for _, prof := range IntelApps() {
		slots := SlotsForVector(p, p.Capacity())
		resp := prof.Respond(p, slots, Conditions{MemBWGips: p.MemBWGips})
		if len(resp.Busy) != len(slots) {
			t.Fatalf("%s: busy len %d, want %d", prof.Name, len(resp.Busy), len(slots))
		}
		for i, b := range resp.Busy {
			if b < 0 || b > slots[i].Share+1e-9 {
				t.Errorf("%s: busy[%d] = %g outside [0, %g]", prof.Name, i, b, slots[i].Share)
			}
		}
		if resp.ExecRate+1e-9 < resp.UsefulRate {
			t.Errorf("%s: exec rate %.2f below useful rate %.2f", prof.Name, resp.ExecRate, resp.UsefulRate)
		}
	}
}

// ep.C's calibration anchor: the paper reports ≈2.43 s under CFS (§6.5.1),
// which our full-machine projection should approximate.
func TestEPRuntimeCalibration(t *testing.T) {
	p := platform.RaptorLake()
	ep := mustProfile(t, IntelApps(), "ep.C")
	eval := EvaluateVector(p, ep, p.Capacity())
	if eval.TimeSec < 1.5 || eval.TimeSec > 4.0 {
		t.Errorf("ep.C full-machine time = %.2fs, want ≈2.4s (1.5–4.0)", eval.TimeSec)
	}
}

// Own-utility apps must report utility in their own units, others IPS.
func TestUtilityMetricSelection(t *testing.T) {
	p := platform.RaptorLake()
	vgg := mustProfile(t, IntelApps(), "vgg")
	ep := mustProfile(t, IntelApps(), "ep.C")
	rv := p.Capacity()

	ev := EvaluateVector(p, vgg, rv)
	if math.Abs(ev.Utility-ev.UsefulRate*vgg.UtilityScale) > 1e-9 {
		t.Errorf("vgg utility = %g, want useful·scale = %g", ev.Utility, ev.UsefulRate*vgg.UtilityScale)
	}
	ee := EvaluateVector(p, ep, rv)
	if ee.Utility != ee.IPS {
		t.Errorf("ep utility = %g, want IPS %g", ee.Utility, ee.IPS)
	}
}

// Zero-resource evaluation must yield an infinite projected time, not NaN.
func TestEvaluateZeroVector(t *testing.T) {
	p := platform.RaptorLake()
	ep := mustProfile(t, IntelApps(), "ep.C")
	eval := EvaluateVector(p, ep, platform.NewResourceVector(p))
	if !math.IsInf(eval.TimeSec, 1) || !math.IsInf(eval.EnergyJ, 1) {
		t.Errorf("zero vector eval = %+v, want +Inf time/energy", eval)
	}
	if math.IsNaN(eval.Utility) {
		t.Error("zero vector utility is NaN")
	}
}

// Odroid: LITTLE cores must be the efficient choice for memory-bound apps.
func TestOdroidLittlePreference(t *testing.T) {
	p := platform.OdroidXU3()
	mg := mustProfile(t, OdroidApps(), "mg.A")
	big := EvaluateVector(p, mg, mustVector(t, p, []int{4}, []int{0}))
	little := EvaluateVector(p, mg, mustVector(t, p, []int{0}, []int{4}))
	if little.EnergyJ >= big.EnergyJ {
		t.Errorf("mg.A on LITTLE energy %.1f J not below big %.1f J", little.EnergyJ, big.EnergyJ)
	}
}

func TestAdaptivityString(t *testing.T) {
	tests := []struct {
		give Adaptivity
		want string
	}{
		{Static, "static"},
		{Scalable, "scalable"},
		{Custom, "custom"},
		{Adaptivity(9), "adaptivity(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

// Property: for random profiles and placements, responses respect the model
// invariants — busy fractions within [0, share], non-negative rates, IPS at
// least the useful rate, and memory traffic consistent with the rates.
func TestRespondInvariantsProperty(t *testing.T) {
	plat := platform.RaptorLake()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prof := &Profile{
			Name:         "q",
			Adaptivity:   Scalable,
			WorkGI:       1 + r.Float64()*1000,
			SerialFrac:   r.Float64() * 0.5,
			MemBound:     r.Float64(),
			SMTFriendly:  r.Float64(),
			Barrier:      r.Intn(2) == 0,
			DynamicLoad:  r.Intn(2) == 0,
			Wait:         WaitPolicy(1 + r.Intn(2)),
			SyncOverhead: r.Float64() * 0.01,
		}
		if err := prof.Validate(); err != nil {
			return false
		}
		n := 1 + r.Intn(40)
		slots := make([]Slot, n)
		for i := range slots {
			kind := platform.KindID(r.Intn(len(plat.Kinds)))
			busy := 1
			if plat.Kinds[kind].SMT > 1 && r.Intn(2) == 0 {
				busy = 2
			}
			slots[i] = Slot{
				Kind:       kind,
				BusyOnCore: busy,
				Share:      0.1 + 0.9*r.Float64(),
				FreqScale:  0.9 + 0.1*r.Float64(),
			}
		}
		resp := prof.Respond(plat, slots, Conditions{MemBWGips: plat.MemBWGips})
		if resp.UsefulRate < 0 || resp.ExecRate+1e-9 < resp.UsefulRate {
			return false
		}
		if resp.MemTraffic < 0 || resp.MemTraffic > resp.ExecRate*prof.MemBound+1e-9 {
			return false
		}
		if len(resp.Busy) != n {
			return false
		}
		for i, b := range resp.Busy {
			if b < -1e-9 || b > slots[i].Share+1e-9 {
				return false
			}
		}
		// Power must be non-negative and bounded by the platform maximum.
		rv := plat.Capacity()
		if p := AllocPower(plat, rv, slots, resp.Busy); p < 0 || p > plat.MaxPower() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
