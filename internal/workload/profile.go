// Package workload models application behaviour on heterogeneous processors.
//
// HARP itself never inspects application internals — it only observes the
// (allocation → utility, power) response and flips adaptivity knobs through
// libharp. This package provides that response analytically: each benchmark
// from the paper's evaluation (NAS, Intel TBB, TensorFlow, KPN) is described
// by a Profile capturing the first-order effects that drive scheduling on
// heterogeneous CPUs — Amdahl fractions, memory-boundedness (which shrinks
// the P/E speed gap), SMT friendliness, barrier imbalance across unequal
// cores, shared-queue contention, busy-wait spinning, and time-sharing
// overheads.
package workload

import (
	"fmt"
	"math"

	"github.com/harp-rm/harp/internal/platform"
)

// Adaptivity classifies how an application can react to allocation changes
// (§4.1.3 of the paper).
type Adaptivity int

// Adaptivity values.
const (
	// Static applications cannot adapt; libharp can only restrict them to a
	// core subset (affinity), so thread counts stay fixed.
	Static Adaptivity = iota + 1
	// Scalable applications (OpenMP, TBB, the TensorFlow wrapper) can change
	// their parallelisation degree at runtime once libharp makes them
	// malleable.
	Scalable
	// Custom applications (KPN) expose application-specific knobs via
	// libharp callbacks, including dynamic load redistribution.
	Custom
)

// String implements fmt.Stringer.
func (a Adaptivity) String() string {
	switch a {
	case Static:
		return "static"
	case Scalable:
		return "scalable"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("adaptivity(%d)", int(a))
	}
}

// WaitPolicy determines what an application thread does while it waits at a
// barrier, lock or empty queue.
type WaitPolicy int

// WaitPolicy values.
const (
	// Block yields the hardware thread (futex-style): no instructions are
	// executed and almost no power is drawn while waiting.
	Block WaitPolicy = iota + 1
	// Spin busy-waits: the hardware thread keeps retiring (useless)
	// instructions at full speed, inflating IPS and power. This is how lu's
	// measured IPS overstates its true utility (§6.3.1).
	Spin
)

// Tunables of the shared machine model. They are package-level constants so
// every scheduler sees the same physics.
const (
	// csOverheadAlpha is the throughput loss per unit of oversubscription
	// from context switching and cache pollution.
	csOverheadAlpha = 0.08
	// lockHolderAlpha is the additional loss for barrier-coupled apps whose
	// lock/barrier holders get preempted while time-sharing (§2.2).
	lockHolderAlpha = 0.45
	// barrierSpinFrac is the fraction of full power a blocking barrier
	// waiter still burns: OpenMP runtimes spin actively at barriers before
	// sleeping (libgomp's wait policy), so threads pacing on slower
	// siblings are far from idle.
	barrierSpinFrac = 0.4
)

// Profile is the analytic behaviour model of one application.
type Profile struct {
	// Name identifies the benchmark, e.g. "ep.C" or "binpack".
	Name string
	// Adaptivity is the application's libharp adaptivity class.
	Adaptivity Adaptivity
	// WorkGI is the total useful work in giga-instructions.
	WorkGI float64
	// SerialFrac is the Amdahl serial fraction in [0, 1).
	SerialFrac float64
	// MemBound in [0, 1] is the memory intensity. It both shrinks the
	// per-core speed through the kind's MemPenalty and generates memory
	// traffic against the platform bandwidth cap.
	MemBound float64
	// SMTFriendly in [0, 1] scales how much of a core kind's maximum SMT
	// gain the application realises when both hardware threads are busy.
	SMTFriendly float64
	// Barrier marks barrier-coupled data parallelism: with a static work
	// split, every iteration waits for the slowest thread, so mixed
	// P/E allocations are paced by the efficiency cores.
	Barrier bool
	// DynamicLoad marks internal dynamic load distribution (TBB work
	// stealing, adaptive KPNs): thread speeds add up instead of being paced
	// by the slowest.
	DynamicLoad bool
	// Wait is the waiting behaviour (Block or Spin).
	Wait WaitPolicy
	// QueueCap, when positive, models a shared-queue bottleneck: beyond
	// QueueCap threads, contention divides throughput by
	// 1 + QueuePenalty·(threads − QueueCap). This is binpack's collapse.
	QueueCap int
	// QueuePenalty is the contention coefficient (see QueueCap).
	QueuePenalty float64
	// SyncOverhead is the per-extra-thread synchronisation cost; throughput
	// is divided by 1 + SyncOverhead·(threads − 1).
	SyncOverhead float64
	// DefaultThreads is the parallelisation degree the application chooses
	// on its own (moldable, fixed at launch). Zero means "one per hardware
	// thread", the common OpenMP/TBB default.
	DefaultThreads int
	// OwnUtility marks applications that report an application-specific
	// utility metric through libharp instead of relying on IPS.
	OwnUtility bool
	// UtilityScale converts useful giga-instructions to the app-specific
	// utility unit (e.g. transactions). Only meaningful with OwnUtility.
	UtilityScale float64
	// StartupGI is extra serial work executed once at startup (process
	// launch, input loading). It makes short-running apps (primes, is)
	// sensitive to any management-induced slow start.
	StartupGI float64
}

// Validate checks the profile for model-consistent parameters.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile with empty name")
	case p.Adaptivity < Static || p.Adaptivity > Custom:
		return fmt.Errorf("workload: %s: bad adaptivity %d", p.Name, p.Adaptivity)
	case p.WorkGI <= 0:
		return fmt.Errorf("workload: %s: work %g", p.Name, p.WorkGI)
	case p.SerialFrac < 0 || p.SerialFrac >= 1:
		return fmt.Errorf("workload: %s: serial fraction %g", p.Name, p.SerialFrac)
	case p.MemBound < 0 || p.MemBound > 1:
		return fmt.Errorf("workload: %s: memory boundedness %g", p.Name, p.MemBound)
	case p.SMTFriendly < 0 || p.SMTFriendly > 1:
		return fmt.Errorf("workload: %s: SMT friendliness %g", p.Name, p.SMTFriendly)
	case p.Wait != Block && p.Wait != Spin:
		return fmt.Errorf("workload: %s: bad wait policy %d", p.Name, p.Wait)
	case p.QueueCap < 0 || p.QueuePenalty < 0:
		return fmt.Errorf("workload: %s: bad queue model (%d, %g)", p.Name, p.QueueCap, p.QueuePenalty)
	case p.SyncOverhead < 0:
		return fmt.Errorf("workload: %s: sync overhead %g", p.Name, p.SyncOverhead)
	case p.DefaultThreads < 0:
		return fmt.Errorf("workload: %s: default threads %d", p.Name, p.DefaultThreads)
	case p.OwnUtility && p.UtilityScale <= 0:
		return fmt.Errorf("workload: %s: own utility without a utility scale", p.Name)
	case p.StartupGI < 0:
		return fmt.Errorf("workload: %s: startup work %g", p.Name, p.StartupGI)
	}
	return nil
}

// Threads returns the parallelisation degree the application uses when left
// alone on the given platform (its moldable default).
func (p *Profile) Threads(plat *platform.Platform) int {
	if p.DefaultThreads > 0 {
		return p.DefaultThreads
	}
	return plat.NumHWThreads()
}

// Slot describes the share of one hardware thread given to one application
// thread. The simulator builds slots from the global placement; callers that
// only need exclusive coarse allocations can use SlotsForVector.
type Slot struct {
	// Kind is the core kind the hardware thread belongs to.
	Kind platform.KindID
	// BusyOnCore is how many hardware threads of the same physical core are
	// busy (with any application); it determines the SMT sharing factor.
	BusyOnCore int
	// Share is the fraction of the hardware thread's time given to this
	// application thread (1 = exclusive).
	Share float64
	// FreqScale is the current frequency as a fraction of the kind's
	// maximum (set by the DVFS governor model).
	FreqScale float64
}

// Conditions carries machine-level context for a response evaluation.
type Conditions struct {
	// MemBWGips is the memory bandwidth available to this application.
	MemBWGips float64
}

// Response is the application's instantaneous behaviour under a placement.
type Response struct {
	// UsefulRate is the rate of useful work in giga-instructions/s; it is
	// what actually advances the application towards completion.
	UsefulRate float64
	// ExecRate is the rate of retired instructions in giga-instructions/s —
	// what a perf-style IPS counter observes. Spinning inflates it above
	// UsefulRate.
	ExecRate float64
	// Busy holds, per slot, the fraction of the granted share the thread
	// keeps the hardware busy (drives the power model).
	Busy []float64
	// MemTraffic is the memory-bound instruction rate, used by the machine
	// to arbitrate the shared bandwidth cap.
	MemTraffic float64
}

// Respond evaluates the profile on a set of slots (one per application
// thread). It returns the zero Response for an empty placement.
func (p *Profile) Respond(plat *platform.Platform, slots []Slot, cond Conditions) Response {
	n := len(slots)
	if n == 0 {
		return Response{}
	}

	// Per-thread delivered rates and raw capacity.
	rates := make([]float64, n)
	var sumShare float64
	minRate, maxRate := math.Inf(1), 0.0
	var sumRate float64
	for i, s := range slots {
		kind := plat.Kinds[s.Kind]
		base := kind.ComputeRate() * s.FreqScale * (1 - p.MemBound*kind.MemPenalty)
		smt := 1.0
		if s.BusyOnCore > 1 {
			gain := 1 + p.SMTFriendly*kind.SMTMaxGain
			smt = gain / float64(s.BusyOnCore)
		}
		r := base * smt * s.Share
		rates[i] = r
		sumRate += r
		sumShare += s.Share
		minRate = math.Min(minRate, r)
		maxRate = math.Max(maxRate, r)
	}

	// Time-sharing overheads: context switching for everyone, lock-holder
	// preemption on top for barrier-coupled apps.
	oversub := float64(n) / math.Max(sumShare, 1e-9)
	if oversub > 1 {
		eff := 1 / (1 + csOverheadAlpha*(oversub-1))
		if p.Barrier && !p.DynamicLoad {
			eff /= 1 + lockHolderAlpha*(oversub-1)
		}
		sumRate *= eff
		minRate *= eff
		maxRate *= eff
		for i := range rates {
			rates[i] *= eff
		}
	}

	// Parallel aggregate: statically split barrier apps are paced by the
	// slowest thread; dynamic ones add their speeds.
	var parallel float64
	if p.Barrier && !p.DynamicLoad {
		parallel = float64(n) * minRate
	} else {
		parallel = sumRate
	}

	// Shared-queue contention (binpack).
	if p.QueueCap > 0 && n > p.QueueCap {
		parallel /= 1 + p.QueuePenalty*float64(n-p.QueueCap)
	}

	// Generic synchronisation overhead.
	if n > 1 {
		parallel /= 1 + p.SyncOverhead*float64(n-1)
	}

	// Memory bandwidth ceiling.
	if p.MemBound > 0 && cond.MemBWGips > 0 {
		parallel = math.Min(parallel, cond.MemBWGips/p.MemBound)
	}

	// Amdahl blend: serial phases run on the fastest granted thread.
	useful := parallel
	if p.SerialFrac > 0 {
		useful = 1 / (p.SerialFrac/maxRate + (1-p.SerialFrac)/parallel)
	}

	// Productive fraction of the granted capacity: how much of the busy time
	// is useful versus waiting.
	phi := 1.0
	if sumRate > 0 {
		phi = math.Min(1, useful/sumRate)
	}

	resp := Response{
		UsefulRate: useful,
		Busy:       make([]float64, n),
		MemTraffic: useful * p.MemBound,
	}
	switch p.Wait {
	case Spin:
		// Waiting threads burn their whole share executing spin loops.
		resp.ExecRate = sumRate
		for i, s := range slots {
			resp.Busy[i] = s.Share
		}
		resp.MemTraffic = sumRate * p.MemBound
	default: // Block
		// Barrier waiters spin (PAUSE loops) before sleeping: they burn
		// power (barrierSpinFrac) but retire almost no instructions, so the
		// IPS observable stays at the useful rate.
		resp.ExecRate = useful
		waitBurn := 0.0
		if p.Barrier && !p.DynamicLoad {
			waitBurn = barrierSpinFrac
		}
		for i, s := range slots {
			resp.Busy[i] = s.Share * (phi + waitBurn*(1-phi))
		}
	}
	return resp
}

// SlotsForVector builds exclusive slots (share 1, max frequency) for the
// given extended resource vector with exactly one application thread per
// granted hardware thread — the configuration HARP's coarse-grained
// allocation targets.
func SlotsForVector(plat *platform.Platform, rv platform.ResourceVector) []Slot {
	slots := make([]Slot, 0, rv.Threads())
	for kind, counts := range rv.Counts {
		for tIdx, cores := range counts {
			busy := tIdx + 1
			for c := 0; c < cores; c++ {
				for t := 0; t < busy; t++ {
					slots = append(slots, Slot{
						Kind:       platform.KindID(kind),
						BusyOnCore: busy,
						Share:      1,
						FreqScale:  1,
					})
				}
			}
		}
	}
	return slots
}

// EvaluateVector is the closed-form evaluator used by offline DSE, Fig. 1
// sweeps and ground-truth tables: it reports the steady-state utility
// (useful rate for OwnUtility apps, IPS otherwise), the CPU power drawn by
// the allocation, and the projected execution time for the whole profile.
func EvaluateVector(plat *platform.Platform, p *Profile, rv platform.ResourceVector) VectorEval {
	slots := SlotsForVector(plat, rv)
	resp := p.Respond(plat, slots, Conditions{MemBWGips: plat.MemBWGips})
	power := AllocPower(plat, rv, slots, resp.Busy)

	eval := VectorEval{
		Vector:     rv,
		UsefulRate: resp.UsefulRate,
		IPS:        resp.ExecRate,
		PowerWatts: power,
	}
	if resp.UsefulRate > 0 {
		eval.TimeSec = (p.WorkGI + p.StartupGI) / resp.UsefulRate
		eval.EnergyJ = eval.TimeSec * power
	} else {
		eval.TimeSec = math.Inf(1)
		eval.EnergyJ = math.Inf(1)
	}
	eval.Utility = eval.IPS
	if p.OwnUtility {
		eval.Utility = resp.UsefulRate * p.UtilityScale
	}
	return eval
}

// VectorEval is the result of EvaluateVector.
type VectorEval struct {
	Vector     platform.ResourceVector
	UsefulRate float64 // GI/s of useful work
	IPS        float64 // GI/s observed by perf
	Utility    float64 // utility metric HARP would see
	PowerWatts float64 // CPU power attributable to the allocation
	TimeSec    float64 // projected completion time
	EnergyJ    float64 // projected energy (power × time)
}

// AllocPower computes the power attributable to an exclusive allocation: the
// dynamic power of its busy hardware threads plus the idle power of the cores
// it occupies. Unallocated cores and the uncore are accounted at the machine
// level by the simulator.
func AllocPower(plat *platform.Platform, rv platform.ResourceVector, slots []Slot, busy []float64) float64 {
	var w float64
	for kind := range rv.Counts {
		w += float64(rv.Cores(platform.KindID(kind))) * plat.Kinds[kind].IdleWatts
	}
	for i, s := range slots {
		b := 1.0
		if i < len(busy) {
			b = busy[i]
		}
		kind := plat.Kinds[s.Kind]
		w += kind.ActiveWatts * kind.PowerShare(s.BusyOnCore) * b * s.FreqScale * s.FreqScale
	}
	return w
}
