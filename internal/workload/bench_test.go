package workload

import (
	"testing"

	"github.com/harp-rm/harp/internal/platform"
)

// BenchmarkRespond measures one behaviour-model evaluation on a full-machine
// placement — called twice per application per simulation quantum.
func BenchmarkRespond(b *testing.B) {
	plat := platform.RaptorLake()
	prof, err := ByName(IntelApps(), "ft.C")
	if err != nil {
		b.Fatal(err)
	}
	slots := SlotsForVector(plat, plat.Capacity())
	cond := Conditions{MemBWGips: plat.MemBWGips}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := prof.Respond(plat, slots, cond)
		if resp.UsefulRate <= 0 {
			b.Fatal("no progress")
		}
	}
}

// BenchmarkEvaluateVector measures the closed-form evaluator used by offline
// DSE and the Fig. 1 sweep.
func BenchmarkEvaluateVector(b *testing.B) {
	plat := platform.RaptorLake()
	prof, err := ByName(IntelApps(), "mg.C")
	if err != nil {
		b.Fatal(err)
	}
	rv := plat.Capacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := EvaluateVector(plat, prof, rv)
		if ev.TimeSec <= 0 {
			b.Fatal("bad evaluation")
		}
	}
}
