package workload

import (
	"testing"

	"github.com/harp-rm/harp/internal/platform"
)

// TestIntelBenchmarkCharacter pins the qualitative behaviour of every Intel
// workload — the properties the paper's evaluation narrative depends on.
// "paceBound" marks barrier-coupled apps whose mixed-core rate is paced by
// the slowest thread; "bwBound" marks apps whose full-machine rate hits the
// memory-bandwidth ceiling.
func TestIntelBenchmarkCharacter(t *testing.T) {
	plat := platform.RaptorLake()
	suite := IntelApps()
	tests := []struct {
		name      string
		bwBound   bool
		paceBound bool
	}{
		{name: "bt.C", bwBound: true, paceBound: true},
		{name: "cg.C", bwBound: true, paceBound: true},
		{name: "ep.C", bwBound: false, paceBound: true},
		{name: "ft.C", bwBound: true, paceBound: true},
		{name: "is.C", bwBound: true, paceBound: true},
		{name: "lu.C", bwBound: true, paceBound: true},
		{name: "mg.C", bwBound: true, paceBound: true},
		{name: "sp.C", bwBound: true, paceBound: true},
		{name: "ua.C", bwBound: true, paceBound: true},
		{name: "binpack", bwBound: false, paceBound: false},
		{name: "fractal", bwBound: false, paceBound: false},
		{name: "parallel-preorder", bwBound: true, paceBound: false},
		{name: "pi", bwBound: false, paceBound: false},
		{name: "primes", bwBound: false, paceBound: false},
		{name: "seismic", bwBound: true, paceBound: false},
		{name: "vgg", bwBound: true, paceBound: false},
		{name: "alexnet", bwBound: true, paceBound: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prof := mustProfile(t, suite, tt.name)

			// Bandwidth-boundedness: the cap is binding when doubling the
			// available bandwidth makes the full-machine rate faster.
			slots := SlotsForVector(plat, plat.Capacity())
			normal := prof.Respond(plat, slots, Conditions{MemBWGips: plat.MemBWGips})
			doubled := prof.Respond(plat, slots, Conditions{MemBWGips: 2 * plat.MemBWGips})
			binding := doubled.UsefulRate > normal.UsefulRate*1.03
			if binding != tt.bwBound {
				t.Errorf("bwBound = %v, want %v (rate %.1f, with 2×BW %.1f)",
					binding, tt.bwBound, normal.UsefulRate, doubled.UsefulRate)
			}

			// Barrier pacing: statically split apps are paced by the
			// slowest thread on mixed cores.
			paced := prof.Barrier && !prof.DynamicLoad
			if paced != tt.paceBound {
				t.Errorf("paceBound = %v, want %v", paced, tt.paceBound)
			}
		})
	}
}

// TestWorkloadScalingMonotonicity: for work-stealing apps, adding exclusive
// resources never reduces throughput.
func TestWorkloadScalingMonotonicity(t *testing.T) {
	plat := platform.RaptorLake()
	for _, prof := range IntelApps() {
		if !prof.DynamicLoad || prof.QueueCap > 0 {
			continue // barrier pacing and queue contention are legitimately non-monotone
		}
		t.Run(prof.Name, func(t *testing.T) {
			prev := 0.0
			for e := 1; e <= 16; e++ {
				rv, err := platform.VectorOf(plat, []int{0, 0}, []int{e})
				if err != nil {
					t.Fatal(err)
				}
				ev := EvaluateVector(plat, prof, rv)
				if ev.UsefulRate+1e-9 < prev {
					t.Fatalf("rate dropped when adding E-core %d: %.3f → %.3f", e, prev, ev.UsefulRate)
				}
				prev = ev.UsefulRate
			}
		})
	}
}

// TestShortRunningAppsAreShort: the startup-overhead narrative (§6.3.1,
// §6.4.1) needs primes and is to finish within a couple of seconds under the
// baseline.
func TestShortRunningAppsAreShort(t *testing.T) {
	intel := platform.RaptorLake()
	for _, name := range []string{"is.C", "primes"} {
		prof := mustProfile(t, IntelApps(), name)
		ev := EvaluateVector(intel, prof, intel.Capacity())
		if ev.TimeSec > 3 {
			t.Errorf("%s full-machine time = %.2fs, want < 3s", name, ev.TimeSec)
		}
	}
	odroid := platform.OdroidXU3()
	is := mustProfile(t, OdroidApps(), "is.A")
	ev := EvaluateVector(odroid, is, odroid.Capacity())
	if ev.TimeSec > 6 {
		t.Errorf("is.A full-machine time = %.2fs, want < 6s", ev.TimeSec)
	}
}

// TestLongRunningAppsAreLong: lu must be the long-running benchmark the
// paper contrasts with is (§6.4.1).
func TestLongRunningAppsAreLong(t *testing.T) {
	for _, tc := range []struct {
		plat *platform.Platform
		app  string
		min  float64
	}{
		{platform.RaptorLake(), "lu.C", 30},
		{platform.OdroidXU3(), "lu.A", 30},
	} {
		suite := IntelApps()
		if tc.plat.Name == platform.OdroidXU3().Name {
			suite = OdroidApps()
		}
		prof := mustProfile(t, suite, tc.app)
		ev := EvaluateVector(tc.plat, prof, tc.plat.Capacity())
		if ev.TimeSec < tc.min {
			t.Errorf("%s full-machine time = %.2fs, want ≥ %.0fs", tc.app, ev.TimeSec, tc.min)
		}
	}
}

// TestKPNAdaptiveVsStatic: the adaptive KPN variants expose a scaling knob
// the static ones lack, but share the same workload.
func TestKPNAdaptiveVsStatic(t *testing.T) {
	suite := OdroidApps()
	pairs := [][2]string{{"mandelbrot", "mandelbrot-static"}, {"lms", "lms-static"}}
	for _, pair := range pairs {
		adaptive := mustProfile(t, suite, pair[0])
		static := mustProfile(t, suite, pair[1])
		if adaptive.Adaptivity != Custom {
			t.Errorf("%s adaptivity = %v, want custom", pair[0], adaptive.Adaptivity)
		}
		if static.Adaptivity != Static {
			t.Errorf("%s adaptivity = %v, want static", pair[1], static.Adaptivity)
		}
		if adaptive.WorkGI != static.WorkGI {
			t.Errorf("%v: variants disagree on work (%g vs %g)", pair, adaptive.WorkGI, static.WorkGI)
		}
		if static.DefaultThreads == 0 {
			t.Errorf("%s: static KPN without a fixed topology", pair[1])
		}
	}
}
