package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"github.com/harp-rm/harp/internal/opoint"
	"github.com/harp-rm/harp/internal/platform"
)

func TestRoundTripRegister(t *testing.T) {
	var buf bytes.Buffer
	give := Register{PID: 1234, App: "ep.C", Adaptivity: "scalable", OwnUtility: true, ReplyAddr: "/tmp/x.sock"}
	if err := Write(&buf, MsgRegister, give); err != nil {
		t.Fatalf("Write: %v", err)
	}
	env, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var got Register
	if err := DecodeBody(env, MsgRegister, &got); err != nil {
		t.Fatalf("DecodeBody: %v", err)
	}
	if got != give {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestRoundTripActivate(t *testing.T) {
	var buf bytes.Buffer
	give := Activate{
		Seq:       7,
		VectorKey: "1,2|4",
		Threads:   9,
		Cores: []CoreGrant{
			{Core: 0, Threads: 1},
			{Core: 1, Threads: 2},
			{Core: 8, Threads: 1},
		},
		CoAllocated: true,
	}
	if err := Write(&buf, MsgActivate, give); err != nil {
		t.Fatal(err)
	}
	env, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Activate
	if err := DecodeBody(env, MsgActivate, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != give.Seq || got.VectorKey != give.VectorKey ||
		got.Threads != give.Threads || len(got.Cores) != 3 || !got.CoAllocated {
		t.Errorf("round trip = %+v, want %+v", got, give)
	}
}

func TestRoundTripOperatingPoints(t *testing.T) {
	p := platform.RaptorLake()
	rv, err := platform.VectorOf(p, []int{1, 2}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	tbl := &opoint.Table{App: "ep.C", Platform: p.Name}
	tbl.Upsert(opoint.OperatingPoint{Vector: rv, Utility: 100, Power: 42, Measured: true})

	var buf bytes.Buffer
	if err := Write(&buf, MsgOperatingPoints, OperatingPoints{Table: tbl}); err != nil {
		t.Fatal(err)
	}
	env, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got OperatingPoints
	if err := DecodeBody(env, MsgOperatingPoints, &got); err != nil {
		t.Fatal(err)
	}
	if got.Table.App != "ep.C" || len(got.Table.Points) != 1 {
		t.Fatalf("table = %+v", got.Table)
	}
	if !got.Table.Points[0].Vector.Equal(rv) {
		t.Errorf("vector = %v, want %v", got.Table.Points[0].Vector, rv)
	}
}

func TestBodylessMessages(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, MsgUtilityRequest, nil); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, MsgExit, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []MsgType{MsgUtilityRequest, MsgExit} {
		env, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if env.Type != want {
			t.Errorf("type = %q, want %q", env.Type, want)
		}
		if err := DecodeBody(env, want, nil); err != nil {
			t.Errorf("DecodeBody(nil out): %v", err)
		}
	}
}

func TestMultipleMessagesInSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := Write(&buf, MsgUtilityReport, UtilityReport{Seq: i, Utility: float64(i) * 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		env, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		var rep UtilityReport
		if err := DecodeBody(env, MsgUtilityReport, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Seq != i {
			t.Errorf("seq = %d, want %d", rep.Seq, i)
		}
	}
	if _, err := Read(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("Read(empty) = %v, want io.EOF", err)
	}
}

func TestDecodeBodyTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, MsgRegister, Register{PID: 1, App: "x", Adaptivity: "static"}); err != nil {
		t.Fatal(err)
	}
	env, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var act Activate
	if err := DecodeBody(env, MsgActivate, &act); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeBodyMissingBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, MsgRegister, nil); err != nil {
		t.Fatal(err)
	}
	env, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var reg Register
	if err := DecodeBody(env, MsgRegister, &reg); err == nil {
		t.Error("missing body accepted")
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], MaxFrame+1)
	buf.Write(header[:])
	if _, err := Read(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadTruncatedFrame(t *testing.T) {
	var full bytes.Buffer
	if err := Write(&full, MsgExit, nil); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Truncate mid-frame: header promises more than available.
	trunc := bytes.NewReader(raw[:len(raw)-2])
	if _, err := Read(trunc); err == nil {
		t.Error("truncated frame accepted")
	}
	// Truncate mid-header.
	trunc = bytes.NewReader(raw[:2])
	if _, err := Read(trunc); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("mid-header truncation err = %v, want a non-EOF error", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("this is not json")
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	buf.Write(header[:])
	buf.Write(payload)
	if _, err := Read(&buf); err == nil {
		t.Error("garbage frame accepted")
	}
}

func TestReadRejectsEmptyType(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"body":null}`)
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	buf.Write(header[:])
	buf.Write(payload)
	if _, err := Read(&buf); err == nil {
		t.Error("typeless envelope accepted")
	}
}

// Property: UtilityReport survives the frame round trip for arbitrary
// values.
func TestUtilityReportRoundTripProperty(t *testing.T) {
	f := func(seq int, utility float64) bool {
		if utility != utility || utility > 1e308 || utility < -1e308 {
			return true // NaN/Inf are not valid JSON numbers
		}
		var buf bytes.Buffer
		if err := Write(&buf, MsgUtilityReport, UtilityReport{Seq: seq, Utility: utility}); err != nil {
			return false
		}
		env, err := Read(&buf)
		if err != nil {
			return false
		}
		var got UtilityReport
		if err := DecodeBody(env, MsgUtilityReport, &got); err != nil {
			return false
		}
		return got.Seq == seq && got.Utility == utility
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
