// Package proto defines HARP's wire protocol between libharp and the
// resource manager (§4.1.1): length-prefixed JSON messages over Unix domain
// sockets. The paper uses protobuf; the protocol shape (registration,
// operating-point upload, activation pushes, utility polling) is preserved
// while the encoding stays stdlib-only.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"

	"github.com/harp-rm/harp/internal/opoint"
)

// MaxFrame bounds one message on the wire; larger frames indicate a corrupt
// or hostile peer.
const MaxFrame = 4 << 20

// Common protocol errors.
var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("proto: frame exceeds maximum size")
	// ErrUnknownType is returned when decoding a payload from an envelope of
	// a different type.
	ErrUnknownType = errors.New("proto: unexpected message type")
)

// MsgType enumerates protocol messages.
type MsgType string

// Protocol message types, in typical flow order (Fig. 3).
const (
	// MsgRegister: application → RM, upon libharp initialisation.
	MsgRegister MsgType = "register"
	// MsgRegisterAck: RM → application, accepting the session.
	MsgRegisterAck MsgType = "register-ack"
	// MsgOperatingPoints: application → RM, uploading a description file's
	// operating points.
	MsgOperatingPoints MsgType = "operating-points"
	// MsgActivate: RM → application, pushing the selected operating point
	// and concrete resources.
	MsgActivate MsgType = "activate"
	// MsgUtilityRequest: RM → application, polling the current utility.
	MsgUtilityRequest MsgType = "utility-request"
	// MsgUtilityReport: application → RM, answering a utility request or
	// pushing a subscribed update.
	MsgUtilityReport MsgType = "utility-report"
	// MsgExit: application → RM, graceful deregistration.
	MsgExit MsgType = "exit"
	// MsgPhaseChange: application → RM, announcing a transition between
	// execution stages with distinct performance-energy characteristics.
	// This implements the interface extension sketched in the paper's
	// outlook (§7): the RM discards smoothed state and re-evaluates the
	// allocation for the new phase.
	MsgPhaseChange MsgType = "phase-change"
	// MsgPing: RM → application, a liveness probe for sessions whose
	// reports went silent. libharp answers with MsgPong automatically.
	MsgPing MsgType = "ping"
	// MsgPong: application → RM, the heartbeat answer to MsgPing. Any
	// inbound message counts as liveness; pong exists for sessions with
	// nothing else to say.
	MsgPong MsgType = "pong"
)

// Envelope frames one message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Register announces an application to the RM.
type Register struct {
	// PID identifies the process on the machine.
	PID int `json:"pid"`
	// App is the application name (matched against description files).
	App string `json:"app"`
	// Adaptivity is the libharp adaptivity class: "static", "scalable" or
	// "custom" (§4.1.3).
	Adaptivity string `json:"adaptivity"`
	// OwnUtility indicates the application will report an app-specific
	// utility metric (§4.2.1).
	OwnUtility bool `json:"ownUtility,omitempty"`
	// ReplyAddr is the application's own socket for RM push messages.
	ReplyAddr string `json:"replyAddr,omitempty"`
}

// RegisterAck accepts or rejects a registration.
type RegisterAck struct {
	SessionID string `json:"sessionId"`
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
}

// OperatingPoints uploads an application description's points (§4.1.1
// step 2). The table travels by pointer: opoint.Table guards its memoised
// derived state with a mutex and must not be copied by value.
type OperatingPoints struct {
	Table *opoint.Table `json:"table"`
}

// CoreGrant mirrors alloc.CoreGrant on the wire.
type CoreGrant struct {
	Core    int `json:"core"`
	Threads int `json:"threads"`
}

// Activate pushes an allocation decision to the application (§4.1.1
// step 3).
type Activate struct {
	// Seq orders activations; stale utility reports reference it.
	Seq int `json:"seq"`
	// VectorKey is the canonical key of the extended resource vector.
	VectorKey string `json:"vectorKey"`
	// Threads is the parallelisation degree for scalable applications.
	Threads int `json:"threads"`
	// Cores lists the concrete cores granted.
	Cores []CoreGrant `json:"cores"`
	// CoAllocated warns the application it is time-sharing cores.
	CoAllocated bool `json:"coAllocated,omitempty"`
}

// UtilityReport carries an application-specific utility sample (§4.1.1
// step 4).
type UtilityReport struct {
	Seq     int     `json:"seq"`
	Utility float64 `json:"utility"`
}

// PhaseChange announces an execution-stage transition (§7 outlook).
type PhaseChange struct {
	// Phase is an application-chosen label for the new stage.
	Phase string `json:"phase"`
}

// Write frames and writes one message. The type must be valid UTF-8: JSON
// encoding silently replaces invalid bytes with U+FFFD, which would change
// the type in transit (found by FuzzWrite).
func Write(w io.Writer, typ MsgType, body any) error {
	if !utf8.ValidString(string(typ)) {
		return fmt.Errorf("proto: message type %q is not valid UTF-8", typ)
	}
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("proto: marshal %s: %w", typ, err)
		}
		raw = b
	}
	frame, err := json.Marshal(Envelope{Type: typ, Body: raw})
	if err != nil {
		return fmt.Errorf("proto: marshal envelope: %w", err)
	}
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(frame)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("proto: write header: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// Read reads one framed message. io.EOF is returned verbatim on a clean
// close before the header. Each call allocates a fresh frame buffer; loops
// reading many messages from one connection should use a Reader instead.
func Read(r io.Reader) (Envelope, error) {
	n, err := readHeader(r)
	if err != nil {
		return Envelope{}, err
	}
	buf := make([]byte, n)
	return readFrame(r, buf)
}

// Reader reads framed messages from a single connection, reusing one frame
// buffer across calls. Decoding is safe despite the reuse: Envelope.Body is
// a json.RawMessage, whose UnmarshalJSON copies the bytes out of the frame
// buffer, so nothing returned by Read aliases it. A Reader is not safe for
// concurrent use — one per connection, like the read loop that owns it.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps r for buffer-reusing frame reads.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Read reads one framed message, like the package-level Read but without the
// per-frame buffer allocation once the buffer has grown to the connection's
// working frame size.
func (rd *Reader) Read() (Envelope, error) {
	n, err := readHeader(rd.r)
	if err != nil {
		return Envelope{}, err
	}
	if cap(rd.buf) < int(n) {
		rd.buf = make([]byte, n)
	}
	return readFrame(rd.r, rd.buf[:n])
}

// readHeader reads and validates the 4-byte length prefix.
func readHeader(r io.Reader) (uint32, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("proto: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	return n, nil
}

// readFrame fills buf from r and decodes the envelope it holds.
func readFrame(r io.Reader, buf []byte) (Envelope, error) {
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, fmt.Errorf("proto: read frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("proto: decode envelope: %w", err)
	}
	if env.Type == "" {
		return Envelope{}, errors.New("proto: envelope without type")
	}
	return env, nil
}

// DecodeBody unmarshals an envelope's body into out after checking the type.
func DecodeBody(env Envelope, want MsgType, out any) error {
	if env.Type != want {
		return fmt.Errorf("%w: got %q, want %q", ErrUnknownType, env.Type, want)
	}
	if out == nil {
		return nil
	}
	if len(env.Body) == 0 {
		return fmt.Errorf("proto: %s without body", want)
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("proto: decode %s: %w", want, err)
	}
	return nil
}
