package proto

import (
	"bytes"
	"strings"
	"testing"

	"github.com/harp-rm/harp/internal/opoint"
)

// frames encodes the given messages back-to-back as they would appear on a
// connection.
func frames(t testing.TB, n int, typ MsgType, body any) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if err := Write(&buf, typ, body); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestReaderMatchesRead(t *testing.T) {
	body := UtilityReport{Seq: 7, Utility: 42.5}
	raw := frames(t, 3, MsgUtilityReport, body)

	rd := NewReader(bytes.NewReader(raw))
	plain := bytes.NewReader(raw)
	for i := 0; i < 3; i++ {
		got, err := rd.Read()
		if err != nil {
			t.Fatalf("Reader.Read %d: %v", i, err)
		}
		want, err := Read(plain)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d: Reader %+v != Read %+v", i, got, want)
		}
	}
	if _, err := rd.Read(); err == nil {
		t.Fatal("Reader.Read past end succeeded")
	}
}

// TestReaderReusesBuffer pins the point of Reader: once grown, the frame
// buffer is reused across messages instead of reallocated per frame.
func TestReaderReusesBuffer(t *testing.T) {
	raw := frames(t, 2, MsgUtilityReport, UtilityReport{Seq: 1, Utility: 1})
	rd := NewReader(bytes.NewReader(raw))
	if _, err := rd.Read(); err != nil {
		t.Fatal(err)
	}
	first := &rd.buf[0]
	env, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if &rd.buf[0] != first {
		t.Fatal("Reader reallocated its frame buffer for a same-size frame")
	}
	// The decoded body must not alias the reused buffer: mutate the buffer
	// and check the envelope is unaffected.
	copyBefore := string(env.Body)
	for i := range rd.buf {
		rd.buf[i] = 0
	}
	if string(env.Body) != copyBefore {
		t.Fatal("Envelope.Body aliases the Reader's reused buffer")
	}
}

// TestReaderRejectsOversizedFrame mirrors Read's MaxFrame check.
func TestReaderRejectsOversizedFrame(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := NewReader(bytes.NewReader(raw)).Read(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// benchTable builds a realistically sized operating-points upload — the
// largest message on the wire and the one that makes per-frame buffer
// allocation visible.
func benchTable(t testing.TB) []byte {
	tbl := &opoint.Table{App: "ep.C", Platform: "intel-raptorlake"}
	for i := 0; i < 64; i++ {
		tbl.Points = append(tbl.Points, opoint.OperatingPoint{
			Utility:  float64(i),
			Power:    10 + float64(i),
			Measured: true,
			Samples:  3,
		})
	}
	return frames(t, 1, MsgOperatingPoints, OperatingPoints{Table: tbl})
}

func BenchmarkRead(b *testing.B) {
	raw := benchTable(b)
	r := bytes.NewReader(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, err := Read(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderRead(b *testing.B) {
	raw := benchTable(b)
	r := bytes.NewReader(raw)
	rd := NewReader(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, err := rd.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReaderHeaderError keeps the wrapped-error text stable for callers that
// match on it.
func TestReaderHeaderError(t *testing.T) {
	_, err := NewReader(strings.NewReader("\x00\x00")).Read()
	if err == nil || !strings.Contains(err.Error(), "read header") {
		t.Fatalf("truncated header err = %v", err)
	}
}
