package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"
)

// seedFrames builds the fuzz corpus from the same real protocol messages the
// unit tests exercise, plus the adversarial shapes Read must reject.
func seedFrames(f *testing.F) {
	f.Helper()
	add := func(typ MsgType, body any) {
		var buf bytes.Buffer
		if err := Write(&buf, typ, body); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	add(MsgRegister, Register{PID: 1234, App: "ep.C", Adaptivity: "scalable", OwnUtility: true, ReplyAddr: "/tmp/x.sock"})
	add(MsgRegisterAck, RegisterAck{SessionID: "ep.C/1234", OK: true})
	add(MsgRegisterAck, RegisterAck{OK: false, Error: "duplicate session"})
	add(MsgActivate, Activate{
		Seq: 7, VectorKey: "1,2|4", Threads: 9,
		Cores:       []CoreGrant{{Core: 0, Threads: 1}, {Core: 1, Threads: 2}, {Core: 8, Threads: 1}},
		CoAllocated: true,
	})
	add(MsgUtilityReport, UtilityReport{Seq: 3, Utility: 42.5})
	add(MsgPhaseChange, PhaseChange{Phase: "stage-2"})
	add(MsgUtilityRequest, nil)
	add(MsgExit, nil)
	add(MsgPing, nil)
	add(MsgPong, nil)

	// Adversarial shapes from the unit tests.
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	var oversized [4]byte
	binary.BigEndian.PutUint32(oversized[:], MaxFrame+1)
	f.Add(oversized[:])
	f.Add([]byte("\x00\x00\x00\x10this is not json"))
	f.Add([]byte("\x00\x00\x00\x0d{\"body\":null}"))
	// Two frames back to back.
	var multi bytes.Buffer
	_ = Write(&multi, MsgUtilityReport, UtilityReport{Seq: 1, Utility: 1.5})
	_ = Write(&multi, MsgExit, nil)
	f.Add(multi.Bytes())
}

// FuzzRead feeds arbitrary byte streams to the frame reader: it must never
// panic, every accepted envelope must carry a type, and accepted envelopes
// must survive a re-encode/re-read round trip.
func FuzzRead(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ {
			env, err := Read(r)
			if err != nil {
				return // rejection is fine; panics and hangs are the bug
			}
			if env.Type == "" {
				t.Fatal("Read accepted an envelope without a type")
			}
			var buf bytes.Buffer
			var body any
			if len(env.Body) > 0 {
				body = env.Body
			}
			if err := Write(&buf, env.Type, body); err != nil {
				t.Fatalf("accepted envelope does not re-encode: %v", err)
			}
			again, err := Read(&buf)
			if err != nil {
				t.Fatalf("re-encoded envelope does not re-read: %v", err)
			}
			if again.Type != env.Type {
				t.Fatalf("type changed across round trip: %q -> %q", env.Type, again.Type)
			}
		}
	})
}

// FuzzWrite drives the framer with arbitrary message types and JSON bodies:
// whenever Write accepts, Read must hand back the same type and an
// equivalent body.
func FuzzWrite(f *testing.F) {
	f.Add(string(MsgRegister), []byte(`{"pid":1,"app":"x","adaptivity":"static"}`))
	f.Add(string(MsgActivate), []byte(`{"seq":1,"vectorKey":"1|2","cores":[{"core":0,"threads":1}]}`))
	f.Add(string(MsgUtilityReport), []byte(`{"seq":2,"utility":3.5}`))
	f.Add(string(MsgExit), []byte(nil))
	f.Add(string(MsgPong), []byte(`null`))
	f.Add("custom-extension", []byte(`{"future":"field"}`))
	f.Fuzz(func(t *testing.T, typ string, body []byte) {
		var payload any
		if len(body) > 0 {
			payload = json.RawMessage(body)
		}
		var buf bytes.Buffer
		if err := Write(&buf, MsgType(typ), payload); err != nil {
			return // invalid JSON bodies and oversized frames are rejected
		}
		env, err := Read(&buf)
		if typ == "" {
			if err == nil {
				t.Fatal("typeless envelope accepted by Read")
			}
			return
		}
		if err != nil {
			t.Fatalf("written frame does not read back: %v", err)
		}
		if env.Type != MsgType(typ) {
			t.Fatalf("type = %q, want %q", env.Type, typ)
		}
		if len(body) > 0 && json.Valid(body) {
			var want, got any
			if json.Unmarshal(body, &want) == nil {
				if err := json.Unmarshal(env.Body, &got); err != nil {
					t.Fatalf("body does not decode: %v", err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("body changed: %v -> %v", want, got)
				}
			}
		}
	})
}
