// Package mathx provides the small numeric kernel used across HARP:
// dense linear least squares, exponential moving averages, and a few
// descriptive statistics. Everything is stdlib-only and allocation-conscious
// because the resource manager evaluates regression models on its hot path.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular system")

// SolveLinear solves the square system a·x = b in place using Gaussian
// elimination with partial pivoting. a is row-major with n rows of n columns.
// a and b are clobbered; the solution is returned in a fresh slice.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system shape: %d rows, %d rhs", n, len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("mathx: non-square system: row of width %d in %d-system", len(row), n)
		}
	}

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1.0 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}

	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for c := row + 1; c < n; c++ {
			sum -= a[row][c] * x[c]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}

// LeastSquares solves min ‖X·w − y‖² via the ridge-stabilised normal
// equations (XᵀX + λI)·w = Xᵀy. X is row-major: one row per sample, one
// column per feature. A small ridge keeps near-collinear designs solvable,
// which matters when the exploration engine fits on very few points.
func LeastSquares(x [][]float64, y []float64, ridge float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("mathx: least squares with no samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("mathx: %d samples but %d targets", len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("mathx: least squares with no features")
	}
	if ridge < 0 {
		return nil, fmt.Errorf("mathx: negative ridge %g", ridge)
	}

	xtx := make([][]float64, nf)
	for i := range xtx {
		xtx[i] = make([]float64, nf)
	}
	xty := make([]float64, nf)
	for s, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("mathx: ragged design matrix at row %d", s)
		}
		for i := 0; i < nf; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < nf; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[s]
		}
	}
	for i := 0; i < nf; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge
	}
	return SolveLinear(xtx, xty)
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, v := range xs {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. Non-positive entries make a
// geometric mean undefined; they are clamped to a tiny positive value so a
// single bad measurement cannot poison a whole summary row.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range xs {
		if v < 1e-12 {
			v = 1e-12
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// MAPE returns the mean absolute percentage error of pred against truth,
// expressed as a percentage. Truth values with magnitude below eps are
// skipped to avoid division blow-ups.
func MAPE(truth, pred []float64) float64 {
	const eps = 1e-9
	if len(truth) != len(pred) {
		return math.NaN()
	}
	var sum float64
	var n int
	for i := range truth {
		if math.Abs(truth[i]) < eps {
			continue
		}
		sum += math.Abs((pred[i] - truth[i]) / truth[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * sum / float64(n)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// EMA is an exponential moving average with smoothing factor alpha
// (new = alpha·sample + (1−alpha)·old). The zero value is not usable;
// construct with NewEMA. HARP uses alpha = 0.1 to smooth utility and power
// measurements (§5.1 of the paper).
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an EMA with the given smoothing factor in (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &EMA{alpha: alpha}
}

// Add feeds one sample and returns the updated average. The first sample
// primes the average directly.
func (e *EMA) Add(sample float64) float64 {
	if !e.primed {
		e.value = sample
		e.primed = true
		return e.value
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been added.
func (e *EMA) Primed() bool { return e.primed }

// Reset clears the average back to the unprimed state.
func (e *EMA) Reset() { e.value, e.primed = 0, false }
