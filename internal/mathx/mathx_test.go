package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearBadShapes(t *testing.T) {
	tests := []struct {
		name string
		a    [][]float64
		b    []float64
	}{
		{name: "empty", a: nil, b: nil},
		{name: "rhs mismatch", a: [][]float64{{1}}, b: []float64{1, 2}},
		{name: "non-square", a: [][]float64{{1, 2}}, b: []float64{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SolveLinear(tt.a, tt.b); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2·x fitted from exact samples.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		x := float64(i)
		xs = append(xs, []float64{1, x})
		ys = append(ys, 3+2*x)
	}
	w, err := LeastSquares(xs, ys, 0)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(w[0], 3, 1e-8) || !almostEqual(w[1], 2, 1e-8) {
		t.Fatalf("w = %v, want [3 2]", w)
	}
}

func TestLeastSquaresRidgeHandlesCollinear(t *testing.T) {
	// Duplicate feature columns are singular without ridge.
	xs := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	ys := []float64{2, 4, 6}
	if _, err := LeastSquares(xs, ys, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular without ridge, got %v", err)
	}
	w, err := LeastSquares(xs, ys, 1e-6)
	if err != nil {
		t.Fatalf("LeastSquares with ridge: %v", err)
	}
	// Prediction quality matters, not the individual weights.
	for i, row := range xs {
		if got := Dot(w, row); !almostEqual(got, ys[i], 1e-3) {
			t.Errorf("pred(%v) = %g, want %g", row, got, ys[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	tests := []struct {
		name  string
		x     [][]float64
		y     []float64
		ridge float64
	}{
		{name: "no samples", x: nil, y: nil},
		{name: "mismatched", x: [][]float64{{1}}, y: []float64{1, 2}},
		{name: "no features", x: [][]float64{{}}, y: []float64{1}},
		{name: "ragged", x: [][]float64{{1, 2}, {1}}, y: []float64{1, 2}},
		{name: "negative ridge", x: [][]float64{{1}}, y: []float64{1}, ridge: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LeastSquares(tt.x, tt.y, tt.ridge); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

// Property: SolveLinear applied to a well-conditioned random system returns x
// with a·x ≈ b.
func TestSolveLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) + 1 // diagonal dominance keeps it well-conditioned
			copy(orig[i], a[i])
			b[i] = r.NormFloat64()
			origB[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEqual(Dot(orig[i], x), origB[i], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev(single) = %g, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "pair", give: []float64{2, 8}, want: 4},
		{name: "identity", give: []float64{5}, want: 5},
		{name: "empty", give: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GeoMean(tt.give); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("GeoMean(%v) = %g, want %g", tt.give, got, tt.want)
			}
		})
	}
}

func TestGeoMeanClampsNonPositive(t *testing.T) {
	got := GeoMean([]float64{1, 0})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeoMean with zero produced %g", got)
	}
	if got <= 0 {
		t.Fatalf("GeoMean with zero = %g, want > 0", got)
	}
}

func TestMAPE(t *testing.T) {
	truth := []float64{100, 200}
	pred := []float64{110, 180}
	// |10/100| = 10%, |20/200| = 10% → 10%.
	if got := MAPE(truth, pred); !almostEqual(got, 10, 1e-9) {
		t.Errorf("MAPE = %g, want 10", got)
	}
	if got := MAPE([]float64{0}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("MAPE over all-zero truth = %g, want NaN", got)
	}
	if got := MAPE([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("MAPE with length mismatch = %g, want NaN", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%g, %g, %g) = %g, want %g", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestEMAPrimingAndSmoothing(t *testing.T) {
	e := NewEMA(0.5)
	if e.Primed() {
		t.Fatal("new EMA should not be primed")
	}
	if got := e.Add(10); got != 10 {
		t.Fatalf("first Add = %g, want 10", got)
	}
	if got := e.Add(20); !almostEqual(got, 15, 1e-12) {
		t.Fatalf("second Add = %g, want 15", got)
	}
	if !e.Primed() || e.Value() != 15 {
		t.Fatalf("state = (%v, %g), want (true, 15)", e.Primed(), e.Value())
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestEMAInvalidAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		e := NewEMA(alpha)
		e.Add(100)
		got := e.Add(0)
		// Default alpha 0.1: 0.1·0 + 0.9·100 = 90.
		if !almostEqual(got, 90, 1e-12) {
			t.Errorf("alpha=%g: second Add = %g, want 90", alpha, got)
		}
	}
}

// Property: EMA stays within [min, max] of the samples seen so far.
func TestEMABoundedProperty(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		e := NewEMA(0.1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true // skip degenerate float inputs
			}
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			v := e.Add(s)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
