package sched

import (
	"testing"
	"time"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
	"github.com/harp-rm/harp/internal/workload"
)

func testProfile() *workload.Profile {
	return &workload.Profile{
		Name:        "test-app",
		Adaptivity:  workload.Scalable,
		WorkGI:      100,
		MemBound:    0.2,
		SMTFriendly: 0.5,
		DynamicLoad: true,
		Wait:        workload.Block,
	}
}

func intelTopo(t *testing.T) []sim.HWInfo {
	t.Helper()
	m, err := sim.New(platform.RaptorLake(), CFS{})
	if err != nil {
		t.Fatal(err)
	}
	return m.Topology()
}

func odroidTopo(t *testing.T) []sim.HWInfo {
	t.Helper()
	m, err := sim.New(platform.OdroidXU3(), EAS{})
	if err != nil {
		t.Fatal(err)
	}
	return m.Topology()
}

func kindCounts(topo []sim.HWInfo, asg []sim.HWThread) map[platform.KindID]int {
	out := make(map[platform.KindID]int)
	for _, hw := range asg {
		out[topo[hw].Kind]++
	}
	return out
}

func distinctCores(topo []sim.HWInfo, asg []sim.HWThread) int {
	cores := make(map[int]bool)
	for _, hw := range asg {
		cores[topo[hw].Core] = true
	}
	return len(cores)
}

func TestCFSSpreadsAcrossCoresBeforeSMT(t *testing.T) {
	topo := intelTopo(t)
	procs := []sim.ProcView{{ID: 1, Name: "a", Threads: 8}}
	asg := CFS{}.Place(topo, procs)[1]
	if len(asg) != 8 {
		t.Fatalf("placed %d threads, want 8", len(asg))
	}
	if got := distinctCores(topo, asg); got != 8 {
		t.Errorf("threads on %d distinct cores, want 8 (spread before SMT)", got)
	}
	// With ITMT-style priorities, the 8 threads land on the 8 P-cores.
	if got := kindCounts(topo, asg)[0]; got != 8 {
		t.Errorf("%d threads on P cores, want 8", got)
	}
}

func TestCFSFullMachineOneThreadPerHW(t *testing.T) {
	topo := intelTopo(t)
	procs := []sim.ProcView{{ID: 1, Name: "a", Threads: 32}}
	asg := CFS{}.Place(topo, procs)[1]
	seen := make(map[sim.HWThread]int)
	for _, hw := range asg {
		seen[hw]++
	}
	if len(seen) != 32 {
		t.Fatalf("32 threads on %d distinct hw threads, want 32", len(seen))
	}
	for hw, n := range seen {
		if n != 1 {
			t.Errorf("hw %d has %d threads", hw, n)
		}
	}
}

func TestCFSRespectsAffinity(t *testing.T) {
	topo := intelTopo(t)
	aff := []sim.HWThread{16, 17, 18, 19} // four E threads
	procs := []sim.ProcView{{ID: 1, Name: "a", Threads: 8, Affinity: aff}}
	asg := CFS{}.Place(topo, procs)[1]
	if len(asg) != 8 {
		t.Fatalf("placed %d, want 8", len(asg))
	}
	allowed := map[sim.HWThread]bool{16: true, 17: true, 18: true, 19: true}
	for _, hw := range asg {
		if !allowed[hw] {
			t.Errorf("thread placed outside affinity: %d", hw)
		}
	}
}

func TestCFSBalancesMultipleApps(t *testing.T) {
	topo := intelTopo(t)
	procs := []sim.ProcView{
		{ID: 1, Name: "a", Threads: 32},
		{ID: 2, Name: "b", Threads: 32},
	}
	placement := CFS{}.Place(topo, procs)
	load := make(map[sim.HWThread]int)
	for _, asg := range placement {
		for _, hw := range asg {
			load[hw]++
		}
	}
	for hw, n := range load {
		if n != 2 {
			t.Errorf("hw %d load = %d, want 2 (even time-sharing)", hw, n)
		}
	}
}

func TestEASPlacesLowUtilOnLittle(t *testing.T) {
	topo := odroidTopo(t)
	procs := []sim.ProcView{
		{ID: 1, Name: "lowutil", Threads: 2, AvgThreadUtil: 0.2},
		{ID: 2, Name: "highutil", Threads: 2, AvgThreadUtil: 0.95},
	}
	placement := EAS{}.Place(topo, procs)
	low := kindCounts(topo, placement[1])
	high := kindCounts(topo, placement[2])
	if low[1] != 2 {
		t.Errorf("low-util threads on LITTLE = %d, want 2 (got %v)", low[1], low)
	}
	if high[0] != 2 {
		t.Errorf("high-util threads on big = %d, want 2 (got %v)", high[0], high)
	}
}

func TestEASUnprimedDefaultsToBig(t *testing.T) {
	topo := odroidTopo(t)
	procs := []sim.ProcView{{ID: 1, Name: "new", Threads: 2, AvgThreadUtil: 0}}
	placement := EAS{}.Place(topo, procs)
	if got := kindCounts(topo, placement[1])[0]; got != 2 {
		t.Errorf("unprimed threads on big = %d, want 2", got)
	}
}

func TestITDSteersByMemoryBoundedness(t *testing.T) {
	topo := intelTopo(t)
	plat := platform.RaptorLake()
	itd := ITD{Platform: plat}
	procs := []sim.ProcView{
		{ID: 1, Name: "compute", Threads: 8, MemBound: 0.05},
		{ID: 2, Name: "membound", Threads: 8, MemBound: 0.9},
	}
	placement := itd.Place(topo, procs)
	comp := kindCounts(topo, placement[1])
	mem := kindCounts(topo, placement[2])
	if comp[0] < 6 {
		t.Errorf("compute app P threads = %d, want ≥ 6 (%v)", comp[0], comp)
	}
	if mem[1] < 6 {
		t.Errorf("memory-bound app E threads = %d, want ≥ 6 (%v)", mem[1], mem)
	}
}

func TestITDSingleAppFullMachineLikeCFS(t *testing.T) {
	topo := intelTopo(t)
	itd := ITD{Platform: platform.RaptorLake()}
	procs := []sim.ProcView{{ID: 1, Name: "a", Threads: 32, MemBound: 0.05}}
	asg := itd.Place(topo, procs)[1]
	seen := make(map[sim.HWThread]bool)
	for _, hw := range asg {
		seen[hw] = true
	}
	// A single 32-thread app must still use the whole machine, not crowd P.
	if len(seen) != 32 {
		t.Errorf("single app uses %d hw threads, want 32", len(seen))
	}
}

func TestITDWithoutPlatformIsNeutral(t *testing.T) {
	topo := intelTopo(t)
	procs := []sim.ProcView{{ID: 1, Name: "a", Threads: 4, MemBound: 0.9}}
	asg := ITD{}.Place(topo, procs)[1]
	if len(asg) != 4 {
		t.Fatalf("placed %d, want 4", len(asg))
	}
}

func TestSchedulerNames(t *testing.T) {
	if (CFS{}).Name() != "cfs" || (EAS{}).Name() != "eas" || (ITD{}).Name() != "itd" {
		t.Error("unexpected scheduler names")
	}
}

// End-to-end: the schedulers drive a real machine without violating its
// placement contract.
func TestSchedulersDriveMachine(t *testing.T) {
	plat := platform.RaptorLake()
	scheds := []sim.Scheduler{CFS{}, EAS{}, ITD{Platform: plat}}
	for _, s := range scheds {
		t.Run(s.Name(), func(t *testing.T) {
			m, err := sim.New(plat, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"a", "b"} {
				if _, err := m.Start(testProfile(), name); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.RunUntilIdle(5 * time.Minute); err != nil {
				t.Fatalf("RunUntilIdle: %v", err)
			}
		})
	}
}
