// Package sched implements the OS-level thread placement policies HARP is
// compared against in the paper's evaluation: a CFS-like load balancer, the
// Linux Energy-Aware Scheduler (EAS) used on Arm big.LITTLE, and an Intel
// Thread Director (ITD)-guided allocator (§6.1, §6.3).
//
// All policies are greedy least-loaded placers with different core-kind
// preferences; they respect per-process affinity masks, which is exactly the
// hook HARP uses: HARP restricts each application to its allocated cores and
// lets the OS scheduler do low-level placement inside the mask (§4.3).
package sched

import (
	"sort"

	"github.com/harp-rm/harp/internal/platform"
	"github.com/harp-rm/harp/internal/sim"
)

// prefFunc returns a capacity-style weight for placing a thread of the given
// process on a core kind; higher means preferred. 1.0 is neutral.
type prefFunc func(p sim.ProcView, kind platform.KindID) float64

// placeGreedy assigns every thread of every process to the hardware thread
// with the lowest preference-weighted load, spreading across physical cores
// before doubling up on SMT siblings.
func placeGreedy(topo []sim.HWInfo, procs []sim.ProcView, pref prefFunc) map[sim.ProcID][]sim.HWThread {
	loads := make([]int, len(topo))
	coreBusy := make(map[int]int) // physical core → busy hw threads
	out := make(map[sim.ProcID][]sim.HWThread, len(procs))

	for _, p := range procs {
		candidates := candidateThreads(topo, p)
		assignment := make([]sim.HWThread, 0, p.Threads)
		for t := 0; t < p.Threads; t++ {
			best := -1
			var bestScore float64
			var bestSiblings int
			for _, hw := range candidates {
				info := topo[hw]
				w := pref(p, info.Kind)
				if w <= 0 {
					w = 1e-3
				}
				score := float64(loads[hw]+1) / w
				siblings := coreBusy[info.Core]
				if loads[hw] > 0 {
					// Placing on an already-loaded hw thread does not add a
					// new busy sibling.
					siblings--
				}
				if best == -1 || score < bestScore ||
					(score == bestScore && siblings < bestSiblings) {
					best = int(hw)
					bestScore = score
					bestSiblings = siblings
				}
			}
			if best < 0 {
				break // no candidates (empty affinity); leave unplaced threads out
			}
			if loads[best] == 0 {
				coreBusy[topo[best].Core]++
			}
			loads[best]++
			assignment = append(assignment, sim.HWThread(best))
		}
		// If affinity left us short (should not happen — affinity is
		// non-empty by construction), pad by reusing the first candidate so
		// the machine's contract (one slot per thread) holds.
		for len(assignment) < p.Threads && len(candidates) > 0 {
			assignment = append(assignment, candidates[0])
		}
		out[p.ID] = assignment
	}
	return out
}

// candidateThreads lists the hardware threads the process may run on.
func candidateThreads(topo []sim.HWInfo, p sim.ProcView) []sim.HWThread {
	if p.Affinity == nil {
		out := make([]sim.HWThread, len(topo))
		for i := range topo {
			out[i] = topo[i].ID
		}
		return out
	}
	out := make([]sim.HWThread, len(p.Affinity))
	copy(out, p.Affinity)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CFS models the Linux Completely Fair Scheduler's load balancing on a
// hybrid machine without Thread Director input: spread runnable threads
// across hardware threads, filling the higher-capacity cores first (ITMT
// priority ordering), with no per-application behaviour awareness.
type CFS struct{}

var _ sim.Scheduler = CFS{}

// Name implements sim.Scheduler.
func (CFS) Name() string { return "cfs" }

// Place implements sim.Scheduler.
func (CFS) Place(topo []sim.HWInfo, procs []sim.ProcView) map[sim.ProcID][]sim.HWThread {
	return placeGreedy(topo, procs, func(sim.ProcView, platform.KindID) float64 {
		// Neutral weights: ties resolve toward lower hardware-thread IDs,
		// i.e. the P/big cores, matching ITMT core priorities.
		return 1
	})
}

// EAS models the Linux Energy-Aware Scheduler used on the Odroid XU3-E:
// PELT-style task utilisation steers low-utilisation tasks to the LITTLE
// island and keeps compute-saturated tasks on big cores (§3.1).
type EAS struct {
	// BigThreshold is the per-thread utilisation above which a task is
	// considered to need a big core. Linux uses ~80 % of LITTLE capacity;
	// 0 selects the default of 0.65.
	BigThreshold float64
}

var _ sim.Scheduler = EAS{}

// Name implements sim.Scheduler.
func (EAS) Name() string { return "eas" }

// Place implements sim.Scheduler.
func (e EAS) Place(topo []sim.HWInfo, procs []sim.ProcView) map[sim.ProcID][]sim.HWThread {
	threshold := e.BigThreshold
	if threshold == 0 {
		threshold = 0.65
	}
	return placeGreedy(topo, procs, func(p sim.ProcView, kind platform.KindID) float64 {
		util := p.AvgThreadUtil
		if util == 0 {
			// PELT primes new tasks optimistically; assume compute-heavy.
			util = 1
		}
		// Kind 0 is big, later kinds are smaller/more efficient.
		if util >= threshold {
			if kind == 0 {
				return 1.3
			}
			return 1
		}
		if kind == 0 {
			return 1
		}
		return 1.5
	})
}

// ITD models an Intel-Thread-Director-guided allocator (the paper's extended
// baseline, §6.1): the hardware classifies each thread's instruction mix and
// reports per-kind performance scores; the scheduler biases threads with a
// high P-core benefit toward P-cores and memory-bound threads toward
// E-cores. The classification inputs (memory-boundedness) mirror what the
// ITD derives from instruction mix at nanosecond granularity.
type ITD struct {
	Platform *platform.Platform
	// BenefitThreshold is the P/E speed ratio above which a thread is
	// steered to P-cores. 0 selects the default of 1.35.
	BenefitThreshold float64
}

var _ sim.Scheduler = ITD{}

// Name implements sim.Scheduler.
func (ITD) Name() string { return "itd" }

// Place implements sim.Scheduler.
func (s ITD) Place(topo []sim.HWInfo, procs []sim.ProcView) map[sim.ProcID][]sim.HWThread {
	threshold := s.BenefitThreshold
	if threshold == 0 {
		threshold = 1.35
	}
	return placeGreedy(topo, procs, func(p sim.ProcView, kind platform.KindID) float64 {
		benefit := s.pBenefit(p)
		if benefit >= threshold {
			// Classified as P-favouring (high ITD performance score on P).
			if kind == 0 {
				return 1.6
			}
			return 1
		}
		// Memory-bound classes gain little from P-cores; the energy-
		// efficiency score favours E-cores.
		if kind == 0 {
			return 1
		}
		return 1.6
	})
}

// pBenefit estimates the thread-class speed ratio between the fastest and
// the most efficient kind for this process.
func (s ITD) pBenefit(p sim.ProcView) float64 {
	if s.Platform == nil || len(s.Platform.Kinds) < 2 {
		return 1
	}
	fast := s.Platform.Kinds[0]
	eff := s.Platform.Kinds[len(s.Platform.Kinds)-1]
	fastRate := fast.ComputeRate() * (1 - p.MemBound*fast.MemPenalty)
	effRate := eff.ComputeRate() * (1 - p.MemBound*eff.MemPenalty)
	if effRate <= 0 {
		return 1
	}
	return fastRate / effRate
}
