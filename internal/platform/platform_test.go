package platform

import (
	"strings"
	"testing"
)

func TestBuiltinPlatformsValidate(t *testing.T) {
	for _, name := range []string{"intel", "odroid"} {
		t.Run(name, func(t *testing.T) {
			p := Builtin(name)
			if p == nil {
				t.Fatalf("Builtin(%q) = nil", name)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
	if p := Builtin("no-such-machine"); p != nil {
		t.Fatalf("Builtin(unknown) = %v, want nil", p)
	}
}

func TestRaptorLakeTopology(t *testing.T) {
	p := RaptorLake()
	if got := p.NumCores(); got != 24 {
		t.Errorf("NumCores = %d, want 24", got)
	}
	if got := p.NumHWThreads(); got != 32 {
		t.Errorf("NumHWThreads = %d, want 32", got)
	}
	// P-cores must be the fast kind (kind 0 by convention).
	if p.Kinds[0].ComputeRate() <= p.Kinds[1].ComputeRate() {
		t.Errorf("P compute rate %g not above E %g",
			p.Kinds[0].ComputeRate(), p.Kinds[1].ComputeRate())
	}
	// E-cores must be more energy-efficient per instruction.
	effP := p.Kinds[0].ActiveWatts / p.Kinds[0].ComputeRate()
	effE := p.Kinds[1].ActiveWatts / p.Kinds[1].ComputeRate()
	if effE >= effP {
		t.Errorf("E-core J/Ginstr %g not below P-core %g", effE, effP)
	}
}

func TestOdroidTopology(t *testing.T) {
	p := OdroidXU3()
	if got := p.NumCores(); got != 8 {
		t.Errorf("NumCores = %d, want 8", got)
	}
	if got := p.NumHWThreads(); got != 8 {
		t.Errorf("NumHWThreads = %d, want 8", got)
	}
	if p.SimultaneousPMU {
		t.Error("Odroid must not support simultaneous PMU access (§6.4)")
	}
	if p.EnergySensors != "island" {
		t.Errorf("EnergySensors = %q, want island", p.EnergySensors)
	}
}

func TestKindOf(t *testing.T) {
	p := RaptorLake()
	tests := []struct {
		core    int
		want    KindID
		wantErr bool
	}{
		{core: 0, want: 0},
		{core: 7, want: 0},
		{core: 8, want: 1},
		{core: 23, want: 1},
		{core: 24, wantErr: true},
		{core: -1, wantErr: true},
	}
	for _, tt := range tests {
		got, err := p.KindOf(tt.core)
		if tt.wantErr {
			if err == nil {
				t.Errorf("KindOf(%d): expected error", tt.core)
			}
			continue
		}
		if err != nil {
			t.Errorf("KindOf(%d): %v", tt.core, err)
			continue
		}
		if got != tt.want {
			t.Errorf("KindOf(%d) = %d, want %d", tt.core, got, tt.want)
		}
	}
}

func TestCoreRange(t *testing.T) {
	p := RaptorLake()
	if lo, hi := p.CoreRange(0); lo != 0 || hi != 8 {
		t.Errorf("CoreRange(P) = [%d,%d), want [0,8)", lo, hi)
	}
	if lo, hi := p.CoreRange(1); lo != 8 || hi != 24 {
		t.Errorf("CoreRange(E) = [%d,%d), want [8,24)", lo, hi)
	}
}

func TestCapacity(t *testing.T) {
	p := RaptorLake()
	cap := p.Capacity()
	if got := cap.Threads(); got != 32 {
		t.Errorf("Capacity threads = %d, want 32", got)
	}
	if got := cap.TotalCores(); got != 24 {
		t.Errorf("Capacity cores = %d, want 24", got)
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	base := func() *Platform { return RaptorLake() }
	tests := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"empty name", func(p *Platform) { p.Name = "" }},
		{"no kinds", func(p *Platform) { p.Kinds = nil }},
		{"dup kind", func(p *Platform) { p.Kinds[1].Name = "P" }},
		{"zero count", func(p *Platform) { p.Kinds[0].Count = 0 }},
		{"zero smt", func(p *Platform) { p.Kinds[0].SMT = 0 }},
		{"bad freq", func(p *Platform) { p.Kinds[0].MinFreqGHz = 10 }},
		{"zero ipc", func(p *Platform) { p.Kinds[0].IPC = 0 }},
		{"bad mem penalty", func(p *Platform) { p.Kinds[0].MemPenalty = 2 }},
		{"neg smt gain", func(p *Platform) { p.Kinds[0].SMTMaxGain = -1 }},
		{"zero active watts", func(p *Platform) { p.Kinds[0].ActiveWatts = 0 }},
		{"neg uncore", func(p *Platform) { p.UncoreWatts = -1 }},
		{"zero bw", func(p *Platform) { p.MemBWGips = 0 }},
		{"bad sensors", func(p *Platform) { p.EnergySensors = "magic" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("Validate accepted a bad platform")
			}
		})
	}
}

func TestStringSummary(t *testing.T) {
	s := RaptorLake().String()
	for _, want := range []string{"8×P", "16×E", "smt2", "raptor"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestMaxPowerPositive(t *testing.T) {
	for _, p := range []*Platform{RaptorLake(), OdroidXU3()} {
		if w := p.MaxPower(); w <= p.UncoreWatts {
			t.Errorf("%s: MaxPower = %g, want > uncore %g", p.Name, w, p.UncoreWatts)
		}
	}
}
