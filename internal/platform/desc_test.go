package platform

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestDescriptionRoundTrip(t *testing.T) {
	for _, p := range []*Platform{RaptorLake(), OdroidXU3()} {
		t.Run(p.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := p.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			got, err := Load(&buf)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if got.Name != p.Name || len(got.Kinds) != len(p.Kinds) {
				t.Fatalf("round trip mismatch: %v vs %v", got, p)
			}
			for i := range p.Kinds {
				if got.Kinds[i] != p.Kinds[i] {
					t.Errorf("kind %d mismatch: %+v vs %+v", i, got.Kinds[i], p.Kinds[i])
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "not json", give: "not-json"},
		{name: "unknown field", give: `{"name":"x","bogus":1}`},
		{name: "invalid platform", give: `{"name":"x","kinds":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.give)); err == nil {
				t.Fatal("Load accepted bad description")
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hw.json")
	p := OdroidXU3()
	if err := p.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Name != p.Name {
		t.Errorf("Name = %q, want %q", got.Name, p.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadFile(missing) succeeded")
	}
}
