package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Load reads a hardware description (JSON) from r and validates it. This is
// the file a vendor or setup tool would drop into /etc/harp (§4.3).
func Load(r io.Reader) (*Platform, error) {
	var p Platform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("platform: decode description: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and validates the hardware description at path.
func LoadFile(path string) (*Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Save writes the platform as indented JSON to w.
func (p *Platform) Save(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("platform: encode description: %w", err)
	}
	return nil
}

// SaveFile writes the platform description to path.
func (p *Platform) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
