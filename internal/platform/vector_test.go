package platform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample returns the paper's worked example on Raptor Lake: one P-core
// on a single hardware thread, two P-cores on both, four E-cores → [1 2 | 4].
func paperExample(t *testing.T) (*Platform, ResourceVector) {
	t.Helper()
	p := RaptorLake()
	rv, err := VectorOf(p, []int{1, 2}, []int{4})
	if err != nil {
		t.Fatalf("VectorOf: %v", err)
	}
	return p, rv
}

func TestVectorPaperExample(t *testing.T) {
	_, rv := paperExample(t)
	if got := rv.Threads(); got != 9 {
		t.Errorf("Threads = %d, want 9 (1·1 + 2·2 + 4·1)", got)
	}
	if got := rv.Cores(0); got != 3 {
		t.Errorf("P cores = %d, want 3", got)
	}
	if got := rv.Cores(1); got != 4 {
		t.Errorf("E cores = %d, want 4", got)
	}
	if got := rv.TotalCores(); got != 7 {
		t.Errorf("TotalCores = %d, want 7", got)
	}
	if got := rv.Key(); got != "1,2|4" {
		t.Errorf("Key = %q, want \"1,2|4\"", got)
	}
	if got := rv.CoreDemand(); got[0] != 3 || got[1] != 4 {
		t.Errorf("CoreDemand = %v, want [3 4]", got)
	}
	if got := rv.ThreadsOfKind(0); got != 5 {
		t.Errorf("ThreadsOfKind(P) = %d, want 5", got)
	}
}

func TestVectorOfShapeErrors(t *testing.T) {
	p := RaptorLake()
	if _, err := VectorOf(p, []int{1, 2}); err == nil {
		t.Error("missing kind accepted")
	}
	if _, err := VectorOf(p, []int{1}, []int{4}); err == nil {
		t.Error("wrong SMT width accepted")
	}
	if _, err := VectorOf(p, []int{1, 2}, []int{17}); err == nil {
		t.Error("over-capacity kind accepted")
	}
	if _, err := VectorOf(p, []int{-1, 2}, []int{4}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := VectorOf(p, []int{5, 5}, []int{0}); err == nil {
		t.Error("10 P-cores on an 8 P-core machine accepted")
	}
}

func TestVectorCloneIsDeep(t *testing.T) {
	_, rv := paperExample(t)
	clone := rv.Clone()
	clone.Counts[0][0] = 99
	if rv.Counts[0][0] == 99 {
		t.Fatal("Clone shares backing storage")
	}
	if !rv.Clone().Equal(rv) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestVectorAddSub(t *testing.T) {
	p, rv := paperExample(t)
	other, err := VectorOf(p, []int{1, 0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rv.Add(other)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := sum.Key(); got != "2,2|6" {
		t.Errorf("sum = %q, want \"2,2|6\"", got)
	}
	back, err := sum.Sub(other)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !back.Equal(rv) {
		t.Errorf("Add then Sub = %v, want %v", back, rv)
	}
	if _, err := other.Sub(rv); err == nil {
		t.Error("Sub underflow accepted")
	}
}

func TestVectorAddShapeMismatch(t *testing.T) {
	intel := NewResourceVector(RaptorLake())
	odroid := NewResourceVector(OdroidXU3())
	if _, err := intel.Add(odroid); err == nil {
		t.Error("Add across platforms accepted")
	}
	if _, err := intel.Sub(odroid); err == nil {
		t.Error("Sub across platforms accepted")
	}
}

func TestFitsWithinCores(t *testing.T) {
	_, rv := paperExample(t) // demands 3 P, 4 E
	tests := []struct {
		name     string
		capacity []int
		want     bool
	}{
		{name: "exact", capacity: []int{3, 4}, want: true},
		{name: "roomy", capacity: []int{8, 16}, want: true},
		{name: "tight P", capacity: []int{2, 16}, want: false},
		{name: "tight E", capacity: []int{8, 3}, want: false},
		{name: "short capacity vector", capacity: []int{8}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := rv.FitsWithinCores(tt.capacity); got != tt.want {
				t.Errorf("FitsWithinCores(%v) = %v, want %v", tt.capacity, got, tt.want)
			}
		})
	}
}

func TestKeyRoundTrip(t *testing.T) {
	p, rv := paperExample(t)
	parsed, err := ParseKey(p, rv.Key())
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if !parsed.Equal(rv) {
		t.Errorf("round trip = %v, want %v", parsed, rv)
	}
	for _, bad := range []string{"", "1,2", "1,2|4|5", "a,b|c", "1,2|99"} {
		if _, err := ParseKey(p, bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestFeatures(t *testing.T) {
	_, rv := paperExample(t)
	got := rv.Features()
	want := []float64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Features = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Features = %v, want %v", got, want)
		}
	}
}

func TestIsZero(t *testing.T) {
	p := RaptorLake()
	if !NewResourceVector(p).IsZero() {
		t.Error("fresh vector not zero")
	}
	_, rv := paperExample(t)
	if rv.IsZero() {
		t.Error("paper example reported zero")
	}
}

func TestEnumerateVectorsOdroid(t *testing.T) {
	p := OdroidXU3()
	vecs := EnumerateVectors(p, 0)
	// (0..4 big) × (0..4 LITTLE) minus the all-zero config = 24.
	if len(vecs) != 24 {
		t.Fatalf("len = %d, want 24", len(vecs))
	}
	seen := make(map[string]bool, len(vecs))
	for _, rv := range vecs {
		if rv.IsZero() {
			t.Error("enumeration contains the zero vector")
		}
		if err := rv.Validate(p); err != nil {
			t.Errorf("invalid enumerated vector %v: %v", rv, err)
		}
		if seen[rv.Key()] {
			t.Errorf("duplicate vector %v", rv)
		}
		seen[rv.Key()] = true
	}
}

func TestEnumerateVectorsCap(t *testing.T) {
	p := RaptorLake()
	vecs := EnumerateVectors(p, 2)
	// P kind (smt 2): pairs (c1,c2) with c1+c2 ≤ 2 → 6 options;
	// E kind: 0..2 → 3 options; minus all-zero → 17.
	if len(vecs) != 17 {
		t.Fatalf("len = %d, want 17", len(vecs))
	}
	for _, rv := range vecs {
		if rv.Cores(0) > 2 || rv.Cores(1) > 2 {
			t.Errorf("vector %v exceeds per-kind cap 2", rv)
		}
	}
}

// Property: for any valid vector, Add with its own zero then Sub of itself
// yields zero, and Threads ≥ TotalCores.
func TestVectorAlgebraProperties(t *testing.T) {
	p := RaptorLake()
	rng := rand.New(rand.NewSource(7))
	randVec := func(r *rand.Rand) ResourceVector {
		rv := NewResourceVector(p)
		for kind, k := range p.Kinds {
			remaining := k.Count
			for tIdx := 0; tIdx < k.SMT; tIdx++ {
				c := r.Intn(remaining + 1)
				rv.Counts[kind][tIdx] = c
				remaining -= c
			}
		}
		return rv
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rv := randVec(r)
		if err := rv.Validate(p); err != nil {
			return false
		}
		if rv.Threads() < rv.TotalCores() {
			return false
		}
		zero, err := rv.Sub(rv)
		if err != nil || !zero.IsZero() {
			return false
		}
		sum, err := rv.Add(zero)
		if err != nil || !sum.Equal(rv) {
			return false
		}
		round, err := ParseKey(p, rv.Key())
		return err == nil && round.Equal(rv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
